// Serving hot-path benchmark: end-to-end serve() throughput with the PR 7
// caches on vs off, gated on both speedup and byte-identity.
//
// Sweeps fleet size x offered job count and, per grid point, runs the
// identical workload three ways:
//
//   off     plan_cache=off, sim_cache=off, span_io=off — the legacy
//           O(lanes) scans, one engine simulation per dispatch, and
//           page-at-a-time storage loops (the pre-optimisation hot path).
//   on      the incremental lane index + Eq.1 bid cache + digest-verified
//           engine-run memo cache + extent storage data plane (whatever
//           --plan-cache/--sim-cache/--span say).
//   serial  the on-arm re-run at --jobs 1.
//
// Two gates, both hard failures:
//
//   1. Identity — the serve report digest, the metrics registry digest and
//      the FNV-1a digest of the fleet Perfetto trace must be byte-identical
//      across all three arms at every grid point.  The caches are exact or
//      they are wrong.
//   2. Speedup — at the largest fleet x jobs point the on-arm must complete
//      the sweep at >= 2x the off-arm's end-to-end wall throughput.
//
// Wall-clock numbers are the point of this harness, so (unlike the other
// serve benches) they print to stdout; only the identity columns are
// machine-checked.  results/BENCH_hotpath.json records the full grid.
//
// Flags (strict parsing, exit 2 on malformed values — the PR 2 convention):
//   --hotpath-fleet F    largest fleet size in the sweep              [8]
//   --fleet-skew S       per-device CSE availability skew             [0.0]
//   --plan-cache on|off  lane index + bid cache in the on-arm         [on]
//   --sim-cache on|off   engine-run memo cache in the on-arm          [on]
//   --span on|off        extent storage data plane in the on-arm     [on]
//   --jobs N             worker threads for the simulation batches
//   --quick              largest fleet only, one job count (sanitizer CI)
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include "bench/bench_util.hpp"
#include "common/digest.hpp"
#include "exec/cli.hpp"
#include "serve/observe.hpp"
#include "serve/server.hpp"

namespace {

using Clock = std::chrono::steady_clock;

isp::serve::ServeConfig make_config(std::size_t fleet,
                                    std::uint64_t total_jobs, double skew,
                                    unsigned jobs) {
  using namespace isp;
  serve::ServeConfig config;
  config.fleet = serve::FleetConfig::make(fleet, 1, skew);
  config.tenants.clear();
  for (std::size_t t = 0; t < 3; ++t) {
    serve::TenantConfig tc;
    tc.weight = static_cast<double>(1ULL << t);  // 1, 2, 4
    tc.queue_depth = 32;
    config.tenants.push_back(tc);
  }
  config.job_classes = {serve::JobClass{.app = "tpch-q6", .size_factor = 0.2},
                        serve::JobClass{.app = "kmeans", .size_factor = 0.05}};
  config.total_jobs = total_jobs;
  // Roughly 2x the fleet's service capacity (~fleet/2 jobs per virtual
  // second at these job classes): the queues stay deep, so candidate starts
  // sit on lane busy_until instead of per-job arrival instants — the
  // regime the bid cache is built for.
  config.offered_load = static_cast<double>(fleet);
  config.jobs = jobs;
  return config;
}

/// The three identity digests of one serve run, folded into comparable form.
struct RunDigests {
  std::uint64_t report = 0;
  std::uint64_t metrics = 0;
  std::uint64_t trace = 0;

  [[nodiscard]] bool operator==(const RunDigests&) const = default;
};

RunDigests digests_of(const isp::serve::ServeReport& r) {
  return RunDigests{
      .report = r.digest,
      .metrics = r.metrics.digest(),
      .trace = isp::fnv1a(isp::kFnvOffset, isp::serve::to_fleet_trace(r))};
}

}  // namespace

int main(int argc, char** argv) {
  using namespace isp;
  const unsigned jobs = exec::jobs_from_args(argc, argv);
  const bool quick = exec::flag_present(argc, argv, "--quick");
  const auto fleet_max = static_cast<std::size_t>(
      exec::u64_flag(argc, argv, "--hotpath-fleet", 8, 2, 64));
  // Default skew 0: every device shares one availability schedule, the
  // steady-state the memo cache is built for.  A non-zero skew still gates
  // identity (and usually still clears 2x) but shrinks the hit rate.
  const double skew =
      exec::double_flag(argc, argv, "--fleet-skew", 0.0, 0.0, 0.33);
  const bool plan_cache = exec::on_off_flag(argc, argv, "--plan-cache", true);
  const bool sim_cache = exec::on_off_flag(argc, argv, "--sim-cache", true);
  const bool span_io = exec::on_off_flag(argc, argv, "--span", true);

  std::vector<std::size_t> fleets;
  if (!quick) {
    if (fleet_max > 2) fleets.push_back(2);
    if (fleet_max / 2 > 2) fleets.push_back(fleet_max / 2);
  }
  fleets.push_back(fleet_max);
  const std::vector<std::uint64_t> job_counts =
      quick ? std::vector<std::uint64_t>{48}
            : std::vector<std::uint64_t>{32, 96};

  bench::print_header(
      "Serving hot path: lane index + bid cache + engine-run memo, on vs "
      "off, identity-gated");
  std::printf("on-arm: plan-cache %s, sim-cache %s, span %s; off-arm: all "
              "off (scalar data plane); identical digests required\n\n",
              plan_cache ? "on" : "off", sim_cache ? "on" : "off",
              span_io ? "on" : "off");
  std::printf("%5s %5s | %9s %9s %8s | %6s %6s %6s | %5s %5s\n", "fleet",
              "jobs", "off s", "on s", "speedup", "simhit", "simmis",
              "bidhit", "ident", "gate");
  bench::print_rule();

  std::vector<std::string> entries;
  bool ok = true;
  for (const std::size_t fleet : fleets) {
    for (const std::uint64_t total : job_counts) {
      auto off_config = make_config(fleet, total, skew, jobs);
      off_config.plan_cache = false;
      off_config.sim_cache = false;
      // The off-arm also pins the scalar storage loops, so the identity
      // gate below doubles as the span-vs-scalar byte-equality check.
      off_config.span_io = false;
      const auto off0 = Clock::now();
      const auto off = serve::serve(off_config);
      const double wall_off =
          std::chrono::duration<double>(Clock::now() - off0).count();

      auto on_config = make_config(fleet, total, skew, jobs);
      on_config.plan_cache = plan_cache;
      on_config.sim_cache = sim_cache;
      on_config.span_io = span_io;
      const auto on0 = Clock::now();
      const auto on = serve::serve(on_config);
      const double wall_on =
          std::chrono::duration<double>(Clock::now() - on0).count();

      auto serial_config = on_config;
      serial_config.jobs = 1;
      const auto serial = serve::serve(serial_config);

      const auto d_off = digests_of(off);
      const auto d_on = digests_of(on);
      const auto d_serial = digests_of(serial);
      const bool identical = d_off == d_on && d_on == d_serial;

      const double speedup = wall_on > 0.0 ? wall_off / wall_on : 0.0;
      // The throughput gate binds only at the largest point, and only with
      // both caches in the on-arm.  Unlike a serial-vs-parallel ratio this
      // speedup is meaningful on a single-core host too — the memo cache
      // removes engine runs outright rather than overlapping them.
      const bool gated = fleet == fleets.back() && total == job_counts.back() &&
                         plan_cache && sim_cache;
      const bool fast_enough = !gated || speedup >= 2.0;
      ok = ok && identical && fast_enough;

      std::printf("%5zu %5llu | %9.3f %9.3f %7.2fx | %6llu %6llu %6llu | "
                  "%5s %5s\n",
                  fleet, static_cast<unsigned long long>(total), wall_off,
                  wall_on, speedup,
                  static_cast<unsigned long long>(on.sim_cache_hits),
                  static_cast<unsigned long long>(on.sim_cache_misses),
                  static_cast<unsigned long long>(on.bid_cache_hits),
                  identical ? "ok" : "DIFF",
                  gated ? (fast_enough ? "pass" : "FAIL") : "-");

      char row[512];
      std::snprintf(
          row, sizeof(row),
          "    {\"fleet\": %zu, \"jobs\": %llu, \"wall_off_s\": %.6f, "
          "\"wall_on_s\": %.6f, \"speedup\": %.4f, \"sim_cache_hits\": %llu, "
          "\"sim_cache_misses\": %llu, \"sim_cache_evictions\": %llu, "
          "\"bid_cache_hits\": %llu, \"bid_cache_misses\": %llu, "
          "\"digests_match\": %s, \"gated\": %s, "
          "\"digest\": \"0x%016llx\"}",
          fleet, static_cast<unsigned long long>(total), wall_off, wall_on,
          speedup,
          static_cast<unsigned long long>(on.sim_cache_hits),
          static_cast<unsigned long long>(on.sim_cache_misses),
          static_cast<unsigned long long>(on.sim_cache_evictions),
          static_cast<unsigned long long>(on.bid_cache_hits),
          static_cast<unsigned long long>(on.bid_cache_misses),
          identical ? "true" : "false", gated ? "true" : "false",
          static_cast<unsigned long long>(on.digest));
      entries.push_back(row);
    }
  }

  std::filesystem::create_directories("results");
  const std::string path = "results/BENCH_hotpath.json";
  if (std::FILE* f = std::fopen(path.c_str(), "w")) {
    std::fprintf(f, "{\n  \"sweep\": [\n");
    for (std::size_t i = 0; i < entries.size(); ++i) {
      std::fputs(entries[i].c_str(), f);
      std::fputs(i + 1 < entries.size() ? ",\n" : "\n", f);
    }
    std::fprintf(f, "  ]\n}\n");
    std::fclose(f);
    std::printf("\nwrote %s\n", path.c_str());
  } else {
    std::printf("\ncould not write %s\n", path.c_str());
    ok = false;
  }

  std::printf("\n%s\n", ok ? "ALL PASS" : "FAILURES ABOVE");
  return ok ? 0 : 1;
}
