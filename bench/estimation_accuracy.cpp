// §V "ActivePy's capability in identifying and composing CSD code":
// data-volume prediction accuracy.
//
// For every line of every workload, compare the output volume the sampling
// phase extrapolated against the volume the line actually produced on the
// raw input.  Paper's reported values: geometric-mean error of 9% once the
// outliers are discounted; the outlier is CSR construction in PageRank and
// SparseMV, over-estimated by up to 2.41x and *always* over-estimated
// (conservative — the planner under-values the CSD, it never over-commits).
#include <cmath>
#include <cstdio>
#include <set>
#include <string>
#include <vector>

#include "apps/registry.hpp"
#include "bench/bench_util.hpp"
#include "plan/device_factor.hpp"
#include "plan/estimates.hpp"
#include "plan/oracle.hpp"
#include "profile/sampler.hpp"

int main() {
  using namespace isp;

  bench::print_header(
      "Estimation accuracy: predicted vs actual data volume per line");
  std::printf("%-14s %-42s %10s %10s %8s\n", "app", "line", "pred",
              "actual", "ratio");
  bench::print_rule();

  std::vector<double> errors_regular;   // |ratio - 1| for non-CSR lines
  std::vector<double> csr_ratios;       // predicted/actual for CSR lines
  bool csr_always_over = true;

  for (const auto& app : apps::all_apps()) {
    apps::AppConfig config;
    const auto program = apps::make_app(app.name, config);
    system::SystemModel system;

    profile::Sampler sampler(system);
    const auto samples = sampler.run(program);
    const auto factor = plan::device_factor_from_counters(system);
    plan::EstimateDiagnostics diagnostics;
    const auto estimates = plan::build_estimates(program, samples, factor,
                                                 system, &diagnostics);

    // Ground truth from one functional host run.
    const auto truth = plan::measure_true_estimates(system, program);

    // The paper discounts "the outliers (e.g., CSR format)": the CSR line
    // itself plus everything whose predicted input volume flows through it
    // (taint propagation over the dataflow).
    std::set<std::string> tainted_objects;
    std::vector<bool> tainted_line(program.line_count(), false);
    for (std::size_t i = 0; i < program.line_count(); ++i) {
      const auto& line = program.lines()[i];
      bool tainted =
          line.name.find("to_csr") != std::string::npos;
      for (const auto& in : line.inputs) {
        tainted = tainted || tainted_objects.count(in) > 0;
      }
      tainted_line[i] = tainted;
      if (tainted) {
        for (const auto& out : line.outputs) tainted_objects.insert(out);
      }
    }

    for (std::size_t i = 0; i < program.line_count(); ++i) {
      const double pred = estimates[i].d_out.as_double();
      const double actual = truth[i].d_out.as_double();
      if (actual < 1e6) continue;  // constant-size results carry no signal
      const double ratio = pred / actual;
      const bool is_csr =
          program.lines()[i].name.find("to_csr") != std::string::npos;
      std::printf("%-14s %-42s %8.3fGB %8.3fGB %7.2fx%s\n", app.name.c_str(),
                  program.lines()[i].name.substr(0, 42).c_str(), pred / 1e9,
                  actual / 1e9, ratio,
                  is_csr ? "  <- CSR"
                         : (tainted_line[i] ? "  (CSR-derived)" : ""));
      if (is_csr) {
        csr_ratios.push_back(ratio);
        csr_always_over = csr_always_over && ratio > 1.0;
      } else if (!tainted_line[i]) {
        errors_regular.push_back(std::abs(ratio - 1.0) + 1.0);
      }
    }
  }

  bench::print_rule();
  double max_csr = 0.0;
  for (const auto r : csr_ratios) max_csr = r > max_csr ? r : max_csr;
  std::printf(
      "geomean volume error (excluding CSR lines): %.0f%%   [paper: 9%%]\n",
      (bench::geomean(errors_regular) - 1.0) * 100.0);
  std::printf(
      "CSR construction over-estimation: up to %.2fx, always over: %s   "
      "[paper: up to 2.41x, always over]\n",
      max_csr, csr_always_over ? "yes" : "NO");
  return 0;
}
