// Dataset-scaling ablation: where does ISP start paying?
//
// Equation 1's profit scales with the raw volume while ActiveCpp's fixed
// costs (sampling, code generation, call overheads) do not, so there is a
// dataset size below which the framework correctly leaves everything on the
// host.  This sweep scales the Table-I datasets from 1/32x to 2x and reports
// the plan and speedup at every size — the "who wins, where is the
// crossover" curve for the system as a whole.
#include <cstdio>
#include <vector>

#include "apps/registry.hpp"
#include "baseline/baselines.hpp"
#include "bench/bench_util.hpp"
#include "exec/cli.hpp"
#include "exec/pool.hpp"
#include "runtime/active_runtime.hpp"

int main(int argc, char** argv) {
  using namespace isp;
  const unsigned jobs = exec::jobs_from_args(argc, argv);

  const std::vector<double> factors = {1.0 / 32, 1.0 / 8, 1.0 / 4,
                                       1.0 / 2,  1.0,     2.0};
  for (const char* name : {"tpch-q6", "kmeans", "matrixmul"}) {
    bench::print_header(std::string("Dataset scaling: ") + name);
    std::printf("%-10s %12s %12s %10s %8s %12s\n", "scale", "data", "baseline",
                "activecpp", "csd", "sampling");
    bench::print_rule();
    // Each size factor is an independent pair of simulations (host-only
    // baseline + ActiveCpp run on fresh systems): fan out across the sweep
    // and print the rows in factor order.
    struct Row {
      double data_gb = 0.0;
      double baseline_total = 0.0;
      double speedup = 0.0;
      std::size_t csd_lines = 0;
      double sampling = 0.0;
    };
    const auto rows = exec::run_batch(
        factors,
        [&](const double& factor) {
          apps::AppConfig config;
          config.size_factor = factor;
          const auto program = apps::make_app(name, config);

          system::SystemModel base_system;
          const auto baseline = baseline::run_host_only(base_system, program);

          system::SystemModel system;
          runtime::ActiveRuntime active(system);
          const auto result = active.run(program);

          return Row{program.total_storage_bytes().as_double() / 1e9,
                     baseline.total.value(),
                     baseline.total.value() / result.end_to_end().value(),
                     result.plan.csd_line_count(),
                     result.sampling_overhead.value()};
        },
        jobs);
    for (std::size_t i = 0; i < factors.size(); ++i) {
      std::printf("%9.3fx %9.2f GB %11.3fs %9.2fx %8zu %11.4fs\n", factors[i],
                  rows[i].data_gb, rows[i].baseline_total, rows[i].speedup,
                  rows[i].csd_lines, rows[i].sampling);
    }
  }
  std::printf(
      "\nexpected: speedups grow toward an asymptote with dataset size; at "
      "tiny sizes\nthe fixed sampling/codegen costs eat the gain but the "
      "planner never loses much\n(it simply keeps lines on the host when "
      "Equation 1 says so).\n");
  return 0;
}
