// Monitor-threshold ablation (DESIGN choice, §III-D).
//
// The anomaly detector fires when the observed instruction rate drops below
// `below_estimate_fraction` of the per-line estimate.  The threshold trades
// false positives against detection latency:
//   * too tight (0.95+): fit/jitter noise triggers migrations with the CSE
//     fully available — pure overhead;
//   * too loose (0.4-): mild contention (50%) is never detected and the run
//     rides the slow CSE to the end;
//   * the default 0.8 detects 50% contention while staying quiet at 100%.
#include <cstdio>

#include "apps/registry.hpp"
#include "baseline/baselines.hpp"
#include "bench/bench_util.hpp"
#include "runtime/active_runtime.hpp"

namespace {

struct Cell {
  double speedup = 0.0;
  bool migrated = false;
};

Cell run_cell(const isp::ir::Program& program, double baseline_s,
              double threshold, double availability) {
  using namespace isp;
  system::SystemModel system;
  runtime::RunConfig rc;
  rc.engine.monitor.below_estimate_fraction = threshold;
  if (availability < 1.0) {
    rc.engine.contention.enabled = true;
    rc.engine.contention.at_csd_progress = 0.5;
    rc.engine.contention.availability = availability;
  }
  runtime::ActiveRuntime active(system);
  const auto result = active.run(program, rc);
  return Cell{baseline_s / result.end_to_end().value(),
              result.report.migrations > 0};
}

}  // namespace

int main() {
  using namespace isp;

  bench::print_header(
      "Monitor threshold ablation (tpch-q6; speedup vs no-ISP baseline, * = "
      "migrated)");

  apps::AppConfig config;
  const auto program = apps::make_app("tpch-q6", config);
  system::SystemModel base_system;
  const double baseline_s =
      baseline::run_host_only(base_system, program).total.value();

  std::printf("%-12s %14s %14s %14s\n", "threshold", "100% avail",
              "50% at mid-run", "10% at mid-run");
  bench::print_rule();
  for (const double threshold : {0.4, 0.6, 0.8, 0.9, 0.98}) {
    std::printf("%12.2f", threshold);
    for (const double avail : {1.0, 0.5, 0.1}) {
      const auto cell = run_cell(program, baseline_s, threshold, avail);
      std::printf("        %5.2fx%c", cell.speedup,
                  cell.migrated ? '*' : ' ');
    }
    std::printf("\n");
  }
  bench::print_rule();
  std::printf(
      "expected: the 100%% column must never migrate (false positives); the "
      "10%%\ncolumn must always migrate; 0.8 (the paper-faithful default) "
      "also catches the\n50%% case.\n");
  return 0;
}
