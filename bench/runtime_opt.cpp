// §V "ActivePy's optimizations in its language runtime".
//
// No ISP anywhere in this experiment: every configuration runs host-only.
// The paper reports, averaged over the workloads:
//   * stock interpreted Python        : +41% over the C baseline;
//   * Cython-compiled (still copying) : +20%;
//   * + redundant-memory-op elimination: ≈ the C baseline (≈1% compile
//     overhead remains).
#include <cstdio>
#include <vector>

#include "apps/registry.hpp"
#include "baseline/baselines.hpp"
#include "bench/bench_util.hpp"

int main() {
  using namespace isp;

  bench::print_header(
      "Language-runtime optimisations (host-only, no ISP): slowdown vs the C "
      "baseline");
  std::printf("%-14s %10s %12s %12s %14s\n", "app", "C (s)", "interp",
              "compiled", "comp+nocopy");
  bench::print_rule();

  std::vector<double> interp, compiled, nocopy;
  for (const auto& app : apps::table1_apps()) {
    apps::AppConfig config;
    const auto program = apps::make_app(app.name, config);

    system::SystemModel system;
    const double c_s =
        baseline::run_host_only(system, program, codegen::ExecMode::NativeC)
            .total.value();
    const double i_s =
        baseline::run_host_only(system, program,
                                codegen::ExecMode::Interpreted)
            .total.value();
    const double k_s =
        baseline::run_host_only(system, program, codegen::ExecMode::Compiled)
            .total.value();
    const double n_s =
        baseline::run_host_only(system, program,
                                codegen::ExecMode::CompiledNoCopy)
            .total.value();

    interp.push_back(i_s / c_s - 1.0);
    compiled.push_back(k_s / c_s - 1.0);
    nocopy.push_back(n_s / c_s - 1.0);
    std::printf("%-14s %9.2fs %+11.0f%% %+11.0f%% %+13.1f%%\n",
                app.name.c_str(), c_s, 100.0 * (i_s / c_s - 1.0),
                100.0 * (k_s / c_s - 1.0), 100.0 * (n_s / c_s - 1.0));
  }

  bench::print_rule();
  std::printf("%-14s %10s %+11.0f%% %+11.0f%% %+13.1f%%\n", "mean", "",
              100.0 * bench::mean(interp), 100.0 * bench::mean(compiled),
              100.0 * bench::mean(nocopy));
  std::printf("paper:  +41%% interpreted, +20%% compiled, ~+1%% with copy "
              "elimination\n");
  return 0;
}
