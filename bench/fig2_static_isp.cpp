// Figure 2 + §II-B(3): the fragility of static, programmer-directed ISP.
//
// The paper takes the three TPC-H workloads, freezes the C-based ISP
// partitioning that is optimal when the CSE is 100% available (the
// Summarizer-style configuration), and then measures the same binaries as
// the CSE fraction available to the application shrinks.  Reported shape:
// ≈1.25x at 100%, performance *loss* (speedup < 1) once less than ~60% of
// the CSE is available.
#include <cstdio>
#include <vector>

#include "apps/registry.hpp"
#include "baseline/baselines.hpp"
#include "bench/bench_util.hpp"

int main() {
  using namespace isp;

  const std::vector<std::string> workloads = {"tpch-q1", "tpch-q6",
                                              "tpch-q14"};
  const std::vector<double> availabilities = {1.0, 0.9, 0.8, 0.7, 0.6,
                                              0.5, 0.4, 0.3, 0.2, 0.1};

  bench::print_header(
      "Figure 2: static C-based ISP plan (optimised at 100% CSE) vs CSE "
      "availability");
  std::printf("%-10s", "avail");
  for (const auto& w : workloads) std::printf(" %10s", w.c_str());
  std::printf(" %10s\n", "mean");
  bench::print_rule();

  // Freeze each workload's optimal plan at 100% availability, once.
  struct Frozen {
    ir::Program program;
    ir::Plan plan;
    double baseline_s;
  };
  std::vector<Frozen> frozen;
  for (const auto& name : workloads) {
    apps::AppConfig config;
    auto program = apps::make_app(name, config);
    system::SystemModel system;
    const auto baseline = baseline::run_host_only(system, program);
    auto oracle = baseline::programmer_directed_plan(system, program);
    frozen.push_back(
        Frozen{std::move(program), std::move(oracle.best),
               baseline.total.value()});
  }

  double at_100 = 0.0;
  double crossover = 1.0;
  for (const double avail : availabilities) {
    std::printf("%9.0f%%", avail * 100.0);
    std::vector<double> speedups;
    for (const auto& f : frozen) {
      system::SystemModel system;
      const auto report = baseline::run_static_isp(
          system, f.program, f.plan,
          sim::AvailabilitySchedule::constant(avail));
      const double speedup = f.baseline_s / report.total.value();
      speedups.push_back(speedup);
      std::printf(" %9.2fx", speedup);
    }
    const double m = bench::mean(speedups);
    std::printf(" %9.2fx\n", m);
    if (avail == 1.0) at_100 = m;
    if (m >= 1.0) crossover = avail;
  }

  bench::print_rule();
  std::printf(
      "paper:    1.25x at 100%% availability; loss below ~60%% availability\n");
  std::printf(
      "measured: %.2fx at 100%% availability; last availability still >= "
      "1.0x: %.0f%%\n",
      at_100, crossover * 100.0);
  return 0;
}
