// Figure 4 + §V "ActivePy's overall performance".
//
// For every Table-I application, with the CSD fully dedicated:
//   * the no-ISP C baseline (speedup 1.00 by definition);
//   * the optimal programmer-directed C ISP configuration, found by
//     exhaustively measuring every combination of code regions on the CSD;
//   * automatic ActiveCpp with no hints of any kind (sampling + Algorithm 1),
//     whose end-to-end time includes the sampling and code-generation
//     overhead.
//
// Paper's reported values: programmer-directed averages 1.33x, ActivePy
// 1.34x on its hardware with ActivePy choosing *exactly* the same regions;
// baselines range from 11 s (TPC-H-6) to 73 s (KMeans); framework overhead
// is ~1% (≈0.1 s sampling + compile).
#include <cstdio>
#include <vector>

#include "apps/registry.hpp"
#include "baseline/baselines.hpp"
#include "bench/bench_util.hpp"
#include "runtime/active_runtime.hpp"

int main() {
  using namespace isp;

  bench::print_header(
      "Figure 4: ActiveCpp vs optimal programmer-directed C ISP "
      "(100% CSD availability)");
  std::printf("%-14s %10s %12s %12s %10s %10s  %s\n", "app", "baseline",
              "directed-x", "activecpp-x", "overhead", "plan", "regions");
  bench::print_rule();

  std::vector<double> directed_speedups;
  std::vector<double> active_speedups;
  bool plans_match_everywhere = true;

  for (const auto& app : apps::table1_apps()) {
    apps::AppConfig config;
    const auto program = apps::make_app(app.name, config);

    system::SystemModel system;
    const auto baseline = baseline::run_host_only(system, program);

    const auto oracle = baseline::programmer_directed_plan(system, program);
    const auto directed = baseline::run_static_isp(
        system, program, oracle.best, sim::AvailabilitySchedule::constant(1.0));

    runtime::ActiveRuntime active(system);
    const auto result = active.run(program);

    const double directed_x =
        baseline.total.value() / directed.total.value();
    const double active_x =
        baseline.total.value() / result.end_to_end().value();
    directed_speedups.push_back(directed_x);
    active_speedups.push_back(active_x);

    const bool same_plan = result.plan.placement == oracle.best.placement;
    plans_match_everywhere = plans_match_everywhere && same_plan;

    std::string regions;
    for (const auto p : result.plan.placement) {
      regions += (p == ir::Placement::Csd) ? 'C' : 'h';
    }
    std::printf("%-14s %9.2fs %11.2fx %11.2fx %9.3fs %10s  %s\n",
                app.name.c_str(), baseline.total.value(), directed_x,
                active_x,
                (result.sampling_overhead + result.report.compile_overhead)
                    .value(),
                same_plan ? "identical" : "DIFFERS", regions.c_str());
  }

  bench::print_rule();
  std::printf("%-14s %10s %11.2fx %11.2fx\n", "geomean", "",
              bench::geomean(directed_speedups),
              bench::geomean(active_speedups));
  std::printf("%-14s %10s %11.2fx %11.2fx\n", "mean", "",
              bench::mean(directed_speedups), bench::mean(active_speedups));
  std::printf(
      "\npaper:   programmer-directed 1.33x avg, ActivePy 1.34x avg, "
      "identical region sets,\n         baselines 11 s (TPC-H-6) .. 73 s "
      "(KMeans), ~1%% framework overhead\n");
  std::printf("measured: region sets %s\n",
              plans_match_everywhere ? "identical for every application"
                                     : "differ for at least one application");
  return 0;
}
