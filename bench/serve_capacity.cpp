// Multi-tenant serving capacity sweep: offered load × fleet size.
//
// Drives the src/serve/ subsystem over a grid of fleet sizes and offered
// loads and reports, per grid point, the serving metrics that matter for
// capacity planning: throughput (completed jobs per virtual second), p50/p99
// virtual latency, the admission-control rejection rate, and per-device
// utilisation.  Everything printed to stdout is virtual-time only and
// byte-identical across --jobs values (the serving loop's determinism
// contract); wall-clock timings go to stderr.
//
// Flags (strict parsing, exit 2 on malformed values — the PR 2 convention):
//   --tenants T       weighted tenants (weights cycle 1,2,4)       [4]
//   --fleet F         largest fleet size in the sweep              [4]
//   --offered-load L  middle offered load, jobs per virtual second [1.0]
//   --queue-depth Q   per-tenant admission queue bound             [8]
//   --kill-device k@t kill CSD lane k at virtual time t (repeatable)
//   --deadline S           per-job start-deadline SLO in seconds (0 = off) [0]
//   --retry-budget R  serve-layer retries per job lost to a death  [2]
//   --breaker-threshold X  per-lane health breaker trip score      [12]
//   --fleet-skew S    per-device CSE availability skew             [0.05]
//   --plan-cache on|off  incremental lane index + Eq.1 bid cache   [on]
//   --sim-cache on|off   digest-verified engine-run memo cache     [on]
//   --span on|off        extent storage data plane (exact)         [on]
//   --jobs N          worker threads for the simulation batches
//   --quick           one grid point per fleet size (sanitizer CI)
//   --trace-out P     write the last grid point's fleet Perfetto timeline
//   --metrics-out P   write the last grid point's metrics + snapshots JSON
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "bench/bench_util.hpp"
#include "exec/cli.hpp"
#include "serve/observe.hpp"
#include "serve/server.hpp"

namespace {

using Clock = std::chrono::steady_clock;

/// Failure-domain knobs threaded through unchanged from the command line;
/// the defaults reproduce the pre-failure-domain sweep byte for byte.
struct DomainKnobs {
  std::vector<isp::exec::KillSpec> kills;
  double slo = 0.0;
  std::uint32_t retry_budget = 2;
  double breaker_threshold = 12.0;
  double fleet_skew = 0.05;
  // Hot-path caches (PR 7) — exact, so output is identical either way; the
  // toggles exist for the off-arm of bench/serve_hotpath and bisecting.
  bool plan_cache = true;
  bool sim_cache = true;
  // Extent storage data plane (PR 10) — same exactness contract.
  bool span_io = true;
};

isp::serve::ServeConfig make_config(std::size_t fleet, double offered_load,
                                    std::size_t tenants,
                                    std::size_t queue_depth,
                                    std::uint64_t total_jobs, unsigned jobs,
                                    const DomainKnobs& domain) {
  using namespace isp;
  serve::ServeConfig config;
  config.fleet = serve::FleetConfig::make(fleet, 1, domain.fleet_skew);
  config.tenants.clear();
  for (std::size_t t = 0; t < tenants; ++t) {
    serve::TenantConfig tc;
    tc.weight = static_cast<double>(1ULL << (t % 3));  // 1, 2, 4, 1, ...
    tc.queue_depth = queue_depth;
    if (domain.slo > 0.0) tc.slo = Seconds{domain.slo};
    config.tenants.push_back(tc);
  }
  for (const auto& k : domain.kills) {
    // Kills aimed past the current fleet size are dropped per grid point
    // (the sweep spans several fleet sizes; serve() rejects out-of-range
    // devices loudly).
    if (k.device < fleet) {
      config.kill_devices.push_back(serve::KillDevice{
          .device = k.device, .at = SimTime::zero() + Seconds{k.at}});
    }
  }
  config.retry_budget = domain.retry_budget;
  config.breaker.threshold = domain.breaker_threshold;
  config.plan_cache = domain.plan_cache;
  config.sim_cache = domain.sim_cache;
  config.span_io = domain.span_io;
  // ~1.7 s and ~2.6 s of virtual service: with the default middle load of
  // 1 job/s the sweep straddles the fleet's saturation point.
  config.job_classes = {serve::JobClass{.app = "tpch-q6", .size_factor = 0.2},
                        serve::JobClass{.app = "kmeans", .size_factor = 0.05}};
  config.total_jobs = total_jobs;
  config.offered_load = offered_load;
  config.jobs = jobs;
  return config;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace isp;
  const unsigned jobs = exec::jobs_from_args(argc, argv);
  const bool quick = exec::flag_present(argc, argv, "--quick");
  const auto tenants = static_cast<std::size_t>(
      exec::u64_flag(argc, argv, "--tenants", 4, 1, 64));
  const auto fleet_max = static_cast<std::size_t>(
      exec::u64_flag(argc, argv, "--fleet", 4, 1, 64));
  const double load_mid =
      exec::double_flag(argc, argv, "--offered-load", 1.0, 1e-6, 1e6);
  const auto queue_depth = static_cast<std::size_t>(
      exec::u64_flag(argc, argv, "--queue-depth", 8, 1, 4096));
  DomainKnobs domain;
  domain.kills = exec::kill_flags(argc, argv, "--kill-device");
  domain.slo = exec::double_flag(argc, argv, "--deadline", 0.0, 0.0, 1e6);
  domain.retry_budget = static_cast<std::uint32_t>(
      exec::u64_flag(argc, argv, "--retry-budget", 2, 0, 64));
  domain.breaker_threshold =
      exec::double_flag(argc, argv, "--breaker-threshold", 12.0, 1e-3, 1e6);
  domain.fleet_skew =
      exec::double_flag(argc, argv, "--fleet-skew", 0.05, 0.0, 0.33);
  domain.plan_cache = exec::on_off_flag(argc, argv, "--plan-cache", true);
  domain.sim_cache = exec::on_off_flag(argc, argv, "--sim-cache", true);
  domain.span_io = exec::on_off_flag(argc, argv, "--span", true);
  const char* trace_out = exec::string_flag(argc, argv, "--trace-out", nullptr);
  const char* metrics_out =
      exec::string_flag(argc, argv, "--metrics-out", nullptr);
  const std::uint64_t total_jobs = quick ? 16 : 48;

  std::vector<std::size_t> fleets;
  for (std::size_t f = 1; f < fleet_max; f *= 2) fleets.push_back(f);
  fleets.push_back(fleet_max);
  std::vector<double> loads = quick
                                  ? std::vector<double>{load_mid}
                                  : std::vector<double>{load_mid * 0.5,
                                                        load_mid,
                                                        load_mid * 2.0};

  bench::print_header(
      "Serving capacity: offered load x fleet size, weighted tenants, "
      "Eq.1 placement");
  std::printf("%llu jobs per point, %zu tenants (weights cycle 1,2,4), "
              "queue depth %zu\n\n",
              static_cast<unsigned long long>(total_jobs), tenants,
              queue_depth);
  std::printf("%5s %8s | %5s %5s %8s %9s %9s %7s %6s %6s\n", "fleet", "load",
              "admit", "rej", "thru/s", "p50 s", "p99 s", "rej%", "csd%",
              "util%");
  bench::print_rule();

  const auto wall0 = Clock::now();
  std::vector<std::string> entries;
  bool ok = true;
  for (const std::size_t fleet : fleets) {
    for (const double load : loads) {
      const auto config = make_config(fleet, load, tenants, queue_depth,
                                      total_jobs, jobs, domain);
      const auto report = serve::serve(config);

      double util_sum = 0.0;
      for (std::size_t lane = 0; lane < report.fleet_size; ++lane) {
        util_sum += report.utilization(lane);
      }
      const double util_avg =
          util_sum / static_cast<double>(report.fleet_size);
      const double csd_share =
          report.completed > 0
              ? static_cast<double>(report.csd_jobs) /
                    static_cast<double>(report.completed)
              : 0.0;
      std::printf("%5zu %8.3f | %5llu %5llu %8.3f %9.4f %9.4f %6.1f%% "
                  "%5.1f%% %5.1f%%\n",
                  fleet, load,
                  static_cast<unsigned long long>(report.admitted),
                  static_cast<unsigned long long>(report.rejected),
                  report.throughput, report.p50_latency.value(),
                  report.p99_latency.value(), 100.0 * report.rejection_rate,
                  100.0 * csd_share, 100.0 * util_avg);
      ok = ok && report.admitted + report.rejected +
                         report.deadline_rejected ==
                     report.total_jobs;
      entries.push_back(report.to_json());

      // Observability exports for the last grid point (the biggest fleet at
      // the highest load — the most interesting timeline).  Virtual-time
      // only, so both files are byte-identical across --jobs values.
      const bool last =
          fleet == fleets.back() && load == loads.back();
      if (last && trace_out != nullptr) {
        serve::to_fleet_timeline(report).write(trace_out);
        std::fprintf(stderr, "[serve_capacity] wrote %s\n", trace_out);
      }
      if (last && metrics_out != nullptr) {
        std::ofstream f(metrics_out);
        if (f.good()) {
          f << serve::metrics_json(report);
          std::fprintf(stderr, "[serve_capacity] wrote %s\n", metrics_out);
        } else {
          std::printf("could not write %s\n", metrics_out);
          ok = false;
        }
      }
    }
  }
  const double wall =
      std::chrono::duration<double>(Clock::now() - wall0).count();

  std::filesystem::create_directories("results");
  const std::string path = "results/BENCH_serve.json";
  if (std::FILE* f = std::fopen(path.c_str(), "w")) {
    std::fprintf(f, "{\n  \"sweep\": [\n");
    for (std::size_t i = 0; i < entries.size(); ++i) {
      std::fputs(entries[i].c_str(), f);
      if (i + 1 < entries.size()) std::fputs(",\n", f);
    }
    std::fprintf(f, "  ]\n}\n");
    std::fclose(f);
    std::printf("\nwrote %s\n", path.c_str());
  } else {
    std::printf("\ncould not write %s\n", path.c_str());
    ok = false;
  }

  // Wall-clock is the one thing that may differ run to run; keep it off
  // stdout so the byte-identity contract covers everything above.
  if (bench::single_core()) {
    std::fprintf(stderr,
                 "[serve_capacity] wall %.2f s at --jobs %u; speedup n/a "
                 "(single-core)\n",
                 wall, jobs);
  } else {
    std::fprintf(stderr, "[serve_capacity] wall %.2f s at --jobs %u\n", wall,
                 jobs);
  }

  std::printf("\n%s\n", ok ? "ALL PASS" : "FAILURES ABOVE");
  return ok ? 0 : 1;
}
