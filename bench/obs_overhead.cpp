// Observability overhead gate: serving loop with instrumentation on vs off.
//
// Runs the same serving configuration twice per trial — ObsOptions::enabled
// true and false — and compares best-of-N wall-clock times.  Two contracts
// are checked:
//
//   1. Zero behavioural cost: the outcome digest (the repo-wide determinism
//      gate) must be bit-identical with and without instrumentation, because
//      metrics charge no virtual time.  A mismatch is a hard failure.
//   2. Bounded wall cost: best-of-N slowdown from enabling obs must stay
//      under the ISSUE's 5% budget.  Wall clocks are noisy on shared CI
//      machines, so the gate is evaluated on best-of-N (the least-noise
//      estimator) and a breach prints WARN + exits 0 unless --strict is
//      given (CI runs the gate informationally; the acceptance run uses
//      --strict on quiet hardware).
//
// Flags (strict parsing, exit 2 on malformed values):
//   --trials N   best-of-N wall measurements per variant          [5]
//   --jobs N     worker threads for the simulation batches
//   --quick      smaller job count (sanitizer CI)
//   --strict     a >5% slowdown fails the run (exit 1)
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <limits>

#include "bench/bench_util.hpp"
#include "exec/cli.hpp"
#include "serve/server.hpp"

namespace {

using Clock = std::chrono::steady_clock;

isp::serve::ServeConfig make_config(bool obs_enabled, std::uint64_t total_jobs,
                                    unsigned jobs) {
  using namespace isp;
  serve::ServeConfig config;
  config.fleet = serve::FleetConfig::make(2);
  config.tenants.clear();
  for (std::size_t t = 0; t < 3; ++t) {
    serve::TenantConfig tc;
    tc.weight = static_cast<double>(1ULL << t);
    tc.queue_depth = 8;
    config.tenants.push_back(tc);
  }
  config.job_classes = {serve::JobClass{.app = "tpch-q6", .size_factor = 0.1},
                        serve::JobClass{.app = "kmeans", .size_factor = 0.05}};
  config.total_jobs = total_jobs;
  config.offered_load = 1.5;
  config.jobs = jobs;
  config.obs.enabled = obs_enabled;
  return config;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace isp;
  const unsigned jobs = exec::jobs_from_args(argc, argv);
  const bool quick = exec::flag_present(argc, argv, "--quick");
  const bool strict = exec::flag_present(argc, argv, "--strict");
  const auto trials = static_cast<std::size_t>(
      exec::u64_flag(argc, argv, "--trials", 5, 1, 64));
  const std::uint64_t total_jobs = quick ? 16 : 32;
  constexpr double kBudget = 0.05;  // ISSUE acceptance: < 5% regression

  bench::print_header("Observability overhead: obs on vs off, best-of-N");
  std::printf("%llu jobs per run, %zu trials per variant, --jobs %u\n\n",
              static_cast<unsigned long long>(total_jobs), trials, jobs);

  // One throwaway run per variant warms the profile caches and the thread
  // pool so the timed trials measure the serving loop, not first-run setup.
  const auto measure = [&](bool enabled, std::uint64_t& digest) {
    const auto config = make_config(enabled, total_jobs, jobs);
    digest = serve::serve(config).digest;
    double best = std::numeric_limits<double>::infinity();
    for (std::size_t t = 0; t < trials; ++t) {
      const auto t0 = Clock::now();
      const auto report = serve::serve(config);
      const double wall =
          std::chrono::duration<double>(Clock::now() - t0).count();
      best = std::min(best, wall);
      if (report.digest != digest) {
        std::printf("FAIL: digest drifted across repeat runs (%s)\n",
                    enabled ? "obs on" : "obs off");
        std::exit(1);
      }
    }
    return best;
  };

  std::uint64_t digest_on = 0;
  std::uint64_t digest_off = 0;
  const double wall_on = measure(true, digest_on);
  const double wall_off = measure(false, digest_off);
  const double slowdown = wall_off > 0.0 ? wall_on / wall_off - 1.0 : 0.0;

  std::printf("%-18s %10s\n", "variant", "best s");
  bench::print_rule(30);
  std::printf("%-18s %10.4f\n", "obs off", wall_off);
  std::printf("%-18s %10.4f\n", "obs on", wall_on);
  std::printf("\nslowdown %.2f%% (budget %.0f%%)\n", 100.0 * slowdown,
              100.0 * kBudget);

  bool ok = true;
  if (digest_on != digest_off) {
    // Instrumentation changed a scheduling decision or a service time —
    // the zero-virtual-cost contract is broken, never acceptable.
    std::printf("FAIL: outcome digest differs with obs on vs off "
                "(%016llx vs %016llx)\n",
                static_cast<unsigned long long>(digest_on),
                static_cast<unsigned long long>(digest_off));
    ok = false;
  }
  const bool over_budget = slowdown > kBudget;
  if (over_budget) {
    std::printf("%s: slowdown %.2f%% exceeds %.0f%% budget\n",
                strict ? "FAIL" : "WARN (wall-clock noise?)",
                100.0 * slowdown, 100.0 * kBudget);
    if (strict) ok = false;
  }

  std::filesystem::create_directories("results");
  const char* path = "results/BENCH_obs.json";
  if (std::FILE* f = std::fopen(path, "w")) {
    std::fprintf(f,
                 "{\n"
                 "  \"total_jobs\": %llu,\n"
                 "  \"trials\": %zu,\n"
                 "  \"exec_jobs\": %u,\n"
                 "  \"wall_off_s\": %.6f,\n"
                 "  \"wall_on_s\": %.6f,\n"
                 "  \"slowdown\": %.6f,\n"
                 "  \"budget\": %.6f,\n"
                 "  \"digest_match\": %s,\n"
                 "  \"within_budget\": %s\n"
                 "}\n",
                 static_cast<unsigned long long>(total_jobs), trials, jobs,
                 wall_off, wall_on, slowdown, kBudget,
                 digest_on == digest_off ? "true" : "false",
                 over_budget ? "false" : "true");
    std::fclose(f);
    std::printf("wrote %s\n", path);
  } else {
    std::printf("could not write %s\n", path);
    ok = false;
  }

  std::printf("\n%s\n", ok ? "ALL PASS" : "FAILURES ABOVE");
  return ok ? 0 : 1;
}
