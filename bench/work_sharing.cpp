// Work-sharing comparator (DESIGN extension): Summarizer-style host/CSD
// splitting versus whole-line placement.
//
// The splitter's model runs host and CSD shares *concurrently* — an axis
// the paper's sequential whole-line execution deliberately forgoes — so its
// absolute speedups sit above the whole-line columns and are not directly
// comparable.  What the sweep demonstrates:
//   * graceful degradation — as availability shrinks, the tuner drives
//     f → 0 and work sharing approaches host-only, while the static
//     whole-line plan falls off Figure 2's cliff; ActiveCpp recovers the
//     same robustness at whole-line granularity via migration;
//   * the whole-line rationale — without concurrency the splitting
//     objective is linear in f and always lands at an endpoint, i.e.
//     fractional placement collapses into exactly the whole-line decisions
//     Algorithm 1 makes (see work_sharing.hpp).
#include <cstdio>

#include "apps/registry.hpp"
#include "baseline/baselines.hpp"
#include "baseline/work_sharing.hpp"
#include "bench/bench_util.hpp"
#include "runtime/active_runtime.hpp"

int main() {
  using namespace isp;

  bench::print_header(
      "Work sharing vs whole-line offload (speedup over the no-ISP "
      "baseline)");
  std::printf("%-10s %8s %12s %12s %12s %10s\n", "query", "avail",
              "static ISP", "work-share", "activecpp", "mean f");
  bench::print_rule();

  for (const char* name : {"tpch-q1", "tpch-q6", "tpch-q14"}) {
    apps::AppConfig config;
    const auto program = apps::make_app(name, config);

    system::SystemModel base_system;
    const auto baseline = baseline::run_host_only(base_system, program);
    system::SystemModel oracle_system;
    const auto oracle =
        baseline::programmer_directed_plan(oracle_system, program);

    for (const double avail : {1.0, 0.6, 0.3, 0.1}) {
      system::SystemModel static_system;
      const auto static_run = baseline::run_static_isp(
          static_system, program, oracle.best,
          sim::AvailabilitySchedule::constant(avail));

      system::SystemModel share_system;
      const auto shared =
          baseline::run_work_sharing(share_system, program, avail);

      system::SystemModel active_system;
      runtime::RunConfig rc;
      rc.engine.cse_availability =
          sim::AvailabilitySchedule::constant(avail);
      runtime::ActiveRuntime active(active_system);
      const auto activecpp = active.run(program, rc);

      std::printf("%-10s %7.0f%% %11.2fx %11.2fx %11.2fx %9.2f\n", name,
                  avail * 100.0,
                  baseline.total.value() / static_run.total.value(),
                  baseline.total.value() / shared.total.value(),
                  baseline.total.value() / activecpp.end_to_end().value(),
                  shared.mean_csd_fraction());
    }
    bench::print_rule();
  }

  std::printf(
      "expected: the splitter's columns exceed whole-line because its model "
      "overlaps\nhost and CSD work (an axis the paper's sequential execution "
      "forgoes). The\nshapes that matter: static ISP collapses with "
      "availability while the splitter\ndegrades gracefully (f -> 0) and "
      "ActiveCpp re-plans; and without concurrency\nfractional splitting "
      "degenerates to exactly Algorithm 1's whole-line choices.\n");
  return 0;
}
