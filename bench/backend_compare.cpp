// Storage-backend comparison: FTL vs ZNS vs mixed fleets under persisting
// serve workloads, identity-gated and reclaim-gated.
//
// The ZCSD argument for zoned namespaces is that append-only writes with
// host-coordinated reclaim remove the device-side storage-management
// contention Equation 1 prices for conventional SSDs: no per-write mapping
// journal (the append order *is* the mapping) and no background GC racing
// the host.  This harness measures exactly that term end to end: the same
// serving workload runs on an all-FTL, an all-ZNS and a mixed fleet, and the
// device-side reclaim stall the backends charge is compared per arm.
//
// Two gates, both hard failures:
//
//   1. Identity — per fleet arm, the serve report digest, metrics digest and
//      fleet-trace digest must be byte-identical across --jobs values and
//      with the engine-run memo cache on vs off.  Backend work is real
//      simulated device work, so it must replay exactly like every other
//      part of the simulation.
//   2. Reclaim — on the write-heavy mix the all-ZNS fleet must charge
//      strictly less device-side reclaim time than the all-FTL fleet (the
//      paper-level claim this PR reproduces).  Conservation is asserted on
//      every run: all jobs accounted, write amplification >= 1, and the
//      write-heavy mix must actually drive host page programs.
//
// Flags (strict parsing, exit 2 on malformed values — the PR 2 convention):
//   --backend ftl|zns|mixed|all  fleet arms to sweep                  [all]
//   --sim-cache on|off           memo cache in the cached arm         [on]
//   --span on|off                extent data plane in the main arms   [on]
//                                (an opposite-plane arm always runs and
//                                must produce byte-identical digests)
//   --jobs N                     worker threads for simulation batches
//   --quick                      smaller grid (sanitizer CI)
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include "bench/bench_util.hpp"
#include "common/digest.hpp"
#include "exec/cli.hpp"
#include "serve/observe.hpp"
#include "serve/server.hpp"

namespace {

using namespace isp;

struct Mix {
  const char* name;
  std::vector<serve::JobClass> classes;
};

/// Write-heavy: every class persists its outputs, so each dispatch mounts
/// its dataset and pushes results through the lane's backend.  Read-heavy:
/// one small persisting class rides along a read-dominated mix, so the
/// backends engage lightly.
std::vector<Mix> make_mixes() {
  return {
      Mix{"write-heavy",
          {serve::JobClass{.app = "tpch-q6", .size_factor = 0.1,
                           .persist = true},
           serve::JobClass{.app = "kmeans", .size_factor = 0.08,
                           .persist = true}}},
      Mix{"read-heavy",
          {serve::JobClass{.app = "tpch-q6", .size_factor = 0.1},
           serve::JobClass{.app = "kmeans", .size_factor = 0.05},
           serve::JobClass{.app = "tpch-q6", .size_factor = 0.02,
                           .persist = true}}},
  };
}

serve::ServeConfig make_config(serve::BackendMix backend, const Mix& mix,
                               std::size_t fleet, std::uint64_t total_jobs,
                               unsigned jobs) {
  serve::ServeConfig config;
  config.fleet = serve::FleetConfig::make(fleet, 1, 0.0, backend);
  config.tenants = {serve::TenantConfig{.weight = 1.0, .queue_depth = 16},
                    serve::TenantConfig{.weight = 2.0, .queue_depth = 16}};
  config.job_classes = mix.classes;
  config.total_jobs = total_jobs;
  config.offered_load = static_cast<double>(fleet) * 2.0;
  config.jobs = jobs;
  return config;
}

struct RunDigests {
  std::uint64_t report = 0;
  std::uint64_t metrics = 0;
  std::uint64_t trace = 0;

  [[nodiscard]] bool operator==(const RunDigests&) const = default;
};

RunDigests digests_of(const serve::ServeReport& r) {
  return RunDigests{
      .report = r.digest,
      .metrics = r.metrics.digest(),
      .trace = fnv1a(kFnvOffset, serve::to_fleet_trace(r))};
}

/// Device-side storage totals folded across the fleet's lanes.
struct StorageTotals {
  double reclaim_s = 0.0;
  std::uint64_t host_pages = 0;
  std::uint64_t internal_pages = 0;
  std::uint64_t resets = 0;

  [[nodiscard]] double wa() const {
    if (host_pages == 0) return 1.0;
    return static_cast<double>(host_pages + internal_pages) /
           static_cast<double>(host_pages);
  }
};

StorageTotals storage_of(const serve::ServeReport& r) {
  StorageTotals t;
  for (const auto& lane : r.lanes) {
    t.reclaim_s += lane.reclaim_time.value();
    t.host_pages += lane.storage_host_pages;
    t.internal_pages += lane.storage_internal_pages;
    t.resets += lane.storage_resets;
  }
  return t;
}

/// Every-run conservation: offered jobs all land somewhere, completions are
/// split exactly between host and CSD lanes, and observed per-lane write
/// amplification never dips below 1.
bool conserves(const serve::ServeReport& r) {
  bool ok = r.admitted + r.rejected == r.total_jobs &&
            r.completed == r.admitted &&
            r.csd_jobs + r.host_jobs == r.completed;
  for (const auto& lane : r.lanes) {
    ok = ok && lane.storage_write_amplification() >= 1.0;
  }
  return ok;
}

}  // namespace

int main(int argc, char** argv) {
  const unsigned jobs = exec::jobs_from_args(argc, argv);
  const bool quick = exec::flag_present(argc, argv, "--quick");
  const bool sim_cache = exec::on_off_flag(argc, argv, "--sim-cache", true);
  const bool span_io = exec::on_off_flag(argc, argv, "--span", true);
  const std::vector<const char*> backend_names = {"ftl", "zns", "mixed",
                                                  "all"};
  const std::size_t backend_pick =
      exec::enum_flag(argc, argv, "--backend", backend_names, 3);

  std::vector<serve::BackendMix> arms;
  if (backend_pick == 3) {
    arms = {serve::BackendMix::Ftl, serve::BackendMix::Zns,
            serve::BackendMix::Mixed};
  } else {
    arms = {static_cast<serve::BackendMix>(backend_pick)};
  }

  const std::size_t fleet = quick ? 3 : 4;
  const std::uint64_t total_jobs = quick ? 12 : 24;
  const unsigned parallel_jobs = jobs > 1 ? jobs : 4;

  bench::print_header(
      "Storage backends: FTL vs ZNS vs mixed fleets, persisting serve "
      "workloads, identity- and reclaim-gated");
  std::printf("fleet %zu, %llu jobs per run; cached arm: sim-cache %s, "
              "span %s, --jobs %u vs --jobs 1 vs cache-off vs span-%s — "
              "identical digests required\n\n",
              fleet, static_cast<unsigned long long>(total_jobs),
              sim_cache ? "on" : "off", span_io ? "on" : "off", parallel_jobs,
              span_io ? "off" : "on");
  std::printf("%11s %7s | %10s %10s %8s %7s | %5s %5s\n", "mix", "fleet",
              "reclaim s", "host pg", "int pg", "wa", "ident", "cons");
  bench::print_rule();

  bool ok = true;
  std::vector<std::string> entries;
  // reclaim_s[mix][arm kind], for the write-heavy ZNS < FTL gate.
  double reclaim_ftl_write = -1.0;
  double reclaim_zns_write = -1.0;

  for (const auto& mix : make_mixes()) {
    for (const auto arm : arms) {
      auto config = make_config(arm, mix, fleet, total_jobs, parallel_jobs);
      config.sim_cache = sim_cache;
      config.span_io = span_io;
      const auto parallel = serve::serve(config);

      config.jobs = 1;
      const auto serial = serve::serve(config);

      config.jobs = parallel_jobs;
      config.sim_cache = false;
      config.plan_cache = false;
      const auto uncached = serve::serve(config);

      // The storage data plane is contract-exact: flipping --span must
      // replay to the same bytes as every other arm.
      config.sim_cache = sim_cache;
      config.plan_cache = true;
      config.span_io = !span_io;
      const auto opposite = serve::serve(config);

      const bool identical = digests_of(parallel) == digests_of(serial) &&
                             digests_of(parallel) == digests_of(uncached) &&
                             digests_of(parallel) == digests_of(opposite);
      const bool conserved = conserves(parallel) && conserves(serial) &&
                             conserves(uncached) && conserves(opposite);
      const auto totals = storage_of(parallel);
      // The write-heavy mix must genuinely drive the backends.
      const bool driven =
          std::string(mix.name) != "write-heavy" || totals.host_pages > 0;
      ok = ok && identical && conserved && driven;

      if (std::string(mix.name) == "write-heavy") {
        if (arm == serve::BackendMix::Ftl) {
          reclaim_ftl_write = totals.reclaim_s;
        } else if (arm == serve::BackendMix::Zns) {
          reclaim_zns_write = totals.reclaim_s;
        }
      }

      std::printf("%11s %7s | %10.4f %10llu %8llu %7.3f | %5s %5s\n",
                  mix.name, serve::to_string(arm), totals.reclaim_s,
                  static_cast<unsigned long long>(totals.host_pages),
                  static_cast<unsigned long long>(totals.internal_pages),
                  totals.wa(), identical ? "ok" : "DIFF",
                  conserved && driven ? "ok" : "FAIL");

      char row[512];
      std::snprintf(
          row, sizeof(row),
          "    {\"mix\": \"%s\", \"fleet\": \"%s\", \"reclaim_s\": %.6f, "
          "\"host_pages\": %llu, \"internal_pages\": %llu, \"resets\": %llu, "
          "\"wa\": %.4f, \"digests_match\": %s, \"conserved\": %s, "
          "\"digest\": \"0x%016llx\"}",
          mix.name, serve::to_string(arm), totals.reclaim_s,
          static_cast<unsigned long long>(totals.host_pages),
          static_cast<unsigned long long>(totals.internal_pages),
          static_cast<unsigned long long>(totals.resets), totals.wa(),
          identical ? "true" : "false",
          conserved && driven ? "true" : "false",
          static_cast<unsigned long long>(parallel.digest));
      entries.push_back(row);
    }
  }

  // The headline gate: append-only ZNS charges strictly less device-side
  // reclaim time than the journaling FTL under the same write-heavy mix.
  bool reclaim_gate = true;
  if (reclaim_ftl_write >= 0.0 && reclaim_zns_write >= 0.0) {
    reclaim_gate = reclaim_zns_write < reclaim_ftl_write;
    std::printf("\nwrite-heavy device reclaim: ftl %.4fs vs zns %.4fs — %s\n",
                reclaim_ftl_write, reclaim_zns_write,
                reclaim_gate ? "zns strictly lower (pass)" : "GATE FAILED");
    ok = ok && reclaim_gate;
  } else if (backend_pick == 3) {
    std::printf("\nreclaim gate skipped: missing an arm\n");
    ok = false;
  } else {
    std::printf("\nreclaim gate skipped: --backend restricted the sweep\n");
  }

  std::filesystem::create_directories("results");
  const std::string path = "results/BENCH_backend.json";
  if (std::FILE* f = std::fopen(path.c_str(), "w")) {
    std::fprintf(f, "{\n  \"sweep\": [\n");
    for (std::size_t i = 0; i < entries.size(); ++i) {
      std::fputs(entries[i].c_str(), f);
      std::fputs(i + 1 < entries.size() ? ",\n" : "\n", f);
    }
    std::fprintf(f, "  ],\n  \"reclaim_gate\": %s\n}\n",
                 reclaim_gate ? "true" : "false");
    std::fclose(f);
    std::printf("wrote %s\n", path.c_str());
  } else {
    std::printf("could not write %s\n", path.c_str());
    ok = false;
  }

  std::printf("\n%s\n", ok ? "ALL PASS" : "FAILURES ABOVE");
  return ok ? 0 : 1;
}
