// Self-performance harness: how fast does the simulator itself run?
//
// ROADMAP north star: "runs as fast as the hardware allows".  This harness
// measures, in wall-clock terms,
//   1. simulations/sec for a batch of independent faulted runs, serial
//      (--jobs 1) vs parallel (--jobs N), with an exact-equality check that
//      the parallel batch produced bit-identical results — the executor's
//      determinism contract, enforced every time this bench runs;
//   2. micro timings for the hot simulation kernels this PR optimised:
//      AvailabilitySchedule queries (cursor + binary search) and the FTL
//      write/remount path (reserved journal buffers, allocation hint,
//      reused recovery scratch);
//   3. the storage data plane: page-at-a-time write() vs the extent
//      write_span() fast path on both backends, with a hard exact-equality
//      gate (same mappings, same stats) — the span contract is bit-for-bit
//      equivalence, so any divergence fails the bench.
// `--quick` shrinks every workload for CI; rates are still exported.
// Results are printed and exported to results/BENCH_selfperf.json so runs
// are comparable across machines and revisions.
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <string>
#include <string_view>
#include <vector>

#include "apps/registry.hpp"
#include "bench/bench_util.hpp"
#include "exec/cli.hpp"
#include "exec/pool.hpp"
#include "flash/ftl.hpp"
#include "runtime/active_runtime.hpp"
#include "sim/availability.hpp"
#include "zns/zns.hpp"

namespace {

using Clock = std::chrono::steady_clock;

double elapsed_seconds(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

std::uint64_t fnv_mix(std::uint64_t h, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (i * 8)) & 0xFF;
    h *= 0x100000001b3ULL;
  }
  return h;
}

/// One batch task: a full planned run of a small app under a seed-specific
/// fault schedule, digested to a single word.  Everything mutable is
/// constructed inside the call (the run_batch contract).
std::uint64_t simulate_one(std::size_t task_index) {
  using namespace isp;
  apps::AppConfig config;
  config.size_factor = 0.1;
  const auto program = apps::make_app("tpch-q6", config);

  system::SystemModel system;
  runtime::RunConfig rc;
  rc.engine.fault.seed = 100 + task_index;
  rc.engine.fault.set_rate(fault::Site::FlashReadEcc, 0.2);
  rc.engine.fault.set_rate(fault::Site::CseCrash, 0.3);
  rc.engine.fault.set_rate(fault::Site::StatusLoss, 0.3);
  runtime::ActiveRuntime active(system);
  const auto result = active.run(program, rc);

  std::uint64_t h = 0xcbf29ce484222325ULL;
  h = fnv_mix(h, static_cast<std::uint64_t>(result.report.total.value() * 1e12));
  h = fnv_mix(h, result.report.faults.total_injected());
  h = fnv_mix(h, result.report.status_updates);
  h = fnv_mix(h, result.report.migrations);
  return h;
}

struct BatchTiming {
  double seconds = 0.0;
  std::vector<std::uint64_t> digests;
};

BatchTiming run_batch_timed(std::size_t tasks, unsigned jobs) {
  const auto t0 = Clock::now();
  BatchTiming timing;
  timing.digests =
      isp::exec::run_batch(tasks, [](std::size_t i) { return simulate_one(i); },
                           jobs);
  timing.seconds = elapsed_seconds(t0);
  return timing;
}

/// Availability kernel: monotone queries over a many-step schedule — the
/// engine's access pattern, where the cursor should make lookups O(1).
double availability_queries_per_sec(int kQueries) {
  using namespace isp;
  std::vector<std::pair<SimTime, double>> steps;
  for (int i = 0; i < 256; ++i) {
    steps.emplace_back(SimTime{i * 0.25}, (i % 4 == 0) ? 1.0 : 0.4);
  }
  const auto schedule = sim::AvailabilitySchedule::steps(std::move(steps));

  double sink = 0.0;
  const auto t0 = Clock::now();
  for (int q = 0; q < kQueries; ++q) {
    const SimTime t{(q % 640) * 0.1};  // sweeps forward, wraps (cursor reset)
    sink += schedule.fraction_at(t);
    if (q % 16 == 0) {
      sink += schedule.finish_time(t, Seconds{0.5}).seconds();
    }
  }
  const double secs = elapsed_seconds(t0);
  std::printf("  (availability checksum %.1f)\n", sink);
  return static_cast<double>(kQueries) / secs;
}

/// FTL kernel: journalled writes with overwrites (exercises GC, the journal
/// buffers and the allocation hint), then repeated power cycles (exercises
/// the reused recovery scratch).
struct FtlRates {
  double writes_per_sec = 0.0;
  double remounts_per_sec = 0.0;
};

isp::flash::FtlConfig bench_ftl_config() {
  using namespace isp;
  flash::FtlConfig config;
  config.geometry.channels = 2;
  config.geometry.dies_per_channel = 2;
  config.geometry.blocks_per_die = 64;
  config.geometry.pages_per_block = 64;
  config.geometry.page_bytes = Bytes{4096};
  config.journal.enabled = true;
  return config;
}

FtlRates ftl_kernel_rates(std::uint64_t kWrites, int kCycles) {
  using namespace isp;
  flash::Ftl ftl(bench_ftl_config());
  const auto logical = ftl.logical_pages();

  auto t0 = Clock::now();
  for (std::uint64_t i = 0; i < kWrites; ++i) {
    ftl.write((i * 2654435761ULL) % logical);  // scattered overwrites
  }
  const double write_secs = elapsed_seconds(t0);

  t0 = Clock::now();
  for (int i = 0; i < kCycles; ++i) {
    (void)ftl.power_loss();
    (void)ftl.recover();
    // A little traffic between crashes so every remount has a tail to scan.
    for (std::uint64_t w = 0; w < 512; ++w) {
      ftl.write((i * 131 + w * 2654435761ULL) % logical);
    }
  }
  const double remount_secs = elapsed_seconds(t0);

  return FtlRates{static_cast<double>(kWrites) / write_secs,
                  static_cast<double>(kCycles) / remount_secs};
}

/// Storage data plane: sequential fills of a fresh device, issued
/// page-at-a-time on one and as extents on a twin, timed separately.  A
/// fill stays above the GC/reclaim watermarks, so this isolates the
/// allocation fast path the span work optimised; the reclaim regime is
/// contract-identical on both paths and is covered by the differential
/// suites.  The span contract is bit-for-bit equivalence, so the twins must
/// land in identical states — that equality is this bench's hard exit gate;
/// the rate ratio is the printed performance claim.
struct SpanRates {
  double scalar_pages_per_sec = 0.0;
  double span_pages_per_sec = 0.0;
  bool identical = false;

  [[nodiscard]] double speedup() const {
    return scalar_pages_per_sec > 0.0
               ? span_pages_per_sec / scalar_pages_per_sec
               : 0.0;
  }
};

template <typename Device>
std::uint64_t device_digest(const Device& device) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (std::uint64_t lpn = 0; lpn < device.logical_pages(); ++lpn) {
    const auto ppn = device.translate(lpn);
    h = fnv_mix(h, ppn ? *ppn + 1 : 0);
  }
  const auto c = device.counters();
  h = fnv_mix(h, c.host_pages);
  h = fnv_mix(h, c.reclaim_pages);
  h = fnv_mix(h, c.meta_pages);
  h = fnv_mix(h, c.resets);
  h = fnv_mix(h, c.reclaim_events);
  return h;
}

template <typename MakeDevice>
SpanRates span_rates(MakeDevice make, std::uint64_t passes) {
  constexpr std::uint64_t extent = 4096;
  // A fill is only a few milliseconds, so a sum over passes measures
  // scheduler noise as much as the data plane; best-of-passes is the rate
  // (the obs_overhead convention), the digests still fold every pass.
  double scalar_best = 1e9;
  double span_best = 1e9;
  std::uint64_t pages = 0;
  std::uint64_t scalar_h = 0xcbf29ce484222325ULL;
  std::uint64_t span_h = 0xcbf29ce484222325ULL;

  // Both arms drive the device through the StorageBackend seam, because
  // that is how every consumer (the engine's dataset mount and write-back
  // loops, the NVMe controller, the serving fleet) reaches the data plane.
  // The per-page virtual dispatch the scalar loop pays is exactly the
  // per-page overhead an extent call amortises.
  for (std::uint64_t p = 0; p < passes; ++p) {
    {
      auto dev = make();
      isp::flash::StorageBackend& backend = dev;
      const std::uint64_t logical = backend.logical_pages();
      pages = logical;
      const auto t0 = Clock::now();
      for (std::uint64_t first = 0; first < logical; first += extent) {
        const std::uint64_t run = std::min(extent, logical - first);
        for (std::uint64_t i = 0; i < run; ++i) {
          backend.write(first + i);
        }
      }
      scalar_best = std::min(scalar_best, elapsed_seconds(t0));
      scalar_h = fnv_mix(scalar_h, device_digest(dev));
    }
    {
      auto dev = make();
      isp::flash::StorageBackend& backend = dev;
      const std::uint64_t logical = backend.logical_pages();
      const auto t0 = Clock::now();
      for (std::uint64_t first = 0; first < logical; first += extent) {
        backend.write_span(first, std::min(extent, logical - first));
      }
      span_best = std::min(span_best, elapsed_seconds(t0));
      span_h = fnv_mix(span_h, device_digest(dev));
    }
  }

  SpanRates rates;
  rates.scalar_pages_per_sec = static_cast<double>(pages) / scalar_best;
  rates.span_pages_per_sec = static_cast<double>(pages) / span_best;
  rates.identical = scalar_h == span_h;
  return rates;
}

SpanRates ftl_span_rates(std::uint64_t passes) {
  using namespace isp;
  // Production-shaped blocks: 256 pages x 16 KiB, same 16k-page array as
  // the kernel-rate config.  Short 64-page blocks would cap every bulk run
  // at the block tail and measure the run setup, not the data plane.
  auto config = bench_ftl_config();
  config.geometry.blocks_per_die = 16;
  config.geometry.pages_per_block = 256;
  config.geometry.page_bytes = Bytes{16384};
  return span_rates([config] { return flash::Ftl(config); }, passes);
}

SpanRates zns_span_rates(std::uint64_t passes) {
  using namespace isp;
  zns::ZnsConfig config;
  config.geometry.channels = 2;
  config.geometry.dies_per_channel = 2;
  config.geometry.blocks_per_die = 64;
  config.geometry.pages_per_block = 64;
  config.geometry.page_bytes = Bytes{4096};
  config.zone_blocks = 4;
  config.journal.enabled = true;
  return span_rates([config] { return zns::ZnsDevice(config); }, passes);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace isp;
  const unsigned jobs = exec::jobs_from_args(argc, argv);
  bool quick = false;
  for (int i = 1; i < argc; ++i) {
    if (std::string_view(argv[i]) == "--quick") quick = true;
  }
  const std::size_t kTasks = quick ? 6 : 24;
  const int kQueries = quick ? 250'000 : 2'000'000;
  const std::uint64_t kWrites = quick ? 60'000 : 400'000;
  const int kCycles = quick ? 12 : 64;
  const std::uint64_t kSpanPasses = quick ? 4 : 24;

  bench::print_header(
      "Self-performance: simulations/sec, serial vs parallel, plus kernel "
      "micro timings");
  std::printf("batch: %zu independent faulted tpch-q6 runs; parallel --jobs "
              "%u (hw threads: %u)%s\n\n",
              kTasks, jobs, exec::default_jobs(),
              quick ? "  [--quick]" : "");

  const auto serial = run_batch_timed(kTasks, 1);
  const auto parallel = run_batch_timed(kTasks, jobs);

  const bool identical = serial.digests == parallel.digests;
  const double serial_rate = static_cast<double>(kTasks) / serial.seconds;
  const double parallel_rate = static_cast<double>(kTasks) / parallel.seconds;
  const double speedup = serial.seconds / parallel.seconds;
  const bool single_core = bench::single_core();

  std::printf("%-28s %10.2f s  (%6.2f sims/s)\n", "serial (--jobs 1)",
              serial.seconds, serial_rate);
  std::printf("%-28s %10.2f s  (%6.2f sims/s)\n",
              ("parallel (--jobs " + std::to_string(jobs) + ")").c_str(),
              parallel.seconds, parallel_rate);
  if (single_core) {
    std::printf("%-28s %10s\n", "speedup", "n/a (single-core)");
  } else {
    std::printf("%-28s %10.2fx\n", "speedup", speedup);
  }
  std::printf("%-28s %10s\n", "parallel == serial (exact)",
              identical ? "PASS" : "FAIL");

  bench::print_header("Hot-kernel micro timings");
  const double avail_qps = availability_queries_per_sec(kQueries);
  const auto ftl = ftl_kernel_rates(kWrites, kCycles);
  std::printf("%-28s %12.0f queries/s\n", "availability lookup",
              avail_qps);
  std::printf("%-28s %12.0f writes/s\n", "FTL journalled write",
              ftl.writes_per_sec);
  std::printf("%-28s %12.1f remounts/s\n", "FTL power-cycle remount",
              ftl.remounts_per_sec);

  bench::print_header(
      "Storage data plane: write() vs write_span(), exact-equality gated");
  const auto ftl_span = ftl_span_rates(kSpanPasses);
  const auto zns_span = zns_span_rates(kSpanPasses);
  std::printf("%-28s %12.0f pages/s\n", "FTL scalar write",
              ftl_span.scalar_pages_per_sec);
  std::printf("%-28s %12.0f pages/s  (%.2fx)\n", "FTL span write",
              ftl_span.span_pages_per_sec, ftl_span.speedup());
  std::printf("%-28s %10s\n", "FTL span == scalar (exact)",
              ftl_span.identical ? "PASS" : "FAIL");
  std::printf("%-28s %12.0f pages/s\n", "ZNS scalar append",
              zns_span.scalar_pages_per_sec);
  std::printf("%-28s %12.0f pages/s  (%.2fx)\n", "ZNS span append",
              zns_span.span_pages_per_sec, zns_span.speedup());
  std::printf("%-28s %10s\n", "ZNS span == scalar (exact)",
              zns_span.identical ? "PASS" : "FAIL");

  std::filesystem::create_directories("results");
  const std::string path = "results/BENCH_selfperf.json";
  if (std::FILE* f = std::fopen(path.c_str(), "w")) {
    std::fprintf(f,
                 "{\n"
                 "  \"batch_tasks\": %zu,\n"
                 "  \"jobs\": %u,\n"
                 "  \"hardware_threads\": %u,\n"
                 "  \"serial_seconds\": %.6f,\n"
                 "  \"parallel_seconds\": %.6f,\n"
                 "  \"serial_sims_per_sec\": %.4f,\n"
                 "  \"parallel_sims_per_sec\": %.4f,\n",
                 kTasks, jobs, exec::default_jobs(), serial.seconds,
                 parallel.seconds, serial_rate, parallel_rate);
    if (single_core) {
      // One core: both batches time-share it, so the ratio measures the OS
      // scheduler, not the executor.  Null plus an explicit reason beats a
      // misleading 1.0x.
      std::fprintf(f, "  \"speedup\": null,\n"
                      "  \"reason\": \"single-core\",\n");
    } else {
      std::fprintf(f, "  \"speedup\": %.4f,\n", speedup);
    }
    std::fprintf(f,
                 "  \"parallel_equals_serial\": %s,\n"
                 "  \"quick\": %s,\n"
                 "  \"micro\": {\n"
                 "    \"availability_queries_per_sec\": %.0f,\n"
                 "    \"ftl_writes_per_sec\": %.0f,\n"
                 "    \"ftl_remounts_per_sec\": %.2f,\n"
                 "    \"ftl_scalar_pages_per_sec\": %.0f,\n"
                 "    \"ftl_span_pages_per_sec\": %.0f,\n"
                 "    \"ftl_span_speedup\": %.4f,\n"
                 "    \"ftl_span_equals_scalar\": %s,\n"
                 "    \"zns_scalar_pages_per_sec\": %.0f,\n"
                 "    \"zns_span_pages_per_sec\": %.0f,\n"
                 "    \"zns_span_speedup\": %.4f,\n"
                 "    \"zns_span_equals_scalar\": %s\n"
                 "  }\n"
                 "}\n",
                 identical ? "true" : "false", quick ? "true" : "false",
                 avail_qps, ftl.writes_per_sec, ftl.remounts_per_sec,
                 ftl_span.scalar_pages_per_sec, ftl_span.span_pages_per_sec,
                 ftl_span.speedup(), ftl_span.identical ? "true" : "false",
                 zns_span.scalar_pages_per_sec, zns_span.span_pages_per_sec,
                 zns_span.speedup(), zns_span.identical ? "true" : "false");
    std::fclose(f);
    std::printf("\nwrote %s\n", path.c_str());
  } else {
    std::printf("\ncould not write %s\n", path.c_str());
  }

  const bool spans_exact = ftl_span.identical && zns_span.identical;
  std::printf(
      "\nthe speedup targets (>= 4x batch at --jobs 8, >= 3x span writes) "
      "are\nmachine-dependent; the exact-equality checks are the gate on "
      "any machine.  %s\n",
      (identical && spans_exact) ? "PASS" : "FAIL");
  return (identical && spans_exact) ? 0 : 1;
}
