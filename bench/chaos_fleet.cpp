// Chaos sweep over fleet failure domains: kill-points x fleet sizes.
//
// For each fleet size the harness first measures a healthy baseline, then
// re-runs the identical workload with CSD 0 killed permanently at a sweep of
// virtual-time fractions of the baseline makespan, and gates on the three
// robustness contracts of the serving loop:
//
//   1. Conservation — every offered job resolves exactly once:
//      total == admitted + rejected + deadline_rejected and
//      admitted == completed + deadline_missed + retry_exhausted
//      (the serving loop ISP_CHECKs the same identities internally and at
//      every snapshot row; the bench re-asserts them from the report).
//   2. Determinism — the kill run's digest is byte-identical across
//      --jobs values (each grid point re-runs at --jobs 1 and compares).
//   3. Bounded degradation — killing 1 of 4 devices mid-run costs at most
//      35% of baseline throughput (lost work is retried, queued work
//      re-prices over the survivors and the host lane).
//
// A final section arms the seed-deterministic DeviceFailure *rate* schedule
// (exponential first arrival per device) instead of an explicit kill list,
// checking the same conservation and determinism gates.
//
// Flags (strict parsing, exit 2 on malformed values — the PR 2 convention):
//   --fleet F              largest fleet size in the sweep            [4]
//   --kill-device k@t      explicit kill schedule (repeatable); replaces
//                          the fractional kill-point sweep
//   --retry-budget R       serve-layer retries per lost job           [2]
//   --breaker-threshold X  breaker trip score                         [12]
//   --fleet-skew S         per-device CSE availability skew           [0.05]
//   --deadline S           per-job start deadline in virtual seconds
//                          (0 disables deadlines)                     [0]
//   --fail-rate R          DeviceFailure rate for the seeded section  [0.05]
//   --plan-cache on|off    incremental lane index + Eq.1 bid cache    [on]
//   --sim-cache on|off     digest-verified engine-run memo cache      [on]
//   --trace-out P          write the last kill run's fleet timeline
//   --jobs N               worker threads for the simulation batches
//   --quick                one kill point, largest fleet only (CI)
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include "bench/bench_util.hpp"
#include "exec/cli.hpp"
#include "serve/observe.hpp"
#include "serve/server.hpp"

namespace {

using Clock = std::chrono::steady_clock;

struct ChaosKnobs {
  std::uint32_t retry_budget = 2;
  double breaker_threshold = 12.0;
  double fleet_skew = 0.05;
  double slo = 0.0;
  unsigned jobs = 1;
  // Hot-path caches (PR 7) — exact either way; the determinism gate below
  // holds with any combination of the two toggles.
  bool plan_cache = true;
  bool sim_cache = true;
};

isp::serve::ServeConfig make_config(std::size_t fleet,
                                    const ChaosKnobs& knobs) {
  using namespace isp;
  serve::ServeConfig config;
  config.fleet = serve::FleetConfig::make(fleet, 1, knobs.fleet_skew);
  config.tenants.clear();
  for (std::size_t t = 0; t < 3; ++t) {
    serve::TenantConfig tc;
    tc.weight = static_cast<double>(1ULL << t);  // 1, 2, 4
    tc.queue_depth = 16;
    if (knobs.slo > 0.0) tc.slo = Seconds{knobs.slo};
    config.tenants.push_back(tc);
  }
  config.job_classes = {serve::JobClass{.app = "tpch-q6", .size_factor = 0.2},
                        serve::JobClass{.app = "kmeans", .size_factor = 0.05}};
  config.total_jobs = 48;
  config.offered_load = 1.0;
  config.jobs = knobs.jobs;
  config.retry_budget = knobs.retry_budget;
  config.breaker.threshold = knobs.breaker_threshold;
  config.plan_cache = knobs.plan_cache;
  config.sim_cache = knobs.sim_cache;
  return config;
}

/// Re-assert the conservation identities straight off the report.
bool conserved(const isp::serve::ServeReport& r) {
  return r.total_jobs ==
             r.admitted + r.rejected + r.deadline_rejected &&
         r.admitted ==
             r.completed + r.deadline_missed + r.retry_exhausted;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace isp;
  ChaosKnobs knobs;
  knobs.jobs = exec::jobs_from_args(argc, argv);
  const bool quick = exec::flag_present(argc, argv, "--quick");
  const auto fleet_max = static_cast<std::size_t>(
      exec::u64_flag(argc, argv, "--fleet", 4, 2, 64));
  knobs.retry_budget = static_cast<std::uint32_t>(
      exec::u64_flag(argc, argv, "--retry-budget", 2, 0, 64));
  knobs.breaker_threshold =
      exec::double_flag(argc, argv, "--breaker-threshold", 12.0, 1e-3, 1e6);
  knobs.fleet_skew =
      exec::double_flag(argc, argv, "--fleet-skew", 0.05, 0.0, 0.33);
  knobs.slo = exec::double_flag(argc, argv, "--deadline", 0.0, 0.0, 1e6);
  knobs.plan_cache = exec::on_off_flag(argc, argv, "--plan-cache", true);
  knobs.sim_cache = exec::on_off_flag(argc, argv, "--sim-cache", true);
  const double fail_rate =
      exec::double_flag(argc, argv, "--fail-rate", 0.05, 0.0, 1e3);
  const char* trace_out = exec::string_flag(argc, argv, "--trace-out", nullptr);
  const auto explicit_kills = exec::kill_flags(argc, argv, "--kill-device");

  std::vector<std::size_t> fleets;
  if (!quick) {
    for (std::size_t f = 2; f < fleet_max; f *= 2) fleets.push_back(f);
  }
  fleets.push_back(fleet_max);
  const std::vector<double> kill_fracs =
      quick ? std::vector<double>{0.5}
            : std::vector<double>{0.25, 0.5, 0.75};

  bench::print_header(
      "Chaos fleet: permanent device failure x fleet size, retry + "
      "breaker + conservation gates");
  std::printf("48 jobs per point, retry budget %u, breaker threshold %.1f, "
              "skew %.2f, slo %s\n\n",
              knobs.retry_budget, knobs.breaker_threshold, knobs.fleet_skew,
              knobs.slo > 0.0 ? (std::to_string(knobs.slo) + " s").c_str()
                              : "off");
  std::printf("%5s %9s | %5s %5s %5s %5s %5s | %8s %8s %7s | %4s %4s\n",
              "fleet", "kill", "admit", "done", "retry", "lost", "exh",
              "base/s", "thru/s", "degr%", "cons", "det");
  bench::print_rule();

  const auto wall0 = Clock::now();
  std::vector<std::string> entries;
  bool ok = true;

  for (const std::size_t fleet : fleets) {
    // Healthy baseline fixes the kill points and the degradation yardstick.
    const auto base_config = make_config(fleet, knobs);
    const auto base = serve::serve(base_config);
    ok = ok && conserved(base);

    std::vector<std::vector<serve::KillDevice>> schedules;
    if (!explicit_kills.empty()) {
      std::vector<serve::KillDevice> schedule;
      for (const auto& k : explicit_kills) {
        schedule.push_back(serve::KillDevice{
            .device = k.device, .at = SimTime::zero() + Seconds{k.at}});
      }
      schedules.push_back(std::move(schedule));
    } else {
      for (const double frac : kill_fracs) {
        schedules.push_back({serve::KillDevice{
            .device = 0,
            .at = SimTime::zero() +
                  Seconds{base.makespan.seconds() * frac}}});
      }
    }

    for (const auto& schedule : schedules) {
      auto config = make_config(fleet, knobs);
      config.kill_devices = schedule;
      const auto report = serve::serve(config);

      // Determinism across worker counts: the serial re-run must produce
      // the same digest byte for byte.
      auto serial = config;
      serial.jobs = 1;
      const auto redo = serve::serve(serial);
      const bool deterministic = redo.digest == report.digest;

      const bool conserve_ok = conserved(report);
      const double degradation =
          base.throughput > 0.0
              ? 1.0 - report.throughput / base.throughput
              : 0.0;
      // The headline gate: 1 dead device out of 4 costs at most 35%.
      const bool degr_ok = fleet != 4 || schedule.size() != 1 ||
                           degradation <= 0.35;
      ok = ok && conserve_ok && deterministic && degr_ok;

      std::printf("%5zu %8.3fs | %5llu %5llu %5llu %5llu %5llu | %8.3f "
                  "%8.3f %6.1f%% | %4s %4s\n",
                  fleet, schedule.front().at.seconds(),
                  static_cast<unsigned long long>(report.admitted),
                  static_cast<unsigned long long>(report.completed),
                  static_cast<unsigned long long>(report.retried),
                  static_cast<unsigned long long>(report.lost_in_flight),
                  static_cast<unsigned long long>(report.retry_exhausted),
                  base.throughput, report.throughput, 100.0 * degradation,
                  conserve_ok ? "ok" : "LEAK",
                  deterministic ? "ok" : "DIFF");
      char head[160];
      std::snprintf(head, sizeof(head),
                    "{\"kind\": \"kill\", \"fleet\": %zu, "
                    "\"kill_at_s\": %.6f, \"degradation\": %.6f,\n",
                    fleet, schedule.front().at.seconds(), degradation);
      entries.push_back(std::string(head) + "\"report\": " +
                        report.to_json() + "}");

      // Fleet timeline of the last kill run (virtual-time only, so the file
      // is byte-identical across --jobs values) — the CI failure artifact.
      if (trace_out != nullptr && fleet == fleets.back() &&
          &schedule == &schedules.back()) {
        serve::to_fleet_timeline(report).write(trace_out);
        std::fprintf(stderr, "[chaos_fleet] wrote %s\n", trace_out);
      }
    }
  }

  // Seeded whole-fleet failure schedule: same gates, no explicit kill list.
  if (fail_rate > 0.0 && explicit_kills.empty()) {
    auto config = make_config(fleet_max, knobs);
    config.fault.set_rate(fault::Site::DeviceFailure, fail_rate);
    const auto report = serve::serve(config);
    auto serial = config;
    serial.jobs = 1;
    const bool deterministic = serve::serve(serial).digest == report.digest;
    const bool conserve_ok = conserved(report);
    ok = ok && conserve_ok && deterministic;
    std::printf("%5zu %8s | %5llu %5llu %5llu %5llu %5llu | %8s %8.3f "
                "%7s | %4s %4s\n",
                fleet_max, "seeded",
                static_cast<unsigned long long>(report.admitted),
                static_cast<unsigned long long>(report.completed),
                static_cast<unsigned long long>(report.retried),
                static_cast<unsigned long long>(report.lost_in_flight),
                static_cast<unsigned long long>(report.retry_exhausted),
                "-", report.throughput, "-",
                conserve_ok ? "ok" : "LEAK", deterministic ? "ok" : "DIFF");
    char head[160];
    std::snprintf(head, sizeof(head),
                  "{\"kind\": \"seeded\", \"fleet\": %zu, "
                  "\"fail_rate\": %.6f, \"devices_failed\": %llu,\n",
                  fleet_max, fail_rate,
                  static_cast<unsigned long long>(report.devices_failed));
    entries.push_back(std::string(head) + "\"report\": " +
                      report.to_json() + "}");
  }

  const double wall =
      std::chrono::duration<double>(Clock::now() - wall0).count();

  std::filesystem::create_directories("results");
  const std::string path = "results/BENCH_chaos.json";
  if (std::FILE* f = std::fopen(path.c_str(), "w")) {
    std::fprintf(f, "{\n  \"sweep\": [\n");
    for (std::size_t i = 0; i < entries.size(); ++i) {
      std::fputs(entries[i].c_str(), f);
      if (i + 1 < entries.size()) std::fputs(",\n", f);
    }
    std::fprintf(f, "  ]\n}\n");
    std::fclose(f);
    std::printf("\nwrote %s\n", path.c_str());
  } else {
    std::printf("\ncould not write %s\n", path.c_str());
    ok = false;
  }

  std::fprintf(stderr, "[chaos_fleet] wall %.2f s at --jobs %u\n", wall,
               knobs.jobs);
  std::printf("\n%s\n", ok ? "ALL PASS" : "FAILURES ABOVE");
  return ok ? 0 : 1;
}
