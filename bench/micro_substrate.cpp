// Substrate microbenchmarks (DESIGN.md E8), on google-benchmark.
//
// These measure the *simulator's own* cost — how fast the FTL, queue pairs,
// allocator, curve fitter and availability integrator run on the build
// machine — so regressions in the substrate are caught independently of the
// modelled experiment results.
#include <benchmark/benchmark.h>

#include <vector>

#include "common/rng.hpp"
#include "fit/curve_fit.hpp"
#include "flash/flash_array.hpp"
#include "flash/ftl.hpp"
#include "mem/allocator.hpp"
#include "nvme/call_queue.hpp"
#include "nvme/queue.hpp"
#include "sim/availability.hpp"
#include "sim/simulator.hpp"

namespace {

using namespace isp;

void BM_FtlWriteWithGc(benchmark::State& state) {
  flash::FtlConfig config;
  config.geometry.channels = 2;
  config.geometry.dies_per_channel = 2;
  config.geometry.blocks_per_die = 64;
  config.geometry.pages_per_block = 64;
  flash::Ftl ftl(config);
  Rng rng(7);
  const auto span = ftl.logical_pages();
  for (auto _ : state) {
    ftl.write(rng.uniform_u64(0, span - 1));
  }
  state.counters["write_amp"] = ftl.stats().write_amplification();
}
BENCHMARK(BM_FtlWriteWithGc);

void BM_QueuePairRoundTrip(benchmark::State& state) {
  nvme::QueuePair qp(1, 64);
  std::uint16_t id = 0;
  for (auto _ : state) {
    qp.sq().push(nvme::SubmissionEntry{.opcode = nvme::Opcode::Read,
                                       .command_id = id});
    const auto sub = qp.sq().pop();
    qp.cq().push(nvme::CompletionEntry{sub->command_id});
    benchmark::DoNotOptimize(qp.cq().pop());
    ++id;
  }
}
BENCHMARK(BM_QueuePairRoundTrip);

void BM_StatusQueuePost(benchmark::State& state) {
  nvme::StatusQueue queue(256);
  std::uint32_t chunk = 0;
  for (auto _ : state) {
    nvme::StatusEntry entry;
    entry.line = 1;
    entry.chunk = chunk++;
    queue.post(entry);
    benchmark::DoNotOptimize(queue.poll());
  }
}
BENCHMARK(BM_StatusQueuePost);

void BM_CurveFit(benchmark::State& state) {
  const std::vector<double> n = {1000, 2000, 4000, 8000};
  const std::vector<double> y = {10.1, 19.8, 40.5, 79.9};
  for (auto _ : state) {
    benchmark::DoNotOptimize(fit::fit_best(n, y));
  }
}
BENCHMARK(BM_CurveFit);

void BM_AllocatorChurn(benchmark::State& state) {
  const mem::Window window{mem::MemKind::HostDram, 0, 64_MiB};
  mem::Allocator allocator(window);
  Rng rng(13);
  std::vector<mem::Allocation> live;
  for (auto _ : state) {
    if (live.size() < 32 || rng.next_double() < 0.5) {
      const auto alloc =
          allocator.allocate(Bytes{rng.uniform_u64(64, 64 * 1024)});
      if (alloc) live.push_back(*alloc);
    } else {
      const auto idx = rng.uniform_u64(0, live.size() - 1);
      allocator.release(live[idx]);
      live[idx] = live.back();
      live.pop_back();
    }
  }
}
BENCHMARK(BM_AllocatorChurn);

void BM_AvailabilityIntegrate(benchmark::State& state) {
  std::vector<std::pair<SimTime, double>> steps;
  for (int i = 0; i < 64; ++i) {
    steps.emplace_back(SimTime{i * 0.5}, (i % 2) == 0 ? 1.0 : 0.25);
  }
  const auto schedule = sim::AvailabilitySchedule::steps(std::move(steps));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        schedule.finish_time(SimTime{0.1}, Seconds{7.3}));
  }
}
BENCHMARK(BM_AvailabilityIntegrate);

void BM_SimulatorEvents(benchmark::State& state) {
  for (auto _ : state) {
    sim::Simulator simulator;
    int remaining = 1000;
    std::function<void()> tick = [&] {
      if (--remaining > 0) simulator.schedule(Seconds{1e-6}, tick);
    };
    simulator.schedule(Seconds{1e-6}, tick);
    simulator.run();
    benchmark::DoNotOptimize(simulator.events_executed());
  }
}
BENCHMARK(BM_SimulatorEvents);

void BM_FlashAnalyticRead(benchmark::State& state) {
  flash::FlashArray array;
  for (auto _ : state) {
    benchmark::DoNotOptimize(array.read_seconds(gigabytes(6.9)));
  }
}
BENCHMARK(BM_FlashAnalyticRead);

}  // namespace

BENCHMARK_MAIN();
