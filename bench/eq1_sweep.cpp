// Equation 1 ablation (DESIGN.md E7): the analytic net-profit surface.
//
// Sweeps the two quantities Equation 1 trades off — the data-reduction
// factor DS_processed/DS_raw and the device/host compute ratio
// CT_device/CT_host — on the paper's platform constants (5 GB/s link,
// 9 GB/s internal NAND), and prints where offload is profitable.  The second
// table verifies consistency: for every Table-I application, each region set
// chosen by Algorithm 1 must have positive measured profit versus host-only.
#include <cstdio>
#include <vector>

#include "apps/registry.hpp"
#include "baseline/baselines.hpp"
#include "bench/bench_util.hpp"
#include "exec/cli.hpp"
#include "exec/pool.hpp"
#include "plan/equation1.hpp"

int main(int argc, char** argv) {
  using namespace isp;
  const unsigned jobs = exec::jobs_from_args(argc, argv);

  bench::print_header(
      "Equation 1: net profit S (seconds) for a 6.9 GB task, CT_host = 5 s");
  const Bytes ds_raw = gigabytes(6.9);
  const Seconds ct_host{5.0};
  const auto bw = gb_per_s(5.0);
  const auto nand = gb_per_s(9.0);

  const std::vector<double> reductions = {0.01, 0.1, 0.25, 0.5, 0.75, 1.0};
  const std::vector<double> compute_ratios = {0.6, 0.8, 1.0, 1.2, 1.5, 2.0};

  std::printf("%-18s", "CTdev/CThost \\ red");
  for (const auto r : reductions) std::printf(" %8.2f", r);
  std::printf("\n");
  bench::print_rule();
  for (const auto c : compute_ratios) {
    std::printf("%-18.2f", c);
    for (const auto r : reductions) {
      // CT_device includes the internal flash read of the raw input.
      const plan::Eq1Terms terms{
          .ds_raw = ds_raw,
          .ct_host = ct_host,
          .ct_device = ct_host * c + ds_raw / nand,
          .ds_processed = scale(ds_raw, r),
          .bw_d2h = bw};
      std::printf(" %+8.2f", plan::net_profit(terms).value());
    }
    std::printf("\n");
  }

  bench::print_header(
      "Consistency: measured profit of each application's chosen region set");
  std::printf("%-14s %12s %12s %10s\n", "app", "host-only", "with ISP",
              "S (s)");
  bench::print_rule();
  bool all_positive = true;
  // One independent oracle run per Table-I app: fan out, print in table
  // order (run_batch keeps results in submission order).
  struct Row {
    double host_only = 0.0;
    double best = 0.0;
  };
  const auto& table_apps = apps::table1_apps();
  const auto rows = exec::run_batch(
      table_apps.size(),
      [&](std::size_t i) {
        apps::AppConfig config;
        const auto program = apps::make_app(table_apps[i].name, config);
        system::SystemModel system;
        const auto oracle =
            baseline::programmer_directed_plan(system, program);
        return Row{oracle.host_only_latency.value(),
                   oracle.best_latency.value()};
      },
      jobs);
  for (std::size_t i = 0; i < table_apps.size(); ++i) {
    const double s = rows[i].host_only - rows[i].best;
    all_positive = all_positive && (s >= 0.0);
    std::printf("%-14s %11.2fs %11.2fs %+9.2fs\n",
                table_apps[i].name.c_str(), rows[i].host_only, rows[i].best,
                s);
  }
  bench::print_rule();
  std::printf("every chosen region set profitable: %s\n",
              all_positive ? "yes" : "NO");
  return 0;
}
