// Crash-point sweep: power-loss at every K-th event boundary, recover,
// assert host-identical output.
//
// For each application the harness runs once fault-free to fix the
// reference output digest, then re-runs with the PowerLoss site armed to
// fire exactly once — at boundary 0, K, 2K, … — until the program finishes
// before the armed boundary.  Every crashed run must
//   1. produce a byte-identical output digest (the engine restarted the
//      lost offloaded work, nothing was skipped or double-applied);
//   2. leave the remounted FTL with every invariant intact
//      (journal/checkpoint replay + OOB tail scan rebuilt a consistent map);
//   3. keep the recovery overhead bounded (downtime + remount + re-staging
//      stays a small multiple of the power-cycle cost, never a re-run).
#include <cstdio>
#include <string>

#include "apps/registry.hpp"
#include "baseline/baselines.hpp"
#include "bench/bench_util.hpp"
#include "exec/cli.hpp"
#include "recovery/recovery.hpp"
#include "system/model.hpp"

namespace {

constexpr std::uint64_t kMinCrashPoints = 50;

/// Recovery overhead bound per crash: power-cycle downtime plus remount
/// media reads is the floor; re-staging inputs and the code image rides on
/// top.  A multiple of the fault-free total catches runaway re-execution.
constexpr double kRecoverySlack = 0.5;

bool sweep_app(const std::string& app_name, std::uint64_t stride,
               unsigned jobs,
               std::uint64_t min_points = kMinCrashPoints) {
  using namespace isp;
  apps::AppConfig config;
  const auto program = apps::make_app(app_name, config);

  system::SystemModel plan_system;
  const auto oracle = baseline::programmer_directed_plan(plan_system, program);

  recovery::CrashSweepOptions options;
  options.stride = stride;
  options.jobs = jobs;
  const auto sweep = recovery::crash_sweep(program, oracle.best, options);

  std::uint64_t mismatches = 0;
  std::uint64_t broken_ftl = 0;
  for (const auto& p : sweep.points) {
    if (!p.output_matches) ++mismatches;
    if (!p.ftl_invariants_ok) ++broken_ftl;
  }
  const bool enough = sweep.points.size() >= min_points;
  const bool bounded =
      sweep.worst_recovery().value() <=
      sweep.reference_total.value() * kRecoverySlack;
  const bool ok = enough && mismatches == 0 && broken_ftl == 0 && bounded;

  std::printf(
      "%-14s stride %2llu: %4zu crash points, %llu digest mismatches, "
      "%llu FTL violations, worst recovery %.4f s (ref %.3f s)  %s\n",
      app_name.c_str(), static_cast<unsigned long long>(stride),
      sweep.points.size(), static_cast<unsigned long long>(mismatches),
      static_cast<unsigned long long>(broken_ftl),
      sweep.worst_recovery().value(), sweep.reference_total.value(),
      ok ? "PASS" : "FAIL");
  return ok;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace isp;
  const unsigned jobs = exec::jobs_from_args(argc, argv);
  // --quick: one app, coarse stride (sanitizer CI).
  const bool quick = exec::flag_present(argc, argv, "--quick");
  bench::print_header(
      "Crash-point sweep: power loss at every event boundary, recover, "
      "verify");
  std::printf("each crashed run must match the fault-free output digest and "
              "remount a\nconsistent FTL; >= %llu crash points per app\n\n",
              static_cast<unsigned long long>(quick ? 10 : kMinCrashPoints));

  bool ok = true;
  if (quick) {
    ok &= sweep_app("tpch-q6", 12, jobs, 10);
  } else {
    ok &= sweep_app("tpch-q6", 2, jobs);
    ok &= sweep_app("kmeans", 4, jobs);
    ok &= sweep_app("blackscholes", 3, jobs);
  }

  std::printf("\n%s\n", ok ? "ALL PASS" : "FAILURES ABOVE");
  return ok ? 0 : 1;
}
