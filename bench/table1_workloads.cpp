// Table I: the applications, their input data sizes and their
// single-entry-single-exit code regions.
//
// Regenerates the table from the actual registered programs: the storage
// footprint each program references and the code-region (line) inventory the
// runtime sees.  SparseMV is listed separately (it appears in §V's analysis
// and Figure 5 but not in Table I).
#include <cstdio>

#include "apps/registry.hpp"
#include "bench/bench_util.hpp"

int main() {
  using namespace isp;

  bench::print_header(
      "Table I: applications, input data sizes, SESE code regions");
  std::printf("%-14s %10s %10s %8s  %s\n", "app", "paper", "measured",
              "regions", "description");
  bench::print_rule();

  for (const auto& app : apps::all_apps()) {
    apps::AppConfig config;
    const auto program = apps::make_app(app.name, config);
    program.validate();
    std::printf("%-14s %8.1fGB %8.2fGB %8zu  %s%s\n", app.name.c_str(),
                app.table1_bytes.as_double() / 1e9,
                program.total_storage_bytes().as_double() / 1e9,
                program.line_count(), app.description.c_str(),
                app.in_table1 ? "" : "  [not in Table I]");
  }

  bench::print_rule();
  std::printf("\nper-application code regions (the runtime's placement unit):\n");
  for (const auto& app : apps::all_apps()) {
    apps::AppConfig config;
    const auto program = apps::make_app(app.name, config);
    std::printf("\n%s:\n", app.name.c_str());
    for (std::size_t i = 0; i < program.line_count(); ++i) {
      const auto& line = program.lines()[i];
      std::printf("  [%zu] %s\n", i, line.name.c_str());
    }
  }
  return 0;
}
