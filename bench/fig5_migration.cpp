// Figure 5 + §V "ActivePy with dynamic task migration".
//
// Methodology (paper): co-running work stresses the CSD processor right
// after each application's ISP tasks make 50% of their progress, leaving the
// ISP workload only 50% (mild) or 10% (severe) of the CSE.  Two builds run:
// full ActivePy, and a crippled ActivePy that cannot migrate (the behaviour
// of conventional compiled-language ISP frameworks).
//
// Paper's reported numbers at 10% availability: migration outperforms
// no-migration by 2.82x; with migration the result sits ~8% below the no-CSD
// baseline (code regeneration + remote access to live data); without
// migration the loss averages 67% and peaks at 88%.  At 50%, ActivePy
// chooses to migrate for Blackscholes, KMeans, SparseMV, MixedGEMM, TPC-H-1
// and TPC-H-14, and beats no-migration everywhere except Blackscholes.
#include <cstdio>
#include <vector>

#include "apps/registry.hpp"
#include "baseline/baselines.hpp"
#include "bench/bench_util.hpp"
#include "runtime/active_runtime.hpp"

namespace {

struct Row {
  std::string name;
  double with_x = 0.0;     // speedup vs no-CSD baseline, migration on
  double without_x = 0.0;  // speedup vs no-CSD baseline, migration off
  bool migrated = false;
};

std::vector<Row> sweep(double availability) {
  using namespace isp;
  std::vector<Row> rows;
  for (const auto& app : apps::all_apps()) {
    apps::AppConfig config;
    const auto program = apps::make_app(app.name, config);

    system::SystemModel base_system;
    const auto baseline = baseline::run_host_only(base_system, program);

    runtime::RunConfig rc;
    rc.engine.contention.enabled = true;
    rc.engine.contention.at_csd_progress = 0.5;
    rc.engine.contention.availability = availability;

    Row row;
    row.name = app.name;
    {
      system::SystemModel system;
      runtime::ActiveRuntime active(system);
      const auto result = active.run(program, rc);
      row.with_x = baseline.total.value() / result.end_to_end().value();
      row.migrated = result.report.migrations > 0;
    }
    {
      system::SystemModel system;
      runtime::RunConfig no_mig = rc;
      no_mig.engine.migration = false;
      runtime::ActiveRuntime active(system);
      const auto result = active.run(program, no_mig);
      row.without_x = baseline.total.value() / result.end_to_end().value();
    }
    rows.push_back(row);
  }
  return rows;
}

void print_sweep(double availability, const std::vector<Row>& rows) {
  using namespace isp;
  std::printf("\nCSE availability %.0f%% after 50%% ISP progress:\n",
              availability * 100.0);
  std::printf("%-14s %12s %12s %10s %10s\n", "app", "w/ mig (x)",
              "w/o mig (x)", "ratio", "migrated");
  bench::print_rule();
  std::vector<double> with_x, without_x, ratio, loss_without;
  for (const auto& r : rows) {
    std::printf("%-14s %11.2fx %11.2fx %9.2fx %10s\n", r.name.c_str(),
                r.with_x, r.without_x, r.with_x / r.without_x,
                r.migrated ? "yes" : "no");
    with_x.push_back(r.with_x);
    without_x.push_back(r.without_x);
    ratio.push_back(r.with_x / r.without_x);
    loss_without.push_back(1.0 - r.without_x);
  }
  bench::print_rule();
  double max_loss = 0.0;
  for (const auto l : loss_without) max_loss = l > max_loss ? l : max_loss;
  std::printf(
      "mean: w/ migration %.2fx of baseline (%.0f%% %s), w/o migration "
      "%.2fx,\n      migration advantage %.2fx, max loss w/o migration "
      "%.0f%%\n",
      bench::mean(with_x), 100.0 * std::abs(1.0 - bench::mean(with_x)),
      bench::mean(with_x) < 1.0 ? "slowdown" : "speedup",
      bench::mean(without_x), bench::mean(ratio), 100.0 * max_loss);
}

}  // namespace

int main() {
  using namespace isp;
  bench::print_header(
      "Figure 5: dynamic task migration under CSE contention (50% / 10% "
      "availability)");

  const auto at50 = sweep(0.5);
  print_sweep(0.5, at50);

  const auto at10 = sweep(0.1);
  print_sweep(0.1, at10);

  std::printf(
      "\npaper (10%%): migration advantage 2.82x; w/ migration ~8%% below "
      "baseline;\n             w/o migration avg 67%% loss, max 88%%\n");
  std::printf(
      "paper (50%%): migrates for blackscholes, kmeans, sparsemv, mixedgemm, "
      "tpch-q1, tpch-q14;\n             w/ >= w/o everywhere except "
      "blackscholes\n");
  return 0;
}
