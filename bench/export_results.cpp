// Machine-readable export of the headline experiments.
//
//   $ ./bench/export_results [output-dir]      (default ./results)
//
// Writes CSV series for Figures 2/4/5 plus per-app JSON execution reports —
// the artefacts a plotting pipeline or CI trend tracker consumes.  The same
// code paths as the printing benches; only the output format differs.
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>

#include "apps/registry.hpp"
#include "baseline/baselines.hpp"
#include "common/error.hpp"
#include "runtime/active_runtime.hpp"

namespace {

using namespace isp;

std::ofstream open_csv(const std::filesystem::path& path,
                       const std::string& header) {
  std::ofstream out(path);
  ISP_CHECK(out.good(), "cannot open " << path.string());
  out << header << "\n";
  return out;
}

void export_fig4(const std::filesystem::path& dir) {
  auto csv = open_csv(dir / "fig4_overall.csv",
                      "app,baseline_s,directed_speedup,activecpp_speedup,"
                      "overhead_s,plans_identical,csd_lines");
  for (const auto& app : apps::table1_apps()) {
    apps::AppConfig config;
    const auto program = apps::make_app(app.name, config);
    system::SystemModel system;
    const auto baseline = baseline::run_host_only(system, program);
    const auto oracle = baseline::programmer_directed_plan(system, program);
    const auto directed = baseline::run_static_isp(
        system, program, oracle.best, sim::AvailabilitySchedule::constant(1.0));
    runtime::ActiveRuntime active(system);
    const auto result = active.run(program);

    csv << app.name << "," << baseline.total.value() << ","
        << baseline.total.value() / directed.total.value() << ","
        << baseline.total.value() / result.end_to_end().value() << ","
        << (result.sampling_overhead + result.report.compile_overhead).value()
        << ","
        << (result.plan.placement == oracle.best.placement ? 1 : 0) << ","
        << result.plan.csd_line_count() << "\n";

    // Per-app execution report for deep dives.
    std::ofstream json(dir / ("report_" + app.name + ".json"));
    json << result.report.to_json();
  }
}

void export_fig2(const std::filesystem::path& dir) {
  auto csv = open_csv(dir / "fig2_static_isp.csv",
                      "app,availability,speedup");
  for (const char* name : {"tpch-q1", "tpch-q6", "tpch-q14"}) {
    apps::AppConfig config;
    const auto program = apps::make_app(name, config);
    system::SystemModel system;
    const auto baseline = baseline::run_host_only(system, program);
    const auto oracle = baseline::programmer_directed_plan(system, program);
    for (int pct = 100; pct >= 10; pct -= 10) {
      system::SystemModel run_system;
      const auto report = baseline::run_static_isp(
          run_system, program, oracle.best,
          sim::AvailabilitySchedule::constant(pct / 100.0));
      csv << name << "," << pct << ","
          << baseline.total.value() / report.total.value() << "\n";
    }
  }
}

void export_fig5(const std::filesystem::path& dir) {
  auto csv = open_csv(dir / "fig5_migration.csv",
                      "app,availability,with_migration_speedup,"
                      "without_migration_speedup,migrated");
  for (const auto& app : apps::all_apps()) {
    apps::AppConfig config;
    const auto program = apps::make_app(app.name, config);
    system::SystemModel base_system;
    const auto baseline = baseline::run_host_only(base_system, program);
    for (const double avail : {0.5, 0.1}) {
      runtime::RunConfig rc;
      rc.engine.contention.enabled = true;
      rc.engine.contention.at_csd_progress = 0.5;
      rc.engine.contention.availability = avail;

      system::SystemModel with_system;
      runtime::ActiveRuntime with_runtime(with_system);
      const auto with = with_runtime.run(program, rc);

      auto no_mig = rc;
      no_mig.engine.migration = false;
      system::SystemModel without_system;
      runtime::ActiveRuntime without_runtime(without_system);
      const auto without = without_runtime.run(program, no_mig);

      csv << app.name << "," << avail << ","
          << baseline.total.value() / with.end_to_end().value() << ","
          << baseline.total.value() / without.end_to_end().value() << ","
          << (with.report.migrations > 0 ? 1 : 0) << "\n";
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  const std::filesystem::path dir = argc > 1 ? argv[1] : "results";
  std::filesystem::create_directories(dir);
  export_fig4(dir);
  std::printf("wrote %s/fig4_overall.csv + per-app JSON reports\n",
              dir.string().c_str());
  export_fig2(dir);
  std::printf("wrote %s/fig2_static_isp.csv\n", dir.string().c_str());
  export_fig5(dir);
  std::printf("wrote %s/fig5_migration.csv\n", dir.string().c_str());
  return 0;
}
