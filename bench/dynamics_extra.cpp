// System-dynamics ablations beyond Figures 2/5 (DESIGN.md extensions).
//
// §II-B(3) names three sources of dynamics that break static ISP plans:
//   (1) resource contention from other applications — on the CSD (Figures
//       2/5) but also on the HOST, which cuts the other way: a busy host
//       makes offload *more* attractive;
//   (2) contention from storage-management workloads — the FTL's garbage
//       collection stealing internal bandwidth;
//   (3) the change of input datasets itself — here, a dataset grown past the
//       CSE's cache-friendly regime, stalling the in-order cores below the
//       instruction rate the sampling phase projected.
// Plus the §III-C(a) attachment ablation: PCIe/BAR versus NVMe-oF/RDMA.
#include <cstdio>

#include "apps/registry.hpp"
#include "baseline/baselines.hpp"
#include "bench/bench_util.hpp"
#include "common/rng.hpp"
#include "flash/ftl.hpp"
#include "runtime/active_runtime.hpp"

namespace {

using namespace isp;

void host_contention_section() {
  bench::print_header(
      "Dynamic 1b: host-side contention (tpch-q6; CSD fully available)");
  std::printf("%-12s %12s %12s %10s\n", "host avail", "baseline", "activecpp",
              "speedup");
  bench::print_rule();
  for (const double avail : {1.0, 0.75, 0.5, 0.25}) {
    apps::AppConfig config;
    const auto program = apps::make_app("tpch-q6", config);

    runtime::EngineOptions host_busy;
    host_busy.monitoring = false;
    host_busy.migration = false;
    host_busy.host_availability = sim::AvailabilitySchedule::constant(avail);

    system::SystemModel base_system;
    const auto plan = ir::Plan::host_only(program.line_count());
    const auto baseline =
        runtime::run_program(base_system, program, plan,
                             codegen::ExecMode::NativeC, host_busy);

    system::SystemModel system;
    runtime::RunConfig rc;
    rc.engine.host_availability = sim::AvailabilitySchedule::constant(avail);
    runtime::ActiveRuntime active(system);
    const auto result = active.run(program, rc);

    std::printf("%11.0f%% %11.2fs %11.2fs %9.2fx\n", avail * 100.0,
                baseline.total.value(), result.end_to_end().value(),
                baseline.total.value() / result.end_to_end().value());
  }
  std::printf(
      "expected: offload pays MORE as the host loses cycles — the CSD-side\n"
      "portion is immune to host contention.\n");
}

void gc_contention_section() {
  bench::print_header(
      "Dynamic 2: storage-management (GC) contention on internal bandwidth");
  // Drive a small FTL through co-tenant overwrite churn and measure the
  // fraction of array bandwidth GC consumes at steady state.
  flash::FtlConfig ftl_config;
  ftl_config.geometry.channels = 2;
  ftl_config.geometry.dies_per_channel = 2;
  ftl_config.geometry.blocks_per_die = 64;
  ftl_config.geometry.pages_per_block = 64;
  ftl_config.overprovision = 0.1;
  flash::Ftl ftl(ftl_config);
  Rng rng(3);
  for (int i = 0; i < 200000; ++i) {
    ftl.write(rng.uniform_u64(0, ftl.logical_pages() - 1));
  }
  const double pressure = ftl.gc_pressure();
  std::printf(
      "steady-state overwrite churn: write amplification %.2f, GC consumes "
      "%.0f%% of\ninternal bandwidth\n\n",
      ftl.stats().write_amplification(), pressure * 100.0);

  std::printf("%-14s %12s %12s %10s\n", "gc pressure", "baseline",
              "static ISP", "speedup");
  bench::print_rule();
  for (const double p : {0.0, pressure / 2.0, pressure, 0.6}) {
    apps::AppConfig config;
    const auto program = apps::make_app("tpch-q6", config);
    system::SystemModel system;
    system.csd_device().flash_array().set_availability(
        sim::AvailabilitySchedule::constant(1.0 - p));
    const auto baseline = baseline::run_host_only(system, program);
    const auto oracle = baseline::programmer_directed_plan(system, program);
    const auto isp_run = baseline::run_static_isp(
        system, program, oracle.best, sim::AvailabilitySchedule::constant(1.0));
    std::printf("%13.0f%% %11.2fs %11.2fs %9.2fx\n", p * 100.0,
                baseline.total.value(), isp_run.total.value(),
                baseline.total.value() / isp_run.total.value());
  }
  std::printf(
      "expected: GC erodes the 9-vs-5 GB/s bandwidth advantage that funds "
      "ISP.\n");
}

void input_change_section() {
  bench::print_header(
      "Dynamic 3: input change — working set outgrows the CSE caches");
  // The dataset the sampling phase profiled behaved; at raw scale the scan's
  // working set blows the device caches, and the in-order CSE cores stall to
  // a third of the projected instruction rate.  Stalls burn time without
  // retiring instructions, so the monitor sees the rate collapse.
  apps::AppConfig config;
  auto program = apps::make_app("tpch-q6", config);
  auto& scan = program.line_mut(0);
  scan.cost.csd_stall_knee_elems =
      scan.elems_for(program.total_storage_bytes()) / 2.0;
  scan.cost.csd_stall_multiplier = 3.0;

  system::SystemModel base_system;
  const auto baseline = baseline::run_host_only(base_system, program);

  std::printf("%-22s %12s %10s %10s\n", "configuration", "end-to-end",
              "speedup", "migrated");
  bench::print_rule();

  runtime::RunConfig rc;  // monitoring + migration on by default
  {
    system::SystemModel system;
    runtime::ActiveRuntime active(system);
    const auto result = active.run(program, rc);
    std::printf("%-22s %11.2fs %9.2fx %10s\n", "activecpp (full)",
                result.end_to_end().value(),
                baseline.total.value() / result.end_to_end().value(),
                result.report.migrations > 0 ? "yes" : "no");
  }
  {
    system::SystemModel system;
    auto no_mig = rc;
    no_mig.engine.migration = false;
    runtime::ActiveRuntime active(system);
    const auto result = active.run(program, no_mig);
    std::printf("%-22s %11.2fs %9.2fx %10s\n", "activecpp w/o migration",
                result.end_to_end().value(),
                baseline.total.value() / result.end_to_end().value(), "no");
  }
  std::printf("no-CSD baseline: %.2f s\n", baseline.total.value());
  std::printf(
      "expected: the stale plan stalls on the CSD; only the monitor+migration\n"
      "path recovers to roughly baseline performance.\n");
}

void attachment_section() {
  bench::print_header(
      "Attachment ablation (§III-C(a)): PCIe/BAR vs NVMe-oF/RDMA");
  std::printf("%-12s %12s %12s %10s\n", "attachment", "baseline", "activecpp",
              "speedup");
  bench::print_rule();
  for (const bool fabric : {false, true}) {
    const auto sys_config = fabric
                                ? system::SystemConfig::paper_platform_nvmeof()
                                : system::SystemConfig::paper_platform();
    apps::AppConfig config;
    const auto program = apps::make_app("tpch-q6", config);
    system::SystemModel base_system(sys_config);
    const auto baseline = baseline::run_host_only(base_system, program);
    system::SystemModel system(sys_config);
    runtime::ActiveRuntime active(system);
    const auto result = active.run(program);
    std::printf("%-12s %11.2fs %11.2fs %9.2fx\n",
                fabric ? "nvme-of" : "pcie", baseline.total.value(),
                result.end_to_end().value(),
                baseline.total.value() / result.end_to_end().value());
  }
  std::printf(
      "expected: near-identical — ISP economics depend on bandwidths, not "
      "the mapping\nmechanism; the fabric adds only microseconds per "
      "command.\n");
}

}  // namespace

int main() {
  host_contention_section();
  gc_contention_section();
  input_change_section();
  attachment_section();
  return 0;
}
