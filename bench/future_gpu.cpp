// Future-work exploration (§VI): what changes if ActivePy could also target
// the platform's GPU?
//
// The three-way DP projects optimal placements over host / CSD / GPU using
// the same measured per-line volumes and times the two-way planner sees.
// The headline finding is honest and well known in the ISP literature: with
// an RTX-2080-class accelerator fully available, its compute advantage
// (~40x a host core) swamps the CSD's bandwidth advantage (9 vs 5 GB/s buys
// at most ~0.6 s on a 6.9 GB scan), and every data-parallel line defects to
// the GPU.  The CSD's niche re-emerges exactly where the paper positions
// ISP: when the accelerator is weak, busy, or absent — the sweep below
// shows the placement flipping back line by line as the GPU's effective
// speedup shrinks (contention on a shared GPU behaves like a smaller
// multiplier, the same way Figure 2 treats the CSE).
#include <cstdio>

#include "apps/registry.hpp"
#include "bench/bench_util.hpp"
#include "plan/oracle.hpp"
#include "plan/three_way.hpp"

namespace {

std::string placement_string(const isp::plan::ThreeWayResult& result) {
  std::string out;
  for (const auto u : result.placement) {
    out += (u == isp::plan::Unit::Csd)   ? 'C'
           : (u == isp::plan::Unit::Gpu) ? 'G'
                                         : 'h';
  }
  return out;
}

}  // namespace

int main() {
  using namespace isp;

  bench::print_header(
      "Future work: three-way host/CSD/GPU placement (projected, RTX-2080 "
      "class fully available)");
  std::printf("%-14s %10s %10s %10s %8s %8s  %s\n", "app", "host-only",
              "host+csd", "+gpu", "csd", "gpu", "placements");
  bench::print_rule();

  host::Gpu gpu;
  for (const auto& app : apps::table1_apps()) {
    apps::AppConfig config;
    const auto program = apps::make_app(app.name, config);
    system::SystemModel system;
    const auto estimates = plan::measure_true_estimates(system, program);
    const auto result =
        plan::explore_three_way(program, estimates, system, gpu);

    std::printf("%-14s %9.2fs %9.2fs %9.2fs %8zu %8zu  %s\n",
                app.name.c_str(), result.projected_host_only.value(),
                result.projected_two_way.value(), result.projected.value(),
                result.count(plan::Unit::Csd), result.count(plan::Unit::Gpu),
                placement_string(result).c_str());
  }

  bench::print_header(
      "Where the CSD's niche re-emerges: tpch-q6 vs effective GPU speedup");
  std::printf("%-14s %12s %8s %8s  %s\n", "gpu speedup", "projected", "csd",
              "gpu", "placements");
  bench::print_rule();
  {
    apps::AppConfig config;
    const auto program = apps::make_app("tpch-q6", config);
    system::SystemModel system;
    const auto estimates = plan::measure_true_estimates(system, program);
    for (const double speedup : {40.0, 10.0, 4.0, 2.0, 1.0}) {
      host::GpuConfig gpu_config;
      gpu_config.speedup_vs_host_core = speedup;
      host::Gpu swept(gpu_config);
      const auto result =
          plan::explore_three_way(program, estimates, system, swept);
      std::printf("%13.0fx %11.2fs %8zu %8zu  %s\n", speedup,
                  result.projected.value(), result.count(plan::Unit::Csd),
                  result.count(plan::Unit::Gpu),
                  placement_string(result).c_str());
    }
  }

  bench::print_rule();
  std::printf(
      "projected only — the execution engine stays faithful to the paper's\n"
      "host+CSD system; this quantifies section VI's 'migrate tasks among different\n"
      "compute units'.  A dedicated big GPU dominates these workloads; ISP's\n"
      "value concentrates where the paper's dynamics live — the accelerator\n"
      "contended away, the link saturated, or no accelerator at all.\n");
  return 0;
}
