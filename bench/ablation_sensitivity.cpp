// Sensitivity ablation (DESIGN.md E9): how the headline speedups move with
// the three platform constants the substitution rule had to pick — host-link
// bandwidth, internal NAND bandwidth, and CSE per-core speed.
//
// The paper's qualitative claims should be robust: ISP wins grow with the
// internal/external bandwidth gap, shrink as the link catches up, and
// Algorithm 1 offloads less as the CSE slows.
#include <cstdio>
#include <vector>

#include "apps/registry.hpp"
#include "baseline/baselines.hpp"
#include "bench/bench_util.hpp"
#include "runtime/active_runtime.hpp"

namespace {

double activecpp_speedup(const isp::system::SystemConfig& config,
                         const isp::ir::Program& program,
                         std::size_t* lines_on_csd) {
  using namespace isp;
  system::SystemModel base_system(config);
  const auto baseline = baseline::run_host_only(base_system, program);

  system::SystemModel system(config);
  runtime::ActiveRuntime active(system);
  const auto result = active.run(program);
  if (lines_on_csd != nullptr) {
    *lines_on_csd = result.plan.csd_line_count();
  }
  return baseline.total.value() / result.end_to_end().value();
}

}  // namespace

int main() {
  using namespace isp;

  for (const char* app : {"tpch-q6", "kmeans"}) {
    apps::AppConfig app_config;
    const auto program = apps::make_app(app, app_config);

    bench::print_header(std::string("Sensitivity of ") + app +
                        " ActiveCpp speedup to platform constants");

    std::printf("link bandwidth sweep (internal NAND fixed at 9 GB/s):\n");
    std::printf("%-12s %10s %8s\n", "BW_D2H", "speedup", "csd");
    for (const double gbps : {2.5, 4.0, 5.0, 7.0, 9.0, 12.0}) {
      auto config = system::SystemConfig::paper_platform();
      config.link.bandwidth = gb_per_s(gbps);
      std::size_t csd = 0;
      const double x = activecpp_speedup(config, program, &csd);
      std::printf("%9.1fGB/s %9.2fx %7zu\n", gbps, x, csd);
    }

    std::printf("\ninternal NAND bandwidth sweep (link fixed at 5 GB/s):\n");
    std::printf("%-12s %10s %8s\n", "internal", "speedup", "csd");
    for (const double gbps : {4.5, 6.0, 9.0, 12.0, 16.0}) {
      auto config = system::SystemConfig::paper_platform();
      // Scale the channel bus to move the effective array bandwidth.
      config.csd.nand_timing.channel_bus = gb_per_s(gbps / 8.0 * 1.0667);
      config.csd.nand_timing.page_read = Seconds{58e-6 * 9.0 / gbps};
      std::size_t csd = 0;
      const double x = activecpp_speedup(config, program, &csd);
      std::printf("%9.1fGB/s %9.2fx %7zu\n", gbps, x, csd);
    }

    std::printf("\nCSE per-core speed sweep (ipc_vs_host; clock fixed):\n");
    std::printf("%-12s %10s %8s\n", "ipc ratio", "speedup", "csd");
    for (const double ipc : {0.2, 0.35, 0.5, 0.75, 1.0}) {
      auto config = system::SystemConfig::paper_platform();
      config.csd.cse.ipc_vs_host = ipc;
      std::size_t csd = 0;
      const double x = activecpp_speedup(config, program, &csd);
      std::printf("%12.2f %9.2fx %7zu\n", ipc, x, csd);
    }
  }

  std::printf(
      "\nexpected shapes: speedup falls as BW_D2H catches up with the "
      "internal\nbandwidth; rises with internal bandwidth and CSE speed; "
      "Algorithm 1 offloads\nfewer lines as the CSE slows.\n");
  return 0;
}
