// Fault resilience: fault rate vs slowdown, and graceful degradation.
//
// Sweeps the deterministic fault injector (src/fault) across every
// device-stack site simultaneously — NVMe command drops, flash ECC/program
// faults, DMA stalls, CSE crashes, status-update loss — and measures the
// end-to-end cost of the recovery ladder (retry with backoff, escalation,
// migration back to the host).
//
// Two checks gate the run:
//   1. rate 0 is free: an all-zero fault config reproduces the fault-free
//      total bit-for-bit (the injector is never even constructed);
//   2. rate 1.0 degrades gracefully: with every opportunity faulting, the
//      CSE cannot hold any line, the runtime pulls the work back to the
//      host, and the total lands at (not far above) the no-ISP baseline —
//      instead of hanging or erroring out.
#include <cstdio>
#include <cstddef>
#include <string>
#include <vector>

#include "apps/registry.hpp"
#include "baseline/baselines.hpp"
#include "bench/bench_util.hpp"
#include "exec/cli.hpp"
#include "exec/pool.hpp"
#include "runtime/active_runtime.hpp"

namespace {

constexpr double kRates[] = {0.0, 0.01, 0.05, 0.1, 0.25, 0.5, 1.0};

/// Slack allowed over the no-ISP baseline at 100% fault rate: the faulted
/// run still pays the aborted chunk retries, the migration itself, and
/// BAR-window reads before it degrades to host-only execution.
constexpr double kDegradationSlack = 1.25;

isp::runtime::ExecutionReport run_with_rate(const isp::ir::Program& program,
                                            double rate,
                                            std::uint64_t fault_seed) {
  using namespace isp;
  system::SystemModel system;
  runtime::RunConfig rc;
  rc.engine.fault.seed = fault_seed;
  rc.engine.fault.set_rate_all(rate);
  runtime::ActiveRuntime active(system);
  return active.run(program, rc).report;
}

bool sweep(const std::string& app_name, unsigned jobs) {
  using namespace isp;
  apps::AppConfig config;
  const auto program = apps::make_app(app_name, config);

  system::SystemModel base_system;
  const auto baseline = baseline::run_host_only(base_system, program);
  const auto fault_free = run_with_rate(program, 0.0, 0);

  // Zero-cost-when-disabled: a non-zero seed with all rates at zero must
  // not perturb a single bit of the timing.
  const auto zero_rate = run_with_rate(program, 0.0, 12345);
  const bool zero_ok = zero_rate.total.value() == fault_free.total.value();

  std::printf("\n%s: no-ISP baseline %.3f s, fault-free ActiveCpp %.3f s\n",
              app_name.c_str(), baseline.total.value(),
              fault_free.total.value());
  std::printf("%-8s %10s %12s %12s %6s %9s %9s %10s\n", "rate", "total (s)",
              "vs fault-free", "vs baseline", "migr", "injected", "exhaust",
              "penalty(s)");
  bench::print_rule();

  // Each rate is an independent run on its own SystemModel: fan the sweep
  // out, then print the rows in rate order (run_batch returns results in
  // submission order, so the table is identical at any job count).
  const auto reports = exec::run_batch(
      std::size(kRates),
      [&](std::size_t i) { return run_with_rate(program, kRates[i], 7); },
      jobs);

  double total_at_1 = 0.0;
  for (std::size_t i = 0; i < std::size(kRates); ++i) {
    const double rate = kRates[i];
    const auto& report = reports[i];
    std::printf("%-8.2f %10.3f %12.2fx %12.2fx %6u %9llu %9llu %10.4f\n",
                rate, report.total.value(),
                report.total.value() / fault_free.total.value(),
                report.total.value() / baseline.total.value(),
                report.migrations,
                static_cast<unsigned long long>(report.faults.total_injected()),
                static_cast<unsigned long long>(
                    report.faults.total_exhausted()),
                report.faults.penalty.value());
    if (rate == 1.0) total_at_1 = report.total.value();
  }
  bench::print_rule();

  const bool degrade_ok =
      total_at_1 <= baseline.total.value() * kDegradationSlack;
  std::printf("rate 0 bit-for-bit: %s   degradation at rate 1.0: %.2fx of "
              "no-ISP baseline (<= %.2fx): %s\n",
              zero_ok ? "PASS" : "FAIL",
              total_at_1 / baseline.total.value(), kDegradationSlack,
              degrade_ok ? "PASS" : "FAIL");
  return zero_ok && degrade_ok;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace isp;
  const unsigned jobs = exec::jobs_from_args(argc, argv);
  bench::print_header(
      "Fault resilience: fault rate vs slowdown (all sites, deterministic "
      "schedule)");

  bool ok = true;
  ok &= sweep("tpch-q6", jobs);
  ok &= sweep("kmeans", jobs);

  std::printf(
      "\na fully-faulted device (rate 1.0) must degrade to the no-ISP "
      "baseline\nrather than hang or error out; rate 0 must be free.  %s\n",
      ok ? "ALL PASS" : "FAILURES ABOVE");
  return ok ? 0 : 1;
}
