// Observability subsystem: deterministic metrics registry (counters, gauges,
// log-bucketed histograms), the shared Chrome-trace emitter, virtual-time
// snapshot series, and the trace exports built on them (runtime single-run
// trace, whole-fleet serving timeline).
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "apps/registry.hpp"
#include "common/error.hpp"
#include "obs/metrics.hpp"
#include "obs/snapshot.hpp"
#include "obs/timeline.hpp"
#include "runtime/active_runtime.hpp"
#include "runtime/trace.hpp"
#include "serve/observe.hpp"
#include "serve/server.hpp"
#include "system/model.hpp"

namespace isp {
namespace {

// --- Minimal JSON validator ----------------------------------------------
// Recursive-descent acceptance check: is `text` one well-formed JSON value?
// No DOM, no numbers parsed — just structure — which is exactly what the
// "every export is loadable JSON" contracts need.

class JsonChecker {
 public:
  explicit JsonChecker(const std::string& text) : s_(text) {}

  [[nodiscard]] bool valid() {
    skip_ws();
    if (!value()) return false;
    skip_ws();
    return pos_ == s_.size();
  }

 private:
  bool value() {
    if (pos_ >= s_.size()) return false;
    switch (s_[pos_]) {
      case '{': return object();
      case '[': return array();
      case '"': return string();
      case 't': return literal("true");
      case 'f': return literal("false");
      case 'n': return literal("null");
      default: return number();
    }
  }
  bool object() {
    ++pos_;  // '{'
    skip_ws();
    if (peek() == '}') { ++pos_; return true; }
    while (true) {
      skip_ws();
      if (!string()) return false;
      skip_ws();
      if (peek() != ':') return false;
      ++pos_;
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek() == ',') { ++pos_; continue; }
      if (peek() == '}') { ++pos_; return true; }
      return false;
    }
  }
  bool array() {
    ++pos_;  // '['
    skip_ws();
    if (peek() == ']') { ++pos_; return true; }
    while (true) {
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek() == ',') { ++pos_; continue; }
      if (peek() == ']') { ++pos_; return true; }
      return false;
    }
  }
  bool string() {
    if (peek() != '"') return false;
    ++pos_;
    while (pos_ < s_.size() && s_[pos_] != '"') {
      if (s_[pos_] == '\\') ++pos_;  // skip the escaped char
      ++pos_;
    }
    if (pos_ >= s_.size()) return false;
    ++pos_;  // closing quote
    return true;
  }
  bool number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[pos_])) != 0 ||
            s_[pos_] == '.' || s_[pos_] == 'e' || s_[pos_] == 'E' ||
            s_[pos_] == '+' || s_[pos_] == '-')) {
      ++pos_;
    }
    return pos_ > start;
  }
  bool literal(const char* word) {
    const std::size_t len = std::char_traits<char>::length(word);
    if (s_.compare(pos_, len, word) != 0) return false;
    pos_ += len;
    return true;
  }
  [[nodiscard]] char peek() const { return pos_ < s_.size() ? s_[pos_] : '\0'; }
  void skip_ws() {
    while (pos_ < s_.size() &&
           (s_[pos_] == ' ' || s_[pos_] == '\n' || s_[pos_] == '\t' ||
            s_[pos_] == '\r')) {
      ++pos_;
    }
  }

  const std::string& s_;
  std::size_t pos_ = 0;
};

bool valid_json(const std::string& text) { return JsonChecker(text).valid(); }

// --- Histogram: bucket layout --------------------------------------------

TEST(Histogram, BucketZeroHoldsZeroThroughMinValue) {
  obs::Histogram h;
  const double min_v = h.options().min_value;
  EXPECT_EQ(h.bucket_index(0.0), 0u);
  EXPECT_EQ(h.bucket_index(min_v), 0u);          // inclusive upper edge
  EXPECT_EQ(h.bucket_index(min_v * 1.01), 1u);   // just past it
  EXPECT_EQ(h.bucket_index(-1.0), 0u);           // negatives clamp in
  EXPECT_DOUBLE_EQ(h.bucket_upper_edge(0), min_v);
}

TEST(Histogram, BucketEdgesAreInclusiveUpperBounds) {
  obs::Histogram h;
  for (const std::size_t i : {1u, 2u, 7u, 31u, 100u}) {
    const double edge = h.bucket_upper_edge(i);
    EXPECT_EQ(h.bucket_index(edge), i) << "edge of bucket " << i;
    EXPECT_EQ(h.bucket_index(edge * 1.0000001), i + 1)
        << "just past the edge of bucket " << i;
  }
}

TEST(Histogram, OverflowBucketCatchesBeyondRange) {
  obs::HistogramOptions opt;
  opt.min_value = 1.0;
  opt.growth = 2.0;
  opt.buckets = 4;  // regular buckets 0..3 cover up to 2^3 = 8
  obs::Histogram h(opt);
  EXPECT_EQ(h.bucket_index(8.0), 3u);       // last regular bucket
  EXPECT_EQ(h.bucket_index(9.0), 4u);       // the overflow bucket
  EXPECT_EQ(h.bucket_index(1e12), 4u);
  h.record(1000.0);
  h.record(2.0);
  EXPECT_EQ(h.buckets().back(), 1u);
  EXPECT_DOUBLE_EQ(h.max(), 1000.0);
  // Overflow percentile clamps to the observed max, exactly.
  EXPECT_DOUBLE_EQ(h.percentile(1.0), 1000.0);
}

TEST(Histogram, CountSumMinMaxMeanAndEmpty) {
  obs::Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_DOUBLE_EQ(h.percentile(0.5), 0.0);
  EXPECT_DOUBLE_EQ(h.mean(), 0.0);
  h.record(0.5);
  h.record(0.25);
  h.record(0.25);
  EXPECT_EQ(h.count(), 3u);
  EXPECT_DOUBLE_EQ(h.sum(), 1.0);
  EXPECT_DOUBLE_EQ(h.min(), 0.25);
  EXPECT_DOUBLE_EQ(h.max(), 0.5);
  EXPECT_DOUBLE_EQ(h.mean(), 1.0 / 3.0);
}

// --- Histogram: percentile accuracy --------------------------------------

TEST(Histogram, PercentileWithinRelativeErrorBoundOfExactSort) {
  // Deterministic pseudo-random sample spanning several decades.
  obs::Histogram h;
  std::vector<double> sample;
  std::uint64_t x = 0x9e3779b97f4a7c15ULL;
  for (int i = 0; i < 500; ++i) {
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    const double v = 1e-6 * std::pow(10.0, static_cast<double>(x % 6000) /
                                               1000.0);  // 1e-6 .. 1
    sample.push_back(v);
    h.record(v);
  }
  std::sort(sample.begin(), sample.end());
  const double bound = h.options().growth - 1.0;
  for (const double q : {0.01, 0.10, 0.50, 0.90, 0.99, 1.0}) {
    const double exact = obs::percentile_sorted(sample, q);
    const double approx = h.percentile(q);
    EXPECT_LE(std::abs(approx - exact) / exact, bound)
        << "q=" << q << " exact=" << exact << " approx=" << approx;
  }
}

TEST(Histogram, PercentileClampsToObservedRange) {
  obs::Histogram h;
  h.record(0.125);
  h.record(0.25);
  for (const double q : {0.0, 0.5, 1.0}) {
    EXPECT_GE(h.percentile(q), 0.125);
    EXPECT_LE(h.percentile(q), 0.25);
  }
}

// --- Histogram: merge algebra --------------------------------------------

obs::Histogram dyadic_histogram(std::initializer_list<double> values) {
  obs::Histogram h;  // dyadic values: FP sums are exact, digests comparable
  for (const double v : values) h.record(v);
  return h;
}

TEST(Histogram, MergeIsAssociative) {
  const auto a = dyadic_histogram({0.25, 0.5});
  const auto b = dyadic_histogram({1.0, 2.0, 4.0});
  const auto c = dyadic_histogram({0.125});
  auto left = a;   // (a + b) + c
  left.merge(b);
  left.merge(c);
  auto bc = b;     // a + (b + c)
  bc.merge(c);
  auto right = a;
  right.merge(bc);
  EXPECT_EQ(left.digest(), right.digest());
}

TEST(Histogram, MergeIsCommutative) {
  const auto a = dyadic_histogram({0.25, 0.5, 8.0});
  const auto b = dyadic_histogram({1.0, 2.0});
  auto ab = a;
  ab.merge(b);
  auto ba = b;
  ba.merge(a);
  EXPECT_EQ(ab.digest(), ba.digest());
}

TEST(Histogram, MergeEqualsSerialFeed) {
  auto merged = dyadic_histogram({0.25, 0.5});
  merged.merge(dyadic_histogram({1.0, 2.0}));
  const auto serial = dyadic_histogram({0.25, 0.5, 1.0, 2.0});
  EXPECT_EQ(merged.digest(), serial.digest());
  EXPECT_EQ(merged.count(), 4u);
  EXPECT_DOUBLE_EQ(merged.sum(), serial.sum());
}

TEST(Histogram, MergeRejectsMismatchedLayouts) {
  obs::HistogramOptions narrow;
  narrow.buckets = 8;
  obs::Histogram a;
  obs::Histogram b(narrow);
  EXPECT_THROW(a.merge(b), Error);
}

// --- Exact nearest-rank percentile ---------------------------------------

TEST(PercentileSorted, NearestRankDefinition) {
  const std::vector<double> s = {1.0, 2.0, 3.0, 4.0, 5.0};
  EXPECT_DOUBLE_EQ(obs::percentile_sorted(s, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(obs::percentile_sorted(s, 0.2), 1.0);   // rank ceil(1)=1
  EXPECT_DOUBLE_EQ(obs::percentile_sorted(s, 0.21), 2.0);  // rank ceil(1.05)
  EXPECT_DOUBLE_EQ(obs::percentile_sorted(s, 0.5), 3.0);
  EXPECT_DOUBLE_EQ(obs::percentile_sorted(s, 0.99), 5.0);
  EXPECT_DOUBLE_EQ(obs::percentile_sorted(s, 1.0), 5.0);
  EXPECT_DOUBLE_EQ(obs::percentile_sorted({}, 0.5), 0.0);
}

// --- Scalar metrics -------------------------------------------------------

TEST(Metrics, CounterAddsAndGaugeKeepsMaximum) {
  obs::Counter c;
  c.add();
  c.add(41);
  EXPECT_EQ(c.value, 42u);

  obs::Gauge g;
  g.set(3.0);
  g.set(1.0);  // a later, lower level does not erase the high-water mark
  EXPECT_DOUBLE_EQ(g.value, 3.0);
  g.set(7.5);
  EXPECT_DOUBLE_EQ(g.value, 7.5);
}

// --- Registry -------------------------------------------------------------

obs::MetricsRegistry sample_registry(bool reversed) {
  obs::MetricsRegistry r;
  const auto fill = [&](int step) {
    switch (step) {
      case 0: r.counter("serve.admitted").add(7); break;
      case 1: r.gauge("queue.depth").set(3.0); break;
      default: r.histogram("latency_s").record(0.5); break;
    }
  };
  if (reversed) {
    fill(2); fill(1); fill(0);
  } else {
    fill(0); fill(1); fill(2);
  }
  return r;
}

TEST(Registry, InsertionOrderDoesNotAffectDigestOrJson) {
  const auto a = sample_registry(false);
  const auto b = sample_registry(true);
  EXPECT_EQ(a.digest(), b.digest());
  EXPECT_EQ(a.to_json(), b.to_json());
}

TEST(Registry, MergeCombinesEveryMetricKind) {
  obs::MetricsRegistry a;
  a.counter("jobs").add(2);
  a.gauge("depth").set(1.0);
  a.histogram("lat").record(0.25);

  obs::MetricsRegistry b;
  b.counter("jobs").add(3);
  b.counter("only_in_b").add(1);
  b.gauge("depth").set(4.0);
  b.histogram("lat").record(0.5);

  a.merge(b);
  EXPECT_EQ(a.counter_value("jobs"), 5u);      // counters add
  EXPECT_EQ(a.counter_value("only_in_b"), 1u); // missing keys materialise
  EXPECT_DOUBLE_EQ(a.find_gauge("depth")->value, 4.0);  // gauges max
  EXPECT_EQ(a.find_histogram("lat")->count(), 2u);      // histograms merge
  EXPECT_EQ(a.find_counter("absent"), nullptr);
  EXPECT_EQ(a.counter_value("absent"), 0u);
}

TEST(Registry, MergeIsAssociative) {
  const auto make = [](std::uint64_t jobs, double lat) {
    obs::MetricsRegistry r;
    r.counter("jobs").add(jobs);
    r.histogram("lat").record(lat);
    return r;
  };
  const auto a = make(1, 0.25);
  const auto b = make(2, 0.5);
  const auto c = make(3, 1.0);
  auto left = a;   // (a + b) + c
  left.merge(b);
  left.merge(c);
  auto bc = b;     // a + (b + c)
  bc.merge(c);
  auto right = a;
  right.merge(bc);
  EXPECT_EQ(left.digest(), right.digest());
  EXPECT_EQ(left.to_json(), right.to_json());
}

TEST(Registry, DigestIsSensitiveToValues) {
  auto a = sample_registry(false);
  auto b = sample_registry(false);
  EXPECT_EQ(a.digest(), b.digest());
  b.counter("serve.admitted").add();
  EXPECT_NE(a.digest(), b.digest());
}

TEST(Registry, JsonIsWellFormed) {
  const auto r = sample_registry(false);
  EXPECT_TRUE(valid_json(r.to_json())) << r.to_json();
  EXPECT_TRUE(valid_json(obs::MetricsRegistry{}.to_json()));
}

// --- Snapshot series ------------------------------------------------------

TEST(Snapshot, PushValidatesShapeAndMonotonicTime) {
  obs::SnapshotSeries s(std::vector<std::string>{"a", "b"});
  s.push(SimTime{1.0}, {1, 2});
  EXPECT_THROW(s.push(SimTime{2.0}, {1}), Error);        // wrong arity
  EXPECT_THROW(s.push(SimTime{0.5}, {1, 2}), Error);     // time went backward
  s.push(SimTime{2.0}, {3, 4});
  EXPECT_EQ(s.rows(), 2u);
}

TEST(Snapshot, ValueByColumnName) {
  obs::SnapshotSeries s(std::vector<std::string>{"offered", "admitted"});
  s.push(SimTime{1.0}, {10, 8});
  EXPECT_EQ(s.value(0, "offered"), 10u);
  EXPECT_EQ(s.value(0, "admitted"), 8u);
  EXPECT_THROW(static_cast<void>(s.value(0, "nope")), Error);
}

TEST(Snapshot, JsonAndDigestDeterministic) {
  const auto build = [] {
    obs::SnapshotSeries s(std::vector<std::string>{"x"});
    s.push(SimTime{0.25}, {1});
    s.push(SimTime{0.5}, {2});
    return s;
  };
  const auto a = build();
  const auto b = build();
  EXPECT_EQ(a.digest(), b.digest());
  EXPECT_EQ(a.to_json(), b.to_json());
  EXPECT_TRUE(valid_json(a.to_json())) << a.to_json();
}

// --- Timeline emitter -----------------------------------------------------

TEST(Timeline, JsonWellFormedWithEscapes) {
  obs::Timeline t;
  t.complete("lane \"0\"", "job\nwith newline", 0.0, 1.0,
             {{"tenant", "3"}, {"class", "\"big\""}});
  t.instant("faults", "fault:dma\ttabbed", 0.5);
  const auto json = t.to_json();
  EXPECT_TRUE(valid_json(json)) << json;
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos);
  EXPECT_NE(json.find("\"s\":\"t\""), std::string::npos);
}

TEST(Timeline, DropsZeroAndNegativeDurationSpans) {
  obs::Timeline t;
  t.complete("a", "empty", 1.0, 0.0);
  t.complete("a", "negative", 1.0, -2.0);
  EXPECT_TRUE(t.empty());
  t.complete("a", "real", 1.0, 0.5);
  EXPECT_EQ(t.size(), 1u);
}

TEST(Timeline, DigestIsFnvOverSerialisedJson) {
  obs::Timeline t;
  t.complete("a", "x", 0.0, 1.0);
  EXPECT_EQ(t.digest(), obs::fnv1a(obs::kFnvOffset, t.to_json()));
}

TEST(Metrics, FnvHelpersAreTheSharedCommonDigest) {
  // The obs names are using-declarations for common/digest.hpp (PR 7) —
  // same constants, same folds, so digests computed through either spelling
  // are interchangeable byte for byte.
  EXPECT_EQ(obs::kFnvOffset, isp::kFnvOffset);
  EXPECT_EQ(obs::kFnvPrime, isp::kFnvPrime);
  EXPECT_EQ(obs::fnv1a(obs::kFnvOffset, std::uint64_t{42}),
            isp::fnv1a(isp::kFnvOffset, std::uint64_t{42}));
  const std::string s = "serve.latency_s";
  EXPECT_EQ(obs::fnv1a(obs::kFnvOffset, s), isp::fnv1a(isp::kFnvOffset, s));
  // The string fold is length-prefixed: size as a u64 word, then the bytes.
  EXPECT_EQ(isp::fnv1a(isp::kFnvOffset, s),
            isp::fnv1a_bytes(isp::fnv1a(isp::kFnvOffset, s.size()), s.data(),
                             s.size()));
  EXPECT_EQ(obs::double_bits(1.5), isp::double_bits(1.5));
}

// --- Single-run Chrome-trace backfill ------------------------------------

runtime::ExecutionReport two_line_report() {
  runtime::ExecutionReport report;
  report.program = "trace-backfill";
  report.compile_overhead = Seconds{0.05};
  for (std::uint32_t i = 0; i < 2; ++i) {
    runtime::LineRecord line;
    line.index = i;
    line.name = i == 0 ? "scan" : "agg";
    line.placement = i == 0 ? ir::Placement::Csd : ir::Placement::Host;
    line.start = SimTime{0.05 + static_cast<double>(i)};
    line.access = Seconds{0.2};
    line.transfer_in = Seconds{0.1};
    line.marshal = Seconds{0.05};
    line.compute = Seconds{0.4};
    line.end = line.start + Seconds{0.75};
    report.lines.push_back(line);
  }
  fault::FaultRecord f;
  f.site = fault::Site::DmaTransfer;
  f.time = SimTime{0.3};
  f.faults = 2;
  f.penalty = Seconds{0.01};
  report.fault_records.push_back(f);
  return report;
}

TEST(ChromeTrace, ProducesWellFormedJson) {
  EXPECT_TRUE(valid_json(runtime::to_chrome_trace(two_line_report())));

  // And from a real pipeline run, not just a hand-built report.
  apps::AppConfig config;
  config.size_factor = 0.05;
  system::SystemModel system;
  runtime::ActiveRuntime active(system);
  const auto result = active.run(apps::make_app("tpch-q6", config));
  const auto trace = runtime::to_chrome_trace(result.report);
  EXPECT_TRUE(valid_json(trace));
  EXPECT_GT(runtime::to_trace_timeline(result.report).size(), 0u);
}

TEST(ChromeTrace, SubSlicesSumToLineDurations) {
  const auto report = two_line_report();
  const auto timeline = runtime::to_trace_timeline(report);
  for (const auto& line : report.lines) {
    double sliced = 0.0;
    for (const auto& e : timeline.events()) {
      if (e.kind != obs::TraceEvent::Kind::Complete) continue;
      if (e.name == line.name || e.name == line.name + " [access]" ||
          e.name == line.name + " [xfer]" ||
          e.name == line.name + " [marshal]") {
        sliced += e.dur_us;
      }
    }
    const double expected_us =
        (line.access.value() + line.transfer_in.value() +
         line.marshal.value() + line.compute.value()) * 1e6;
    EXPECT_NEAR(sliced, expected_us, 1e-6) << line.name;
  }
}

TEST(ChromeTrace, TimestampsMonotonicPerTrackOnRealRun) {
  apps::AppConfig config;
  config.size_factor = 0.05;
  system::SystemModel system;
  runtime::ActiveRuntime active(system);
  const auto result = active.run(apps::make_app("kmeans", config));
  const auto timeline = runtime::to_trace_timeline(result.report);
  ASSERT_GT(timeline.size(), 0u);
  std::map<std::string, double> last_ts;
  for (const auto& e : timeline.events()) {
    if (e.kind != obs::TraceEvent::Kind::Complete) continue;
    const auto it = last_ts.find(e.track);
    if (it != last_ts.end()) {
      EXPECT_GE(e.ts_us, it->second)
          << "track " << e.track << " event " << e.name;
    }
    last_ts[e.track] = e.ts_us;
  }
}

TEST(ChromeTrace, FaultEpisodesBecomeInstantEvents) {
  const auto timeline = runtime::to_trace_timeline(two_line_report());
  std::size_t fault_instants = 0;
  for (const auto& e : timeline.events()) {
    if (e.kind != obs::TraceEvent::Kind::Instant) continue;
    EXPECT_EQ(e.track, "faults");
    EXPECT_EQ(e.name.rfind("fault:", 0), 0u) << e.name;
    ++fault_instants;
  }
  EXPECT_EQ(fault_instants, 1u);
}

// --- Whole-fleet serving timeline ----------------------------------------

serve::ServeConfig tiny_serve_config(unsigned jobs) {
  serve::ServeConfig config;
  config.fleet = serve::FleetConfig::make(1);
  config.tenants = {serve::TenantConfig{.weight = 1.0, .queue_depth = 4},
                    serve::TenantConfig{.weight = 2.0, .queue_depth = 4}};
  config.job_classes = {
      serve::JobClass{.app = "tpch-q6", .size_factor = 0.05}};
  config.total_jobs = 6;
  config.offered_load = 2.0;
  config.jobs = jobs;
  return config;
}

/// The timeline reduced to its structural schema: one `track|name|ph` line
/// per event, timestamps and durations stripped — robust to timing-model
/// changes, strict about event structure.
std::string schema_of(const obs::Timeline& timeline) {
  std::string schema;
  for (const auto& e : timeline.events()) {
    schema += e.track;
    schema += '|';
    schema += e.name;
    schema += '|';
    schema += e.kind == obs::TraceEvent::Kind::Complete ? 'X' : 'i';
    schema += '\n';
  }
  return schema;
}

TEST(FleetTrace, GoldenSchemaForTinyServe) {
  const auto report = serve::serve(tiny_serve_config(1));
  const auto schema = schema_of(serve::to_fleet_timeline(report));
  // Golden: the exact event structure of the 6-job single-device serve.
  // Every job shows its queue wait, a placement mark, the outer span and
  // the exec sub-slice (migration/recovery slices are zero-length here and
  // dropped by the emitter).
  std::string expected;
  for (const auto& o : report.outcomes) {
    const std::string job = "job" + std::to_string(o.id);
    ASSERT_FALSE(o.rejected) << "tiny config must admit everything";
    const std::string lane = o.on_host ? "host0" : "csd0";
    if (o.queue_wait.value() > 0.0) {
      expected += "tenant" + std::to_string(o.tenant) + " queue|" + job +
                  " [queue-wait]|X\n";
    }
    expected += lane + "|" + job + " [placement]|i\n";
    expected += lane + "|" + job + "|X\n";
    expected += lane + "|" + job + " [exec]|X\n";
  }
  EXPECT_EQ(schema, expected);
  EXPECT_NE(schema.find("csd0|job0|X"), std::string::npos);
}

TEST(FleetTrace, ArtifactsByteIdenticalAcrossRunsAndJobs) {
  const auto a = serve::serve(tiny_serve_config(1));
  const auto b = serve::serve(tiny_serve_config(1));
  const auto c = serve::serve(tiny_serve_config(3));
  EXPECT_EQ(serve::to_fleet_trace(a), serve::to_fleet_trace(b));
  EXPECT_EQ(serve::to_fleet_trace(a), serve::to_fleet_trace(c));
  EXPECT_EQ(serve::metrics_json(a), serve::metrics_json(b));
  EXPECT_EQ(serve::metrics_json(a), serve::metrics_json(c));
  EXPECT_EQ(a.metrics.digest(), c.metrics.digest());
  EXPECT_EQ(a.snapshots.digest(), c.snapshots.digest());
  EXPECT_TRUE(valid_json(serve::to_fleet_trace(a)));
  EXPECT_TRUE(valid_json(serve::metrics_json(a)));
}

TEST(FleetTrace, DeviceFailureShowsLostAttemptsAndFailureInstant) {
  // Two devices, one killed early: the timeline must carry the permanent
  // failure as an explicit instant and every killed attempt as a [lost]
  // span on the dying lane — nothing about the death is implicit.
  serve::ServeConfig config;
  config.fleet = serve::FleetConfig::make(2);
  config.tenants = {serve::TenantConfig{.weight = 1.0, .queue_depth = 8},
                    serve::TenantConfig{.weight = 2.0, .queue_depth = 8}};
  config.job_classes = {
      serve::JobClass{.app = "tpch-q6", .size_factor = 0.05}};
  config.total_jobs = 12;
  config.offered_load = 4.0;
  config.jobs = 2;
  config.kill_devices = {
      serve::KillDevice{.device = 0, .at = SimTime{1.0}}};
  const auto report = serve::serve(config);
  ASSERT_EQ(report.devices_failed, 1u);

  const auto timeline = serve::to_fleet_timeline(report);
  std::size_t failure_instants = 0, lost_spans = 0;
  for (const auto& e : timeline.events()) {
    if (e.name == "device-failure") {
      EXPECT_EQ(e.track, "csd0");
      EXPECT_EQ(e.kind, obs::TraceEvent::Kind::Instant);
      EXPECT_NEAR(e.ts_us, report.lanes[0].died_at.seconds() * 1e6, 1e-3);
      ++failure_instants;
    }
    if (e.name.find(" [lost]") != std::string::npos) {
      EXPECT_EQ(e.track, "csd0");
      ++lost_spans;
    }
  }
  EXPECT_EQ(failure_instants, 1u);
  EXPECT_EQ(lost_spans, report.lost_in_flight);
  EXPECT_TRUE(valid_json(serve::to_fleet_trace(report)));
}

TEST(FleetSnapshots, ChaosColumnsConserveEveryAdmittedJob) {
  serve::ServeConfig config;
  config.fleet = serve::FleetConfig::make(2);
  config.tenants = {serve::TenantConfig{.weight = 1.0, .queue_depth = 8},
                    serve::TenantConfig{.weight = 2.0, .queue_depth = 8}};
  config.job_classes = {
      serve::JobClass{.app = "tpch-q6", .size_factor = 0.05}};
  config.total_jobs = 12;
  config.offered_load = 4.0;
  config.jobs = 2;
  config.kill_devices = {
      serve::KillDevice{.device = 0, .at = SimTime{1.0}}};
  const auto report = serve::serve(config);

  const auto& s = report.snapshots;
  const std::vector<std::string> expected_columns = {
      "offered", "admitted", "rejected", "completed", "in_flight",
      "queued", "retried", "deadline_missed", "retry_exhausted",
      "breaker_open_lanes"};
  EXPECT_EQ(s.columns(), expected_columns);
  ASSERT_GT(s.rows(), 0u);
  for (std::size_t row = 0; row < s.rows(); ++row) {
    EXPECT_EQ(s.value(row, "admitted"),
              s.value(row, "completed") + s.value(row, "deadline_missed") +
                  s.value(row, "retry_exhausted") +
                  s.value(row, "in_flight") + s.value(row, "queued"))
        << "row " << row;
  }
  const std::size_t last = s.rows() - 1;
  EXPECT_EQ(s.value(last, "retried"), report.retried);
  EXPECT_EQ(s.value(last, "retry_exhausted"), report.retry_exhausted);
  EXPECT_EQ(s.value(last, "breaker_open_lanes"), 0u);  // deaths, not trips
}

TEST(FleetTrace, SubSlicesPartitionEachJobsServiceTime) {
  auto config = tiny_serve_config(2);
  config.fault.set_rate_all(0.02);  // exercise recovery/migration slices
  const auto report = serve::serve(config);
  const auto timeline = serve::to_fleet_timeline(report);
  for (const auto& o : report.outcomes) {
    if (o.rejected) continue;
    const std::string job = "job" + std::to_string(o.id);
    double outer = 0.0;
    double sliced = 0.0;
    for (const auto& e : timeline.events()) {
      if (e.kind != obs::TraceEvent::Kind::Complete) continue;
      if (e.name == job) outer = e.dur_us;
      if (e.name == job + " [exec]" || e.name == job + " [migration]" ||
          e.name == job + " [recovery]") {
        sliced += e.dur_us;
      }
    }
    EXPECT_GT(outer, 0.0) << job;
    EXPECT_NEAR(sliced, outer, 1e-6) << job;
  }
}

}  // namespace
}  // namespace isp
