// Tests for the extension features: host-side contention, the input-change
// (CSE-stall) dynamic, NVMe-oF attachment, JSON report export.
#include <gtest/gtest.h>

#include <string>

#include "apps/registry.hpp"
#include "baseline/baselines.hpp"
#include "runtime/active_runtime.hpp"
#include "system/config.hpp"

namespace isp {
namespace {

apps::AppConfig small() {
  apps::AppConfig config;
  config.size_factor = 0.25;
  return config;
}

TEST(HostContention, StretchesHostLinesOnly) {
  const auto program = apps::make_app("tpch-q6", small());
  const auto plan = ir::Plan::host_only(program.line_count());

  runtime::EngineOptions free_host;
  free_host.monitoring = false;
  free_host.migration = false;
  system::SystemModel a;
  const auto fast = runtime::run_program(a, program, plan,
                                         codegen::ExecMode::NativeC,
                                         free_host);

  auto busy_host = free_host;
  busy_host.host_availability = sim::AvailabilitySchedule::constant(0.5);
  system::SystemModel b;
  const auto slow = runtime::run_program(b, program, plan,
                                         codegen::ExecMode::NativeC,
                                         busy_host);

  // Compute doubles; access (storage/link) is unaffected.
  EXPECT_NEAR(slow.lines[0].compute.value(),
              2.0 * fast.lines[0].compute.value(), 1e-6);
  EXPECT_NEAR(slow.lines[0].access.value(), fast.lines[0].access.value(),
              1e-9);
}

TEST(HostContention, StarvationDetected) {
  const auto program = apps::make_app("tpch-q6", small());
  const auto plan = ir::Plan::host_only(program.line_count());
  runtime::EngineOptions options;
  options.monitoring = false;
  options.migration = false;
  options.host_availability = sim::AvailabilitySchedule::constant(0.0);
  system::SystemModel system;
  EXPECT_THROW(runtime::run_program(system, program, plan,
                                    codegen::ExecMode::NativeC, options),
               Error);
}

TEST(HostContention, MakesOffloadMoreAttractive) {
  // Host-only latency grows under host contention; the ActiveCpp latency
  // (mostly CSD-resident for q6) barely moves.
  const auto program = apps::make_app("tpch-q6", small());

  system::SystemModel base_free;
  const auto baseline_free = baseline::run_host_only(base_free, program);

  runtime::RunConfig rc;
  rc.engine.host_availability = sim::AvailabilitySchedule::constant(0.5);
  system::SystemModel system;
  runtime::ActiveRuntime active(system);
  const auto busy = active.run(program, rc);

  // ActiveCpp under host contention still beats even the *uncontended*
  // baseline: the offloaded scan does not care about the host.
  EXPECT_LT(busy.end_to_end().value(), baseline_free.total.value());
}

TEST(InputChange, StallKneeAppliesOnlyBeyondKnee) {
  ir::CostModel model;
  model.cycles_per_elem = 2.0;
  model.csd_stall_knee_elems = 1000.0;
  model.csd_stall_multiplier = 3.0;
  EXPECT_DOUBLE_EQ(model.csd_stall_factor(500.0), 1.0);
  EXPECT_DOUBLE_EQ(model.csd_stall_factor(1000.0), 1.0);
  EXPECT_DOUBLE_EQ(model.csd_stall_factor(2000.0), 3.0);
  // Disabled by default.
  ir::CostModel plain;
  EXPECT_DOUBLE_EQ(plain.csd_stall_factor(1e12), 1.0);
}

TEST(InputChange, MonitorCatchesStalledCse) {
  auto program = apps::make_app("tpch-q6", small());
  auto& scan = program.line_mut(0);
  scan.cost.csd_stall_knee_elems =
      scan.elems_for(program.total_storage_bytes()) / 2.0;
  scan.cost.csd_stall_multiplier = 4.0;

  runtime::RunConfig rc;
  system::SystemModel with_system;
  runtime::ActiveRuntime with_runtime(with_system);
  const auto with = with_runtime.run(program, rc);
  EXPECT_GE(with.report.migrations, 1u)
      << "the stall-induced rate collapse must trigger migration";

  auto no_mig = rc;
  no_mig.engine.migration = false;
  system::SystemModel without_system;
  runtime::ActiveRuntime without_runtime(without_system);
  const auto without = without_runtime.run(program, no_mig);
  EXPECT_LT(with.end_to_end().value(), without.end_to_end().value());
}

TEST(InputChange, StallDoesNotAffectHostRuns) {
  auto program = apps::make_app("tpch-q6", small());
  program.line_mut(0).cost.csd_stall_knee_elems = 1.0;
  program.line_mut(0).cost.csd_stall_multiplier = 10.0;

  const auto plan = ir::Plan::host_only(program.line_count());
  runtime::EngineOptions options;
  options.monitoring = false;
  options.migration = false;
  system::SystemModel stalled;
  const auto with_knee = runtime::run_program(
      stalled, program, plan, codegen::ExecMode::NativeC, options);

  const auto clean_program = apps::make_app("tpch-q6", small());
  system::SystemModel clean;
  const auto without_knee = runtime::run_program(
      clean, clean_program, plan, codegen::ExecMode::NativeC, options);
  EXPECT_NEAR(with_knee.total.value(), without_knee.total.value(), 1e-9);
}

TEST(Attachment, NvmeOfConfigDiffers) {
  const auto pcie = system::SystemConfig::paper_platform();
  const auto fabric = system::SystemConfig::paper_platform_nvmeof();
  EXPECT_EQ(pcie.attachment, system::AttachmentKind::PciE);
  EXPECT_EQ(fabric.attachment, system::AttachmentKind::NvmeOF);
  EXPECT_GT(fabric.link.base_latency, pcie.link.base_latency);
  EXPECT_LT(fabric.bar_access_penalty, pcie.bar_access_penalty);
  // Same bandwidths: the economics are attachment-independent.
  EXPECT_EQ(fabric.link.bandwidth, pcie.link.bandwidth);
}

TEST(Attachment, SpeedupsNearIdenticalAcrossAttachments) {
  const auto program = apps::make_app("tpch-q6", small());
  double speedups[2] = {0.0, 0.0};
  int i = 0;
  for (const auto& config : {system::SystemConfig::paper_platform(),
                             system::SystemConfig::paper_platform_nvmeof()}) {
    system::SystemModel base_system(config);
    const auto baseline = baseline::run_host_only(base_system, program);
    system::SystemModel system(config);
    runtime::ActiveRuntime active(system);
    const auto result = active.run(program);
    speedups[i++] = baseline.total.value() / result.end_to_end().value();
  }
  EXPECT_NEAR(speedups[0], speedups[1], 0.03);
}

TEST(ReportJson, WellFormedAndComplete) {
  const auto program = apps::make_app("tpch-q6", small());
  system::SystemModel system;
  runtime::ActiveRuntime active(system);
  const auto result = active.run(program);

  const std::string json = result.report.to_json();
  // Structural sanity without a JSON parser dependency: balanced braces and
  // the expected keys.
  int depth = 0;
  int min_depth = 0;
  for (const char c : json) {
    if (c == '{' || c == '[') ++depth;
    if (c == '}' || c == ']') --depth;
    min_depth = std::min(min_depth, depth);
  }
  EXPECT_EQ(depth, 0);
  EXPECT_GE(min_depth, 0);
  for (const char* key :
       {"\"program\"", "\"total_s\"", "\"lines\"", "\"placement\"",
        "\"migrations\"", "\"dma\"", "\"raw-input_bytes\""}) {
    EXPECT_NE(json.find(key), std::string::npos) << key;
  }
  EXPECT_NE(json.find("tpch-q6"), std::string::npos);
}

TEST(PlanReuse, SkipsSamplingAndMatchesFreshRun) {
  const auto program = apps::make_app("tpch-q6", small());

  system::SystemModel first_system;
  runtime::ActiveRuntime first_runtime(first_system);
  const auto first = first_runtime.run(program);
  EXPECT_GT(first.sampling_overhead.value(), 0.0);

  runtime::RunConfig rc;
  rc.reuse_plan = &first.plan;
  system::SystemModel second_system;
  runtime::ActiveRuntime second_runtime(second_system);
  const auto second = second_runtime.run(program, rc);

  EXPECT_DOUBLE_EQ(second.sampling_overhead.value(), 0.0);
  EXPECT_EQ(second.plan.placement, first.plan.placement);
  // Identical execution, minus the sampling phase.
  EXPECT_NEAR(second.report.total.value(), first.report.total.value(),
              1e-9);
  EXPECT_LT(second.end_to_end().value(), first.end_to_end().value());
}

TEST(PlanReuse, RejectsMismatchedPlan) {
  const auto q6 = apps::make_app("tpch-q6", small());
  const auto kmeans = apps::make_app("kmeans", small());
  system::SystemModel system;
  runtime::ActiveRuntime runtime(system);
  const auto result = runtime.run(q6);
  runtime::RunConfig rc;
  rc.reuse_plan = &result.plan;
  EXPECT_THROW(runtime.run(kmeans, rc), Error);
}

TEST(WriteBack, ChargesNandProgramPath) {
  auto program = apps::make_app("kmeans", small());
  // Persist the final labels to flash.
  program.line_mut(program.line_count() - 1).writes_storage = true;

  runtime::EngineOptions options;
  options.monitoring = false;
  options.migration = false;

  const auto plain = apps::make_app("kmeans", small());
  system::SystemModel a;
  const auto without = runtime::run_program(
      a, plain, ir::Plan::host_only(plain.line_count()),
      codegen::ExecMode::NativeC, options);
  system::SystemModel b;
  const auto with = runtime::run_program(
      b, program, ir::Plan::host_only(program.line_count()),
      codegen::ExecMode::NativeC, options);
  // Labels (~66 MB at this scale) written at NAND program bandwidth.
  EXPECT_GT(with.total.value(), without.total.value());
  EXPECT_GT(b.csd_device().flash_array().bytes_written().count(), 0u);
}

TEST(WriteBack, CsdSideWritesSkipTheLink) {
  auto program = apps::make_app("kmeans", small());
  program.line_mut(program.line_count() - 1).writes_storage = true;
  runtime::EngineOptions options;
  options.monitoring = false;
  options.migration = false;

  ir::Plan plan = ir::Plan::host_only(program.line_count());
  for (auto& p : plan.placement) p = ir::Placement::Csd;

  system::SystemModel system;
  const auto report = runtime::run_program(
      system, program, plan, codegen::ExecMode::NativeC, options);
  // Written on the device; the link only carries the final in-memory copy.
  EXPECT_GT(system.csd_device().flash_array().bytes_written().count(), 0u);
}

TEST(ProgramMut, LineMutBoundsChecked) {
  auto program = apps::make_app("tpch-q6", small());
  EXPECT_NO_THROW(static_cast<void>(program.line_mut(0)));
  EXPECT_THROW(static_cast<void>(program.line_mut(program.line_count())),
               Error);
}

}  // namespace
}  // namespace isp
