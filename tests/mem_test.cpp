// Unit + property tests: address space, allocator, data objects.
#include <gtest/gtest.h>

#include <vector>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "mem/address_space.hpp"
#include "mem/allocator.hpp"
#include "mem/data_object.hpp"

namespace isp::mem {
namespace {

TEST(AddressSpace, StandardLayoutResolvesKinds) {
  const auto space = AddressSpace::standard_layout(1_GiB, 512_MiB);
  EXPECT_EQ(space.kind_of(0), MemKind::HostDram);
  EXPECT_EQ(space.kind_of((1_GiB).count() - 1), MemKind::HostDram);
  EXPECT_EQ(space.kind_of((1_GiB).count()), MemKind::DeviceDram);
  EXPECT_EQ(space.kind_of((1_GiB).count() + (512_MiB).count()),
            MemKind::DeviceBar);
  EXPECT_FALSE(
      space.kind_of((1_GiB).count() + 2 * (512_MiB).count()).has_value());
}

TEST(AddressSpace, RejectsOverlap) {
  AddressSpace space;
  space.map(MemKind::HostDram, 0, Bytes{1000});
  EXPECT_THROW(space.map(MemKind::DeviceDram, 500, Bytes{1000}), Error);
  EXPECT_NO_THROW(space.map(MemKind::DeviceDram, 1000, Bytes{1000}));
}

TEST(AddressSpace, WindowLookup) {
  const auto space = AddressSpace::standard_layout(1_GiB, 512_MiB);
  const auto* host = space.window(MemKind::HostDram);
  ASSERT_NE(host, nullptr);
  EXPECT_EQ(host->size.count(), (1_GiB).count());
  EXPECT_EQ(space.window(MemKind::DeviceBar)->size.count(), (512_MiB).count());
}

TEST(Allocator, FirstFitAndAlignment) {
  const Window window{MemKind::HostDram, 4096, 1_MiB};
  Allocator allocator(window);
  const auto a = allocator.allocate(Bytes{100}, Bytes{64});
  ASSERT_TRUE(a);
  EXPECT_EQ(a->address % 64, 0u);
  EXPECT_GE(a->address, 4096u);
  const auto b = allocator.allocate(Bytes{100}, Bytes{256});
  ASSERT_TRUE(b);
  EXPECT_EQ(b->address % 256, 0u);
  EXPECT_GE(b->address, a->address + 100);
  allocator.check_invariants();
}

TEST(Allocator, ExhaustionReturnsNullopt) {
  const Window window{MemKind::HostDram, 0, Bytes{1024}};
  Allocator allocator(window);
  EXPECT_TRUE(allocator.allocate(Bytes{512}, Bytes{1}));
  EXPECT_TRUE(allocator.allocate(Bytes{512}, Bytes{1}));
  EXPECT_FALSE(allocator.allocate(Bytes{1}, Bytes{1}));
}

TEST(Allocator, ReleaseCoalesces) {
  const Window window{MemKind::HostDram, 0, Bytes{4096}};
  Allocator allocator(window);
  const auto a = allocator.allocate(Bytes{1024}, Bytes{1});
  const auto b = allocator.allocate(Bytes{1024}, Bytes{1});
  const auto c = allocator.allocate(Bytes{1024}, Bytes{1});
  ASSERT_TRUE(a && b && c);
  allocator.release(*a);
  allocator.release(*c);
  allocator.check_invariants();
  // Freeing b merges everything back into one block.
  allocator.release(*b);
  allocator.check_invariants();
  EXPECT_EQ(allocator.largest_free_block().count(), 4096u);
}

TEST(Allocator, DoubleFreeDetected) {
  const Window window{MemKind::HostDram, 0, Bytes{4096}};
  Allocator allocator(window);
  const auto a = allocator.allocate(Bytes{128}, Bytes{1});
  ASSERT_TRUE(a);
  allocator.release(*a);
  EXPECT_THROW(allocator.release(*a), Error);
}

TEST(Allocator, RejectsZeroAndForeign) {
  const Window window{MemKind::HostDram, 0, Bytes{4096}};
  Allocator allocator(window);
  EXPECT_THROW(allocator.allocate(Bytes{0}), Error);
  EXPECT_THROW(allocator.allocate(Bytes{64}, Bytes{3}), Error);
  Allocation foreign{0, Bytes{64}, MemKind::DeviceDram};
  EXPECT_THROW(allocator.release(foreign), Error);
}

class AllocatorChurn : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(AllocatorChurn, NoOverlapNoLeak) {
  const Window window{MemKind::HostDram, 1 << 20, 8_MiB};
  Allocator allocator(window);
  Rng rng(GetParam());
  std::vector<Allocation> live;

  for (int i = 0; i < 2000; ++i) {
    if (live.empty() || rng.next_double() < 0.6) {
      const auto alloc =
          allocator.allocate(Bytes{rng.uniform_u64(1, 32 * 1024)});
      if (alloc) {
        // No overlap with any live allocation.
        for (const auto& other : live) {
          const bool disjoint =
              alloc->address + alloc->size.count() <= other.address ||
              other.address + other.size.count() <= alloc->address;
          ASSERT_TRUE(disjoint);
        }
        live.push_back(*alloc);
      }
    } else {
      const auto idx = rng.uniform_u64(0, live.size() - 1);
      allocator.release(live[idx]);
      live[idx] = live.back();
      live.pop_back();
    }
    if (i % 100 == 0) allocator.check_invariants();
  }
  for (const auto& a : live) allocator.release(a);
  allocator.check_invariants();
  EXPECT_EQ(allocator.free_bytes().count(), (8_MiB).count());
}

INSTANTIATE_TEST_SUITE_P(Seeds, AllocatorChurn,
                         ::testing::Values(101, 202, 303, 404, 505, 606));

TEST(PlaceNearConsumer, Policy) {
  EXPECT_EQ(place_near_consumer(true), MemKind::DeviceDram);
  EXPECT_EQ(place_near_consumer(false), MemKind::HostDram);
}

TEST(Buffer, TypedViews) {
  Buffer buffer;
  buffer.resize_elems<double>(4);
  EXPECT_EQ(buffer.size_bytes(), 32u);
  EXPECT_EQ(buffer.size_as<double>(), 4u);
  auto view = buffer.as<double>();
  view[0] = 1.5;
  view[3] = -2.5;
  const auto& const_buffer = buffer;
  EXPECT_DOUBLE_EQ(const_buffer.as<double>()[0], 1.5);
  EXPECT_DOUBLE_EQ(const_buffer.as<double>()[3], -2.5);
  buffer.clear();
  EXPECT_TRUE(buffer.empty());
}

TEST(DataObject, SyncVirtualSize) {
  DataObject obj;
  obj.name = "x";
  obj.physical.resize_elems<float>(1000);  // 4000 physical bytes
  obj.sync_virtual_size(128.0);
  EXPECT_EQ(obj.virtual_bytes.count(), 512000u);
}

TEST(DataObject, LocationNames) {
  EXPECT_EQ(location_name(Location::Storage), "storage");
  EXPECT_EQ(location_name(Location::HostDram), "host-dram");
  EXPECT_EQ(location_name(Location::DeviceDram), "device-dram");
}

}  // namespace
}  // namespace isp::mem
