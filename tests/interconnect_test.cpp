// Unit tests: link timing model and DMA engine statistics.
#include <gtest/gtest.h>

#include <array>

#include "common/error.hpp"
#include "interconnect/dma.hpp"
#include "interconnect/link.hpp"

namespace isp::interconnect {
namespace {

LinkConfig simple_config() {
  LinkConfig config;
  config.bandwidth = gb_per_s(5.0);
  config.base_latency = Seconds{10e-6};
  config.max_payload = Bytes{128 * 1024};
  config.per_chunk_overhead = Seconds{1e-6};
  return config;
}

TEST(Link, ZeroBytesIsFree) {
  Link link(simple_config());
  EXPECT_DOUBLE_EQ(link.transfer_seconds(Bytes{0}).value(), 0.0);
}

TEST(Link, LargeTransferApproachesBandwidth) {
  Link link(simple_config());
  const Seconds t = link.transfer_seconds(gigabytes(5.0));
  // 1 s of pure bandwidth plus ~38k chunk overheads (38 ms) and latency.
  EXPECT_GT(t.value(), 1.0);
  EXPECT_LT(t.value(), 1.1);
}

TEST(Link, SmallTransferIsLatencyDominated) {
  Link link(simple_config());
  const Seconds t = link.transfer_seconds(Bytes{64});
  EXPECT_GE(t.value(), 10e-6);
  EXPECT_LT(t.value(), 20e-6);
}

TEST(Link, MonotoneInSize) {
  Link link(simple_config());
  Seconds prev = Seconds::zero();
  for (std::uint64_t bytes = 1; bytes < (1ULL << 30); bytes <<= 4) {
    const Seconds t = link.transfer_seconds(Bytes{bytes});
    EXPECT_GE(t, prev);
    prev = t;
  }
}

TEST(Link, AvailabilityStretchesTransfers) {
  Link link(simple_config());
  link.set_availability(sim::AvailabilitySchedule::constant(0.5));
  const SimTime done = link.transfer_finish(SimTime{0.0}, gigabytes(5.0));
  EXPECT_GT(done.seconds(), 2.0);
  EXPECT_LT(done.seconds(), 2.2);
}

TEST(Link, RejectsBadConfig) {
  LinkConfig config = simple_config();
  config.bandwidth = BytesPerSecond{0.0};
  EXPECT_THROW(Link{config}, Error);
  config = simple_config();
  config.max_payload = Bytes{0};
  EXPECT_THROW(Link{config}, Error);
}

TEST(Dma, RecordsStatsByKind) {
  Link link(simple_config());
  DmaEngine dma(link);
  dma.transfer(SimTime{0.0}, Bytes{1000}, TransferKind::RawInput);
  dma.transfer(SimTime{0.0}, Bytes{500}, TransferKind::RawInput);
  dma.transfer(SimTime{0.0}, Bytes{42}, TransferKind::MigrationState);

  const auto& stats = dma.stats();
  EXPECT_EQ(stats.bytes[static_cast<int>(TransferKind::RawInput)].count(),
            1500u);
  EXPECT_EQ(stats.transfers[static_cast<int>(TransferKind::RawInput)], 2u);
  EXPECT_EQ(
      stats.bytes[static_cast<int>(TransferKind::MigrationState)].count(),
      42u);
  EXPECT_EQ(stats.total_bytes().count(), 1542u);
  EXPECT_EQ(link.bytes_moved().count(), 1542u);

  dma.reset_stats();
  EXPECT_EQ(dma.stats().total_bytes().count(), 0u);
}

TEST(Dma, ScatterGatherAggregates) {
  Link link(simple_config());
  DmaEngine dma(link);
  const std::array<Bytes, 3> segments = {Bytes{100}, Bytes{200}, Bytes{300}};
  dma.transfer_sg(SimTime{0.0}, segments, TransferKind::Intermediate);
  EXPECT_EQ(
      dma.stats().bytes[static_cast<int>(TransferKind::Intermediate)].count(),
      600u);
  EXPECT_EQ(dma.stats().transfers[static_cast<int>(TransferKind::Intermediate)],
            1u);
}

TEST(Dma, TransferSpanMatchesSequentialLoopExactly) {
  Link loop_link(simple_config());
  Link span_link(simple_config());
  DmaEngine loop(loop_link);
  DmaEngine span(span_link);

  const Bytes chunk{48 * 1024};
  const std::uint64_t chunks = 37;
  SimTime loop_done{0.0};
  for (std::uint64_t i = 0; i < chunks; ++i) {
    loop_done = loop.transfer(loop_done, chunk, TransferKind::RawInput);
  }
  const SimTime span_done =
      span.transfer_span(SimTime{0.0}, chunk, chunks, TransferKind::RawInput);

  const auto idx = static_cast<int>(TransferKind::RawInput);
  EXPECT_EQ(loop.stats().bytes[idx].count(), span.stats().bytes[idx].count());
  EXPECT_EQ(loop.stats().transfers[idx], span.stats().transfers[idx]);
  EXPECT_EQ(span.stats().transfers[idx], chunks);
  EXPECT_EQ(loop_link.bytes_moved().count(), span_link.bytes_moved().count());
  // One availability pass vs. N — the totals differ only by floating-point
  // re-association.
  EXPECT_NEAR(span_done.seconds(), loop_done.seconds(),
              1e-9 * loop_done.seconds());
}

TEST(Dma, TransferSpanZeroChunksIsFree) {
  Link link(simple_config());
  DmaEngine dma(link);
  const SimTime done =
      dma.transfer_span(SimTime{2.5}, Bytes{4096}, 0, TransferKind::RawInput);
  EXPECT_DOUBLE_EQ(done.seconds(), 2.5);
  EXPECT_EQ(dma.stats().total_bytes().count(), 0u);
  EXPECT_EQ(link.bytes_moved().count(), 0u);
}

TEST(Dma, TransferKindNames) {
  EXPECT_EQ(to_string(TransferKind::RawInput), "raw-input");
  EXPECT_EQ(to_string(TransferKind::ProcessedOutput), "processed-output");
  EXPECT_EQ(to_string(TransferKind::CodeImage), "code-image");
}

}  // namespace
}  // namespace isp::interconnect
