// Unit + integration tests: host CPU model, CSE, CSD device, the firmware
// fetch loop over the simulator, system model composition, trace export.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <vector>

#include "common/rng.hpp"
#include "csd/device.hpp"
#include "csd/firmware.hpp"
#include "host/cpu.hpp"
#include "apps/registry.hpp"
#include "baseline/baselines.hpp"
#include "runtime/active_runtime.hpp"
#include "runtime/protocol_replay.hpp"
#include "runtime/trace.hpp"
#include "system/model.hpp"

namespace isp {
namespace {

TEST(HostCpu, WorkAndThreads) {
  host::HostCpu cpu;
  const Seconds work = cpu.work_seconds(Cycles{3.6e9});
  EXPECT_NEAR(work.value(), 1.0, 1e-12);
  EXPECT_NEAR(cpu.compute_seconds(work, 4).value(), 0.25, 1e-12);
  // Thread counts clamp at the core count.
  EXPECT_NEAR(cpu.compute_seconds(work, 64).value(), 1.0 / 8.0, 1e-12);
  EXPECT_THROW(static_cast<void>(cpu.compute_seconds(work, 0)), Error);
}

TEST(Cse, SpeedRatioMatchesPaperPlatform) {
  csd::Cse cse;
  // 1.5 GHz / 3.6 GHz x 0.5 IPC = 0.2083x one host core.
  EXPECT_NEAR(cse.core_speed_vs_host(), 0.2083, 0.001);
  // 8 cores together: 1.667x one host core.
  const Seconds work{1.0};
  EXPECT_NEAR(cse.compute_seconds(work, 8).value(), 1.0 / 1.6667, 0.01);
  // Serial on the CSE: 4.8x slower than one host core.
  EXPECT_NEAR(cse.compute_seconds(work, 1).value(), 4.8, 0.01);
}

TEST(Cse, CountersAccumulate) {
  csd::Cse cse;
  cse.retire(1000.0, 2000.0);
  cse.retire(500.0, 500.0);
  EXPECT_DOUBLE_EQ(cse.counters().instructions, 1500.0);
  EXPECT_DOUBLE_EQ(cse.counters().cycles, 2500.0);
  EXPECT_DOUBLE_EQ(cse.counters().ipc(), 0.6);
  cse.reset_counters();
  EXPECT_DOUBLE_EQ(cse.counters().ipc(), 0.0);
}

TEST(CsdDevice, CallOverheadFromControllerConfig) {
  sim::Simulator simulator;
  csd::CsdConfig config;
  csd::CsdDevice device(simulator, config);
  EXPECT_NEAR(device.call_overhead().value(),
              config.controller.doorbell_to_fetch.value() +
                  config.controller.completion_post.value(),
              1e-12);
}

TEST(CsdDevice, GcPressureDeratesFlash) {
  sim::Simulator simulator;
  csd::CsdConfig config;
  config.nand_geometry.channels = 1;
  config.nand_geometry.dies_per_channel = 1;
  config.nand_geometry.planes_per_die = 1;
  config.nand_geometry.blocks_per_die = 24;
  config.nand_geometry.pages_per_block = 8;
  config.ftl_overprovision = 0.3;
  csd::CsdDevice device(simulator, config);

  // Churn the FTL into GC, then couple the pressure into the array.
  Rng rng(7);
  for (int i = 0; i < 5000; ++i) {
    device.storage().write(rng.uniform_u64(0, device.storage().logical_pages() - 1));
  }
  ASSERT_GT(device.storage().gc_pressure(), 0.0);
  device.apply_gc_pressure();

  const auto clean = device.flash_array().read_seconds(Bytes{1 << 20});
  const auto loaded =
      device.flash_array().read_finish(SimTime::zero(), Bytes{1 << 20});
  EXPECT_GT(loaded.seconds(), clean.value());
}

TEST(Firmware, ExecutesCallsAndPostsStatus) {
  sim::Simulator simulator;
  csd::Cse cse;
  nvme::CallQueue calls(8);
  nvme::StatusQueue status(64);
  csd::FirmwareConfig config;
  config.chunks = 4;
  csd::Firmware firmware(simulator, cse, calls, status, config);

  std::vector<std::uint32_t> completed;
  firmware.start(
      [](const nvme::CallEntry&) { return Seconds{0.01}; },
      [&](const nvme::CallEntry& entry) {
        completed.push_back(entry.function_id);
        if (completed.size() == 2) {
          // Stop once both functions ran so the poll loop drains.
          return;
        }
      });

  calls.submit(nvme::CallEntry{.function_id = 1, .first_line = 0});
  calls.submit(nvme::CallEntry{.function_id = 2, .first_line = 3});

  simulator.run_until(SimTime{0.05});
  firmware.stop();
  simulator.run_until(SimTime{0.1});

  ASSERT_EQ(completed.size(), 2u);
  EXPECT_EQ(completed[0], 1u);
  EXPECT_EQ(completed[1], 2u);
  EXPECT_EQ(firmware.functions_executed(), 2u);
  EXPECT_FALSE(firmware.busy());

  // 4 status updates per function, ascending chunk ids, instruction counts
  // strictly increasing.
  std::size_t updates = 0;
  double last_instr = 0.0;
  while (const auto e = status.poll()) {
    ++updates;
    EXPECT_LT(e->chunk, 4u);
    EXPECT_GT(e->instructions_retired, last_instr);
    last_instr = e->instructions_retired;
    EXPECT_FALSE(e->high_priority_request);
  }
  EXPECT_EQ(updates, 8u);
  EXPECT_GT(cse.counters().instructions, 0.0);
}

TEST(Firmware, ThrottledCseStretchesExecution) {
  sim::Simulator simulator;
  csd::Cse cse;
  cse.set_availability(sim::AvailabilitySchedule::constant(0.25));
  nvme::CallQueue calls(8);
  nvme::StatusQueue status(64);
  csd::Firmware firmware(simulator, cse, calls, status);

  SimTime finished = SimTime::zero();
  firmware.start([](const nvme::CallEntry&) { return Seconds{0.01}; },
                 [&](const nvme::CallEntry&) { finished = simulator.now(); });
  calls.submit(nvme::CallEntry{.function_id = 1});
  simulator.run_until(SimTime{1.0});
  firmware.stop();
  // 10 ms of work at 25% availability: at least 40 ms.
  EXPECT_GE(finished.seconds(), 0.04);
}

TEST(Firmware, HighPriorityFlagPropagates) {
  sim::Simulator simulator;
  csd::Cse cse;
  nvme::CallQueue calls(8);
  nvme::StatusQueue status(64);
  csd::Firmware firmware(simulator, cse, calls, status);
  firmware.raise_high_priority();
  firmware.start([](const nvme::CallEntry&) { return Seconds{0.001}; },
                 nullptr);
  calls.submit(nvme::CallEntry{.function_id = 9});
  simulator.run_until(SimTime{0.01});
  firmware.stop();
  const auto entry = status.poll();
  ASSERT_TRUE(entry);
  EXPECT_TRUE(entry->high_priority_request);
}

TEST(SystemModel, BandwidthsMatchPaper) {
  system::SystemModel system;
  EXPECT_NEAR(system.storage_to_csd_bandwidth().value() / 1e9, 9.0, 0.3);
  // Host-side reads cap at the 5 GB/s link.
  EXPECT_NEAR(system.storage_to_host_bandwidth().value() / 1e9, 5.0, 0.01);
}

TEST(SystemModel, AddressSpaceCoversBothMemories) {
  system::SystemModel system;
  const auto& space = system.address_space();
  EXPECT_NE(space.window(mem::MemKind::HostDram), nullptr);
  EXPECT_NE(space.window(mem::MemKind::DeviceDram), nullptr);
  EXPECT_NE(space.window(mem::MemKind::DeviceBar), nullptr);
}

TEST(Trace, EmitsBalancedEventsForAllTracks) {
  runtime::ExecutionReport report;
  report.program = "trace-test";
  report.compile_overhead = Seconds{0.05};
  runtime::LineRecord line;
  line.index = 0;
  line.name = "scan";
  line.placement = ir::Placement::Csd;
  line.start = SimTime{0.05};
  line.end = SimTime{1.0};
  line.access = Seconds{0.2};
  line.transfer_in = Seconds{0.1};
  line.compute = Seconds{0.65};
  report.lines.push_back(line);

  const auto trace = runtime::to_chrome_trace(report);
  EXPECT_EQ(trace.front(), '[');
  EXPECT_EQ(trace.back(), ']');
  EXPECT_NE(trace.find("\"tid\":\"cse\""), std::string::npos);
  EXPECT_NE(trace.find("\"tid\":\"link\""), std::string::npos);
  EXPECT_NE(trace.find("\"tid\":\"host\""), std::string::npos);  // codegen
  EXPECT_NE(trace.find("scan [access]"), std::string::npos);

  const std::string path = "/tmp/isp_trace_test.json";
  runtime::write_chrome_trace(report, path);
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::string contents((std::istreambuf_iterator<char>(in)),
                       std::istreambuf_iterator<char>());
  EXPECT_EQ(contents, trace);
  std::remove(path.c_str());
}

TEST(ProtocolReplay, MatchesAnalyticControlPlane) {
  apps::AppConfig config;
  config.size_factor = 0.2;
  const auto program = apps::make_app("tpch-q6", config);

  system::SystemModel system;
  runtime::ActiveRuntime active(system);
  const auto result = active.run(program);
  ASSERT_GT(result.report.csd_calls, 0u);

  system::SystemModel replay_system;
  const auto replay =
      runtime::replay_csd_protocol(replay_system, result.report);
  EXPECT_EQ(replay.calls_submitted, result.report.csd_calls);
  EXPECT_EQ(replay.completions, result.report.csd_calls);
  EXPECT_GT(replay.status_updates, 0u);
  // The event-driven execution time matches the engine's compute charges.
  Seconds csd_compute;
  for (const auto& line : result.report.lines) {
    if (line.placement == ir::Placement::Csd) csd_compute += line.compute;
  }
  EXPECT_NEAR(replay.execute_time.value(), csd_compute.value(), 1e-9);
  // The control plane is microseconds against seconds of data plane.
  EXPECT_LT(replay.protocol_time.value(), 1e-3);
  EXPECT_GT(replay.protocol_time.value(), 0.0);
}

TEST(ProtocolReplay, HostOnlyReportIsANoOp) {
  apps::AppConfig config;
  config.size_factor = 0.2;
  const auto program = apps::make_app("tpch-q6", config);
  system::SystemModel system;
  const auto report = baseline::run_host_only(system, program);
  system::SystemModel replay_system;
  const auto replay = runtime::replay_csd_protocol(replay_system, report);
  EXPECT_EQ(replay.calls_submitted, 0u);
  EXPECT_EQ(replay.completions, 0u);
}

TEST(Trace, RejectsUnwritablePath) {
  runtime::ExecutionReport report;
  EXPECT_THROW(
      runtime::write_chrome_trace(report, "/nonexistent-dir/x.json"),
      Error);
}

}  // namespace
}  // namespace isp
