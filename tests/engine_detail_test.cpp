// Detailed engine-behaviour tests: BAR penalties, migration traffic
// accounting, exec-mode interactions, mixed-precision kernel correctness.
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>

#include "apps/data_gen.hpp"
#include "apps/registry.hpp"
#include "baseline/baselines.hpp"
#include "runtime/active_runtime.hpp"

namespace isp {
namespace {

apps::AppConfig small() {
  apps::AppConfig config;
  config.size_factor = 0.25;
  return config;
}

TEST(EngineDetail, MigrationTrafficAppearsInDmaStats) {
  const auto program = apps::make_app("kmeans", small());
  system::SystemModel system;
  runtime::RunConfig rc;
  rc.engine.contention.enabled = true;
  rc.engine.contention.at_csd_progress = 0.4;
  rc.engine.contention.availability = 0.05;
  runtime::ActiveRuntime active(system);
  const auto result = active.run(program, rc);
  ASSERT_GE(result.report.migrations, 1u);
  const auto migration_bytes = result.report.dma.bytes[static_cast<int>(
      interconnect::TransferKind::MigrationState)];
  // At least the live-variable block moved.
  EXPECT_GE(migration_bytes.count(), 256u * 1024u);
  EXPECT_GT(result.report.migration_overhead.value(), 0.0);
}

TEST(EngineDetail, BarPenaltyMakesRemoteAccessSlower) {
  // Two identical systems, different BAR penalties: the post-migration run
  // with the higher penalty is strictly slower.
  const auto program = apps::make_app("kmeans", small());
  double totals[2] = {0.0, 0.0};
  int i = 0;
  for (const double penalty : {1.0, 8.0}) {
    auto config = system::SystemConfig::paper_platform();
    config.bar_access_penalty = penalty;
    system::SystemModel system(config);
    runtime::RunConfig rc;
    rc.engine.contention.enabled = true;
    rc.engine.contention.at_csd_progress = 0.4;
    rc.engine.contention.availability = 0.05;
    runtime::ActiveRuntime active(system);
    const auto result = active.run(program, rc);
    EXPECT_GE(result.report.migrations, 1u);
    totals[i++] = result.report.total.value();
  }
  EXPECT_LT(totals[0], totals[1]);
}

TEST(EngineDetail, CodeImageShippedOncePerRun) {
  const auto program = apps::make_app("mixedgemm", small());
  system::SystemModel system;
  runtime::ActiveRuntime active(system);
  const auto result = active.run(program);
  ASSERT_GT(result.plan.csd_line_count(), 0u);
  const auto code_bytes = result.report.dma.bytes[static_cast<int>(
      interconnect::TransferKind::CodeImage)];
  EXPECT_EQ(code_bytes.count(),
            result.plan.csd_line_count() * 32u * 1024u);
  EXPECT_EQ(result.report.dma.transfers[static_cast<int>(
                interconnect::TransferKind::CodeImage)],
            1u);
}

TEST(EngineDetail, InterpreterDispatchScalesWithLineCount) {
  // Two programs with the same volume/compute but different line counts pay
  // different interpreter dispatch totals.
  const auto q6 = apps::make_app("tpch-q6", small());       // 3 lines
  const auto kmeans = apps::make_app("kmeans", small());    // 9 lines
  runtime::EngineOptions options;
  options.monitoring = false;
  options.migration = false;

  system::SystemModel a;
  const auto q6_interp = runtime::run_program(
      a, q6, ir::Plan::host_only(q6.line_count()),
      codegen::ExecMode::Interpreted, options);
  system::SystemModel b;
  const auto q6_native = runtime::run_program(
      b, q6, ir::Plan::host_only(q6.line_count()),
      codegen::ExecMode::NativeC, options);
  // Interpreted strictly slower, and by more than dispatch alone (compute
  // multiplier + marshalling dominate).
  EXPECT_GT(q6_interp.total.value(), q6_native.total.value() * 1.2);

  Seconds q6_overhead;
  for (const auto& l : q6_interp.lines) q6_overhead += l.overhead;
  system::SystemModel c;
  const auto km_interp = runtime::run_program(
      c, kmeans, ir::Plan::host_only(kmeans.line_count()),
      codegen::ExecMode::Interpreted, options);
  Seconds km_overhead;
  for (const auto& l : km_interp.lines) km_overhead += l.overhead;
  EXPECT_GT(km_overhead.value(), q6_overhead.value());
}

TEST(EngineDetail, MarshallingChargedOnVolumes) {
  const auto program = apps::make_app("tpch-q6", small());
  runtime::EngineOptions options;
  options.monitoring = false;
  options.migration = false;
  system::SystemModel a;
  const auto compiled = runtime::run_program(
      a, program, ir::Plan::host_only(program.line_count()),
      codegen::ExecMode::Compiled, options);
  // The scan's marshalling is roughly input volume over the marshal
  // bandwidth (output is ~2% of input).
  const double expected =
      program.total_storage_bytes().as_double() / 4.6e9;
  EXPECT_NEAR(compiled.lines[0].marshal.value(), expected,
              expected * 0.1);
  // No marshalling in no-copy mode.
  system::SystemModel b;
  const auto nocopy = runtime::run_program(
      b, program, ir::Plan::host_only(program.line_count()),
      codegen::ExecMode::CompiledNoCopy, options);
  EXPECT_DOUBLE_EQ(nocopy.lines[0].marshal.value(), 0.0);
}

TEST(EngineDetail, Bf16ConversionRoundTripsThroughGemm) {
  // MixedGEMM's bf16 path: converting and multiplying must stay within
  // bfloat16's ~3-decimal-digit precision of the fp32 reference.
  const auto program = apps::make_app("mixedgemm", small());
  runtime::EngineOptions options;
  options.monitoring = false;
  options.migration = false;
  system::SystemModel system;
  auto store = program.make_store();
  runtime::run_program(system, program,
                       ir::Plan::host_only(program.line_count()),
                       codegen::ExecMode::NativeC, options, &store);

  auto reference = program.make_store();
  const auto acts = reference.at("activations_file").physical.as<float>();
  const auto weights = reference.at("weights_file").physical.as<float>();
  const auto logits = store.at("logits").physical.as<float>();
  constexpr std::size_t kDim = 64;
  ASSERT_GE(logits.size(), kDim * kDim);

  // First tile, first row, first column in full fp32.
  double expected = 0.0;
  for (std::size_t k = 0; k < kDim; ++k) {
    expected += static_cast<double>(acts[k]) * weights[k * kDim];
  }
  // bf16 has 8 mantissa bits: expect agreement to ~1% of the magnitude
  // accumulated over 64 products of O(1) values.
  EXPECT_NEAR(logits[0], expected, 0.35);
}

TEST(EngineDetail, ObservedRateRecordedForCsdLines) {
  const auto program = apps::make_app("tpch-q6", small());
  system::SystemModel system;
  runtime::ActiveRuntime active(system);
  const auto result = active.run(program);
  for (std::size_t i = 0; i < result.report.lines.size(); ++i) {
    if (result.report.lines[i].placement == ir::Placement::Csd) {
      EXPECT_GT(result.report.lines[i].observed_rate, 0.0) << i;
    }
  }
}

}  // namespace
}  // namespace isp
