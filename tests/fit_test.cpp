// Unit + property tests: the five-class curve fitter (§III-A).
#include <gtest/gtest.h>

#include <cmath>
#include <tuple>
#include <vector>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "fit/curve_fit.hpp"

namespace isp::fit {
namespace {

std::vector<double> sample_sizes() {
  // The paper's four scaling factors applied to a ~1e8-element input.
  return {1e8 / 1024, 1e8 / 512, 1e8 / 256, 1e8 / 128};
}

TEST(CurveFit, ExactLinearRecovery) {
  const auto n = sample_sizes();
  std::vector<double> y;
  for (const auto x : n) y.push_back(3.0 + 2.5e-3 * x);
  const auto fit = fit_best(n, y);
  EXPECT_EQ(fit.cls, ir::ComplexityClass::ON);
  EXPECT_NEAR(fit.a, 3.0, 1e-6);
  EXPECT_NEAR(fit.b, 2.5e-3, 1e-12);
  EXPECT_NEAR(fit.predict(1e8), 3.0 + 2.5e5, 1.0);
}

TEST(CurveFit, ConstantPrefersO1) {
  const auto n = sample_sizes();
  const std::vector<double> y = {7.0, 7.0, 7.0, 7.0};
  const auto fit = fit_best(n, y);
  EXPECT_EQ(fit.cls, ir::ComplexityClass::O1);
  EXPECT_NEAR(fit.predict(1e10), 7.0, 1e-9);
}

TEST(CurveFit, PredictClampsNegative) {
  // Strongly decreasing data would extrapolate below zero.
  const std::vector<double> n = {1.0, 2.0, 3.0, 4.0};
  const std::vector<double> y = {10.0, 7.0, 4.0, 1.0};
  const auto fit = fit_best(n, y);
  EXPECT_GE(fit.predict(100.0), 0.0);
}

TEST(CurveFit, RejectsDegenerateInput) {
  const std::vector<double> one = {1.0};
  EXPECT_THROW(static_cast<void>(fit_best(one, one)), Error);
  const std::vector<double> n = {1.0, 2.0};
  const std::vector<double> y = {1.0};
  EXPECT_THROW(static_cast<void>(fit_best(n, y)), Error);
}

TEST(CurveFit, OccamPrefersLowOrderOnNoisyLinearData) {
  // Quantised/noisy linear data: a cubic can wiggle closer through four
  // points, but extrapolating it 1000x out would be catastrophic.  The
  // selection margin must keep O(n).
  const auto n = sample_sizes();
  const std::vector<double> y = {0.9e2, 2.2e2, 3.9e2, 8.4e2};
  const auto fit = fit_best(n, y);
  EXPECT_TRUE(fit.cls == ir::ComplexityClass::ON ||
              fit.cls == ir::ComplexityClass::ONLogN)
      << "picked " << ir::to_string(fit.cls);
}

TEST(CurveFit, FitClassReportsResidual) {
  const auto n = sample_sizes();
  std::vector<double> y;
  for (const auto x : n) y.push_back(x * x * 1e-9);
  const auto wrong = fit_class(ir::ComplexityClass::ON, n, y);
  const auto right = fit_class(ir::ComplexityClass::ON2, n, y);
  EXPECT_LT(right.rmse_rel, wrong.rmse_rel);
  EXPECT_NEAR(right.rmse_rel, 0.0, 1e-9);
}

// Property: for every generating class and a range of coefficients, the
// fitter recovers the class from 4 samples with mild noise and extrapolates
// to within 25% at 128x beyond the largest sample.
class FitRecovery
    : public ::testing::TestWithParam<std::tuple<ir::ComplexityClass, int>> {
};

TEST_P(FitRecovery, RecoversGeneratingClass) {
  const auto [cls, coeff_case] = GetParam();
  // The slope coefficient varies over five orders of magnitude; the
  // intercept stays a fixed small fraction of the mid-range signal so the
  // growth term is always observable above the 1% noise.
  const double b = 1e-4 / std::pow(10.0, coeff_case);
  const double a = 0.05 * b * ir::basis(cls, 8000.0);
  Rng rng(static_cast<std::uint64_t>(coeff_case) * 31 +
          static_cast<std::uint64_t>(cls));

  const std::vector<double> n = {2000, 4000, 8000, 16000};
  std::vector<double> y;
  for (const auto x : n) {
    const double noise = 1.0 + 0.01 * (2.0 * rng.next_double() - 1.0);
    y.push_back((a + b * ir::basis(cls, x)) * noise);
  }
  const auto fit = fit_best(n, y);

  const double raw_n = 16000.0 * 128.0;
  const double truth = a + b * ir::basis(cls, raw_n);
  // Class recovery is the goal, but adjacent classes can tie when the
  // intercept dominates; what must hold is extrapolation accuracy.  O(n log n)
  // is special: over an 8x sample range it is near-indistinguishable from
  // O(n), and Occam selection deliberately prefers the simpler class, costing
  // up to a log-ratio factor at 128x extrapolation ("good enough", §III-A).
  const double tolerance =
      cls == ir::ComplexityClass::ONLogN ? 0.45 : 0.25;
  EXPECT_NEAR(fit.predict(raw_n) / truth, 1.0, tolerance)
      << "generated " << ir::to_string(cls) << ", fitted "
      << ir::to_string(fit.cls);
}

INSTANTIATE_TEST_SUITE_P(
    ClassesAndCoefficients, FitRecovery,
    ::testing::Combine(::testing::Values(ir::ComplexityClass::ON,
                                         ir::ComplexityClass::ONLogN,
                                         ir::ComplexityClass::ON2,
                                         ir::ComplexityClass::ON3),
                       ::testing::Range(0, 5)));

// Property: concave data (coupon-collector shaped, like compacted-CSR
// volume) is always over-estimated by the five-class basis — the mechanism
// behind the paper's conservative CSR mis-prediction.
class ConcaveOverestimate : public ::testing::TestWithParam<double> {};

TEST_P(ConcaveOverestimate, AlwaysOver) {
  const double domain = GetParam();  // coupon-collector domain size
  const std::vector<double> n = {1000, 2000, 4000, 8000};
  std::vector<double> y;
  for (const auto x : n) {
    y.push_back(domain * (1.0 - std::exp(-x / domain)));  // distinct(x)
  }
  const auto fit = fit_best(n, y);
  const double raw_n = 1e6;
  const double truth = domain * (1.0 - std::exp(-raw_n / domain));
  EXPECT_GT(fit.predict(raw_n), truth);
}

INSTANTIATE_TEST_SUITE_P(Domains, ConcaveOverestimate,
                         ::testing::Values(2e4, 5e4, 1e5, 3e5, 1e6));

}  // namespace
}  // namespace isp::fit
