// Unit tests: exec-mode overhead model, memory planning and lowering edges.
#include <gtest/gtest.h>

#include "codegen/exec_mode.hpp"
#include "codegen/lowering.hpp"
#include "system/model.hpp"

namespace isp::codegen {
namespace {

TEST(ExecMode, Names) {
  EXPECT_EQ(to_string(ExecMode::NativeC), "native-c");
  EXPECT_EQ(to_string(ExecMode::Interpreted), "interpreted");
  EXPECT_EQ(to_string(ExecMode::Compiled), "compiled");
  EXPECT_EQ(to_string(ExecMode::CompiledNoCopy), "compiled-nocopy");
}

TEST(ExecMode, ComputeMultipliersOrdered) {
  const RuntimeOverheadModel model;
  EXPECT_DOUBLE_EQ(model.compute_multiplier(ExecMode::NativeC), 1.0);
  EXPECT_GT(model.compute_multiplier(ExecMode::Interpreted),
            model.compute_multiplier(ExecMode::Compiled));
  EXPECT_EQ(model.compute_multiplier(ExecMode::Compiled),
            model.compute_multiplier(ExecMode::CompiledNoCopy));
  EXPECT_GT(model.compute_multiplier(ExecMode::CompiledNoCopy), 1.0);
}

TEST(ExecMode, MarshallingOnlyWithoutElimination) {
  const RuntimeOverheadModel model;
  EXPECT_TRUE(model.pays_marshalling(ExecMode::Interpreted));
  EXPECT_TRUE(model.pays_marshalling(ExecMode::Compiled));
  EXPECT_FALSE(model.pays_marshalling(ExecMode::CompiledNoCopy));
  EXPECT_FALSE(model.pays_marshalling(ExecMode::NativeC));
}

TEST(ExecMode, DispatchOnlyWhenInterpreted) {
  const RuntimeOverheadModel model;
  EXPECT_GT(model.dispatch_overhead(ExecMode::Interpreted).value(), 0.0);
  EXPECT_DOUBLE_EQ(model.dispatch_overhead(ExecMode::Compiled).value(), 0.0);
}

TEST(ExecMode, CompileChargedForCythonModes) {
  const RuntimeOverheadModel model;
  EXPECT_FALSE(model.pays_compile(ExecMode::NativeC));
  EXPECT_FALSE(model.pays_compile(ExecMode::Interpreted));
  EXPECT_TRUE(model.pays_compile(ExecMode::Compiled));
  EXPECT_TRUE(model.pays_compile(ExecMode::CompiledNoCopy));
}

ir::Program two_line_program() {
  ir::Program program("two", 16.0);
  ir::Dataset d;
  d.object.name = "in";
  d.object.location = mem::Location::Storage;
  d.object.virtual_bytes = Bytes{1 << 20};
  d.object.physical.resize_elems<float>(1024);
  d.elem_bytes = sizeof(float);
  program.add_dataset(std::move(d));

  for (int i = 0; i < 2; ++i) {
    ir::CodeRegion line;
    line.name = "l" + std::to_string(i);
    line.inputs = {i == 0 ? "in" : "mid"};
    line.outputs = {i == 0 ? "mid" : "out"};
    line.elem_bytes = sizeof(float);
    program.add_line(std::move(line));
  }
  return program;
}

TEST(Lowering, HostOnlyHasNoCsdArtifacts) {
  system::SystemModel system;
  const auto program = two_line_program();
  const auto lowered =
      lower(program, ir::Plan::host_only(2), system.address_space(),
            ExecMode::CompiledNoCopy);
  EXPECT_EQ(lowered.csd_group_count, 0u);
  EXPECT_EQ(lowered.csd_code_image.count(), 0u);
  for (const auto& line : lowered.lines) {
    EXPECT_FALSE(line.enters_csd_group);
    EXPECT_FALSE(line.status_updates);
  }
}

TEST(Lowering, AlternatingPlacementsMakeTwoGroups) {
  system::SystemModel system;
  auto program = two_line_program();
  ir::CodeRegion extra;
  extra.name = "l2";
  extra.inputs = {"out"};
  extra.outputs = {"final"};
  program.add_line(std::move(extra));

  ir::Plan plan = ir::Plan::host_only(3);
  plan.placement[0] = ir::Placement::Csd;
  plan.placement[2] = ir::Placement::Csd;
  const auto lowered = lower(program, plan, system.address_space(),
                             ExecMode::CompiledNoCopy);
  EXPECT_EQ(lowered.csd_group_count, 2u);
  EXPECT_TRUE(lowered.lines[0].enters_csd_group);
  EXPECT_TRUE(lowered.lines[2].enters_csd_group);
}

TEST(Lowering, InstrumentationCanBeDisabled) {
  system::SystemModel system;
  const auto program = two_line_program();
  ir::Plan plan = ir::Plan::host_only(2);
  plan.placement[0] = ir::Placement::Csd;
  LoweringOptions options;
  options.instrument_status = false;
  const auto lowered = lower(program, plan, system.address_space(),
                             ExecMode::CompiledNoCopy, options);
  EXPECT_FALSE(lowered.lines[0].status_updates);
}

TEST(Lowering, RejectsMismatchedPlan) {
  system::SystemModel system;
  const auto program = two_line_program();
  EXPECT_THROW(lower(program, ir::Plan::host_only(5),
                     system.address_space(), ExecMode::NativeC),
               Error);
}

TEST(MemoryPlan, FinalOutputLandsAtHost) {
  system::SystemModel system;
  const auto program = two_line_program();
  ir::Plan plan = ir::Plan::host_only(2);
  plan.placement[0] = ir::Placement::Csd;
  plan.placement[1] = ir::Placement::Csd;
  const auto memory = plan_memory(program, plan, system.address_space(),
                                  ExecMode::CompiledNoCopy);
  // "mid" is consumed by a CSD line; "out" has no consumer -> host.
  EXPECT_EQ(memory.find("mid")->kind, mem::MemKind::DeviceDram);
  EXPECT_EQ(memory.find("out")->kind, mem::MemKind::HostDram);
  EXPECT_EQ(memory.find("nonexistent"), nullptr);
}

TEST(MemoryPlan, AccountsBytesPerSide) {
  system::SystemModel system;
  const auto program = two_line_program();
  ir::Plan plan = ir::Plan::host_only(2);
  plan.placement[0] = ir::Placement::Csd;
  plan.placement[1] = ir::Placement::Csd;
  const auto memory = plan_memory(program, plan, system.address_space(),
                                  ExecMode::CompiledNoCopy);
  EXPECT_GT(memory.device_bytes.count(), 0u);
  EXPECT_GT(memory.host_bytes.count(), 0u);
}

}  // namespace
}  // namespace isp::codegen
