// Unit tests: Equation 1, the device factor, estimate building, Algorithm 1
// and the exhaustive oracle.
#include <gtest/gtest.h>

#include "plan/assignment.hpp"
#include "plan/device_factor.hpp"
#include "plan/equation1.hpp"
#include "plan/estimates.hpp"
#include "plan/oracle.hpp"
#include "profile/sampler.hpp"
#include "system/model.hpp"

namespace isp::plan {
namespace {

TEST(Equation1, ProfitableWhenReductionDominates) {
  // 6.9 GB raw over 5 GB/s costs 1.38 s on the host side; a CSD that
  // computes a touch slower but ships back almost nothing wins.
  const Eq1Terms terms{.ds_raw = gigabytes(6.9),
                       .ct_host = Seconds{2.0},
                       .ct_device = Seconds{2.8},
                       .ds_processed = gigabytes(0.05),
                       .bw_d2h = gb_per_s(5.0)};
  EXPECT_TRUE(profitable(terms));
  EXPECT_NEAR(net_profit(terms).value(), 1.38 + 2.0 - 2.8 - 0.01, 1e-9);
}

TEST(Equation1, UnprofitableWhenDeviceTooSlow) {
  const Eq1Terms terms{.ds_raw = gigabytes(1.0),
                       .ct_host = Seconds{1.0},
                       .ct_device = Seconds{5.0},
                       .ds_processed = Bytes{0},
                       .bw_d2h = gb_per_s(5.0)};
  EXPECT_FALSE(profitable(terms));
}

TEST(Equation1, MonotoneInLinkBandwidth) {
  Eq1Terms terms{.ds_raw = gigabytes(6.9),
                 .ct_host = Seconds{1.0},
                 .ct_device = Seconds{1.5},
                 .ds_processed = gigabytes(0.1),
                 .bw_d2h = gb_per_s(2.0)};
  const auto slow_link = net_profit(terms);
  terms.bw_d2h = gb_per_s(10.0);
  const auto fast_link = net_profit(terms);
  // A faster link shrinks the raw-transfer saving: less profit for ISP.
  EXPECT_GT(slow_link, fast_link);
}

TEST(Equation1, RejectsZeroBandwidth) {
  Eq1Terms terms;
  terms.bw_d2h = BytesPerSecond{0.0};
  EXPECT_THROW(static_cast<void>(net_profit(terms)), Error);
}

TEST(Equation1, ContentionCollapsesToNetProfitWhenNeutral) {
  const Eq1Terms terms{.ds_raw = gigabytes(6.9),
                       .ct_host = Seconds{2.0},
                       .ct_device = Seconds{2.8},
                       .ds_processed = gigabytes(0.05),
                       .bw_d2h = gb_per_s(5.0)};
  const Eq1Contention neutral{.queue_wait = Seconds::zero(),
                              .cse_availability = 1.0,
                              .link_share = 1.0};
  EXPECT_DOUBLE_EQ(net_profit_under_contention(terms, neutral).value(),
                   net_profit(terms).value());
}

TEST(Equation1, ContentionStretchesTheDeviceSideOnly) {
  const Eq1Terms terms{.ds_raw = gigabytes(6.9),
                       .ct_host = Seconds{2.0},
                       .ct_device = Seconds{2.8},
                       .ds_processed = gigabytes(0.05),
                       .bw_d2h = gb_per_s(5.0)};
  const auto base = net_profit(terms);

  // Queue wait subtracts one-for-one from the profit.
  const auto queued = net_profit_under_contention(
      terms, {.queue_wait = Seconds{0.5}});
  EXPECT_NEAR(queued.value(), base.value() - 0.5, 1e-9);

  // A throttled CSE inflates CT_device by 1/A.
  const auto throttled = net_profit_under_contention(
      terms, {.queue_wait = Seconds::zero(), .cse_availability = 0.5});
  EXPECT_NEAR(throttled.value(), base.value() - 2.8, 1e-9);

  // A halved link slows *both* transfers; with DS_raw >> DS_processed the
  // host side suffers more, so the device's relative profit grows.
  const auto shared_link = net_profit_under_contention(
      terms, {.queue_wait = Seconds::zero(),
              .cse_availability = 1.0,
              .link_share = 0.5});
  EXPECT_GT(shared_link, base);
}

TEST(Equation1, SideSplitRecombinesBitForBit) {
  // The serving bid cache recombines a cached device-side core with a fresh
  // host-side term, so the split must be *exactly* the monolithic profit:
  // host_side_cost − device_side_cost == net_profit_under_contention, bit
  // for bit, across contention regimes.
  const Eq1Terms terms{.ds_raw = gigabytes(6.9),
                       .ct_host = Seconds{2.0},
                       .ct_device = Seconds{2.8},
                       .ds_processed = gigabytes(0.05),
                       .bw_d2h = gb_per_s(5.0)};
  const Eq1Contention regimes[] = {
      {.queue_wait = Seconds::zero(),
       .cse_availability = 1.0,
       .link_share = 1.0},
      {.queue_wait = Seconds{0.75},
       .cse_availability = 0.37,
       .link_share = 0.5},
      {.queue_wait = Seconds{123.456},
       .cse_availability = 1e-6,
       .link_share = 0.125},
  };
  for (const auto& c : regimes) {
    const auto recombined = host_side_cost(terms, c) - device_side_cost(terms, c);
    EXPECT_EQ(recombined.value(),
              net_profit_under_contention(terms, c).value())
        << "A=" << c.cse_availability << " share=" << c.link_share;
  }
}

TEST(Equation1, StorageTermsSubtractFromTheDeviceSide) {
  // The backend-specific storage terms price exactly like queue wait: every
  // second of expected reclaim stall or persist cost comes straight off the
  // offload profit, and both land in device_side_cost for the bid cache's
  // side split.
  const Eq1Terms terms{.ds_raw = gigabytes(6.9),
                       .ct_host = Seconds{2.0},
                       .ct_device = Seconds{2.8},
                       .ds_processed = gigabytes(0.05),
                       .bw_d2h = gb_per_s(5.0)};
  const auto base = net_profit(terms);

  const auto reclaiming = net_profit_under_contention(
      terms, {.reclaim_wait = Seconds{0.25}});
  EXPECT_NEAR(reclaiming.value(), base.value() - 0.25, 1e-9);

  const auto persisting = net_profit_under_contention(
      terms, {.persist_cost = Seconds{0.4}});
  EXPECT_NEAR(persisting.value(), base.value() - 0.4, 1e-9);

  const Eq1Contention both{.reclaim_wait = Seconds{0.25},
                           .persist_cost = Seconds{0.4}};
  EXPECT_NEAR(net_profit_under_contention(terms, both).value(),
              base.value() - 0.65, 1e-9);
  const auto neutral_dev =
      device_side_cost(terms, Eq1Contention{});
  EXPECT_NEAR(device_side_cost(terms, both).value(),
              neutral_dev.value() + 0.65, 1e-9);
}

TEST(Equation1, StorageTermsRejectNegatives) {
  const Eq1Terms terms{.ds_raw = gigabytes(1.0),
                       .ct_host = Seconds{1.0},
                       .ct_device = Seconds{1.0},
                       .ds_processed = Bytes{0},
                       .bw_d2h = gb_per_s(5.0)};
  EXPECT_THROW(static_cast<void>(net_profit_under_contention(
                   terms, {.reclaim_wait = Seconds{-0.1}})),
               Error);
  EXPECT_THROW(static_cast<void>(net_profit_under_contention(
                   terms, {.persist_cost = Seconds{-0.1}})),
               Error);
}

TEST(Equation1, ContentionRejectsBadFractions) {
  const Eq1Terms terms{.ds_raw = gigabytes(1.0),
                       .ct_host = Seconds{1.0},
                       .ct_device = Seconds{1.0},
                       .ds_processed = Bytes{0},
                       .bw_d2h = gb_per_s(5.0)};
  EXPECT_THROW(static_cast<void>(net_profit_under_contention(
                   terms, {.queue_wait = Seconds::zero(),
                           .cse_availability = 0.0})),
               Error);
  EXPECT_THROW(static_cast<void>(net_profit_under_contention(
                   terms, {.queue_wait = Seconds::zero(),
                           .cse_availability = 1.0,
                           .link_share = 1.5})),
               Error);
  EXPECT_THROW(static_cast<void>(net_profit_under_contention(
                   terms, {.queue_wait = Seconds{-1.0}})),
               Error);
}

TEST(DeviceFactor, CountersMatchArchitecture) {
  system::SystemModel system;
  const auto factor = device_factor_from_counters(system);
  // One A72 core at 1.5 GHz and half the IPC of a 3.6 GHz Zen2 core:
  // (3.6/1.5) / 0.5 = 4.8x slower per core.
  EXPECT_NEAR(factor.c, 4.8, 0.01);
}

TEST(DeviceFactor, CalibrationAgreesWithCounters) {
  system::SystemModel system;
  const auto counters = device_factor_from_counters(system);
  const auto calibrated = device_factor_from_calibration(system);
  EXPECT_NEAR(calibrated.c / counters.c, 1.0, 0.05);
}

/// A synthetic two-line program: a big reducing scan followed by a small
/// aggregation — the canonical ISP-friendly shape.
ir::Program scan_program(double reduction = 0.02, double scan_cpb = 4.0,
                         std::uint32_t csd_threads = 8) {
  ir::Program program("scan", 16.0);
  ir::Dataset d;
  d.object.name = "file";
  d.object.location = mem::Location::Storage;
  d.object.virtual_bytes = gigabytes(4.0);
  d.object.physical.resize_elems<float>(
      static_cast<std::size_t>(4e9 / 16.0 / sizeof(float)));
  d.elem_bytes = sizeof(float);
  program.add_dataset(std::move(d));

  ir::CodeRegion scan;
  scan.name = "hits = filter(file)";
  scan.inputs = {"file"};
  scan.outputs = {"hits"};
  scan.elem_bytes = sizeof(float);
  scan.cost.cycles_per_elem = scan_cpb;
  scan.csd_threads = csd_threads;
  scan.chunks = 16;
  scan.kernel = [reduction](ir::KernelCtx& ctx) {
    const auto in = ctx.input(0).physical.as<float>();
    auto& out = ctx.output(0);
    const auto keep = static_cast<std::size_t>(
        static_cast<double>(in.size()) * reduction);
    out.physical.resize_elems<float>(keep > 0 ? keep : 1);
    auto dst = out.physical.as<float>();
    for (std::size_t i = 0; i < dst.size(); ++i) dst[i] = in[i];
  };
  program.add_line(std::move(scan));

  ir::CodeRegion agg;
  agg.name = "total = sum(hits)";
  agg.inputs = {"hits"};
  agg.outputs = {"total"};
  agg.elem_bytes = sizeof(float);
  agg.cost.cycles_per_elem = 2.0;
  agg.csd_threads = csd_threads;
  agg.chunks = 4;
  agg.kernel = [](ir::KernelCtx& ctx) {
    const auto in = ctx.input(0).physical.as<float>();
    double total = 0.0;
    for (const auto v : in) total += v;
    auto& out = ctx.output(0);
    out.physical.resize_elems<double>(1);
    out.physical.as<double>()[0] = total;
  };
  program.add_line(std::move(agg));
  return program;
}

std::vector<ir::LineEstimate> estimates_for(system::SystemModel& system,
                                            const ir::Program& program) {
  profile::Sampler sampler(system);
  const auto samples = sampler.run(program);
  return build_estimates(program, samples,
                         device_factor_from_counters(system), system);
}

TEST(Estimates, PropagateVolumesTransitively) {
  system::SystemModel system;
  const auto program = scan_program();
  const auto estimates = estimates_for(system, program);
  ASSERT_EQ(estimates.size(), 2u);
  // Line 0 reads the 4 GB file from storage.
  EXPECT_NEAR(estimates[0].storage_in.as_double(), 4e9, 4e7);
  EXPECT_EQ(estimates[0].d_in.count(), 0u);
  // Line 1 consumes line 0's predicted (reduced) output.
  EXPECT_NEAR(estimates[1].d_in.as_double(),
              estimates[0].d_out.as_double(), 1.0);
  EXPECT_LT(estimates[1].d_in.as_double(), 4e9 * 0.1);
  // Device times reflect parallelism: 8 CSE cores at 4.8x per-core slowdown
  // against one host thread -> 0.6x wall time.
  EXPECT_NEAR(estimates[0].ct_device.value() / estimates[0].ct_host.value(),
              0.6, 0.05);
}

TEST(Assignment, OffloadsReducingScan) {
  system::SystemModel system;
  const auto program = scan_program();
  const auto result =
      assign_csd(program, estimates_for(system, program), system);
  EXPECT_EQ(result.plan.placement[0], ir::Placement::Csd);
  EXPECT_LE(result.projected, result.projected_host);
  EXPECT_FALSE(result.plan.estimate.empty());
}

TEST(Assignment, KeepsComputeHeavyLineHome) {
  system::SystemModel system;
  // No volume reduction, compute-dominated, and serial on the CSD: a single
  // slow CSE core cannot compete with the host core.
  const auto program = scan_program(/*reduction=*/1.0, /*scan_cpb=*/64.0,
                                    /*csd_threads=*/1);
  const auto result =
      assign_csd(program, estimates_for(system, program), system);
  EXPECT_EQ(result.plan.placement[0], ir::Placement::Host);
  EXPECT_EQ(result.plan.placement[1], ir::Placement::Host);
  EXPECT_EQ(result.projected, result.projected_host);
}

TEST(Assignment, ProjectionNeverExceedsHostOnly) {
  system::SystemModel system;
  for (const double reduction : {0.01, 0.1, 0.5, 1.0}) {
    const auto program = scan_program(reduction);
    const auto result =
        assign_csd(program, estimates_for(system, program), system);
    EXPECT_LE(result.projected, result.projected_host);
  }
}

TEST(Assignment, IsIdempotent) {
  system::SystemModel system;
  const auto program = scan_program();
  const auto estimates = estimates_for(system, program);
  const auto first = assign_csd(program, estimates, system);
  const auto second = assign_csd(program, estimates, system);
  EXPECT_EQ(first.plan.placement, second.plan.placement);
  EXPECT_EQ(first.projected, second.projected);
}

TEST(Oracle, FindsNoWorsePlanThanHostOnly) {
  system::SystemModel system;
  const auto program = scan_program();
  const auto result = exhaustive_oracle(system, program);
  EXPECT_EQ(result.combinations_evaluated, 4u);  // 2 lines -> 2^2
  EXPECT_LE(result.best_latency, result.host_only_latency);
  EXPECT_EQ(result.best.placement.size(), 2u);
}

TEST(Oracle, AgreesWithAlgorithm1OnCanonicalShape) {
  system::SystemModel system;
  const auto program = scan_program();
  const auto oracle = exhaustive_oracle(system, program);
  const auto algo =
      assign_csd(program, estimates_for(system, program), system);
  EXPECT_EQ(oracle.best.placement, algo.plan.placement);
}

TEST(Oracle, MeasuredEstimatesMatchKernelBehaviour) {
  system::SystemModel system;
  const auto program = scan_program(0.05);
  const auto truth = measure_true_estimates(system, program);
  ASSERT_EQ(truth.size(), 2u);
  // The scan really produced ~5% of its input volume.
  EXPECT_NEAR(truth[0].d_out.as_double() / 4e9, 0.05, 0.005);
  EXPECT_GT(truth[0].instructions, 0.0);
}

TEST(Oracle, RefusesOversizedPrograms) {
  system::SystemModel system;
  ir::Program big("big", 16.0);
  ir::Dataset d;
  d.object.name = "x";
  d.object.virtual_bytes = Bytes{1024};
  d.object.physical.resize_elems<float>(16);
  big.add_dataset(std::move(d));
  std::string prev = "x";
  for (int i = 0; i < 25; ++i) {
    ir::CodeRegion line;
    line.name = "l" + std::to_string(i);
    line.inputs = {prev};
    line.outputs = {"o" + std::to_string(i)};
    prev = "o" + std::to_string(i);
    big.add_line(std::move(line));
  }
  EXPECT_THROW(exhaustive_oracle(system, big), Error);
}

}  // namespace
}  // namespace isp::plan
