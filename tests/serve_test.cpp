// Multi-tenant serving layer: admission control, weighted fair shares,
// Eq.1 placement, and the wave-batched deterministic serving loop.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <vector>

#include "common/error.hpp"
#include "obs/metrics.hpp"
#include "serve/admission.hpp"
#include "serve/fleet.hpp"
#include "serve/memo.hpp"
#include "serve/observe.hpp"
#include "serve/server.hpp"
#include "sim/availability.hpp"

namespace {

using namespace isp;

serve::QueuedJob job_for(std::uint64_t id, std::uint32_t tenant) {
  serve::QueuedJob j;
  j.id = id;
  j.tenant = tenant;
  j.arrival = SimTime{static_cast<double>(id) * 1e-3};
  return j;
}

// --- Admission / WFQ properties (pure scheduler, no simulations) ---------

TEST(Admission, RejectsWithTypedOverloadedStatus) {
  serve::AdmissionController admission(
      {serve::TenantConfig{.weight = 1.0, .queue_depth = 2}});
  EXPECT_TRUE(admission.offer(job_for(0, 0)).is_ok());
  EXPECT_TRUE(admission.offer(job_for(1, 0)).is_ok());
  const auto status = admission.offer(job_for(2, 0));
  EXPECT_FALSE(status.is_ok());
  EXPECT_EQ(status.code(), StatusCode::Overloaded);
  EXPECT_EQ(admission.queued(0), 2u);  // the rejected job never queued
}

TEST(Admission, EveryOfferAccountedExactlyOnce) {
  serve::AdmissionController admission(
      {serve::TenantConfig{.weight = 1.0, .queue_depth = 3},
       serve::TenantConfig{.weight = 2.0, .queue_depth = 1}});
  const std::uint64_t offers = 40;
  for (std::uint64_t i = 0; i < offers; ++i) {
    (void)admission.offer(job_for(i, i % 2 == 0 ? 0 : 1));
    if (i % 5 == 4) (void)admission.pick();  // drain a little
  }
  std::uint64_t offered = 0, admitted = 0, rejected = 0;
  for (std::uint32_t t = 0; t < 2; ++t) {
    const auto& s = admission.stats(t);
    offered += s.offered;
    admitted += s.admitted;
    rejected += s.rejected;
    EXPECT_EQ(s.offered, s.admitted + s.rejected) << "tenant " << t;
  }
  EXPECT_EQ(offered, offers);
  EXPECT_EQ(admitted + rejected, offers);
}

TEST(Admission, WeightedSharesConvergeToWeightsWithinOneJob) {
  const std::vector<double> weights = {1.0, 2.0, 4.0};
  std::vector<serve::TenantConfig> tenants;
  for (const double w : weights) {
    tenants.push_back(serve::TenantConfig{.weight = w, .queue_depth = 4});
  }
  serve::AdmissionController admission(tenants);

  // Keep every tenant backlogged; dispatch a multiple of the weight total.
  const std::uint64_t picks = 70;  // 10 * (1 + 2 + 4)
  std::uint64_t next_id = 0;
  const auto refill = [&] {
    for (std::uint32_t t = 0; t < tenants.size(); ++t) {
      while (admission.queued(t) < 2) {
        ASSERT_TRUE(admission.offer(job_for(next_id++, t)).is_ok());
      }
    }
  };
  for (std::uint64_t i = 0; i < picks; ++i) {
    refill();
    const auto job = admission.pick();
    ASSERT_TRUE(job.has_value());
  }
  const double weight_sum = 7.0;
  for (std::uint32_t t = 0; t < tenants.size(); ++t) {
    const double expected =
        static_cast<double>(picks) * weights[t] / weight_sum;
    const double got = static_cast<double>(admission.stats(t).dispatched);
    EXPECT_LE(std::abs(got - expected), 1.0)
        << "tenant " << t << " dispatched " << got << ", expected "
        << expected;
  }
}

TEST(Admission, NoTenantStarvesUnderSaturation) {
  // A 1-weight tenant against two 50-weight tenants, all permanently
  // backlogged: the light tenant's virtual finish tag advances only when it
  // is served, so it must appear at least once every ~sum(w)/w_min picks.
  std::vector<serve::TenantConfig> tenants = {
      serve::TenantConfig{.weight = 1.0, .queue_depth = 4},
      serve::TenantConfig{.weight = 50.0, .queue_depth = 4},
      serve::TenantConfig{.weight = 50.0, .queue_depth = 4}};
  serve::AdmissionController admission(tenants);

  std::uint64_t next_id = 0;
  std::uint64_t since_light = 0, max_gap = 0;
  for (std::uint64_t i = 0; i < 1000; ++i) {
    for (std::uint32_t t = 0; t < tenants.size(); ++t) {
      while (admission.queued(t) < 2) {
        ASSERT_TRUE(admission.offer(job_for(next_id++, t)).is_ok());
      }
    }
    const auto job = admission.pick();
    ASSERT_TRUE(job.has_value());
    if (job->tenant == 0) {
      since_light = 0;
    } else {
      max_gap = std::max(max_gap, ++since_light);
    }
  }
  EXPECT_GE(admission.stats(0).dispatched, 9u);   // ~1000 / 101
  EXPECT_LE(max_gap, 102u);                       // ceil(sum(w)/w_min) + 1
}

TEST(Admission, FifoWithinTenant) {
  serve::AdmissionController admission(
      {serve::TenantConfig{.weight = 1.0, .queue_depth = 8}});
  for (std::uint64_t i = 0; i < 5; ++i) {
    ASSERT_TRUE(admission.offer(job_for(i, 0)).is_ok());
  }
  for (std::uint64_t i = 0; i < 5; ++i) {
    const auto job = admission.pick();
    ASSERT_TRUE(job.has_value());
    EXPECT_EQ(job->id, i);
  }
  EXPECT_FALSE(admission.pick().has_value());
}

// --- Fleet bookkeeping ---------------------------------------------------

TEST(Fleet, LaneLayoutAndLinkContention) {
  auto config = serve::FleetConfig::make(4, 2);
  config.link_fan_out = 2;
  serve::Fleet fleet(config);
  EXPECT_EQ(fleet.device_count(), 4u);
  EXPECT_EQ(fleet.lane_count(), 6u);
  EXPECT_FALSE(fleet.is_host_lane(3));
  EXPECT_TRUE(fleet.is_host_lane(4));

  // Within the fan-out every device keeps its provisioned share; beyond it
  // the shares degrade as fan_out / busy.
  EXPECT_DOUBLE_EQ(fleet.contended_link_share(0, 1), 1.0);
  EXPECT_DOUBLE_EQ(fleet.contended_link_share(0, 2), 1.0);
  EXPECT_DOUBLE_EQ(fleet.contended_link_share(0, 4), 0.5);

  fleet.occupy(0, SimTime::zero(), Seconds{2.0});
  fleet.occupy(0, SimTime{2.0}, Seconds{1.0});
  EXPECT_EQ(fleet.busy_until(0), SimTime{3.0});
  EXPECT_EQ(fleet.stats(0).jobs, 2u);
  EXPECT_EQ(fleet.busy_devices_after(SimTime{2.5}), 1u);
  EXPECT_EQ(fleet.busy_devices_after(SimTime{3.5}), 0u);
  EXPECT_THROW(fleet.occupy(0, SimTime{1.0}, Seconds{1.0}), Error);
}

// --- Serving loop integration (real engine simulations) ------------------

serve::ServeConfig small_config(std::size_t fleet, double load,
                                std::uint64_t total_jobs, unsigned jobs) {
  serve::ServeConfig config;
  config.fleet = serve::FleetConfig::make(fleet);
  config.tenants = {serve::TenantConfig{.weight = 1.0, .queue_depth = 4},
                    serve::TenantConfig{.weight = 2.0, .queue_depth = 4}};
  config.job_classes = {
      serve::JobClass{.app = "tpch-q6", .size_factor = 0.05}};
  config.total_jobs = total_jobs;
  config.offered_load = load;
  config.jobs = jobs;
  return config;
}

TEST(Serve, ReportIsDeterministicAcrossRunsAndJobs) {
  const auto a = serve::serve(small_config(2, 2.0, 12, 1));
  const auto b = serve::serve(small_config(2, 2.0, 12, 1));
  const auto c = serve::serve(small_config(2, 2.0, 12, 3));
  EXPECT_EQ(a.digest, b.digest);
  EXPECT_EQ(a.digest, c.digest);
  EXPECT_EQ(a.to_json(), b.to_json());
  EXPECT_EQ(a.to_json(), c.to_json());  // byte-identical, --jobs 1 vs 3
}

TEST(Serve, EveryJobAccountedAndOutcomesConsistent) {
  const auto report = serve::serve(small_config(2, 4.0, 16, 2));
  EXPECT_EQ(report.admitted + report.rejected, report.total_jobs);
  EXPECT_EQ(report.completed, report.admitted);
  EXPECT_EQ(report.csd_jobs + report.host_jobs, report.completed);

  std::uint64_t offered = 0;
  for (const auto& s : report.tenants) {
    EXPECT_EQ(s.offered, s.admitted + s.rejected);
    EXPECT_EQ(s.dispatched, s.completed);
    offered += s.offered;
  }
  EXPECT_EQ(offered, report.total_jobs);

  std::uint64_t lane_jobs = 0;
  for (const auto& s : report.lanes) lane_jobs += s.jobs;
  EXPECT_EQ(lane_jobs, report.completed);

  for (const auto& o : report.outcomes) {
    if (o.rejected) {
      EXPECT_EQ(o.lane, -1);
      continue;
    }
    EXPECT_GE(o.lane, 0);
    EXPECT_GE(o.start, o.arrival);
    EXPECT_GT(o.service.value(), 0.0);
    EXPECT_GE(o.latency, o.service);
  }
}

TEST(Serve, SaturationRejectsButNeverSilently) {
  // Load far beyond one device's capacity and depth-1 queues: admission
  // must reject, and every rejection must be visible in the counters.
  auto config = small_config(1, 50.0, 24, 2);
  for (auto& t : config.tenants) t.queue_depth = 1;
  const auto report = serve::serve(config);
  EXPECT_GT(report.rejected, 0u);
  EXPECT_GT(report.rejection_rate, 0.0);
  EXPECT_EQ(report.admitted + report.rejected, report.total_jobs);
  std::uint64_t rejected_outcomes = 0;
  for (const auto& o : report.outcomes) rejected_outcomes += o.rejected;
  EXPECT_EQ(rejected_outcomes, report.rejected);
}

TEST(Serve, ThroughputScalesWithFleetSize) {
  // Saturating load: a 4-device fleet must clearly out-serve one device.
  const auto one = serve::serve(small_config(1, 20.0, 16, 2));
  const auto four = serve::serve(small_config(4, 20.0, 16, 2));
  EXPECT_GT(four.throughput, one.throughput * 1.5)
      << "fleet 4: " << four.throughput << " jobs/s, fleet 1: "
      << one.throughput << " jobs/s";
}

TEST(Serve, LatencyRespectsQueueBounds) {
  const auto report = serve::serve(small_config(2, 20.0, 24, 2));
  Seconds max_service = Seconds::zero();
  for (const auto& o : report.outcomes) {
    if (!o.rejected) max_service = std::max(max_service, o.service);
  }
  // An admitted job has at most sum(queue_depth) jobs ahead of it across
  // the bounded queues; with a generous scheduling constant that bounds the
  // p99 latency by a small multiple of the worst service time.
  std::size_t depth_sum = 0;
  std::size_t t = 0;
  for (const auto& s : report.tenants) {
    (void)s;
    depth_sum += 4;  // small_config queue_depth
    ++t;
  }
  const double bound =
      static_cast<double>(depth_sum + t + 2) * 2.0 * max_service.value();
  EXPECT_LE(report.p99_latency.value(), bound);
  EXPECT_LE(report.p50_latency, report.p99_latency);
}

TEST(Serve, WeightedTenantSharesUnderSaturation) {
  // Under heavy overload both tenants offer far more than capacity, so
  // dispatch order is WFQ-driven: the weight-2 tenant must complete more
  // than the weight-1 tenant.
  auto config = small_config(2, 50.0, 32, 2);
  config.tenants = {serve::TenantConfig{.weight = 1.0, .queue_depth = 8},
                    serve::TenantConfig{.weight = 2.0, .queue_depth = 8}};
  const auto report = serve::serve(config);
  ASSERT_EQ(report.tenants.size(), 2u);
  EXPECT_GT(report.tenants[1].completed, report.tenants[0].completed);
}

// --- Fault interop: the PR 1-2 degradation ladder inside the fleet -------

TEST(Serve, FaultInteropPowerLossMidSweepStaysDeterministic) {
  // Dry run: find an admitted CSD-placed job to arm the power cut in.
  auto config = small_config(2, 4.0, 12, 1);
  config.fault.set_rate_all(0.02);  // point faults on every dispatched job
  const auto dry = serve::serve(config);
  std::int64_t victim = -1;
  for (const auto& o : dry.outcomes) {
    if (!o.rejected && !o.on_host) {
      victim = static_cast<std::int64_t>(o.id);
      break;
    }
  }
  ASSERT_GE(victim, 0) << "no CSD-placed job to arm the power cut in";

  config.power_loss_job = victim;
  config.power_loss_after = 4;
  const auto a = serve::serve(config);
  const auto& hit = a.outcomes[static_cast<std::size_t>(victim)];
  EXPECT_FALSE(hit.rejected);
  // The armed job rides the PR 1-2 recovery ladder: it must survive the cut
  // (power-cycle + FTL remount, possibly a migration back to the host) and
  // still complete -- and the recovery must cost virtual time.
  EXPECT_GE(hit.power_losses, 1u);
  EXPECT_GT(hit.service, dry.outcomes[static_cast<std::size_t>(victim)].service);
  EXPECT_EQ(a.completed, a.admitted);

  // Crash handling must not break the determinism contract.
  const auto b = serve::serve(config);
  auto parallel = config;
  parallel.jobs = 3;
  const auto c = serve::serve(parallel);
  EXPECT_EQ(a.digest, b.digest);
  EXPECT_EQ(a.digest, c.digest);
  EXPECT_EQ(a.to_json(), c.to_json());
}

// --- Observability: snapshots, metrics, zero-virtual-cost ----------------

/// Snapshot invariants that must hold at *every* row, not just at the end:
/// offered == admitted + rejected and the conservation identity
/// admitted == completed + deadline_missed + retry_exhausted + in_flight +
/// queued, with every column monotone where the serving semantics demand it.
void expect_snapshot_invariants(const serve::ServeReport& report) {
  const auto& s = report.snapshots;
  ASSERT_GT(s.rows(), 0u);
  std::uint64_t prev_offered = 0, prev_completed = 0;
  for (std::size_t row = 0; row < s.rows(); ++row) {
    const auto offered = s.value(row, "offered");
    const auto admitted = s.value(row, "admitted");
    const auto rejected = s.value(row, "rejected");
    const auto completed = s.value(row, "completed");
    const auto in_flight = s.value(row, "in_flight");
    const auto queued = s.value(row, "queued");
    const auto deadline_missed = s.value(row, "deadline_missed");
    const auto retry_exhausted = s.value(row, "retry_exhausted");
    EXPECT_EQ(offered, admitted + rejected) << "row " << row;
    EXPECT_EQ(admitted, completed + deadline_missed + retry_exhausted +
                            in_flight + queued)
        << "row " << row;
    EXPECT_GE(offered, prev_offered) << "row " << row;
    EXPECT_GE(completed, prev_completed) << "row " << row;
    prev_offered = offered;
    prev_completed = completed;
  }
  // The final row accounts for every job the run offered.  The "rejected"
  // column counts both Overloaded and DeadlineExceeded rejections.
  const std::size_t last = s.rows() - 1;
  EXPECT_EQ(s.value(last, "offered"), report.total_jobs);
  EXPECT_EQ(s.value(last, "completed"), report.completed);
  EXPECT_EQ(s.value(last, "rejected"),
            report.rejected + report.deadline_rejected);
  EXPECT_EQ(s.value(last, "deadline_missed"), report.deadline_missed);
  EXPECT_EQ(s.value(last, "retry_exhausted"), report.retry_exhausted);
  EXPECT_EQ(s.value(last, "retried"), report.retried);
  EXPECT_EQ(s.value(last, "in_flight"), 0u);
  EXPECT_EQ(s.value(last, "queued"), 0u);
}

TEST(ServeObs, SnapshotAccountingInvariantsHold) {
  expect_snapshot_invariants(serve::serve(small_config(2, 4.0, 16, 2)));
}

TEST(ServeObs, SnapshotInvariantsHoldUnderSaturation) {
  auto config = small_config(1, 50.0, 24, 2);
  for (auto& t : config.tenants) t.queue_depth = 1;
  const auto report = serve::serve(config);
  EXPECT_GT(report.rejected, 0u);  // saturation actually happened
  expect_snapshot_invariants(report);
}

TEST(ServeObs, SnapshotInvariantsHoldThroughMidSweepPowerLoss) {
  auto config = small_config(2, 4.0, 12, 2);
  config.fault.set_rate_all(0.02);
  const auto dry = serve::serve(config);
  for (const auto& o : dry.outcomes) {
    if (!o.rejected && !o.on_host) {
      config.power_loss_job = static_cast<std::int64_t>(o.id);
      break;
    }
  }
  ASSERT_GE(config.power_loss_job, 0);
  config.power_loss_after = 4;
  const auto report = serve::serve(config);
  EXPECT_GT(report.outcomes[static_cast<std::size_t>(config.power_loss_job)]
                .power_losses,
            0u);
  expect_snapshot_invariants(report);
}

TEST(ServeObs, MetricsAgreeWithReportAggregates) {
  const auto report = serve::serve(small_config(2, 4.0, 16, 2));
  const auto& m = report.metrics;
  EXPECT_EQ(m.counter_value("serve.offered"), report.total_jobs);
  EXPECT_EQ(m.counter_value("serve.admitted"), report.admitted);
  EXPECT_EQ(m.counter_value("serve.rejected"), report.rejected);
  EXPECT_EQ(m.counter_value("serve.completed"), report.completed);
  EXPECT_EQ(m.counter_value("serve.jobs.csd"), report.csd_jobs);
  EXPECT_EQ(m.counter_value("serve.jobs.host"), report.host_jobs);
  // Engine-side merged counters: every completed job records one run.
  EXPECT_EQ(m.counter_value("engine.runs"), report.completed);
  const auto* latency = m.find_histogram("serve.latency_s");
  ASSERT_NE(latency, nullptr);
  EXPECT_EQ(latency->count(), report.completed);
  // Per-tenant counters mirror the TenantStats rows.
  for (std::size_t t = 0; t < report.tenants.size(); ++t) {
    const std::string p = "serve.tenant." + std::to_string(t) + ".";
    EXPECT_EQ(m.counter_value(p + "offered"), report.tenants[t].offered);
    EXPECT_EQ(m.counter_value(p + "completed"), report.tenants[t].completed);
  }
  // Per-lane counters mirror the LaneStats rows.
  for (std::size_t lane = 0; lane < report.lanes.size(); ++lane) {
    const std::string p = "serve.lane." + std::to_string(lane) + ".";
    EXPECT_EQ(m.counter_value(p + "jobs"), report.lanes[lane].jobs);
  }
}

TEST(ServeObs, ReportPercentilesMatchHistogramWithinErrorBound) {
  const auto report = serve::serve(small_config(2, 4.0, 16, 2));
  const auto* h = report.metrics.find_histogram("serve.latency_s");
  ASSERT_NE(h, nullptr);
  ASSERT_GT(h->count(), 0u);
  const double bound = h->options().growth - 1.0;  // relative error bound
  const double p50 = report.p50_latency.value();
  const double p99 = report.p99_latency.value();
  EXPECT_LE(std::abs(h->percentile(0.50) - p50) / p50, bound);
  EXPECT_LE(std::abs(h->percentile(0.99) - p99) / p99, bound);
}

// --- Circuit breaker state machine (pure virtual-time unit tests) --------

serve::BreakerConfig tiny_breaker() {
  serve::BreakerConfig config;
  config.threshold = 5.0;
  config.decay_tau = Seconds{2.0};
  config.cooldown = Seconds{1.0};
  config.cooldown_multiplier = 2.0;
  return config;
}

TEST(Breaker, TripsAtThresholdAndGatesUntilCooldownEnd) {
  serve::CircuitBreaker brk(tiny_breaker());
  EXPECT_EQ(brk.state(), serve::BreakerState::Closed);
  EXPECT_EQ(brk.ready_at(), SimTime::zero());

  brk.record_outcome(SimTime{1.0}, 3.0);  // below threshold: stays Closed
  EXPECT_EQ(brk.state(), serve::BreakerState::Closed);
  brk.record_outcome(SimTime{1.0}, 3.0);  // 6.0 >= 5.0: Open at t=1
  EXPECT_EQ(brk.state(), serve::BreakerState::Open);
  EXPECT_EQ(brk.ready_at(), SimTime{2.0});  // cooldown 1 s

  ASSERT_EQ(brk.transitions().size(), 1u);
  EXPECT_EQ(brk.transitions()[0].from, serve::BreakerState::Closed);
  EXPECT_EQ(brk.transitions()[0].to, serve::BreakerState::Open);
  EXPECT_DOUBLE_EQ(brk.transitions()[0].time.seconds(), 1.0);
}

TEST(Breaker, ScoreDecaysExponentially) {
  serve::CircuitBreaker brk(tiny_breaker());
  brk.record_outcome(SimTime{0.0}, 4.0);
  EXPECT_DOUBLE_EQ(brk.score(SimTime{0.0}), 4.0);
  // One decay_tau later the score is down by exactly 1/e (const view —
  // asking must not mutate).
  EXPECT_NEAR(brk.score(SimTime{2.0}), 4.0 / std::exp(1.0), 1e-12);
  EXPECT_NEAR(brk.score(SimTime{2.0}), 4.0 / std::exp(1.0), 1e-12);
  // Decay applies before accumulation: two below-threshold outcomes far
  // apart never trip the breaker.
  brk.record_outcome(SimTime{100.0}, 4.0);
  EXPECT_EQ(brk.state(), serve::BreakerState::Closed);
}

TEST(Breaker, CleanProbeReclosesAndResetsCooldown) {
  serve::CircuitBreaker brk(tiny_breaker());
  brk.record_outcome(SimTime{1.0}, 10.0);  // Open at 1, ready at 2
  brk.begin_probe(SimTime{2.5});           // first dispatch past ready_at
  EXPECT_EQ(brk.state(), serve::BreakerState::HalfOpen);
  EXPECT_TRUE(brk.probe_in_flight());

  brk.probe_result(SimTime{3.5}, /*success=*/true);
  EXPECT_EQ(brk.state(), serve::BreakerState::Closed);
  EXPECT_FALSE(brk.probe_in_flight());
  EXPECT_EQ(brk.ready_at(), SimTime::zero());
  EXPECT_DOUBLE_EQ(brk.score(SimTime{3.5}), 0.0);  // clean slate

  // The next trip uses the *reset* cooldown (1 s), not a doubled one.
  brk.record_outcome(SimTime{10.0}, 10.0);
  EXPECT_EQ(brk.ready_at(), SimTime{11.0});
}

TEST(Breaker, FailedProbeReopensWithDoubledCooldown) {
  serve::CircuitBreaker brk(tiny_breaker());
  brk.record_outcome(SimTime{1.0}, 10.0);  // Open at 1, ready at 2
  brk.begin_probe(SimTime{2.0});
  brk.probe_result(SimTime{3.0}, /*success=*/false);
  EXPECT_EQ(brk.state(), serve::BreakerState::Open);
  EXPECT_EQ(brk.ready_at(), SimTime{5.0});  // 3 + 2 * 1 s

  // A second failed probe doubles again: geometric backoff.
  brk.begin_probe(SimTime{5.0});
  brk.probe_result(SimTime{6.0}, /*success=*/false);
  EXPECT_EQ(brk.ready_at(), SimTime{10.0});  // 6 + 4 * 1 s

  // Closed -> Open -> HalfOpen -> Open -> HalfOpen -> Open: 5 transitions.
  EXPECT_EQ(brk.transitions().size(), 5u);
}

TEST(Breaker, AbortedProbeClearsInFlightWithoutResolving) {
  serve::CircuitBreaker brk(tiny_breaker());
  brk.record_outcome(SimTime{1.0}, 10.0);
  brk.begin_probe(SimTime{2.0});
  brk.abort_probe();  // the probe's lane died mid-service
  EXPECT_FALSE(brk.probe_in_flight());
  EXPECT_EQ(brk.state(), serve::BreakerState::HalfOpen);
}

TEST(Breaker, DisabledBreakerNeverOpens) {
  auto config = tiny_breaker();
  config.enabled = false;
  serve::CircuitBreaker brk(config);
  brk.record_outcome(SimTime{1.0}, 1e9);
  EXPECT_EQ(brk.state(), serve::BreakerState::Closed);
  EXPECT_EQ(brk.ready_at(), SimTime::zero());
  EXPECT_TRUE(brk.transitions().empty());
}

// --- Deadline admission and retry accounting (pure scheduler) ------------

TEST(Admission, DeadlineBoundaryAdmitsAndStrictlyPastRejects) {
  serve::AdmissionController admission({serve::TenantConfig{
      .weight = 1.0, .queue_depth = 4, .slo = Seconds{1.0}}});
  // Boundary: earliest feasible start exactly at arrival + slo is fine.
  auto job = job_for(0, 0);
  job.arrival = SimTime{2.0};
  EXPECT_TRUE(admission.offer(job, SimTime{3.0}).is_ok());
  // Strictly past the deadline: typed DeadlineExceeded, not Overloaded.
  auto late = job_for(1, 0);
  late.arrival = SimTime{2.0};
  const auto status = admission.offer(late, SimTime{3.0 + 1e-9});
  EXPECT_FALSE(status.is_ok());
  EXPECT_EQ(status.code(), StatusCode::DeadlineExceeded);
  EXPECT_EQ(admission.stats(0).deadline_rejected, 1u);
  EXPECT_EQ(admission.stats(0).offered, 2u);
  EXPECT_EQ(admission.queued(0), 1u);

  // The admitted job carries its stamped deadline and ready time.
  const auto picked = admission.pick();
  ASSERT_TRUE(picked.has_value());
  EXPECT_EQ(picked->deadline, SimTime{3.0});
  EXPECT_EQ(picked->ready, SimTime{2.0});
}

TEST(Admission, RequeueFrontPreservesOrderAndCountsRetry) {
  serve::AdmissionController admission(
      {serve::TenantConfig{.weight = 1.0, .queue_depth = 2}});
  ASSERT_TRUE(admission.offer(job_for(0, 0)).is_ok());
  ASSERT_TRUE(admission.offer(job_for(1, 0)).is_ok());

  auto lost = admission.pick();
  ASSERT_TRUE(lost.has_value());
  EXPECT_EQ(lost->id, 0u);
  // The lane died under job 0: it re-enters at the *head*, ahead of job 1,
  // even though the queue is already at its depth bound.
  lost->attempt = 1;
  lost->ready = SimTime{5.0};
  admission.requeue_front(*lost);
  EXPECT_EQ(admission.queued(0), 2u);
  EXPECT_EQ(admission.stats(0).retried, 1u);

  const auto again = admission.pick();
  ASSERT_TRUE(again.has_value());
  EXPECT_EQ(again->id, 0u);
  EXPECT_EQ(again->attempt, 1u);
  EXPECT_EQ(again->ready, SimTime{5.0});
  // Both the original dispatch and the re-dispatch counted.
  EXPECT_EQ(admission.stats(0).dispatched, 2u);
}

TEST(Admission, ReturnFrontUndoesThePick) {
  serve::AdmissionController admission(
      {serve::TenantConfig{.weight = 1.0, .queue_depth = 4}});
  ASSERT_TRUE(admission.offer(job_for(0, 0)).is_ok());
  const auto job = admission.pick();
  ASSERT_TRUE(job.has_value());
  EXPECT_EQ(admission.stats(0).dispatched, 1u);
  admission.return_front(*job);  // no free lane this wave: put it back
  EXPECT_EQ(admission.stats(0).dispatched, 0u);
  EXPECT_EQ(admission.queued(0), 1u);
}

// --- Fleet failure domains: kills, retries, deadlines end to end ---------

TEST(ServeChaos, DeviceKillRetriesAndConservesEveryJob) {
  // Kill CSD 0 mid-run: in-flight work on it is lost and re-enqueued;
  // everything still resolves exactly once.
  auto config = small_config(2, 4.0, 16, 2);
  const auto healthy = serve::serve(config);
  config.kill_devices = {serve::KillDevice{
      .device = 0,
      .at = SimTime{healthy.makespan.seconds() * 0.3}}};
  const auto report = serve::serve(config);

  EXPECT_EQ(report.devices_failed, 1u);
  EXPECT_FALSE(report.lanes[0].died_at == SimTime::infinity());
  EXPECT_EQ(report.admitted + report.rejected + report.deadline_rejected,
            report.total_jobs);
  EXPECT_EQ(report.admitted,
            report.completed + report.deadline_missed + report.retry_exhausted);

  std::uint64_t lost = 0, retries = 0;
  for (const auto& o : report.outcomes) {
    lost += o.lost_attempts.size();
    retries += o.retries;
    for (const auto& a : o.lost_attempts) {
      EXPECT_EQ(a.lane, 0u);  // only CSD 0 died
      EXPECT_LT(a.start, a.end);
    }
    // A completed retry can never start before the death that caused it.
    if (o.completed() && o.retries > 0) {
      EXPECT_GE(o.start, o.lost_attempts.back().end);
    }
  }
  EXPECT_EQ(lost, report.lost_in_flight);
  EXPECT_EQ(retries, report.retried);
  EXPECT_EQ(report.lanes[0].lost_jobs, lost);
  expect_snapshot_invariants(report);
}

TEST(ServeChaos, KillScheduleStaysDeterministicAcrossJobs) {
  auto config = small_config(2, 4.0, 16, 1);
  config.kill_devices = {
      serve::KillDevice{.device = 0, .at = SimTime{2.0}}};
  const auto a = serve::serve(config);
  auto parallel = config;
  parallel.jobs = 3;
  const auto b = serve::serve(parallel);
  EXPECT_EQ(a.digest, b.digest);
  EXPECT_EQ(a.to_json(), b.to_json());
}

TEST(ServeChaos, AllLanesDeadDrainsQueueLoudly) {
  // Both CSDs die early and there is no host fallback: admitted jobs that
  // cannot ever start must be abandoned as retry_exhausted, never dropped.
  auto config = small_config(2, 4.0, 12, 2);
  config.fleet = serve::FleetConfig::make(2, /*host_lanes=*/0);
  config.kill_devices = {
      serve::KillDevice{.device = 0, .at = SimTime{1.5}},
      serve::KillDevice{.device = 1, .at = SimTime{1.5}}};
  const auto report = serve::serve(config);

  EXPECT_EQ(report.devices_failed, 2u);
  EXPECT_GT(report.retry_exhausted, 0u);
  EXPECT_EQ(report.admitted,
            report.completed + report.deadline_missed + report.retry_exhausted);
  for (const auto& o : report.outcomes) {
    if (o.retry_exhausted) {
      // Abandonment is an explicit resolution instant, not a dangling job.
      EXPECT_GE(o.resolved, o.arrival);
    }
  }
  expect_snapshot_invariants(report);
}

TEST(ServeChaos, ZeroRetryBudgetAbandonsOnFirstLoss) {
  auto config = small_config(2, 4.0, 16, 2);
  const auto healthy = serve::serve(config);
  config.kill_devices = {serve::KillDevice{
      .device = 0, .at = SimTime{healthy.makespan.seconds() * 0.3}}};
  config.retry_budget = 0;
  const auto report = serve::serve(config);
  EXPECT_EQ(report.retried, 0u);
  // Every lost in-flight attempt becomes a retry_exhausted outcome.
  EXPECT_EQ(report.lost_in_flight, report.retry_exhausted);
  EXPECT_EQ(report.admitted,
            report.completed + report.deadline_missed + report.retry_exhausted);
}

TEST(ServeChaos, TightSloRejectsWithTypedDeadlineStatus) {
  // An SLO far below the queue wait at this load (arrivals ~8x faster than
  // the two lanes can drain): admission must reject with DeadlineExceeded
  // (typed, distinct from Overloaded backpressure).
  auto config = small_config(1, 20.0, 16, 2);
  for (auto& t : config.tenants) t.slo = Seconds{0.1};
  const auto report = serve::serve(config);
  EXPECT_GT(report.deadline_rejected, 0u);
  EXPECT_EQ(report.admitted + report.rejected + report.deadline_rejected,
            report.total_jobs);
  for (const auto& o : report.outcomes) {
    if (o.deadline_rejected) {
      EXPECT_FALSE(o.rejected);  // the two rejection types never overlap
      EXPECT_EQ(o.resolved, o.arrival);
    }
    if (o.completed() && !o.on_host) {
      // Admitted work respected the SLO: start within arrival + 0.1 s.
      EXPECT_LE(o.start, o.arrival + Seconds{0.1});
    }
  }
  expect_snapshot_invariants(report);
}

TEST(ServeChaos, DeadlineMissedWhileQueuedResolvesLoudly) {
  // An SLO just wide enough to admit borderline jobs on the optimistic
  // earliest-start estimate: by the time WFQ actually dispatches them,
  // earlier picks have claimed the lanes and the deadline has passed.  The
  // miss must be a typed outcome with an explicit resolution instant.
  auto config = small_config(1, 20.0, 24, 2);
  for (auto& t : config.tenants) t.slo = Seconds{0.3};
  const auto report = serve::serve(config);

  EXPECT_GT(report.deadline_missed, 0u);
  EXPECT_EQ(report.admitted,
            report.completed + report.deadline_missed + report.retry_exhausted);
  std::uint64_t missed_outcomes = 0;
  for (const auto& o : report.outcomes) {
    if (!o.deadline_missed) continue;
    ++missed_outcomes;
    EXPECT_FALSE(o.rejected);
    EXPECT_FALSE(o.deadline_rejected);
    EXPECT_EQ(o.lane, -1);  // the job never reached a lane
    // The miss resolves at (or after) the deadline itself.
    EXPECT_GE(o.resolved, o.arrival + Seconds{0.3});
  }
  EXPECT_EQ(missed_outcomes, report.deadline_missed);
  // Misses never count as dispatches: tenant books stay balanced.
  for (const auto& s : report.tenants) {
    EXPECT_EQ(s.dispatched, s.completed + s.retried);
  }
  expect_snapshot_invariants(report);
}

TEST(ServeChaos, FailureDomainCountersMirrorMetrics) {
  auto config = small_config(2, 4.0, 16, 2);
  const auto healthy = serve::serve(config);
  config.kill_devices = {serve::KillDevice{
      .device = 0, .at = SimTime{healthy.makespan.seconds() * 0.3}}};
  const auto report = serve::serve(config);
  const auto& m = report.metrics;
  EXPECT_EQ(m.counter_value("serve.retried"), report.retried);
  EXPECT_EQ(m.counter_value("serve.lost_in_flight"), report.lost_in_flight);
  EXPECT_EQ(m.counter_value("serve.retry_exhausted"), report.retry_exhausted);
  EXPECT_EQ(m.counter_value("serve.devices_failed"), report.devices_failed);
  EXPECT_EQ(m.counter_value("serve.lane.0.lost_jobs"),
            report.lanes[0].lost_jobs);
}

TEST(ServeChaos, CleanRunReportIsIndifferentToFailureKnobs) {
  // With no kills and no SLO, the failure-domain machinery must be pure
  // bookkeeping: changing the retry budget or breaker threshold cannot move
  // a single byte of the report.
  const auto base = serve::serve(small_config(2, 4.0, 12, 2));
  auto config = small_config(2, 4.0, 12, 2);
  config.retry_budget = 7;
  config.breaker.threshold = 2.5;
  const auto tweaked = serve::serve(config);
  EXPECT_EQ(base.digest, tweaked.digest);
  EXPECT_EQ(base.to_json(), tweaked.to_json());
  EXPECT_EQ(base.deadline_missed, 0u);
  EXPECT_EQ(base.retried, 0u);
  EXPECT_EQ(base.devices_failed, 0u);
}

TEST(ServeObs, DisablingObsChangesNothingButOmitsArtifacts) {
  auto config = small_config(2, 4.0, 12, 2);
  config.obs.enabled = true;
  const auto on = serve::serve(config);
  config.obs.enabled = false;
  const auto off = serve::serve(config);
  // Instrumentation charges no virtual time: the outcome digest and the
  // whole JSON report are bit-identical with obs on and off.
  EXPECT_EQ(on.digest, off.digest);
  EXPECT_EQ(on.to_json(), off.to_json());
  EXPECT_FALSE(on.metrics.empty());
  EXPECT_GT(on.snapshots.rows(), 0u);
  EXPECT_TRUE(off.metrics.empty());
  EXPECT_EQ(off.snapshots.rows(), 0u);
}

// --- Hot-path caches (PR 7): exactness, eviction, epochs -----------------

/// A saturating config the bid and memo caches actually bite on: deep
/// queues, offered load past the fleet's capacity, two job classes.
serve::ServeConfig hot_config(std::size_t fleet, std::uint64_t total_jobs,
                              unsigned jobs) {
  serve::ServeConfig config;
  config.fleet = serve::FleetConfig::make(fleet, 1, 0.0);
  config.tenants = {serve::TenantConfig{.weight = 1.0, .queue_depth = 16},
                    serve::TenantConfig{.weight = 2.0, .queue_depth = 16}};
  config.job_classes = {serve::JobClass{.app = "tpch-q6", .size_factor = 0.1},
                        serve::JobClass{.app = "kmeans", .size_factor = 0.05}};
  config.total_jobs = total_jobs;
  config.offered_load = static_cast<double>(fleet) * 2.0;
  config.jobs = jobs;
  return config;
}

/// The full externally visible surface of a serve run, for byte-for-byte
/// comparison: JSON report, outcome digest, metrics digest, Perfetto trace.
void expect_identical(const serve::ServeReport& a,
                      const serve::ServeReport& b) {
  EXPECT_EQ(a.digest, b.digest);
  EXPECT_EQ(a.to_json(), b.to_json());
  EXPECT_EQ(a.metrics.digest(), b.metrics.digest());
  EXPECT_EQ(serve::to_fleet_trace(a), serve::to_fleet_trace(b));
}

TEST(ServeHotpath, ByteIdenticalOnVsOffVsSerial) {
  auto config = hot_config(3, 24, 2);
  const auto on = serve::serve(config);
  EXPECT_GT(on.sim_cache_hits, 0u);  // the memo must actually engage

  config.plan_cache = false;
  config.sim_cache = false;
  const auto off = serve::serve(config);
  EXPECT_EQ(off.sim_cache_hits, 0u);
  EXPECT_EQ(off.bid_cache_hits + off.bid_cache_misses, 0u);

  config.plan_cache = true;
  config.sim_cache = true;
  config.jobs = 1;
  const auto serial = serve::serve(config);

  expect_identical(on, off);
  expect_identical(on, serial);
}

TEST(ServeHotpath, EachToggleAloneStaysExact) {
  auto config = hot_config(3, 24, 2);
  config.plan_cache = false;
  config.sim_cache = false;
  const auto off = serve::serve(config);

  config.plan_cache = true;  // lane index + bid cache only
  const auto plan_only = serve::serve(config);
  expect_identical(off, plan_only);
  EXPECT_EQ(plan_only.sim_cache_hits, 0u);

  config.plan_cache = false;
  config.sim_cache = true;  // memo cache only
  const auto sim_only = serve::serve(config);
  expect_identical(off, sim_only);
  EXPECT_GT(sim_only.sim_cache_hits, 0u);
}

TEST(ServeHotpath, ChaosKillAndPowerLossParity) {
  // The hard case: a device dies mid-run (retries, breaker traffic, lost
  // attempts) while one job takes a mid-sweep power cut and every job runs
  // seeded point faults.  Cache on, cache off and serial must still agree
  // byte for byte.
  auto config = hot_config(3, 24, 3);
  config.fault.set_rate_all(0.02);
  config.kill_devices = {
      serve::KillDevice{.device = 0, .at = SimTime{3.0}}};
  config.retry_budget = 2;
  config.power_loss_job = 5;
  config.power_loss_after = 3;

  const auto on = serve::serve(config);
  config.plan_cache = false;
  config.sim_cache = false;
  const auto off = serve::serve(config);
  config.plan_cache = true;
  config.sim_cache = true;
  config.jobs = 1;
  const auto serial = serve::serve(config);

  expect_identical(on, off);
  expect_identical(on, serial);
  EXPECT_GT(on.devices_failed, 0u);
}

TEST(ServeHotpath, TinyMemoCapacityEvictsButStaysExact) {
  auto config = hot_config(3, 24, 2);
  const auto roomy = serve::serve(config);
  config.sim_cache_capacity = 2;
  const auto tight = serve::serve(config);
  // FIFO eviction under a two-entry bound: strictly worse hit rate, many
  // evictions, identical bytes.
  EXPECT_GT(tight.sim_cache_evictions, 0u);
  EXPECT_LE(tight.sim_cache_hits, roomy.sim_cache_hits);
  expect_identical(roomy, tight);
}

TEST(ServeMemo, FindIsDigestBucketedButKeyVerified) {
  serve::SimMemoCache cache(4);
  serve::SimKey key;
  key.job_class = 1;
  key.link_share_bits = 42;
  serve::SimResult r;
  r.service = Seconds{1.5};
  r.migrations = 3;
  cache.insert(key, r);
  ASSERT_NE(cache.find(key), nullptr);
  EXPECT_EQ(cache.find(key)->service, Seconds{1.5});
  EXPECT_EQ(cache.find(key)->migrations, 3u);

  // Any field difference — including only the availability schedule — is a
  // different key, never a false hit.
  auto other = key;
  other.fault_seed = 7;
  EXPECT_EQ(cache.find(other), nullptr);
  auto sched = key;
  sched.schedule = sim::AvailabilitySchedule::constant(0.5);
  EXPECT_EQ(cache.find(sched), nullptr);
  EXPECT_NE(key.digest(), sched.digest());
}

TEST(ServeMemo, FifoEvictionByInsertionOrder) {
  serve::SimMemoCache cache(2);
  serve::SimKey a, b, c;
  a.job_class = 1;
  b.job_class = 2;
  c.job_class = 3;
  serve::SimResult r;
  cache.insert(a, r);
  cache.insert(b, r);
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(cache.evictions(), 0u);
  cache.insert(c, r);  // evicts a — the oldest — not b
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(cache.evictions(), 1u);
  EXPECT_EQ(cache.find(a), nullptr);
  EXPECT_NE(cache.find(b), nullptr);
  EXPECT_NE(cache.find(c), nullptr);
}

TEST(ServeMemo, DoubleInsertAndZeroCapacityAreLoudErrors) {
  EXPECT_THROW(serve::SimMemoCache{0}, Error);
  serve::SimMemoCache cache(2);
  serve::SimKey key;
  cache.insert(key, serve::SimResult{});
  EXPECT_THROW(cache.insert(key, serve::SimResult{}), Error);
}

TEST(FleetIndex, EpochsTrackBusyDeathAndGate) {
  serve::Fleet fleet(serve::FleetConfig::make(2, 1));
  const auto lane0 = fleet.lane_epoch(0);
  const auto lane1 = fleet.lane_epoch(1);
  const auto global = fleet.fleet_epoch();

  fleet.occupy(0, SimTime::zero(), Seconds{1.0});
  EXPECT_GT(fleet.lane_epoch(0), lane0);
  EXPECT_EQ(fleet.lane_epoch(1), lane1);  // untouched lane keeps its epoch
  EXPECT_GT(fleet.fleet_epoch(), global);  // device busy moved the fleet

  // Gate changes bump the lane epoch only when the gate actually moves.
  const auto before_gate = fleet.lane_epoch(1);
  fleet.set_gate(1, SimTime::zero());  // already zero: must be a no-op
  EXPECT_EQ(fleet.lane_epoch(1), before_gate);
  fleet.set_gate(1, SimTime{2.0});
  EXPECT_GT(fleet.lane_epoch(1), before_gate);

  // Host lane occupancy moves its lane epoch but not the fleet epoch (host
  // lanes never draw on the device link).
  const auto host = fleet.device_count();
  const auto before_host = fleet.fleet_epoch();
  fleet.occupy(host, SimTime::zero(), Seconds{1.0});
  EXPECT_EQ(fleet.fleet_epoch(), before_host);

  const auto before_death = fleet.lane_epoch(1);
  fleet.mark_dead(1, SimTime{0.5});
  EXPECT_GT(fleet.lane_epoch(1), before_death);
}

TEST(FleetIndex, QueriesMatchTheLinearScans) {
  // Drive a small fleet through occupies, a death, a kill schedule and a
  // gate, checking every indexed query against its reference scan.
  serve::Fleet fleet(serve::FleetConfig::make(4, 2, 0.05));
  fleet.set_kill_at(3, SimTime{2.5});
  fleet.occupy(0, SimTime::zero(), Seconds{1.0});
  fleet.occupy(1, SimTime{0.5}, Seconds{2.0});
  fleet.occupy(3, SimTime::zero(), Seconds{3.0});  // sails past its death
  fleet.occupy(4, SimTime::zero(), Seconds{0.25});
  fleet.mark_dead(2, SimTime{1.0});
  fleet.set_gate(0, SimTime{1.75});

  for (const double t : {0.0, 0.5, 0.9999, 1.0, 1.5, 2.0, 2.5, 3.0, 9.0}) {
    EXPECT_EQ(fleet.busy_devices_after(SimTime{t}),
              fleet.busy_devices_after_scan(SimTime{t}))
        << "t=" << t;
  }

  const auto reference_earliest = [&](SimTime arrival) {
    SimTime best = SimTime::infinity();
    for (std::size_t lane = 0; lane < fleet.lane_count(); ++lane) {
      if (!fleet.alive(lane)) continue;
      SimTime start = std::max(fleet.busy_until(lane), arrival);
      start = std::max(start, fleet.gate(lane));
      if (start >= fleet.kill_at(lane)) continue;
      best = std::min(best, start);
    }
    return best;
  };
  for (const double t : {0.0, 0.5, 1.0, 1.9, 2.6, 4.0}) {
    EXPECT_EQ(fleet.earliest_feasible_start(SimTime{t}),
              reference_earliest(SimTime{t}))
        << "arrival=" << t;
  }

  const auto reference_next_free = [&](const std::vector<bool>& claimed) {
    SimTime best = SimTime::infinity();
    for (std::size_t lane = 0; lane < fleet.lane_count(); ++lane) {
      if (claimed[lane] || !fleet.alive(lane)) continue;
      if (fleet.busy_until(lane) >= fleet.kill_at(lane)) continue;
      best = std::min(best, fleet.busy_until(lane));
    }
    return best;
  };
  std::vector<bool> claimed(fleet.lane_count(), false);
  EXPECT_EQ(fleet.next_free(claimed), reference_next_free(claimed));
  claimed[4] = true;  // claim one host lane
  claimed[0] = true;
  EXPECT_EQ(fleet.next_free(claimed), reference_next_free(claimed));
  claimed.assign(fleet.lane_count(), true);
  EXPECT_EQ(fleet.next_free(claimed), SimTime::infinity());
}


// --- Storage backends in the fleet (ZNS / FTL / mixed) -------------------

/// A persisting workload on a heterogeneous fleet: even-indexed devices run
/// the FTL, odd-indexed devices run ZNS, and one job class writes its
/// outputs to flash so the lanes genuinely serve differently (reclaim
/// stalls, metadata traffic, Eq.1 persist pricing).
serve::ServeConfig mixed_backend_config(unsigned jobs) {
  serve::ServeConfig config;
  config.fleet =
      serve::FleetConfig::make(4, 1, 0.0, serve::BackendMix::Mixed);
  config.tenants = {serve::TenantConfig{.weight = 1.0, .queue_depth = 16},
                    serve::TenantConfig{.weight = 2.0, .queue_depth = 16}};
  config.job_classes = {
      serve::JobClass{.app = "tpch-q6", .size_factor = 0.1, .persist = true},
      serve::JobClass{.app = "kmeans", .size_factor = 0.05}};
  config.total_jobs = 24;
  config.offered_load = 8.0;
  config.jobs = jobs;
  return config;
}

TEST(ServeBackend, MixedFleetByteIdenticalAcrossJobsAndCaches) {
  const auto serial = serve::serve(mixed_backend_config(1));
  const auto parallel = serve::serve(mixed_backend_config(4));
  expect_identical(serial, parallel);

  auto uncached = mixed_backend_config(4);
  uncached.sim_cache = false;
  uncached.plan_cache = false;
  expect_identical(serial, serve::serve(uncached));

  // The persisting class must actually have driven the backends: some lane
  // accumulated host page programs (and ZNS/FTL reclaim bookkeeping).
  std::uint64_t host_pages = 0;
  Seconds reclaim = Seconds::zero();
  for (const auto& lane : serial.lanes) {
    host_pages += lane.storage_host_pages;
    reclaim = reclaim + lane.reclaim_time;
    EXPECT_GE(lane.storage_write_amplification(), 1.0);
  }
  EXPECT_GT(host_pages, 0u);
  EXPECT_GE(reclaim.value(), 0.0);
}

TEST(ServeBackend, PersistOffIsIndifferentToBackendMix) {
  // Without a persisting class the backend never runs, so an all-FTL and an
  // all-ZNS fleet must serve byte-identically — the seam is free until used.
  auto ftl = mixed_backend_config(2);
  ftl.job_classes[0].persist = false;
  ftl.fleet = serve::FleetConfig::make(4, 1, 0.0, serve::BackendMix::Ftl);
  auto zns = ftl;
  zns.fleet = serve::FleetConfig::make(4, 1, 0.0, serve::BackendMix::Zns);
  expect_identical(serve::serve(ftl), serve::serve(zns));
}

TEST(ServeBackend, BackendKindSplitsTheMemoKey) {
  // Loud-collision regression: two dispatches that differ only in the
  // lane's storage backend must never share a memo entry — an FTL service
  // time replayed on a ZNS lane would silently corrupt the simulation.
  serve::SimMemoCache cache(4);
  serve::SimKey ftl_key;
  ftl_key.job_class = 2;
  ftl_key.backend = 1 + static_cast<std::uint32_t>(flash::BackendKind::Ftl);
  serve::SimResult r;
  r.service = Seconds{2.5};
  cache.insert(ftl_key, r);

  auto zns_key = ftl_key;
  zns_key.backend = 1 + static_cast<std::uint32_t>(flash::BackendKind::Zns);
  EXPECT_NE(ftl_key.digest(), zns_key.digest());
  EXPECT_EQ(cache.find(zns_key), nullptr);
  ASSERT_NE(cache.find(ftl_key), nullptr);
  EXPECT_EQ(cache.find(ftl_key)->service, Seconds{2.5});

  // Host lanes use the reserved 0 value: distinct from every device kind.
  auto host_key = ftl_key;
  host_key.backend = 0;
  host_key.on_host = true;
  EXPECT_EQ(cache.find(host_key), nullptr);
}

TEST(ServeBackend, MixAssignsAlternatingKinds) {
  const auto config = serve::FleetConfig::make(5, 0, 0.0,
                                               serve::BackendMix::Mixed);
  for (std::size_t k = 0; k < config.devices.size(); ++k) {
    EXPECT_EQ(config.devices[k].backend, (k % 2 == 0)
                                             ? flash::BackendKind::Ftl
                                             : flash::BackendKind::Zns)
        << "device " << k;
  }
  const auto all_zns = serve::FleetConfig::make(3, 0, 0.0,
                                                serve::BackendMix::Zns);
  for (const auto& d : all_zns.devices) {
    EXPECT_EQ(d.backend, flash::BackendKind::Zns);
  }
}

TEST(FleetIndex, DoomedLaneNeverSchedulesAgain) {
  serve::Fleet fleet(serve::FleetConfig::make(2, 0));
  fleet.occupy(0, SimTime::zero(), Seconds{5.0});
  fleet.set_kill_at(0, SimTime{2.0});  // already committed past its death
  // Lane 0 is doomed: every feasibility query must route around it.
  EXPECT_EQ(fleet.earliest_feasible_start(SimTime{0.0}), SimTime::zero());
  std::vector<bool> claimed(fleet.lane_count(), false);
  claimed[1] = true;
  EXPECT_EQ(fleet.next_free(claimed), SimTime::infinity());
}

}  // namespace
