// Adversarial property tests on randomly generated programs.
//
// A generator builds random-but-valid pipelines — random line counts, cost
// laws, reduction factors, parallelism, storage patterns — and the suite
// checks the invariants that must hold for *every* program, not just the
// paper's nine:
//   * Algorithm 1 never projects worse than host-only;
//   * the exhaustive oracle never loses to Algorithm 1's plan when both are
//     measured by the engine;
//   * ActiveCpp's measured latency lands within a bounded factor of the
//     oracle's (estimation error exists, catastrophes must not);
//   * functional results are placement-invariant;
//   * every run is deterministic.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <cstring>
#include <string>
#include <vector>

#include "baseline/baselines.hpp"
#include "common/rng.hpp"
#include "exec/pool.hpp"
#include "plan/assignment.hpp"
#include "plan/estimates.hpp"
#include "profile/sampler.hpp"
#include "runtime/active_runtime.hpp"

namespace isp {
namespace {

/// A valid random pipeline: one storage dataset, 3..8 lines in a chain with
/// occasional fan-in from earlier values.
ir::Program random_program(std::uint64_t seed) {
  Rng rng(seed);
  ir::Program program("random-" + std::to_string(seed), 64.0);

  const double gigs = rng.uniform(0.5, 4.0);
  const auto virtual_bytes =
      Bytes{static_cast<std::uint64_t>(gigs * 1e9)};
  const std::size_t phys_elems = static_cast<std::size_t>(
      virtual_bytes.as_double() / 64.0 / sizeof(float));

  ir::Dataset d;
  d.object.name = "file";
  d.object.location = mem::Location::Storage;
  d.object.virtual_bytes = virtual_bytes;
  d.object.physical.resize_elems<float>(phys_elems);
  {
    Rng fill = rng.fork(1);
    for (auto& v : d.object.physical.as<float>()) {
      v = static_cast<float>(fill.uniform(-1.0, 1.0));
    }
  }
  d.elem_bytes = sizeof(float);
  program.add_dataset(std::move(d));

  const int lines = static_cast<int>(rng.uniform_u64(3, 8));
  std::string previous = "file";
  for (int i = 0; i < lines; ++i) {
    ir::CodeRegion line;
    line.name = "line" + std::to_string(i);
    line.inputs = {previous};
    const std::string out = "v" + std::to_string(i);
    line.outputs = {out};
    previous = out;
    line.elem_bytes = sizeof(float);
    line.cost.cycles_per_elem = rng.uniform(1.0, 40.0);
    line.cost.jitter = 0.02;
    line.host_threads = 1;
    line.csd_threads = static_cast<std::uint32_t>(rng.uniform_u64(1, 8));
    line.chunks = 16;
    const double reduction = rng.uniform(0.02, 1.0);
    line.kernel = [reduction](ir::KernelCtx& ctx) {
      const auto in = ctx.input(0).physical.as<float>();
      auto& out_obj = ctx.output(0);
      const auto keep = static_cast<std::size_t>(
          static_cast<double>(in.size()) * reduction);
      out_obj.physical.resize_elems<float>(keep > 0 ? keep : 1);
      auto dst = out_obj.physical.as<float>();
      for (std::size_t k = 0; k < dst.size(); ++k) {
        dst[k] = in[k] * 0.5F + 1.0F;
      }
    };
    program.add_line(std::move(line));
  }
  program.validate();
  return program;
}

class RandomPrograms : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RandomPrograms, Algorithm1NeverProjectsWorseThanHost) {
  const auto program = random_program(GetParam());
  system::SystemModel system;
  profile::Sampler sampler(system);
  const auto samples = sampler.run(program);
  const auto estimates =
      plan::build_estimates(program, samples,
                            plan::device_factor_from_counters(system), system);
  const auto result = plan::assign_csd(program, estimates, system);
  EXPECT_LE(result.projected, result.projected_host);
}

TEST_P(RandomPrograms, OracleAtLeastAsGoodAsAlgorithm1) {
  const auto program = random_program(GetParam());
  system::SystemModel system;

  const auto oracle = baseline::programmer_directed_plan(system, program);

  profile::Sampler sampler(system);
  const auto samples = sampler.run(program);
  auto estimates =
      plan::build_estimates(program, samples,
                            plan::device_factor_from_counters(system), system);
  auto algo = plan::assign_csd(program, std::move(estimates), system);

  // Measure Algorithm 1's plan with the engine (same conditions).
  runtime::EngineOptions options;
  options.monitoring = false;
  options.migration = false;
  const auto measured = runtime::run_program(
      system, program, algo.plan, codegen::ExecMode::NativeC, options);

  EXPECT_LE(oracle.best_latency.value(), measured.total.value() + 1e-9)
      << "exhaustive search lost to the greedy heuristic";
  // And the greedy plan must not be catastrophically off the optimum.
  EXPECT_LE(measured.total.value(), 1.5 * oracle.best_latency.value())
      << "Algorithm 1 landed >50% off the oracle";
}

TEST_P(RandomPrograms, FullPipelineWithinBoundsOfOracle) {
  const auto program = random_program(GetParam());
  system::SystemModel system;
  const auto oracle = baseline::programmer_directed_plan(system, program);

  runtime::ActiveRuntime active(system);
  const auto result = active.run(program);
  // Sampling overhead included; still must stay in the oracle's ballpark.
  EXPECT_LE(result.end_to_end().value(),
            1.6 * oracle.best_latency.value());
}

TEST_P(RandomPrograms, PlacementInvariantResults) {
  const auto program = random_program(GetParam());
  runtime::EngineOptions options;
  options.monitoring = false;
  options.migration = false;

  system::SystemModel host_system;
  auto host_store = program.make_store();
  runtime::run_program(host_system, program,
                       ir::Plan::host_only(program.line_count()),
                       codegen::ExecMode::NativeC, options, &host_store);

  ir::Plan all_csd = ir::Plan::host_only(program.line_count());
  for (auto& p : all_csd.placement) p = ir::Placement::Csd;
  system::SystemModel csd_system;
  auto csd_store = program.make_store();
  runtime::run_program(csd_system, program, all_csd,
                       codegen::ExecMode::NativeC, options, &csd_store);

  const auto& final_name = program.lines().back().outputs.front();
  const auto& h = host_store.at(final_name).physical;
  const auto& c = csd_store.at(final_name).physical;
  ASSERT_EQ(h.size_bytes(), c.size_bytes());
  EXPECT_EQ(0, std::memcmp(h.as<std::byte>().data(),
                           c.as<std::byte>().data(), h.size_bytes()));
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomPrograms,
                         ::testing::Range<std::uint64_t>(1000, 1012));

/// Fuzz sweep: random programs x random fault schedules.  Whatever the
/// FaultPlan throws at the device stack — ECC retries, program failures, DMA
/// stalls, CSE crashes that force mid-line migration, lost status updates —
/// every run must terminate in bounded virtual time with functional results
/// byte-identical to the host-only fault-free run: graceful degradation is
/// functionally invisible.
///
/// One shard per random program; the five fault schedules of that program
/// fan out through exec::run_batch (each on a fresh SystemModel and store),
/// and all assertions run on the test thread over the collected outcomes.
/// Same 10 x 5 combination coverage as a flat matrix, with the batch as the
/// unit of parallelism.
class RandomFaultedPrograms
    : public ::testing::TestWithParam<std::uint64_t> {};

constexpr std::uint64_t kFaultSeedCount = 5;

TEST_P(RandomFaultedPrograms, TerminatesWithHostIdenticalResults) {
  const auto program_seed = GetParam();
  const auto program = random_program(program_seed);

  // Fault-free host-only reference; read-only while the batch runs.
  runtime::EngineOptions clean;
  clean.monitoring = false;
  clean.migration = false;
  system::SystemModel host_system;
  auto host_store = program.make_store();
  runtime::run_program(host_system, program,
                       ir::Plan::host_only(program.line_count()),
                       codegen::ExecMode::NativeC, clean, &host_store);
  const auto& final_name = program.lines().back().outputs.front();
  const auto& h = host_store.at(final_name).physical;

  struct Outcome {
    double total = 0.0;
    double penalty = 0.0;
    bool injected = false;
    bool have_records = false;
    std::vector<std::byte> result;
  };
  const auto outcomes = exec::run_batch(
      static_cast<std::size_t>(kFaultSeedCount),
      [&](std::size_t fault_seed) {
        // All-CSD plan under an aggressive fault schedule, recovery fully
        // armed.  Everything mutable is task-local.
        runtime::EngineOptions faulted;  // monitoring + migration stay on
        faulted.fault.seed = fault_seed;
        faulted.fault.set_rate(fault::Site::FlashReadEcc, 0.3);
        faulted.fault.set_rate(fault::Site::FlashProgram, 0.3);
        faulted.fault.set_rate(fault::Site::DmaTransfer, 0.3);
        faulted.fault.set_rate(fault::Site::CseCrash, 0.5);
        faulted.fault.set_rate(fault::Site::StatusLoss, 0.5);

        ir::Plan all_csd = ir::Plan::host_only(program.line_count());
        for (auto& p : all_csd.placement) p = ir::Placement::Csd;
        system::SystemModel csd_system;
        auto csd_store = program.make_store();
        const auto report = runtime::run_program(csd_system, program, all_csd,
                                                 codegen::ExecMode::NativeC,
                                                 faulted, &csd_store);
        Outcome o;
        o.total = report.total.value();
        o.penalty = report.faults.penalty.value();
        o.injected = report.faults.total_injected() > 0;
        o.have_records = !report.fault_records.empty();
        const auto bytes = csd_store.at(final_name).physical.as<std::byte>();
        o.result.assign(bytes.data(), bytes.data() + bytes.size());
        return o;
      },
      std::max(2U, exec::default_jobs()));

  for (std::size_t fault_seed = 0; fault_seed < outcomes.size();
       ++fault_seed) {
    SCOPED_TRACE("fault seed " + std::to_string(fault_seed));
    const auto& o = outcomes[fault_seed];
    // Terminated, with the fault handling accounted in finite virtual time.
    ASSERT_TRUE(std::isfinite(o.total));
    EXPECT_GT(o.total, 0.0);
    EXPECT_GE(o.penalty, 0.0);
    EXPECT_EQ(o.injected, o.have_records);

    ASSERT_EQ(h.size_bytes(), o.result.size());
    EXPECT_EQ(0, std::memcmp(h.as<std::byte>().data(), o.result.data(),
                             o.result.size()));
  }
}

// 10 programs x 5 fault schedules = 50 fuzz combinations.
INSTANTIATE_TEST_SUITE_P(SeedMatrix, RandomFaultedPrograms,
                         ::testing::Range<std::uint64_t>(1000, 1010));

}  // namespace
}  // namespace isp
