// Unit tests: strong units, deterministic RNG, error handling, logging,
// and the shared benchmark statistics helpers.
#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <vector>

#include "bench/bench_util.hpp"
#include "common/digest.hpp"
#include "common/error.hpp"
#include "common/log.hpp"
#include "common/rng.hpp"
#include "common/units.hpp"

namespace isp {
namespace {

TEST(Units, BytesArithmetic) {
  EXPECT_EQ((Bytes{1} + Bytes{2}).count(), 3u);
  EXPECT_EQ((Bytes{5} - Bytes{2}).count(), 3u);
  EXPECT_EQ((Bytes{4} * 3).count(), 12u);
  EXPECT_EQ((3 * Bytes{4}).count(), 12u);
  EXPECT_EQ((1_KiB).count(), 1024u);
  EXPECT_EQ((1_MiB).count(), 1024u * 1024u);
  EXPECT_EQ((1_GiB).count(), 1024u * 1024u * 1024u);
  EXPECT_EQ(gigabytes(6.9).count(), 6'900'000'000u);
}

TEST(Units, BytesScale) {
  EXPECT_EQ(scale(Bytes{1024}, 0.5).count(), 512u);
  EXPECT_EQ(scale(Bytes{1024}, 1.0 / 1024).count(), 1u);
  EXPECT_EQ(scale(Bytes{0}, 0.5).count(), 0u);
}

TEST(Units, SecondsArithmetic) {
  EXPECT_DOUBLE_EQ((Seconds{1.5} + Seconds{0.5}).value(), 2.0);
  EXPECT_DOUBLE_EQ((Seconds{1.5} - Seconds{0.5}).value(), 1.0);
  EXPECT_DOUBLE_EQ((Seconds{2.0} * 3.0).value(), 6.0);
  EXPECT_DOUBLE_EQ((Seconds{6.0} / 3.0).value(), 2.0);
  EXPECT_DOUBLE_EQ(Seconds{6.0} / Seconds{3.0}, 2.0);
  EXPECT_TRUE(Seconds::infinity() > Seconds{1e30});
}

TEST(Units, BandwidthDivision) {
  // 5 GB over a 5 GB/s link takes one second.
  const Seconds t = gigabytes(5.0) / gb_per_s(5.0);
  EXPECT_NEAR(t.value(), 1.0, 1e-12);
}

TEST(Units, SimTimeOrdering) {
  const SimTime a{1.0};
  const SimTime b = a + Seconds{0.5};
  EXPECT_LT(a, b);
  EXPECT_DOUBLE_EQ((b - a).value(), 0.5);
  EXPECT_LT(a, SimTime::infinity());
}

TEST(Units, CyclesOverClock) {
  const Seconds t = Cycles{3.6e9} / ghz(3.6);
  EXPECT_NEAR(t.value(), 1.0, 1e-12);
}

TEST(Rng, Deterministic) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.next_u64(), b.next_u64());
  }
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    same += (a.next_u64() == b.next_u64()) ? 1 : 0;
  }
  EXPECT_EQ(same, 0);
}

TEST(Rng, ForkIndependentStreams) {
  Rng base(7);
  Rng f1 = base.fork(1);
  Rng f2 = base.fork(2);
  EXPECT_NE(f1.next_u64(), f2.next_u64());
  // Forking is a const operation on the parent.
  Rng again = Rng(7).fork(1);
  Rng f1b = Rng(7).fork(1);
  EXPECT_EQ(again.next_u64(), f1b.next_u64());
}

TEST(Rng, UniformBounds) {
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.uniform_u64(10, 20);
    EXPECT_GE(v, 10u);
    EXPECT_LE(v, 20u);
    const double d = rng.uniform(-2.0, 3.0);
    EXPECT_GE(d, -2.0);
    EXPECT_LT(d, 3.0);
  }
}

TEST(Rng, UniformSingletonRange) {
  Rng rng(3);
  EXPECT_EQ(rng.uniform_u64(5, 5), 5u);
}

TEST(Rng, NormalMoments) {
  Rng rng(11);
  double sum = 0.0;
  double sum_sq = 0.0;
  constexpr int kN = 20000;
  for (int i = 0; i < kN; ++i) {
    const double x = rng.normal(2.0, 3.0);
    sum += x;
    sum_sq += x * x;
  }
  const double mean = sum / kN;
  const double var = sum_sq / kN - mean * mean;
  EXPECT_NEAR(mean, 2.0, 0.1);
  EXPECT_NEAR(std::sqrt(var), 3.0, 0.15);
}

TEST(Rng, ZipfSkewsTowardHead) {
  Rng rng(5);
  constexpr std::uint64_t kDomain = 10000;
  int head = 0;
  constexpr int kN = 10000;
  for (int i = 0; i < kN; ++i) {
    const auto v = rng.zipf(kDomain, 0.9);
    EXPECT_LT(v, kDomain);
    head += (v < kDomain / 100) ? 1 : 0;
  }
  // The top 1% of ranks receive far more than 1% of draws.
  EXPECT_GT(head, kN / 20);
}

TEST(Rng, ZipfDomainOne) {
  Rng rng(5);
  EXPECT_EQ(rng.zipf(1, 0.9), 0u);
}

TEST(Rng, ShuffleIsPermutation) {
  Rng rng(17);
  std::vector<int> v = {1, 2, 3, 4, 5, 6, 7, 8};
  auto copy = v;
  rng.shuffle(v);
  std::multiset<int> a(v.begin(), v.end());
  std::multiset<int> b(copy.begin(), copy.end());
  EXPECT_EQ(a, b);
}

TEST(Rng, HashUnitInRange) {
  for (std::uint64_t i = 0; i < 1000; ++i) {
    const double u = hash_unit(i);
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
  EXPECT_EQ(hash_unit(42), hash_unit(42));
  EXPECT_NE(hash_unit(42), hash_unit(43));
}

TEST(Error, CheckThrowsWithContext) {
  try {
    ISP_CHECK(1 == 2, "math is broken: " << 42);
    FAIL() << "expected throw";
  } catch (const Error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("1 == 2"), std::string::npos);
    EXPECT_NE(what.find("math is broken: 42"), std::string::npos);
  }
}

TEST(Error, CheckPassesSilently) {
  EXPECT_NO_THROW(ISP_CHECK(1 + 1 == 2, "fine"));
}

TEST(BenchUtil, GeomeanOfPositives) {
  EXPECT_DOUBLE_EQ(bench::geomean({4.0, 1.0}), 2.0);
  EXPECT_DOUBLE_EQ(bench::geomean({3.0}), 3.0);
  EXPECT_DOUBLE_EQ(bench::geomean({}), 0.0);
}

TEST(BenchUtil, GeomeanSkipsNonPositiveEntries) {
  // Zero/negative speedups (failed or skipped runs) must not poison the
  // mean with -inf/NaN; they are excluded from the product.
  std::size_t excluded = 0;
  const double g = bench::geomean({4.0, 0.0, 1.0, -2.5}, &excluded);
  EXPECT_TRUE(std::isfinite(g));
  EXPECT_DOUBLE_EQ(g, 2.0);
  // The exclusion is reported, not silent.
  EXPECT_EQ(excluded, 2u);
  // All entries non-positive: defined, finite, zero, and all reported.
  EXPECT_DOUBLE_EQ(bench::geomean({0.0, -1.0}, &excluded), 0.0);
  EXPECT_EQ(excluded, 2u);
  // Clean input reports zero exclusions.
  EXPECT_DOUBLE_EQ(bench::geomean({2.0, 8.0}, &excluded), 4.0);
  EXPECT_EQ(excluded, 0u);
}

TEST(BenchUtil, MeanBasics) {
  EXPECT_DOUBLE_EQ(bench::mean({1.0, 2.0, 3.0}), 2.0);
  EXPECT_DOUBLE_EQ(bench::mean({}), 0.0);
}

TEST(Digest, Fnv1aMatchesTheReferenceVectors) {
  // Classic FNV-1a 64 test vectors: the empty string is the offset basis,
  // and h("a") is the published reference value.
  EXPECT_EQ(kFnvOffset, 0xcbf29ce484222325ULL);
  EXPECT_EQ(fnv1a_bytes(kFnvOffset, "", 0), kFnvOffset);
  EXPECT_EQ(fnv1a_bytes(kFnvOffset, "a", 1), 0xaf63dc4c8601ec8cULL);
}

TEST(Digest, WordFoldIsLittleEndianByteFold) {
  // fnv1a(h, u64) must equal folding the value's 8 bytes LSB-first — the
  // convention every digest in the repository (obs, recovery, serve) uses.
  const std::uint64_t v = 0x0102030405060708ULL;
  const unsigned char le[8] = {0x08, 0x07, 0x06, 0x05, 0x04, 0x03, 0x02, 0x01};
  EXPECT_EQ(fnv1a(kFnvOffset, v), fnv1a_bytes(kFnvOffset, le, 8));
  // Zero still advances the hash: eight zero bytes, not a no-op.
  EXPECT_NE(fnv1a(kFnvOffset, 0), kFnvOffset);
}

TEST(Digest, StringFoldPrefixesTheLength) {
  // Strings fold size-then-bytes so "ab"+"c" and "a"+"bc" cannot collide.
  const std::string s = "ab";
  EXPECT_EQ(fnv1a(kFnvOffset, s),
            fnv1a_bytes(fnv1a(kFnvOffset, std::uint64_t{2}), s.data(), 2));
  std::uint64_t split_a = fnv1a(kFnvOffset, std::string("ab"));
  split_a = fnv1a(split_a, std::string("c"));
  std::uint64_t split_b = fnv1a(kFnvOffset, std::string("a"));
  split_b = fnv1a(split_b, std::string("bc"));
  EXPECT_NE(split_a, split_b);
}

TEST(Digest, DoubleBitsIsExact) {
  EXPECT_EQ(double_bits(1.5), 0x3FF8000000000000ULL);
  EXPECT_EQ(double_bits(0.0), 0u);
  // +0.0 and -0.0 compare equal as doubles but are distinct states; the
  // digest must see the difference.
  EXPECT_NE(double_bits(0.0), double_bits(-0.0));
}

TEST(Log, LevelGate) {
  const auto old = log_level();
  set_log_level(LogLevel::Off);
  ISP_LOG_INFO("this must not crash while gated");
  set_log_level(old);
  SUCCEED();
}

}  // namespace
}  // namespace isp
