// Tests for the Summarizer-style work-sharing comparator.
#include <gtest/gtest.h>

#include "apps/registry.hpp"
#include "baseline/baselines.hpp"
#include "baseline/work_sharing.hpp"

namespace isp::baseline {
namespace {

apps::AppConfig small() {
  apps::AppConfig config;
  config.size_factor = 0.2;
  return config;
}

TEST(WorkSharing, FractionsAreValid) {
  const auto program = apps::make_app("tpch-q6", small());
  system::SystemModel system;
  const auto result = run_work_sharing(system, program);
  ASSERT_EQ(result.lines.size(), program.line_count());
  for (const auto& line : result.lines) {
    EXPECT_GE(line.csd_fraction, 0.0);
    EXPECT_LE(line.csd_fraction, 1.0);
    // Per-line total is max of the sides plus the merge.
    EXPECT_NEAR(line.total.value(),
                std::max(line.host_side.value(), line.csd_side.value()) +
                    line.merge.value(),
                1e-12);
  }
  EXPECT_GT(result.total.value(), 0.0);
}

TEST(WorkSharing, BeatsHostOnlyWhenCseIsFree) {
  const auto program = apps::make_app("tpch-q6", small());
  system::SystemModel system;
  const auto baseline = run_host_only(system, program);
  const auto shared = run_work_sharing(system, program, 1.0);
  // Concurrency + the internal bandwidth always helps at full availability.
  EXPECT_LT(shared.total.value(), baseline.total.value());
  EXPECT_GT(shared.mean_csd_fraction(), 0.1);
}

TEST(WorkSharing, FractionShrinksWithAvailability) {
  const auto program = apps::make_app("tpch-q6", small());
  system::SystemModel system;
  double previous_f = 1.0;
  double previous_t = 0.0;
  for (const double avail : {1.0, 0.5, 0.25, 0.1, 0.02}) {
    const auto result = run_work_sharing(system, program, avail);
    EXPECT_LE(result.mean_csd_fraction(), previous_f + 1e-9)
        << "f must shrink as the CSE is taken away";
    EXPECT_GE(result.total.value(), previous_t - 1e-9)
        << "less CSE must never make sharing faster";
    previous_f = result.mean_csd_fraction();
    previous_t = result.total.value();
  }
}

TEST(WorkSharing, DegradesTowardHostOnlyNotBelow) {
  const auto program = apps::make_app("tpch-q6", small());
  system::SystemModel system;
  const auto baseline = run_host_only(system, program);
  const auto starved = run_work_sharing(system, program, 0.005);
  // With almost no CSE the tuner pushes f -> 0 and the total approaches the
  // host-only time from below (never worse: f=0 is always available).
  EXPECT_LE(starved.total.value(), baseline.total.value() * 1.01);
  EXPECT_LT(starved.mean_csd_fraction(), 0.05);
}

TEST(WorkSharing, RejectsBadAvailability) {
  const auto program = apps::make_app("tpch-q6", small());
  system::SystemModel system;
  EXPECT_THROW(run_work_sharing(system, program, 0.0), Error);
  EXPECT_THROW(run_work_sharing(system, program, 1.5), Error);
}

}  // namespace
}  // namespace isp::baseline
