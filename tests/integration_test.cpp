// Integration tests: the full ActiveCpp pipeline — sampling, fitting,
// Algorithm 1, code generation, execution, monitoring, migration — on every
// workload at reduced scale.
#include <gtest/gtest.h>

#include <cstring>

#include "apps/registry.hpp"
#include "baseline/baselines.hpp"
#include "runtime/active_runtime.hpp"

namespace isp {
namespace {

apps::AppConfig test_config() {
  apps::AppConfig config;
  config.size_factor = 0.25;
  config.seed = 7;
  return config;
}

class FullPipeline : public ::testing::TestWithParam<const char*> {};

TEST_P(FullPipeline, ProducesConsistentRun) {
  const auto program = apps::make_app(GetParam(), test_config());

  system::SystemModel baseline_system;
  const auto baseline = baseline::run_host_only(baseline_system, program);

  system::SystemModel system;
  runtime::ActiveRuntime active(system);
  const auto result = active.run(program);

  // Structure: one placement per line, estimates attached.
  ASSERT_EQ(result.plan.placement.size(), program.line_count());
  ASSERT_EQ(result.plan.estimate.size(), program.line_count());
  ASSERT_EQ(result.report.lines.size(), program.line_count());

  // The sampling phase is a small fraction of the run.
  EXPECT_LT(result.sampling_overhead.value(),
            0.12 * baseline.total.value());
  EXPECT_GT(result.sampling_overhead.value(), 0.0);

  // The planner's projection brackets reality loosely.
  EXPECT_LE(result.projected_csd, result.projected_host);

  // Per-line records tile the timeline.
  SimTime prev = SimTime::zero();
  for (const auto& line : result.report.lines) {
    EXPECT_GE(line.start, prev);
    EXPECT_GE(line.end, line.start);
    prev = line.end;
  }
  // Final outputs may still ship to the host after the last line ends.
  EXPECT_GE(result.report.total.value(),
            result.report.lines.back().end.seconds() - 1e-9);
  EXPECT_LT(result.report.total.value(),
            result.report.lines.back().end.seconds() + 1.0);

  // With a fully dedicated CSD, ActiveCpp must never lose badly to the C
  // baseline, and should usually win.
  const double speedup = baseline.total.value() / result.end_to_end().value();
  EXPECT_GT(speedup, 0.95) << "ActiveCpp lost to the baseline";
  EXPECT_EQ(result.report.migrations, 0u)
      << "no migration expected at full availability";
}

TEST_P(FullPipeline, MatchesProgrammerDirectedPlan) {
  const auto program = apps::make_app(GetParam(), test_config());
  system::SystemModel system;
  const auto oracle = baseline::programmer_directed_plan(system, program);

  runtime::ActiveRuntime active(system);
  const auto result = active.run(program);
  EXPECT_EQ(result.plan.placement, oracle.best.placement)
      << "ActiveCpp chose different regions than the exhaustive search";
}

TEST_P(FullPipeline, MigrationKeepsResultsCorrectUnderContention) {
  const auto program = apps::make_app(GetParam(), test_config());

  // Reference values from a host-only functional run.
  system::SystemModel host_system;
  runtime::EngineOptions quiet;
  quiet.monitoring = false;
  quiet.migration = false;
  auto host_store = program.make_store();
  runtime::run_program(host_system, program,
                       ir::Plan::host_only(program.line_count()),
                       codegen::ExecMode::NativeC, quiet, &host_store);

  system::SystemModel system;
  runtime::RunConfig rc;
  rc.engine.contention.enabled = true;
  rc.engine.contention.at_csd_progress = 0.5;
  rc.engine.contention.availability = 0.1;
  runtime::ActiveRuntime active(system);
  const auto result = active.run(program, rc);

  // Severe contention on a mostly-offloaded program triggers migration.
  if (result.plan.csd_line_count() >= 2) {
    EXPECT_GE(result.report.migrations, 1u) << "expected a migration at 10%";
  }

  // Functional equality of every final output against the host run.
  system::SystemModel check_system;
  auto check_store = program.make_store();
  runtime::EngineOptions contended = rc.engine;
  auto plan = result.plan;
  runtime::run_program(check_system, program, plan,
                       codegen::ExecMode::NativeC, contended, &check_store);
  for (const auto& line : program.lines()) {
    for (const auto& name : line.outputs) {
      const auto& h = host_store.at(name).physical;
      const auto& c = check_store.at(name).physical;
      ASSERT_EQ(h.size_bytes(), c.size_bytes()) << name;
      EXPECT_EQ(0, std::memcmp(h.as<std::byte>().data(),
                               c.as<std::byte>().data(), h.size_bytes()))
          << name;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllApps, FullPipeline,
                         ::testing::Values("blackscholes", "kmeans",
                                           "lightgbm", "matrixmul",
                                           "mixedgemm", "pagerank", "tpch-q1",
                                           "tpch-q6", "tpch-q14", "sparsemv"));

TEST(FullPipeline, CalibrationKernelPathWorks) {
  const auto program = apps::make_app("tpch-q6", test_config());
  system::SystemModel system;
  runtime::RunConfig rc;
  rc.factor_source = runtime::DeviceFactorSource::CalibrationKernel;
  runtime::ActiveRuntime active(system);
  const auto result = active.run(program, rc);
  EXPECT_NEAR(result.device_factor, 4.8, 0.3);
}

TEST(FullPipeline, StaticPlanDegradesUnderReducedAvailability) {
  const auto program = apps::make_app("tpch-q6", test_config());
  system::SystemModel system;
  const auto oracle = baseline::programmer_directed_plan(system, program);
  const auto baseline_report = baseline::run_host_only(system, program);

  const auto full = baseline::run_static_isp(
      system, program, oracle.best, sim::AvailabilitySchedule::constant(1.0));
  const auto starved = baseline::run_static_isp(
      system, program, oracle.best, sim::AvailabilitySchedule::constant(0.1));
  EXPECT_LT(full.total.value(), baseline_report.total.value());
  EXPECT_GT(starved.total.value(), baseline_report.total.value());
}

TEST(FullPipeline, ReportsDescribeThemselves) {
  const auto program = apps::make_app("tpch-q6", test_config());
  system::SystemModel system;
  runtime::ActiveRuntime active(system);
  const auto result = active.run(program);
  const auto text = result.report.to_string();
  EXPECT_NE(text.find("tpch-q6"), std::string::npos);
  EXPECT_NE(text.find("end-to-end"), std::string::npos);
  EXPECT_GT(result.report.lines_on_csd(), 0u);
  EXPECT_GT(result.report.compute_total().value(), 0.0);
  EXPECT_GT(result.report.access_total().value(), 0.0);
}

}  // namespace
}  // namespace isp
