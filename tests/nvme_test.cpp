// Unit tests: NVMe rings, controller command processing, ActivePy queues.
#include <gtest/gtest.h>

#include <map>

#include "fault/fault.hpp"
#include "flash/flash_array.hpp"
#include "flash/ftl.hpp"
#include "nvme/call_queue.hpp"
#include "nvme/controller.hpp"
#include "nvme/queue.hpp"
#include "sim/simulator.hpp"

namespace isp::nvme {
namespace {

TEST(Ring, EmptyAndFullSemantics) {
  Ring<int> ring(4);  // 3 usable slots (NVMe: full at tail+1 == head)
  EXPECT_TRUE(ring.empty());
  EXPECT_FALSE(ring.full());
  EXPECT_TRUE(ring.push(1));
  EXPECT_TRUE(ring.push(2));
  EXPECT_TRUE(ring.push(3));
  EXPECT_TRUE(ring.full());
  EXPECT_FALSE(ring.push(4));
  EXPECT_EQ(ring.size(), 3u);
}

TEST(Ring, FifoOrderAcrossWrap) {
  Ring<int> ring(4);
  int next_in = 0;
  int next_out = 0;
  for (int round = 0; round < 10; ++round) {
    while (ring.push(next_in)) ++next_in;
    while (const auto v = ring.pop()) {
      EXPECT_EQ(*v, next_out);
      ++next_out;
    }
  }
  EXPECT_EQ(next_in, next_out);
  EXPECT_GT(next_in, 20);
}

TEST(Ring, PopEmptyReturnsNullopt) {
  Ring<int> ring(4);
  EXPECT_FALSE(ring.pop().has_value());
}

TEST(Ring, MinimumCapacityEnforced) {
  EXPECT_THROW(Ring<int>{1}, Error);
}

class ControllerTest : public ::testing::Test {
 protected:
  ControllerTest()
      : array_(),
        ftl_(make_ftl_config()),
        controller_(simulator_, array_, &ftl_),
        qp_(1, 16) {}

  static flash::FtlConfig make_ftl_config() {
    flash::FtlConfig config;
    config.geometry.channels = 1;
    config.geometry.dies_per_channel = 1;
    config.geometry.planes_per_die = 1;
    config.geometry.blocks_per_die = 24;
    config.geometry.pages_per_block = 8;
    config.overprovision = 0.3;
    return config;
  }

  sim::Simulator simulator_;
  flash::FlashArray array_;
  flash::Ftl ftl_;
  Controller controller_;
  QueuePair qp_;
};

TEST_F(ControllerTest, WriteThenReadCompletes) {
  qp_.sq().push(SubmissionEntry{.opcode = Opcode::Write,
                                .command_id = 1,
                                .lba = 0,
                                .length_pages = 4});
  qp_.sq().push(SubmissionEntry{.opcode = Opcode::Read,
                                .command_id = 2,
                                .lba = 0,
                                .length_pages = 4});
  controller_.ring_doorbell(qp_);
  simulator_.run();

  const auto c1 = qp_.cq().pop();
  const auto c2 = qp_.cq().pop();
  ASSERT_TRUE(c1 && c2);
  EXPECT_EQ(c1->command_id, 1);
  EXPECT_EQ(c1->status, Status::Success);
  EXPECT_EQ(c2->command_id, 2);
  EXPECT_EQ(c2->status, Status::Success);
  EXPECT_EQ(controller_.commands_processed(), 2u);
  EXPECT_GT(simulator_.now().seconds(), 0.0);
}

TEST_F(ControllerTest, ReadOfUnmappedPageFails) {
  qp_.sq().push(SubmissionEntry{.opcode = Opcode::Read,
                                .command_id = 7,
                                .lba = 3,
                                .length_pages = 1});
  controller_.ring_doorbell(qp_);
  simulator_.run();
  const auto completion = qp_.cq().pop();
  ASSERT_TRUE(completion);
  EXPECT_EQ(completion->status, Status::Error);
}

TEST_F(ControllerTest, ExecHookHandlesCsdCommands) {
  Seconds seen_service = Seconds::zero();
  controller_.set_exec_hook([&](const SubmissionEntry& entry) {
    EXPECT_EQ(entry.arg_address, 0xdead0000u);
    seen_service = Seconds{0.25};
    return seen_service;
  });
  qp_.sq().push(SubmissionEntry{.opcode = Opcode::CsdExec,
                                .command_id = 9,
                                .arg_address = 0xdead0000});
  controller_.ring_doorbell(qp_);
  simulator_.run();
  const auto completion = qp_.cq().pop();
  ASSERT_TRUE(completion);
  EXPECT_EQ(completion->command_id, 9);
  // Completion arrives no earlier than the execution service time.
  EXPECT_GE(simulator_.now().seconds(), 0.25);
}

TEST_F(ControllerTest, ExecWithoutHookThrows) {
  qp_.sq().push(SubmissionEntry{.opcode = Opcode::CsdExec, .command_id = 3});
  controller_.ring_doorbell(qp_);
  EXPECT_THROW(simulator_.run(), Error);
}

TEST_F(ControllerTest, AbortAcknowledgedQuickly) {
  qp_.sq().push(SubmissionEntry{.opcode = Opcode::CsdAbort, .command_id = 4});
  controller_.ring_doorbell(qp_);
  simulator_.run();
  const auto completion = qp_.cq().pop();
  ASSERT_TRUE(completion);
  EXPECT_EQ(completion->command_id, 4);
  EXPECT_LT(simulator_.now().seconds(), 1e-3);
}

TEST(CallQueue, SubmitFetchRoundTrip) {
  CallQueue queue(8);
  EXPECT_TRUE(queue.empty());
  EXPECT_TRUE(queue.submit(CallEntry{.function_id = 1, .first_line = 4}));
  const auto entry = queue.fetch();
  ASSERT_TRUE(entry);
  EXPECT_EQ(entry->function_id, 1u);
  EXPECT_EQ(entry->first_line, 4u);
  EXPECT_TRUE(queue.empty());
}

TEST_F(ControllerTest, RoundRobinArbitrationIsFair) {
  QueuePair second(2, 16);
  // Seed both queues with writes to distinct logical pages.
  for (std::uint16_t i = 0; i < 4; ++i) {
    qp_.sq().push(SubmissionEntry{.opcode = Opcode::Write,
                                  .command_id = static_cast<std::uint16_t>(
                                      100 + i),
                                  .lba = i,
                                  .length_pages = 1});
    second.sq().push(SubmissionEntry{.opcode = Opcode::Write,
                                     .command_id = static_cast<std::uint16_t>(
                                         200 + i),
                                     .lba = static_cast<std::uint64_t>(
                                         32 + i),
                                     .length_pages = 1});
  }
  controller_.ring_doorbell(qp_);
  controller_.ring_doorbell(second);
  EXPECT_EQ(controller_.queues_registered(), 2u);
  simulator_.run();

  // Both queues fully served.
  std::size_t first_done = 0;
  while (qp_.cq().pop()) ++first_done;
  std::size_t second_done = 0;
  while (second.cq().pop()) ++second_done;
  EXPECT_EQ(first_done, 4u);
  EXPECT_EQ(second_done, 4u);
  EXPECT_EQ(controller_.commands_processed(), 8u);
}

TEST_F(ControllerTest, LateQueueJoinsTheRotation) {
  qp_.sq().push(SubmissionEntry{.opcode = Opcode::Write,
                                .command_id = 1,
                                .lba = 0,
                                .length_pages = 1});
  controller_.ring_doorbell(qp_);
  simulator_.run();
  ASSERT_TRUE(qp_.cq().pop().has_value());

  QueuePair late(3, 16);
  late.sq().push(SubmissionEntry{.opcode = Opcode::Write,
                                 .command_id = 2,
                                 .lba = 5,
                                 .length_pages = 1});
  controller_.ring_doorbell(late);
  simulator_.run();
  const auto completion = late.cq().pop();
  ASSERT_TRUE(completion.has_value());
  EXPECT_EQ(completion->command_id, 2);
}

// Regression: the latent dangling-CQ-entry bug class.  A naive timeout
// implementation posts a completion for the timed-out attempt AND lets the
// requeued retry complete again, so the host sees two completions for one
// command id.  The contract is exactly one completion per command, no
// matter how many attempts the fault schedule forces.
TEST_F(ControllerTest, TimedOutCommandsPostNoDanglingCompletions) {
  fault::FaultConfig config;
  config.seed = 99;
  config.set_rate(fault::Site::NvmeCommand, 0.5);
  fault::Injector injector(config);
  controller_.set_injector(&injector);

  constexpr std::uint16_t kCommands = 8;
  for (std::uint16_t i = 0; i < kCommands; ++i) {
    qp_.sq().push(SubmissionEntry{.opcode = Opcode::Write,
                                  .command_id = i,
                                  .lba = i,
                                  .length_pages = 1});
  }
  controller_.ring_doorbell(qp_);
  simulator_.run();  // must drain: bounded retries, no livelock

  std::map<std::uint16_t, int> seen;
  while (const auto c = qp_.cq().pop()) ++seen[c->command_id];
  EXPECT_EQ(seen.size(), kCommands);
  for (const auto& [id, count] : seen) {
    EXPECT_EQ(count, 1) << "command " << id << " completed " << count
                        << " times";
  }
  // Every command either executed or failed typed — none vanished.
  EXPECT_EQ(controller_.commands_processed() + controller_.commands_failed(),
            kCommands);
  EXPECT_GT(injector.summary().total_injected(), 0u);
}

TEST_F(ControllerTest, ExhaustedRetriesCompleteOnceWithTypedError) {
  fault::FaultConfig config;
  config.set_rate(fault::Site::NvmeCommand, 1.0);  // every attempt is lost
  fault::Injector injector(config);
  controller_.set_injector(&injector);

  qp_.sq().push(SubmissionEntry{.opcode = Opcode::Write,
                                .command_id = 42,
                                .lba = 0,
                                .length_pages = 1});
  controller_.ring_doorbell(qp_);
  simulator_.run();  // terminates: the retry policy bounds the attempts

  const auto completion = qp_.cq().pop();
  ASSERT_TRUE(completion.has_value());
  EXPECT_EQ(completion->command_id, 42);
  EXPECT_EQ(completion->status, Status::Error);
  EXPECT_FALSE(qp_.cq().pop().has_value());  // exactly one completion
  EXPECT_EQ(controller_.commands_processed(), 0u);
  EXPECT_EQ(controller_.commands_failed(), 1u);

  // Virtual time covers every timeout + exponential backoff: with the
  // default policy, 4 x 50us timeouts plus 10+20+40+80us of backoff.
  const auto& retry = config.retry;
  Seconds expected = Seconds::zero();
  for (std::uint32_t a = 1; a <= retry.max_attempts; ++a) {
    expected += config.nvme_command_timeout + retry.backoff_before(a);
  }
  EXPECT_GE(simulator_.now().seconds(), expected.value());
  EXPECT_LT(simulator_.now().seconds(), expected.value() + 1e-3);
}

TEST_F(ControllerTest, UncorrectableEccReadSurfacesAsCommandError) {
  fault::FaultConfig config;
  config.set_rate(fault::Site::FlashReadEcc, 1.0);
  fault::Injector injector(config);
  array_.set_injector(&injector);

  qp_.sq().push(SubmissionEntry{.opcode = Opcode::Write,
                                .command_id = 1,
                                .lba = 0,
                                .length_pages = 2});
  qp_.sq().push(SubmissionEntry{.opcode = Opcode::Read,
                                .command_id = 2,
                                .lba = 0,
                                .length_pages = 2});
  controller_.ring_doorbell(qp_);
  simulator_.run();

  const auto w = qp_.cq().pop();
  const auto r = qp_.cq().pop();
  ASSERT_TRUE(w && r);
  EXPECT_EQ(w->status, Status::Success);  // program site is at rate 0
  EXPECT_EQ(r->command_id, 2);
  EXPECT_EQ(r->status, Status::Error);
  EXPECT_EQ(injector.summary().exhausted[static_cast<std::size_t>(
                fault::Site::FlashReadEcc)],
            1u);
}

TEST(StatusQueue, DropsOldestWhenFull) {
  StatusQueue queue(4);  // 3 usable slots
  for (std::uint32_t i = 0; i < 10; ++i) {
    StatusEntry e;
    e.line = i;
    queue.post(e);
  }
  EXPECT_EQ(queue.posted(), 10u);
  EXPECT_GT(queue.dropped(), 0u);
  // The freshest updates survive.
  std::uint32_t last = 0;
  while (const auto e = queue.poll()) last = e->line;
  EXPECT_EQ(last, 9u);
}

}  // namespace
}  // namespace isp::nvme
