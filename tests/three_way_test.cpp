// Tests: the GPU unit model and the three-way placement DP.
#include <gtest/gtest.h>

#include "apps/registry.hpp"
#include "host/gpu.hpp"
#include "plan/oracle.hpp"
#include "plan/three_way.hpp"

namespace isp::plan {
namespace {

TEST(Gpu, ParallelLinesAccelerate) {
  host::Gpu gpu;
  const Seconds work{4.0};
  const auto fast = gpu.compute_seconds(work, 8);
  EXPECT_LT(fast.value(), 0.2);  // 40x a host core, plus launch
  EXPECT_GT(fast.value(), 4.0 / 40.0 - 1e-9);
}

TEST(Gpu, SerialLinesDoNotBenefit) {
  host::Gpu gpu;
  const Seconds work{4.0};
  const auto serial = gpu.compute_seconds(work, 1);
  EXPECT_GE(serial.value(), 4.0);  // one slow lane + launch overhead
}

TEST(Gpu, RejectsBadConfig) {
  host::GpuConfig config;
  config.speedup_vs_host_core = 0.0;
  EXPECT_THROW(host::Gpu{config}, Error);
}

class ThreeWay : public ::testing::TestWithParam<const char*> {};

TEST_P(ThreeWay, AddingAUnitNeverHurtsTheProjection) {
  apps::AppConfig config;
  config.size_factor = 0.2;
  const auto program = apps::make_app(GetParam(), config);
  system::SystemModel system;
  const auto estimates = measure_true_estimates(system, program);
  host::Gpu gpu;
  const auto result = explore_three_way(program, estimates, system, gpu);

  // More options can only improve an optimal projection.
  EXPECT_LE(result.projected.value(),
            result.projected_two_way.value() + 1e-9);
  EXPECT_LE(result.projected_two_way.value(),
            result.projected_host_only.value() + 1e-9);
  EXPECT_EQ(result.placement.size(), program.line_count());
}

TEST_P(ThreeWay, UselessGpuChangesNothing) {
  apps::AppConfig config;
  config.size_factor = 0.2;
  const auto program = apps::make_app(GetParam(), config);
  system::SystemModel system;
  const auto estimates = measure_true_estimates(system, program);
  host::GpuConfig slow;
  slow.speedup_vs_host_core = 0.01;  // a GPU worse than one host core
  host::Gpu gpu(slow);
  const auto result = explore_three_way(program, estimates, system, gpu);
  EXPECT_EQ(result.count(Unit::Gpu), 0u);
  EXPECT_NEAR(result.projected.value(), result.projected_two_way.value(),
              1e-9);
}

INSTANTIATE_TEST_SUITE_P(Apps, ThreeWay,
                         ::testing::Values("tpch-q6", "blackscholes",
                                           "mixedgemm", "kmeans",
                                           "pagerank"));

TEST(ThreeWay, ComputeDenseParallelLinesDefectToGpu) {
  // Blackscholes at full scale: the pricing line is compute-dense and fully
  // data-parallel — the canonical GPU defector, fed by a CSD-side parse.
  apps::AppConfig config;
  const auto program = apps::make_app("blackscholes", config);
  system::SystemModel system;
  const auto estimates = measure_true_estimates(system, program);
  host::Gpu gpu;
  const auto result = explore_three_way(program, estimates, system, gpu);
  EXPECT_GT(result.count(Unit::Gpu), 0u);
  EXPECT_LT(result.projected.value(), result.projected_two_way.value());
}

}  // namespace
}  // namespace isp::plan
