// Unit + property tests: discrete-event core and availability schedules.
#include <gtest/gtest.h>

#include <vector>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "sim/availability.hpp"
#include "sim/simulator.hpp"

namespace isp::sim {
namespace {

TEST(Simulator, RunsEventsInTimeOrder) {
  Simulator s;
  std::vector<int> order;
  s.schedule(Seconds{3.0}, [&] { order.push_back(3); });
  s.schedule(Seconds{1.0}, [&] { order.push_back(1); });
  s.schedule(Seconds{2.0}, [&] { order.push_back(2); });
  s.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_DOUBLE_EQ(s.now().seconds(), 3.0);
  EXPECT_EQ(s.events_executed(), 3u);
}

TEST(Simulator, TiesBreakByInsertionOrder) {
  Simulator s;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    s.schedule(Seconds{1.0}, [&order, i] { order.push_back(i); });
  }
  s.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(Simulator, EventsCanScheduleEvents) {
  Simulator s;
  int fired = 0;
  s.schedule(Seconds{1.0}, [&] {
    ++fired;
    s.schedule(Seconds{1.0}, [&] { ++fired; });
  });
  s.run();
  EXPECT_EQ(fired, 2);
  EXPECT_DOUBLE_EQ(s.now().seconds(), 2.0);
}

TEST(Simulator, RunUntilStopsOnTime) {
  Simulator s;
  int fired = 0;
  s.schedule(Seconds{1.0}, [&] { ++fired; });
  s.schedule(Seconds{5.0}, [&] { ++fired; });
  s.run_until(SimTime{2.0});
  EXPECT_EQ(fired, 1);
  EXPECT_FALSE(s.idle());
  EXPECT_DOUBLE_EQ(s.now().seconds(), 2.0);
  s.run();
  EXPECT_EQ(fired, 2);
}

TEST(Simulator, RejectsPastScheduling) {
  Simulator s;
  s.schedule(Seconds{1.0}, [] {});
  s.run();
  EXPECT_THROW(s.schedule_at(SimTime{0.5}, [] {}), Error);
  EXPECT_THROW(s.schedule(Seconds{-1.0}, [] {}), Error);
}

TEST(Availability, ConstantFullSpeed) {
  const auto s = AvailabilitySchedule::constant(1.0);
  EXPECT_DOUBLE_EQ(s.fraction_at(SimTime{123.0}), 1.0);
  const auto done = s.finish_time(SimTime{2.0}, Seconds{3.0});
  EXPECT_DOUBLE_EQ(done.seconds(), 5.0);
}

TEST(Availability, HalfSpeedDoublesTime) {
  const auto s = AvailabilitySchedule::constant(0.5);
  const auto done = s.finish_time(SimTime{0.0}, Seconds{3.0});
  EXPECT_DOUBLE_EQ(done.seconds(), 6.0);
}

TEST(Availability, ZeroWorkIsImmediate) {
  const auto s = AvailabilitySchedule::constant(0.0);
  EXPECT_DOUBLE_EQ(s.finish_time(SimTime{4.0}, Seconds{0.0}).seconds(), 4.0);
}

TEST(Availability, StarvationIsInfinity) {
  const auto s = AvailabilitySchedule::constant(0.0);
  EXPECT_EQ(s.finish_time(SimTime{0.0}, Seconds{1.0}), SimTime::infinity());
}

TEST(Availability, StepScheduleStretchesAcrossBoundary) {
  // Full speed for 1 s, then quarter speed.
  auto s = AvailabilitySchedule::steps(
      {{SimTime::zero(), 1.0}, {SimTime{1.0}, 0.25}});
  // 2 s of work starting at t=0: 1 s at full + 1 s remaining at 0.25 -> 4 s.
  EXPECT_DOUBLE_EQ(s.finish_time(SimTime{0.0}, Seconds{2.0}).seconds(), 5.0);
  // Work entirely inside the throttled region.
  EXPECT_DOUBLE_EQ(s.finish_time(SimTime{2.0}, Seconds{1.0}).seconds(), 6.0);
}

TEST(Availability, WorkDoneIntegrates) {
  auto s = AvailabilitySchedule::steps(
      {{SimTime::zero(), 1.0}, {SimTime{1.0}, 0.5}});
  EXPECT_DOUBLE_EQ(s.work_done(SimTime{0.0}, SimTime{1.0}).value(), 1.0);
  EXPECT_DOUBLE_EQ(s.work_done(SimTime{0.0}, SimTime{3.0}).value(), 2.0);
  EXPECT_DOUBLE_EQ(s.work_done(SimTime{2.0}, SimTime{2.0}).value(), 0.0);
}

TEST(Availability, AddStepAppends) {
  auto s = AvailabilitySchedule::constant(1.0);
  s.add_step(SimTime{2.0}, 0.1);
  EXPECT_DOUBLE_EQ(s.fraction_at(SimTime{1.0}), 1.0);
  EXPECT_DOUBLE_EQ(s.fraction_at(SimTime{2.0}), 0.1);
  EXPECT_THROW(s.add_step(SimTime{1.0}, 0.5), Error);
}

TEST(Availability, AddStepRejectsNonMonotonicTimes) {
  auto s = AvailabilitySchedule::constant(1.0);
  s.add_step(SimTime{2.0}, 0.1);
  EXPECT_THROW(s.add_step(SimTime{2.0}, 0.5), Error);  // equal time
  EXPECT_THROW(s.add_step(SimTime{1.0}, 0.5), Error);  // earlier time
  EXPECT_THROW(s.add_step(SimTime{3.0}, 1.5), Error);  // bad fraction
  // A rejected append must leave the schedule intact and usable.
  s.add_step(SimTime{3.0}, 0.5);
  EXPECT_DOUBLE_EQ(s.fraction_at(SimTime{2.5}), 0.1);
  EXPECT_DOUBLE_EQ(s.fraction_at(SimTime{3.5}), 0.5);
}

TEST(Availability, RebasedShiftsTheOriginToZero) {
  const auto schedule = AvailabilitySchedule::steps({{SimTime::zero(), 1.0},
                                                     {SimTime{2.0}, 0.25},
                                                     {SimTime{5.0}, 0.75}});
  // Rebase into the middle of the 0.25 segment: the new schedule starts in
  // that segment and every later step shifts left by the origin.
  const auto rebased = schedule.rebased(SimTime{3.0});
  EXPECT_DOUBLE_EQ(rebased.fraction_at(SimTime::zero()), 0.25);
  EXPECT_DOUBLE_EQ(rebased.fraction_at(SimTime{1.9}), 0.25);
  EXPECT_DOUBLE_EQ(rebased.fraction_at(SimTime{2.0}), 0.75);
  // Agreement with the original at arbitrary offsets.
  for (double dt = 0.0; dt < 6.0; dt += 0.37) {
    EXPECT_DOUBLE_EQ(rebased.fraction_at(SimTime{dt}),
                     schedule.fraction_at(SimTime{3.0 + dt}))
        << "offset " << dt;
  }
}

TEST(Availability, RebasedAtStepBoundaryAndZero) {
  const auto schedule = AvailabilitySchedule::steps(
      {{SimTime::zero(), 0.5}, {SimTime{1.0}, 1.0}});
  // Origin exactly on a step: that step becomes t=0; no duplicate steps.
  const auto at_step = schedule.rebased(SimTime{1.0});
  EXPECT_DOUBLE_EQ(at_step.fraction_at(SimTime::zero()), 1.0);
  EXPECT_EQ(at_step.raw_steps().size(), 1u);
  // Origin zero is the identity.
  const auto at_zero = schedule.rebased(SimTime::zero());
  EXPECT_EQ(at_zero.raw_steps(), schedule.raw_steps());
  EXPECT_THROW(schedule.rebased(SimTime{-1.0}), Error);
}

TEST(Availability, RebasedPreservesFinishTimes) {
  const auto schedule = AvailabilitySchedule::steps({{SimTime::zero(), 1.0},
                                                     {SimTime{1.0}, 0.2},
                                                     {SimTime{4.0}, 1.0}});
  const SimTime origin{2.5};
  const auto rebased = schedule.rebased(origin);
  for (double work = 0.1; work < 3.0; work += 0.3) {
    const auto direct = schedule.finish_time(origin, Seconds{work});
    const auto shifted = rebased.finish_time(SimTime::zero(), Seconds{work});
    EXPECT_NEAR((direct - origin).value(), shifted.seconds(), 1e-12)
        << "work " << work;
  }
}

TEST(Availability, EqualityIgnoresTheQueryCursor) {
  const auto a = AvailabilitySchedule::steps(
      {{SimTime::zero(), 1.0}, {SimTime{2.0}, 0.5}});
  auto b = a;
  // Move b's cached query cursor to the last segment; the schedules are
  // still the same piecewise function, so they must still compare equal
  // and digest identically (the serving memo cache depends on this).
  (void)b.fraction_at(SimTime{10.0});
  EXPECT_TRUE(a == b);
  EXPECT_EQ(a.digest(0x1234), b.digest(0x1234));

  const auto c = AvailabilitySchedule::steps(
      {{SimTime::zero(), 1.0}, {SimTime{2.0}, 0.25}});
  EXPECT_FALSE(a == c);
  EXPECT_NE(a.digest(0x1234), c.digest(0x1234));
  // Default-constructed means fully available forever — equal to the
  // explicit constant(1.0), not to any stepped schedule.
  EXPECT_TRUE(AvailabilitySchedule{} == AvailabilitySchedule::constant(1.0));
  EXPECT_FALSE(AvailabilitySchedule{} == a);
}

TEST(Availability, DigestSeparatesTimeFromFraction) {
  // (t=0, f=1), (t=1, f=0.5) vs (t=0, f=1), (t=0.5, f=1): same multiset of
  // doubles in different roles must not collide (the fold interleaves
  // time-bits then fraction-bits per step).
  const auto a = AvailabilitySchedule::steps(
      {{SimTime::zero(), 1.0}, {SimTime{1.0}, 0.5}});
  const auto b = AvailabilitySchedule::steps(
      {{SimTime::zero(), 1.0}, {SimTime{0.5}, 1.0}});
  EXPECT_NE(a.digest(0), b.digest(0));
}

TEST(Availability, RejectsBadInputs) {
  EXPECT_THROW(AvailabilitySchedule::constant(1.5), Error);
  EXPECT_THROW(AvailabilitySchedule::constant(-0.1), Error);
  EXPECT_THROW(AvailabilitySchedule::steps({}), Error);
  EXPECT_THROW(
      AvailabilitySchedule::steps({{SimTime{1.0}, 1.0}}),  // not at t=0
      Error);
  EXPECT_THROW(AvailabilitySchedule::steps(
                   {{SimTime::zero(), 1.0}, {SimTime::zero(), 0.5}}),
               Error);
}

// Property: finish_time and work_done are inverses on random schedules.
class AvailabilityRoundTrip : public ::testing::TestWithParam<std::uint64_t> {
};

TEST_P(AvailabilityRoundTrip, FinishTimeMatchesWorkDone) {
  Rng rng(GetParam());
  std::vector<std::pair<SimTime, double>> steps;
  double t = 0.0;
  steps.emplace_back(SimTime::zero(), rng.uniform(0.1, 1.0));
  for (int i = 0; i < 8; ++i) {
    t += rng.uniform(0.1, 2.0);
    steps.emplace_back(SimTime{t}, rng.uniform(0.1, 1.0));
  }
  const auto schedule = AvailabilitySchedule::steps(std::move(steps));

  for (int trial = 0; trial < 20; ++trial) {
    const SimTime start{rng.uniform(0.0, 10.0)};
    const Seconds work{rng.uniform(0.01, 5.0)};
    const SimTime finish = schedule.finish_time(start, work);
    ASSERT_LT(finish, SimTime::infinity());
    // The integral of availability over [start, finish) equals the work.
    EXPECT_NEAR(schedule.work_done(start, finish).value(), work.value(),
                1e-9);
    // And monotonicity: more work never finishes earlier.
    const SimTime finish2 = schedule.finish_time(start, work + Seconds{0.1});
    EXPECT_GE(finish2, finish);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, AvailabilityRoundTrip,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34));

// Property: the cached-cursor segment lookup (fraction_at and the loop
// starts inside finish_time/work_done) agrees with a naive linear scan for
// arbitrary, non-monotone query orders — the cursor is a pure cache.
class AvailabilityCursor : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(AvailabilityCursor, MatchesLinearScanInRandomOrder) {
  Rng rng(GetParam());
  std::vector<std::pair<SimTime, double>> steps;
  double t = 0.0;
  steps.emplace_back(SimTime::zero(), rng.uniform(0.0, 1.0));
  for (int i = 0; i < 12; ++i) {
    t += rng.uniform(0.05, 1.5);
    steps.emplace_back(SimTime{t}, rng.uniform(0.0, 1.0));
  }
  const auto schedule = AvailabilitySchedule::steps(steps);

  const auto linear_fraction = [&](SimTime q) {
    double f = steps.front().second;
    for (const auto& [at, frac] : steps) {
      if (at <= q) f = frac;
    }
    return f;
  };

  // Random (forward and backward) queries against the same instance.
  for (int trial = 0; trial < 200; ++trial) {
    const SimTime q{rng.uniform(0.0, t + 2.0)};
    EXPECT_DOUBLE_EQ(schedule.fraction_at(q), linear_fraction(q));
  }
  // Exact step boundaries, walked backwards to defeat the forward cursor.
  for (std::size_t i = steps.size(); i-- > 0;) {
    EXPECT_DOUBLE_EQ(schedule.fraction_at(steps[i].first), steps[i].second);
  }
  // work_done stitched over random interior cuts equals the whole interval
  // even when the cursor was just parked far ahead.
  for (int trial = 0; trial < 50; ++trial) {
    const SimTime a{rng.uniform(0.0, t)};
    const SimTime b{rng.uniform(a.seconds(), t + 1.0)};
    const SimTime mid{rng.uniform(a.seconds(), b.seconds())};
    (void)schedule.fraction_at(SimTime{t + 2.0});  // park the cursor late
    EXPECT_NEAR(schedule.work_done(a, mid).value() +
                    schedule.work_done(mid, b).value(),
                schedule.work_done(a, b).value(), 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, AvailabilityCursor,
                         ::testing::Values(7, 11, 19, 23));

}  // namespace
}  // namespace isp::sim
