// Power-loss crash consistency, bottom to top: the FTL's durable
// journal/checkpoint remount, the NVMe controller's abort+requeue reset,
// the firmware's reboot-and-restart path, the whole-device power cycle,
// and the engine-level crash-point sweep asserting host-identical output.
#include <gtest/gtest.h>

#include <map>
#include <string>
#include <vector>

#include "apps/registry.hpp"
#include "baseline/baselines.hpp"
#include "common/error.hpp"
#include "common/rng.hpp"
#include "csd/device.hpp"
#include "csd/firmware.hpp"
#include "fault/fault.hpp"
#include "flash/ftl.hpp"
#include "nvme/call_queue.hpp"
#include "nvme/controller.hpp"
#include "nvme/queue.hpp"
#include "recovery/recovery.hpp"
#include "runtime/engine.hpp"
#include "sim/simulator.hpp"
#include "system/model.hpp"

namespace isp {
namespace {

using flash::Ftl;
using flash::FtlConfig;
using flash::Lpn;

/// Tiny journaled FTL: 64-byte pages hold 4 journal entries (16 B each) and
/// 8 checkpoint slots (8 B each), so journal-page programs and checkpoint
/// folds happen within a few dozen writes instead of thousands.
FtlConfig journaled_ftl(double overprovision = 0.3) {
  FtlConfig config;
  config.geometry.channels = 1;
  config.geometry.dies_per_channel = 1;
  config.geometry.planes_per_die = 1;
  config.geometry.blocks_per_die = 24;
  config.geometry.pages_per_block = 8;
  config.geometry.page_bytes = Bytes{64};
  config.overprovision = overprovision;
  config.journal.enabled = true;
  config.journal.checkpoint_interval_pages = 4;
  return config;
}

// ---------------------------------------------------------------------------
// Journal cost accounting: durable metadata is real write traffic.

TEST(FtlJournal, MetaWritesVisibleInWriteAmplification) {
  Ftl ftl(journaled_ftl());
  for (Lpn lpn = 0; lpn < 40; ++lpn) ftl.write(lpn);

  const auto& s = ftl.stats();
  EXPECT_EQ(s.host_writes, 40u);
  // 40 mapping updates at 4 entries per journal page: 10 journal pages, plus
  // checkpoint pages folded every 4 journal pages.
  EXPECT_GE(s.meta_writes, 10u);
  EXPECT_GE(s.checkpoint_folds, 1u);
  EXPECT_GT(s.write_amplification(), 1.0);
  ftl.check_invariants();
}

TEST(FtlJournal, DisabledJournalChargesNothingAndCannotCrash) {
  FtlConfig config = journaled_ftl();
  config.journal.enabled = false;
  Ftl ftl(config);
  for (Lpn lpn = 0; lpn < 40; ++lpn) ftl.write(lpn);

  EXPECT_FALSE(ftl.journaling());
  EXPECT_EQ(ftl.stats().meta_writes, 0u);
  EXPECT_EQ(ftl.stats().checkpoint_folds, 0u);
  EXPECT_DOUBLE_EQ(ftl.stats().write_amplification(), 1.0);
  EXPECT_THROW(ftl.power_loss(), Error);
}

TEST(FtlJournal, CheckpointFoldBoundsJournalReplay) {
  Ftl ftl(journaled_ftl());
  Rng rng(5);
  for (int i = 0; i < 300; ++i) {
    ftl.write(rng.uniform_u64(0, ftl.logical_pages() - 1));
  }
  EXPECT_GE(ftl.stats().checkpoint_folds, 2u);

  ftl.power_loss();
  const auto rec = ftl.recover();
  // The durable journal never grows past one fold interval, so replay work
  // is bounded no matter how long the device ran.
  const auto& j = journaled_ftl().journal;
  const std::uint64_t entries_per_page = 64 / j.entry_bytes;
  EXPECT_LE(rec.journal_entries_replayed,
            static_cast<std::uint64_t>(j.checkpoint_interval_pages) *
                entries_per_page);
  EXPECT_GT(rec.checkpoint_pages_read, 0u);
  ftl.check_invariants();
}

// ---------------------------------------------------------------------------
// Crash + remount: what survives, what is rescued, what is genuinely lost.

TEST(FtlRecovery, RemountRestoresEveryDurableMapping) {
  Ftl ftl(journaled_ftl());
  std::map<Lpn, flash::Ppn> before;
  for (Lpn lpn = 0; lpn < 50; ++lpn) {
    ftl.write(lpn);
    before[lpn] = *ftl.translate(lpn);
  }

  ftl.power_loss();
  EXPECT_FALSE(ftl.mounted());
  EXPECT_THROW(ftl.write(0), Error);
  EXPECT_THROW(static_cast<void>(ftl.translate(0)), Error);
  EXPECT_THROW(ftl.trim(0), Error);
  EXPECT_THROW(ftl.check_invariants(), Error);

  const auto rec = ftl.recover();
  EXPECT_TRUE(ftl.mounted());
  EXPECT_EQ(ftl.stats().recoveries, 1u);
  EXPECT_EQ(rec.mappings_recovered, 50u);
  EXPECT_GT(rec.media_reads(), 0u);
  for (const auto& [lpn, ppn] : before) {
    ASSERT_TRUE(ftl.translate(lpn).has_value()) << "lpn " << lpn;
    EXPECT_EQ(*ftl.translate(lpn), ppn) << "lpn " << lpn << " moved";
  }
  ftl.check_invariants();
  // The remounted FTL is fully operational.
  ftl.write(3);
  ftl.trim(4);
  ftl.check_invariants();
}

TEST(FtlRecovery, VolatileTailRescuedFromOob) {
  Ftl ftl(journaled_ftl());
  // Two mapping updates stay buffered (4 entries fill a journal page), so
  // the crash loses them from the journal — but not from the media: each
  // data-page program stamped lpn+seq out of band.
  ftl.write(10);
  ftl.write(11);
  EXPECT_EQ(ftl.journal_tail_updates(), 2u);

  const auto crash = ftl.power_loss();
  EXPECT_EQ(crash.lost_tail_updates, 2u);
  EXPECT_EQ(crash.lost_trims, 0u);

  const auto rec = ftl.recover();
  EXPECT_GE(rec.tail_updates_rescued, 2u);
  EXPECT_TRUE(ftl.translate(10).has_value());
  EXPECT_TRUE(ftl.translate(11).has_value());
  ftl.check_invariants();
}

TEST(FtlRecovery, BufferedTrimIsTheOnlyRealLoss) {
  Ftl ftl(journaled_ftl());
  // Four writes program a full journal page: lpn 7's mapping is durable.
  for (Lpn lpn = 4; lpn < 8; ++lpn) ftl.write(lpn);
  EXPECT_EQ(ftl.journal_tail_updates(), 0u);
  // The trim stays in the volatile tail; nothing on media records it.
  ftl.trim(7);
  EXPECT_FALSE(ftl.translate(7).has_value());

  const auto crash = ftl.power_loss();
  EXPECT_EQ(crash.lost_trims, 1u);

  ftl.recover();
  // The durable journal still maps lpn 7: the trim was resurrected.  This
  // is the documented (and NVMe-legal) loss mode — a trim is a hint.
  EXPECT_TRUE(ftl.translate(7).has_value());
  ftl.check_invariants();
}

TEST(FtlRecovery, NewestTailWriteWinsAfterRemount) {
  Ftl ftl(journaled_ftl());
  ftl.write(3);
  const auto first = *ftl.translate(3);
  ftl.write(3);  // supersedes within the volatile tail
  const auto second = *ftl.translate(3);
  ASSERT_NE(first, second);

  ftl.power_loss();
  const auto rec = ftl.recover();
  ASSERT_TRUE(ftl.translate(3).has_value());
  EXPECT_EQ(*ftl.translate(3), second) << "remount resurrected a stale page";
  EXPECT_GE(rec.stale_mappings_dropped + rec.tail_updates_rescued, 1u);
  ftl.check_invariants();
}

TEST(FtlRecovery, RetirementSurvivesPowerLoss) {
  Ftl ftl(journaled_ftl(/*overprovision=*/0.5));
  Rng rng(13);
  for (int i = 0; i < 200; ++i) {
    ftl.write(rng.uniform_u64(0, ftl.logical_pages() - 1));
  }
  ftl.retire_block(5);
  ftl.retire_block(9);
  EXPECT_EQ(ftl.retired_blocks(), 2u);

  ftl.power_loss();
  ftl.recover();
  EXPECT_EQ(ftl.retired_blocks(), 2u) << "bad-block table is durable";
  ftl.check_invariants();
  // Retired blocks stay excluded from allocation across the remount.
  for (int i = 0; i < 200; ++i) {
    ftl.write(rng.uniform_u64(0, ftl.logical_pages() - 1));
  }
  EXPECT_EQ(ftl.retired_blocks(), 2u);
  ftl.check_invariants();
}

// Property: across repeated churn → crash → remount cycles, a logical page
// written and never trimmed always survives (writes are never lost), and
// every invariant holds after each remount.
class FtlCrashChurn : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FtlCrashChurn, WritesSurviveArbitraryCrashPoints) {
  Ftl ftl(journaled_ftl());
  Rng rng(GetParam());
  std::map<Lpn, bool> live;  // lpn -> written and not trimmed since

  for (int cycle = 0; cycle < 3; ++cycle) {
    const int ops = 100 + static_cast<int>(rng.uniform_u64(0, 400));
    for (int i = 0; i < ops; ++i) {
      const Lpn lpn = rng.uniform_u64(0, ftl.logical_pages() - 1);
      if (rng.next_double() < 0.85) {
        ftl.write(lpn);
        live[lpn] = true;
      } else {
        ftl.trim(lpn);
        live[lpn] = false;
      }
    }

    ftl.power_loss();
    ftl.recover();
    ftl.check_invariants();
    for (const auto& [lpn, is_live] : live) {
      if (is_live) {
        EXPECT_TRUE(ftl.translate(lpn).has_value())
            << "cycle " << cycle << " lost lpn " << lpn;
      }
      // A trimmed page may legally resurrect; no assertion the other way.
    }
  }
  EXPECT_EQ(ftl.stats().recoveries, 3u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, FtlCrashChurn,
                         ::testing::Values(3, 19, 31, 47, 71));

// ---------------------------------------------------------------------------
// NVMe controller reset: in-flight commands abort exactly once and requeue.

TEST(ControllerPowerCycle, InFlightCommandAbortsOnceAndRequeues) {
  sim::Simulator simulator;
  flash::FlashArray array;
  FtlConfig ftl_config = journaled_ftl();
  ftl_config.journal.enabled = false;  // the controller does not care
  Ftl ftl(ftl_config);
  nvme::Controller controller(simulator, array, &ftl);
  nvme::QueuePair qp(1, 16);

  for (std::uint16_t i = 1; i <= 3; ++i) {
    qp.sq().push(nvme::SubmissionEntry{.opcode = nvme::Opcode::Write,
                                       .command_id = i,
                                       .lba = i,
                                       .length_pages = 1});
  }
  controller.ring_doorbell(qp);
  // Past the fetch latency (2 us) but well inside the first write's program
  // time: command 1 is fetched and uncompleted — in flight.
  simulator.run_until(SimTime{3e-6});

  const auto requeued = controller.power_cycle();
  EXPECT_EQ(requeued, 1u);
  EXPECT_EQ(controller.commands_requeued(), 1u);
  const auto aborted = qp.cq().pop();
  ASSERT_TRUE(aborted.has_value());
  EXPECT_EQ(aborted->command_id, 1);
  EXPECT_EQ(aborted->status, nvme::Status::Aborted);
  EXPECT_FALSE(qp.cq().pop().has_value()) << "only the in-flight command aborts";

  controller.restart();
  simulator.run();

  // The requeued command is a fresh submission: it earns its own (single)
  // success, and the epoch gate killed the pre-reset completion event.
  std::map<std::uint16_t, int> successes;
  while (const auto c = qp.cq().pop()) {
    EXPECT_EQ(c->status, nvme::Status::Success);
    ++successes[c->command_id];
  }
  EXPECT_EQ(successes.size(), 3u);
  for (const auto& [id, count] : successes) {
    EXPECT_EQ(count, 1) << "command " << id;
  }
  EXPECT_EQ(controller.commands_processed(), 3u);
  EXPECT_EQ(controller.commands_failed(), 0u);
}

TEST(ControllerPowerCycle, IdleResetIsFreeAndRestartIsIdempotent) {
  sim::Simulator simulator;
  flash::FlashArray array;
  FtlConfig ftl_config = journaled_ftl();
  ftl_config.journal.enabled = false;
  Ftl ftl(ftl_config);
  nvme::Controller controller(simulator, array, &ftl);

  EXPECT_EQ(controller.power_cycle(), 0u);
  controller.restart();  // nothing queued: no-op
  simulator.run();
  EXPECT_EQ(controller.commands_processed(), 0u);
}

// ---------------------------------------------------------------------------
// Firmware reboot: the interrupted call restarts from chunk 0 and completes.

TEST(FirmwarePowerCycle, InterruptedFunctionRestartsAndCompletes) {
  sim::Simulator simulator;
  csd::Cse cse;
  nvme::CallQueue calls(8);
  nvme::StatusQueue status(64);
  csd::FirmwareConfig fw_config;
  fw_config.chunks = 4;
  csd::Firmware firmware(simulator, cse, calls, status, fw_config);

  int completed = 0;
  int failed = 0;
  firmware.start([](const nvme::CallEntry&) { return Seconds{0.01}; },
                 [&](const nvme::CallEntry& entry) {
                   EXPECT_EQ(entry.function_id, 5u);
                   ++completed;
                 });
  firmware.set_on_failure(
      [&](const nvme::CallEntry&, isp::Status) { ++failed; });
  calls.submit(nvme::CallEntry{.function_id = 5, .first_line = 1});

  // 10 ms service over 4 chunks: at 4 ms the firmware is mid-function.
  simulator.run_until(SimTime{4e-3});
  EXPECT_TRUE(firmware.busy());

  firmware.power_cycle();
  EXPECT_FALSE(firmware.busy());
  EXPECT_EQ(firmware.functions_restarted(), 1u);

  simulator.run_until(SimTime{0.1});
  firmware.stop();
  simulator.run_until(SimTime{0.2});

  EXPECT_EQ(completed, 1) << "restarted call must complete exactly once";
  EXPECT_EQ(failed, 0);
  EXPECT_EQ(firmware.functions_executed(), 1u);
  EXPECT_FALSE(firmware.busy());
}

// ---------------------------------------------------------------------------
// Whole-device power cycle.

TEST(DevicePowerCycle, RemountsJournaledFtlAndChargesMediaReads) {
  sim::Simulator simulator;
  csd::CsdDevice device(simulator, csd::CsdConfig{});
  ASSERT_TRUE(device.storage().journaling()) << "a real CSD journals by default";

  for (Lpn lpn = 0; lpn < 64; ++lpn) device.storage().write(lpn);

  const auto outcome = device.power_cycle();
  EXPECT_TRUE(device.storage().mounted());
  EXPECT_EQ(device.storage().counters().recoveries, 1u);
  EXPECT_EQ(outcome.recovery.mappings_recovered, 64u);
  EXPECT_GT(outcome.recovery.media_reads(), 0u);
  // Remount time converts media reads through the device's NAND timing.
  EXPECT_NEAR(outcome.remount_time.value(),
              device.config().nand_timing.page_read.value() *
                  static_cast<double>(outcome.recovery.media_reads()),
              1e-12);
  device.storage().check_invariants();
  for (Lpn lpn = 0; lpn < 64; ++lpn) {
    EXPECT_TRUE(device.storage().translate(lpn).has_value()) << "lpn " << lpn;
  }
}

// ---------------------------------------------------------------------------
// Engine-level crash-point sweep (scaled-down; the full coverage run is
// bench/crash_recovery).  Every crashed-and-recovered run must produce the
// fault-free output digest and remount a consistent FTL.

void expect_sweep_survives(const std::string& app_name, std::uint64_t stride,
                           std::uint64_t max_points) {
  apps::AppConfig config;
  const auto program = apps::make_app(app_name, config);
  system::SystemModel plan_system;
  const auto oracle = baseline::programmer_directed_plan(plan_system, program);

  recovery::CrashSweepOptions options;
  options.stride = stride;
  options.max_points = max_points;
  const auto sweep = recovery::crash_sweep(program, oracle.best, options);

  ASSERT_GE(sweep.points.size(), 3u) << app_name << ": too few crash points";
  EXPECT_TRUE(sweep.all_outputs_match()) << app_name;
  EXPECT_TRUE(sweep.all_invariants_hold()) << app_name;
  for (const auto& p : sweep.points) {
    EXPECT_TRUE(p.crashed);
    EXPECT_GE(p.ftl_recoveries, 1u) << app_name << " boundary " << p.boundary;
    EXPECT_GT(p.recovery_overhead.value(), 0.0)
        << app_name << " boundary " << p.boundary;
    EXPECT_GT(p.total.value(), sweep.reference_total.value())
        << "a crash cannot make the run faster";
  }
  EXPECT_LT(sweep.worst_recovery().value(), sweep.reference_total.value());
}

TEST(CrashSweep, TpchQ6RecoversWithHostIdenticalOutput) {
  expect_sweep_survives("tpch-q6", 5, 6);
}

TEST(CrashSweep, KmeansRecoversWithHostIdenticalOutput) {
  expect_sweep_survives("kmeans", 31, 5);
}

TEST(CrashSweep, BlackscholesRecoversWithHostIdenticalOutput) {
  expect_sweep_survives("blackscholes", 7, 5);
}

// ---------------------------------------------------------------------------
// Determinism regression: identical fault seed + rates give byte-identical
// reports — crashes, recoveries, timing and all.

TEST(Determinism, IdenticalSeedsProduceByteIdenticalReports) {
  apps::AppConfig config;
  const auto program = apps::make_app("tpch-q6", config);
  system::SystemModel plan_system;
  const auto plan = baseline::programmer_directed_plan(plan_system, program);

  auto run_once = [&](std::string* json, std::uint64_t* digest) {
    system::SystemModel system;
    auto store = program.make_store();
    runtime::EngineOptions opts;
    opts.fault.seed = 11;
    opts.fault.set_rate_all(0.05);
    // Guarantee at least one power loss so the crash path is in the diff.
    auto& site =
        opts.fault.sites[static_cast<std::size_t>(fault::Site::PowerLoss)];
    site.rate = 1.0;
    site.skip_first = 2;
    site.max_faults = 1;
    const auto report = runtime::run_program(
        system, program, plan.best, codegen::ExecMode::CompiledNoCopy, opts,
        &store);
    EXPECT_EQ(report.power_losses, 1u);
    *json = report.to_json();
    *digest = recovery::digest_outputs(program, store);
  };

  std::string json_a;
  std::string json_b;
  std::uint64_t digest_a = 0;
  std::uint64_t digest_b = 0;
  run_once(&json_a, &digest_a);
  run_once(&json_b, &digest_b);
  EXPECT_EQ(json_a, json_b) << "same seed, different report";
  EXPECT_EQ(digest_a, digest_b);
}

}  // namespace
}  // namespace isp
