// Cross-checks of the workload kernels against independent, straight-line
// reference implementations computed directly from the generated datasets.
// (apps_test.cpp checks structural sanity; this file checks the numbers.)
#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <cmath>
#include <map>
#include <vector>

#include "apps/data_gen.hpp"
#include "apps/registry.hpp"
#include "profile/sampler.hpp"
#include "runtime/engine.hpp"

namespace isp::apps {
namespace {

AppConfig tiny() {
  AppConfig config;
  config.size_factor = 0.03;
  config.seed = 99;
  return config;
}

ir::ObjectStore run_host(const ir::Program& program) {
  system::SystemModel system;
  runtime::EngineOptions options;
  options.monitoring = false;
  options.migration = false;
  auto store = program.make_store();
  runtime::run_program(system, program,
                       ir::Plan::host_only(program.line_count()),
                       codegen::ExecMode::NativeC, options, &store);
  return store;
}

TEST(ReferenceQ1, AggregatesMatchDirectScan) {
  const auto program = make_tpch_q1(tiny());
  auto store = run_host(program);

  // Independent aggregation straight off the generated table.
  auto reference = program.make_store();
  const auto rows = reference.at("lineitem").physical.as<LineitemRow>();
  std::array<double, 6> sum_qty{};
  std::array<double, 6> count{};
  auto group_of = [](const LineitemRow& r) {
    const std::size_t f =
        r.return_flag == 'A' ? 0 : (r.return_flag == 'N' ? 1 : 2);
    return f * 2 + (r.line_status == 'O' ? 0 : 1);
  };
  for (const auto& r : rows) {
    if (r.ship_date > 2445) continue;
    const auto g = group_of(r);
    sum_qty[g] += r.quantity;
    count[g] += 1.0;
  }

  const auto report = store.at("q1_report").physical.as<double>();
  for (std::size_t g = 0; g < 6; ++g) {
    if (count[g] == 0.0) continue;
    EXPECT_NEAR(report[g * 3 + 0], sum_qty[g] / count[g], 1e-9)
        << "group " << g;
  }
}

TEST(ReferenceQ14, PromoRatioMatchesDirectJoin) {
  const auto program = make_tpch_q14(tiny());
  auto store = run_host(program);

  auto reference = program.make_store();
  const auto rows = reference.at("lineitem").physical.as<LineitemRow>();
  const auto parts = reference.at("part").physical.as<PartRow>();
  std::vector<bool> promo(parts.size(), false);
  for (const auto& p : parts) {
    promo[static_cast<std::size_t>(p.part_key)] = p.is_promo != 0;
  }
  double promo_rev = 0.0;
  double total_rev = 0.0;
  for (const auto& r : rows) {
    if (r.ship_date < 2160 || r.ship_date >= 2190) continue;
    const double revenue = r.extended_price * (1.0 - r.discount);
    total_rev += revenue;
    if (promo[static_cast<std::size_t>(r.part_key)]) promo_rev += revenue;
  }
  const auto result = store.at("q14_result").physical.as<double>();
  ASSERT_GT(total_rev, 0.0);
  EXPECT_NEAR(result[0], 100.0 * promo_rev / total_rev, 1e-9);
  EXPECT_NEAR(result[1], promo_rev, 1e-6);
  EXPECT_NEAR(result[2], total_rev, 1e-6);
}

TEST(ReferenceBlackscholes, PutCallParityHolds) {
  const auto program = make_blackscholes(tiny());
  auto store = run_host(program);
  auto reference = program.make_store();
  const auto records = reference.at("options_file").physical.as<OptionRecord>();
  const auto prices = store.at("prices").physical.as<float>();
  ASSERT_EQ(prices.size(), records.size());

  // Spot-check Black–Scholes bounds on a sample of rows: a call is worth at
  // least its discounted intrinsic value and no more than the spot.
  for (std::size_t i = 0; i < records.size(); i += 97) {
    const auto& r = records[i];
    const double discounted_strike = r.strike * std::exp(-r.rate * r.expiry);
    if (r.is_call != 0) {
      EXPECT_GE(prices[i], std::max(0.0, r.spot - discounted_strike) - 0.05)
          << "call " << i;
      EXPECT_LE(prices[i], r.spot + 0.05) << "call " << i;
    } else {
      EXPECT_GE(prices[i], std::max(0.0, discounted_strike - r.spot) - 0.05)
          << "put " << i;
      EXPECT_LE(prices[i], discounted_strike + 0.05) << "put " << i;
    }
  }
}

TEST(ReferenceLightgbm, MarginsMatchManualTraversal) {
  const auto program = make_lightgbm(tiny());
  auto store = run_host(program);
  auto reference = program.make_store();

  const auto raw = reference.at("features_file").physical.as<double>();
  const auto forest = reference.at("model").physical.as<TreeNode>();
  const auto margins = store.at("margins").physical.as<float>();
  constexpr std::size_t kFeatures = 32;
  constexpr std::size_t kTrees = 40;
  constexpr std::size_t kNodes = 63;  // depth 6

  for (std::size_t row = 0; row < margins.size(); row += 53) {
    std::array<float, kFeatures> features{};
    for (std::size_t j = 0; j < kFeatures; ++j) {
      features[j] = static_cast<float>(raw[row * kFeatures + j]);
    }
    float margin = 0.0F;
    for (std::size_t t = 0; t < kTrees; ++t) {
      const TreeNode* tree = forest.data() + t * kNodes;
      std::size_t node = 0;
      while (tree[node].feature >= 0) {
        node = 2 * node +
               (features[tree[node].feature] <= tree[node].threshold ? 1 : 2);
      }
      margin += tree[node].threshold;
    }
    EXPECT_NEAR(margins[row], margin, 1e-4) << "row " << row;
  }
}

TEST(ReferencePagerank, MatchesDensePowerIteration) {
  const auto program = make_pagerank(tiny());
  auto store = run_host(program);
  auto reference = program.make_store();
  const auto records = reference.at("edges_file").physical.as<EdgeRecord>();

  // Dense re-implementation with the same first-seen compaction.
  std::map<std::uint64_t, std::uint32_t> remap;
  auto id_of = [&](std::uint64_t v) {
    const auto [it, inserted] = remap.try_emplace(
        v, static_cast<std::uint32_t>(remap.size()));
    return it->second;
  };
  std::vector<std::pair<std::uint32_t, std::uint32_t>> edges;
  for (const auto& e : records) {
    const auto s = id_of(e.src);
    const auto d = id_of(e.dst);
    edges.emplace_back(s, d);
  }
  const std::size_t v_count = remap.size();
  std::vector<double> degree(v_count, 0.0);
  for (const auto& [s, d] : edges) degree[s] += 1.0;

  std::vector<double> ranks(v_count, 1.0 / static_cast<double>(v_count));
  for (int iter = 0; iter < 4; ++iter) {
    std::vector<double> next(v_count,
                             0.15 / static_cast<double>(v_count));
    for (const auto& [s, d] : edges) {
      next[d] += 0.85 * ranks[s] / degree[s];
    }
    ranks = std::move(next);
  }

  const auto pipeline_ranks = store.at("ranks4").physical.as<double>();
  ASSERT_EQ(pipeline_ranks.size(), v_count);
  for (std::size_t v = 0; v < v_count; v += 211) {
    EXPECT_NEAR(pipeline_ranks[v], ranks[v], 1e-12) << "vertex " << v;
  }
}

TEST(ReferenceMatmul, WholeBatchMatches) {
  const auto program = make_matmul(tiny());
  auto store = run_host(program);
  auto reference = program.make_store();
  const auto a = reference.at("a_batch").physical.as<double>();
  const auto b = reference.at("b_batch").physical.as<double>();
  const auto c = store.at("c").physical.as<double>();
  constexpr std::size_t kDim = 32;
  const std::size_t pairs = std::min(a.size(), b.size()) / (kDim * kDim);
  ASSERT_EQ(c.size(), pairs * kDim * kDim);
  // Check a full matrix from the middle of the batch.
  const std::size_t p = pairs / 2;
  for (std::size_t i = 0; i < kDim; ++i) {
    for (std::size_t j = 0; j < kDim; ++j) {
      double expected = 0.0;
      for (std::size_t k = 0; k < kDim; ++k) {
        expected += a[p * kDim * kDim + i * kDim + k] *
                    b[p * kDim * kDim + k * kDim + j];
      }
      ASSERT_NEAR(c[p * kDim * kDim + i * kDim + j], expected, 1e-9);
    }
  }
}

TEST(SamplingBias, SortedDataIsAKnownLimitation) {
  // The paper's sampling heuristic takes leading subsets of the referenced
  // files; if the file is sorted by the filter key, the prefix is wildly
  // unrepresentative.  This test documents the limitation: the volume
  // prediction for a trailing-selectivity filter collapses to ~zero, the
  // planner still offloads (the reduction looks even better), and
  // correctness is unaffected — only the d_out estimate is off.
  auto program = make_tpch_q6(tiny());
  {
    auto& dataset =
        const_cast<ir::Dataset&>(program.datasets()[0]);
    auto rows = dataset.object.physical.as<LineitemRow>();
    std::sort(rows.begin(), rows.end(),
              [](const LineitemRow& x, const LineitemRow& y) {
                return x.ship_date < y.ship_date;
              });
  }
  system::SystemModel system;
  profile::Sampler sampler(system);
  const auto samples = sampler.run(program);
  // The Q6 year window [365, 730) sits past the sampled prefix
  // (prefix covers the earliest ship dates once sorted).
  const auto& scan_points = samples.lines[0].points;
  for (const auto& p : scan_points) {
    EXPECT_LT(p.out_bytes.as_double(),
              0.02 * p.in_bytes.as_double())
        << "sorted prefix should look almost empty after the filter";
  }
}

}  // namespace
}  // namespace isp::apps
