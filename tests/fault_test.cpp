// Unit tests for the deterministic fault-injection subsystem: the FaultPlan
// schedule itself (seed determinism, per-site independence, skip_first), the
// Injector's bounded-retry accounting, and the per-site recovery paths in
// the flash array, the DMA engine, and the CSD firmware.  Every exhausted
// retry must surface a typed isp::Status in bounded virtual time — never a
// hang.  NVMe command timeout/requeue is covered in nvme_test.cpp; the
// engine-level degradation ladder in engine_property_test.cpp.
#include <gtest/gtest.h>

#include <vector>

#include "common/status.hpp"
#include "csd/cse.hpp"
#include "csd/firmware.hpp"
#include "fault/fault.hpp"
#include "flash/flash_array.hpp"
#include "interconnect/dma.hpp"
#include "interconnect/link.hpp"
#include "nvme/call_queue.hpp"
#include "sim/simulator.hpp"

namespace isp {
namespace {

constexpr auto kEcc = fault::Site::FlashReadEcc;
constexpr auto kProgram = fault::Site::FlashProgram;
constexpr auto kDma = fault::Site::DmaTransfer;
constexpr auto kCrash = fault::Site::CseCrash;
constexpr auto kLoss = fault::Site::StatusLoss;

std::vector<bool> draw_sequence(fault::FaultPlan& plan, fault::Site site,
                                std::size_t n) {
  std::vector<bool> seq;
  seq.reserve(n);
  for (std::size_t i = 0; i < n; ++i) seq.push_back(plan.fires(site));
  return seq;
}

TEST(FaultPlan, DeterministicForFixedSeed) {
  fault::FaultConfig config;
  config.seed = 42;
  config.set_rate_all(0.5);

  fault::FaultPlan a(config);
  fault::FaultPlan b(config);
  for (std::size_t s = 0; s < fault::kSiteCount; ++s) {
    const auto site = static_cast<fault::Site>(s);
    EXPECT_EQ(draw_sequence(a, site, 1000), draw_sequence(b, site, 1000))
        << "site " << fault::to_string(site);
  }

  config.seed = 43;
  fault::FaultPlan c(config);
  fault::FaultPlan d(config);
  EXPECT_NE(draw_sequence(c, kEcc, 1000), draw_sequence(d, kCrash, 1000))
      << "sites share one stream";
  fault::FaultPlan e(config);
  config.seed = 44;
  fault::FaultPlan f(config);
  EXPECT_NE(draw_sequence(e, kEcc, 1000), draw_sequence(f, kEcc, 1000))
      << "seed does not reach the schedule";
}

TEST(FaultPlan, RateEndpoints) {
  fault::FaultConfig config;
  config.seed = 7;
  config.set_rate(kEcc, 1.0);
  fault::FaultPlan plan(config);
  for (int i = 0; i < 100; ++i) {
    EXPECT_TRUE(plan.fires(kEcc));
    EXPECT_FALSE(plan.fires(kDma));  // rate 0 never fires
  }
  EXPECT_EQ(plan.opportunities(kEcc), 100u);
  EXPECT_EQ(plan.opportunities(kDma), 100u);
}

TEST(FaultPlan, SkipFirstPlacesFirstFaultExactly) {
  fault::FaultConfig config;
  config.seed = 7;
  config.sites[static_cast<std::size_t>(kCrash)] = {.rate = 1.0,
                                                    .skip_first = 5};
  fault::FaultPlan plan(config);
  for (int i = 0; i < 5; ++i) EXPECT_FALSE(plan.fires(kCrash)) << i;
  EXPECT_TRUE(plan.fires(kCrash));
  EXPECT_EQ(plan.opportunities(kCrash), 6u);
}

TEST(FaultPlan, SitesHaveIndependentStreams) {
  fault::FaultConfig config;
  config.seed = 99;
  config.set_rate_all(0.5);

  // Interleaving draws at one site must not shift another site's schedule.
  fault::FaultPlan solo(config);
  const auto reference = draw_sequence(solo, kProgram, 200);

  fault::FaultPlan interleaved(config);
  std::vector<bool> observed;
  for (std::size_t i = 0; i < 200; ++i) {
    (void)interleaved.fires(kEcc);
    (void)interleaved.fires(kCrash);
    observed.push_back(interleaved.fires(kProgram));
  }
  EXPECT_EQ(observed, reference);
}

TEST(RetryPolicy, BackoffGrowsExponentially) {
  const fault::RetryPolicy policy;  // 10 us initial, x2
  EXPECT_NEAR(policy.backoff_before(1).value(), 10e-6, 1e-12);
  EXPECT_NEAR(policy.backoff_before(2).value(), 20e-6, 1e-12);
  EXPECT_NEAR(policy.backoff_before(3).value(), 40e-6, 1e-12);
  EXPECT_NEAR(policy.backoff_before(4).value(), 80e-6, 1e-12);
}

TEST(Injector, AttemptChargesRetriesBackoffAndEscalation) {
  fault::FaultConfig config;
  config.seed = 3;
  config.set_rate(kEcc, 1.0);
  fault::Injector injector(config);

  const Seconds retry_cost{100e-6};
  const Seconds escalation{1e-3};
  const auto op = injector.attempt(kEcc, SimTime{1.0}, retry_cost, escalation);

  // Rate 1.0: all max_attempts tries fault, then the escalation lands.
  EXPECT_EQ(op.faults, config.retry.max_attempts);
  EXPECT_TRUE(op.exhausted);
  const double expected = 4 * 100e-6                        // retried tries
                          + (10 + 20 + 40 + 80) * 1e-6     // backoff ladder
                          + 1e-3;                          // escalation
  EXPECT_NEAR(op.penalty.value(), expected, 1e-12);

  const auto& s = injector.summary();
  EXPECT_EQ(s.injected[static_cast<std::size_t>(kEcc)], 4u);
  EXPECT_EQ(s.exhausted[static_cast<std::size_t>(kEcc)], 1u);
  EXPECT_EQ(s.recovered[static_cast<std::size_t>(kEcc)], 0u);
  EXPECT_NEAR(s.penalty.value(), expected, 1e-12);
  ASSERT_EQ(injector.records().size(), 1u);
  EXPECT_EQ(injector.records()[0].site, kEcc);
  EXPECT_TRUE(injector.records()[0].exhausted);
  EXPECT_NEAR(injector.records()[0].time.seconds(), 1.0, 1e-12);
}

TEST(Injector, RateZeroSiteConsumesNoOpportunities) {
  fault::FaultConfig config;
  config.seed = 3;
  config.set_rate(kEcc, 1.0);  // plan enabled, but kDma stays at 0
  fault::Injector injector(config);

  const auto op = injector.attempt(kDma, SimTime::zero(), Seconds{1e-3});
  EXPECT_EQ(op.faults, 0u);
  EXPECT_FALSE(op.exhausted);
  EXPECT_EQ(op.penalty.value(), 0.0);
  // Early-out must not burn a draw: the kDma schedule is unshifted.
  EXPECT_EQ(injector.plan().opportunities(kDma), 0u);
  EXPECT_TRUE(injector.records().empty());
}

TEST(Injector, DisabledPlanIsInert) {
  fault::Injector injector{fault::FaultConfig{}};
  EXPECT_FALSE(injector.enabled());
  const auto op = injector.attempt(kCrash, SimTime::zero(), Seconds{1.0});
  EXPECT_EQ(op.faults, 0u);
  EXPECT_EQ(op.penalty.value(), 0.0);
  EXPECT_FALSE(injector.lost(kLoss, SimTime::zero()));
  EXPECT_EQ(injector.plan().opportunities(kCrash), 0u);
  EXPECT_EQ(injector.summary().total_injected(), 0u);
}

TEST(Injector, BookkeepingConsistentAtIntermediateRate) {
  fault::FaultConfig config;
  config.seed = 17;
  config.set_rate(kProgram, 0.5);
  fault::Injector injector(config);

  std::uint64_t faults_seen = 0;
  std::uint64_t episodes_with_faults = 0;
  double penalty_seen = 0.0;
  for (int i = 0; i < 200; ++i) {
    const auto op =
        injector.attempt(kProgram, SimTime::zero(), Seconds{1e-6});
    faults_seen += op.faults;
    penalty_seen += op.penalty.value();
    if (op.faults > 0) ++episodes_with_faults;
    EXPECT_LE(op.faults, config.retry.max_attempts);
  }

  const auto& s = injector.summary();
  const auto idx = static_cast<std::size_t>(kProgram);
  EXPECT_EQ(s.injected[idx], faults_seen);
  EXPECT_EQ(s.recovered[idx] + s.exhausted[idx], episodes_with_faults);
  EXPECT_NEAR(s.penalty.value(), penalty_seen, 1e-9);
  EXPECT_EQ(injector.records().size(), episodes_with_faults);
  // At rate 0.5 over 200 episodes, both outcomes must occur.
  EXPECT_GT(s.recovered[idx], 0u);
  EXPECT_GT(s.injected[idx], 0u);
}

TEST(Injector, LostRecordsSingleInjection) {
  fault::FaultConfig config;
  config.seed = 5;
  config.set_rate(kLoss, 1.0);
  fault::Injector injector(config);

  EXPECT_TRUE(injector.lost(kLoss, SimTime{2.0}));
  const auto idx = static_cast<std::size_t>(kLoss);
  EXPECT_EQ(injector.summary().injected[idx], 1u);
  EXPECT_EQ(injector.summary().recovered[idx], 1u);
  EXPECT_EQ(injector.summary().exhausted[idx], 0u);
  EXPECT_EQ(injector.summary().penalty.value(), 0.0);
}

// ---------------------------------------------------------------------------
// Flash array: ECC-read and program faults.

TEST(FlashFaults, ReadIoCleanWithoutInjector) {
  flash::FlashArray array;
  const Bytes bytes{1 << 20};
  const auto io = array.read_io(SimTime{1.0}, bytes);
  EXPECT_TRUE(io.status.is_ok());
  EXPECT_EQ(io.retries, 0u);
  EXPECT_EQ(io.fault_penalty.value(), 0.0);
  EXPECT_EQ(io.done.seconds(), array.read_finish(SimTime{1.0}, bytes).seconds());
}

TEST(FlashFaults, ExhaustedReadSurfacesDataErrorInBoundedTime) {
  fault::FaultConfig config;
  config.seed = 11;
  config.set_rate(kEcc, 1.0);
  fault::Injector injector(config);
  flash::FlashArray array;
  array.set_injector(&injector);

  const Bytes bytes{1 << 20};
  const auto io = array.read_io(SimTime::zero(), bytes);
  EXPECT_EQ(io.status.code(), StatusCode::DataError);
  EXPECT_EQ(io.status.attempts(), config.retry.max_attempts);
  EXPECT_EQ(io.retries, config.retry.max_attempts);

  // Penalty: max_attempts re-reads + backoff ladder + RAID reconstruction.
  const double expected_penalty = 4 * array.timing().page_read.value() +
                                  (10 + 20 + 40 + 80) * 1e-6 +
                                  config.ecc_recovery.value();
  EXPECT_NEAR(io.fault_penalty.value(), expected_penalty, 1e-12);
  EXPECT_NEAR(io.done.seconds(),
              array.read_finish(SimTime::zero(), bytes).seconds() +
                  expected_penalty,
              1e-12);
  array.set_injector(nullptr);
}

TEST(FlashFaults, ExhaustedProgramRetiresBlock) {
  fault::FaultConfig config;
  config.seed = 11;
  config.set_rate(kProgram, 1.0);
  fault::Injector injector(config);
  flash::FlashArray array;
  array.set_injector(&injector);

  const auto io = array.write_io(SimTime::zero(), Bytes{1 << 16});
  EXPECT_EQ(io.status.code(), StatusCode::DataError);
  const double expected_penalty = 4 * array.timing().page_program.value() +
                                  (10 + 20 + 40 + 80) * 1e-6 +
                                  config.block_retire.value();
  EXPECT_NEAR(io.fault_penalty.value(), expected_penalty, 1e-12);
  EXPECT_EQ(
      injector.summary().exhausted[static_cast<std::size_t>(kProgram)], 1u);
  array.set_injector(nullptr);
}

// ---------------------------------------------------------------------------
// DMA engine: transfer stalls and link reset.

TEST(DmaFaults, ExhaustedTransferCostsLinkReset) {
  interconnect::Link link{interconnect::LinkConfig{}};
  interconnect::DmaEngine dma(link);

  const Bytes bytes{1 << 20};
  const SimTime clean =
      dma.transfer(SimTime::zero(), bytes, interconnect::TransferKind::RawInput);
  EXPECT_EQ(clean.seconds(),
            link.transfer_finish(SimTime::zero(), bytes).seconds());

  fault::FaultConfig config;
  config.seed = 23;
  config.set_rate(kDma, 1.0);
  fault::Injector injector(config);
  dma.set_injector(&injector);

  const SimTime faulted =
      dma.transfer(SimTime::zero(), bytes, interconnect::TransferKind::RawInput);
  const double expected_penalty = 4 * link.config().base_latency.value() +
                                  (10 + 20 + 40 + 80) * 1e-6 +
                                  config.link_reset.value();
  EXPECT_NEAR(faulted.seconds(), clean.seconds() + expected_penalty, 1e-12);
  EXPECT_EQ(injector.summary().exhausted[static_cast<std::size_t>(kDma)], 1u);
  dma.set_injector(nullptr);
}

// ---------------------------------------------------------------------------
// CSD firmware: crash-restart recovery and crash-exhaustion abandonment.

TEST(FirmwareFaults, CrashedChunksRestartAndTheFunctionCompletes) {
  sim::Simulator simulator;
  csd::Cse cse;
  nvme::CallQueue calls(8);
  nvme::StatusQueue status(64);
  csd::FirmwareConfig fw_config;
  fw_config.chunks = 4;
  csd::Firmware firmware(simulator, cse, calls, status, fw_config);

  // One clean draw then a fault, per chunk at most: skip_first places the
  // first crash deterministically and rate 1.0 would never recover, so use
  // a mid rate with a seed whose schedule recovers every chunk (asserted
  // below — determinism keeps this stable forever).
  fault::FaultConfig config;
  config.seed = 2;
  config.set_rate(kCrash, 0.4);
  fault::Injector injector(config);
  firmware.set_injector(&injector);

  int completed = 0;
  int failed = 0;
  firmware.start([](const nvme::CallEntry&) { return Seconds{0.01}; },
                 [&](const nvme::CallEntry&) { ++completed; });
  firmware.set_on_failure(
      [&](const nvme::CallEntry&, isp::Status) { ++failed; });
  calls.submit(nvme::CallEntry{.function_id = 1, .first_line = 0});

  simulator.run_until(SimTime{0.5});
  firmware.stop();
  simulator.run_until(SimTime{1.0});

  EXPECT_EQ(completed, 1);
  EXPECT_EQ(failed, 0);
  EXPECT_EQ(firmware.functions_executed(), 1u);
  EXPECT_EQ(firmware.functions_failed(), 0u);
  EXPECT_FALSE(firmware.busy());
  const auto idx = static_cast<std::size_t>(kCrash);
  EXPECT_GT(injector.summary().injected[idx], 0u);
  EXPECT_GT(injector.summary().recovered[idx], 0u);
  EXPECT_EQ(injector.summary().exhausted[idx], 0u);
}

TEST(FirmwareFaults, ExhaustedCrashesAbandonWithTypedStatusAndNeverHang) {
  sim::Simulator simulator;
  csd::Cse cse;
  nvme::CallQueue calls(8);
  nvme::StatusQueue status(64);
  csd::Firmware firmware(simulator, cse, calls, status);

  fault::FaultConfig config;
  config.seed = 4;
  config.set_rate(kCrash, 1.0);  // every restart crashes again
  fault::Injector injector(config);
  firmware.set_injector(&injector);

  std::vector<isp::Status> failures;
  int completed = 0;
  firmware.start([](const nvme::CallEntry&) { return Seconds{0.01}; },
                 [&](const nvme::CallEntry&) { ++completed; });
  firmware.set_on_failure([&](const nvme::CallEntry& entry, isp::Status s) {
    EXPECT_EQ(entry.function_id, 9u);
    failures.push_back(s);
  });
  calls.submit(nvme::CallEntry{.function_id = 9, .first_line = 2});

  simulator.run_until(SimTime{0.5});
  firmware.stop();
  simulator.run_until(SimTime{1.0});  // the poll loop must drain, not hang

  ASSERT_EQ(failures.size(), 1u);
  EXPECT_EQ(failures[0].code(), StatusCode::DeviceCrash);
  EXPECT_EQ(failures[0].attempts(), config.retry.max_attempts);
  EXPECT_EQ(completed, 0);
  EXPECT_EQ(firmware.functions_executed(), 0u);
  EXPECT_EQ(firmware.functions_failed(), 1u);
  EXPECT_FALSE(firmware.busy());

  // The abandonment reached the host as a high-priority status update —
  // the hook the runtime's degradation ladder hangs off.
  bool high_priority_seen = false;
  while (const auto e = status.poll()) {
    high_priority_seen |= e->high_priority_request;
  }
  EXPECT_TRUE(high_priority_seen);
  EXPECT_EQ(injector.summary().exhausted[static_cast<std::size_t>(kCrash)],
            1u);
}

}  // namespace
}  // namespace isp
