// Functional tests for the evaluation workloads: every kernel computes real
// results, and results are identical regardless of where lines run.
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <set>

#include "apps/data_gen.hpp"
#include "apps/registry.hpp"
#include "baseline/baselines.hpp"
#include "runtime/engine.hpp"

namespace isp::apps {
namespace {

/// Small configuration so functional runs stay fast.
AppConfig test_config() {
  AppConfig config;
  config.size_factor = 0.05;
  config.seed = 1234;
  return config;
}

runtime::EngineOptions quiet() {
  runtime::EngineOptions options;
  options.monitoring = false;
  options.migration = false;
  return options;
}

ir::ObjectStore run_on(system::SystemModel& system, const ir::Program& program,
                       ir::Placement everywhere) {
  ir::Plan plan = ir::Plan::host_only(program.line_count());
  for (auto& p : plan.placement) p = everywhere;
  auto store = program.make_store();
  runtime::run_program(system, program, plan, codegen::ExecMode::NativeC,
                       quiet(), &store);
  return store;
}

TEST(Registry, AllAppsBuildAndValidate) {
  for (const auto& app : all_apps()) {
    const auto program = make_app(app.name, test_config());
    EXPECT_NO_THROW(program.validate()) << app.name;
    EXPECT_GE(program.line_count(), 3u) << app.name;
    EXPECT_GT(program.total_storage_bytes().count(), 0u) << app.name;
  }
  EXPECT_EQ(table1_apps().size(), 9u);
  EXPECT_EQ(all_apps().size(), 10u);
}

TEST(Registry, UnknownAppThrows) {
  EXPECT_THROW(make_app("no-such-app", test_config()), Error);
}

TEST(Registry, FullScaleSizesMatchTable1) {
  for (const auto& app : table1_apps()) {
    const auto program = make_app(app.name, AppConfig{});
    EXPECT_NEAR(program.total_storage_bytes().as_double(),
                app.table1_bytes.as_double(),
                app.table1_bytes.as_double() * 0.02)
        << app.name;
  }
}

TEST(TpchQ6, RevenueMatchesDirectComputation) {
  system::SystemModel system;
  const auto program = make_tpch_q6(test_config());
  auto store = run_on(system, program, ir::Placement::Host);

  // Recompute straight from the generated rows.
  auto reference = program.make_store();
  const auto rows = reference.at("lineitem").physical.as<LineitemRow>();
  double expected = 0.0;
  for (const auto& row : rows) {
    if (row.ship_date >= 365 && row.ship_date < 730 &&
        row.discount >= 0.05 - 1e-9 && row.discount <= 0.07 + 1e-9 &&
        row.quantity < 24.0) {
      expected += row.extended_price * row.discount;
    }
  }
  EXPECT_GT(expected, 0.0);
  EXPECT_DOUBLE_EQ(store.at("q6_revenue").physical.as<double>()[0], expected);
}

TEST(TpchQ1, GroupAveragesAreSane) {
  system::SystemModel system;
  const auto program = make_tpch_q1(test_config());
  auto store = run_on(system, program, ir::Placement::Host);
  const auto report = store.at("q1_report").physical.as<double>();
  ASSERT_EQ(report.size(), 18u);  // 6 groups x 3 averages
  for (std::size_t g = 0; g < 6; ++g) {
    EXPECT_GE(report[g * 3 + 0], 1.0);    // avg quantity in [1, 50]
    EXPECT_LE(report[g * 3 + 0], 50.0);
    EXPECT_GE(report[g * 3 + 2], 0.0);    // avg discount in [0, 0.1]
    EXPECT_LE(report[g * 3 + 2], 0.1);
  }
}

TEST(TpchQ14, PromoRatioInRange) {
  system::SystemModel system;
  const auto program = make_tpch_q14(test_config());
  auto store = run_on(system, program, ir::Placement::Host);
  const auto result = store.at("q14_result").physical.as<double>();
  ASSERT_EQ(result.size(), 3u);
  EXPECT_GE(result[0], 0.0);
  EXPECT_LE(result[0], 100.0);
  // ~20% of part types are PROMO, so the ratio should be visibly nonzero.
  EXPECT_GT(result[0], 5.0);
  EXPECT_GT(result[2], 0.0);  // total revenue
}

TEST(Blackscholes, PricesAreArbitrageFreeIsh) {
  system::SystemModel system;
  const auto program = make_blackscholes(test_config());
  auto store = run_on(system, program, ir::Placement::Host);
  const auto stats = store.at("price_stats").physical.as<double>();
  ASSERT_EQ(stats.size(), 4u);
  EXPECT_TRUE(std::isfinite(stats[0]));
  EXPECT_GT(stats[0], 0.0);    // mean price positive
  EXPECT_GE(stats[2], -1e-3);  // min price never meaningfully negative
  EXPECT_LT(stats[3], 250.0);  // max bounded by spot range
}

TEST(Kmeans, LabelsWithinClusterCount) {
  system::SystemModel system;
  const auto program = make_kmeans(test_config());
  auto store = run_on(system, program, ir::Placement::Host);
  const auto labels = store.at("labels").physical.as<std::uint32_t>();
  ASSERT_GT(labels.size(), 0u);
  for (const auto label : labels) EXPECT_LT(label, 8u);
  // Points land in more than one cluster.
  std::uint32_t first = labels[0];
  bool diverse = false;
  for (const auto label : labels) diverse = diverse || (label != first);
  EXPECT_TRUE(diverse);
}

TEST(Lightgbm, HistogramAccountsForEveryRow) {
  system::SystemModel system;
  const auto program = make_lightgbm(test_config());
  auto store = run_on(system, program, ir::Placement::Host);
  const auto summary = store.at("label_summary").physical.as<std::uint64_t>();
  const auto margins = store.at("margins").physical.as<float>();
  ASSERT_EQ(summary.size(), 2u);
  EXPECT_EQ(summary[0] + summary[1], margins.size());
}

TEST(Matmul, MatchesReferenceGemm) {
  system::SystemModel system;
  const auto program = make_matmul(test_config());
  auto store = run_on(system, program, ir::Placement::Host);

  auto reference = program.make_store();
  const auto a = reference.at("a_batch").physical.as<double>();
  const auto b = reference.at("b_batch").physical.as<double>();
  const auto c = store.at("c").physical.as<double>();
  ASSERT_GE(c.size(), 32u * 32u);
  // Spot-check one entry of the first pair.
  double expect = 0.0;
  for (std::size_t k = 0; k < 32; ++k) expect += a[k] * b[k * 32 + 3];
  EXPECT_NEAR(c[3], expect, 1e-9);
  EXPECT_GT(store.at("c_norm").physical.as<double>()[0], 0.0);
}

TEST(Mixedgemm, SummaryBoundedByGelu) {
  system::SystemModel system;
  const auto program = make_mixedgemm(test_config());
  auto store = run_on(system, program, ir::Placement::Host);
  const auto summary = store.at("logit_summary").physical.as<float>();
  ASSERT_GT(summary.size(), 0u);
  for (const auto v : summary) {
    EXPECT_TRUE(std::isfinite(v));
  }
}

TEST(Pagerank, RanksFormDistribution) {
  system::SystemModel system;
  const auto program = make_pagerank(test_config());
  auto store = run_on(system, program, ir::Placement::Host);
  const auto ranks = store.at("ranks4").physical.as<double>();
  ASSERT_GT(ranks.size(), 100u);
  double total = 0.0;
  for (const auto r : ranks) {
    EXPECT_GE(r, 0.0);
    total += r;
  }
  // Damped PageRank over a graph with dangling vertices sums to <= 1.
  EXPECT_GT(total, 0.3);
  EXPECT_LE(total, 1.0 + 1e-6);
  const auto top = store.at("top_vertices").physical.as<double>();
  ASSERT_GE(top.size(), 2u);
  // Top-ranked value is the maximum.
  double max_rank = 0.0;
  for (const auto r : ranks) max_rank = std::max(max_rank, r);
  EXPECT_DOUBLE_EQ(top[0], max_rank);
}

TEST(Sparsemv, PowerIterationStaysNormalised) {
  system::SystemModel system;
  const auto program = make_sparsemv(test_config());
  auto store = run_on(system, program, ir::Placement::Host);
  const auto x = store.at("x3").physical.as<double>();
  double norm_sq = 0.0;
  for (const auto v : x) norm_sq += v * v;
  EXPECT_NEAR(std::sqrt(norm_sq), 1.0, 1e-9);
  EXPECT_NEAR(store.at("eigen_estimate").physical.as<double>()[0], 1.0, 1e-9);
}

TEST(DataGen, LineitemDistributions) {
  mem::Buffer buffer;
  fill_lineitem(buffer, 10000, 1000, Rng{7});
  const auto rows = buffer.as<LineitemRow>();
  double discount_hits = 0;
  for (const auto& row : rows) {
    EXPECT_GE(row.quantity, 1.0);
    EXPECT_LE(row.quantity, 50.0);
    EXPECT_GE(row.discount, 0.0);
    EXPECT_LE(row.discount, 0.10 + 1e-9);
    EXPECT_GE(row.ship_date, 0);
    EXPECT_LT(row.ship_date, 2555);
    EXPECT_LT(static_cast<std::uint32_t>(row.part_key), 1000u);
    discount_hits += (row.discount >= 0.05 && row.discount <= 0.07) ? 1 : 0;
  }
  // Three of eleven discount buckets.
  EXPECT_NEAR(discount_hits / 10000.0, 3.0 / 11.0, 0.03);
}

TEST(DataGen, ForestIsWellFormed) {
  mem::Buffer buffer;
  fill_forest(buffer, 10, 4, 8, Rng{9});
  const auto nodes = buffer.as<TreeNode>();
  ASSERT_EQ(nodes.size(), forest_nodes(10, 4));
  const std::size_t per_tree = (1u << 4) - 1;
  const std::size_t internal = (1u << 3) - 1;
  for (std::size_t t = 0; t < 10; ++t) {
    for (std::size_t n = 0; n < per_tree; ++n) {
      const auto& node = nodes[t * per_tree + n];
      if (n < internal) {
        EXPECT_GE(node.feature, 0);
        EXPECT_LT(node.feature, 8);
      } else {
        EXPECT_EQ(node.feature, -1);
      }
    }
  }
}

TEST(DataGen, ZipfEdgesConcaveDistinctGrowth) {
  mem::Buffer buffer;
  fill_edges_zipf(buffer, 40000, 20000, 0.65, Rng{5});
  const auto edges = buffer.as<EdgeRecord>();
  auto distinct_in_prefix = [&](std::size_t count) {
    std::set<std::uint64_t> seen;
    for (std::size_t i = 0; i < count; ++i) {
      seen.insert(edges[i].src);
      seen.insert(edges[i].dst);
    }
    return seen.size();
  };
  const double d1 = static_cast<double>(distinct_in_prefix(5000));
  const double d2 = static_cast<double>(distinct_in_prefix(40000));
  // Distinct vertices grow sublinearly: 8x the edges, well under 8x the
  // vertices — the CSR over-estimation mechanism.
  EXPECT_LT(d2 / d1, 6.0);
  EXPECT_GT(d2, d1);
}

// Property: functional results are identical for host-only, all-CSD and the
// programmer-directed placements (placement must never change semantics).
class PlacementEquivalence
    : public ::testing::TestWithParam<const char*> {};

TEST_P(PlacementEquivalence, SameBytesEverywhere) {
  const auto program = make_app(GetParam(), test_config());

  system::SystemModel host_system;
  auto host_store = run_on(host_system, program, ir::Placement::Host);

  system::SystemModel csd_system;
  auto csd_store = run_on(csd_system, program, ir::Placement::Csd);

  // Every object produced by the program has identical physical bytes.
  for (const auto& line : program.lines()) {
    for (const auto& name : line.outputs) {
      const auto& h = host_store.at(name).physical;
      const auto& c = csd_store.at(name).physical;
      ASSERT_EQ(h.size_bytes(), c.size_bytes()) << name;
      const auto hb = h.as<std::byte>();
      const auto cb = c.as<std::byte>();
      EXPECT_EQ(0, std::memcmp(hb.data(), cb.data(), hb.size())) << name;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllApps, PlacementEquivalence,
                         ::testing::Values("blackscholes", "kmeans",
                                           "lightgbm", "matrixmul",
                                           "mixedgemm", "pagerank", "tpch-q1",
                                           "tpch-q6", "tpch-q14", "sparsemv"));

}  // namespace
}  // namespace isp::apps
