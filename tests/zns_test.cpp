// Property + unit tests for the zoned-namespace backend (src/zns/).
//
// The suite pins the ZNS model's contract at three levels:
//   * the zone state machine (write-pointer monotonicity, the open-zone
//     resource limit, reset/finish/retire semantics);
//   * host-coordinated reclaim (watermark convergence, conservation of live
//     data, write amplification >= 1);
//   * power-loss durability (journaled trims + OOB append order recover the
//     exact mapping; a >= 50-point crash sweep over a fixed workload must
//     land on the no-crash digest at every point).
#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

#include "common/digest.hpp"
#include "common/error.hpp"
#include "common/rng.hpp"
#include "flash/ftl.hpp"
#include "obs/metrics.hpp"
#include "zns/zns.hpp"

namespace isp::zns {
namespace {

// 1 channel x 1 die x 1 plane, 32 blocks of 8 pages, 2 blocks per zone:
// 16 zones of 16 pages.  One metadata zone leaves 15 data zones; 0.4
// overprovision exposes 144 logical pages (9 zones), and 9 logical + 2
// append + 4 high-watermark = 15 <= 15 makes the geometry exactly feasible.
// 64-byte pages make journal pages fill after 4 trim records, so small
// workloads still exercise journal programs and checkpoint folds.
ZnsConfig small_zns(bool journal = false) {
  ZnsConfig config;
  config.geometry.channels = 1;
  config.geometry.dies_per_channel = 1;
  config.geometry.planes_per_die = 1;
  config.geometry.blocks_per_die = 32;
  config.geometry.pages_per_block = 8;
  config.geometry.page_bytes = Bytes{64};
  config.zone_blocks = 2;
  config.max_open_zones = 3;
  config.meta_zones = 1;
  config.overprovision = 0.4;
  config.reclaim_low_watermark = 2;
  config.reclaim_high_watermark = 4;
  config.journal.enabled = journal;
  return config;
}

TEST(ZnsConfigCheck, RejectsNonTilingZoneBlocks) {
  auto config = small_zns();
  config.zone_blocks = 5;  // 32 % 5 != 0
  EXPECT_THROW(ZnsDevice{config}, Error);
}

TEST(ZnsConfigCheck, RejectsTooFewOpenZones) {
  auto config = small_zns();
  config.max_open_zones = 1;  // host append + reclaim copy need two
  EXPECT_THROW(ZnsDevice{config}, Error);
}

TEST(ZnsConfigCheck, RejectsInfeasibleOverprovision) {
  auto config = small_zns();
  // 0.05 OP -> 15 logical zones; 15 + 2 + 4 > 15 data zones.
  config.overprovision = 0.05;
  EXPECT_THROW(ZnsDevice{config}, Error);
}

TEST(Zns, GeometryAndInitialState) {
  ZnsDevice zns(small_zns());
  EXPECT_EQ(zns.zone_count(), 16u);
  EXPECT_EQ(zns.data_zones(), 15u);
  EXPECT_EQ(zns.zone_pages(), 16u);
  EXPECT_EQ(zns.logical_pages(), 144u);
  EXPECT_EQ(zns.kind(), flash::BackendKind::Zns);
  // The constructor opens the host and reclaim append targets.
  EXPECT_EQ(zns.open_zones(), 2u);
  EXPECT_EQ(zns.free_zones(), 13u);
  zns.check_invariants();
}

TEST(Zns, TranslateAfterWrite) {
  ZnsDevice zns(small_zns());
  EXPECT_FALSE(zns.translate(0).has_value());
  zns.write(0);
  ASSERT_TRUE(zns.translate(0).has_value());
  zns.check_invariants();
}

TEST(Zns, ZoneAppendReturnsWritePointerSlot) {
  ZnsDevice zns(small_zns());
  const std::uint64_t zone = 5;
  for (std::uint32_t i = 0; i < 4; ++i) {
    const auto wp_before = zns.write_pointer(zone);
    const flash::Ppn ppn = zns.zone_append(zone, i);
    // The device assigns the slot at the write pointer and advances it.
    EXPECT_EQ(ppn, zone * zns.zone_pages() + wp_before);
    EXPECT_EQ(zns.write_pointer(zone), wp_before + 1);
    EXPECT_EQ(zns.translate(i), ppn);
  }
  zns.check_invariants();
}

TEST(Zns, OutOfRangeRejected) {
  ZnsDevice zns(small_zns());
  EXPECT_THROW(zns.write(zns.logical_pages()), Error);
  EXPECT_THROW(static_cast<void>(zns.translate(zns.logical_pages())), Error);
  EXPECT_THROW(zns.zone_append(0, 0), Error);  // metadata zone
  EXPECT_THROW(zns.zone_append(zns.zone_count(), 0), Error);
  EXPECT_THROW(static_cast<void>(zns.zone_state(zns.zone_count())), Error);
}

// The core zone property: under an arbitrary host write stream, observed at
// write()-call granularity, a zone's write pointer only ever advances — the
// sole way back is through a reset (one write() can both reset a victim and
// re-append into it, so the pointer may land anywhere, but only in a step
// whose reset count grew) — and the open-zone limit holds at every step.
TEST(Zns, WritePointerMonotoneAndOpenLimitUnderRandomWrites) {
  ZnsDevice zns(small_zns());
  Rng rng(0xfeedULL);
  std::vector<std::uint32_t> wp(zns.zone_count(), 0);
  std::uint64_t resets_seen = 0;
  for (int step = 0; step < 4000; ++step) {
    zns.write(rng.uniform_u64(0, zns.logical_pages() - 1));
    EXPECT_LE(zns.open_zones(), zns.config().max_open_zones);
    bool receded = false;
    for (std::uint64_t z = 1; z < zns.zone_count(); ++z) {
      const std::uint32_t now = zns.write_pointer(z);
      if (now < wp[z]) receded = true;
      wp[z] = now;
    }
    const std::uint64_t resets_now = zns.stats().zone_resets;
    if (receded) {
      EXPECT_GT(resets_now, resets_seen)
          << "a write pointer moved backwards without any zone reset";
    }
    resets_seen = resets_now;
  }
  EXPECT_GT(zns.stats().zone_resets, 0u);  // the workload forced reclaim
  zns.check_invariants();
}

TEST(Zns, OpenZoneLimitShedsLeastRecentlyOpened) {
  ZnsDevice zns(small_zns());  // two zones already open (append targets)
  zns.open_zone(5);
  EXPECT_EQ(zns.open_zones(), 3u);
  EXPECT_EQ(zns.stats().implicit_closes, 0u);
  // A fourth open must shed the LRU open zone to respect the limit.
  zns.open_zone(6);
  EXPECT_EQ(zns.open_zones(), 3u);
  EXPECT_EQ(zns.stats().implicit_closes, 1u);
  EXPECT_EQ(zns.zone_state(6), ZoneState::ExplicitlyOpen);
  zns.check_invariants();
}

TEST(Zns, CloseAndReopenKeepsWritePointer) {
  ZnsDevice zns(small_zns());
  zns.zone_append(5, 0);
  zns.zone_append(5, 1);
  zns.close_zone(5);
  EXPECT_EQ(zns.zone_state(5), ZoneState::Closed);
  EXPECT_EQ(zns.write_pointer(5), 2u);
  // Append to a Closed zone reopens it implicitly at the same pointer.
  const flash::Ppn ppn = zns.zone_append(5, 2);
  EXPECT_EQ(ppn, 5 * zns.zone_pages() + 2);
  EXPECT_EQ(zns.zone_state(5), ZoneState::ImplicitlyOpen);
  zns.check_invariants();
}

TEST(Zns, ResetOfLiveZoneRejectedUntilTrimmed) {
  ZnsDevice zns(small_zns());
  const std::uint64_t zone = 5;
  for (std::uint32_t i = 0; i < zns.zone_pages(); ++i) {
    zns.zone_append(zone, i);
  }
  EXPECT_EQ(zns.zone_state(zone), ZoneState::Full);
  EXPECT_THROW(zns.zone_append(zone, 0), Error);  // full zones reject
  // Resetting live data would lose it: the model rejects loudly.
  EXPECT_THROW(zns.reset_zone(zone), Error);
  for (std::uint32_t i = 0; i < zns.zone_pages(); ++i) zns.trim(i);
  zns.reset_zone(zone);
  EXPECT_EQ(zns.zone_state(zone), ZoneState::Empty);
  EXPECT_EQ(zns.write_pointer(zone), 0u);
  EXPECT_GT(zns.stats().zone_resets, 0u);
  EXPECT_GT(zns.stats().erases, 0u);
  zns.check_invariants();
}

TEST(Zns, FinishZoneBlocksAppendsBeforeCapacity) {
  ZnsDevice zns(small_zns());
  zns.zone_append(5, 0);
  zns.finish_zone(5);
  EXPECT_EQ(zns.zone_state(5), ZoneState::Full);
  EXPECT_LT(zns.write_pointer(5), zns.zone_pages());
  EXPECT_THROW(zns.zone_append(5, 1), Error);
  zns.check_invariants();
}

TEST(Zns, SteadyStateOverwritesTriggerHostReclaim) {
  ZnsDevice zns(small_zns());
  Rng rng(0x2718ULL);
  for (int i = 0; i < 3000; ++i) {
    zns.write(rng.uniform_u64(0, zns.logical_pages() - 1));
  }
  const auto& stats = zns.stats();
  EXPECT_GT(stats.reclaim_invocations, 0u);
  EXPECT_GT(stats.reclaim_copies, 0u);
  EXPECT_GT(stats.zone_resets, 0u);
  EXPECT_GE(stats.write_amplification(), 1.0);
  EXPECT_GE(zns.free_zones(), zns.config().reclaim_low_watermark);
  // Conservation: reclaim moved data, it never lost it.
  for (flash::Lpn lpn = 0; lpn < zns.logical_pages(); ++lpn) {
    EXPECT_TRUE(zns.translate(lpn).has_value()) << "lpn " << lpn;
  }
  zns.check_invariants();
}

TEST(Zns, RetireZoneGoesOfflineAndPreservesData) {
  // Retirement shrinks the healthy-zone pool, so the exactly-feasible
  // default geometry has no zone to spare; raise overprovision to make room
  // for one casualty (8 logical + 2 append + 4 watermark + 1 <= 15).
  auto config = small_zns();
  config.overprovision = 0.5;
  ZnsDevice zns(config);
  const std::uint64_t zone = 5;
  for (std::uint32_t i = 0; i < 6; ++i) zns.zone_append(zone, i);
  zns.retire_zone(zone);
  EXPECT_EQ(zns.zone_state(zone), ZoneState::Offline);
  EXPECT_EQ(zns.stats().zones_retired, 1u);
  for (std::uint32_t i = 0; i < 6; ++i) {
    ASSERT_TRUE(zns.translate(i).has_value());
    EXPECT_NE(*zns.translate(i) / zns.zone_pages(), zone)
        << "live page left on a retired zone";
  }
  EXPECT_THROW(zns.zone_append(zone, 0), Error);
  EXPECT_THROW(zns.open_zone(zone), Error);
  zns.retire_zone(zone);  // idempotent
  EXPECT_EQ(zns.stats().zones_retired, 1u);
  zns.check_invariants();
}

TEST(Zns, RecordMetricsExportsZnsPrefix) {
  ZnsDevice zns(small_zns());
  Rng rng(7);
  for (int i = 0; i < 500; ++i) {
    zns.write(rng.uniform_u64(0, zns.logical_pages() - 1));
  }
  obs::MetricsRegistry registry;
  zns.record_metrics(registry);
  EXPECT_EQ(registry.counter_value("zns.host_appends"),
            zns.stats().host_appends);
  ASSERT_NE(registry.find_gauge("zns.free_zones"), nullptr);
  EXPECT_DOUBLE_EQ(registry.find_gauge("zns.free_zones")->value,
                   static_cast<double>(zns.free_zones()));
  ASSERT_NE(registry.find_gauge("zns.wa"), nullptr);
  EXPECT_GE(registry.find_gauge("zns.wa")->value, 1.0);
}

// The structural claim behind the backend split (ZCSD): the ZNS mapping is
// the append order, so an identical write-only workload programs strictly
// fewer metadata pages on ZNS (checkpoint folds only) than on the FTL
// (which journals every mapping update).
TEST(Zns, WritesJournalLessMetadataThanFtl) {
  auto zconfig = small_zns(/*journal=*/true);
  flash::FtlConfig fconfig;
  fconfig.geometry = zconfig.geometry;
  fconfig.overprovision = zconfig.overprovision;
  fconfig.journal.enabled = true;
  flash::Ftl ftl(fconfig);
  ZnsDevice zns(zconfig);

  const std::uint64_t span = std::min(ftl.logical_pages(),
                                      zns.logical_pages());
  Rng rng(0x5eedULL);
  for (int i = 0; i < 800; ++i) {
    const flash::Lpn lpn = rng.uniform_u64(0, span - 1);
    ftl.write(lpn);
    zns.write(lpn);
  }
  EXPECT_GT(ftl.counters().meta_pages, 0u);
  EXPECT_LT(zns.counters().meta_pages, ftl.counters().meta_pages);
  ftl.check_invariants();
  zns.check_invariants();
}

TEST(Zns, PowerLossRequiresJournal) {
  ZnsDevice zns(small_zns(/*journal=*/false));
  EXPECT_THROW(zns.power_loss(), Error);
}

TEST(Zns, RecoveryPreservesEveryDurableMapping) {
  ZnsDevice zns(small_zns(/*journal=*/true));
  Rng rng(0xabcdULL);
  for (int i = 0; i < 700; ++i) {
    zns.write(rng.uniform_u64(0, zns.logical_pages() - 1));
  }
  std::set<flash::Lpn> mapped_before;
  for (flash::Lpn lpn = 0; lpn < zns.logical_pages(); ++lpn) {
    if (zns.translate(lpn)) mapped_before.insert(lpn);
  }

  const auto crash = zns.power_loss();
  EXPECT_EQ(crash.lost_trims, 0u);  // write-only: nothing buffered to lose
  EXPECT_FALSE(zns.mounted());
  EXPECT_THROW(zns.write(0), Error);  // unmounted device rejects IO
  const auto rec = zns.recover();
  EXPECT_TRUE(zns.mounted());
  EXPECT_EQ(rec.mappings_recovered, mapped_before.size());
  EXPECT_GT(rec.media_reads(), 0u);

  // Every append is durable via its OOB stamp: the recovered mapping set is
  // exactly the pre-crash set (placements may differ; occupancy may not).
  std::set<flash::Lpn> mapped_after;
  for (flash::Lpn lpn = 0; lpn < zns.logical_pages(); ++lpn) {
    if (zns.translate(lpn)) mapped_after.insert(lpn);
  }
  EXPECT_EQ(mapped_before, mapped_after);
  EXPECT_EQ(zns.stats().recoveries, 1u);
  zns.check_invariants();
}

TEST(Zns, DurablyJournaledTrimsStayTrimmedAcrossCrash) {
  auto config = small_zns(/*journal=*/true);
  ZnsDevice zns(config);
  // 64-byte pages / 16-byte entries: 4 trims fill and program one journal
  // page, making those trims durable.
  for (flash::Lpn lpn = 0; lpn < 8; ++lpn) zns.write(lpn);
  for (flash::Lpn lpn = 0; lpn < 4; ++lpn) zns.trim(lpn);
  EXPECT_GT(zns.counters().meta_pages, 0u);

  zns.power_loss();
  zns.recover();
  for (flash::Lpn lpn = 0; lpn < 4; ++lpn) {
    EXPECT_FALSE(zns.translate(lpn).has_value())
        << "durably journaled trim of lpn " << lpn << " resurrected";
  }
  for (flash::Lpn lpn = 4; lpn < 8; ++lpn) {
    EXPECT_TRUE(zns.translate(lpn).has_value());
  }
  zns.check_invariants();
}

/// Digest of the logical occupancy map — which lpns currently translate.
/// Physical placement legitimately differs across crash/recover (zones are
/// re-opened, reclaim interleaves differently), but with a write-only
/// workload the set of mapped logical pages must not depend on where (or
/// whether) a crash happened.
std::uint64_t occupancy_digest(const ZnsDevice& zns) {
  std::uint64_t h = kFnvOffset;
  for (flash::Lpn lpn = 0; lpn < zns.logical_pages(); ++lpn) {
    h = fnv1a(h, zns.translate(lpn).has_value() ? 1u : 0u);
  }
  return h;
}

// The acceptance sweep: one fixed write-only workload, a crash injected at
// >= 50 distinct points, and the post-workload digest must equal the
// no-crash reference at every point.  (Write-only because buffered trims
// are legitimately lost to a crash — the fault model documents the
// resurrection — so trims would make the final state crash-point
// dependent by design.)
TEST(Zns, CrashPointSweepMatchesNoCrashDigest) {
  const auto config = small_zns(/*journal=*/true);
  constexpr int kOps = 300;
  constexpr int kPoints = 50;

  std::vector<flash::Lpn> ops;
  {
    Rng rng(0xc0ffeeULL);
    ZnsDevice probe(config);
    for (int i = 0; i < kOps; ++i) {
      ops.push_back(rng.uniform_u64(0, probe.logical_pages() - 1));
    }
  }

  std::uint64_t reference = 0;
  {
    ZnsDevice zns(config);
    for (const auto lpn : ops) zns.write(lpn);
    reference = occupancy_digest(zns);
  }

  for (int point = 0; point < kPoints; ++point) {
    const int crash_after = 2 + point * 5;  // 2, 7, ..., 247 — all < kOps
    ZnsDevice zns(config);
    for (int i = 0; i < crash_after; ++i) zns.write(ops[i]);
    zns.power_loss();
    zns.recover();
    for (int i = crash_after; i < kOps; ++i) zns.write(ops[i]);
    zns.check_invariants();
    EXPECT_EQ(occupancy_digest(zns), reference)
        << "crash after op " << crash_after << " diverged";
  }
}

// Churn/crash/remount cycles under a mixed write+trim workload, mirroring
// flash_test's FtlCrashChurn: after every remount the device passes its
// full invariant check and keeps serving the workload.
class ZnsCrashChurn : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ZnsCrashChurn, RemountsStayConsistent) {
  ZnsDevice zns(small_zns(/*journal=*/true));
  Rng rng(GetParam());
  for (int cycle = 0; cycle < 3; ++cycle) {
    for (int i = 0; i < 400; ++i) {
      const flash::Lpn lpn = rng.uniform_u64(0, zns.logical_pages() - 1);
      if (rng.next_double() < 0.2) {
        zns.trim(lpn);
      } else {
        zns.write(lpn);
      }
    }
    zns.check_invariants();
    zns.power_loss();
    const auto rec = zns.recover();
    EXPECT_GT(rec.mappings_recovered, 0u);
    // The device is immediately writable again at full capacity.
    zns.write(0);
    ASSERT_TRUE(zns.translate(0).has_value());
  }
  EXPECT_EQ(zns.stats().recoveries, 3u);
  zns.check_invariants();
}

INSTANTIATE_TEST_SUITE_P(Seeds, ZnsCrashChurn,
                         ::testing::Values(3, 19, 31, 47, 71));

// ---------------------------------------------------------------------------
// Extent (span) data plane: the batched ops must be bit-for-bit the scalar
// loops, through zone fills, implicit opens, reclaim and crash/remount.

struct SpanOp {
  bool is_trim = false;
  flash::Lpn first = 0;
  std::uint64_t count = 0;
};

std::vector<SpanOp> random_span_ops(std::uint64_t seed, std::uint64_t logical,
                                    int n, double trim_share) {
  Rng rng(seed);
  std::vector<SpanOp> ops;
  ops.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    SpanOp op;
    op.first = rng.uniform_u64(0, logical - 1);
    op.count =
        rng.uniform_u64(1, std::min<std::uint64_t>(24, logical - op.first));
    op.is_trim = rng.next_double() < trim_share;
    ops.push_back(op);
  }
  return ops;
}

void apply_scalar(flash::StorageBackend& dev, const SpanOp& op) {
  for (std::uint64_t i = 0; i < op.count; ++i) {
    if (op.is_trim) {
      dev.trim(op.first + i);
    } else {
      dev.write(op.first + i);
    }
  }
}

void apply_span(flash::StorageBackend& dev, const SpanOp& op) {
  if (op.is_trim) {
    dev.trim_span(op.first, op.count);
  } else {
    dev.write_span(op.first, op.count);
  }
}

void expect_identical(const ZnsDevice& scalar, const ZnsDevice& span) {
  ASSERT_EQ(scalar.logical_pages(), span.logical_pages());
  for (flash::Lpn lpn = 0; lpn < scalar.logical_pages(); ++lpn) {
    ASSERT_EQ(scalar.translate(lpn), span.translate(lpn))
        << "mapping diverged at lpn " << lpn;
  }
  for (std::uint64_t z = 0; z < scalar.zone_count(); ++z) {
    EXPECT_EQ(scalar.zone_state(z), span.zone_state(z)) << "zone " << z;
    EXPECT_EQ(scalar.write_pointer(z), span.write_pointer(z)) << "zone " << z;
    EXPECT_EQ(scalar.live_pages(z), span.live_pages(z)) << "zone " << z;
  }
  const auto& a = scalar.stats();
  const auto& b = span.stats();
  EXPECT_EQ(a.host_appends, b.host_appends);
  EXPECT_EQ(a.reclaim_copies, b.reclaim_copies);
  EXPECT_EQ(a.meta_appends, b.meta_appends);
  EXPECT_EQ(a.zone_resets, b.zone_resets);
  EXPECT_EQ(a.erases, b.erases);
  EXPECT_EQ(a.reclaim_invocations, b.reclaim_invocations);
  EXPECT_EQ(a.checkpoint_folds, b.checkpoint_folds);
  EXPECT_EQ(a.implicit_closes, b.implicit_closes);
  EXPECT_EQ(a.zones_retired, b.zones_retired);
  EXPECT_EQ(a.recoveries, b.recoveries);
  EXPECT_DOUBLE_EQ(a.write_amplification(), b.write_amplification());
  EXPECT_EQ(scalar.open_zones(), span.open_zones());
  EXPECT_EQ(scalar.free_zones(), span.free_zones());
  scalar.check_invariants();
  span.check_invariants();
  scalar.check_invariants_incremental();
  span.check_invariants_incremental();
}

// Mixed write/trim extents through zone fills and watermark reclaim: the
// reclaim invocation count must match exactly, including the per-append
// invocations of the scalar path in the at-watermark regime.
class ZnsSpanDiff : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ZnsSpanDiff, SpanOpsMatchScalarOpsExactly) {
  ZnsDevice scalar(small_zns(/*journal=*/true));
  ZnsDevice span(small_zns(/*journal=*/true));
  const auto ops =
      random_span_ops(GetParam(), scalar.logical_pages(), 400, 0.15);
  for (const auto& op : ops) {
    apply_scalar(scalar, op);
    apply_span(span, op);
  }
  EXPECT_GT(span.stats().reclaim_invocations, 0u)
      << "workload too light to exercise the watermark fallback";
  expect_identical(scalar, span);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ZnsSpanDiff,
                         ::testing::Values(5, 17, 43, 61, 89));

// The acceptance sweep on the span path: >= 50 crash points in a
// span-driven workload, each compared against a scalar twin crash-driven at
// the same point — recovery counters, stats, zone table and mapping all
// bit-for-bit equal.
TEST(ZnsSpanCrash, FiftyPointSweepMatchesScalarTwin) {
  constexpr int kPoints = 50;
  std::vector<SpanOp> ops;
  {
    const ZnsDevice probe(small_zns(/*journal=*/true));
    ops = random_span_ops(0xfeedULL, probe.logical_pages(), 120, 0.1);
  }
  for (int point = 0; point < kPoints; ++point) {
    const std::size_t crash_after = 2 + static_cast<std::size_t>(point) * 2;
    ASSERT_LT(crash_after, ops.size());
    ZnsDevice scalar(small_zns(/*journal=*/true));
    ZnsDevice span(small_zns(/*journal=*/true));
    for (std::size_t i = 0; i < crash_after; ++i) {
      apply_scalar(scalar, ops[i]);
      apply_span(span, ops[i]);
    }
    const auto crash_a = scalar.power_loss();
    const auto crash_b = span.power_loss();
    EXPECT_EQ(crash_a.lost_tail_updates, crash_b.lost_tail_updates);
    EXPECT_EQ(crash_a.lost_trims, crash_b.lost_trims);
    const auto rec_a = scalar.recover();
    const auto rec_b = span.recover();
    EXPECT_EQ(rec_a.checkpoint_pages_read, rec_b.checkpoint_pages_read);
    EXPECT_EQ(rec_a.journal_pages_read, rec_b.journal_pages_read);
    EXPECT_EQ(rec_a.journal_entries_replayed, rec_b.journal_entries_replayed);
    EXPECT_EQ(rec_a.blocks_scanned, rec_b.blocks_scanned);
    EXPECT_EQ(rec_a.pages_scanned, rec_b.pages_scanned);
    EXPECT_EQ(rec_a.mappings_recovered, rec_b.mappings_recovered);
    EXPECT_EQ(rec_a.tail_updates_rescued, rec_b.tail_updates_rescued);
    EXPECT_EQ(rec_a.stale_mappings_dropped, rec_b.stale_mappings_dropped);
    for (std::size_t i = crash_after; i < ops.size(); ++i) {
      apply_scalar(scalar, ops[i]);
      apply_span(span, ops[i]);
    }
    expect_identical(scalar, span);
  }
}

// The incremental remount check (default) and the exhaustive sweep agree:
// same recovery outcome and both checkers pass at every remount.
TEST(ZnsSpanCrash, IncrementalAndExhaustiveRemountVerifyAgree) {
  auto exhaustive_config = small_zns(/*journal=*/true);
  exhaustive_config.exhaustive_remount_verify = true;
  ZnsDevice incremental(small_zns(/*journal=*/true));
  ZnsDevice exhaustive(exhaustive_config);
  const auto ops =
      random_span_ops(0xabcdULL, incremental.logical_pages(), 150, 0.2);
  std::size_t cursor = 0;
  for (int cycle = 0; cycle < 3; ++cycle) {
    for (std::size_t i = 0; i < 40; ++i, ++cursor) {
      apply_span(incremental, ops[cursor % ops.size()]);
      apply_span(exhaustive, ops[cursor % ops.size()]);
    }
    incremental.power_loss();
    exhaustive.power_loss();
    const auto rec_a = incremental.recover();
    const auto rec_b = exhaustive.recover();
    EXPECT_EQ(rec_a.mappings_recovered, rec_b.mappings_recovered);
    EXPECT_EQ(rec_a.pages_scanned, rec_b.pages_scanned);
    incremental.check_invariants();
    incremental.check_invariants_incremental();
    exhaustive.check_invariants();
    exhaustive.check_invariants_incremental();
  }
  expect_identical(incremental, exhaustive);
}

TEST(ZnsSpan, ReadSpanMatchesTranslateLoop) {
  ZnsDevice zns(small_zns());
  for (flash::Lpn lpn = 10; lpn < 40; ++lpn) zns.write(lpn);
  zns.trim(15);
  zns.trim(33);
  std::vector<flash::Ppn> collected;
  const auto mapped = zns.read_span(0, zns.logical_pages(), &collected);
  std::vector<flash::Ppn> expected;
  for (flash::Lpn lpn = 0; lpn < zns.logical_pages(); ++lpn) {
    if (const auto ppn = zns.translate(lpn)) expected.push_back(*ppn);
  }
  EXPECT_EQ(mapped, expected.size());
  EXPECT_EQ(collected, expected);
  EXPECT_EQ(zns.read_span(0, zns.logical_pages(), nullptr), mapped);
}

TEST(ZnsSpan, RejectsOutOfRangeExtents) {
  ZnsDevice zns(small_zns());
  EXPECT_THROW(zns.write_span(zns.logical_pages() - 2, 5), Error);
  EXPECT_THROW(zns.trim_span(zns.logical_pages(), 1), Error);
  EXPECT_THROW(
      static_cast<void>(zns.read_span(0, zns.logical_pages() + 1, nullptr)),
      Error);
  EXPECT_NO_THROW(zns.write_span(zns.logical_pages(), 0));
  zns.check_invariants();
}

}  // namespace
}  // namespace isp::zns
