// Unit tests: complexity basis, cost models, program structure, sampling.
#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"
#include "ir/complexity.hpp"
#include "ir/cost_model.hpp"
#include "ir/plan.hpp"
#include "ir/program.hpp"

namespace isp::ir {
namespace {

TEST(Complexity, BasisValues) {
  EXPECT_DOUBLE_EQ(basis(ComplexityClass::O1, 100.0), 1.0);
  EXPECT_DOUBLE_EQ(basis(ComplexityClass::ON, 100.0), 100.0);
  EXPECT_DOUBLE_EQ(basis(ComplexityClass::ON2, 100.0), 10000.0);
  EXPECT_DOUBLE_EQ(basis(ComplexityClass::ON3, 10.0), 1000.0);
  EXPECT_NEAR(basis(ComplexityClass::ONLogN, 1023.0),
              1023.0 * std::log2(1024.0), 1e-9);
  // Degenerate inputs clamp to n=1.
  EXPECT_DOUBLE_EQ(basis(ComplexityClass::ON, 0.5), 1.0);
}

TEST(Complexity, Names) {
  EXPECT_EQ(to_string(ComplexityClass::O1), "O(1)");
  EXPECT_EQ(to_string(ComplexityClass::ONLogN), "O(n log n)");
  EXPECT_EQ(kAllComplexityClasses.size(), 5u);
}

TEST(CostModel, LinearGrowth) {
  CostModel model;
  model.base_cycles = 100.0;
  model.cycles_per_elem = 2.0;
  model.jitter = 0.0;
  EXPECT_DOUBLE_EQ(model.cycles_for(1000.0).value(), 100.0 + 2000.0);
  EXPECT_DOUBLE_EQ(model.instructions_for(1000.0), 2100.0 * model.host_ipc);
}

TEST(CostModel, PowerLaw) {
  CostModel model;
  model.base_cycles = 0.0;
  model.cycles_per_elem = 1.0;
  model.exponent = 1.5;
  model.jitter = 0.0;
  EXPECT_NEAR(model.cycles_for(100.0).value(), 1000.0, 1e-9);
}

TEST(CostModel, JitterBoundedAndDeterministic) {
  CostModel model;
  model.base_cycles = 0.0;
  model.cycles_per_elem = 1.0;
  model.jitter = 0.05;
  model.jitter_seed = 77;
  const double clean = 1e6;
  const double a = model.cycles_for(1e6).value();
  const double b = model.cycles_for(1e6).value();
  EXPECT_EQ(a, b);  // deterministic for a given (n, seed)
  EXPECT_GE(a, clean * 0.95);
  EXPECT_LE(a, clean * 1.05);
  // Different seeds perturb differently.
  CostModel other = model;
  other.jitter_seed = 78;
  EXPECT_NE(other.cycles_for(1e6).value(), a);
}

TEST(CostModel, RejectsNegativeCount) {
  CostModel model;
  EXPECT_THROW(static_cast<void>(model.cycles_for(-1.0)), Error);
}

Program tiny_program() {
  Program program("tiny", 16.0);
  Dataset d;
  d.object.name = "input";
  d.object.location = mem::Location::Storage;
  d.object.virtual_bytes = Bytes{16 * 1024};
  d.object.physical.resize_elems<float>(256);
  d.elem_bytes = sizeof(float);
  program.add_dataset(std::move(d));

  CodeRegion line;
  line.name = "out = f(input)";
  line.inputs = {"input"};
  line.outputs = {"out"};
  line.elem_bytes = sizeof(float);
  line.kernel = [](KernelCtx& ctx) {
    const auto in = ctx.input(0).physical.as<float>();
    auto& out = ctx.output(0);
    out.physical.resize_elems<float>(in.size() / 2);
    auto dst = out.physical.as<float>();
    for (std::size_t i = 0; i < dst.size(); ++i) dst[i] = in[2 * i];
  };
  program.add_line(std::move(line));
  return program;
}

TEST(Program, ValidatePasses) {
  const auto program = tiny_program();
  EXPECT_NO_THROW(program.validate());
  EXPECT_EQ(program.line_count(), 1u);
  EXPECT_EQ(program.total_storage_bytes().count(), 16u * 1024u);
}

TEST(Program, ValidateCatchesUnknownInput) {
  auto program = tiny_program();
  CodeRegion bad;
  bad.name = "bad";
  bad.inputs = {"nonexistent"};
  bad.outputs = {"y"};
  program.add_line(std::move(bad));
  EXPECT_THROW(program.validate(), Error);
}

TEST(Program, ValidateCatchesDuplicateOutput) {
  auto program = tiny_program();
  CodeRegion bad;
  bad.name = "bad";
  bad.inputs = {"input"};
  bad.outputs = {"out"};  // already produced by line 0
  program.add_line(std::move(bad));
  EXPECT_THROW(program.validate(), Error);
}

TEST(Program, ValidateCatchesDuplicateLineName) {
  auto program = tiny_program();
  CodeRegion dup;
  dup.name = "out = f(input)";
  dup.inputs = {"out"};
  dup.outputs = {"z"};
  program.add_line(std::move(dup));
  EXPECT_THROW(program.validate(), Error);
}

TEST(Program, StoreHoldsDatasets) {
  const auto program = tiny_program();
  auto store = program.make_store();
  EXPECT_TRUE(store.contains("input"));
  EXPECT_FALSE(store.contains("out"));
  EXPECT_EQ(store.at("input").physical.size_as<float>(), 256u);
}

TEST(Program, SampledStoreScalesBothSizes) {
  const auto program = tiny_program();
  auto store = program.make_sampled_store(0.25);
  const auto& obj = store.at("input");
  EXPECT_EQ(obj.virtual_bytes.count(), 4u * 1024u);
  EXPECT_EQ(obj.physical.size_as<float>(), 64u);
}

TEST(Program, SampledStoreKeepsAtLeastOneElement) {
  const auto program = tiny_program();
  auto store = program.make_sampled_store(1.0 / 100000.0);
  EXPECT_GE(store.at("input").physical.size_as<float>(), 1u);
}

TEST(Program, PrefixSamplePreservesLeadingData) {
  const auto program = tiny_program();
  auto full = program.make_store();
  auto full_view = full.at("input").physical.as<float>();
  full_view[0] = 42.0F;  // mutate the copy, not the program

  const auto sampled =
      prefix_sample(full.at("input"), 0.5, sizeof(float));
  EXPECT_DOUBLE_EQ(sampled.physical.as<float>()[0], 42.0F);
  EXPECT_EQ(sampled.physical.size_as<float>(), 128u);
}

TEST(Program, CustomSamplerIsUsed) {
  auto program = tiny_program();
  Dataset model;
  model.object.name = "model";
  model.object.location = mem::Location::HostDram;
  model.object.virtual_bytes = Bytes{100};
  model.object.physical.resize_elems<std::byte>(100);
  model.sampler = [](const mem::DataObject& whole, double) { return whole; };
  program.add_dataset(std::move(model));

  auto store = program.make_sampled_store(0.01);
  EXPECT_EQ(store.at("model").physical.size_bytes(), 100u);
}

TEST(Program, KernelProducesOutput) {
  const auto program = tiny_program();
  auto store = program.make_store();
  KernelCtx ctx(store, program.lines()[0].inputs, program.lines()[0].outputs,
                program.virtual_scale());
  program.lines()[0].kernel(ctx);
  EXPECT_TRUE(store.contains("out"));
  EXPECT_EQ(store.at("out").physical.size_as<float>(), 128u);
}

TEST(Plan, Helpers) {
  auto plan = Plan::host_only(4);
  EXPECT_EQ(plan.size(), 4u);
  EXPECT_FALSE(plan.any_on_csd());
  plan.placement[2] = Placement::Csd;
  EXPECT_TRUE(plan.any_on_csd());
  EXPECT_EQ(plan.csd_line_count(), 1u);
  EXPECT_EQ(to_string(Placement::Csd), "csd");
  EXPECT_EQ(to_string(Placement::Host), "host");
}

TEST(Program, RejectsBadConstruction) {
  EXPECT_THROW(Program("x", 0.5), Error);  // scale must be >= 1
  Program program("x", 2.0);
  CodeRegion line;
  line.name = "";
  EXPECT_THROW(program.add_line(std::move(line)), Error);
  CodeRegion zero_elem;
  zero_elem.name = "z";
  zero_elem.elem_bytes = 0.0;
  EXPECT_THROW(program.add_line(std::move(zero_elem)), Error);
}

}  // namespace
}  // namespace isp::ir
