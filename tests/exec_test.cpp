// Tests for the deterministic parallel sweep executor (src/exec).
//
// The contract under test is the one every harness leans on:
//   * run_batch collects results in submission order, regardless of which
//     worker ran which index when;
//   * the same batch produces byte-identical results at any job count and
//     across repeated runs — parallelism is a pure wall-clock optimisation;
//   * a throwing task never leaks a worker thread, and the lowest-index
//     exception is the one rethrown (again independent of thread timing).
#include <gtest/gtest.h>

#include <array>
#include <atomic>
#include <cstdint>
#include <fstream>
#include <numeric>
#include <stdexcept>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "exec/cli.hpp"
#include "exec/pool.hpp"

namespace isp::exec {
namespace {

/// Live thread count of this process (Linux /proc; -1 if unavailable).
int live_threads() {
#ifdef __linux__
  std::ifstream status("/proc/self/status");
  std::string line;
  while (std::getline(status, line)) {
    if (line.rfind("Threads:", 0) == 0) {
      return std::atoi(line.c_str() + 8);
    }
  }
#endif
  return -1;
}

/// A deterministic, seed-derived payload heavy enough that tasks overlap
/// when run in parallel: every task owns its RNG, nothing is shared.
std::vector<std::uint64_t> task_payload(std::size_t index) {
  Rng rng(1000 + index);
  std::vector<std::uint64_t> out(64);
  for (auto& v : out) v = rng.uniform_u64(0, 1'000'000);
  return out;
}

TEST(RunBatch, EmptyBatchIsEmpty) {
  int calls = 0;
  const auto results = run_batch(
      std::size_t{0}, [&](std::size_t) { ++calls; return 1; }, 8);
  EXPECT_TRUE(results.empty());
  EXPECT_EQ(calls, 0);
}

TEST(RunBatch, ResultsLandInSubmissionOrder) {
  struct Tagged {
    std::size_t index = 0;
    std::uint64_t value = 0;
  };
  for (const unsigned jobs : {1U, 2U, 8U}) {
    SCOPED_TRACE("jobs " + std::to_string(jobs));
    const auto results = run_batch(
        std::size_t{37},
        [](std::size_t i) {
          return Tagged{i, task_payload(i).front()};
        },
        jobs);
    ASSERT_EQ(results.size(), 37u);
    for (std::size_t i = 0; i < results.size(); ++i) {
      EXPECT_EQ(results[i].index, i);
      EXPECT_EQ(results[i].value, task_payload(i).front());
    }
  }
}

TEST(RunBatch, ByteIdenticalAcrossJobCountsAndRuns) {
  struct Payload {
    std::vector<std::uint64_t> values;
  };
  const auto run = [](unsigned jobs) {
    return run_batch(
        std::size_t{48},
        [](std::size_t i) { return Payload{task_payload(i)}; }, jobs);
  };
  const auto serial = run(1);
  for (const unsigned jobs : {2U, 8U}) {
    SCOPED_TRACE("jobs " + std::to_string(jobs));
    const auto parallel = run(jobs);
    ASSERT_EQ(parallel.size(), serial.size());
    for (std::size_t i = 0; i < serial.size(); ++i) {
      EXPECT_EQ(parallel[i].values, serial[i].values);
    }
  }
  // Two runs at the same job count: also identical (no run-to-run drift).
  const auto again = run(8);
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(again[i].values, serial[i].values);
  }
}

TEST(RunBatch, ConfigOverloadPreservesConfigOrder) {
  const std::vector<int> configs = {5, 3, 11, 7};
  const auto results = run_batch(
      configs, [](const int& c) { return c * 10; }, 4);
  EXPECT_EQ(results, (std::vector<int>{50, 30, 110, 70}));
}

TEST(RunBatch, LowestIndexExceptionRethrown) {
  for (const unsigned jobs : {1U, 2U, 8U}) {
    SCOPED_TRACE("jobs " + std::to_string(jobs));
    try {
      run_batch(
          std::size_t{16},
          [](std::size_t i) -> int {
            if (i == 3) throw std::runtime_error("boom at 3");
            if (i == 11) throw std::runtime_error("boom at 11");
            return static_cast<int>(i);
          },
          jobs);
      FAIL() << "expected a rethrow";
    } catch (const std::runtime_error& e) {
      EXPECT_STREQ(e.what(), "boom at 3");
    }
  }
}

TEST(RunBatch, ThrowingTasksLeakNoThreads) {
  const int before = live_threads();
  if (before < 0) GTEST_SKIP() << "/proc/self/status unavailable";
  for (int round = 0; round < 3; ++round) {
    EXPECT_THROW(run_batch(
                     std::size_t{32},
                     [](std::size_t i) -> int {
                       if (i % 5 == 0) throw std::runtime_error("die");
                       return static_cast<int>(i);
                     },
                     8),
                 std::runtime_error);
  }
  // Every Pool destructor joined its workers before the rethrow reached us.
  EXPECT_EQ(live_threads(), before);
}

TEST(RunBatch, RemainingTasksStillRunAfterAnExceptionElsewhere) {
  std::atomic<int> completed{0};
  EXPECT_THROW(run_batch(
                   std::size_t{24},
                   [&](std::size_t i) -> int {
                     if (i == 0) throw std::runtime_error("first dies");
                     completed.fetch_add(1, std::memory_order_relaxed);
                     return static_cast<int>(i);
                   },
                   4),
               std::runtime_error);
  // The batch settles before rethrowing: every non-throwing task ran.
  EXPECT_EQ(completed.load(), 23);
}

TEST(Pool, ReusableAcrossBatchesIncludingAfterException) {
  Pool pool(4);
  EXPECT_EQ(pool.workers(), 4u);
  std::vector<int> out(8, 0);
  pool.parallel_for(8, [&](std::size_t i) { out[i] = static_cast<int>(i); });
  EXPECT_EQ(std::accumulate(out.begin(), out.end(), 0), 28);

  EXPECT_THROW(
      pool.parallel_for(4, [](std::size_t) { throw std::runtime_error("x"); }),
      std::runtime_error);

  // The pool survives a throwing batch and keeps scheduling.
  std::vector<int> out2(16, 0);
  pool.parallel_for(16, [&](std::size_t i) { out2[i] = 1; });
  EXPECT_EQ(std::accumulate(out2.begin(), out2.end(), 0), 16);
}

TEST(Pool, RapidReuseWithStragglersIsRaceFree) {
  // Regression for a cross-batch race: parallel_for returns as soon as
  // remaining_ hits zero, but a worker that ran the last task can still be
  // scanning the deques before it re-parks.  Back-to-back tiny batches make
  // that straggler window likely, so under TSan this test flags any
  // unlocked dealing against a concurrent pop or a stale task_ read.
  Pool pool(4);
  std::uint64_t checksum = 0;
  for (int batch = 0; batch < 200; ++batch) {
    std::array<std::uint64_t, 8> out{};
    pool.parallel_for(out.size(), [&](std::size_t i) {
      out[i] = static_cast<std::uint64_t>(batch) * 100 + i;
    });
    for (const std::uint64_t v : out) checksum += v;
  }
  // sum over batches b of (800*b + 28)
  EXPECT_EQ(checksum, 800ull * (199ull * 200ull / 2ull) + 28ull * 200ull);
}

TEST(Pool, DefaultJobsIsAtLeastOne) { EXPECT_GE(default_jobs(), 1u); }

TEST(Cli, JobsFromArgsParsesBothSpellings) {
  const char* argv_sep[] = {"prog", "--jobs", "3"};
  EXPECT_EQ(jobs_from_args(3, const_cast<char**>(argv_sep)), 3u);
  const char* argv_eq[] = {"prog", "--jobs=5"};
  EXPECT_EQ(jobs_from_args(2, const_cast<char**>(argv_eq)), 5u);
  const char* argv_none[] = {"prog", "--other"};
  EXPECT_EQ(jobs_from_args(2, const_cast<char**>(argv_none)), default_jobs());
}

TEST(Cli, ParseKillSpecAcceptsWellFormedSpecs) {
  const auto a = parse_kill_spec("3@1.5");
  ASSERT_TRUE(a.has_value());
  EXPECT_EQ(a->device, 3u);
  EXPECT_DOUBLE_EQ(a->at, 1.5);

  const auto b = parse_kill_spec("0@0");
  ASSERT_TRUE(b.has_value());
  EXPECT_EQ(b->device, 0u);
  EXPECT_DOUBLE_EQ(b->at, 0.0);

  const auto c = parse_kill_spec("12@2.5e1");
  ASSERT_TRUE(c.has_value());
  EXPECT_EQ(c->device, 12u);
  EXPECT_DOUBLE_EQ(c->at, 25.0);
}

TEST(Cli, ParseKillSpecRejectsEveryMalformedShape) {
  // Each of these must be a clean nullopt — never a partial parse, never a
  // zero-filled spec.
  const char* bad[] = {
      "",        // empty
      "@",       // nothing on either side
      "3@",      // missing time
      "@1.5",    // missing device
      "a@1",     // non-numeric device
      "1@x",     // non-numeric time
      "1@1@1",   // double separator
      "-1@1",    // negative device index
      "1@-2",    // negative time
      "1@inf",   // non-finite time
      "1@nan",   // non-finite time
      "3 @1",    // embedded whitespace
      "3@1.5s",  // trailing junk
      "3.5@1",   // fractional device index
  };
  for (const char* text : bad) {
    EXPECT_FALSE(parse_kill_spec(text).has_value()) << "\"" << text << "\"";
  }
  EXPECT_FALSE(parse_kill_spec(nullptr).has_value());
}

TEST(Cli, KillFlagsCollectsRepeatsInOrderAndBothSpellings) {
  const char* argv[] = {"prog", "--kill-device", "0@1.5", "--other",
                        "--kill-device=2@3"};
  const auto kills =
      kill_flags(5, const_cast<char**>(argv), "--kill-device");
  ASSERT_EQ(kills.size(), 2u);
  EXPECT_EQ(kills[0].device, 0u);
  EXPECT_DOUBLE_EQ(kills[0].at, 1.5);
  EXPECT_EQ(kills[1].device, 2u);
  EXPECT_DOUBLE_EQ(kills[1].at, 3.0);

  const char* argv_none[] = {"prog"};
  EXPECT_TRUE(
      kill_flags(1, const_cast<char**>(argv_none), "--kill-device").empty());
}

TEST(Cli, ParseOnOffAcceptsExactlyOnAndOff) {
  ASSERT_TRUE(parse_on_off("on").has_value());
  EXPECT_TRUE(*parse_on_off("on"));
  ASSERT_TRUE(parse_on_off("off").has_value());
  EXPECT_FALSE(*parse_on_off("off"));
}

TEST(Cli, ParseOnOffRejectsEveryMalformedShape) {
  const char* bad[] = {
      "",      // empty
      "On",    // no case folding
      "ON",    //
      "OFF",   //
      "true",  // no boolean aliases
      "false",  //
      "1",     // no numeric aliases
      "0",     //
      "yes",   //
      "no",    //
      " on",   // leading whitespace
      "on ",   // trailing whitespace
      "off2",  // trailing junk
  };
  for (const char* text : bad) {
    EXPECT_FALSE(parse_on_off(text).has_value()) << "\"" << text << "\"";
  }
  EXPECT_FALSE(parse_on_off(nullptr).has_value());
}

TEST(Cli, OnOffFlagParsesBothSpellingsAndFallsBack) {
  const char* argv[] = {"prog", "--plan-cache", "off", "--sim-cache=on"};
  EXPECT_FALSE(
      on_off_flag(4, const_cast<char**>(argv), "--plan-cache", true));
  EXPECT_TRUE(on_off_flag(4, const_cast<char**>(argv), "--sim-cache", false));
  // Absent flag: the fallback decides, whichever way it points.
  EXPECT_TRUE(on_off_flag(4, const_cast<char**>(argv), "--missing", true));
  EXPECT_FALSE(on_off_flag(4, const_cast<char**>(argv), "--missing", false));
}

TEST(Cli, SpanFlagParsesStrictlyAndDefaultsOn) {
  // The benches expose the storage data plane toggle as `--span on|off`
  // through on_off_flag, so it inherits the strict exit-2 grammar: both
  // spellings parse, anything else is rejected by parse_on_off.
  const char* argv[] = {"prog", "--span", "off"};
  EXPECT_FALSE(on_off_flag(3, const_cast<char**>(argv), "--span", true));
  const char* argv_eq[] = {"prog", "--span=on"};
  EXPECT_TRUE(on_off_flag(2, const_cast<char**>(argv_eq), "--span", false));
  // Absent: spans stay on, matching EngineOptions/ServeConfig defaults.
  const char* argv_none[] = {"prog"};
  EXPECT_TRUE(on_off_flag(1, const_cast<char**>(argv_none), "--span", true));
  const char* span_bad[] = {"On", "Off", "spans", "on,off", "enabled"};
  for (const char* text : span_bad) {
    EXPECT_FALSE(parse_on_off(text).has_value()) << "\"" << text << "\"";
  }
}

TEST(Cli, ParseEnumMatchesExactChoiceOnly) {
  const std::vector<const char*> choices = {"ftl", "zns", "mixed"};
  ASSERT_TRUE(parse_enum("ftl", choices).has_value());
  EXPECT_EQ(*parse_enum("ftl", choices), 0u);
  EXPECT_EQ(*parse_enum("zns", choices), 1u);
  EXPECT_EQ(*parse_enum("mixed", choices), 2u);
}

TEST(Cli, ParseEnumRejectsEveryMalformedShape) {
  const std::vector<const char*> choices = {"ftl", "zns", "mixed"};
  const char* bad[] = {
      "",       // empty
      "FTL",    // no case folding
      "Zns",    //
      "ft",     // no prefixes
      "ftlx",   // no trailing junk
      " ftl",   // leading whitespace
      "ftl ",   // trailing whitespace
      "mix",    // partial choice
      "random", // not a choice at all
  };
  for (const char* text : bad) {
    EXPECT_FALSE(parse_enum(text, choices).has_value())
        << "\"" << text << "\"";
  }
  EXPECT_FALSE(parse_enum(nullptr, choices).has_value());
}

TEST(Cli, EnumFlagParsesBothSpellingsAndFallsBack) {
  const std::vector<const char*> choices = {"ftl", "zns", "mixed"};
  const char* argv[] = {"prog", "--backend", "zns", "--other=mixed"};
  EXPECT_EQ(enum_flag(4, const_cast<char**>(argv), "--backend", choices, 0),
            1u);
  EXPECT_EQ(enum_flag(4, const_cast<char**>(argv), "--other", choices, 0),
            2u);
  // Absent flag: the fallback decides, whichever index it names.
  EXPECT_EQ(enum_flag(4, const_cast<char**>(argv), "--missing", choices, 0),
            0u);
  EXPECT_EQ(enum_flag(4, const_cast<char**>(argv), "--missing", choices, 2),
            2u);
}

}  // namespace
}  // namespace isp::exec
