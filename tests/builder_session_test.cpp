// Tests: the fluent ProgramBuilder and the plan-caching Session.
#include <gtest/gtest.h>

#include "baseline/baselines.hpp"
#include "ir/builder.hpp"
#include "runtime/session.hpp"

namespace isp {
namespace {

ir::Program build_wordcount() {
  return ir::ProgramBuilder("wordcount", 64.0)
      .storage_dataset("corpus", gigabytes(2.0), sizeof(std::uint32_t),
                       [](mem::Buffer& b, std::size_t bytes) {
                         b.resize_elems<std::uint32_t>(
                             bytes / sizeof(std::uint32_t));
                         Rng rng(5);
                         for (auto& w : b.as<std::uint32_t>()) {
                           w = static_cast<std::uint32_t>(
                               rng.zipf(50000, 0.9));
                         }
                       })
      .line("hits = match(corpus)")
      .reads("corpus")
      .writes("hits")
      .elem_bytes(sizeof(std::uint32_t))
      .cycles_per_elem(6.0)
      .csd_threads(6)
      .chunks(32)
      .kernel([](ir::KernelCtx& ctx) {
        const auto in = ctx.input(0).physical.as<std::uint32_t>();
        std::size_t kept = 0;
        for (const auto w : in) kept += (w < 100) ? 1 : 0;
        auto& out = ctx.output(0);
        out.physical.resize_elems<std::uint32_t>(kept > 0 ? kept : 1);
        auto dst = out.physical.as<std::uint32_t>();
        std::size_t i = 0;
        for (const auto w : in) {
          if (w < 100 && i < dst.size()) dst[i++] = w;
        }
      })
      .done()
      .line("counts = histogram(hits)")
      .reads("hits")
      .writes("counts")
      .elem_bytes(sizeof(std::uint32_t))
      .cycles_per_elem(4.0)
      .csd_threads(8)
      .kernel([](ir::KernelCtx& ctx) {
        const auto in = ctx.input(0).physical.as<std::uint32_t>();
        auto& out = ctx.output(0);
        out.physical.resize_elems<std::uint64_t>(100);
        auto dst = out.physical.as<std::uint64_t>();
        for (const auto w : in) {
          if (w < 100) ++dst[w];
        }
      })
      .done()
      .build();
}

TEST(ProgramBuilder, BuildsValidProgram) {
  const auto program = build_wordcount();
  EXPECT_EQ(program.name(), "wordcount");
  EXPECT_EQ(program.line_count(), 2u);
  EXPECT_NEAR(program.total_storage_bytes().as_double(), 2e9, 2e7);
  EXPECT_NO_THROW(program.validate());
}

TEST(ProgramBuilder, BuiltProgramRunsThroughThePipeline) {
  const auto program = build_wordcount();
  system::SystemModel system;
  const auto baseline = baseline::run_host_only(system, program);
  runtime::ActiveRuntime active(system);
  const auto result = active.run(program);
  EXPECT_GT(baseline.total.value() / result.end_to_end().value(), 1.0);
  EXPECT_GT(result.plan.csd_line_count(), 0u);
}

TEST(ProgramBuilder, RejectsLineWithoutOutput) {
  ir::ProgramBuilder builder("bad", 16.0);
  auto line = builder.line("dead end").reads("x");
  EXPECT_THROW(line.done(), Error);
}

TEST(ProgramBuilder, RejectsUnknownInputAtBuild) {
  EXPECT_THROW(ir::ProgramBuilder("bad", 16.0)
                   .line("y = f(ghost)")
                   .reads("ghost")
                   .writes("y")
                   .done()
                   .build(),
               Error);
}

TEST(ProgramBuilder, MemoryDatasetSurvivesSampling) {
  auto program =
      ir::ProgramBuilder("with-model", 16.0)
          .storage_dataset("data", Bytes{1 << 20}, 4,
                           [](mem::Buffer& b, std::size_t bytes) {
                             b.resize_elems<float>(bytes / 4);
                           })
          .memory_dataset("model", Bytes{4096}, 4,
                          [](mem::Buffer& b, std::size_t bytes) {
                            b.resize_elems<float>(bytes / 4);
                          })
          .line("out = apply(data, model)")
          .reads("data")
          .reads("model")
          .writes("out")
          .kernel([](ir::KernelCtx& ctx) {
            auto& out = ctx.output(0);
            out.physical.resize_elems<float>(1);
          })
          .done()
          .build();
  auto sampled = program.make_sampled_store(1.0 / 1024);
  EXPECT_EQ(sampled.at("model").physical.size_bytes(),
            program.make_store().at("model").physical.size_bytes());
  EXPECT_LT(sampled.at("data").physical.size_bytes(), 1u << 15);
}

TEST(Session, CachesPlansAcrossInstances) {
  const auto program = build_wordcount();
  system::SystemModel system;
  runtime::Session session(system);

  const auto first = session.run(program);
  EXPECT_GT(first.sampling_overhead.value(), 0.0);
  EXPECT_TRUE(session.has_plan("wordcount"));

  const auto second = session.run(program);
  EXPECT_DOUBLE_EQ(second.sampling_overhead.value(), 0.0);
  EXPECT_EQ(second.plan.placement, first.plan.placement);

  EXPECT_EQ(session.stats().runs, 2u);
  EXPECT_EQ(session.stats().sampled_runs, 1u);
  EXPECT_EQ(session.stats().cached_runs, 1u);
  EXPECT_LT(second.end_to_end().value(), first.end_to_end().value());
}

TEST(Session, MigrationInvalidatesThePlan) {
  const auto program = build_wordcount();
  system::SystemModel system;
  runtime::Session session(system);
  session.run(program);  // learn the plan
  ASSERT_TRUE(session.has_plan("wordcount"));

  // A heavily contended instance migrates; the session drops the plan.
  runtime::EngineOptions contended;
  contended.contention.enabled = true;
  contended.contention.at_csd_progress = 0.3;
  contended.contention.availability = 0.05;
  const auto stressed = session.run(program, &contended);
  if (stressed.report.migrations > 0) {
    EXPECT_FALSE(session.has_plan("wordcount"));
    EXPECT_GE(session.stats().invalidations, 1u);
    // The next run re-samples.
    const auto relearn = session.run(program);
    EXPECT_GT(relearn.sampling_overhead.value(), 0.0);
  }
}

TEST(Session, ManualInvalidation) {
  const auto program = build_wordcount();
  system::SystemModel system;
  runtime::Session session(system);
  session.run(program);
  session.invalidate("wordcount");
  EXPECT_FALSE(session.has_plan("wordcount"));
  EXPECT_EQ(session.stats().invalidations, 1u);
  session.invalidate("never-seen");  // no-op, no crash
  EXPECT_EQ(session.stats().invalidations, 1u);
}

}  // namespace
}  // namespace isp
