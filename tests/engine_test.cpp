// Unit tests: the execution engine, monitor, codegen/lowering and exec-mode
// overheads.
#include <gtest/gtest.h>

#include "baseline/baselines.hpp"
#include "codegen/lowering.hpp"
#include "runtime/engine.hpp"
#include "runtime/monitor.hpp"
#include "system/model.hpp"

namespace isp::runtime {
namespace {

/// A three-line program with a known shape: storage scan (reducing),
/// device-friendly transform, tiny host-friendly finish.
ir::Program pipeline_program() {
  ir::Program program("pipeline", 16.0);
  ir::Dataset d;
  d.object.name = "file";
  d.object.location = mem::Location::Storage;
  d.object.virtual_bytes = gigabytes(2.0);
  d.object.physical.resize_elems<float>(
      static_cast<std::size_t>(2e9 / 16.0 / sizeof(float)));
  d.elem_bytes = sizeof(float);
  program.add_dataset(std::move(d));

  ir::CodeRegion scan;
  scan.name = "hits = filter(file)";
  scan.inputs = {"file"};
  scan.outputs = {"hits"};
  scan.elem_bytes = sizeof(float);
  scan.cost.cycles_per_elem = 4.0;
  scan.cost.jitter = 0.0;
  scan.chunks = 16;
  scan.kernel = [](ir::KernelCtx& ctx) {
    const auto in = ctx.input(0).physical.as<float>();
    auto& out = ctx.output(0);
    out.physical.resize_elems<float>(in.size() / 10);
    auto dst = out.physical.as<float>();
    for (std::size_t i = 0; i < dst.size(); ++i) dst[i] = in[i] + 1.0F;
  };
  program.add_line(std::move(scan));

  ir::CodeRegion transform;
  transform.name = "scaled = scale(hits)";
  transform.inputs = {"hits"};
  transform.outputs = {"scaled"};
  transform.elem_bytes = sizeof(float);
  transform.cost.cycles_per_elem = 8.0;
  transform.cost.jitter = 0.0;
  transform.chunks = 16;
  transform.kernel = [](ir::KernelCtx& ctx) {
    const auto in = ctx.input(0).physical.as<float>();
    auto& out = ctx.output(0);
    out.physical.resize_elems<float>(in.size());
    auto dst = out.physical.as<float>();
    for (std::size_t i = 0; i < in.size(); ++i) dst[i] = in[i] * 2.0F;
  };
  program.add_line(std::move(transform));

  ir::CodeRegion finish;
  finish.name = "answer = sum(scaled)";
  finish.inputs = {"scaled"};
  finish.outputs = {"answer"};
  finish.elem_bytes = sizeof(float);
  finish.cost.cycles_per_elem = 1.0;
  finish.cost.jitter = 0.0;
  finish.chunks = 4;
  finish.kernel = [](ir::KernelCtx& ctx) {
    const auto in = ctx.input(0).physical.as<float>();
    double total = 0.0;
    for (const auto v : in) total += v;
    auto& out = ctx.output(0);
    out.physical.resize_elems<double>(1);
    out.physical.as<double>()[0] = total;
  };
  program.add_line(std::move(finish));
  return program;
}

EngineOptions quiet_options() {
  EngineOptions options;
  options.monitoring = false;
  options.migration = false;
  return options;
}

TEST(Engine, HostOnlyDecomposition) {
  system::SystemModel system;
  const auto program = pipeline_program();
  const auto plan = ir::Plan::host_only(3);
  const auto report = run_program(system, program, plan,
                                  codegen::ExecMode::NativeC, quiet_options());
  ASSERT_EQ(report.lines.size(), 3u);
  // Storage access: 2 GB at min(9, 5) GB/s = 0.4 s.
  EXPECT_NEAR(report.lines[0].access.value(), 0.4, 0.05);
  // Compute: 2e9/4 elems * 4 cycles / 3.6 GHz = 0.556 s.
  EXPECT_NEAR(report.lines[0].compute.value(), 0.556, 0.01);
  // Intermediates stay in host memory: no link transfer.
  EXPECT_DOUBLE_EQ(report.lines[1].transfer_in.value(), 0.0);
  EXPECT_EQ(report.csd_calls, 0u);
  EXPECT_EQ(report.migrations, 0u);
  EXPECT_EQ(report.status_updates, 0u);
  // End-to-end equals the last line's end.
  EXPECT_DOUBLE_EQ(report.total.value(), report.lines.back().end.seconds());
}

TEST(Engine, CsdRunReadsAtInternalBandwidth) {
  system::SystemModel system;
  const auto program = pipeline_program();
  ir::Plan plan = ir::Plan::host_only(3);
  plan.placement[0] = ir::Placement::Csd;
  plan.placement[1] = ir::Placement::Csd;
  const auto report = run_program(system, program, plan,
                                  codegen::ExecMode::NativeC, quiet_options());
  // 2 GB at 9 GB/s ~ 0.22 s — cheaper than the host's 0.4 s.
  EXPECT_NEAR(report.lines[0].access.value(), 0.223, 0.02);
  // Entering the CSD group submits exactly one call.
  EXPECT_EQ(report.csd_calls, 1u);
  // The host-placed finale pulls the intermediate over the link.
  EXPECT_GT(report.lines[2].transfer_in.value(), 0.0);
}

TEST(Engine, StorageChargedOnlyOnce) {
  system::SystemModel system;
  auto program = pipeline_program();
  // A second line that reads the same file again.
  ir::CodeRegion reread;
  reread.name = "again = rescan(file)";
  reread.inputs = {"file"};
  reread.outputs = {"again"};
  reread.elem_bytes = sizeof(float);
  reread.cost.cycles_per_elem = 1.0;
  reread.kernel = [](ir::KernelCtx& ctx) {
    auto& out = ctx.output(0);
    out.physical.resize_elems<float>(1);
    out.physical.as<float>()[0] = ctx.input(0).physical.as<float>()[0];
  };
  program.add_line(std::move(reread));

  const auto plan = ir::Plan::host_only(4);
  const auto report = run_program(system, program, plan,
                                  codegen::ExecMode::NativeC, quiet_options());
  EXPECT_GT(report.lines[0].access.value(), 0.3);
  EXPECT_DOUBLE_EQ(report.lines[3].access.value(), 0.0);  // cached copy
}

TEST(Engine, ExecModeOrdering) {
  const auto program = pipeline_program();
  const auto plan = ir::Plan::host_only(3);
  double previous = 0.0;
  for (const auto mode :
       {codegen::ExecMode::NativeC, codegen::ExecMode::CompiledNoCopy,
        codegen::ExecMode::Compiled, codegen::ExecMode::Interpreted}) {
    system::SystemModel system;
    const auto report =
        run_program(system, program, plan, mode, quiet_options());
    EXPECT_GT(report.total.value(), previous)
        << "mode " << codegen::to_string(mode);
    previous = report.total.value();
  }
}

TEST(Engine, TimingOnlyReplayMatchesFunctionalRun) {
  system::SystemModel system;
  const auto program = pipeline_program();
  const auto truth = plan::measure_true_estimates(system, program);

  ir::Plan plan = ir::Plan::host_only(3);
  plan.placement[0] = ir::Placement::Csd;
  plan.estimate = truth;

  auto functional = quiet_options();
  const auto real = run_program(system, program, plan,
                                codegen::ExecMode::NativeC, functional);

  auto replay_options = quiet_options();
  replay_options.run_kernels = false;
  const auto replay = run_program(system, program, plan,
                                  codegen::ExecMode::NativeC, replay_options);
  EXPECT_NEAR(replay.total.value(), real.total.value(),
              real.total.value() * 0.01);
}

TEST(Engine, TimingOnlyWithoutEstimatesRejected) {
  system::SystemModel system;
  const auto program = pipeline_program();
  const auto plan = ir::Plan::host_only(3);
  auto options = quiet_options();
  options.run_kernels = false;
  EXPECT_THROW(
      run_program(system, program, plan, codegen::ExecMode::NativeC, options),
      Error);
}

TEST(Engine, ContentionStretchesCsdCompute) {
  const auto program = pipeline_program();
  ir::Plan plan = ir::Plan::host_only(3);
  plan.placement[0] = ir::Placement::Csd;
  plan.placement[1] = ir::Placement::Csd;

  system::SystemModel full_system;
  const auto full = run_program(full_system, program, plan,
                                codegen::ExecMode::NativeC, quiet_options());

  auto throttled_options = quiet_options();
  throttled_options.cse_availability =
      sim::AvailabilitySchedule::constant(0.25);
  system::SystemModel slow_system;
  const auto slow = run_program(slow_system, program, plan,
                                codegen::ExecMode::NativeC, throttled_options);
  EXPECT_GT(slow.lines[0].compute.value(),
            3.0 * full.lines[0].compute.value());
}

TEST(Engine, StarvedCseIsAnError) {
  const auto program = pipeline_program();
  ir::Plan plan = ir::Plan::host_only(3);
  plan.placement[0] = ir::Placement::Csd;
  auto options = quiet_options();
  options.cse_availability = sim::AvailabilitySchedule::constant(0.0);
  system::SystemModel system;
  EXPECT_THROW(
      run_program(system, program, plan, codegen::ExecMode::NativeC, options),
      Error);
}

TEST(Engine, MigrationRescuesContendedRun) {
  system::SystemModel system;
  const auto program = pipeline_program();
  const auto truth = plan::measure_true_estimates(system, program);

  ir::Plan plan = ir::Plan::host_only(3);
  plan.placement[0] = ir::Placement::Csd;
  plan.placement[1] = ir::Placement::Csd;
  plan.estimate = truth;

  EngineOptions contended;
  contended.monitoring = true;
  contended.migration = true;
  contended.contention.enabled = true;
  contended.contention.at_csd_progress = 0.3;
  contended.contention.availability = 0.05;

  system::SystemModel with_system;
  const auto with_migration = run_program(
      with_system, program, plan, codegen::ExecMode::NativeC, contended);
  EXPECT_GE(with_migration.migrations, 1u);
  EXPECT_GT(with_migration.migration_overhead.value(), 0.0);
  EXPECT_GT(with_migration.status_updates, 0u);

  auto crippled = contended;
  crippled.migration = false;
  system::SystemModel without_system;
  const auto without_migration = run_program(
      without_system, program, plan, codegen::ExecMode::NativeC, crippled);
  EXPECT_EQ(without_migration.migrations, 0u);
  EXPECT_LT(with_migration.total.value(), without_migration.total.value());
}

TEST(Engine, MigrationPreservesFunctionalResult) {
  system::SystemModel system;
  const auto program = pipeline_program();
  const auto truth = plan::measure_true_estimates(system, program);

  const auto host_plan = ir::Plan::host_only(3);
  ir::ObjectStore host_store = program.make_store();
  run_program(system, program, host_plan, codegen::ExecMode::NativeC,
              quiet_options(), &host_store);
  const double expected = host_store.at("answer").physical.as<double>()[0];

  ir::Plan csd_plan = ir::Plan::host_only(3);
  csd_plan.placement[0] = ir::Placement::Csd;
  csd_plan.placement[1] = ir::Placement::Csd;
  csd_plan.estimate = truth;
  EngineOptions contended;
  contended.contention.enabled = true;
  contended.contention.at_csd_progress = 0.3;
  contended.contention.availability = 0.05;
  ir::ObjectStore csd_store = program.make_store();
  system::SystemModel other;
  const auto report = run_program(other, program, csd_plan,
                                  codegen::ExecMode::NativeC, contended,
                                  &csd_store);
  EXPECT_GE(report.migrations, 1u);
  EXPECT_DOUBLE_EQ(csd_store.at("answer").physical.as<double>()[0], expected);
  // After execution, the result lives in host memory.
  EXPECT_EQ(csd_store.at("answer").location, mem::Location::HostDram);
}

TEST(Lowering, GroupsContiguousCsdLines) {
  system::SystemModel system;
  const auto program = pipeline_program();
  ir::Plan plan = ir::Plan::host_only(3);
  plan.placement[0] = ir::Placement::Csd;
  plan.placement[1] = ir::Placement::Csd;
  const auto lowered =
      codegen::lower(program, plan, system.address_space(),
                     codegen::ExecMode::CompiledNoCopy);
  EXPECT_EQ(lowered.csd_group_count, 1u);
  EXPECT_TRUE(lowered.lines[0].enters_csd_group);
  EXPECT_FALSE(lowered.lines[1].enters_csd_group);
  EXPECT_TRUE(lowered.lines[0].status_updates);
  EXPECT_FALSE(lowered.lines[2].status_updates);
  EXPECT_EQ(lowered.csd_code_image.count(), 2u * 32u * 1024u);
  EXPECT_GT(lowered.compile_latency.value(), 0.0);
  EXPECT_FALSE(lowered.lines[0].marshalling);  // no-copy mode
}

TEST(Lowering, MarshallingFollowsMode) {
  system::SystemModel system;
  const auto program = pipeline_program();
  const auto plan = ir::Plan::host_only(3);
  const auto interp = codegen::lower(program, plan, system.address_space(),
                                     codegen::ExecMode::Interpreted);
  EXPECT_TRUE(interp.lines[0].marshalling);
  EXPECT_DOUBLE_EQ(interp.compile_latency.value(), 0.0);
  const auto native = codegen::lower(program, plan, system.address_space(),
                                     codegen::ExecMode::NativeC);
  EXPECT_FALSE(native.lines[0].marshalling);
}

TEST(MemoryPlan, PlacesNearConsumer) {
  system::SystemModel system;
  const auto program = pipeline_program();
  ir::Plan plan = ir::Plan::host_only(3);
  plan.placement[0] = ir::Placement::Csd;
  plan.placement[1] = ir::Placement::Csd;
  const auto memory =
      codegen::plan_memory(program, plan, system.address_space(),
                           codegen::ExecMode::CompiledNoCopy);
  // "hits" is consumed by a CSD line -> device DRAM; "scaled" by a host
  // line -> host DRAM.
  const auto* hits = memory.find("hits");
  const auto* scaled = memory.find("scaled");
  ASSERT_NE(hits, nullptr);
  ASSERT_NE(scaled, nullptr);
  EXPECT_EQ(hits->kind, mem::MemKind::DeviceDram);
  EXPECT_EQ(scaled->kind, mem::MemKind::HostDram);
  EXPECT_TRUE(hits->zero_copy);  // producer and consumer both on the CSD
  EXPECT_GT(memory.zero_copy_objects, 0u);
}

TEST(Monitor, DetectsRateBelowEstimate) {
  Monitor monitor(MonitorConfig{}, /*estimated_rate=*/1000.0);
  monitor.begin_line(1000.0);
  // Healthy windows at the estimated rate.
  EXPECT_FALSE(monitor.observe(SimTime{1.0}, 1000.0));
  EXPECT_FALSE(monitor.observe(SimTime{2.0}, 2000.0));
  // Rate collapses to 10% of the estimate.
  EXPECT_TRUE(monitor.observe(SimTime{12.0}, 3000.0));
  EXPECT_NEAR(monitor.observed_rate(), 100.0, 1.0);
}

TEST(Monitor, DetectsDecreasingTrend) {
  MonitorConfig config;
  config.below_estimate_fraction = 0.0;  // disable the absolute detector
  config.decreasing_windows = 3;
  Monitor monitor(config, 1000.0);
  monitor.begin_line(1000.0);
  monitor.observe(SimTime{1.0}, 1000.0);
  double t = 1.0;
  double instr = 1000.0;
  double rate = 900.0;
  bool anomaly = false;
  for (int i = 0; i < 4; ++i) {
    t += 1.0;
    instr += rate;
    anomaly = monitor.observe(SimTime{t}, instr);
    rate *= 0.8;
  }
  EXPECT_TRUE(anomaly);
}

TEST(Monitor, BeginLineResetsTrend) {
  MonitorConfig config;
  config.below_estimate_fraction = 0.0;
  config.decreasing_windows = 2;
  Monitor monitor(config, 1000.0);
  monitor.begin_line(1000.0);
  monitor.observe(SimTime{1.0}, 1000.0);
  monitor.observe(SimTime{2.0}, 1800.0);  // decreasing once
  monitor.begin_line(500.0);              // new line: streak resets
  monitor.observe(SimTime{3.0}, 2300.0);
  EXPECT_FALSE(monitor.observe(SimTime{4.0}, 2800.0));
}

TEST(Monitor, AdvisesMigrationOnlyWhenCheaper) {
  Monitor monitor(MonitorConfig{}, 1000.0);
  monitor.begin_line(1000.0);
  monitor.observe(SimTime{1.0}, 100.0);
  monitor.observe(SimTime{2.0}, 150.0);  // 50 instr/s << 800
  ASSERT_TRUE(monitor.anomaly());
  // Remaining 1000 instructions at 50/s = 20 s on the CSD.
  const auto go = monitor.advise(1000.0, Seconds{2.0}, Seconds{1.0},
                                 Seconds{0.05});
  EXPECT_TRUE(go.migrate);
  EXPECT_NEAR(go.remaining_on_csd.value(), 20.0, 0.1);
  const auto stay = monitor.advise(1000.0, Seconds{50.0}, Seconds{1.0},
                                   Seconds{0.05});
  EXPECT_FALSE(stay.migrate);
}

TEST(Monitor, HighPriorityRequestForcesAnomaly) {
  Monitor monitor(MonitorConfig{}, 1000.0);
  EXPECT_FALSE(monitor.anomaly());
  monitor.raise_high_priority();
  EXPECT_TRUE(monitor.anomaly());
}

TEST(Monitor, IgnoresSubWindowUpdates) {
  MonitorConfig config;
  config.min_window = Seconds{1.0};
  Monitor monitor(config, 1000.0);
  monitor.begin_line(1000.0);
  monitor.observe(SimTime{1.0}, 1000.0);
  // A microsecond-scale window with terrible rate must not trigger.
  EXPECT_FALSE(monitor.observe(SimTime{1.000001}, 1000.001));
}

}  // namespace
}  // namespace isp::runtime
