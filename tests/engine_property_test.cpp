// Property tests over the execution engine: determinism, monotonicity in
// availability, conservation of link traffic, and sampler structure.
#include <gtest/gtest.h>

#include "apps/registry.hpp"
#include "baseline/baselines.hpp"
#include "profile/sampler.hpp"
#include "runtime/active_runtime.hpp"

namespace isp {
namespace {

apps::AppConfig small() {
  apps::AppConfig config;
  config.size_factor = 0.2;
  return config;
}

class EngineProperties : public ::testing::TestWithParam<const char*> {};

TEST_P(EngineProperties, RunsAreDeterministic) {
  const auto program = apps::make_app(GetParam(), small());
  std::string first_json;
  for (int run = 0; run < 2; ++run) {
    system::SystemModel system;
    runtime::ActiveRuntime active(system);
    const auto result = active.run(program);
    const auto json = result.report.to_json();
    if (run == 0) {
      first_json = json;
    } else {
      EXPECT_EQ(json, first_json) << "nondeterministic execution";
    }
  }
}

TEST_P(EngineProperties, LatencyMonotoneInCseAvailability) {
  const auto program = apps::make_app(GetParam(), small());
  system::SystemModel oracle_system;
  const auto oracle =
      baseline::programmer_directed_plan(oracle_system, program);

  double previous = 0.0;
  for (const double avail : {1.0, 0.75, 0.5, 0.25}) {
    system::SystemModel system;
    const auto report = baseline::run_static_isp(
        system, program, oracle.best,
        sim::AvailabilitySchedule::constant(avail));
    EXPECT_GE(report.total.value(), previous)
        << "lower availability must never run faster";
    previous = report.total.value();
  }
}

TEST_P(EngineProperties, RawInputTrafficBoundedByStorage) {
  const auto program = apps::make_app(GetParam(), small());
  system::SystemModel system;
  const auto report = baseline::run_host_only(system, program);
  // Host-only: every stored byte crosses the link exactly once.
  const auto raw = report.dma
                       .bytes[static_cast<int>(
                           interconnect::TransferKind::RawInput)];
  EXPECT_EQ(raw.count(), program.total_storage_bytes().count());
  // And nothing else moves.
  EXPECT_EQ(report.dma.total_bytes().count(), raw.count());
}

TEST_P(EngineProperties, CsdRunMovesLessRawData) {
  const auto program = apps::make_app(GetParam(), small());
  system::SystemModel host_system;
  const auto host = baseline::run_host_only(host_system, program);

  system::SystemModel system;
  runtime::ActiveRuntime active(system);
  const auto result = active.run(program);
  if (result.plan.csd_line_count() == 0) GTEST_SKIP();

  const auto host_raw =
      host.dma.bytes[static_cast<int>(interconnect::TransferKind::RawInput)];
  const auto isp_raw = result.report.dma.bytes[static_cast<int>(
      interconnect::TransferKind::RawInput)];
  EXPECT_LT(isp_raw.count(), host_raw.count())
      << "offloading must reduce raw-input link traffic";
}

TEST_P(EngineProperties, StatusUpdatesOnlyFromCsdLines) {
  const auto program = apps::make_app(GetParam(), small());
  system::SystemModel system;
  runtime::ActiveRuntime active(system);
  const auto result = active.run(program);

  std::uint64_t expected = 0;
  for (std::size_t i = 0; i < program.line_count(); ++i) {
    if (result.plan.placement[i] == ir::Placement::Csd &&
        result.report.lines[i].placement == ir::Placement::Csd) {
      expected += program.lines()[i].chunks;
    }
  }
  // Without migration the counts match exactly.
  if (result.report.migrations == 0) {
    EXPECT_EQ(result.report.status_updates, expected);
  } else {
    EXPECT_LE(result.report.status_updates, expected);
  }
}

INSTANTIATE_TEST_SUITE_P(Apps, EngineProperties,
                         ::testing::Values("tpch-q6", "tpch-q1", "kmeans",
                                           "blackscholes", "pagerank",
                                           "mixedgemm"));

TEST(Sampler, ProducesFourPointsPerLine) {
  const auto program = apps::make_app("tpch-q6", small());
  system::SystemModel system;
  profile::Sampler sampler(system);
  const auto set = sampler.run(program);
  ASSERT_EQ(set.lines.size(), program.line_count());
  for (const auto& line : set.lines) {
    ASSERT_EQ(line.points.size(), 4u);
    // Fractions ascend 2^-10 .. 2^-7 and sizes ascend with them.
    for (std::size_t i = 1; i < line.points.size(); ++i) {
      EXPECT_GT(line.points[i].fraction, line.points[i - 1].fraction);
      EXPECT_GE(line.points[i].in_bytes.count(),
                line.points[i - 1].in_bytes.count());
    }
  }
  EXPECT_GT(set.overhead.value(), 0.0);
}

TEST(Sampler, CustomFractionsRespected) {
  const auto program = apps::make_app("tpch-q6", small());
  system::SystemModel system;
  profile::SamplerConfig config;
  config.fractions = {0.01, 0.02};
  profile::Sampler sampler(system, config);
  const auto set = sampler.run(program);
  ASSERT_EQ(set.lines[0].points.size(), 2u);
  EXPECT_DOUBLE_EQ(set.lines[0].points[0].fraction, 0.01);
}

TEST(Sampler, SeparatesAccessFromCompute) {
  const auto program = apps::make_app("tpch-q6", small());
  system::SystemModel system;
  profile::Sampler sampler(system);
  const auto set = sampler.run(program);
  // Line 0 reads storage: both components nonzero, and access scales
  // linearly with the fraction while staying distinct from compute.
  const auto& p0 = set.lines[0].points.front();
  const auto& p3 = set.lines[0].points.back();
  EXPECT_GT(p0.access.value(), 0.0);
  EXPECT_GT(p0.compute.value(), 0.0);
  EXPECT_NEAR(p3.access.value() / p0.access.value(), 8.0, 1.0);
}

}  // namespace
}  // namespace isp
