// Property tests over the execution engine: determinism, monotonicity in
// availability, conservation of link traffic, migration under injected
// faults, and sampler structure.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstddef>
#include <cstring>
#include <string>
#include <vector>

#include "apps/registry.hpp"
#include "baseline/baselines.hpp"
#include "exec/pool.hpp"
#include "profile/sampler.hpp"
#include "runtime/active_runtime.hpp"

namespace isp {
namespace {

apps::AppConfig small() {
  apps::AppConfig config;
  config.size_factor = 0.2;
  return config;
}

class EngineProperties : public ::testing::TestWithParam<const char*> {};

TEST_P(EngineProperties, RunsAreDeterministic) {
  const auto program = apps::make_app(GetParam(), small());
  std::string first_json;
  for (int run = 0; run < 2; ++run) {
    system::SystemModel system;
    runtime::ActiveRuntime active(system);
    const auto result = active.run(program);
    const auto json = result.report.to_json();
    if (run == 0) {
      first_json = json;
    } else {
      EXPECT_EQ(json, first_json) << "nondeterministic execution";
    }
  }
}

TEST_P(EngineProperties, LatencyMonotoneInCseAvailability) {
  const auto program = apps::make_app(GetParam(), small());
  system::SystemModel oracle_system;
  const auto oracle =
      baseline::programmer_directed_plan(oracle_system, program);

  double previous = 0.0;
  for (const double avail : {1.0, 0.75, 0.5, 0.25}) {
    system::SystemModel system;
    const auto report = baseline::run_static_isp(
        system, program, oracle.best,
        sim::AvailabilitySchedule::constant(avail));
    EXPECT_GE(report.total.value(), previous)
        << "lower availability must never run faster";
    previous = report.total.value();
  }
}

TEST_P(EngineProperties, RawInputTrafficBoundedByStorage) {
  const auto program = apps::make_app(GetParam(), small());
  system::SystemModel system;
  const auto report = baseline::run_host_only(system, program);
  // Host-only: every stored byte crosses the link exactly once.
  const auto raw = report.dma
                       .bytes[static_cast<int>(
                           interconnect::TransferKind::RawInput)];
  EXPECT_EQ(raw.count(), program.total_storage_bytes().count());
  // And nothing else moves.
  EXPECT_EQ(report.dma.total_bytes().count(), raw.count());
}

TEST_P(EngineProperties, CsdRunMovesLessRawData) {
  const auto program = apps::make_app(GetParam(), small());
  system::SystemModel host_system;
  const auto host = baseline::run_host_only(host_system, program);

  system::SystemModel system;
  runtime::ActiveRuntime active(system);
  const auto result = active.run(program);
  if (result.plan.csd_line_count() == 0) GTEST_SKIP();

  const auto host_raw =
      host.dma.bytes[static_cast<int>(interconnect::TransferKind::RawInput)];
  const auto isp_raw = result.report.dma.bytes[static_cast<int>(
      interconnect::TransferKind::RawInput)];
  EXPECT_LT(isp_raw.count(), host_raw.count())
      << "offloading must reduce raw-input link traffic";
}

TEST_P(EngineProperties, StatusUpdatesOnlyFromCsdLines) {
  const auto program = apps::make_app(GetParam(), small());
  system::SystemModel system;
  runtime::ActiveRuntime active(system);
  const auto result = active.run(program);

  std::uint64_t expected = 0;
  for (std::size_t i = 0; i < program.line_count(); ++i) {
    if (result.plan.placement[i] == ir::Placement::Csd &&
        result.report.lines[i].placement == ir::Placement::Csd) {
      expected += program.lines()[i].chunks;
    }
  }
  // Without migration the counts match exactly.
  if (result.report.migrations == 0) {
    EXPECT_EQ(result.report.status_updates, expected);
  } else {
    EXPECT_LE(result.report.status_updates, expected);
  }
}

INSTANTIATE_TEST_SUITE_P(Apps, EngineProperties,
                         ::testing::Values("tpch-q6", "tpch-q1", "kmeans",
                                           "blackscholes", "pagerank",
                                           "mixedgemm"));

// ---------------------------------------------------------------------------
// Migration under fault.  For every injectable engine-path fault site and a
// sweep of first-fault positions (skip_first moves the fault across
// chunks/pages/transfers, and with it the cut line a forced migration
// breaks at), a planned run with recovery and migration armed must preserve
// functional results, keep its virtual-time books consistent with the
// simulated clock, and replay bit-for-bit.

const ir::Program& fault_program() {
  static const ir::Program program = apps::make_app("tpch-q6", small());
  return program;
}

const ir::ObjectStore& host_reference() {
  static const ir::ObjectStore store = [] {
    runtime::EngineOptions options;
    options.monitoring = false;
    options.migration = false;
    system::SystemModel system;
    auto s = fault_program().make_store();
    runtime::run_program(system, fault_program(),
                         ir::Plan::host_only(fault_program().line_count()),
                         codegen::ExecMode::NativeC, options, &s);
    return s;
  }();
  return store;
}

const ir::Plan& planned() {
  static const ir::Plan plan = [] {
    system::SystemModel system;
    runtime::ActiveRuntime active(system);
    auto result = active.run(fault_program());
    return result.plan;
  }();
  return plan;
}

/// Fault-free run of the planned placement (same options as the faulted
/// runs, minus the faults): the baseline the penalty bound compares against.
const runtime::ExecutionReport& fault_free_planned() {
  static const runtime::ExecutionReport report = [] {
    system::SystemModel system;
    runtime::EngineOptions options;
    return runtime::run_program(system, fault_program(), planned(),
                                codegen::ExecMode::NativeC, options);
  }();
  return report;
}

class MigrationUnderFault : public ::testing::TestWithParam<int> {};

constexpr std::uint64_t kSkips[] = {0, 1, 3, 7};

// One shard per engine-path fault site; the skip_first sweep of that site
// fans out through exec::run_batch (fresh SystemModel and store per run,
// replay included), with all assertions on the test thread afterwards.
// Same site x cut coverage as the flat matrix.
TEST_P(MigrationUnderFault, PreservesResultsAndAccountsVirtualTime) {
  const auto site = static_cast<fault::Site>(GetParam());
  const auto& program = fault_program();
  // Warm the shared fixtures before fanning out so the batch tasks only
  // ever read them.
  const auto& final_name = program.lines().back().outputs.front();
  const auto& h = host_reference().at(final_name).physical;
  const auto& plan = planned();
  const auto& base = fault_free_planned();

  struct Outcome {
    std::vector<std::byte> result;
    std::vector<std::pair<double, double>> line_spans;  // (start, end)
    double total = 0.0;
    double penalty = 0.0;
    std::uint64_t migrations = 0;
    std::uint64_t degradations = 0;
    std::uint64_t exhausted = 0;
    std::uint64_t status_updates = 0;
    bool replay_identical = false;
  };
  const auto outcomes = exec::run_batch(
      std::size(kSkips),
      [&](std::size_t i) {
        runtime::EngineOptions options;  // monitoring + migration armed
        options.fault.seed = 31;
        options.fault.sites[static_cast<std::size_t>(site)] =
            fault::SiteConfig{.rate = 1.0, .skip_first = kSkips[i]};

        system::SystemModel system;
        auto store = program.make_store();
        const auto report =
            runtime::run_program(system, program, plan,
                                 codegen::ExecMode::NativeC, options, &store);

        // Seed-deterministic replay, bit for bit.
        system::SystemModel system2;
        auto store2 = program.make_store();
        const auto replay =
            runtime::run_program(system2, program, plan,
                                 codegen::ExecMode::NativeC, options, &store2);

        Outcome o;
        const auto bytes = store.at(final_name).physical.as<std::byte>();
        o.result.assign(bytes.data(), bytes.data() + bytes.size());
        for (const auto& rec : report.lines) {
          o.line_spans.emplace_back(rec.start.seconds(), rec.end.seconds());
        }
        o.total = report.total.value();
        o.penalty = report.faults.penalty.value();
        o.migrations = report.migrations;
        o.degradations = report.faults.degradations;
        o.exhausted = report.faults.total_exhausted();
        o.status_updates = report.status_updates;
        o.replay_identical = report.to_json() == replay.to_json();
        return o;
      },
      std::max(2U, exec::default_jobs()));

  for (std::size_t i = 0; i < outcomes.size(); ++i) {
    const std::uint64_t skip = kSkips[i];
    SCOPED_TRACE("skip_first " + std::to_string(skip));
    const auto& o = outcomes[i];

    // (1) Functional results identical to the host-only fault-free
    // reference: retries, escalations, and forced migrations never corrupt
    // data.
    ASSERT_EQ(h.size_bytes(), o.result.size());
    EXPECT_EQ(0, std::memcmp(h.as<std::byte>().data(), o.result.data(),
                             o.result.size()));

    // (2) The books match the simulator clock: line records advance
    // monotonically and the reported total covers the last of them.
    double prev_start = 0.0;
    for (const auto& [start, end] : o.line_spans) {
      EXPECT_GE(start, prev_start - 1e-12);
      EXPECT_GE(end, start - 1e-12);
      prev_start = start;
    }
    ASSERT_FALSE(o.line_spans.empty());
    EXPECT_GE(o.total + 1e-9, o.line_spans.back().second);

    // (3) Seed-deterministic replay, bit for bit.
    EXPECT_TRUE(o.replay_identical);

    // (4) When nothing migrated in either run, the accounted fault penalty
    // bounds the slowdown exactly: total lands in
    // [fault-free, fault-free + penalty] (pipelined stages can swallow part
    // of a penalty, so the lower edge is the fault-free time itself).
    if (o.migrations == 0 && base.migrations == 0) {
      EXPECT_GE(o.total, base.total.value() - 1e-9);
      EXPECT_LE(o.total, base.total.value() + o.penalty + 1e-9);
    }

    // (5) Site-specific recovery outcomes.
    if (site == fault::Site::StatusLoss) {
      // Only the skip_first prefix can reach the host; everything after is
      // lost, and the run must still complete without the monitor's feed.
      EXPECT_LE(o.status_updates, skip);
    }
    if (site == fault::Site::CseCrash && o.exhausted > 0) {
      // An exhausted crash must degrade to the host, and the degradation
      // must be recorded as such.
      EXPECT_GE(o.migrations, 1u);
      EXPECT_GE(o.degradations, 1u);
    }
  }
}

// Engine-path sites (NvmeCommand is exercised through the controller in
// nvme_test.cpp); each shard sweeps the first-fault positions.
INSTANTIATE_TEST_SUITE_P(SitesAndCuts, MigrationUnderFault,
                         ::testing::Range(1, 6));

TEST(Sampler, ProducesFourPointsPerLine) {
  const auto program = apps::make_app("tpch-q6", small());
  system::SystemModel system;
  profile::Sampler sampler(system);
  const auto set = sampler.run(program);
  ASSERT_EQ(set.lines.size(), program.line_count());
  for (const auto& line : set.lines) {
    ASSERT_EQ(line.points.size(), 4u);
    // Fractions ascend 2^-10 .. 2^-7 and sizes ascend with them.
    for (std::size_t i = 1; i < line.points.size(); ++i) {
      EXPECT_GT(line.points[i].fraction, line.points[i - 1].fraction);
      EXPECT_GE(line.points[i].in_bytes.count(),
                line.points[i - 1].in_bytes.count());
    }
  }
  EXPECT_GT(set.overhead.value(), 0.0);
}

TEST(Sampler, CustomFractionsRespected) {
  const auto program = apps::make_app("tpch-q6", small());
  system::SystemModel system;
  profile::SamplerConfig config;
  config.fractions = {0.01, 0.02};
  profile::Sampler sampler(system, config);
  const auto set = sampler.run(program);
  ASSERT_EQ(set.lines[0].points.size(), 2u);
  EXPECT_DOUBLE_EQ(set.lines[0].points[0].fraction, 0.01);
}

TEST(Sampler, SeparatesAccessFromCompute) {
  const auto program = apps::make_app("tpch-q6", small());
  system::SystemModel system;
  profile::Sampler sampler(system);
  const auto set = sampler.run(program);
  // Line 0 reads storage: both components nonzero, and access scales
  // linearly with the fraction while staying distinct from compute.
  const auto& p0 = set.lines[0].points.front();
  const auto& p3 = set.lines[0].points.back();
  EXPECT_GT(p0.access.value(), 0.0);
  EXPECT_GT(p0.compute.value(), 0.0);
  EXPECT_NEAR(p3.access.value() / p0.access.value(), 8.0, 1.0);
}

}  // namespace
}  // namespace isp
