// Unit + property tests: NAND timing, the flash array, and the FTL.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "flash/flash_array.hpp"
#include "flash/ftl.hpp"
#include "flash/nand.hpp"
#include "obs/metrics.hpp"

namespace isp::flash {
namespace {

TEST(Nand, DefaultGeometryMatchesPaperBandwidth) {
  // §IV-A: 9 GB/s effective internal read bandwidth.
  const auto bw = effective_read_bandwidth(NandGeometry{}, NandTiming{});
  EXPECT_NEAR(bw.value() / 1e9, 9.0, 0.3);
}

TEST(Nand, WriteBandwidthBelowRead) {
  const auto read = effective_read_bandwidth(NandGeometry{}, NandTiming{});
  const auto write = effective_write_bandwidth(NandGeometry{}, NandTiming{});
  EXPECT_LT(write.value(), read.value());
  EXPECT_GT(write.value(), 0.0);
}

TEST(Nand, ChannelCeilingBinds) {
  NandGeometry g;
  g.channels = 1;  // single channel: 1.2 GB/s ceiling
  const auto bw = effective_read_bandwidth(g, NandTiming{});
  EXPECT_NEAR(bw.value() / 1e9, 1.2, 0.2);
}

TEST(FlashArray, BulkReadTime) {
  FlashArray array;
  // 6.9 GB at ~9 GB/s -> ~0.77 s.
  const Seconds t = array.read_seconds(gigabytes(6.9));
  EXPECT_NEAR(t.value(), 0.77, 0.05);
  EXPECT_DOUBLE_EQ(array.read_seconds(Bytes{0}).value(), 0.0);
}

TEST(FlashArray, AvailabilityDeratesReads) {
  FlashArray array;
  array.set_availability(sim::AvailabilitySchedule::constant(0.5));
  const SimTime done = array.read_finish(SimTime{0.0}, gigabytes(6.9));
  EXPECT_NEAR(done.seconds(), 2.0 * 0.77, 0.1);
}

TEST(FlashArray, StatsAccumulate) {
  FlashArray array;
  array.note_read(Bytes{100});
  array.note_write(Bytes{50});
  EXPECT_EQ(array.bytes_read().count(), 100u);
  EXPECT_EQ(array.bytes_written().count(), 50u);
  array.reset_stats();
  EXPECT_EQ(array.bytes_read().count(), 0u);
}

FtlConfig small_ftl() {
  FtlConfig config;
  config.geometry.channels = 1;
  config.geometry.dies_per_channel = 1;
  config.geometry.planes_per_die = 1;
  config.geometry.blocks_per_die = 24;
  config.geometry.pages_per_block = 8;
  config.overprovision = 0.3;
  return config;
}

TEST(Ftl, TranslateAfterWrite) {
  Ftl ftl(small_ftl());
  EXPECT_FALSE(ftl.translate(0).has_value());
  ftl.write(0);
  ASSERT_TRUE(ftl.translate(0).has_value());
  ftl.check_invariants();
}

TEST(Ftl, OverwriteMovesPage) {
  Ftl ftl(small_ftl());
  ftl.write(3);
  const auto first = ftl.translate(3);
  ftl.write(3);
  const auto second = ftl.translate(3);
  ASSERT_TRUE(first && second);
  EXPECT_NE(*first, *second);
  ftl.check_invariants();
}

TEST(Ftl, TrimDropsMapping) {
  Ftl ftl(small_ftl());
  ftl.write(5);
  ftl.trim(5);
  EXPECT_FALSE(ftl.translate(5).has_value());
  ftl.check_invariants();
  // Trim of an unwritten page is a no-op.
  EXPECT_NO_THROW(ftl.trim(6));
}

TEST(Ftl, RejectsOutOfRange) {
  Ftl ftl(small_ftl());
  EXPECT_THROW(ftl.write(ftl.logical_pages()), Error);
  EXPECT_THROW(static_cast<void>(ftl.translate(ftl.logical_pages())),
               Error);
}

TEST(Ftl, OverprovisionHidesCapacity) {
  const Ftl ftl(small_ftl());
  const auto physical = small_ftl().geometry.total_pages();
  EXPECT_LT(ftl.logical_pages(), physical);
  EXPECT_GT(ftl.logical_pages(), physical / 2);
}

TEST(Ftl, RejectsInfeasibleWatermarks) {
  FtlConfig config = small_ftl();
  config.overprovision = 0.01;  // logical blocks leave no room for GC
  EXPECT_THROW(Ftl{config}, Error);
}

TEST(Ftl, SequentialFillNeverStarves) {
  Ftl ftl(small_ftl());
  for (Lpn lpn = 0; lpn < ftl.logical_pages(); ++lpn) {
    ftl.write(lpn);
  }
  ftl.check_invariants();
  // Every page still resolves.
  for (Lpn lpn = 0; lpn < ftl.logical_pages(); ++lpn) {
    EXPECT_TRUE(ftl.translate(lpn).has_value());
  }
}

TEST(Ftl, SteadyStateOverwriteTriggersGc) {
  Ftl ftl(small_ftl());
  Rng rng(99);
  for (int i = 0; i < 2000; ++i) {
    ftl.write(rng.uniform_u64(0, ftl.logical_pages() - 1));
  }
  EXPECT_GT(ftl.stats().gc_invocations, 0u);
  EXPECT_GT(ftl.stats().erases, 0u);
  EXPECT_GE(ftl.stats().write_amplification(), 1.0);
  EXPECT_GE(ftl.gc_pressure(), 0.0);
  EXPECT_LT(ftl.gc_pressure(), 1.0);
  ftl.check_invariants();
}

// Lower overprovisioning leaves headroom to retire several blocks: the
// feasibility check keeps logical + spare + watermark + retired <= total.
FtlConfig retirable_ftl() {
  FtlConfig config = small_ftl();
  config.overprovision = 0.5;
  return config;
}

TEST(FtlRetire, RetiredBlockRelocatesValidPagesAndStaysExcluded) {
  Ftl ftl(retirable_ftl());
  for (Lpn lpn = 0; lpn < ftl.logical_pages(); ++lpn) ftl.write(lpn);

  // Retire the block holding lpn 0's page: the mapping must survive on a
  // different block, and the accounting must partition exactly.
  const Ppn victim_ppn = *ftl.translate(0);
  const auto victim_block =
      victim_ppn / retirable_ftl().geometry.pages_per_block;
  const auto free_before = ftl.free_blocks();
  ftl.retire_block(victim_block);

  EXPECT_EQ(ftl.retired_blocks(), 1u);
  EXPECT_EQ(ftl.stats().blocks_retired, 1u);
  ASSERT_TRUE(ftl.translate(0).has_value());
  EXPECT_NE(*ftl.translate(0) / retirable_ftl().geometry.pages_per_block,
            victim_block);
  ftl.check_invariants();
  // Retiring again is a no-op.
  ftl.retire_block(victim_block);
  EXPECT_EQ(ftl.retired_blocks(), 1u);
  // A retired block never rejoins the free pool, so at equal load the pool
  // can only have shrunk.
  EXPECT_LE(ftl.free_blocks(), free_before);
}

TEST(FtlRetire, RefusesToRetireBelowFeasibility) {
  Ftl ftl(retirable_ftl());
  std::uint64_t retired = 0;
  std::uint64_t block = 0;
  // Retire until the feasibility guard trips; it must trip before the FTL
  // could deadlock, and every successful retirement keeps the invariants.
  try {
    for (;; ++block) {
      ftl.retire_block(block);
      ++retired;
      ftl.check_invariants();
    }
  } catch (const Error&) {
  }
  EXPECT_GT(retired, 0u);
  EXPECT_EQ(ftl.retired_blocks(), retired);
  EXPECT_LT(retired, ftl.total_blocks());
  ftl.check_invariants();
  // The survivor set still absorbs a full logical overwrite pass.
  for (Lpn lpn = 0; lpn < ftl.logical_pages(); ++lpn) ftl.write(lpn);
  ftl.check_invariants();
}

// Property: block retirement interleaved with GC-inducing churn.  The GC
// victim scan must skip retired blocks, relocation must never target one,
// and free + in-use + retired must partition the block set throughout.
class FtlRetireChurn : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FtlRetireChurn, InvariantsUnderChurnWithRetirement) {
  Ftl ftl(retirable_ftl());
  Rng rng(GetParam());
  std::uint64_t next_retire = 0;
  for (int i = 0; i < 3000; ++i) {
    const Lpn lpn = rng.uniform_u64(0, ftl.logical_pages() - 1);
    if (rng.next_double() < 0.85) {
      ftl.write(lpn);
    } else {
      ftl.trim(lpn);
    }
    // Every ~700 ops retire another block — mid-churn, so GC is typically
    // between victims when the block disappears from its candidate set.
    if (i % 700 == 350 && ftl.retired_blocks() < 3) {
      ftl.retire_block(next_retire);
      next_retire += 5;  // spread across the array
      ftl.check_invariants();
    }
  }
  EXPECT_EQ(ftl.retired_blocks(), 3u);
  EXPECT_GT(ftl.stats().gc_invocations, 0u)
      << "churn too light to exercise GC against retirement";
  ftl.check_invariants();

  std::set<Ppn> seen;
  const auto ppb = retirable_ftl().geometry.pages_per_block;
  for (Lpn lpn = 0; lpn < ftl.logical_pages(); ++lpn) {
    if (const auto ppn = ftl.translate(lpn)) {
      EXPECT_TRUE(seen.insert(*ppn).second);
      // No live page may sit on a retired block.
      EXPECT_NE(*ppn / ppb, 0u);
      EXPECT_NE(*ppn / ppb, 5u);
      EXPECT_NE(*ppn / ppb, 10u);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FtlRetireChurn,
                         ::testing::Values(7, 29, 59, 83));

// Property: invariants hold after arbitrary interleavings of write/trim, and
// distinct logical pages never alias the same physical page.
class FtlChurn : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FtlChurn, InvariantsUnderRandomOps) {
  Ftl ftl(small_ftl());
  Rng rng(GetParam());
  for (int i = 0; i < 3000; ++i) {
    const Lpn lpn = rng.uniform_u64(0, ftl.logical_pages() - 1);
    if (rng.next_double() < 0.85) {
      ftl.write(lpn);
    } else {
      ftl.trim(lpn);
    }
  }
  ftl.check_invariants();

  std::set<Ppn> seen;
  for (Lpn lpn = 0; lpn < ftl.logical_pages(); ++lpn) {
    if (const auto ppn = ftl.translate(lpn)) {
      EXPECT_TRUE(seen.insert(*ppn).second)
          << "two logical pages share ppn " << *ppn;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FtlChurn,
                         ::testing::Values(11, 23, 37, 41, 53, 67, 79, 97));

// ---------------------------------------------------------------------------
// Extent (span) data plane: write_span/trim_span/read_span are contractually
// bit-for-bit the scalar loops — state, stats, journal and recovery all
// identical — so every test here drives a scalar twin and a span twin with
// the same operation list and demands exact equality, through GC churn and
// across crash/remount cycles.

FtlConfig journaled_small(bool exhaustive = false) {
  FtlConfig config = small_ftl();
  config.geometry.page_bytes = Bytes{64};  // journal pages fill in 4 entries
  config.journal.enabled = true;
  config.journal.checkpoint_interval_pages = 4;
  config.exhaustive_remount_verify = exhaustive;
  return config;
}

struct SpanOp {
  bool is_trim = false;
  Lpn first = 0;
  std::uint64_t count = 0;
};

std::vector<SpanOp> random_span_ops(std::uint64_t seed, std::uint64_t logical,
                                    int n, double trim_share) {
  Rng rng(seed);
  std::vector<SpanOp> ops;
  ops.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    SpanOp op;
    op.first = rng.uniform_u64(0, logical - 1);
    op.count =
        rng.uniform_u64(1, std::min<std::uint64_t>(24, logical - op.first));
    op.is_trim = rng.next_double() < trim_share;
    ops.push_back(op);
  }
  return ops;
}

void apply_scalar(StorageBackend& dev, const SpanOp& op) {
  for (std::uint64_t i = 0; i < op.count; ++i) {
    if (op.is_trim) {
      dev.trim(op.first + i);
    } else {
      dev.write(op.first + i);
    }
  }
}

void apply_span(StorageBackend& dev, const SpanOp& op) {
  if (op.is_trim) {
    dev.trim_span(op.first, op.count);
  } else {
    dev.write_span(op.first, op.count);
  }
}

void expect_identical(const Ftl& scalar, const Ftl& span) {
  ASSERT_EQ(scalar.logical_pages(), span.logical_pages());
  for (Lpn lpn = 0; lpn < scalar.logical_pages(); ++lpn) {
    ASSERT_EQ(scalar.translate(lpn), span.translate(lpn))
        << "mapping diverged at lpn " << lpn;
  }
  const auto& a = scalar.stats();
  const auto& b = span.stats();
  EXPECT_EQ(a.host_writes, b.host_writes);
  EXPECT_EQ(a.gc_writes, b.gc_writes);
  EXPECT_EQ(a.meta_writes, b.meta_writes);
  EXPECT_EQ(a.erases, b.erases);
  EXPECT_EQ(a.gc_invocations, b.gc_invocations);
  EXPECT_EQ(a.checkpoint_folds, b.checkpoint_folds);
  EXPECT_EQ(a.blocks_retired, b.blocks_retired);
  EXPECT_EQ(a.recoveries, b.recoveries);
  EXPECT_EQ(a.free_pages, b.free_pages);
  EXPECT_DOUBLE_EQ(a.write_amplification(), b.write_amplification());
  EXPECT_EQ(scalar.free_blocks(), span.free_blocks());
  EXPECT_EQ(scalar.journal_tail_updates(), span.journal_tail_updates());
  scalar.check_invariants();
  span.check_invariants();
  scalar.check_invariants_incremental();
  span.check_invariants_incremental();
}

// Mixed write/trim extents through steady-state GC: enough churn that the
// span path crosses the watermark fallback (reclaim invocations must match
// exactly, including GC calls that stood down without reclaiming anything).
class FtlSpanDiff : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FtlSpanDiff, SpanOpsMatchScalarOpsExactly) {
  Ftl scalar(journaled_small());
  Ftl span(journaled_small());
  const auto ops =
      random_span_ops(GetParam(), scalar.logical_pages(), 400, 0.15);
  for (const auto& op : ops) {
    apply_scalar(scalar, op);
    apply_span(span, op);
  }
  EXPECT_GT(span.stats().gc_invocations, 0u)
      << "workload too light to exercise the watermark fallback";
  expect_identical(scalar, span);
}

INSTANTIATE_TEST_SUITE_P(Seeds, FtlSpanDiff,
                         ::testing::Values(5, 17, 43, 61, 89));

// The acceptance sweep on the span path: crash at >= 50 distinct points in
// a span-driven workload, remount, finish the workload — and at every point
// the span device must match a scalar twin crash-driven identically:
// recovery counters, stats and the full mapping.
TEST(FtlSpanCrash, FiftyPointSweepMatchesScalarTwin) {
  constexpr int kPoints = 50;
  std::vector<SpanOp> ops;
  {
    const Ftl probe(journaled_small());
    ops = random_span_ops(0xfeedULL, probe.logical_pages(), 120, 0.1);
  }
  for (int point = 0; point < kPoints; ++point) {
    const std::size_t crash_after = 2 + static_cast<std::size_t>(point) * 2;
    ASSERT_LT(crash_after, ops.size());
    Ftl scalar(journaled_small());
    Ftl span(journaled_small());
    for (std::size_t i = 0; i < crash_after; ++i) {
      apply_scalar(scalar, ops[i]);
      apply_span(span, ops[i]);
    }
    const auto crash_a = scalar.power_loss();
    const auto crash_b = span.power_loss();
    EXPECT_EQ(crash_a.lost_tail_updates, crash_b.lost_tail_updates);
    EXPECT_EQ(crash_a.lost_trims, crash_b.lost_trims);
    const auto rec_a = scalar.recover();
    const auto rec_b = span.recover();
    EXPECT_EQ(rec_a.checkpoint_pages_read, rec_b.checkpoint_pages_read);
    EXPECT_EQ(rec_a.journal_pages_read, rec_b.journal_pages_read);
    EXPECT_EQ(rec_a.journal_entries_replayed, rec_b.journal_entries_replayed);
    EXPECT_EQ(rec_a.blocks_scanned, rec_b.blocks_scanned);
    EXPECT_EQ(rec_a.pages_scanned, rec_b.pages_scanned);
    EXPECT_EQ(rec_a.mappings_recovered, rec_b.mappings_recovered);
    EXPECT_EQ(rec_a.tail_updates_rescued, rec_b.tail_updates_rescued);
    EXPECT_EQ(rec_a.stale_mappings_dropped, rec_b.stale_mappings_dropped);
    for (std::size_t i = crash_after; i < ops.size(); ++i) {
      apply_scalar(scalar, ops[i]);
      apply_span(span, ops[i]);
    }
    expect_identical(scalar, span);
  }
}

// Incremental remount verification (the default) and the exhaustive sweep
// must agree: same recovery outcome, same post-remount state, and both
// checkers pass on the same device at every remount.
TEST(FtlSpanCrash, IncrementalAndExhaustiveRemountVerifyAgree) {
  Ftl incremental(journaled_small(/*exhaustive=*/false));
  Ftl exhaustive(journaled_small(/*exhaustive=*/true));
  const auto ops =
      random_span_ops(0xabcdULL, incremental.logical_pages(), 150, 0.2);
  std::size_t cursor = 0;
  for (int cycle = 0; cycle < 3; ++cycle) {
    for (std::size_t i = 0; i < 40; ++i, ++cursor) {
      apply_span(incremental, ops[cursor % ops.size()]);
      apply_span(exhaustive, ops[cursor % ops.size()]);
    }
    incremental.power_loss();
    exhaustive.power_loss();
    const auto rec_a = incremental.recover();
    const auto rec_b = exhaustive.recover();
    EXPECT_EQ(rec_a.mappings_recovered, rec_b.mappings_recovered);
    EXPECT_EQ(rec_a.pages_scanned, rec_b.pages_scanned);
    // Both verification modes hold on both devices at the remount point.
    incremental.check_invariants();
    incremental.check_invariants_incremental();
    exhaustive.check_invariants();
    exhaustive.check_invariants_incremental();
  }
  expect_identical(incremental, exhaustive);
}

TEST(FtlSpan, ReadSpanMatchesTranslateLoop) {
  Ftl ftl(small_ftl());
  for (Lpn lpn = 10; lpn < 30; ++lpn) ftl.write(lpn);
  ftl.trim(15);
  ftl.trim(22);
  std::vector<Ppn> collected;
  const auto mapped = ftl.read_span(0, ftl.logical_pages(), &collected);
  std::vector<Ppn> expected;
  for (Lpn lpn = 0; lpn < ftl.logical_pages(); ++lpn) {
    if (const auto ppn = ftl.translate(lpn)) expected.push_back(*ppn);
  }
  EXPECT_EQ(mapped, expected.size());
  EXPECT_EQ(collected, expected);
  // Null sink: count only.
  EXPECT_EQ(ftl.read_span(0, ftl.logical_pages(), nullptr), mapped);
}

TEST(FtlSpan, RejectsOutOfRangeExtents) {
  Ftl ftl(small_ftl());
  EXPECT_THROW(ftl.write_span(ftl.logical_pages() - 2, 5), Error);
  EXPECT_THROW(ftl.trim_span(ftl.logical_pages(), 1), Error);
  EXPECT_THROW(
      static_cast<void>(ftl.read_span(0, ftl.logical_pages() + 1, nullptr)),
      Error);
  // Zero-length extents at the boundary are legal no-ops.
  EXPECT_NO_THROW(ftl.write_span(ftl.logical_pages(), 0));
  ftl.check_invariants();
}

TEST(Ftl, RecordMetricsExportsFreePagesAndWaGauges) {
  Ftl ftl(small_ftl());
  for (Lpn lpn = 0; lpn < 30; ++lpn) ftl.write(lpn);
  for (Lpn lpn = 0; lpn < 30; ++lpn) ftl.write(lpn);  // force relocations
  obs::MetricsRegistry registry;
  ftl.stats().record_metrics(registry);
  ASSERT_NE(registry.find_gauge("ftl.free_pages"), nullptr);
  EXPECT_DOUBLE_EQ(registry.find_gauge("ftl.free_pages")->value,
                   static_cast<double>(ftl.stats().free_pages));
  EXPECT_GT(registry.find_gauge("ftl.free_pages")->value, 0.0);
  ASSERT_NE(registry.find_gauge("ftl.wa"), nullptr);
  EXPECT_GE(registry.find_gauge("ftl.wa")->value, 1.0);
  EXPECT_DOUBLE_EQ(registry.find_gauge("ftl.wa")->value,
                   ftl.stats().write_amplification());
}

}  // namespace
}  // namespace isp::flash
