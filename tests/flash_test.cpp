// Unit + property tests: NAND timing, the flash array, and the FTL.
#include <gtest/gtest.h>

#include <set>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "flash/flash_array.hpp"
#include "flash/ftl.hpp"
#include "flash/nand.hpp"
#include "obs/metrics.hpp"

namespace isp::flash {
namespace {

TEST(Nand, DefaultGeometryMatchesPaperBandwidth) {
  // §IV-A: 9 GB/s effective internal read bandwidth.
  const auto bw = effective_read_bandwidth(NandGeometry{}, NandTiming{});
  EXPECT_NEAR(bw.value() / 1e9, 9.0, 0.3);
}

TEST(Nand, WriteBandwidthBelowRead) {
  const auto read = effective_read_bandwidth(NandGeometry{}, NandTiming{});
  const auto write = effective_write_bandwidth(NandGeometry{}, NandTiming{});
  EXPECT_LT(write.value(), read.value());
  EXPECT_GT(write.value(), 0.0);
}

TEST(Nand, ChannelCeilingBinds) {
  NandGeometry g;
  g.channels = 1;  // single channel: 1.2 GB/s ceiling
  const auto bw = effective_read_bandwidth(g, NandTiming{});
  EXPECT_NEAR(bw.value() / 1e9, 1.2, 0.2);
}

TEST(FlashArray, BulkReadTime) {
  FlashArray array;
  // 6.9 GB at ~9 GB/s -> ~0.77 s.
  const Seconds t = array.read_seconds(gigabytes(6.9));
  EXPECT_NEAR(t.value(), 0.77, 0.05);
  EXPECT_DOUBLE_EQ(array.read_seconds(Bytes{0}).value(), 0.0);
}

TEST(FlashArray, AvailabilityDeratesReads) {
  FlashArray array;
  array.set_availability(sim::AvailabilitySchedule::constant(0.5));
  const SimTime done = array.read_finish(SimTime{0.0}, gigabytes(6.9));
  EXPECT_NEAR(done.seconds(), 2.0 * 0.77, 0.1);
}

TEST(FlashArray, StatsAccumulate) {
  FlashArray array;
  array.note_read(Bytes{100});
  array.note_write(Bytes{50});
  EXPECT_EQ(array.bytes_read().count(), 100u);
  EXPECT_EQ(array.bytes_written().count(), 50u);
  array.reset_stats();
  EXPECT_EQ(array.bytes_read().count(), 0u);
}

FtlConfig small_ftl() {
  FtlConfig config;
  config.geometry.channels = 1;
  config.geometry.dies_per_channel = 1;
  config.geometry.planes_per_die = 1;
  config.geometry.blocks_per_die = 24;
  config.geometry.pages_per_block = 8;
  config.overprovision = 0.3;
  return config;
}

TEST(Ftl, TranslateAfterWrite) {
  Ftl ftl(small_ftl());
  EXPECT_FALSE(ftl.translate(0).has_value());
  ftl.write(0);
  ASSERT_TRUE(ftl.translate(0).has_value());
  ftl.check_invariants();
}

TEST(Ftl, OverwriteMovesPage) {
  Ftl ftl(small_ftl());
  ftl.write(3);
  const auto first = ftl.translate(3);
  ftl.write(3);
  const auto second = ftl.translate(3);
  ASSERT_TRUE(first && second);
  EXPECT_NE(*first, *second);
  ftl.check_invariants();
}

TEST(Ftl, TrimDropsMapping) {
  Ftl ftl(small_ftl());
  ftl.write(5);
  ftl.trim(5);
  EXPECT_FALSE(ftl.translate(5).has_value());
  ftl.check_invariants();
  // Trim of an unwritten page is a no-op.
  EXPECT_NO_THROW(ftl.trim(6));
}

TEST(Ftl, RejectsOutOfRange) {
  Ftl ftl(small_ftl());
  EXPECT_THROW(ftl.write(ftl.logical_pages()), Error);
  EXPECT_THROW(static_cast<void>(ftl.translate(ftl.logical_pages())),
               Error);
}

TEST(Ftl, OverprovisionHidesCapacity) {
  const Ftl ftl(small_ftl());
  const auto physical = small_ftl().geometry.total_pages();
  EXPECT_LT(ftl.logical_pages(), physical);
  EXPECT_GT(ftl.logical_pages(), physical / 2);
}

TEST(Ftl, RejectsInfeasibleWatermarks) {
  FtlConfig config = small_ftl();
  config.overprovision = 0.01;  // logical blocks leave no room for GC
  EXPECT_THROW(Ftl{config}, Error);
}

TEST(Ftl, SequentialFillNeverStarves) {
  Ftl ftl(small_ftl());
  for (Lpn lpn = 0; lpn < ftl.logical_pages(); ++lpn) {
    ftl.write(lpn);
  }
  ftl.check_invariants();
  // Every page still resolves.
  for (Lpn lpn = 0; lpn < ftl.logical_pages(); ++lpn) {
    EXPECT_TRUE(ftl.translate(lpn).has_value());
  }
}

TEST(Ftl, SteadyStateOverwriteTriggersGc) {
  Ftl ftl(small_ftl());
  Rng rng(99);
  for (int i = 0; i < 2000; ++i) {
    ftl.write(rng.uniform_u64(0, ftl.logical_pages() - 1));
  }
  EXPECT_GT(ftl.stats().gc_invocations, 0u);
  EXPECT_GT(ftl.stats().erases, 0u);
  EXPECT_GE(ftl.stats().write_amplification(), 1.0);
  EXPECT_GE(ftl.gc_pressure(), 0.0);
  EXPECT_LT(ftl.gc_pressure(), 1.0);
  ftl.check_invariants();
}

// Lower overprovisioning leaves headroom to retire several blocks: the
// feasibility check keeps logical + spare + watermark + retired <= total.
FtlConfig retirable_ftl() {
  FtlConfig config = small_ftl();
  config.overprovision = 0.5;
  return config;
}

TEST(FtlRetire, RetiredBlockRelocatesValidPagesAndStaysExcluded) {
  Ftl ftl(retirable_ftl());
  for (Lpn lpn = 0; lpn < ftl.logical_pages(); ++lpn) ftl.write(lpn);

  // Retire the block holding lpn 0's page: the mapping must survive on a
  // different block, and the accounting must partition exactly.
  const Ppn victim_ppn = *ftl.translate(0);
  const auto victim_block =
      victim_ppn / retirable_ftl().geometry.pages_per_block;
  const auto free_before = ftl.free_blocks();
  ftl.retire_block(victim_block);

  EXPECT_EQ(ftl.retired_blocks(), 1u);
  EXPECT_EQ(ftl.stats().blocks_retired, 1u);
  ASSERT_TRUE(ftl.translate(0).has_value());
  EXPECT_NE(*ftl.translate(0) / retirable_ftl().geometry.pages_per_block,
            victim_block);
  ftl.check_invariants();
  // Retiring again is a no-op.
  ftl.retire_block(victim_block);
  EXPECT_EQ(ftl.retired_blocks(), 1u);
  // A retired block never rejoins the free pool, so at equal load the pool
  // can only have shrunk.
  EXPECT_LE(ftl.free_blocks(), free_before);
}

TEST(FtlRetire, RefusesToRetireBelowFeasibility) {
  Ftl ftl(retirable_ftl());
  std::uint64_t retired = 0;
  std::uint64_t block = 0;
  // Retire until the feasibility guard trips; it must trip before the FTL
  // could deadlock, and every successful retirement keeps the invariants.
  try {
    for (;; ++block) {
      ftl.retire_block(block);
      ++retired;
      ftl.check_invariants();
    }
  } catch (const Error&) {
  }
  EXPECT_GT(retired, 0u);
  EXPECT_EQ(ftl.retired_blocks(), retired);
  EXPECT_LT(retired, ftl.total_blocks());
  ftl.check_invariants();
  // The survivor set still absorbs a full logical overwrite pass.
  for (Lpn lpn = 0; lpn < ftl.logical_pages(); ++lpn) ftl.write(lpn);
  ftl.check_invariants();
}

// Property: block retirement interleaved with GC-inducing churn.  The GC
// victim scan must skip retired blocks, relocation must never target one,
// and free + in-use + retired must partition the block set throughout.
class FtlRetireChurn : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FtlRetireChurn, InvariantsUnderChurnWithRetirement) {
  Ftl ftl(retirable_ftl());
  Rng rng(GetParam());
  std::uint64_t next_retire = 0;
  for (int i = 0; i < 3000; ++i) {
    const Lpn lpn = rng.uniform_u64(0, ftl.logical_pages() - 1);
    if (rng.next_double() < 0.85) {
      ftl.write(lpn);
    } else {
      ftl.trim(lpn);
    }
    // Every ~700 ops retire another block — mid-churn, so GC is typically
    // between victims when the block disappears from its candidate set.
    if (i % 700 == 350 && ftl.retired_blocks() < 3) {
      ftl.retire_block(next_retire);
      next_retire += 5;  // spread across the array
      ftl.check_invariants();
    }
  }
  EXPECT_EQ(ftl.retired_blocks(), 3u);
  EXPECT_GT(ftl.stats().gc_invocations, 0u)
      << "churn too light to exercise GC against retirement";
  ftl.check_invariants();

  std::set<Ppn> seen;
  const auto ppb = retirable_ftl().geometry.pages_per_block;
  for (Lpn lpn = 0; lpn < ftl.logical_pages(); ++lpn) {
    if (const auto ppn = ftl.translate(lpn)) {
      EXPECT_TRUE(seen.insert(*ppn).second);
      // No live page may sit on a retired block.
      EXPECT_NE(*ppn / ppb, 0u);
      EXPECT_NE(*ppn / ppb, 5u);
      EXPECT_NE(*ppn / ppb, 10u);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FtlRetireChurn,
                         ::testing::Values(7, 29, 59, 83));

// Property: invariants hold after arbitrary interleavings of write/trim, and
// distinct logical pages never alias the same physical page.
class FtlChurn : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FtlChurn, InvariantsUnderRandomOps) {
  Ftl ftl(small_ftl());
  Rng rng(GetParam());
  for (int i = 0; i < 3000; ++i) {
    const Lpn lpn = rng.uniform_u64(0, ftl.logical_pages() - 1);
    if (rng.next_double() < 0.85) {
      ftl.write(lpn);
    } else {
      ftl.trim(lpn);
    }
  }
  ftl.check_invariants();

  std::set<Ppn> seen;
  for (Lpn lpn = 0; lpn < ftl.logical_pages(); ++lpn) {
    if (const auto ppn = ftl.translate(lpn)) {
      EXPECT_TRUE(seen.insert(*ppn).second)
          << "two logical pages share ppn " << *ppn;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FtlChurn,
                         ::testing::Values(11, 23, 37, 41, 53, 67, 79, 97));

TEST(Ftl, RecordMetricsExportsFreePagesAndWaGauges) {
  Ftl ftl(small_ftl());
  for (Lpn lpn = 0; lpn < 30; ++lpn) ftl.write(lpn);
  for (Lpn lpn = 0; lpn < 30; ++lpn) ftl.write(lpn);  // force relocations
  obs::MetricsRegistry registry;
  ftl.stats().record_metrics(registry);
  ASSERT_NE(registry.find_gauge("ftl.free_pages"), nullptr);
  EXPECT_DOUBLE_EQ(registry.find_gauge("ftl.free_pages")->value,
                   static_cast<double>(ftl.stats().free_pages));
  EXPECT_GT(registry.find_gauge("ftl.free_pages")->value, 0.0);
  ASSERT_NE(registry.find_gauge("ftl.wa"), nullptr);
  EXPECT_GE(registry.find_gauge("ftl.wa")->value, 1.0);
  EXPECT_DOUBLE_EQ(registry.find_gauge("ftl.wa")->value,
                   ftl.stats().write_amplification());
}

}  // namespace
}  // namespace isp::flash
