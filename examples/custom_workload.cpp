// Custom workload: author a brand-new application against the public API and
// let the runtime place it — no ISP knowledge required in the "program".
//
//   $ ./examples/custom_workload
//
// The workload is a log-analytics pipeline that is NOT part of the paper's
// evaluation: scan a large structured log, keep error records, sessionise
// them, and produce a top-talkers digest.  The point of the example is the
// authoring surface: datasets + lines with real kernels and cost laws; the
// sampling phase, Algorithm 1, code generation and monitoring come for free.
#include <algorithm>
#include <cstdio>
#include <map>
#include <vector>

#include "apps/data_gen.hpp"
#include "baseline/baselines.hpp"
#include "runtime/active_runtime.hpp"

namespace {

using namespace isp;

struct LogRecord {
  std::uint32_t source_id;
  std::uint32_t status;  // HTTP-ish status code
  std::uint64_t latency_us;
};
static_assert(sizeof(LogRecord) == 16);

ir::Program make_log_analytics() {
  // 8 GB of log records, physically scaled 128:1 like the paper workloads.
  constexpr double kVirtualScale = 128.0;
  const Bytes virtual_bytes = gigabytes(8.0);
  const auto records = static_cast<std::size_t>(
      virtual_bytes.as_double() / kVirtualScale / sizeof(LogRecord));

  ir::Program program("log-analytics", kVirtualScale);

  ir::Dataset logs;
  logs.object.name = "log_file";
  logs.object.location = mem::Location::Storage;
  logs.object.virtual_bytes = virtual_bytes;
  logs.object.physical.resize_elems<LogRecord>(records);
  logs.elem_bytes = sizeof(LogRecord);
  {
    Rng rng(2026);
    for (auto& r : logs.object.physical.as<LogRecord>()) {
      r.source_id = static_cast<std::uint32_t>(rng.zipf(100000, 0.8));
      const double p = rng.next_double();
      r.status = p < 0.92 ? 200 : (p < 0.97 ? 404 : 500);
      r.latency_us = rng.uniform_u64(100, 50000);
    }
  }
  program.add_dataset(std::move(logs));

  {
    ir::CodeRegion line;
    line.name = "errors = logs[status >= 500]";
    line.inputs = {"log_file"};
    line.outputs = {"errors"};
    line.elem_bytes = sizeof(LogRecord);
    line.cost.cycles_per_elem = 48.0;  // 3 cycles/byte predicate
    line.csd_threads = 6;
    line.chunks = 64;
    line.kernel = [](ir::KernelCtx& ctx) {
      const auto in = ctx.input(0).physical.as<LogRecord>();
      std::size_t kept = 0;
      for (const auto& r : in) kept += (r.status >= 500) ? 1 : 0;
      auto& out = ctx.output(0);
      out.physical.resize_elems<LogRecord>(kept);
      auto dst = out.physical.as<LogRecord>();
      std::size_t i = 0;
      for (const auto& r : in) {
        if (r.status >= 500) dst[i++] = r;
      }
    };
    program.add_line(std::move(line));
  }

  {
    ir::CodeRegion line;
    line.name = "sessions = group_by_source(errors)";
    line.inputs = {"errors"};
    line.outputs = {"sessions"};
    line.elem_bytes = sizeof(LogRecord);
    line.cost.cycles_per_elem = 120.0;  // hash aggregation
    line.csd_threads = 4;
    line.chunks = 16;
    line.kernel = [](ir::KernelCtx& ctx) {
      const auto in = ctx.input(0).physical.as<LogRecord>();
      std::map<std::uint32_t, std::pair<std::uint64_t, std::uint64_t>> agg;
      for (const auto& r : in) {
        auto& [count, total_latency] = agg[r.source_id];
        ++count;
        total_latency += r.latency_us;
      }
      auto& out = ctx.output(0);
      out.physical.resize_elems<std::uint64_t>(agg.size() * 3);
      auto dst = out.physical.as<std::uint64_t>();
      std::size_t i = 0;
      for (const auto& [source, pair] : agg) {
        dst[i++] = source;
        dst[i++] = pair.first;
        dst[i++] = pair.second;
      }
    };
    program.add_line(std::move(line));
  }

  {
    ir::CodeRegion line;
    line.name = "digest = top_talkers(sessions)";
    line.inputs = {"sessions"};
    line.outputs = {"digest"};
    line.elem_bytes = 3.0 * sizeof(std::uint64_t);
    line.cost.cycles_per_elem = 40.0;
    line.csd_threads = 2;
    line.chunks = 4;
    line.kernel = [](ir::KernelCtx& ctx) {
      const auto in = ctx.input(0).physical.as<std::uint64_t>();
      std::vector<std::pair<std::uint64_t, std::uint64_t>> talkers;
      for (std::size_t i = 0; i + 2 < in.size(); i += 3) {
        talkers.emplace_back(in[i + 1], in[i]);  // (count, source)
      }
      const std::size_t k = std::min<std::size_t>(10, talkers.size());
      std::partial_sort(talkers.begin(), talkers.begin() + k, talkers.end(),
                        std::greater<>());
      auto& out = ctx.output(0);
      out.physical.resize_elems<std::uint64_t>(2 * k);
      auto dst = out.physical.as<std::uint64_t>();
      for (std::size_t i = 0; i < k; ++i) {
        dst[2 * i] = talkers[i].second;
        dst[2 * i + 1] = talkers[i].first;
      }
    };
    program.add_line(std::move(line));
  }

  return program;
}

}  // namespace

int main() {
  const auto program = make_log_analytics();
  program.validate();

  system::SystemModel system;
  const auto baseline = baseline::run_host_only(system, program);
  std::printf("log-analytics (8 GB of records), no-ISP C baseline: %.2f s\n",
              baseline.total.value());

  runtime::ActiveRuntime runtime(system);
  const auto result = runtime.run(program);

  std::printf("ActiveCpp end-to-end: %.2f s (%.2fx), plan: ",
              result.end_to_end().value(),
              baseline.total.value() / result.end_to_end().value());
  for (const auto p : result.plan.placement) {
    std::printf("%c", p == ir::Placement::Csd ? 'C' : 'h');
  }
  std::printf("\n\n%s", result.report.to_string().c_str());

  // The digest itself, computed on the physically scaled payload.
  auto store = program.make_store();
  runtime::EngineOptions options;
  options.monitoring = false;
  options.migration = false;
  runtime::run_program(system, program, result.plan,
                       codegen::ExecMode::NativeC, options, &store);
  const auto digest = store.at("digest").physical.as<std::uint64_t>();
  std::printf("\ntop error sources (source id: error count):\n");
  for (std::size_t i = 0; i + 1 < digest.size(); i += 2) {
    std::printf("  %6llu: %llu\n",
                static_cast<unsigned long long>(digest[i]),
                static_cast<unsigned long long>(digest[i + 1]));
  }
  return 0;
}
