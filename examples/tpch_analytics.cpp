// TPC-H analytics: the paper's headline comparison on the three queries.
//
//   $ ./examples/tpch_analytics
//
// For Q1, Q6 and Q14 this example runs four configurations on the same
// simulated platform and prints the end-to-end latencies side by side:
//   1. the no-ISP C baseline;
//   2. stock interpreted Python (no ISP);
//   3. the optimal programmer-directed C ISP partitioning (exhaustive);
//   4. automatic ActiveCpp, hints-free.
#include <cstdio>

#include "apps/registry.hpp"
#include "baseline/baselines.hpp"
#include "runtime/active_runtime.hpp"

int main() {
  using namespace isp;

  std::printf("%-10s %12s %12s %14s %12s %10s\n", "query", "C base",
              "python", "directed ISP", "activecpp", "speedup");
  std::printf("%s\n", std::string(76, '-').c_str());

  for (const char* name : {"tpch-q1", "tpch-q6", "tpch-q14"}) {
    apps::AppConfig config;
    const auto program = apps::make_app(name, config);

    system::SystemModel system;
    const auto c_base = baseline::run_host_only(system, program);
    const auto python = baseline::run_host_only(
        system, program, codegen::ExecMode::Interpreted);

    const auto oracle = baseline::programmer_directed_plan(system, program);
    const auto directed = baseline::run_static_isp(
        system, program, oracle.best, sim::AvailabilitySchedule::constant(1.0));

    runtime::ActiveRuntime active(system);
    const auto result = active.run(program);

    std::printf("%-10s %11.2fs %11.2fs %13.2fs %11.2fs %9.2fx\n", name,
                c_base.total.value(), python.total.value(),
                directed.total.value(), result.end_to_end().value(),
                c_base.total.value() / result.end_to_end().value());

    std::printf("  plan: ");
    for (std::size_t i = 0; i < program.line_count(); ++i) {
      std::printf("%s[%s]  ", program.lines()[i].name.c_str(),
                  result.plan.placement[i] == ir::Placement::Csd ? "csd"
                                                                 : "host");
    }
    std::printf("\n  link traffic: %.2f GB raw input, %.4f GB results\n\n",
                result.report.dma
                        .bytes[static_cast<int>(
                            interconnect::TransferKind::RawInput)]
                        .as_double() /
                    1e9,
                result.report.dma
                        .bytes[static_cast<int>(
                            interconnect::TransferKind::ProcessedOutput)]
                        .as_double() /
                    1e9);
  }

  std::printf(
      "The CSD reads lineitem at 9 GB/s internally and ships back only the\n"
      "filtered result, so the 5 GB/s host link never sees the raw table.\n");
  return 0;
}
