// activecpp_cli — run any registered workload under any configuration.
//
//   $ ./examples/activecpp_cli --app tpch-q6
//   $ ./examples/activecpp_cli --app kmeans --availability 0.5
//         --contention 0.1 --no-migration --json          (one line)
//   $ ./examples/activecpp_cli --app pagerank --trace /tmp/pagerank.json
//   $ ./examples/activecpp_cli --list
//
// Flags:
//   --app NAME           workload (see --list)
//   --mode MODE          nativec | interpreted | compiled | nocopy (default)
//   --availability F     constant CSE availability in (0, 1]
//   --contention F       drop CSE availability to F at 50% ISP progress
//   --host-availability F  constant host availability in (0, 1]
//   --no-migration       disable the migration machinery
//   --no-monitoring      disable status updates + the monitor
//   --static             run the exhaustive programmer-directed plan instead
//   --baseline           run host-only (no ISP) in the chosen mode
//   --nvmeof             attach the CSD over NVMe-oF/RDMA instead of PCIe
//   --size-factor F      scale the Table-I dataset (default 1.0)
//   --seed N             dataset seed
//   --fault-rate F       inject faults at every device-stack point-fault
//                        site with probability F per opportunity (0 = off,
//                        bit-for-bit identical to a run without the fault
//                        layer)
//   --fault-seed N       seed of the deterministic fault schedule
//   --power-loss-rate F  whole-device power cut with probability F per event
//                        boundary; the device recovers (NVMe reset, FTL
//                        journal/checkpoint remount) and the run completes
//                        with host-identical output
//   --crash-at N         deterministic single power loss at the N-th event
//                        boundary (the crash-point sweep's knob)
//   --json               print the execution report as JSON
//   --trace PATH         write a chrome://tracing timeline
//   --list               list registered workloads and exit
#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "apps/registry.hpp"
#include "baseline/baselines.hpp"
#include "runtime/active_runtime.hpp"
#include "runtime/trace.hpp"

namespace {

struct CliOptions {
  std::string app = "tpch-q6";
  isp::codegen::ExecMode mode = isp::codegen::ExecMode::CompiledNoCopy;
  double availability = 1.0;
  double contention = 0.0;  // 0 = disabled
  double host_availability = 1.0;
  bool migration = true;
  bool monitoring = true;
  bool run_static = false;
  bool run_baseline = false;
  bool nvmeof = false;
  double size_factor = 1.0;
  std::uint64_t seed = 42;
  double fault_rate = 0.0;
  std::uint64_t fault_seed = 0;
  double power_loss_rate = 0.0;
  std::int64_t crash_at = -1;  // -1 = disabled
  bool json = false;
  std::string trace_path;
};

/// Strict numeric parsing: std::atof silently turns garbage into 0.0, so
/// "--fault-rate banana" used to mean "no faults".  Reject anything that is
/// not a complete, finite number, with a clear message and exit code 2.
double parse_double(const char* flag, const char* text) {
  errno = 0;
  char* end = nullptr;
  const double v = std::strtod(text, &end);
  if (end == text || *end != '\0' || errno == ERANGE || !std::isfinite(v)) {
    std::fprintf(stderr, "%s: '%s' is not a number\n", flag, text);
    std::exit(2);
  }
  return v;
}

double parse_double_in(const char* flag, const char* text, double lo,
                       double hi) {
  const double v = parse_double(flag, text);
  if (v < lo || v > hi) {
    std::fprintf(stderr, "%s: %g is outside [%g, %g]\n", flag, v, lo, hi);
    std::exit(2);
  }
  return v;
}

std::uint64_t parse_uint(const char* flag, const char* text) {
  errno = 0;
  char* end = nullptr;
  const unsigned long long v = std::strtoull(text, &end, 10);
  if (end == text || *end != '\0' || errno == ERANGE || text[0] == '-') {
    std::fprintf(stderr, "%s: '%s' is not a non-negative integer\n", flag,
                 text);
    std::exit(2);
  }
  return v;
}

isp::codegen::ExecMode parse_mode(const std::string& mode) {
  if (mode == "nativec") return isp::codegen::ExecMode::NativeC;
  if (mode == "interpreted") return isp::codegen::ExecMode::Interpreted;
  if (mode == "compiled") return isp::codegen::ExecMode::Compiled;
  if (mode == "nocopy") return isp::codegen::ExecMode::CompiledNoCopy;
  std::fprintf(stderr, "unknown mode '%s'\n", mode.c_str());
  std::exit(2);
}

[[noreturn]] void list_apps() {
  std::printf("registered workloads:\n");
  for (const auto& app : isp::apps::all_apps()) {
    std::printf("  %-14s %5.1f GB  %s\n", app.name.c_str(),
                app.table1_bytes.as_double() / 1e9, app.description.c_str());
  }
  std::exit(0);
}

CliOptions parse(int argc, char** argv) {
  CliOptions options;
  auto value = [&](int& i) -> const char* {
    if (i + 1 >= argc) {
      std::fprintf(stderr, "missing value for %s\n", argv[i]);
      std::exit(2);
    }
    return argv[++i];
  };
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--app") {
      options.app = value(i);
    } else if (arg == "--mode") {
      options.mode = parse_mode(value(i));
    } else if (arg == "--availability") {
      options.availability =
          parse_double_in("--availability", value(i), 1e-6, 1.0);
    } else if (arg == "--contention") {
      options.contention = parse_double_in("--contention", value(i), 0.0, 1.0);
    } else if (arg == "--host-availability") {
      options.host_availability =
          parse_double_in("--host-availability", value(i), 1e-6, 1.0);
    } else if (arg == "--no-migration") {
      options.migration = false;
    } else if (arg == "--no-monitoring") {
      options.monitoring = false;
    } else if (arg == "--static") {
      options.run_static = true;
    } else if (arg == "--baseline") {
      options.run_baseline = true;
    } else if (arg == "--nvmeof") {
      options.nvmeof = true;
    } else if (arg == "--size-factor") {
      options.size_factor = parse_double("--size-factor", value(i));
      if (options.size_factor <= 0.0) {
        std::fprintf(stderr, "--size-factor must be positive\n");
        std::exit(2);
      }
    } else if (arg == "--seed") {
      options.seed = parse_uint("--seed", value(i));
    } else if (arg == "--fault-rate") {
      options.fault_rate = parse_double_in("--fault-rate", value(i), 0.0, 1.0);
    } else if (arg == "--fault-seed") {
      options.fault_seed = parse_uint("--fault-seed", value(i));
    } else if (arg == "--power-loss-rate") {
      options.power_loss_rate =
          parse_double_in("--power-loss-rate", value(i), 0.0, 1.0);
    } else if (arg == "--crash-at") {
      options.crash_at =
          static_cast<std::int64_t>(parse_uint("--crash-at", value(i)));
    } else if (arg == "--json") {
      options.json = true;
    } else if (arg == "--trace") {
      options.trace_path = value(i);
    } else if (arg == "--list") {
      list_apps();
    } else {
      std::fprintf(stderr, "unknown flag '%s' (see header comment)\n",
                   arg.c_str());
      std::exit(2);
    }
  }
  return options;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace isp;
  const CliOptions options = parse(argc, argv);

  apps::AppConfig app_config;
  app_config.size_factor = options.size_factor;
  app_config.seed = options.seed;
  const auto program = apps::make_app(options.app, app_config);

  const auto sys_config = options.nvmeof
                              ? system::SystemConfig::paper_platform_nvmeof()
                              : system::SystemConfig::paper_platform();
  system::SystemModel system(sys_config);

  runtime::ExecutionReport report;
  if (options.run_baseline) {
    report = baseline::run_host_only(system, program, options.mode);
  } else if (options.run_static) {
    const auto oracle = baseline::programmer_directed_plan(system, program);
    runtime::ContentionTrigger trigger;
    if (options.contention > 0.0) {
      trigger.enabled = true;
      trigger.availability = options.contention;
    }
    report = baseline::run_static_isp(
        system, program, oracle.best,
        sim::AvailabilitySchedule::constant(options.availability), trigger);
  } else {
    runtime::RunConfig rc;
    rc.mode = options.mode;
    rc.engine.migration = options.migration;
    rc.engine.monitoring = options.monitoring;
    rc.engine.fault.seed = options.fault_seed;
    rc.engine.fault.set_rate_all(options.fault_rate);
    if (options.crash_at >= 0) {
      // One deterministic power loss at exactly the N-th event boundary.
      auto& site = rc.engine.fault.sites[static_cast<std::size_t>(
          fault::Site::PowerLoss)];
      site.rate = 1.0;
      site.skip_first = static_cast<std::uint64_t>(options.crash_at);
      site.max_faults = 1;
    } else if (options.power_loss_rate > 0.0) {
      rc.engine.fault.set_rate(fault::Site::PowerLoss,
                               options.power_loss_rate);
    }
    rc.engine.cse_availability =
        sim::AvailabilitySchedule::constant(options.availability);
    rc.engine.host_availability =
        sim::AvailabilitySchedule::constant(options.host_availability);
    if (options.contention > 0.0) {
      rc.engine.contention.enabled = true;
      rc.engine.contention.at_csd_progress = 0.5;
      rc.engine.contention.availability = options.contention;
    }
    runtime::ActiveRuntime active(system);
    const auto result = active.run(program, rc);
    report = result.report;
    if (!options.json) {
      std::printf("plan: ");
      for (const auto p : result.plan.placement) {
        std::printf("%c", p == ir::Placement::Csd ? 'C' : 'h');
      }
      std::printf("  (sampling %.3f s, device factor %.2f)\n",
                  result.sampling_overhead.value(), result.device_factor);
    }
  }

  if (options.json) {
    std::printf("%s\n", report.to_json().c_str());
  } else {
    std::printf("%s", report.to_string().c_str());
  }
  if (!options.trace_path.empty()) {
    runtime::write_chrome_trace(report, options.trace_path);
    std::fprintf(stderr, "trace written to %s\n",
                 options.trace_path.c_str());
  }
  return 0;
}
