// Adaptive migration: watch the monitor catch CSE contention and move the
// computation home (§III-D, Figure 5's mechanism).
//
//   $ ./examples/adaptive_migration [app-name] [availability]
//
// The run starts with the CSD fully dedicated; once the offloaded region
// reaches 50% progress, a co-tenant takes most of the CSE away.  The full
// runtime detects the instruction-rate collapse through the status-update
// stream, re-estimates the remaining device time from the measured rate,
// prices the move (code regeneration + live-data movement + host compute)
// and migrates at the Python-line breakpoint.  A second, migration-disabled
// run shows what a conventional static ISP framework would have suffered.
#include <cstdio>
#include <cstdlib>
#include <string>

#include "apps/registry.hpp"
#include "baseline/baselines.hpp"
#include "common/log.hpp"
#include "runtime/active_runtime.hpp"

int main(int argc, char** argv) {
  using namespace isp;

  const std::string app = argc > 1 ? argv[1] : "kmeans";
  const double availability = argc > 2 ? std::atof(argv[2]) : 0.1;

  apps::AppConfig config;
  const auto program = apps::make_app(app, config);

  system::SystemModel baseline_system;
  const auto baseline = baseline::run_host_only(baseline_system, program);
  std::printf("== %s under CSE contention (%.0f%% left after 50%% progress)\n",
              app.c_str(), availability * 100.0);
  std::printf("no-CSD baseline: %.2f s\n\n", baseline.total.value());

  runtime::RunConfig rc;
  rc.engine.contention.enabled = true;
  rc.engine.contention.at_csd_progress = 0.5;
  rc.engine.contention.availability = availability;

  set_log_level(LogLevel::Info);  // show the migration decision as it lands

  std::printf("--- full ActiveCpp (migration enabled) ---\n");
  system::SystemModel with_system;
  runtime::ActiveRuntime with_runtime(with_system);
  const auto with = with_runtime.run(program, rc);
  std::printf("%s\n", with.report.to_string().c_str());
  std::printf("migrations: %u, migration overhead: %.3f s\n\n",
              with.report.migrations, with.report.migration_overhead.value());

  set_log_level(LogLevel::Warn);

  std::printf("--- ActiveCpp w/o migration (conventional static ISP) ---\n");
  auto crippled = rc;
  crippled.engine.migration = false;
  system::SystemModel without_system;
  runtime::ActiveRuntime without_runtime(without_system);
  const auto without = without_runtime.run(program, crippled);
  std::printf("end-to-end: %.2f s\n\n", without.end_to_end().value());

  std::printf("summary vs baseline (%.2f s):\n", baseline.total.value());
  std::printf("  with migration:    %.2f s (%.2fx)\n",
              with.end_to_end().value(),
              baseline.total.value() / with.end_to_end().value());
  std::printf("  without migration: %.2f s (%.2fx)\n",
              without.end_to_end().value(),
              baseline.total.value() / without.end_to_end().value());
  std::printf("  migration advantage: %.2fx\n",
              without.end_to_end().value() / with.end_to_end().value());
  return 0;
}
