// Quickstart: run one unannotated program through the full ActiveCpp
// pipeline and inspect what the runtime decided.
//
//   $ ./examples/quickstart [app-name]
//
// The program (TPC-H Q6 by default) contains no ISP hints of any kind.  The
// runtime samples it at four scaling factors, fits complexity curves,
// derives the device factor from the CSD's performance counters, runs
// Algorithm 1, generates code and executes — printing the plan, the
// predicted-versus-actual volumes, and the end-to-end latency against the
// no-ISP C baseline.
#include <cstdio>
#include <string>

#include "apps/registry.hpp"
#include "baseline/baselines.hpp"
#include "runtime/active_runtime.hpp"

int main(int argc, char** argv) {
  const std::string app = argc > 1 ? argv[1] : "tpch-q6";

  isp::apps::AppConfig app_config;
  isp::system::SystemModel system;

  std::printf("== ActiveCpp quickstart: %s ==\n\n", app.c_str());
  const auto program = isp::apps::make_app(app, app_config);
  std::printf("program has %zu lines over %.2f GB of stored data\n",
              program.line_count(),
              program.total_storage_bytes().as_double() / 1e9);

  // The no-ISP C baseline every speedup is normalised to.
  const auto baseline = isp::baseline::run_host_only(system, program);
  std::printf("no-ISP C baseline: %.2f s\n\n", baseline.total.value());

  // The full pipeline: sampling -> fitting -> Algorithm 1 -> codegen -> run.
  isp::runtime::ActiveRuntime runtime(system);
  const auto result = runtime.run(program);

  std::printf("sampling overhead: %.4f s (4 scaling factors)\n",
              result.sampling_overhead.value());
  std::printf("device factor C: %.3f (from performance counters)\n",
              result.device_factor);
  std::printf("plan (Algorithm 1):\n");
  for (std::size_t i = 0; i < program.line_count(); ++i) {
    std::printf("  [%zu] %-44s -> %s\n", i, program.lines()[i].name.c_str(),
                std::string(isp::ir::to_string(result.plan.placement[i]))
                    .c_str());
  }
  std::printf("\nexecution timeline:\n%s\n",
              result.report.to_string().c_str());

  const double speedup =
      baseline.total.value() / result.end_to_end().value();
  std::printf("end-to-end: %.2f s  ->  speedup over C baseline: %.2fx\n",
              result.end_to_end().value(), speedup);
  return 0;
}
