#include "csd/cse.hpp"

#include <algorithm>
#include <utility>

#include "common/error.hpp"

namespace isp::csd {

Cse::Cse(CseConfig config) : config_(config) {
  ISP_CHECK(config_.cores > 0, "CSE needs at least one core");
  ISP_CHECK(config_.clock.value() > 0.0 && config_.host_clock.value() > 0.0,
            "clocks must be positive");
  ISP_CHECK(config_.ipc_vs_host > 0.0, "ipc ratio must be positive");
}

double Cse::core_speed_vs_host() const {
  return (config_.clock.value() / config_.host_clock.value()) *
         config_.ipc_vs_host;
}

Seconds Cse::compute_seconds(Seconds work, std::uint32_t threads) const {
  ISP_CHECK(threads > 0, "compute needs at least one thread");
  const auto usable = std::min(threads, config_.cores);
  return work / (static_cast<double>(usable) * core_speed_vs_host());
}

SimTime Cse::compute_finish(SimTime t0, Seconds work,
                            std::uint32_t threads) const {
  return availability_.finish_time(t0, compute_seconds(work, threads));
}

void Cse::set_availability(sim::AvailabilitySchedule schedule) {
  availability_ = std::move(schedule);
}

void Cse::retire(double instructions, double cycles) {
  counters_.instructions += instructions;
  counters_.cycles += cycles;
}

}  // namespace isp::csd
