#include "csd/firmware.hpp"

#include <utility>

#include "common/error.hpp"

namespace isp::csd {

Firmware::Firmware(sim::Simulator& simulator, Cse& cse,
                   nvme::CallQueue& calls, nvme::StatusQueue& status,
                   FirmwareConfig config)
    : simulator_(&simulator),
      cse_(&cse),
      calls_(&calls),
      status_(&status),
      config_(config) {
  ISP_CHECK(config_.chunks >= 1, "firmware needs at least one chunk");
}

void Firmware::start(ServiceTime service_time, Completion on_complete) {
  ISP_CHECK(service_time != nullptr, "firmware needs a service-time model");
  service_time_ = std::move(service_time);
  on_complete_ = std::move(on_complete);
  if (running_) return;
  running_ = true;
  const auto epoch = epoch_;
  simulator_->schedule(Seconds::zero(), [this, epoch] {
    if (epoch != epoch_) return;
    poll();
  });
}

void Firmware::poll() {
  if (!running_) return;
  if (!busy_) {
    if (const auto entry = calls_->fetch()) {
      busy_ = true;
      current_ = *entry;  // fetch is destructive; keep it for crash restart
      const Seconds total = service_time_(*entry);
      const Seconds chunk =
          total / static_cast<double>(config_.chunks);
      // Instruction accounting: chunks retire work proportional to their
      // share of the function, converted through the CSE clock.
      const double instr_per_chunk =
          chunk.value() * cse_->config().clock.value() / config_.chunks;
      run_chunk(*entry, chunk, 0, instr_per_chunk);
      return;  // chunk chain reschedules polling on completion
    }
  }
  const auto epoch = epoch_;
  simulator_->schedule(config_.poll_interval, [this, epoch] {
    if (epoch != epoch_) return;
    poll();
  });
}

void Firmware::run_chunk(nvme::CallEntry entry, Seconds chunk_time,
                         std::uint32_t chunk, double instr_per_chunk) {
  const auto epoch = epoch_;
  Seconds crash_penalty = Seconds::zero();
  if (injector_ != nullptr) {
    // A crash costs the core restart plus the chunk's lost progress; the
    // retry policy bounds how many times the firmware re-dispatches.
    const auto op = injector_->attempt(
        fault::Site::CseCrash, simulator_->now(),
        injector_->config().cse_restart + chunk_time);
    crash_penalty = op.penalty;
    if (op.exhausted) {
      // The core will not hold this function: abandon it, flag the host
      // through the high-priority status path so the runtime pulls the
      // line back (degradation ladder, final rung), and keep polling.
      simulator_->schedule(crash_penalty, [this, entry, chunk, op, epoch] {
        if (epoch != epoch_) return;
        nvme::StatusEntry status;
        status.line = entry.first_line;
        status.chunk = chunk;
        status.chunks_total = config_.chunks;
        status.instructions_retired = instructions_retired_;
        status.timestamp = simulator_->now();
        status.high_priority_request = true;
        status_->post(status);
        busy_ = false;
        current_.reset();
        ++functions_failed_;
        if (on_failure_) {
          on_failure_(entry,
                      isp::Status{StatusCode::DeviceCrash, op.faults});
        }
        simulator_->schedule(config_.poll_interval, [this, epoch] {
          if (epoch != epoch_) return;
          poll();
        });
      });
      return;
    }
  }
  // Execute one chunk under the CSE's availability, then report.
  const auto done = cse_->availability().finish_time(
      simulator_->now() + crash_penalty, chunk_time);
  ISP_CHECK(done < SimTime::infinity(), "CSE starved during firmware chunk");
  simulator_->schedule_at(done, [this, entry, chunk_time, chunk,
                                 instr_per_chunk, epoch] {
    if (epoch != epoch_) return;  // power cycle voided this chunk
    instructions_retired_ += instr_per_chunk;
    cse_->retire(instr_per_chunk, chunk_time.value() *
                                      cse_->config().clock.value());
    nvme::StatusEntry status;
    status.line = entry.first_line;
    status.chunk = chunk;
    status.chunks_total = config_.chunks;
    status.instructions_retired = instructions_retired_;
    status.timestamp = simulator_->now();
    status.high_priority_request = high_priority_;
    status_->post(status);

    if (chunk + 1 < config_.chunks) {
      run_chunk(entry, chunk_time, chunk + 1, instr_per_chunk);
    } else {
      busy_ = false;
      current_.reset();
      ++functions_executed_;
      if (on_complete_) on_complete_(entry);
      simulator_->schedule(config_.poll_interval, [this, epoch] {
        if (epoch != epoch_) return;
        poll();
      });
    }
  });
}

void Firmware::power_cycle() {
  ++epoch_;  // every scheduled chunk/poll lambda is now a no-op
  busy_ = false;
  high_priority_ = false;
  instructions_retired_ = 0.0;  // perf counters don't survive a reboot
  if (current_) {
    // The call record lives in host-visible memory; the host re-submits the
    // interrupted function, and the rebooted firmware runs it from chunk 0.
    if (calls_->submit(*current_)) ++functions_restarted_;
    current_.reset();
  }
  if (running_) {
    const auto epoch = epoch_;
    simulator_->schedule(config_.poll_interval, [this, epoch] {
      if (epoch != epoch_) return;
      poll();
    });
  }
}

}  // namespace isp::csd
