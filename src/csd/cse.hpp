// Computational storage engine: the CSD's processor complex (§IV-A).
//
// Eight ARM Cortex-A72-class cores.  A single A72 core at 1.5 GHz retires
// roughly half the work per cycle of a Zen2 core, so its speed relative to
// one host core is (1.5/3.6) × 0.5 ≈ 0.21 — the CSE is *slower* than the
// host per core (§II-B(1)); offload only wins when the firmware spreads a
// data-parallel line across all eight cores and the data-volume savings of
// Equation 1 pay for the remaining gap.
//
// The availability schedule models the fraction of CSE capacity left to the
// ISP task when the device also serves other tenants or storage-management
// work — the x-axis of Figure 2 and the stress knob of Figure 5.
#pragma once

#include <cstdint>

#include "common/units.hpp"
#include "sim/availability.hpp"

namespace isp::csd {

struct CseConfig {
  std::uint32_t cores = 8;
  Hertz clock = ghz(1.5);
  /// Work per cycle relative to a host core at equal clock (micro-arch gap).
  double ipc_vs_host = 0.5;
  /// Host core clock, for the speed ratio (kept here so the CSE can answer
  /// performance-counter queries without a host handle).
  Hertz host_clock = ghz(3.6);
};

/// Hardware performance counters the runtime queries to derive the paper's
/// constant factor C (§III-A) without running a calibration kernel.
struct CseCounters {
  double cycles = 0.0;
  double instructions = 0.0;

  [[nodiscard]] double ipc() const {
    return cycles > 0.0 ? instructions / cycles : 0.0;
  }
};

class Cse {
 public:
  Cse() : Cse(CseConfig{}) {}
  explicit Cse(CseConfig config);

  [[nodiscard]] const CseConfig& config() const { return config_; }

  /// Speed of one CSE core relative to one host core.
  [[nodiscard]] double core_speed_vs_host() const;

  /// Wall time (at full availability) of `work` host-core seconds spread
  /// over `threads` CSE cores.
  [[nodiscard]] Seconds compute_seconds(Seconds work,
                                        std::uint32_t threads) const;

  /// Completion under the availability schedule, starting at t0.
  [[nodiscard]] SimTime compute_finish(SimTime t0, Seconds work,
                                       std::uint32_t threads) const;

  void set_availability(sim::AvailabilitySchedule schedule);
  [[nodiscard]] const sim::AvailabilitySchedule& availability() const {
    return availability_;
  }

  /// Performance-counter bookkeeping (fed by the execution engine).
  void retire(double instructions, double cycles);
  [[nodiscard]] const CseCounters& counters() const { return counters_; }
  void reset_counters() { counters_ = CseCounters{}; }

 private:
  CseConfig config_;
  sim::AvailabilitySchedule availability_;
  CseCounters counters_;
};

}  // namespace isp::csd
