#include "csd/device.hpp"

namespace isp::csd {

CsdDevice::CsdDevice(sim::Simulator& simulator, CsdConfig config)
    : config_(config),
      cse_(config.cse),
      flash_(config.nand_geometry, config.nand_timing),
      ftl_(std::make_unique<flash::Ftl>(
          flash::FtlConfig{.geometry = config.nand_geometry,
                           .overprovision = config.ftl_overprovision,
                           .journal = config.ftl_journal})),
      controller_(simulator, flash_, ftl_.get(), config.controller),
      io_queue_(/*id=*/1, config.queue_depth),
      call_queue_(config.call_queue_depth),
      status_queue_(config.status_queue_depth) {}

Seconds CsdDevice::call_overhead() const {
  return config_.controller.doorbell_to_fetch +
         config_.controller.completion_post;
}

void CsdDevice::apply_gc_pressure() {
  const double pressure = ftl_->gc_pressure();
  flash_.set_availability(
      sim::AvailabilitySchedule::constant(1.0 - pressure));
}

PowerCycleOutcome CsdDevice::power_cycle() {
  PowerCycleOutcome out;
  out.commands_requeued = controller_.power_cycle();
  cse_.reset_counters();  // perf counters are volatile
  if (ftl_->journaling() && ftl_->mounted()) {
    out.crash = ftl_->power_loss();
    out.recovery = ftl_->recover();
    out.remount_time =
        config_.nand_timing.page_read *
        static_cast<double>(out.recovery.media_reads());
  }
  return out;
}

}  // namespace isp::csd
