#include "csd/device.hpp"

namespace isp::csd {

CsdDevice::CsdDevice(sim::Simulator& simulator, CsdConfig config)
    : config_(config),
      cse_(config.cse),
      flash_(config.nand_geometry, config.nand_timing),
      ftl_(std::make_unique<flash::Ftl>(
          flash::FtlConfig{.geometry = config.nand_geometry,
                           .overprovision = config.ftl_overprovision})),
      controller_(simulator, flash_, ftl_.get(), config.controller),
      io_queue_(/*id=*/1, config.queue_depth),
      call_queue_(config.call_queue_depth),
      status_queue_(config.status_queue_depth) {}

Seconds CsdDevice::call_overhead() const {
  return config_.controller.doorbell_to_fetch +
         config_.controller.completion_post;
}

void CsdDevice::apply_gc_pressure() {
  const double pressure = ftl_->gc_pressure();
  flash_.set_availability(
      sim::AvailabilitySchedule::constant(1.0 - pressure));
}

}  // namespace isp::csd
