#include "csd/device.hpp"

#include "common/error.hpp"
#include "zns/zns.hpp"

namespace isp::csd {

namespace {

std::unique_ptr<flash::StorageBackend> make_storage(const CsdConfig& config) {
  switch (config.backend) {
    case flash::BackendKind::Ftl:
      return std::make_unique<flash::Ftl>(
          flash::FtlConfig{.geometry = config.nand_geometry,
                           .overprovision = config.ftl_overprovision,
                           .journal = config.ftl_journal});
    case flash::BackendKind::Zns:
      return std::make_unique<zns::ZnsDevice>(
          zns::ZnsConfig{.geometry = config.nand_geometry,
                         .zone_blocks = config.zns_zone_blocks,
                         .max_open_zones = config.zns_max_open_zones,
                         .overprovision = config.ftl_overprovision,
                         .journal = config.ftl_journal});
  }
  ISP_CHECK(false, "unknown storage backend kind: "
                       << static_cast<unsigned>(config.backend));
  return nullptr;
}

}  // namespace

CsdDevice::CsdDevice(sim::Simulator& simulator, CsdConfig config)
    : config_(config),
      cse_(config.cse),
      flash_(config.nand_geometry, config.nand_timing),
      storage_(make_storage(config)),
      controller_(simulator, flash_, storage_.get(), config.controller),
      io_queue_(/*id=*/1, config.queue_depth),
      call_queue_(config.call_queue_depth),
      status_queue_(config.status_queue_depth) {}

Seconds CsdDevice::call_overhead() const {
  return config_.controller.doorbell_to_fetch +
         config_.controller.completion_post;
}

void CsdDevice::apply_gc_pressure() {
  const double pressure = storage_->gc_pressure();
  flash_.set_availability(
      sim::AvailabilitySchedule::constant(1.0 - pressure));
}

PowerCycleOutcome CsdDevice::power_cycle() {
  PowerCycleOutcome out;
  out.commands_requeued = controller_.power_cycle();
  cse_.reset_counters();  // perf counters are volatile
  if (storage_->journaling() && storage_->mounted()) {
    out.crash = storage_->power_loss();
    out.recovery = storage_->recover();
    out.remount_time =
        config_.nand_timing.page_read *
        static_cast<double>(out.recovery.media_reads());
  }
  return out;
}

}  // namespace isp::csd
