// The computational storage device: CSE + flash + device DRAM + the NVMe
// control plane ActivePy talks through (Figure 1 of the paper).
#pragma once

#include <memory>

#include "csd/cse.hpp"
#include "flash/backend.hpp"
#include "flash/flash_array.hpp"
#include "flash/ftl.hpp"
#include "mem/address_space.hpp"
#include "nvme/call_queue.hpp"
#include "nvme/controller.hpp"
#include "nvme/queue.hpp"
#include "sim/simulator.hpp"

namespace isp::csd {

struct CsdConfig {
  CseConfig cse;
  flash::NandGeometry nand_geometry;
  flash::NandTiming nand_timing;
  /// Which storage-management model the device runs (flash/backend.hpp):
  /// the page-mapped FTL with device-side GC, or the zoned namespace with
  /// append-only zones and host-coordinated reclaim.
  flash::BackendKind backend = flash::BackendKind::Ftl;
  double ftl_overprovision = 0.125;
  /// The device backend journals its metadata by default: a real CSD must
  /// survive power loss.  (A bare Ftl constructed directly stays
  /// journal-free, so existing unit tests and cost models are unchanged.)
  flash::FtlJournalConfig ftl_journal{.enabled = true};
  /// ZNS-only shape knobs (ignored by the FTL backend).
  std::uint32_t zns_zone_blocks = 8;
  std::uint32_t zns_max_open_zones = 6;
  Bytes device_dram = 8_GiB;
  std::uint32_t queue_depth = 64;
  std::uint32_t call_queue_depth = 64;
  std::uint32_t status_queue_depth = 256;
  nvme::ControllerConfig controller;
};

/// What one whole-device power cycle did and cost.
struct PowerCycleOutcome {
  std::uint64_t commands_requeued = 0;   // aborted + requeued NVMe commands
  flash::StorageCrash crash;             // volatile backend state lost
  flash::StorageRecovery recovery;       // remount replay/scan statistics
  Seconds remount_time;                  // recovery media reads × page_read
};

class CsdDevice {
 public:
  CsdDevice(sim::Simulator& simulator, CsdConfig config);

  [[nodiscard]] Cse& cse() { return cse_; }
  [[nodiscard]] const Cse& cse() const { return cse_; }
  [[nodiscard]] flash::FlashArray& flash_array() { return flash_; }
  [[nodiscard]] const flash::FlashArray& flash_array() const { return flash_; }
  /// The storage-management backend behind the pluggable seam (FTL or ZNS,
  /// per CsdConfig::backend).
  [[nodiscard]] flash::StorageBackend& storage() { return *storage_; }
  [[nodiscard]] const flash::StorageBackend& storage() const {
    return *storage_;
  }
  [[nodiscard]] nvme::Controller& controller() { return controller_; }
  [[nodiscard]] nvme::QueuePair& io_queue() { return io_queue_; }
  [[nodiscard]] nvme::CallQueue& call_queue() { return call_queue_; }
  [[nodiscard]] nvme::StatusQueue& status_queue() { return status_queue_; }
  [[nodiscard]] const CsdConfig& config() const { return config_; }

  /// Round-trip control overhead of one CSD function invocation: doorbell to
  /// fetch plus completion post (the paper's NVMe-style short-latency call).
  [[nodiscard]] Seconds call_overhead() const;

  /// Fold reclaim pressure into the flash array's availability: when the
  /// backend is relocating pages (FTL GC or ZNS copy-forward), ISP reads see
  /// a derated internal bandwidth.
  void apply_gc_pressure();

  /// Whole-device power cycle: reset the NVMe controller (in-flight
  /// commands complete with Status::Aborted and are requeued by the host),
  /// clear the CSE's volatile state, crash and remount the storage backend
  /// (checkpoint + journal replay, OOB tail scan).  Returns the outcome;
  /// remount_time converts the remount's media reads through NandTiming.
  /// The controller is left quiescent — the recovery orchestration calls
  /// controller().restart() once the power_cycle downtime has elapsed.
  PowerCycleOutcome power_cycle();

 private:
  CsdConfig config_;
  Cse cse_;
  flash::FlashArray flash_;
  std::unique_ptr<flash::StorageBackend> storage_;
  nvme::Controller controller_;
  nvme::QueuePair io_queue_;
  nvme::CallQueue call_queue_;
  nvme::StatusQueue status_queue_;
};

}  // namespace isp::csd
