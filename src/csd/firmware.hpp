// The CSD firmware loop (§III-C(b)): "the CSD's CSE fetches a request from
// the call queue whenever the CSE is free".
//
// This is the device-resident half of ActivePy's control plane, run as
// events on the shared simulator: the host submits CallEntries describing
// generated CSD functions and rings a doorbell; the firmware fetches one
// entry at a time, executes it through a caller-provided function executor
// (the execution engine, in production; a stub, in tests), posts per-chunk
// status updates, and completes back to the host.  A high-priority flag
// raised by the device (e.g. the storage-management path needing the CSE)
// is propagated through the status stream, exactly as §III-D case 1
// describes.
//
// The analytic execution engine used by the benchmark harnesses charges the
// same call overheads without running this loop event-by-event; the firmware
// exists so the queue-pair protocol itself is a tested, working artefact
// (integration tests drive host→SQ→fetch→execute→status→CQ end to end).
#pragma once

#include <functional>
#include <optional>

#include "common/status.hpp"
#include "csd/cse.hpp"
#include "fault/fault.hpp"
#include "nvme/call_queue.hpp"
#include "sim/simulator.hpp"

namespace isp::csd {

struct FirmwareConfig {
  /// Polling interval of the fetch loop while idle.
  Seconds poll_interval = Seconds{5e-6};
  /// Chunks per executed function (status updates per §III-C(b)).
  std::uint32_t chunks = 8;
};

class Firmware {
 public:
  /// `service_time` maps a fetched call to its total execution time on the
  /// CSE; `on_complete` fires when the function finishes.
  using ServiceTime = std::function<Seconds(const nvme::CallEntry&)>;
  using Completion = std::function<void(const nvme::CallEntry&)>;
  /// Fires when a function is abandoned after the crash-retry policy is
  /// exhausted (status carries StatusCode::DeviceCrash + attempts).
  using Failure = std::function<void(const nvme::CallEntry&, isp::Status)>;

  Firmware(sim::Simulator& simulator, Cse& cse, nvme::CallQueue& calls,
           nvme::StatusQueue& status, FirmwareConfig config = {});

  /// Start the fetch loop (idempotent).
  void start(ServiceTime service_time, Completion on_complete);

  /// Stop fetching after the current function completes.
  void stop() { running_ = false; }

  /// Raise the high-priority request flag: the next status update asks the
  /// host to take work back (§III-D case 1).
  void raise_high_priority() { high_priority_ = true; }

  /// Attach a fault injector (nullptr detaches; not owned).  Each chunk
  /// then passes through the CseCrash site: a crashed core restarts (core
  /// reset + the lost chunk re-run) with exponential backoff; when retries
  /// are exhausted the function is abandoned, a high-priority status update
  /// asks the host to pull the work back, and `on_failure` fires with a
  /// typed DeviceCrash status — the loop keeps polling, it never hangs.
  void set_injector(fault::Injector* injector) { injector_ = injector; }

  /// Install the exhausted-crash callback (optional; see set_injector).
  void set_on_failure(Failure on_failure) {
    on_failure_ = std::move(on_failure);
  }

  /// Power cut mid-function: the chunk chain in flight is invalidated
  /// (epoch gate), volatile firmware state — progress counters, the
  /// high-priority flag — is cleared, and the interrupted call is
  /// re-submitted to the call queue (the call record is host-resident) so
  /// the rebooted firmware restarts it from chunk 0.  The poll loop re-arms
  /// itself if it was running.
  void power_cycle();

  [[nodiscard]] bool busy() const { return busy_; }
  [[nodiscard]] std::uint64_t functions_executed() const {
    return functions_executed_;
  }
  [[nodiscard]] std::uint64_t functions_failed() const {
    return functions_failed_;
  }
  /// Functions interrupted by a power cycle and re-submitted for restart.
  [[nodiscard]] std::uint64_t functions_restarted() const {
    return functions_restarted_;
  }

 private:
  void poll();
  void run_chunk(nvme::CallEntry entry, Seconds chunk_time,
                 std::uint32_t chunk, double instr_per_chunk);

  sim::Simulator* simulator_;
  Cse* cse_;
  nvme::CallQueue* calls_;
  nvme::StatusQueue* status_;
  FirmwareConfig config_;
  ServiceTime service_time_;
  Completion on_complete_;
  Failure on_failure_;
  bool running_ = false;
  bool busy_ = false;
  bool high_priority_ = false;
  double instructions_retired_ = 0.0;
  std::uint64_t functions_executed_ = 0;
  std::uint64_t functions_failed_ = 0;
  std::uint64_t functions_restarted_ = 0;
  /// Bumped by power_cycle(); stale chunk/poll lambdas fire as no-ops.
  std::uint64_t epoch_ = 0;
  /// The call being executed right now (fetch is destructive, so this is
  /// what a power cycle must put back).
  std::optional<nvme::CallEntry> current_;
  fault::Injector* injector_ = nullptr;
};

}  // namespace isp::csd
