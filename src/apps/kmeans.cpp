// KMeans: Lloyd's algorithm over 8-dimensional points (Table I: 5.3 GB).
//
// The longest-running baseline of the evaluation (~73 s).  Six
// assign-and-update iterations appear as six separate lines — each is a
// single-entry-single-exit region in the interpreted program — followed by a
// final labelling pass whose output (one label per point) is the only
// sizeable product.
#include <array>
#include <cmath>
#include <limits>
#include <string>

#include "apps/data_gen.hpp"
#include "apps/detail.hpp"

namespace isp::apps {

namespace {

constexpr std::uint32_t kDims = 8;
constexpr std::uint32_t kClusters = 8;
constexpr std::uint32_t kIterations = 6;
/// On-disk points are double precision (the feed's native format)...
constexpr std::size_t kFilePointBytes = kDims * sizeof(double);
/// ...and are normalised into single precision for clustering.
constexpr std::size_t kPointBytes = kDims * sizeof(float);

struct Centroids {
  std::array<float, kClusters * kDims> mean;
};

std::uint32_t nearest(const float* point, const Centroids& c) {
  std::uint32_t best = 0;
  float best_d = std::numeric_limits<float>::max();
  for (std::uint32_t k = 0; k < kClusters; ++k) {
    float d = 0.0F;
    for (std::uint32_t j = 0; j < kDims; ++j) {
      const float diff = point[j] - c.mean[k * kDims + j];
      d += diff * diff;
    }
    if (d < best_d) {
      best_d = d;
      best = k;
    }
  }
  return best;
}

}  // namespace

ir::Program make_kmeans(const AppConfig& config) {
  ir::Program program("kmeans", config.virtual_scale);

  const Bytes size = detail::table_bytes(5.3, config);
  const std::size_t points = detail::phys_elems(size, config, kFilePointBytes);
  program.add_dataset(storage_dataset(
      "points_file", size, points * kFilePointBytes,
      static_cast<std::uint32_t>(kFilePointBytes), [&](mem::Buffer& b) {
        fill_doubles(b, points * kDims, Rng{config.seed}.fork(0x4d3a));
      }));

  {
    ir::CodeRegion line;
    line.name = "points = load_normalize(points_file)";
    line.inputs = {"points_file"};
    line.outputs = {"points"};
    line.elem_bytes = kFilePointBytes;
    line.cost.cycles_per_elem = 128.0;  // 2 cycles/byte convert+scale
    line.host_threads = 1;
    line.csd_threads = 6;
    line.chunks = 64;
    line.kernel = [](ir::KernelCtx& ctx) {
      const auto in = ctx.input(0).physical.as<double>();
      auto& out = ctx.output(0);
      out.physical.resize_elems<float>(in.size());
      auto dst = out.physical.as<float>();
      for (std::size_t i = 0; i < in.size(); ++i) {
        dst[i] = static_cast<float>(in[i]) * 0.5F;  // into [-0.5, 0.5)
      }
    };
    program.add_line(std::move(line));
  }

  {
    ir::CodeRegion line;
    line.name = "centroids0 = init_from(points)";
    line.inputs = {"points"};
    line.outputs = {"centroids0"};
    line.elem_bytes = kPointBytes;
    line.cost.base_cycles = 20000.0;
    line.cost.cycles_per_elem = 0.0;
    line.host_threads = 1;
    line.csd_threads = 1;
    line.chunks = 1;
    line.kernel = [](ir::KernelCtx& ctx) {
      const auto pts = ctx.input(0).physical.as<float>();
      auto& out = ctx.output(0);
      out.physical.resize_elems<Centroids>(1);
      auto& c = out.physical.as<Centroids>()[0];
      for (std::uint32_t k = 0; k < kClusters; ++k) {
        for (std::uint32_t j = 0; j < kDims; ++j) {
          const std::size_t idx = static_cast<std::size_t>(k) * kDims + j;
          c.mean[k * kDims + j] = idx < pts.size() ? pts[idx] : 0.0F;
        }
      }
    };
    program.add_line(std::move(line));
  }

  for (std::uint32_t it = 0; it < kIterations; ++it) {
    ir::CodeRegion line;
    line.name = "centroids" + std::to_string(it + 1) +
                " = assign_update(points, centroids" + std::to_string(it) +
                ")";
    line.inputs = {"points", "centroids" + std::to_string(it)};
    line.outputs = {"centroids" + std::to_string(it + 1)};
    line.elem_bytes = kPointBytes;
    line.cost.cycles_per_elem = 440.0;  // k×d distance + accumulate
    line.host_threads = 1;
    line.csd_threads = 7;
    line.chunks = 128;
    line.kernel = [](ir::KernelCtx& ctx) {
      const auto pts = ctx.input(0).physical.as<float>();
      const auto& c_in = ctx.input(1).physical.as<Centroids>()[0];
      std::array<double, kClusters * kDims> sums{};
      std::array<double, kClusters> counts{};
      const std::size_t n = pts.size() / kDims;
      for (std::size_t i = 0; i < n; ++i) {
        const float* p = pts.data() + i * kDims;
        const std::uint32_t k = nearest(p, c_in);
        counts[k] += 1.0;
        for (std::uint32_t j = 0; j < kDims; ++j) {
          sums[k * kDims + j] += p[j];
        }
      }
      auto& out = ctx.output(0);
      out.physical.resize_elems<Centroids>(1);
      auto& c_out = out.physical.as<Centroids>()[0];
      for (std::uint32_t k = 0; k < kClusters; ++k) {
        for (std::uint32_t j = 0; j < kDims; ++j) {
          c_out.mean[k * kDims + j] =
              counts[k] > 0.0
                  ? static_cast<float>(sums[k * kDims + j] / counts[k])
                  : c_in.mean[k * kDims + j];
        }
      }
    };
    program.add_line(std::move(line));
  }

  {
    ir::CodeRegion line;
    line.name = "labels = assign(points, centroids" +
                std::to_string(kIterations) + ")";
    line.inputs = {"points", "centroids" + std::to_string(kIterations)};
    line.outputs = {"labels"};
    line.elem_bytes = kPointBytes;
    line.cost.cycles_per_elem = 400.0;
    line.host_threads = 1;
    line.csd_threads = 7;
    line.chunks = 64;
    line.kernel = [](ir::KernelCtx& ctx) {
      const auto pts = ctx.input(0).physical.as<float>();
      const auto& c = ctx.input(1).physical.as<Centroids>()[0];
      const std::size_t n = pts.size() / kDims;
      auto& out = ctx.output(0);
      out.physical.resize_elems<std::uint32_t>(n);
      auto dst = out.physical.as<std::uint32_t>();
      for (std::size_t i = 0; i < n; ++i) {
        dst[i] = nearest(pts.data() + i * kDims, c);
      }
    };
    program.add_line(std::move(line));
  }

  return program;
}

}  // namespace isp::apps
