// TPC-H Q1: the pricing summary report (Table I: 6.9 GB).
//
// A high-selectivity date filter (~98% of rows survive) followed by a
// six-group aggregation — the interesting ISP case where the *intermediate*
// is nearly as large as the raw input, so offloading only pays if the whole
// pipeline stays on the CSD.
#include <array>

#include "apps/detail.hpp"
#include "apps/tpch_data.hpp"

namespace isp::apps {

namespace {

struct Q1Row {
  double quantity;
  double extended_price;
  double discount;
  double tax;
  char return_flag;
  char line_status;
  char pad[6];
};
static_assert(sizeof(Q1Row) == 40);

struct Q1Group {
  double sum_qty = 0.0;
  double sum_base_price = 0.0;
  double sum_disc_price = 0.0;
  double sum_charge = 0.0;
  double sum_discount = 0.0;
  double count = 0.0;
};

constexpr std::int32_t kCutoff = 2445;  // l_shipdate <= date '1998-09-02'

std::size_t group_index(char flag, char status) {
  const std::size_t f = flag == 'A' ? 0 : (flag == 'N' ? 1 : 2);
  const std::size_t s = status == 'O' ? 0 : 1;
  return f * 2 + s;
}

}  // namespace

ir::Program make_tpch_q1(const AppConfig& config) {
  ir::Program program("tpch-q1", config.virtual_scale);
  program.add_dataset(
      make_lineitem_dataset(config, detail::table_bytes(6.9, config),
                            /*part_keys=*/200000));

  {
    ir::CodeRegion line;
    line.name = "rows = lineitem[shipdate <= cutoff]";
    line.inputs = {"lineitem"};
    line.outputs = {"q1_rows"};
    line.elem_bytes = sizeof(LineitemRow);
    line.cost.cycles_per_elem = 144.0;  // 3 cycles/byte projection+filter
    line.host_threads = 1;
    line.csd_threads = 6;
    line.chunks = 128;
    line.kernel = [](ir::KernelCtx& ctx) {
      const auto rows = ctx.input(0).physical.as<LineitemRow>();
      std::size_t kept = 0;
      for (const auto& row : rows) kept += (row.ship_date <= kCutoff) ? 1 : 0;
      auto& out = ctx.output(0);
      out.physical.resize_elems<Q1Row>(kept);
      auto dst = out.physical.as<Q1Row>();
      std::size_t i = 0;
      for (const auto& row : rows) {
        if (row.ship_date > kCutoff) continue;
        Q1Row q{};
        q.quantity = row.quantity;
        q.extended_price = row.extended_price;
        q.discount = row.discount;
        q.tax = row.tax;
        q.return_flag = row.return_flag;
        q.line_status = row.line_status;
        dst[i++] = q;
      }
    };
    program.add_line(std::move(line));
  }

  {
    ir::CodeRegion line;
    line.name = "groups = aggregate(rows, by=(flag,status))";
    line.inputs = {"q1_rows"};
    line.outputs = {"q1_groups"};
    line.elem_bytes = sizeof(Q1Row);
    line.cost.cycles_per_elem = 192.0;  // multi-accumulator update per row
    line.host_threads = 1;
    line.csd_threads = 6;
    line.chunks = 128;
    line.kernel = [](ir::KernelCtx& ctx) {
      const auto rows = ctx.input(0).physical.as<Q1Row>();
      std::array<Q1Group, 6> groups{};
      for (const auto& row : rows) {
        auto& g = groups[group_index(row.return_flag, row.line_status)];
        g.sum_qty += row.quantity;
        g.sum_base_price += row.extended_price;
        const double disc_price = row.extended_price * (1.0 - row.discount);
        g.sum_disc_price += disc_price;
        g.sum_charge += disc_price * (1.0 + row.tax);
        g.sum_discount += row.discount;
        g.count += 1.0;
      }
      auto& out = ctx.output(0);
      out.physical.resize_elems<Q1Group>(groups.size());
      auto dst = out.physical.as<Q1Group>();
      for (std::size_t i = 0; i < groups.size(); ++i) dst[i] = groups[i];
    };
    program.add_line(std::move(line));
  }

  {
    ir::CodeRegion line;
    line.name = "report = averages(groups)";
    line.inputs = {"q1_groups"};
    line.outputs = {"q1_report"};
    line.elem_bytes = sizeof(Q1Group);
    line.cost.base_cycles = 8000.0;
    line.cost.cycles_per_elem = 50.0;
    line.host_threads = 1;
    line.csd_threads = 1;
    line.chunks = 1;
    line.kernel = [](ir::KernelCtx& ctx) {
      const auto groups = ctx.input(0).physical.as<Q1Group>();
      auto& out = ctx.output(0);
      // avg_qty, avg_price, avg_disc per group.
      out.physical.resize_elems<double>(groups.size() * 3);
      auto dst = out.physical.as<double>();
      for (std::size_t i = 0; i < groups.size(); ++i) {
        const double n = groups[i].count > 0.0 ? groups[i].count : 1.0;
        dst[i * 3 + 0] = groups[i].sum_qty / n;
        dst[i * 3 + 1] = groups[i].sum_base_price / n;
        dst[i * 3 + 2] = groups[i].sum_discount / n;
      }
    };
    program.add_line(std::move(line));
  }

  return program;
}

}  // namespace isp::apps
