// LightGBM: gradient-boosted-decision-tree inference (Table I: 7.1 GB).
//
// A 40-tree, depth-6 forest scores 32-feature rows; the margin vector is
// squashed and thresholded into labels and summarised into a tiny histogram.
// Inference is branchy per row — the kind of code the CSE's in-order cores
// run at a disadvantage — so only part of the pipeline offloads profitably.
#include <array>
#include <cmath>
#include <span>

#include "apps/data_gen.hpp"
#include "apps/detail.hpp"

namespace isp::apps {

namespace {

constexpr std::uint32_t kFeatures = 32;
constexpr std::size_t kTrees = 40;
constexpr std::uint32_t kDepth = 6;
/// On-disk rows carry double-precision features (the ETL output)...
constexpr std::size_t kFileRowBytes = kFeatures * sizeof(double);
/// ...inference runs on single-precision rows.
constexpr std::size_t kRowBytes = kFeatures * sizeof(float);
constexpr std::size_t kNodesPerTree = (std::size_t{1} << kDepth) - 1;

float score_row(const float* row, std::span<const TreeNode> forest) {
  float margin = 0.0F;
  for (std::size_t t = 0; t < kTrees; ++t) {
    const TreeNode* tree = forest.data() + t * kNodesPerTree;
    std::size_t node = 0;
    while (tree[node].feature >= 0) {
      const float v = row[tree[node].feature];
      node = 2 * node + (v <= tree[node].threshold ? 1 : 2);
    }
    margin += tree[node].threshold;  // leaf value
  }
  return margin;
}

}  // namespace

ir::Program make_lightgbm(const AppConfig& config) {
  ir::Program program("lightgbm", config.virtual_scale);

  const Bytes size = detail::table_bytes(7.1, config);
  const std::size_t rows = detail::phys_elems(size, config, kFileRowBytes);
  program.add_dataset(storage_dataset(
      "features_file", size, rows * kFileRowBytes,
      static_cast<std::uint32_t>(kFileRowBytes), [&](mem::Buffer& b) {
        fill_doubles(b, rows * kFeatures, Rng{config.seed}.fork(0x16b0));
      }));

  // The trained model: a small memory-resident dataset the sampler must not
  // truncate.
  {
    ir::Dataset model;
    model.object.name = "model";
    model.object.location = mem::Location::HostDram;
    model.object.virtual_bytes = 8_MiB;
    fill_forest(model.object.physical, kTrees, kDepth, kFeatures,
                Rng{config.seed}.fork(0xf07e));
    model.elem_bytes = sizeof(TreeNode);
    model.sampler = [](const mem::DataObject& full, double) { return full; };
    program.add_dataset(std::move(model));
  }

  {
    ir::CodeRegion line;
    line.name = "features = load_f32(features_file)";
    line.inputs = {"features_file"};
    line.outputs = {"features"};
    line.elem_bytes = kFileRowBytes;
    line.cost.cycles_per_elem = 512.0;  // 2 cycles/byte decode+narrow
    line.host_threads = 1;
    line.csd_threads = 6;
    line.chunks = 64;
    line.kernel = [](ir::KernelCtx& ctx) {
      const auto in = ctx.input(0).physical.as<double>();
      auto& out = ctx.output(0);
      out.physical.resize_elems<float>(in.size());
      auto dst = out.physical.as<float>();
      for (std::size_t i = 0; i < in.size(); ++i) {
        dst[i] = static_cast<float>(in[i]);
      }
    };
    program.add_line(std::move(line));
  }

  {
    ir::CodeRegion line;
    line.name = "margins = forest_predict(features, model)";
    line.inputs = {"features", "model"};
    line.outputs = {"margins"};
    line.elem_bytes = kRowBytes;
    line.cost.cycles_per_elem = 1920.0;  // trees × depth × branchy hops
    line.host_threads = 1;
    line.csd_threads = 6;  // in-order cores lose on branchy traversal
    line.chunks = 128;
    line.kernel = [](ir::KernelCtx& ctx) {
      const auto feats = ctx.input(0).physical.as<float>();
      const auto forest = ctx.input(1).physical.as<TreeNode>();
      const std::size_t n = feats.size() / kFeatures;
      auto& out = ctx.output(0);
      out.physical.resize_elems<float>(n);
      auto dst = out.physical.as<float>();
      for (std::size_t i = 0; i < n; ++i) {
        dst[i] = score_row(feats.data() + i * kFeatures, forest);
      }
    };
    program.add_line(std::move(line));
  }

  {
    ir::CodeRegion line;
    line.name = "labels = sigmoid_threshold(margins)";
    line.inputs = {"margins"};
    line.outputs = {"labels"};
    line.elem_bytes = sizeof(float);
    line.cost.cycles_per_elem = 20.0;  // exp + compare
    line.host_threads = 1;
    line.csd_threads = 8;
    line.chunks = 8;
    line.kernel = [](ir::KernelCtx& ctx) {
      const auto margins = ctx.input(0).physical.as<float>();
      auto& out = ctx.output(0);
      out.physical.resize_elems<std::uint8_t>(margins.size());
      auto dst = out.physical.as<std::uint8_t>();
      for (std::size_t i = 0; i < margins.size(); ++i) {
        const float p = 1.0F / (1.0F + std::exp(-margins[i]));
        dst[i] = p >= 0.5F ? 1 : 0;
      }
    };
    program.add_line(std::move(line));
  }

  {
    ir::CodeRegion line;
    line.name = "summary = histogram(labels)";
    line.inputs = {"labels"};
    line.outputs = {"label_summary"};
    line.elem_bytes = 1.0;
    line.cost.cycles_per_elem = 2.0;
    line.host_threads = 1;
    line.csd_threads = 8;
    line.chunks = 4;
    line.kernel = [](ir::KernelCtx& ctx) {
      const auto labels = ctx.input(0).physical.as<std::uint8_t>();
      std::array<std::uint64_t, 2> histogram{};
      for (const auto label : labels) histogram[label & 1] += 1;
      auto& out = ctx.output(0);
      out.physical.resize_elems<std::uint64_t>(2);
      auto dst = out.physical.as<std::uint64_t>();
      dst[0] = histogram[0];
      dst[1] = histogram[1];
    };
    program.add_line(std::move(line));
  }

  return program;
}

}  // namespace isp::apps
