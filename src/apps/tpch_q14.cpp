// TPC-H Q14: the promotion-effect query (Table I: 7.1 GB = lineitem + part).
//
// A one-month shipdate filter over lineitem (~1.2% selectivity), a promo
// lookup structure built from PART, and a hash-join-style conditional
// aggregation.  Two storage-resident inputs exercise multi-dataset planning.
#include "apps/detail.hpp"
#include "apps/tpch_data.hpp"

namespace isp::apps {

namespace {

struct Q14Row {
  double extended_price;
  double discount;
  std::int32_t part_key;
  std::int32_t pad;
};
static_assert(sizeof(Q14Row) == 24);

constexpr std::int32_t kMonthStart = 2160;
constexpr std::int32_t kMonthEnd = 2190;

}  // namespace

ir::Program make_tpch_q14(const AppConfig& config) {
  ir::Program program("tpch-q14", config.virtual_scale);

  std::size_t part_rows = 0;
  program.add_dataset(
      make_part_dataset(config, detail::table_bytes(0.2, config), part_rows));
  program.add_dataset(make_lineitem_dataset(
      config, detail::table_bytes(6.9, config),
      static_cast<std::uint32_t>(part_rows)));

  {
    ir::CodeRegion line;
    line.name = "rows = lineitem[shipdate in month]";
    line.inputs = {"lineitem"};
    line.outputs = {"q14_rows"};
    line.elem_bytes = sizeof(LineitemRow);
    line.cost.cycles_per_elem = 240.0;  // 5 cycles/byte filter+projection
    line.host_threads = 1;
    line.csd_threads = 6;
    line.chunks = 128;
    line.kernel = [](ir::KernelCtx& ctx) {
      const auto rows = ctx.input(0).physical.as<LineitemRow>();
      std::size_t kept = 0;
      for (const auto& row : rows) {
        kept += (row.ship_date >= kMonthStart && row.ship_date < kMonthEnd)
                    ? 1
                    : 0;
      }
      auto& out = ctx.output(0);
      out.physical.resize_elems<Q14Row>(kept);
      auto dst = out.physical.as<Q14Row>();
      std::size_t i = 0;
      for (const auto& row : rows) {
        if (row.ship_date < kMonthStart || row.ship_date >= kMonthEnd)
          continue;
        dst[i++] = {row.extended_price, row.discount, row.part_key, 0};
      }
    };
    program.add_line(std::move(line));
  }

  {
    ir::CodeRegion line;
    line.name = "promo = build_lookup(part)";
    line.inputs = {"part"};
    line.outputs = {"q14_promo_map"};
    line.elem_bytes = sizeof(PartRow);
    line.cost.cycles_per_elem = 64.0;
    line.host_threads = 1;
    line.csd_threads = 4;
    line.chunks = 8;
    line.kernel = [](ir::KernelCtx& ctx) {
      const auto parts = ctx.input(0).physical.as<PartRow>();
      auto& out = ctx.output(0);
      out.physical.resize_elems<std::uint8_t>(parts.size());
      auto map = out.physical.as<std::uint8_t>();
      for (const auto& part : parts) {
        const auto key = static_cast<std::size_t>(part.part_key);
        if (key < map.size()) {
          map[key] = part.is_promo != 0 ? 1 : 0;
        }
      }
    };
    program.add_line(std::move(line));
  }

  {
    ir::CodeRegion line;
    line.name = "ratio = join_aggregate(rows, promo)";
    line.inputs = {"q14_rows", "q14_promo_map"};
    line.outputs = {"q14_result"};
    line.elem_bytes = sizeof(Q14Row);
    line.cost.cycles_per_elem = 100.0;  // random map lookup per row
    line.host_threads = 1;
    line.csd_threads = 4;  // pointer-chasing joins parallelise poorly
    line.chunks = 8;
    line.kernel = [](ir::KernelCtx& ctx) {
      const auto rows = ctx.input(0).physical.as<Q14Row>();
      const auto map = ctx.input(1).physical.as<std::uint8_t>();
      double promo = 0.0;
      double total = 0.0;
      for (const auto& row : rows) {
        const double revenue = row.extended_price * (1.0 - row.discount);
        total += revenue;
        const auto key = static_cast<std::size_t>(row.part_key);
        if (key < map.size() && map[key] != 0) promo += revenue;
      }
      auto& out = ctx.output(0);
      out.physical.resize_elems<double>(3);
      auto dst = out.physical.as<double>();
      dst[0] = total > 0.0 ? 100.0 * promo / total : 0.0;
      dst[1] = promo;
      dst[2] = total;
    };
    program.add_line(std::move(line));
  }

  return program;
}

}  // namespace isp::apps
