// The evaluation workloads (Table I of the paper) and their registry.
//
// Every application is a real C++ program expressed as ActiveCpp lines: the
// kernels compute actual results on the physically scaled payloads, while
// each DataObject carries its Table-I virtual size for timing.  The nine
// Table-I applications are joined by SparseMV, which §V discusses alongside
// PageRank (the CSR-construction estimation outlier) and lists among the
// Figure-5 migration decisions.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "ir/program.hpp"

namespace isp::apps {

struct AppConfig {
  /// Virtual bytes represented by one physical byte.  128 reproduces the
  /// paper's data sizes with payloads small enough to run everywhere yet
  /// fine-grained enough that 2^-10 sampling fractions stay proportional.
  double virtual_scale = 128.0;
  /// Scales the Table-I dataset size (tests use small fractions).
  double size_factor = 1.0;
  std::uint64_t seed = 42;
};

struct AppInfo {
  std::string name;
  Bytes table1_bytes;        // "Data Size" column of Table I (0 = not listed)
  std::string description;
  bool in_table1 = true;
  std::function<ir::Program(const AppConfig&)> make;
};

/// All registered applications (Table I order, then SparseMV).
[[nodiscard]] const std::vector<AppInfo>& all_apps();

/// Only the nine Table-I applications.
[[nodiscard]] std::vector<AppInfo> table1_apps();

/// Build one application by name; throws isp::Error for unknown names.
[[nodiscard]] ir::Program make_app(const std::string& name,
                                   const AppConfig& config = {});

// Individual constructors (one per translation unit).
[[nodiscard]] ir::Program make_blackscholes(const AppConfig& config);
[[nodiscard]] ir::Program make_kmeans(const AppConfig& config);
[[nodiscard]] ir::Program make_lightgbm(const AppConfig& config);
[[nodiscard]] ir::Program make_matmul(const AppConfig& config);
[[nodiscard]] ir::Program make_mixedgemm(const AppConfig& config);
[[nodiscard]] ir::Program make_pagerank(const AppConfig& config);
[[nodiscard]] ir::Program make_sparsemv(const AppConfig& config);
[[nodiscard]] ir::Program make_tpch_q1(const AppConfig& config);
[[nodiscard]] ir::Program make_tpch_q6(const AppConfig& config);
[[nodiscard]] ir::Program make_tpch_q14(const AppConfig& config);

}  // namespace isp::apps
