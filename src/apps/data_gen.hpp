// Synthetic dataset generators for the evaluation workloads.
//
// The paper evaluates on multi-gigabyte inputs (TPC-H tables, feature
// matrices, edge lists).  We do not ship those; each generator produces a
// deterministic, seeded physical payload whose statistics match the workload
// (TPC-H value distributions, Zipf-skewed graphs) at the configured physical
// scale, while the owning DataObject carries the Table-I virtual size.
#pragma once

#include <cstdint>

#include "common/rng.hpp"
#include "ir/program.hpp"
#include "mem/data_object.hpp"

namespace isp::apps {

// ---- TPC-H ---------------------------------------------------------------

/// One LINEITEM row with the columns Q1/Q6/Q14 touch.
struct LineitemRow {
  double quantity;
  double extended_price;
  double discount;
  double tax;
  std::int32_t ship_date;  // days since epoch-of-benchmark (0..2555 ≈ 7y)
  std::int32_t part_key;
  char return_flag;  // 'A' | 'N' | 'R'
  char line_status;  // 'O' | 'F'
  char pad[6];
};
static_assert(sizeof(LineitemRow) == 48);

struct PartRow {
  std::int32_t part_key;
  std::int32_t is_promo;  // p_type LIKE 'PROMO%'
};
static_assert(sizeof(PartRow) == 8);

/// `part_keys` bounds l_partkey so joins against a PART table of that many
/// rows resolve.
void fill_lineitem(mem::Buffer& buffer, std::size_t rows,
                   std::uint32_t part_keys, Rng rng);
void fill_part(mem::Buffer& buffer, std::size_t rows, Rng rng);

// ---- Blackscholes ----------------------------------------------------------

/// On-disk record: double-precision fields as the upstream feed writes them.
struct OptionRecord {
  double spot;
  double strike;
  double rate;
  double volatility;
  double expiry;
  std::int32_t is_call;
  std::int32_t pad;
};
static_assert(sizeof(OptionRecord) == 48);

/// In-memory row after parsing (single precision — half the volume).
struct OptionRow {
  float spot;
  float strike;
  float rate;
  float volatility;
  float expiry;
  std::int32_t is_call;
};
static_assert(sizeof(OptionRow) == 24);

void fill_options(mem::Buffer& buffer, std::size_t rows, Rng rng);

// ---- Dense numeric ---------------------------------------------------------

/// Uniform floats in [-1, 1).
void fill_floats(mem::Buffer& buffer, std::size_t count, Rng rng);
/// Uniform doubles in [-1, 1).
void fill_doubles(mem::Buffer& buffer, std::size_t count, Rng rng);

// ---- Graphs ----------------------------------------------------------------

/// On-disk edge record: 64-bit global vertex ids, as graph dumps ship them.
struct EdgeRecord {
  std::uint64_t src;
  std::uint64_t dst;
};
static_assert(sizeof(EdgeRecord) == 16);

/// In-memory edge after id narrowing.
struct Edge {
  std::uint32_t src;
  std::uint32_t dst;
};
static_assert(sizeof(Edge) == 8);

/// Zipf-skewed edge list over `vertices` vertices.  Both endpoints are drawn
/// from a Zipf distribution (hubs dominate), so the number of *distinct*
/// vertices is concave in the number of edges sampled — the property that
/// makes compacted-CSR output volume concave and drives the paper's
/// over-estimation of CSR size (§V).
void fill_edges_zipf(mem::Buffer& buffer, std::size_t edges,
                     std::uint32_t vertices, double skew, Rng rng);

// ---- GBDT forest (LightGBM) ------------------------------------------------

/// One node of a binary decision tree laid out breadth-first; leaves carry
/// values in `threshold` and feature = -1.
struct TreeNode {
  std::int32_t feature;  // -1 for leaf
  float threshold;       // split threshold, or leaf value
};
static_assert(sizeof(TreeNode) == 8);

/// A forest of `trees` complete binary trees of `depth` levels over
/// `features` input features, laid out tree-major.
void fill_forest(mem::Buffer& buffer, std::size_t trees, std::uint32_t depth,
                 std::uint32_t features, Rng rng);

[[nodiscard]] constexpr std::size_t forest_nodes(std::size_t trees,
                                                 std::uint32_t depth) {
  return trees * ((std::size_t{1} << depth) - 1);
}

// ---- Helpers ----------------------------------------------------------------

/// Build a storage-resident dataset: virtual size from Table I (scaled by the
/// config), physical payload of `phys_elems` elements filled by `fill`.
template <typename Fill>
ir::Dataset storage_dataset(const std::string& name, Bytes virtual_bytes,
                            std::size_t phys_bytes, std::uint32_t elem_bytes,
                            Fill&& fill) {
  ir::Dataset d;
  d.object.name = name;
  d.object.location = mem::Location::Storage;
  d.object.virtual_bytes = virtual_bytes;
  d.object.physical.resize_elems<std::byte>(phys_bytes);
  d.elem_bytes = elem_bytes;
  fill(d.object.physical);
  return d;
}

}  // namespace isp::apps
