// PageRank over a Zipf-skewed edge list (Table I: 7.7 GB).
//
// The pipeline converts the edge list to a compacted CSR — remapping the
// distinct vertex ids to a dense range, as cache-conscious graph engines do —
// then runs damped power iterations and extracts the top-ranked vertices.
//
// CSR construction is the paper's estimation outlier (§V): its output volume
// is 4·E plus the row-pointer array over the *distinct* vertices, and the
// number of distinct vertices grows concavely in the number of edges
// sampled (hubs repeat).  A linear fit through the four small sample sizes
// therefore over-estimates the CSR volume at raw scale — by up to 2.41× in
// the paper, always in the conservative direction.
#include <algorithm>
#include <cstring>
#include <string>
#include <unordered_map>
#include <vector>

#include "apps/data_gen.hpp"
#include "apps/detail.hpp"

namespace isp::apps {

namespace {

constexpr double kDamping = 0.85;
constexpr std::uint32_t kIterations = 4;
constexpr std::size_t kTopK = 16;

struct CsrHeader {
  std::uint64_t vertices;
  std::uint64_t edges;
};

// Layout: CsrHeader | rowptr u64[V+1] | cols u32[E] (+ 4-byte pad to 8).
std::size_t csr_bytes(std::uint64_t v, std::uint64_t e) {
  std::size_t bytes = sizeof(CsrHeader) + (v + 1) * sizeof(std::uint64_t) +
                      e * sizeof(std::uint32_t);
  return (bytes + 7) & ~std::size_t{7};
}

const std::uint64_t* csr_rowptr(const std::byte* base) {
  return reinterpret_cast<const std::uint64_t*>(base + sizeof(CsrHeader));
}

const std::uint32_t* csr_cols(const std::byte* base, std::uint64_t v) {
  return reinterpret_cast<const std::uint32_t*>(
      base + sizeof(CsrHeader) + (v + 1) * sizeof(std::uint64_t));
}

void build_csr(ir::KernelCtx& ctx) {
  const auto edges = ctx.input(0).physical.as<Edge>();

  // Compact the vertex id space: dense ids in first-seen order.
  std::unordered_map<std::uint32_t, std::uint32_t> remap;
  remap.reserve(edges.size());
  auto id_of = [&](std::uint32_t v) {
    const auto [it, inserted] =
        remap.try_emplace(v, static_cast<std::uint32_t>(remap.size()));
    return it->second;
  };
  std::vector<std::pair<std::uint32_t, std::uint32_t>> compact;
  compact.reserve(edges.size());
  for (const auto& e : edges) {
    // Sequence the remapping explicitly: argument evaluation order is
    // unspecified, and first-seen ids must be assigned src-before-dst for
    // the layout to be compiler-independent.
    const auto src = id_of(e.src);
    const auto dst = id_of(e.dst);
    compact.emplace_back(src, dst);
  }
  const std::uint64_t v_count = remap.size();
  const std::uint64_t e_count = compact.size();

  auto& out = ctx.output(0);
  out.physical.resize_elems<std::byte>(csr_bytes(v_count, e_count));
  auto* base = out.physical.as<std::byte>().data();
  auto* header = reinterpret_cast<CsrHeader*>(base);
  header->vertices = v_count;
  header->edges = e_count;
  auto* rowptr = const_cast<std::uint64_t*>(csr_rowptr(base));
  auto* cols = const_cast<std::uint32_t*>(csr_cols(base, v_count));

  std::vector<std::uint64_t> degree(v_count, 0);
  for (const auto& [src, dst] : compact) ++degree[src];
  rowptr[0] = 0;
  for (std::uint64_t v = 0; v < v_count; ++v) {
    rowptr[v + 1] = rowptr[v] + degree[v];
  }
  std::vector<std::uint64_t> cursor(rowptr, rowptr + v_count);
  for (const auto& [src, dst] : compact) {
    cols[cursor[src]++] = dst;
  }
}

void rank_iteration(ir::KernelCtx& ctx) {
  const auto* base = ctx.input(0).physical.as<std::byte>().data();
  const auto* header = reinterpret_cast<const CsrHeader*>(base);
  const auto v_count = header->vertices;
  const auto* rowptr = csr_rowptr(base);
  const auto* cols = csr_cols(base, v_count);
  const auto in = ctx.input(1).physical.as<double>();

  auto& out = ctx.output(0);
  out.physical.resize_elems<double>(v_count);
  auto dst = out.physical.as<double>();
  const double base_rank =
      v_count > 0 ? (1.0 - kDamping) / static_cast<double>(v_count) : 0.0;
  for (auto& r : dst) r = base_rank;
  for (std::uint64_t u = 0; u < v_count && u < in.size(); ++u) {
    const std::uint64_t deg = rowptr[u + 1] - rowptr[u];
    if (deg == 0) continue;
    const double share = kDamping * in[u] / static_cast<double>(deg);
    for (std::uint64_t i = rowptr[u]; i < rowptr[u + 1]; ++i) {
      dst[cols[i]] += share;
    }
  }
}

}  // namespace

ir::Program make_pagerank(const AppConfig& config) {
  ir::Program program("pagerank", config.virtual_scale);

  const Bytes size = detail::table_bytes(7.7, config);
  const std::size_t edges =
      detail::phys_elems(size, config, sizeof(EdgeRecord));
  // Vertex domain sized so that distinct-vertex growth is still unsaturated
  // at the sampling fractions but flattening at full scale (the CSR
  // over-estimation mechanism).
  const auto vertices =
      static_cast<std::uint32_t>(std::max<std::size_t>(edges / 2, 64));
  program.add_dataset(storage_dataset(
      "edges_file", size, edges * sizeof(EdgeRecord), sizeof(EdgeRecord),
      [&](mem::Buffer& b) {
        fill_edges_zipf(b, edges, vertices, /*skew=*/0.65,
                        Rng{config.seed}.fork(0x96a1));
      }));

  {
    ir::CodeRegion line;
    line.name = "edges = load_narrow(edges_file)";
    line.inputs = {"edges_file"};
    line.outputs = {"edges"};
    line.elem_bytes = sizeof(EdgeRecord);
    line.cost.cycles_per_elem = 32.0;  // 2 cycles/byte id narrowing
    line.host_threads = 1;
    line.csd_threads = 6;
    line.chunks = 64;
    line.kernel = [](ir::KernelCtx& ctx) {
      const auto in = ctx.input(0).physical.as<EdgeRecord>();
      auto& out = ctx.output(0);
      out.physical.resize_elems<Edge>(in.size());
      auto dst = out.physical.as<Edge>();
      for (std::size_t i = 0; i < in.size(); ++i) {
        dst[i] = Edge{static_cast<std::uint32_t>(in[i].src),
                      static_cast<std::uint32_t>(in[i].dst)};
      }
    };
    program.add_line(std::move(line));
  }

  {
    ir::CodeRegion line;
    line.name = "csr = to_csr(edges)";
    line.inputs = {"edges"};
    line.outputs = {"csr"};
    line.elem_bytes = sizeof(Edge);
    line.cost.cycles_per_elem = 96.0;  // hash remap + scatter per edge
    line.host_threads = 1;
    line.csd_threads = 6;
    line.chunks = 64;
    line.kernel = build_csr;
    program.add_line(std::move(line));
  }

  {
    ir::CodeRegion line;
    line.name = "ranks0 = init_ranks(csr)";
    line.inputs = {"csr"};
    line.outputs = {"ranks0"};
    line.elem_bytes = 8.0;
    line.cost.base_cycles = 10000.0;
    line.cost.cycles_per_elem = 0.25;
    line.host_threads = 1;
    line.csd_threads = 8;
    line.chunks = 4;
    line.kernel = [](ir::KernelCtx& ctx) {
      const auto* base = ctx.input(0).physical.as<std::byte>().data();
      const auto* header = reinterpret_cast<const CsrHeader*>(base);
      auto& out = ctx.output(0);
      out.physical.resize_elems<double>(header->vertices);
      const double r = header->vertices > 0
                           ? 1.0 / static_cast<double>(header->vertices)
                           : 0.0;
      for (auto& v : out.physical.as<double>()) v = r;
    };
    program.add_line(std::move(line));
  }

  for (std::uint32_t it = 0; it < kIterations; ++it) {
    ir::CodeRegion line;
    line.name = "ranks" + std::to_string(it + 1) + " = iterate(csr, ranks" +
                std::to_string(it) + ")";
    line.inputs = {"csr", "ranks" + std::to_string(it)};
    line.outputs = {"ranks" + std::to_string(it + 1)};
    line.elem_bytes = 4.0;  // per CSR byte-ish unit (gather/scatter bound)
    line.cost.cycles_per_elem = 24.0;
    line.host_threads = 1;
    line.csd_threads = 7;
    line.chunks = 128;
    line.kernel = rank_iteration;
    program.add_line(std::move(line));
  }

  {
    ir::CodeRegion line;
    line.name = "top = top_k(ranks" + std::to_string(kIterations) + ")";
    line.inputs = {"ranks" + std::to_string(kIterations)};
    line.outputs = {"top_vertices"};
    line.elem_bytes = sizeof(double);
    line.cost.cycles_per_elem = 8.0;
    line.host_threads = 1;
    line.csd_threads = 4;
    line.chunks = 4;
    line.kernel = [](ir::KernelCtx& ctx) {
      const auto ranks = ctx.input(0).physical.as<double>();
      std::vector<std::pair<double, std::uint32_t>> heap;
      heap.reserve(ranks.size());
      for (std::size_t i = 0; i < ranks.size(); ++i) {
        heap.emplace_back(ranks[i], static_cast<std::uint32_t>(i));
      }
      const std::size_t k = std::min(kTopK, heap.size());
      std::partial_sort(heap.begin(), heap.begin() + k, heap.end(),
                        [](const auto& a, const auto& b) {
                          return a.first > b.first;
                        });
      auto& out = ctx.output(0);
      out.physical.resize_elems<double>(2 * k);
      auto dst = out.physical.as<double>();
      for (std::size_t i = 0; i < k; ++i) {
        dst[2 * i] = heap[i].first;
        dst[2 * i + 1] = heap[i].second;
      }
    };
    program.add_line(std::move(line));
  }

  return program;
}

}  // namespace isp::apps
