// MatrixMul: batched dense matrix multiplication (Table I: 6.0 GB).
//
// A stream of independent 32×32 double GEMM pairs (A_i, B_i) → C_i — the
// shape a recommendation or graphics pipeline produces.  The multiply
// consumes both operand files directly (the Python source memory-maps them),
// then a BLAS-style alpha·C+beta epilogue and a Frobenius-norm check run over
// the result.  Work is linear in the batch count, so every sampled fit is
// clean; the interesting property is the *lack* of reduction (|C| equals
// half the input), which pushes Equation 1 close to its break-even point.
#include <algorithm>
#include <cmath>

#include "apps/data_gen.hpp"
#include "apps/detail.hpp"

namespace isp::apps {

namespace {

constexpr std::size_t kDim = 32;
constexpr std::size_t kMatrixBytes = kDim * kDim * sizeof(double);

void gemm(const double* a, const double* b, double* c) {
  for (std::size_t i = 0; i < kDim; ++i) {
    for (std::size_t j = 0; j < kDim; ++j) c[i * kDim + j] = 0.0;
    for (std::size_t k = 0; k < kDim; ++k) {
      const double aik = a[i * kDim + k];
      for (std::size_t j = 0; j < kDim; ++j) {
        c[i * kDim + j] += aik * b[k * kDim + j];
      }
    }
  }
}

}  // namespace

ir::Program make_matmul(const AppConfig& config) {
  ir::Program program("matrixmul", config.virtual_scale);

  const Bytes half = detail::table_bytes(3.0, config);
  const std::size_t matrices = detail::phys_elems(half, config, kMatrixBytes);
  for (const char* name : {"a_batch", "b_batch"}) {
    const std::uint64_t stream = name[0] == 'a' ? 0xaaaa : 0xbbbb;
    program.add_dataset(storage_dataset(
        name, half, matrices * kMatrixBytes,
        static_cast<std::uint32_t>(kMatrixBytes), [&](mem::Buffer& b) {
          fill_doubles(b, matrices * kDim * kDim,
                       Rng{config.seed}.fork(stream));
        }));
  }

  {
    ir::CodeRegion line;
    line.name = "c = batch_matmul(a_batch, b_batch)";
    line.inputs = {"a_batch", "b_batch"};
    line.outputs = {"c"};
    // Element = one (A_i, B_i) pair.
    line.elem_bytes = 2.0 * kMatrixBytes;
    // 2·32³ flops per pair at ~0.5 flops/cycle (naive scalar triple loop).
    line.cost.cycles_per_elem = 4.0 * static_cast<double>(kDim * kDim * kDim);
    line.host_threads = 1;
    line.csd_threads = 6;  // fp64 is the A72's weak point
    line.chunks = 128;
    line.kernel = [](ir::KernelCtx& ctx) {
      const auto a = ctx.input(0).physical.as<double>();
      const auto b = ctx.input(1).physical.as<double>();
      const std::size_t pairs = std::min(a.size(), b.size()) / (kDim * kDim);
      auto& out = ctx.output(0);
      out.physical.resize_elems<double>(pairs * kDim * kDim);
      auto c = out.physical.as<double>();
      for (std::size_t p = 0; p < pairs; ++p) {
        gemm(a.data() + p * kDim * kDim, b.data() + p * kDim * kDim,
             c.data() + p * kDim * kDim);
      }
    };
    program.add_line(std::move(line));
  }

  {
    ir::CodeRegion line;
    line.name = "c2 = alpha_c_plus_beta(c)";
    line.inputs = {"c"};
    line.outputs = {"c2"};
    line.elem_bytes = sizeof(double);
    line.cost.cycles_per_elem = 8.0;  // 1 cycle/byte FMA epilogue
    line.host_threads = 1;
    line.csd_threads = 8;
    line.chunks = 8;
    line.kernel = [](ir::KernelCtx& ctx) {
      const auto c = ctx.input(0).physical.as<double>();
      auto& out = ctx.output(0);
      out.physical.resize_elems<double>(c.size());
      auto dst = out.physical.as<double>();
      constexpr double kAlpha = 0.5;
      constexpr double kBeta = 1.0;
      for (std::size_t i = 0; i < c.size(); ++i) {
        dst[i] = kAlpha * c[i] + kBeta;
      }
    };
    program.add_line(std::move(line));
  }

  {
    ir::CodeRegion line;
    line.name = "norm = frobenius(c2)";
    line.inputs = {"c2"};
    line.outputs = {"c_norm"};
    line.elem_bytes = sizeof(double);
    line.cost.cycles_per_elem = 2.0;
    line.host_threads = 1;
    line.csd_threads = 8;
    line.chunks = 4;
    line.kernel = [](ir::KernelCtx& ctx) {
      const auto c = ctx.input(0).physical.as<double>();
      double sum = 0.0;
      for (const double v : c) sum += v * v;
      auto& out = ctx.output(0);
      out.physical.resize_elems<double>(1);
      out.physical.as<double>()[0] = std::sqrt(sum);
    };
    program.add_line(std::move(line));
  }

  return program;
}

}  // namespace isp::apps
