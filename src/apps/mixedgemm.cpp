// MixedGEMM: mixed-precision batched GEMM with epilogue (Table I: 9.4 GB).
//
// The inference-serving shape: float32 activation/weight tiles are loaded
// and down-converted to bfloat16 (halving their volume — which is what makes
// the load lines independently profitable on the CSD), multiplied in 64×64
// batches with float32 accumulation, passed through a bias+GELU epilogue,
// and reduced 4096:1 into per-tile logit summaries.  One of the Figure-5
// workloads ActivePy chooses to migrate at 50% availability.
#include <cmath>
#include <cstring>

#include "apps/data_gen.hpp"
#include "apps/detail.hpp"

namespace isp::apps {

namespace {

constexpr std::size_t kDim = 64;
constexpr std::size_t kTileBytesF32 = kDim * kDim * sizeof(float);
constexpr std::size_t kTileBytesBf16 = kDim * kDim * sizeof(std::uint16_t);

std::uint16_t to_bf16(float v) {
  std::uint32_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  return static_cast<std::uint16_t>(bits >> 16);
}

float from_bf16(std::uint16_t v) {
  const std::uint32_t bits = static_cast<std::uint32_t>(v) << 16;
  float out;
  std::memcpy(&out, &bits, sizeof(out));
  return out;
}

void gemm_tile_bf16(const std::uint16_t* a, const std::uint16_t* b,
                    float* c) {
  for (std::size_t i = 0; i < kDim; ++i) {
    for (std::size_t j = 0; j < kDim; ++j) c[i * kDim + j] = 0.0F;
    for (std::size_t k = 0; k < kDim; ++k) {
      const float aik = from_bf16(a[i * kDim + k]);
      for (std::size_t j = 0; j < kDim; ++j) {
        c[i * kDim + j] += aik * from_bf16(b[k * kDim + j]);
      }
    }
  }
}

float gelu(float x) {
  return 0.5F * x *
         (1.0F + std::tanh(0.7978845608F * (x + 0.044715F * x * x * x)));
}

/// A fp32→bf16 conversion-load line (shared shape for both operands).
ir::CodeRegion convert_load_line(const char* in_name, const char* out_name) {
  ir::CodeRegion line;
  line.name = std::string(out_name) + " = load_bf16(" + in_name + ")";
  line.inputs = {in_name};
  line.outputs = {out_name};
  line.elem_bytes = static_cast<double>(kTileBytesF32);
  line.cost.cycles_per_elem = 1.5 * kTileBytesF32;  // 1.5 cycles/byte convert
  line.host_threads = 1;
  line.csd_threads = 6;
  line.chunks = 8;
  line.kernel = [](ir::KernelCtx& ctx) {
    const auto in = ctx.input(0).physical.as<float>();
    auto& out = ctx.output(0);
    out.physical.resize_elems<std::uint16_t>(in.size());
    auto dst = out.physical.as<std::uint16_t>();
    for (std::size_t i = 0; i < in.size(); ++i) dst[i] = to_bf16(in[i]);
  };
  return line;
}

}  // namespace

ir::Program make_mixedgemm(const AppConfig& config) {
  ir::Program program("mixedgemm", config.virtual_scale);

  const Bytes half = detail::table_bytes(4.7, config);
  const std::size_t tiles = detail::phys_elems(half, config, kTileBytesF32);
  for (const char* name : {"activations_file", "weights_file"}) {
    const std::uint64_t stream = name[0] == 'a' ? 0x11aa : 0x22bb;
    program.add_dataset(storage_dataset(
        name, half, tiles * kTileBytesF32,
        static_cast<std::uint32_t>(kTileBytesF32), [&](mem::Buffer& b) {
          fill_floats(b, tiles * kDim * kDim, Rng{config.seed}.fork(stream));
        }));
  }

  program.add_line(convert_load_line("activations_file", "acts"));
  program.add_line(convert_load_line("weights_file", "weights"));

  {
    ir::CodeRegion line;
    line.name = "logits = batch_gemm_bf16(acts, weights)";
    line.inputs = {"acts", "weights"};
    line.outputs = {"logits"};
    line.elem_bytes = 2.0 * kTileBytesBf16;  // one bf16 tile pair
    // 2·64³ flops per pair at ~0.5 flops/cycle with conversion overhead.
    line.cost.cycles_per_elem = static_cast<double>(kDim * kDim * kDim);
    line.host_threads = 1;
    line.csd_threads = 7;
    line.chunks = 128;
    line.kernel = [](ir::KernelCtx& ctx) {
      const auto a = ctx.input(0).physical.as<std::uint16_t>();
      const auto b = ctx.input(1).physical.as<std::uint16_t>();
      const std::size_t pairs = std::min(a.size(), b.size()) / (kDim * kDim);
      auto& out = ctx.output(0);
      out.physical.resize_elems<float>(pairs * kDim * kDim);
      auto c = out.physical.as<float>();
      for (std::size_t p = 0; p < pairs; ++p) {
        gemm_tile_bf16(a.data() + p * kDim * kDim, b.data() + p * kDim * kDim,
                       c.data() + p * kDim * kDim);
      }
    };
    program.add_line(std::move(line));
  }

  {
    ir::CodeRegion line;
    line.name = "activated = bias_gelu(logits)";
    line.inputs = {"logits"};
    line.outputs = {"activated"};
    line.elem_bytes = sizeof(float);
    line.cost.cycles_per_elem = 4.0;
    line.host_threads = 1;
    line.csd_threads = 8;
    line.chunks = 64;
    line.kernel = [](ir::KernelCtx& ctx) {
      const auto in = ctx.input(0).physical.as<float>();
      auto& out = ctx.output(0);
      out.physical.resize_elems<float>(in.size());
      auto dst = out.physical.as<float>();
      for (std::size_t i = 0; i < in.size(); ++i) {
        dst[i] = gelu(in[i] + 0.1F);
      }
    };
    program.add_line(std::move(line));
  }

  {
    ir::CodeRegion line;
    line.name = "summary = reduce_tiles(activated)";
    line.inputs = {"activated"};
    line.outputs = {"logit_summary"};
    line.elem_bytes = sizeof(float);
    line.cost.cycles_per_elem = 2.0;
    line.host_threads = 1;
    line.csd_threads = 8;
    line.chunks = 8;
    line.kernel = [](ir::KernelCtx& ctx) {
      const auto in = ctx.input(0).physical.as<float>();
      const std::size_t per_tile = kDim * kDim;
      const std::size_t tile_count = in.size() / per_tile;
      auto& out = ctx.output(0);
      out.physical.resize_elems<float>(tile_count > 0 ? tile_count : 1);
      auto dst = out.physical.as<float>();
      if (tile_count == 0) {
        dst[0] = 0.0F;
        return;
      }
      for (std::size_t t = 0; t < tile_count; ++t) {
        float sum = 0.0F;
        for (std::size_t i = 0; i < per_tile; ++i) {
          sum += in[t * per_tile + i];
        }
        dst[t] = sum / static_cast<float>(per_tile);
      }
    };
    program.add_line(std::move(line));
  }

  return program;
}

}  // namespace isp::apps
