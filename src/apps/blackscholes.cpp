// Blackscholes: European option pricing (Table I: 9.1 GB).
//
// The PARSEC-style workload: parse a large table of option parameters, price
// every option with the closed-form Black–Scholes model, and reduce the
// prices to portfolio statistics.  Compute-heavy per byte, with a 6× volume
// reduction at the pricing step and a total reduction to 32 bytes — the
// pattern that makes it one of the strongest ISP candidates in Figure 4 and
// one of the applications ActivePy chooses to migrate at 50% availability.
#include <algorithm>
#include <cmath>

#include "apps/data_gen.hpp"
#include "apps/detail.hpp"

namespace isp::apps {

namespace {

/// Cumulative normal distribution (Abramowitz–Stegun polynomial, the same
/// approximation the PARSEC kernel uses).
float cndf(float x) {
  const float sign = x < 0.0F ? -1.0F : 1.0F;
  const float ax = std::fabs(x);
  const float k = 1.0F / (1.0F + 0.2316419F * ax);
  const float poly =
      k * (0.319381530F +
           k * (-0.356563782F +
                k * (1.781477937F + k * (-1.821255978F + k * 1.330274429F))));
  const float pdf =
      0.39894228040143270F * std::exp(-0.5F * ax * ax);  // 1/sqrt(2π)
  const float cdf = 1.0F - pdf * poly;
  return sign > 0.0F ? cdf : 1.0F - cdf;
}

float price_option(const OptionRow& opt) {
  const float sqrt_t = std::sqrt(opt.expiry);
  const float d1 =
      (std::log(opt.spot / opt.strike) +
       (opt.rate + 0.5F * opt.volatility * opt.volatility) * opt.expiry) /
      (opt.volatility * sqrt_t);
  const float d2 = d1 - opt.volatility * sqrt_t;
  const float discounted = opt.strike * std::exp(-opt.rate * opt.expiry);
  if (opt.is_call != 0) {
    return opt.spot * cndf(d1) - discounted * cndf(d2);
  }
  return discounted * cndf(-d2) - opt.spot * cndf(-d1);
}

}  // namespace

ir::Program make_blackscholes(const AppConfig& config) {
  ir::Program program("blackscholes", config.virtual_scale);

  const Bytes size = detail::table_bytes(9.1, config);
  const std::size_t rows =
      detail::phys_elems(size, config, sizeof(OptionRecord));
  program.add_dataset(storage_dataset(
      "options_file", size, rows * sizeof(OptionRecord), sizeof(OptionRecord),
      [&](mem::Buffer& b) {
        fill_options(b, rows, Rng{config.seed}.fork(0xb5c0));
      }));

  {
    ir::CodeRegion line;
    line.name = "options = parse(options_file)";
    line.inputs = {"options_file"};
    line.outputs = {"options"};
    line.elem_bytes = sizeof(OptionRecord);
    line.cost.cycles_per_elem = 96.0;  // 2 cycles/byte parse + downconvert
    line.host_threads = 1;
    line.csd_threads = 6;
    line.chunks = 64;
    line.kernel = [](ir::KernelCtx& ctx) {
      const auto in = ctx.input(0).physical.as<OptionRecord>();
      auto& out = ctx.output(0);
      out.physical.resize_elems<OptionRow>(in.size());
      auto dst = out.physical.as<OptionRow>();
      for (std::size_t i = 0; i < in.size(); ++i) {
        OptionRow row;
        row.spot = static_cast<float>(in[i].spot);
        row.strike = static_cast<float>(in[i].strike);
        row.rate = static_cast<float>(in[i].rate);
        // Defensive clamping stands in for parse-time validation.
        row.volatility = std::max(static_cast<float>(in[i].volatility), 1e-4F);
        row.expiry = std::max(static_cast<float>(in[i].expiry), 1e-4F);
        row.is_call = in[i].is_call;
        dst[i] = row;
      }
    };
    program.add_line(std::move(line));
  }

  {
    ir::CodeRegion line;
    line.name = "prices = black_scholes(options)";
    line.inputs = {"options"};
    line.outputs = {"prices"};
    line.elem_bytes = sizeof(OptionRow);
    line.cost.cycles_per_elem = 480.0;  // exp/log/sqrt chain per option
    line.host_threads = 1;
    line.csd_threads = 8;  // embarrassingly parallel across CSE cores
    line.chunks = 128;
    line.kernel = [](ir::KernelCtx& ctx) {
      const auto in = ctx.input(0).physical.as<OptionRow>();
      auto& out = ctx.output(0);
      out.physical.resize_elems<float>(in.size());
      auto dst = out.physical.as<float>();
      for (std::size_t i = 0; i < in.size(); ++i) dst[i] = price_option(in[i]);
    };
    program.add_line(std::move(line));
  }

  {
    ir::CodeRegion line;
    line.name = "stats = reduce(prices)";
    line.inputs = {"prices"};
    line.outputs = {"price_stats"};
    line.elem_bytes = sizeof(float);
    line.cost.cycles_per_elem = 4.0;
    line.host_threads = 1;
    line.csd_threads = 8;
    line.chunks = 8;
    line.kernel = [](ir::KernelCtx& ctx) {
      const auto prices = ctx.input(0).physical.as<float>();
      double sum = 0.0;
      double sum_sq = 0.0;
      float lo = prices.empty() ? 0.0F : prices[0];
      float hi = lo;
      for (const float p : prices) {
        sum += p;
        sum_sq += static_cast<double>(p) * p;
        lo = std::min(lo, p);
        hi = std::max(hi, p);
      }
      const double n = prices.empty() ? 1.0 : static_cast<double>(prices.size());
      auto& out = ctx.output(0);
      out.physical.resize_elems<double>(4);
      auto dst = out.physical.as<double>();
      dst[0] = sum / n;
      dst[1] = std::sqrt(std::max(0.0, sum_sq / n - (sum / n) * (sum / n)));
      dst[2] = lo;
      dst[3] = hi;
    };
    program.add_line(std::move(line));
  }

  return program;
}

}  // namespace isp::apps
