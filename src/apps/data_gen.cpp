#include "apps/data_gen.hpp"

#include <cmath>

#include "common/error.hpp"

namespace isp::apps {

void fill_lineitem(mem::Buffer& buffer, std::size_t rows,
                   std::uint32_t part_keys, Rng rng) {
  ISP_CHECK(part_keys > 0, "need at least one part key");
  buffer.resize_elems<LineitemRow>(rows);
  auto out = buffer.as<LineitemRow>();
  static constexpr char kFlags[] = {'A', 'N', 'R'};
  static constexpr char kStatus[] = {'O', 'F'};
  for (auto& row : out) {
    row.quantity = 1.0 + std::floor(rng.uniform(0.0, 50.0));
    row.extended_price = rng.uniform(900.0, 105000.0);
    row.discount = std::floor(rng.uniform(0.0, 11.0)) / 100.0;  // 0.00..0.10
    row.tax = std::floor(rng.uniform(0.0, 9.0)) / 100.0;
    row.ship_date = static_cast<std::int32_t>(rng.uniform_u64(0, 2554));
    row.part_key = static_cast<std::int32_t>(rng.uniform_u64(0, part_keys - 1));
    row.return_flag = kFlags[rng.uniform_u64(0, 2)];
    row.line_status = kStatus[rng.uniform_u64(0, 1)];
    for (char& c : row.pad) c = 0;
  }
}

void fill_part(mem::Buffer& buffer, std::size_t rows, Rng rng) {
  buffer.resize_elems<PartRow>(rows);
  auto out = buffer.as<PartRow>();
  std::int32_t key = 0;
  for (auto& row : out) {
    row.part_key = key++;
    // TPC-H p_type has 150 variants, 30 of which are PROMO.
    row.is_promo = (rng.uniform_u64(0, 149) < 30) ? 1 : 0;
  }
}

void fill_options(mem::Buffer& buffer, std::size_t rows, Rng rng) {
  buffer.resize_elems<OptionRecord>(rows);
  auto out = buffer.as<OptionRecord>();
  for (auto& row : out) {
    row.spot = rng.uniform(10.0, 200.0);
    row.strike = rng.uniform(10.0, 200.0);
    row.rate = rng.uniform(0.005, 0.08);
    row.volatility = rng.uniform(0.05, 0.9);
    row.expiry = rng.uniform(0.05, 3.0);
    row.is_call = rng.uniform_u64(0, 1) == 1 ? 1 : 0;
    row.pad = 0;
  }
}

void fill_floats(mem::Buffer& buffer, std::size_t count, Rng rng) {
  buffer.resize_elems<float>(count);
  for (auto& v : buffer.as<float>()) {
    v = static_cast<float>(rng.uniform(-1.0, 1.0));
  }
}

void fill_doubles(mem::Buffer& buffer, std::size_t count, Rng rng) {
  buffer.resize_elems<double>(count);
  for (auto& v : buffer.as<double>()) v = rng.uniform(-1.0, 1.0);
}

void fill_edges_zipf(mem::Buffer& buffer, std::size_t edges,
                     std::uint32_t vertices, double skew, Rng rng) {
  ISP_CHECK(vertices > 1, "graph needs at least two vertices");
  buffer.resize_elems<EdgeRecord>(edges);
  auto out = buffer.as<EdgeRecord>();
  for (auto& e : out) {
    e.src = rng.zipf(vertices, skew);
    e.dst = rng.zipf(vertices, skew);
    if (e.src == e.dst) e.dst = (e.dst + 1) % vertices;
  }
}

void fill_forest(mem::Buffer& buffer, std::size_t trees, std::uint32_t depth,
                 std::uint32_t features, Rng rng) {
  ISP_CHECK(depth >= 1 && depth < 24, "unreasonable tree depth");
  const std::size_t nodes_per_tree = (std::size_t{1} << depth) - 1;
  buffer.resize_elems<TreeNode>(trees * nodes_per_tree);
  auto out = buffer.as<TreeNode>();
  const std::size_t internal = (std::size_t{1} << (depth - 1)) - 1;
  for (std::size_t t = 0; t < trees; ++t) {
    for (std::size_t n = 0; n < nodes_per_tree; ++n) {
      auto& node = out[t * nodes_per_tree + n];
      if (n < internal) {
        node.feature = static_cast<std::int32_t>(
            rng.uniform_u64(0, features - 1));
        node.threshold = static_cast<float>(rng.uniform(-0.8, 0.8));
      } else {
        node.feature = -1;
        node.threshold = static_cast<float>(rng.uniform(-1.0, 1.0));
      }
    }
  }
}

}  // namespace isp::apps
