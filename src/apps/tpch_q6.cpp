// TPC-H Q6: the forecast-revenue-change query (Table I: 6.9 GB).
//
//   SELECT sum(l_extendedprice * l_discount)
//   FROM lineitem
//   WHERE l_shipdate in one year AND l_discount in [0.05, 0.07]
//     AND l_quantity < 24
//
// Structure: a storage-bound scan+filter with ~2% selectivity (the classic
// ISP showcase — Summarizer evaluates the same query), a multiply-accumulate
// over the survivors, and a constant-size result line.
#include <cmath>

#include "apps/detail.hpp"
#include "apps/tpch_data.hpp"

namespace isp::apps {

namespace {

struct Q6Row {
  double extended_price;
  double discount;
};

constexpr std::int32_t kYearStart = 365;
constexpr std::int32_t kYearEnd = 730;

bool q6_match(const LineitemRow& row) {
  return row.ship_date >= kYearStart && row.ship_date < kYearEnd &&
         row.discount >= 0.05 - 1e-9 && row.discount <= 0.07 + 1e-9 &&
         row.quantity < 24.0;
}

}  // namespace

ir::Program make_tpch_q6(const AppConfig& config) {
  ir::Program program("tpch-q6", config.virtual_scale);
  program.add_dataset(
      make_lineitem_dataset(config, detail::table_bytes(6.9, config),
                            /*part_keys=*/200000));

  {
    ir::CodeRegion line;
    line.name = "rows = lineitem[pred(shipdate,discount,qty)]";
    line.inputs = {"lineitem"};
    line.outputs = {"q6_filtered"};
    line.elem_bytes = sizeof(LineitemRow);
    line.cost.cycles_per_elem = 240.0;  // 5 cycles/byte row predicate
    line.host_threads = 1;
    line.csd_threads = 6;  // scan is device-DRAM-bandwidth bound on the CSE
    line.chunks = 128;
    line.kernel = [](ir::KernelCtx& ctx) {
      const auto rows = ctx.input(0).physical.as<LineitemRow>();
      auto& out = ctx.output(0);
      std::size_t kept = 0;
      for (const auto& row : rows) kept += q6_match(row) ? 1 : 0;
      out.physical.resize_elems<Q6Row>(kept);
      auto dst = out.physical.as<Q6Row>();
      std::size_t i = 0;
      for (const auto& row : rows) {
        if (q6_match(row)) dst[i++] = {row.extended_price, row.discount};
      }
    };
    program.add_line(std::move(line));
  }

  {
    ir::CodeRegion line;
    line.name = "revenue = sum(rows.price * rows.discount)";
    line.inputs = {"q6_filtered"};
    line.outputs = {"q6_revenue"};
    line.elem_bytes = sizeof(Q6Row);
    line.cost.cycles_per_elem = 30.0;
    line.host_threads = 1;
    line.csd_threads = 6;
    line.chunks = 8;
    line.kernel = [](ir::KernelCtx& ctx) {
      const auto rows = ctx.input(0).physical.as<Q6Row>();
      double revenue = 0.0;
      for (const auto& row : rows) {
        revenue += row.extended_price * row.discount;
      }
      auto& out = ctx.output(0);
      out.physical.resize_elems<double>(1);
      out.physical.as<double>()[0] = revenue;
    };
    program.add_line(std::move(line));
  }

  {
    ir::CodeRegion line;
    line.name = "result = format(revenue)";
    line.inputs = {"q6_revenue"};
    line.outputs = {"q6_result"};
    line.elem_bytes = sizeof(double);
    line.cost.base_cycles = 5000.0;
    line.cost.cycles_per_elem = 1.0;
    line.host_threads = 1;
    line.csd_threads = 1;
    line.chunks = 1;
    line.kernel = [](ir::KernelCtx& ctx) {
      const auto revenue = ctx.input(0).physical.as<double>();
      auto& out = ctx.output(0);
      out.physical.resize_elems<double>(2);
      out.physical.as<double>()[0] = revenue.empty() ? 0.0 : revenue[0];
      out.physical.as<double>()[1] = 6.0;  // query id tag
    };
    program.add_line(std::move(line));
  }

  return program;
}

}  // namespace isp::apps
