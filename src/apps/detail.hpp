// Internal helpers shared by the application builders.
#pragma once

#include <cstdint>

#include "apps/registry.hpp"
#include "common/units.hpp"

namespace isp::apps::detail {

/// Table-I data size (decimal GB) scaled by the config's size factor.
inline Bytes table_bytes(double gigabytes, const AppConfig& config) {
  return Bytes{static_cast<std::uint64_t>(gigabytes * 1e9 *
                                          config.size_factor)};
}

/// Physical element count backing a virtual volume.
inline std::size_t phys_elems(Bytes virtual_bytes, const AppConfig& config,
                              std::size_t elem_bytes) {
  const double phys = virtual_bytes.as_double() / config.virtual_scale;
  const auto n = static_cast<std::size_t>(phys / elem_bytes);
  return n > 0 ? n : 1;
}

}  // namespace isp::apps::detail
