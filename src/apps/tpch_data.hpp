// Shared TPC-H dataset builders for the Q1/Q6/Q14 workloads.
#pragma once

#include "apps/data_gen.hpp"
#include "apps/registry.hpp"
#include "ir/program.hpp"

namespace isp::apps {

/// A LINEITEM dataset of `virtual_bytes`, physically scaled per the config.
/// `part_keys` bounds l_partkey (pass the physical PART row count for Q14).
[[nodiscard]] ir::Dataset make_lineitem_dataset(const AppConfig& config,
                                                Bytes virtual_bytes,
                                                std::uint32_t part_keys);

/// A PART dataset of `virtual_bytes`; returns the physical row count through
/// `phys_rows_out` so lineitem generation can bound its keys.
[[nodiscard]] ir::Dataset make_part_dataset(const AppConfig& config,
                                            Bytes virtual_bytes,
                                            std::size_t& phys_rows_out);

}  // namespace isp::apps
