#include "apps/tpch_data.hpp"

#include "apps/detail.hpp"

namespace isp::apps {

ir::Dataset make_lineitem_dataset(const AppConfig& config, Bytes virtual_bytes,
                                  std::uint32_t part_keys) {
  const std::size_t rows =
      detail::phys_elems(virtual_bytes, config, sizeof(LineitemRow));
  ir::Dataset d;
  d.object.name = "lineitem";
  d.object.location = mem::Location::Storage;
  d.object.virtual_bytes = virtual_bytes;
  fill_lineitem(d.object.physical, rows, part_keys,
                Rng{config.seed}.fork(0x71c4));
  d.elem_bytes = sizeof(LineitemRow);
  return d;
}

ir::Dataset make_part_dataset(const AppConfig& config, Bytes virtual_bytes,
                              std::size_t& phys_rows_out) {
  const std::size_t rows =
      detail::phys_elems(virtual_bytes, config, sizeof(PartRow));
  phys_rows_out = rows;
  ir::Dataset d;
  d.object.name = "part";
  d.object.location = mem::Location::Storage;
  d.object.virtual_bytes = virtual_bytes;
  fill_part(d.object.physical, rows, Rng{config.seed}.fork(0x9a27));
  d.elem_bytes = sizeof(PartRow);
  return d;
}

}  // namespace isp::apps
