#include "apps/registry.hpp"

#include "common/error.hpp"
#include "common/units.hpp"

namespace isp::apps {

const std::vector<AppInfo>& all_apps() {
  static const std::vector<AppInfo> apps = {
      {"blackscholes", gigabytes(9.1),
       "European option pricing over a 9.1 GB parameter table", true,
       make_blackscholes},
      {"kmeans", gigabytes(5.3),
       "Lloyd's algorithm, 8-d points, 6 iterations (longest baseline)", true,
       make_kmeans},
      {"lightgbm", gigabytes(7.1),
       "GBDT forest inference over 32-feature rows", true, make_lightgbm},
      {"matrixmul", gigabytes(6.0),
       "batched 32x32 dense matrix multiplication with BLAS epilogue", true, make_matmul},
      {"mixedgemm", gigabytes(9.4),
       "mixed-precision batched GEMM with GELU epilogue and reduction", true,
       make_mixedgemm},
      {"pagerank", gigabytes(7.7),
       "edge list -> compacted CSR -> damped power iterations", true,
       make_pagerank},
      {"tpch-q1", gigabytes(6.9),
       "TPC-H Q1 pricing summary (98% filter, 6-group aggregate)", true,
       make_tpch_q1},
      {"tpch-q6", gigabytes(6.9),
       "TPC-H Q6 forecast revenue (2% filter, sum)", true, make_tpch_q6},
      {"tpch-q14", gigabytes(7.1),
       "TPC-H Q14 promotion effect (month filter + part join)", true,
       make_tpch_q14},
      {"sparsemv", gigabytes(6.5),
       "triplets -> compacted CSR -> power iteration (second CSR workload)",
       false, make_sparsemv},
  };
  return apps;
}

std::vector<AppInfo> table1_apps() {
  std::vector<AppInfo> out;
  for (const auto& app : all_apps()) {
    if (app.in_table1) out.push_back(app);
  }
  return out;
}

ir::Program make_app(const std::string& name, const AppConfig& config) {
  for (const auto& app : all_apps()) {
    if (app.name == name) return app.make(config);
  }
  throw Error("unknown application '" + name + "'");
}

}  // namespace isp::apps
