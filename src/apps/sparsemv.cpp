// SparseMV: repeated sparse matrix–vector multiplication over a triplet
// stream (discussed in §V alongside PageRank as the second CSR workload;
// not in Table I — we size it at 6.5 GB, between the listed datasets).
//
// Triplets are compacted into CSR over one shared row/column id space (the
// matrix is treated as an operator on that space), then three y = A·x power
// steps run with renormalisation, ending in a norm.  Like PageRank, the CSR
// conversion's output volume is concave in sampled triplets, so ActivePy
// over-estimates it.
#include <cmath>
#include <cstring>
#include <string>
#include <unordered_map>
#include <vector>

#include "apps/data_gen.hpp"
#include "apps/detail.hpp"

namespace isp::apps {

namespace {

/// On-disk record: double-precision value plus 4 bytes of alignment, as the
/// upstream solver dumps it.
struct TripletRecord {
  std::uint32_t row;
  std::uint32_t col;
  double value;
};
static_assert(sizeof(TripletRecord) == 16);

/// In-memory compact triplet after the load narrows values to float.
struct Triplet {
  std::uint32_t row;
  std::uint32_t col;
  float value;
};
static_assert(sizeof(Triplet) == 12);

constexpr std::uint32_t kIterations = 3;

struct CsrHeader {
  std::uint64_t vertices;  // shared row/col space after compaction
  std::uint64_t nnz;
};

// Layout: CsrHeader | rowptr u64[V+1] | cols u32[N] | vals f32[N] (8-pad).
std::size_t csr_bytes(std::uint64_t v, std::uint64_t n) {
  std::size_t bytes = sizeof(CsrHeader) + (v + 1) * sizeof(std::uint64_t) +
                      n * (sizeof(std::uint32_t) + sizeof(float));
  return (bytes + 7) & ~std::size_t{7};
}

const std::uint64_t* rowptr_of(const std::byte* base) {
  return reinterpret_cast<const std::uint64_t*>(base + sizeof(CsrHeader));
}
const std::uint32_t* cols_of(const std::byte* base, std::uint64_t v) {
  return reinterpret_cast<const std::uint32_t*>(
      base + sizeof(CsrHeader) + (v + 1) * sizeof(std::uint64_t));
}
const float* vals_of(const std::byte* base, std::uint64_t v,
                     std::uint64_t n) {
  return reinterpret_cast<const float*>(
      base + sizeof(CsrHeader) + (v + 1) * sizeof(std::uint64_t) +
      n * sizeof(std::uint32_t));
}

void build_csr(ir::KernelCtx& ctx) {
  const auto triplets = ctx.input(0).physical.as<Triplet>();

  std::unordered_map<std::uint32_t, std::uint32_t> remap;
  remap.reserve(triplets.size());
  auto id_of = [&](std::uint32_t v) {
    const auto [it, inserted] =
        remap.try_emplace(v, static_cast<std::uint32_t>(remap.size()));
    return it->second;
  };
  std::vector<Triplet> compact;
  compact.reserve(triplets.size());
  for (const auto& t : triplets) {
    // Sequenced explicitly: brace-init evaluates left-to-right by the
    // standard, but keep the remap order unmistakable.
    const auto row = id_of(t.row);
    const auto col = id_of(t.col);
    compact.push_back(Triplet{row, col, t.value});
  }
  const std::uint64_t v_count = remap.size();
  const std::uint64_t nnz = compact.size();

  auto& out = ctx.output(0);
  out.physical.resize_elems<std::byte>(csr_bytes(v_count, nnz));
  auto* base = out.physical.as<std::byte>().data();
  auto* header = reinterpret_cast<CsrHeader*>(base);
  header->vertices = v_count;
  header->nnz = nnz;
  auto* rowptr = const_cast<std::uint64_t*>(rowptr_of(base));
  auto* cols = const_cast<std::uint32_t*>(cols_of(base, v_count));
  auto* vals = const_cast<float*>(vals_of(base, v_count, nnz));

  std::vector<std::uint64_t> degree(v_count, 0);
  for (const auto& t : compact) ++degree[t.row];
  rowptr[0] = 0;
  for (std::uint64_t v = 0; v < v_count; ++v) {
    rowptr[v + 1] = rowptr[v] + degree[v];
  }
  std::vector<std::uint64_t> cursor(rowptr, rowptr + v_count);
  for (const auto& t : compact) {
    const auto at = cursor[t.row]++;
    cols[at] = t.col;
    vals[at] = t.value;
  }
}

void spmv_step(ir::KernelCtx& ctx) {
  const auto* base = ctx.input(0).physical.as<std::byte>().data();
  const auto* header = reinterpret_cast<const CsrHeader*>(base);
  const auto v_count = header->vertices;
  const auto* rowptr = rowptr_of(base);
  const auto* cols = cols_of(base, v_count);
  const auto* vals = vals_of(base, v_count, header->nnz);
  const auto x = ctx.input(1).physical.as<double>();

  auto& out = ctx.output(0);
  out.physical.resize_elems<double>(v_count);
  auto y = out.physical.as<double>();
  double norm_sq = 0.0;
  for (std::uint64_t r = 0; r < v_count; ++r) {
    double acc = 0.0;
    for (std::uint64_t i = rowptr[r]; i < rowptr[r + 1]; ++i) {
      const auto c = cols[i];
      if (c < x.size()) acc += static_cast<double>(vals[i]) * x[c];
    }
    y[r] = acc;
    norm_sq += acc * acc;
  }
  const double norm = std::sqrt(norm_sq);
  if (norm > 0.0) {
    for (auto& v : y) v /= norm;
  }
}

}  // namespace

ir::Program make_sparsemv(const AppConfig& config) {
  ir::Program program("sparsemv", config.virtual_scale);

  const Bytes size = detail::table_bytes(6.5, config);
  const std::size_t nnz =
      detail::phys_elems(size, config, sizeof(TripletRecord));
  const auto ids =
      static_cast<std::uint32_t>(std::max<std::size_t>(nnz / 2, 64));
  program.add_dataset(storage_dataset(
      "triplets_file", size, nnz * sizeof(TripletRecord),
      sizeof(TripletRecord), [&](mem::Buffer& b) {
        b.resize_elems<TripletRecord>(nnz);
        Rng rng = Rng{config.seed}.fork(0x50a7);
        for (auto& t : b.as<TripletRecord>()) {
          t.row = static_cast<std::uint32_t>(rng.zipf(ids, 0.65));
          t.col = static_cast<std::uint32_t>(rng.zipf(ids, 0.65));
          t.value = rng.uniform(-1.0, 1.0);
        }
      }));

  {
    ir::CodeRegion line;
    line.name = "triplets = load_narrow(triplets_file)";
    line.inputs = {"triplets_file"};
    line.outputs = {"triplets"};
    line.elem_bytes = sizeof(TripletRecord);
    line.cost.cycles_per_elem = 32.0;  // 2 cycles/byte narrowing
    line.host_threads = 1;
    line.csd_threads = 6;
    line.chunks = 64;
    line.kernel = [](ir::KernelCtx& ctx) {
      const auto in = ctx.input(0).physical.as<TripletRecord>();
      auto& out = ctx.output(0);
      out.physical.resize_elems<Triplet>(in.size());
      auto dst = out.physical.as<Triplet>();
      for (std::size_t i = 0; i < in.size(); ++i) {
        dst[i] = Triplet{in[i].row, in[i].col,
                         static_cast<float>(in[i].value)};
      }
    };
    program.add_line(std::move(line));
  }

  {
    ir::CodeRegion line;
    line.name = "csr = to_csr(triplets)";
    line.inputs = {"triplets"};
    line.outputs = {"csr"};
    line.elem_bytes = sizeof(Triplet);
    line.cost.cycles_per_elem = 96.0;  // 8 cycles/byte remap + scatter
    line.host_threads = 1;
    line.csd_threads = 6;
    line.chunks = 64;
    line.kernel = build_csr;
    program.add_line(std::move(line));
  }

  {
    ir::CodeRegion line;
    line.name = "x0 = ones(csr)";
    line.inputs = {"csr"};
    line.outputs = {"x0"};
    line.elem_bytes = 8.0;
    line.cost.base_cycles = 10000.0;
    line.cost.cycles_per_elem = 0.25;
    line.host_threads = 1;
    line.csd_threads = 8;
    line.chunks = 4;
    line.kernel = [](ir::KernelCtx& ctx) {
      const auto* base = ctx.input(0).physical.as<std::byte>().data();
      const auto* header = reinterpret_cast<const CsrHeader*>(base);
      auto& out = ctx.output(0);
      out.physical.resize_elems<double>(header->vertices);
      const double v0 =
          header->vertices > 0
              ? 1.0 / std::sqrt(static_cast<double>(header->vertices))
              : 0.0;
      for (auto& v : out.physical.as<double>()) v = v0;
    };
    program.add_line(std::move(line));
  }

  for (std::uint32_t it = 0; it < kIterations; ++it) {
    ir::CodeRegion line;
    line.name = "x" + std::to_string(it + 1) + " = normalize(A @ x" +
                std::to_string(it) + ")";
    line.inputs = {"csr", "x" + std::to_string(it)};
    line.outputs = {"x" + std::to_string(it + 1)};
    line.elem_bytes = 4.0;
    line.cost.cycles_per_elem = 20.0;  // gather-heavy FMA per CSR word
    line.host_threads = 1;
    line.csd_threads = 7;
    line.chunks = 128;
    line.kernel = spmv_step;
    program.add_line(std::move(line));
  }

  {
    ir::CodeRegion line;
    line.name = "lambda = rayleigh(x" + std::to_string(kIterations) + ")";
    line.inputs = {"x" + std::to_string(kIterations)};
    line.outputs = {"eigen_estimate"};
    line.elem_bytes = sizeof(double);
    line.cost.cycles_per_elem = 2.0;
    line.host_threads = 1;
    line.csd_threads = 8;
    line.chunks = 4;
    line.kernel = [](ir::KernelCtx& ctx) {
      const auto x = ctx.input(0).physical.as<double>();
      double norm_sq = 0.0;
      for (const double v : x) norm_sq += v * v;
      auto& out = ctx.output(0);
      out.physical.resize_elems<double>(1);
      out.physical.as<double>()[0] = std::sqrt(norm_sq);
    };
    program.add_line(std::move(line));
  }

  return program;
}

}  // namespace isp::apps
