#include "exec/cli.hpp"

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "exec/pool.hpp"

namespace isp::exec {

namespace {

[[noreturn]] void die(const std::string& why) {
  std::fprintf(stderr, "error: %s\n", why.c_str());
  std::exit(2);
}

unsigned parse_jobs_value(const char* text) {
  if (text == nullptr || *text == '\0') die("--jobs needs a value");
  errno = 0;
  char* end = nullptr;
  const unsigned long long v = std::strtoull(text, &end, 10);
  if (errno != 0 || end == text || *end != '\0') {
    die(std::string("--jobs: not a number: '") + text + "'");
  }
  if (v == 0) die("--jobs must be at least 1");
  if (v > 1024) die("--jobs: implausible worker count");
  return static_cast<unsigned>(v);
}

}  // namespace

unsigned jobs_from_args(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strcmp(arg, "--jobs") == 0) {
      if (i + 1 >= argc) die("--jobs needs a value");
      return parse_jobs_value(argv[i + 1]);
    }
    if (std::strncmp(arg, "--jobs=", 7) == 0) {
      return parse_jobs_value(arg + 7);
    }
  }
  return default_jobs();
}

}  // namespace isp::exec
