#include "exec/cli.hpp"

#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "exec/pool.hpp"

namespace isp::exec {

namespace {

[[noreturn]] void die(const std::string& why) {
  std::fprintf(stderr, "error: %s\n", why.c_str());
  std::exit(2);
}

/// Find the value of `--name V` / `--name=V`; nullptr when the flag is
/// absent.  A flag present without a value is an immediate exit-2.
const char* flag_value(int argc, char** argv, const char* name) {
  const std::size_t len = std::strlen(name);
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strcmp(arg, name) == 0) {
      if (i + 1 >= argc) die(std::string(name) + " needs a value");
      return argv[i + 1];
    }
    if (std::strncmp(arg, name, len) == 0 && arg[len] == '=') {
      if (arg[len + 1] == '\0') die(std::string(name) + " needs a value");
      return arg + len + 1;
    }
  }
  return nullptr;
}

}  // namespace

bool flag_present(int argc, char** argv, const char* name) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], name) == 0) return true;
  }
  return false;
}

std::uint64_t u64_flag(int argc, char** argv, const char* name,
                       std::uint64_t fallback, std::uint64_t lo,
                       std::uint64_t hi) {
  const char* text = flag_value(argc, argv, name);
  if (text == nullptr) return fallback;
  errno = 0;
  char* end = nullptr;
  const unsigned long long v = std::strtoull(text, &end, 10);
  if (errno != 0 || end == text || *end != '\0' || text[0] == '-') {
    die(std::string(name) + ": '" + text + "' is not a non-negative integer");
  }
  if (v < lo || v > hi) {
    die(std::string(name) + ": " + std::to_string(v) + " is outside [" +
        std::to_string(lo) + ", " + std::to_string(hi) + "]");
  }
  return v;
}

double double_flag(int argc, char** argv, const char* name, double fallback,
                   double lo, double hi) {
  const char* text = flag_value(argc, argv, name);
  if (text == nullptr) return fallback;
  errno = 0;
  char* end = nullptr;
  const double v = std::strtod(text, &end);
  if (errno == ERANGE || end == text || *end != '\0' || !std::isfinite(v)) {
    die(std::string(name) + ": '" + text + "' is not a number");
  }
  if (v < lo || v > hi) {
    char bound[128];
    std::snprintf(bound, sizeof(bound), "%s: %g is outside [%g, %g]", name, v,
                  lo, hi);
    die(bound);
  }
  return v;
}

const char* string_flag(int argc, char** argv, const char* name,
                        const char* fallback) {
  const char* text = flag_value(argc, argv, name);
  return text == nullptr ? fallback : text;
}

unsigned jobs_from_args(int argc, char** argv) {
  return static_cast<unsigned>(
      u64_flag(argc, argv, "--jobs", default_jobs(), 1, 1024));
}

std::optional<bool> parse_on_off(const char* text) {
  if (text == nullptr) return std::nullopt;
  if (std::strcmp(text, "on") == 0) return true;
  if (std::strcmp(text, "off") == 0) return false;
  return std::nullopt;
}

bool on_off_flag(int argc, char** argv, const char* name, bool fallback) {
  const char* text = flag_value(argc, argv, name);
  if (text == nullptr) return fallback;
  const auto v = parse_on_off(text);
  if (!v.has_value()) {
    die(std::string(name) + ": '" + text + "' is not 'on' or 'off'");
  }
  return *v;
}

std::optional<std::size_t> parse_enum(
    const char* text, const std::vector<const char*>& choices) {
  if (text == nullptr || text[0] == '\0') return std::nullopt;
  for (std::size_t i = 0; i < choices.size(); ++i) {
    if (std::strcmp(text, choices[i]) == 0) return i;
  }
  return std::nullopt;
}

std::size_t enum_flag(int argc, char** argv, const char* name,
                      const std::vector<const char*>& choices,
                      std::size_t fallback) {
  const char* text = flag_value(argc, argv, name);
  if (text == nullptr) return fallback;
  const auto v = parse_enum(text, choices);
  if (!v.has_value()) {
    std::string accepted;
    for (std::size_t i = 0; i < choices.size(); ++i) {
      if (i > 0) accepted += "|";
      accepted += choices[i];
    }
    die(std::string(name) + ": '" + text + "' is not one of " + accepted);
  }
  return *v;
}

std::optional<KillSpec> parse_kill_spec(const char* text) {
  if (text == nullptr || text[0] == '\0') return std::nullopt;
  const char* sep = std::strchr(text, '@');
  if (sep == nullptr || sep == text || sep[1] == '\0') return std::nullopt;
  if (std::strchr(sep + 1, '@') != nullptr) return std::nullopt;

  errno = 0;
  char* end = nullptr;
  const unsigned long long device = std::strtoull(text, &end, 10);
  if (errno != 0 || end != sep || text[0] == '-') return std::nullopt;

  errno = 0;
  const double at = std::strtod(sep + 1, &end);
  if (errno == ERANGE || end == sep + 1 || *end != '\0' ||
      !std::isfinite(at) || at < 0.0) {
    return std::nullopt;
  }
  return KillSpec{.device = device, .at = at};
}

std::vector<KillSpec> kill_flags(int argc, char** argv, const char* name) {
  std::vector<KillSpec> specs;
  const std::size_t len = std::strlen(name);
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    const char* text = nullptr;
    if (std::strcmp(arg, name) == 0) {
      if (i + 1 >= argc) die(std::string(name) + " needs a value");
      text = argv[++i];
    } else if (std::strncmp(arg, name, len) == 0 && arg[len] == '=') {
      text = arg + len + 1;
    } else {
      continue;
    }
    const auto spec = parse_kill_spec(text);
    if (!spec.has_value()) {
      die(std::string(name) + ": '" + text +
          "' is not a k@t kill spec (device index '@' seconds)");
    }
    specs.push_back(*spec);
  }
  return specs;
}

}  // namespace isp::exec
