// Strict shared CLI parsing for the bench harnesses.
//
// Every batch harness takes `--jobs N` (the worker count handed to
// exec::run_batch; absent, hardware concurrency; `--jobs 1` is exactly the
// serial behaviour) and a handful of numeric knobs of its own.  Parsing
// follows the repository's strict convention (PR 2): a malformed,
// out-of-range or valueless flag prints a diagnostic and exits with status 2
// rather than being silently clamped or — worse — atoi'd to zero.  The
// helpers below are that convention in one place, so the harnesses stop
// re-growing private parse-and-validate snippets.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

namespace isp::exec {

/// True if `--name` appears in argv (boolean flag, no value).
[[nodiscard]] bool flag_present(int argc, char** argv, const char* name);

/// Parse `--name V` (or `--name=V`) as an unsigned integer in [lo, hi].
/// Returns `fallback` when the flag is absent.  Exits with status 2 on a
/// malformed value, a missing value, or a value outside [lo, hi].
[[nodiscard]] std::uint64_t u64_flag(int argc, char** argv, const char* name,
                                     std::uint64_t fallback, std::uint64_t lo,
                                     std::uint64_t hi);

/// Parse `--name V` (or `--name=V`) as a finite double in [lo, hi].  Same
/// absent/error behaviour as u64_flag.
[[nodiscard]] double double_flag(int argc, char** argv, const char* name,
                                 double fallback, double lo, double hi);

/// Parse `--name V` (or `--name=V`) as a non-empty string.  Returns
/// `fallback` (which may be nullptr) when the flag is absent.  Exits with
/// status 2 on a missing or empty value.
[[nodiscard]] const char* string_flag(int argc, char** argv, const char* name,
                                      const char* fallback);

/// Parse `--jobs N` (or `--jobs=N`) out of argv.  Returns default_jobs()
/// when the flag is absent.  Exits with status 2 on a malformed value, a
/// value of zero, or a missing argument.
[[nodiscard]] unsigned jobs_from_args(int argc, char** argv);

/// Parse an on/off toggle value: exactly "on" or "off" — no case folding,
/// no 1/0/true/false aliases.  Returns nullopt on anything else (pure —
/// unit-testable without exiting).
[[nodiscard]] std::optional<bool> parse_on_off(const char* text);

/// Parse `--name on|off` (or `--name=on|off`).  Returns `fallback` when the
/// flag is absent.  Exits with status 2 on a missing value or anything that
/// is not exactly "on" or "off".
[[nodiscard]] bool on_off_flag(int argc, char** argv, const char* name,
                               bool fallback);

/// Parse an enumerated flag value against a closed choice list: exact match
/// only — no case folding, no prefixes, no aliases.  Returns the index into
/// `choices` or nullopt on anything else, nullptr and empty strings
/// included (pure — unit-testable without exiting).
[[nodiscard]] std::optional<std::size_t> parse_enum(
    const char* text, const std::vector<const char*>& choices);

/// Parse `--name V` (or `--name=V`) where V must be exactly one of
/// `choices`.  Returns the index of the matched choice, or `fallback` when
/// the flag is absent.  Exits with status 2 on a missing value or a value
/// not in the list, printing the accepted spellings.
[[nodiscard]] std::size_t enum_flag(int argc, char** argv, const char* name,
                                    const std::vector<const char*>& choices,
                                    std::size_t fallback);

/// One `--kill-device k@t` entry: device index `k` dies permanently at
/// fleet-virtual-time `t` seconds.
struct KillSpec {
  std::uint64_t device = 0;
  double at = 0.0;
};

/// Parse a "k@t" kill spec: a non-negative integer device index and a
/// finite non-negative time in seconds, joined by a single '@'.  Returns
/// nullopt on any malformed input (pure — unit-testable without exiting).
[[nodiscard]] std::optional<KillSpec> parse_kill_spec(const char* text);

/// Collect every occurrence of `--name k@t` (or `--name=k@t`) in argv, in
/// order.  Exits with status 2 on a malformed spec or a missing value.
[[nodiscard]] std::vector<KillSpec> kill_flags(int argc, char** argv,
                                               const char* name);

}  // namespace isp::exec
