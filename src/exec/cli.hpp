// The --jobs flag shared by the sweep harnesses.
//
// Every batch harness takes `--jobs N`: the worker count handed to
// exec::run_batch.  Absent, it defaults to hardware concurrency; `--jobs 1`
// is exactly the serial behaviour.  Parsing follows the repository's strict
// CLI convention: a malformed or out-of-range value prints a diagnostic and
// exits with status 2 rather than being silently clamped.
#pragma once

namespace isp::exec {

/// Parse `--jobs N` (or `--jobs=N`) out of argv.  Returns default_jobs()
/// when the flag is absent.  Exits with status 2 on a malformed value, a
/// value of zero, or a missing argument.
[[nodiscard]] unsigned jobs_from_args(int argc, char** argv);

}  // namespace isp::exec
