#include "exec/pool.hpp"

#include "common/error.hpp"

namespace isp::exec {

unsigned default_jobs() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1u : hw;
}

Pool::Pool(unsigned workers) {
  ISP_CHECK(workers >= 1, "pool needs at least one worker");
  queues_.reserve(workers);
  for (unsigned w = 0; w < workers; ++w) {
    queues_.push_back(std::make_unique<WorkerQueue>());
  }
  threads_.reserve(workers);
  for (unsigned w = 0; w < workers; ++w) {
    threads_.emplace_back([this, w] { worker_loop(w); });
  }
}

Pool::~Pool() {
  {
    std::lock_guard lock(mu_);
    shutdown_ = true;
  }
  batch_cv_.notify_all();
  for (auto& t : threads_) t.join();
}

void Pool::parallel_for(std::size_t n,
                        const std::function<void(std::size_t)>& task) {
  if (n == 0) return;
  std::vector<std::exception_ptr> errors(n);
  {
    std::lock_guard lock(mu_);
    ISP_CHECK(task_ == nullptr, "parallel_for is not reentrant");
    task_ = &task;
    errors_ = &errors;
    remaining_ = n;
    // Deal indices round-robin, locking each deque while we fill it.  A
    // straggler worker from the previous batch can still be scanning the
    // deques here (it decrements remaining_ before it re-parks), so the
    // deques are NOT exclusively ours.  Holding q.mu makes the push safe
    // against a concurrent pop, and its release/acquire pairing also
    // publishes the task_/errors_ writes above to any worker that pops one
    // of these indices — including a straggler that never saw the epoch
    // bump.
    const std::size_t k = queues_.size();
    for (std::size_t w = 0; w < k && w < n; ++w) {
      WorkerQueue& q = *queues_[w];
      std::lock_guard qlock(q.mu);
      for (std::size_t i = w; i < n; i += k) q.items.push_back(i);
    }
    ++epoch_;
  }
  batch_cv_.notify_all();
  {
    std::unique_lock lock(mu_);
    done_cv_.wait(lock, [&] { return remaining_ == 0; });
    task_ = nullptr;
    errors_ = nullptr;
  }
  for (auto& e : errors) {
    if (e) std::rethrow_exception(e);
  }
}

void Pool::worker_loop(std::size_t self) {
  std::uint64_t seen_epoch = 0;
  for (;;) {
    {
      std::unique_lock lock(mu_);
      batch_cv_.wait(lock,
                     [&] { return shutdown_ || epoch_ != seen_epoch; });
      if (shutdown_) return;
      seen_epoch = epoch_;
    }
    for (;;) {
      std::size_t index = 0;
      if (!pop_own(self, index) && !steal(self, index)) break;
      run_one(index);
    }
  }
}

bool Pool::pop_own(std::size_t self, std::size_t& index) {
  WorkerQueue& q = *queues_[self];
  std::lock_guard lock(q.mu);
  if (q.items.empty()) return false;
  index = q.items.front();
  q.items.pop_front();
  return true;
}

bool Pool::steal(std::size_t self, std::size_t& index) {
  for (std::size_t d = 1; d < queues_.size(); ++d) {
    WorkerQueue& q = *queues_[(self + d) % queues_.size()];
    std::lock_guard lock(q.mu);
    if (q.items.empty()) continue;
    index = q.items.back();
    q.items.pop_back();
    return true;
  }
  return false;
}

void Pool::run_one(std::size_t index) {
  try {
    (*task_)(index);
  } catch (...) {
    (*errors_)[index] = std::current_exception();
  }
  std::lock_guard lock(mu_);
  if (--remaining_ == 0) done_cv_.notify_all();
}

}  // namespace isp::exec
