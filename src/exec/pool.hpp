// Deterministic parallel sweep execution.
//
// Every heavy harness in this repository — the crash-point sweep, the
// Equation-1 consistency table, the fault-rate sweep, the dataset-scaling
// ablation, the fuzz matrices — is an embarrassingly parallel batch of
// fully independent, seed-deterministic simulations.  `Pool` is a
// work-stealing thread pool and `run_batch` the one entry point the
// harnesses use: fan N independent tasks across hardware threads while
// guaranteeing byte-identical output to the serial order.
//
// The determinism contract:
//   * every task owns its state — its SystemModel (device, FTL, queues),
//     RNG, fault plan and trace buffer are constructed inside the task;
//     nothing mutable is shared between tasks;
//   * results land in a pre-sized vector slot indexed by submission order,
//     so collection order is independent of scheduling order;
//   * `jobs == 1` bypasses the pool entirely and runs the tasks inline on
//     the calling thread — bit-for-bit today's serial behaviour;
//   * exceptions are captured per task; after the batch settles, the
//     lowest-index exception is rethrown (again independent of thread
//     timing).  Workers always join: a throwing task never leaks a thread.
//
// Scheduling is work-stealing over per-worker deques: indices are dealt
// round-robin at submission, each worker drains its own deque from the
// front and steals from the back of a sibling when it runs dry.  Tasks
// here are whole simulations (milliseconds and up), so a mutex per deque
// costs nothing measurable.
#pragma once

#include <algorithm>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <type_traits>
#include <vector>

namespace isp::exec {

/// Worker count used when the caller does not choose: hardware concurrency,
/// with a floor of 1 when the runtime cannot tell.
[[nodiscard]] unsigned default_jobs();

/// Work-stealing thread pool.  One instance serves one caller at a time
/// (parallel_for is not reentrant); workers persist across batches and are
/// joined by the destructor.
class Pool {
 public:
  explicit Pool(unsigned workers = default_jobs());
  ~Pool();

  Pool(const Pool&) = delete;
  Pool& operator=(const Pool&) = delete;

  [[nodiscard]] unsigned workers() const {
    return static_cast<unsigned>(threads_.size());
  }

  /// Run task(i) for every i in [0, n), blocking until the batch settles.
  /// Exceptions thrown by tasks are captured; once every task has either
  /// finished or thrown, the lowest-index exception is rethrown.
  void parallel_for(std::size_t n,
                    const std::function<void(std::size_t)>& task);

 private:
  struct WorkerQueue {
    std::mutex mu;
    std::deque<std::size_t> items;
  };

  void worker_loop(std::size_t self);
  bool pop_own(std::size_t self, std::size_t& index);
  bool steal(std::size_t self, std::size_t& index);
  void run_one(std::size_t index);

  // Batch handshake.  All epoch/remaining transitions happen under mu_.
  // Indices are dealt while holding both mu_ and each deque's own mutex:
  // a straggler worker from the previous batch may still be scanning the
  // deques (it decrements remaining_ before it re-parks), so per-queue
  // locking is what makes dealing safe against a concurrent pop — and its
  // release/acquire pairing publishes the task_/errors_ writes to whichever
  // worker pops each index, epoch-woken or straggler alike.
  std::mutex mu_;
  std::condition_variable batch_cv_;  // workers: a new batch is ready
  std::condition_variable done_cv_;   // caller: the batch has settled
  std::uint64_t epoch_ = 0;
  std::size_t remaining_ = 0;
  bool shutdown_ = false;
  const std::function<void(std::size_t)>* task_ = nullptr;
  std::vector<std::exception_ptr>* errors_ = nullptr;

  std::vector<std::unique_ptr<WorkerQueue>> queues_;
  std::vector<std::thread> threads_;
};

/// Fan `fn` over [0, n) and collect the results in submission order.
/// `fn` must be safe to call concurrently from several threads, which in
/// this codebase means: construct every mutable thing (SystemModel,
/// EngineOptions, stores, RNGs) inside the call.  The result type must be
/// default-constructible and must not be `bool` (std::vector<bool> packs
/// bits, so concurrent per-element writes would race — return a struct).
template <typename Fn>
auto run_batch(std::size_t n, Fn&& fn, unsigned jobs = default_jobs())
    -> std::vector<std::decay_t<std::invoke_result_t<Fn&, std::size_t>>> {
  using R = std::decay_t<std::invoke_result_t<Fn&, std::size_t>>;
  static_assert(std::is_default_constructible_v<R>,
                "run_batch results are collected into a pre-sized vector");
  static_assert(!std::is_same_v<R, bool>,
                "std::vector<bool> packs bits; return a struct instead");
  std::vector<R> results(n);
  if (n == 0) return results;
  if (jobs <= 1 || n == 1) {
    // Serial path: today's behaviour, on the calling thread, in order.
    for (std::size_t i = 0; i < n; ++i) results[i] = fn(i);
    return results;
  }
  Pool pool(static_cast<unsigned>(
      std::min<std::size_t>(jobs, n)));
  pool.parallel_for(n, [&](std::size_t i) { results[i] = fn(i); });
  return results;
}

/// Convenience overload: one task per config, results in config order.
template <typename Config, typename Fn>
auto run_batch(const std::vector<Config>& configs, Fn&& fn,
               unsigned jobs = default_jobs()) {
  return run_batch(
      configs.size(),
      [&](std::size_t i) { return fn(configs[i]); }, jobs);
}

}  // namespace isp::exec
