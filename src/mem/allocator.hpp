// First-fit free-list allocator over one memory window, plus the
// place-near-consumer policy ActivePy's memory planner applies (§III-C(a)).
//
// Allocations carve address ranges out of a Window; the allocator never
// touches real memory (physical payloads live in DataObject buffers) — it
// models *where* objects live so transfer and remote-access costs can be
// charged faithfully.
#pragma once

#include <cstdint>
#include <list>
#include <optional>

#include "common/units.hpp"
#include "mem/address_space.hpp"

namespace isp::mem {

struct Allocation {
  std::uint64_t address = 0;
  Bytes size;
  MemKind kind = MemKind::HostDram;
};

class Allocator {
 public:
  explicit Allocator(const Window& window);

  /// First-fit allocation aligned to `alignment`; nullopt when fragmented
  /// space cannot satisfy the request.
  std::optional<Allocation> allocate(Bytes size, Bytes alignment = Bytes{64});

  /// Return a previous allocation. Coalesces adjacent free ranges.
  void release(const Allocation& allocation);

  [[nodiscard]] Bytes free_bytes() const;
  [[nodiscard]] Bytes largest_free_block() const;
  [[nodiscard]] Bytes capacity() const { return window_.size; }

  /// Validate the free list: sorted, disjoint, coalesced, within window.
  void check_invariants() const;

 private:
  struct Range {
    std::uint64_t base;
    std::uint64_t size;
  };

  Window window_;
  std::list<Range> free_;  // sorted by base, fully coalesced
};

/// ActivePy's placement policy: put an object in the memory of the unit that
/// consumes it, so the consumer reads at local speed and cross-boundary
/// copies disappear.  `consumer_on_csd` is the placement of the first line
/// that reads the object.
[[nodiscard]] MemKind place_near_consumer(bool consumer_on_csd);

}  // namespace isp::mem
