#include "mem/data_object.hpp"

namespace isp::mem {

std::string_view location_name(Location location) {
  switch (location) {
    case Location::Storage:
      return "storage";
    case Location::HostDram:
      return "host-dram";
    case Location::DeviceDram:
      return "device-dram";
  }
  return "?";
}

}  // namespace isp::mem
