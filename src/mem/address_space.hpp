// Unified host/device address space (§III-C(a)).
//
// ActivePy maps CSD memory into the host program's virtual address space
// through PCIe BARs (or RDMA under NVMe-oF), so host and CSD code share one
// address space and migration only has to move data, never re-point it.
// AddressSpace models that single space as disjoint windows, one per memory
// kind, and answers "which memory does this address live in?" — the question
// the near-consumer allocator and the migration cost model both ask.
#pragma once

#include <cstdint>
#include <optional>
#include <string_view>
#include <vector>

#include "common/units.hpp"

namespace isp::mem {

enum class MemKind : std::uint8_t {
  HostDram = 0,
  DeviceDram,   // CSD DRAM reachable by the CSE at full speed
  DeviceBar,    // CSD DRAM window exposed to host loads/stores
  kCount
};

[[nodiscard]] std::string_view to_string(MemKind kind);

struct Window {
  MemKind kind = MemKind::HostDram;
  std::uint64_t base = 0;
  Bytes size;

  [[nodiscard]] bool contains(std::uint64_t addr) const {
    return addr >= base && addr - base < size.count();
  }
  [[nodiscard]] std::uint64_t end() const { return base + size.count(); }
};

class AddressSpace {
 public:
  /// Register a window; windows must not overlap.
  void map(MemKind kind, std::uint64_t base, Bytes size);

  [[nodiscard]] std::optional<MemKind> kind_of(std::uint64_t addr) const;
  [[nodiscard]] const Window* window(MemKind kind) const;
  [[nodiscard]] const std::vector<Window>& windows() const { return windows_; }

  /// Conventional layout used by the whole project: host DRAM at 0,
  /// device DRAM next, and a BAR alias window above it.
  static AddressSpace standard_layout(Bytes host_dram, Bytes device_dram);

 private:
  std::vector<Window> windows_;
};

}  // namespace isp::mem
