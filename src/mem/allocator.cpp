#include "mem/allocator.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace isp::mem {

Allocator::Allocator(const Window& window) : window_(window) {
  free_.push_back(Range{window_.base, window_.size.count()});
}

std::optional<Allocation> Allocator::allocate(Bytes size, Bytes alignment) {
  ISP_CHECK(size.count() > 0, "zero-byte allocation");
  ISP_CHECK(alignment.count() > 0 &&
                (alignment.count() & (alignment.count() - 1)) == 0,
            "alignment must be a power of two");
  const std::uint64_t align = alignment.count();

  for (auto it = free_.begin(); it != free_.end(); ++it) {
    const std::uint64_t aligned = (it->base + align - 1) & ~(align - 1);
    const std::uint64_t pad = aligned - it->base;
    if (it->size < pad + size.count()) continue;

    const Allocation out{aligned, size, window_.kind};
    const std::uint64_t tail_base = aligned + size.count();
    const std::uint64_t tail_size = it->base + it->size - tail_base;

    if (pad > 0 && tail_size > 0) {
      it->size = pad;
      free_.insert(std::next(it), Range{tail_base, tail_size});
    } else if (pad > 0) {
      it->size = pad;
    } else if (tail_size > 0) {
      it->base = tail_base;
      it->size = tail_size;
    } else {
      free_.erase(it);
    }
    return out;
  }
  return std::nullopt;
}

void Allocator::release(const Allocation& allocation) {
  ISP_CHECK(allocation.kind == window_.kind, "allocation from another window");
  ISP_CHECK(window_.contains(allocation.address), "address outside window");
  Range incoming{allocation.address, allocation.size.count()};

  auto it = std::find_if(free_.begin(), free_.end(), [&](const Range& r) {
    return r.base > incoming.base;
  });
  // Guard against double free / overlap with neighbours.
  if (it != free_.end()) {
    ISP_CHECK(incoming.base + incoming.size <= it->base,
              "release overlaps a free range (double free?)");
  }
  if (it != free_.begin()) {
    const auto prev = std::prev(it);
    ISP_CHECK(prev->base + prev->size <= incoming.base,
              "release overlaps a free range (double free?)");
  }

  it = free_.insert(it, incoming);
  // Coalesce with successor, then predecessor.
  if (const auto next = std::next(it);
      next != free_.end() && it->base + it->size == next->base) {
    it->size += next->size;
    free_.erase(next);
  }
  if (it != free_.begin()) {
    const auto prev = std::prev(it);
    if (prev->base + prev->size == it->base) {
      prev->size += it->size;
      free_.erase(it);
    }
  }
}

Bytes Allocator::free_bytes() const {
  std::uint64_t total = 0;
  for (const auto& r : free_) total += r.size;
  return Bytes{total};
}

Bytes Allocator::largest_free_block() const {
  std::uint64_t best = 0;
  for (const auto& r : free_) best = std::max(best, r.size);
  return Bytes{best};
}

void Allocator::check_invariants() const {
  std::uint64_t prev_end = window_.base;
  bool first = true;
  for (const auto& r : free_) {
    ISP_CHECK(r.size > 0, "empty free range");
    ISP_CHECK(r.base >= window_.base && r.base + r.size <= window_.end(),
              "free range outside window");
    if (!first) {
      ISP_CHECK(r.base > prev_end, "free list not sorted/coalesced");
    }
    prev_end = r.base + r.size;
    first = false;
  }
}

MemKind place_near_consumer(bool consumer_on_csd) {
  return consumer_on_csd ? MemKind::DeviceDram : MemKind::HostDram;
}

}  // namespace isp::mem
