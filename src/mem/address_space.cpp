#include "mem/address_space.hpp"

#include "common/error.hpp"

namespace isp::mem {

std::string_view to_string(MemKind kind) {
  switch (kind) {
    case MemKind::HostDram:
      return "host-dram";
    case MemKind::DeviceDram:
      return "device-dram";
    case MemKind::DeviceBar:
      return "device-bar";
    case MemKind::kCount:
      break;
  }
  return "?";
}

void AddressSpace::map(MemKind kind, std::uint64_t base, Bytes size) {
  ISP_CHECK(size.count() > 0, "empty window");
  const Window incoming{kind, base, size};
  for (const auto& w : windows_) {
    const bool disjoint = incoming.end() <= w.base || w.end() <= incoming.base;
    ISP_CHECK(disjoint, "window overlap between " << to_string(kind) << " and "
                                                  << to_string(w.kind));
  }
  windows_.push_back(incoming);
}

std::optional<MemKind> AddressSpace::kind_of(std::uint64_t addr) const {
  for (const auto& w : windows_) {
    if (w.contains(addr)) return w.kind;
  }
  return std::nullopt;
}

const Window* AddressSpace::window(MemKind kind) const {
  for (const auto& w : windows_) {
    if (w.kind == kind) return &w;
  }
  return nullptr;
}

AddressSpace AddressSpace::standard_layout(Bytes host_dram, Bytes device_dram) {
  AddressSpace space;
  std::uint64_t base = 0;
  space.map(MemKind::HostDram, base, host_dram);
  base += host_dram.count();
  space.map(MemKind::DeviceDram, base, device_dram);
  base += device_dram.count();
  space.map(MemKind::DeviceBar, base, device_dram);
  return space;
}

}  // namespace isp::mem
