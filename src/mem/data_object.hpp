// DataObject: a named value flowing between lines of an ActiveCpp program.
//
// Each object has two sizes:
//   * virtual_bytes — the Table-I-scale volume every timing model charges
//     (transfers, flash reads, Equation 1's DS terms);
//   * a physical Buffer — the real, scaled-down payload the C++ kernels
//     compute on, so functional results are real and testable.
// The two are tied by the program's virtual_scale (virtual = physical ×
// scale); the execution engine maintains the invariant after every kernel.
//
// location tracks residency in the unified address space: Storage (flash),
// HostDram, or DeviceDram.  The engine charges movement whenever a consumer
// runs on the other side.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "common/units.hpp"

namespace isp::mem {

enum class Location : std::uint8_t { Storage = 0, HostDram, DeviceDram };

[[nodiscard]] std::string_view location_name(Location location);

/// Untyped, resizable payload with typed views.
class Buffer {
 public:
  [[nodiscard]] std::size_t size_bytes() const { return bytes_.size(); }
  [[nodiscard]] bool empty() const { return bytes_.empty(); }

  template <typename T>
  [[nodiscard]] std::size_t size_as() const {
    return bytes_.size() / sizeof(T);
  }

  template <typename T>
  void resize_elems(std::size_t n) {
    bytes_.assign(n * sizeof(T), std::byte{0});
  }

  template <typename T>
  [[nodiscard]] std::span<T> as() {
    ISP_DCHECK(bytes_.size() % sizeof(T) == 0,
               "buffer size not a multiple of element size");
    return {reinterpret_cast<T*>(bytes_.data()), bytes_.size() / sizeof(T)};
  }

  template <typename T>
  [[nodiscard]] std::span<const T> as() const {
    ISP_DCHECK(bytes_.size() % sizeof(T) == 0,
               "buffer size not a multiple of element size");
    return {reinterpret_cast<const T*>(bytes_.data()),
            bytes_.size() / sizeof(T)};
  }

  void clear() {
    bytes_.clear();
    bytes_.shrink_to_fit();
  }

 private:
  std::vector<std::byte> bytes_;
};

struct DataObject {
  std::string name;
  Location location = Location::HostDram;
  Bytes virtual_bytes;  // Table-I-scale size used by all timing models
  Buffer physical;      // real payload the kernels compute on
  /// Set when a migration left this object behind in device DRAM: the host
  /// reaches it through the BAR window at a penalty (§III-D, the paper's
  /// residual post-migration overhead).
  bool bar_remote = false;

  /// Objects that begin life on flash (referenced files of the program).
  [[nodiscard]] bool starts_on_storage() const {
    return location == Location::Storage;
  }

  /// Re-derive the virtual size from the physical payload after a kernel
  /// produced it.  `virtual_scale` is virtual bytes per physical byte.
  void sync_virtual_size(double virtual_scale) {
    virtual_bytes = Bytes{static_cast<std::uint64_t>(
        static_cast<double>(physical.size_bytes()) * virtual_scale)};
  }
};

}  // namespace isp::mem
