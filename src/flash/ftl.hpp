// Page-mapped flash translation layer with greedy garbage collection and
// power-loss crash consistency.
//
// The FTL is the "storage management workload" the paper names as a source
// of CSE/bandwidth contention (§II-B(3)).  It maintains the logical→physical
// page map, performs out-of-place writes, and reclaims space with a greedy
// min-valid-cost GC policy.  gc_pressure() summarises how much internal
// bandwidth background storage management (GC plus metadata persistence) is
// consuming, which the CSD model converts into an availability schedule for
// the flash array.
//
// Durability (journal mode, docs/fault-model.md "Power loss and recovery"):
// every mapping update is appended to a journal held in reserved flash
// pages; full journal pages are programmed (charged as real meta writes) and
// periodically folded into a checkpoint of the whole map.  Data-page
// programs carry the logical page number and a global sequence number in
// their out-of-band area, so a remount after power loss replays
// checkpoint + journal and then scans only the blocks written after the last
// durable journal page.  The volatile tail that can be lost is exactly the
// buffered (un-programmed) journal entries — and because writes and GC
// relocations are recoverable from the OOB scan, the only updates a crash
// can actually lose are trims buffered since the last journal page program.
//
// Data plane (PR 10): the hot loops are extent-oriented.  write_span/
// trim_span/read_span process contiguous LPN runs with per-run bookkeeping,
// allocation and GC victim selection walk word-packed bitsets (free blocks,
// full blocks, valid pages) via ctz/popcount, and remount consults durable
// per-block summaries (max OOB sequence + programmed-prefix length) instead
// of scanning every page.  All of it is bit-for-bit equivalent to the scalar
// page-by-page paths — the win is algorithmic, not semantic.
//
// Invariants (enforced and property-tested):
//   * a logical page maps to at most one valid physical page;
//   * no two logical pages share a physical page;
//   * per-block valid counts equal the number of valid pages in the block;
//   * free + in-use + retired block counts always sum to the block total.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "common/bitset.hpp"
#include "common/units.hpp"
#include "flash/backend.hpp"
#include "flash/nand.hpp"

namespace isp::obs {
class MetricsRegistry;
}

namespace isp::flash {

/// Pre-seam name for the shared journal knobs (flash/backend.hpp).
using FtlJournalConfig = JournalConfig;

/// "No mapping" sentinel for the flat l2p/p2l/checkpoint arrays.  The maps
/// are the data plane's hottest stores; a flat word with an impossible page
/// number is half the width of std::optional and keeps the fill loops to
/// plain 8-byte traffic.  No device geometry reaches 2^64 - 1 pages.
inline constexpr std::uint64_t kNoPage = ~std::uint64_t{0};

struct FtlConfig {
  NandGeometry geometry;
  /// Fraction of physical blocks hidden from the logical space.
  double overprovision = 0.125;
  /// Start GC when free blocks drop to this many.
  std::uint32_t gc_low_watermark = 2;
  /// Stop GC when free blocks recover to this many.
  std::uint32_t gc_high_watermark = 4;
  FtlJournalConfig journal;
  /// Remount verification mode.  false (default): incremental — O(blocks)
  /// summary cross-checks over the whole device plus deep per-page checks
  /// only on the blocks dirtied since the last checkpoint fold.  true: the
  /// exhaustive check_invariants() sweep on every remount — same outcome
  /// (the property suite proves the two agree), O(device) cost; the debug
  /// toggle for soak runs.
  bool exhaustive_remount_verify = false;
};

struct FtlStats {
  std::uint64_t host_writes = 0;   // pages written by the host
  std::uint64_t gc_writes = 0;     // pages relocated by GC
  std::uint64_t meta_writes = 0;   // journal + checkpoint pages programmed
  std::uint64_t erases = 0;        // blocks erased
  std::uint64_t gc_invocations = 0;
  std::uint64_t checkpoint_folds = 0;
  std::uint64_t blocks_retired = 0;
  std::uint64_t recoveries = 0;    // successful remounts after power loss
  /// Data pages writable without further GC right now: pages in free blocks
  /// plus the unwritten tails of the open append blocks.  Maintained
  /// incrementally by the Ftl so record_metrics can export it as a gauge.
  std::uint64_t free_pages = 0;

  /// Metadata persistence is real write traffic: it amplifies exactly like
  /// GC relocation does.
  [[nodiscard]] double write_amplification() const {
    if (host_writes == 0) return 1.0;
    return static_cast<double>(host_writes + gc_writes + meta_writes) /
           static_cast<double>(host_writes);
  }

  /// Fold these stats into a metrics registry under "ftl.*" (GC and journal
  /// traffic as counters, write amplification as a per-run histogram
  /// sample).  Pure bookkeeping: charges no virtual time.
  void record_metrics(obs::MetricsRegistry& registry) const;
};

/// Pre-seam names for the shared crash/recovery ladder (flash/backend.hpp).
using FtlCrash = StorageCrash;
using FtlRecovery = StorageRecovery;

class Ftl final : public StorageBackend {
 public:
  explicit Ftl(FtlConfig config);

  [[nodiscard]] BackendKind kind() const override { return BackendKind::Ftl; }

  /// Number of logical pages exposed.
  [[nodiscard]] std::uint64_t logical_pages() const override {
    return logical_pages_;
  }

  /// Write one logical page (out of place). May trigger GC.
  void write(Lpn lpn) override;

  /// Physical location of a logical page, if it has ever been written.
  [[nodiscard]] std::optional<Ppn> translate(Lpn lpn) const override;

  /// Trim: drop the mapping, invalidating the physical page.
  void trim(Lpn lpn) override;

  /// Batched extent ops (flash/backend.hpp contract: bit-for-bit the scalar
  /// loop's state, stats and journal, reached via run-at-a-time bookkeeping
  /// instead of per-page re-checks).
  void write_span(Lpn first, std::uint64_t count) override;
  void trim_span(Lpn first, std::uint64_t count) override;
  std::uint64_t read_span(Lpn first, std::uint64_t count,
                          std::vector<Ppn>* out) const override;

  /// Decommission a block (grown-bad media): relocate its valid pages, add
  /// it to the durable bad-block table, and exclude it from allocation
  /// forever.  The escalation behind the FlashProgram site's block_retire
  /// penalty.  No-op if already retired.
  void retire_block(std::uint64_t block);

  [[nodiscard]] const FtlStats& stats() const { return stats_; }
  [[nodiscard]] std::uint32_t free_blocks() const { return free_count_; }
  [[nodiscard]] std::uint32_t retired_blocks() const { return retired_count_; }
  [[nodiscard]] std::uint64_t total_blocks() const { return blocks_.size(); }

  [[nodiscard]] bool journaling() const override {
    return config_.journal.enabled;
  }
  [[nodiscard]] bool mounted() const override { return mounted_; }
  /// Mapping updates buffered in the volatile journal tail right now.
  [[nodiscard]] std::uint64_t journal_tail_updates() const {
    return journal_buf_.size();
  }

  /// Power cut: all volatile state (map, reverse map, block bookkeeping,
  /// buffered journal tail) is gone.  Requires journal mode.  Every call
  /// except recover(), stats() and the config accessors is invalid until
  /// the remount completes.
  FtlCrash power_loss() override;

  /// Remount after power_loss(): replay checkpoint + journal, OOB-scan the
  /// blocks written since the last durable journal page, rebuild the
  /// reverse map and per-block valid counts, re-open the partially written
  /// blocks, and re-verify every invariant.
  FtlRecovery recover() override;

  /// Fraction of array bandwidth background storage management has consumed
  /// over the run so far: relocated + metadata traffic relative to all
  /// write traffic.  Used to derate the internal bandwidth visible to ISP
  /// tasks.
  [[nodiscard]] double gc_pressure() const override;

  [[nodiscard]] double write_amplification() const override {
    return stats_.write_amplification();
  }

  [[nodiscard]] StorageCounters counters() const override {
    return StorageCounters{.host_pages = stats_.host_writes,
                           .reclaim_pages = stats_.gc_writes,
                           .meta_pages = stats_.meta_writes,
                           .resets = stats_.erases,
                           .reclaim_events = stats_.gc_invocations,
                           .recoveries = stats_.recoveries};
  }

  void record_metrics(obs::MetricsRegistry& registry) const override {
    stats_.record_metrics(registry);
  }

  /// Validate every invariant; throws isp::Error on violation.  Cheap enough
  /// to call from property tests after every operation.
  void check_invariants() const override;

  /// The remount-time subset of check_invariants(): O(blocks) bitmap
  /// popcount cross-checks over the whole device, deep per-page checks only
  /// on the blocks dirtied since the last checkpoint fold.  recover() runs
  /// this by default (FtlConfig::exhaustive_remount_verify switches to the
  /// full sweep); public so tests can prove the two modes agree.
  void check_invariants_incremental() const;

 private:
  struct Block {
    std::uint32_t valid = 0;
    std::uint32_t next_free_page = 0;  // append pointer within the block
    bool is_free = true;
  };

  /// OOB metadata stamped on every programmed data page (durable until the
  /// block is erased): which logical page it holds and when it was written.
  struct Oob {
    Lpn lpn = 0;
    std::uint64_t seq = 0;
  };

  /// One durable mapping update.  ppn == kTrimMark encodes a trim.
  struct JournalEntry {
    Lpn lpn = 0;
    Ppn ppn = 0;
    std::uint64_t seq = 0;
  };
  static constexpr Ppn kTrimMark = ~Ppn{0};

  [[nodiscard]] Ppn block_first_page(std::uint64_t block) const;
  [[nodiscard]] std::uint64_t page_block(Ppn ppn) const;
  [[nodiscard]] std::uint32_t journal_entries_per_page() const;
  std::uint64_t allocate_free_block();
  Ppn append_to_active(bool for_gc);
  void garbage_collect();
  void install_mapping(Lpn lpn, Ppn ppn, bool for_gc);
  void journal_append(Lpn lpn, Ppn ppn, std::uint64_t seq);
  void flush_journal_page_if_full();
  void fold_checkpoint();
  void trim_one(Lpn lpn);
  /// Shared block walks: GC victims, retirement and remount compaction all
  /// relocate a block's valid pages (walking the valid-page bitmap) and then
  /// clear its media + durable block header the same way.
  void relocate_block(std::uint64_t block);
  void erase_block_media(std::uint64_t block);
  void mark_dirty(std::uint64_t block) { bit_set(dirty_bits_, block); }

  FtlConfig config_;
  std::uint64_t logical_pages_;
  bool mounted_ = true;

  // ---- volatile state (lost on power_loss) ----------------------------
  // Flat sentinel-coded maps (kNoPage = unmapped): see the note on kNoPage.
  std::vector<Ppn> l2p_;
  std::vector<Lpn> p2l_;  // valid reverse map (kNoPage = invalid/free)
  std::vector<Block> blocks_;
  std::uint64_t active_block_;     // current host append block
  std::uint64_t gc_active_block_;  // current GC relocation block
  std::uint32_t free_count_;
  std::uint64_t mapped_count_ = 0;
  std::vector<JournalEntry> journal_buf_;  // entries in the open journal page
  // Hot-path bit indexes (volatile; rebuilt on recover).  Allocation walks
  // free_bits_ with ctz for the lowest free block, GC victim selection walks
  // full_bits_ (full, non-free, non-retired blocks), and relocation walks
  // valid_bits_ (one bit per ppn with a reverse mapping) instead of probing
  // p2l_ page by page.
  std::vector<std::uint64_t> free_bits_;
  std::vector<std::uint64_t> full_bits_;
  std::vector<std::uint64_t> valid_bits_;

  // ---- durable state (survives power_loss) ----------------------------
  std::vector<std::optional<Oob>> media_;  // OOB of every programmed page
  // Per-block durable summaries — the "block header" a real device reads
  // instead of scanning every page's OOB: the highest program sequence in
  // the block (cleared on erase; max > horizon iff any page is newer) and
  // the programmed-prefix length.  Remount consults these in O(blocks).
  std::vector<std::uint64_t> block_max_seq_;
  std::vector<std::uint32_t> block_programmed_;
  // Blocks touched (programmed/erased/retired) since the last checkpoint
  // fold: the scope of incremental remount verification.
  std::vector<std::uint64_t> dirty_bits_;
  std::vector<JournalEntry> journal_;      // entries on programmed pages
  std::vector<Ppn> checkpoint_;            // kNoPage = unmapped at fold time
  std::uint64_t checkpoint_seq_ = 0;
  std::uint64_t checkpoint_pages_ = 0;
  std::uint64_t last_durable_seq_ = 0;
  std::uint64_t seq_ = 0;  // global mapping-update sequence
  std::uint32_t journal_pages_since_fold_ = 0;
  std::uint64_t meta_pages_live_ = 0;  // journal+checkpoint pages not yet recycled
  std::vector<char> retired_;          // durable bad-block table
  std::uint32_t retired_count_ = 0;

  // Remount scratch: the candidate map recover() builds before committing.
  // A member so repeated power-cycle sweeps reuse the allocation instead of
  // paying a logical_pages-sized calloc per remount.
  std::vector<std::optional<std::pair<Ppn, std::uint64_t>>> recover_scratch_;

  FtlStats stats_;
};

}  // namespace isp::flash
