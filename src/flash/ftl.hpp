// Page-mapped flash translation layer with greedy garbage collection.
//
// The FTL is the "storage management workload" the paper names as a source
// of CSE/bandwidth contention (§II-B(3)).  It maintains the logical→physical
// page map, performs out-of-place writes, and reclaims space with a greedy
// min-valid-cost GC policy.  gc_pressure() summarises how much internal
// bandwidth background GC is consuming, which the CSD model converts into an
// availability schedule for the flash array.
//
// Invariants (enforced and property-tested):
//   * a logical page maps to at most one valid physical page;
//   * no two logical pages share a physical page;
//   * per-block valid counts equal the number of valid pages in the block;
//   * free + active + full + gc block counts always sum to the block total.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "common/units.hpp"
#include "flash/nand.hpp"

namespace isp::flash {

using Lpn = std::uint64_t;  // logical page number
using Ppn = std::uint64_t;  // physical page number

struct FtlConfig {
  NandGeometry geometry;
  /// Fraction of physical blocks hidden from the logical space.
  double overprovision = 0.125;
  /// Start GC when free blocks drop to this many.
  std::uint32_t gc_low_watermark = 2;
  /// Stop GC when free blocks recover to this many.
  std::uint32_t gc_high_watermark = 4;
};

struct FtlStats {
  std::uint64_t host_writes = 0;   // pages written by the host
  std::uint64_t gc_writes = 0;     // pages relocated by GC
  std::uint64_t erases = 0;        // blocks erased
  std::uint64_t gc_invocations = 0;

  [[nodiscard]] double write_amplification() const {
    if (host_writes == 0) return 1.0;
    return static_cast<double>(host_writes + gc_writes) /
           static_cast<double>(host_writes);
  }
};

class Ftl {
 public:
  explicit Ftl(FtlConfig config);

  /// Number of logical pages exposed.
  [[nodiscard]] std::uint64_t logical_pages() const { return logical_pages_; }

  /// Write one logical page (out of place). May trigger GC.
  void write(Lpn lpn);

  /// Physical location of a logical page, if it has ever been written.
  [[nodiscard]] std::optional<Ppn> translate(Lpn lpn) const;

  /// Trim: drop the mapping, invalidating the physical page.
  void trim(Lpn lpn);

  [[nodiscard]] const FtlStats& stats() const { return stats_; }
  [[nodiscard]] std::uint32_t free_blocks() const { return free_count_; }

  /// Fraction of array bandwidth GC has consumed over the run so far: the
  /// relocated+erase traffic relative to host traffic.  Used to derate the
  /// internal bandwidth visible to ISP tasks.
  [[nodiscard]] double gc_pressure() const;

  /// Validate every invariant; throws isp::Error on violation.  Cheap enough
  /// to call from property tests after every operation.
  void check_invariants() const;

 private:
  struct Block {
    std::uint32_t valid = 0;
    std::uint32_t next_free_page = 0;  // append pointer within the block
    bool is_free = true;
  };

  [[nodiscard]] Ppn block_first_page(std::uint64_t block) const;
  [[nodiscard]] std::uint64_t page_block(Ppn ppn) const;
  std::uint64_t allocate_free_block();
  Ppn append_to_active(bool for_gc);
  void garbage_collect();

  FtlConfig config_;
  std::uint64_t logical_pages_;
  std::vector<std::optional<Ppn>> l2p_;
  std::vector<std::optional<Lpn>> p2l_;  // valid reverse map (nullopt = invalid/free)
  std::vector<Block> blocks_;
  std::uint64_t active_block_;     // current host append block
  std::uint64_t gc_active_block_;  // current GC relocation block
  std::uint32_t free_count_;
  FtlStats stats_;
};

}  // namespace isp::flash
