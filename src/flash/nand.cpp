#include "flash/nand.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace isp::flash {

BytesPerSecond effective_read_bandwidth(const NandGeometry& g,
                                        const NandTiming& t) {
  ISP_CHECK(g.channels > 0 && g.dies_per_channel > 0, "empty geometry");
  const double channel_ceiling =
      static_cast<double>(g.channels) * t.channel_bus.value();
  const double die_rate =
      g.page_bytes.as_double() / t.page_read.value();  // one die, one plane
  const double array_ceiling =
      die_rate * static_cast<double>(g.total_dies());
  return BytesPerSecond{std::min(channel_ceiling, array_ceiling)};
}

BytesPerSecond effective_write_bandwidth(const NandGeometry& g,
                                         const NandTiming& t) {
  ISP_CHECK(g.channels > 0 && g.dies_per_channel > 0, "empty geometry");
  const double channel_ceiling =
      static_cast<double>(g.channels) * t.channel_bus.value();
  // Programs run per plane in parallel within a die.
  const double die_rate = g.page_bytes.as_double() *
                          static_cast<double>(g.planes_per_die) /
                          t.page_program.value();
  const double array_ceiling =
      die_rate * static_cast<double>(g.total_dies());
  return BytesPerSecond{std::min(channel_ceiling, array_ceiling)};
}

}  // namespace isp::flash
