// NAND flash geometry and timing parameters.
//
// The paper's CSD exposes 2 TB of flash with a measured 9 GB/s effective
// internal read bandwidth (§IV-A).  The default geometry below reproduces
// that figure: 8 channels × 1.2 GB/s bus gives a 9.6 GB/s channel ceiling,
// and 32 dies at one 16 KiB page per ~58 µs give a ~9.0 GB/s array ceiling;
// sequential reads are array-limited at ≈9 GB/s.
#pragma once

#include <cstdint>

#include "common/units.hpp"

namespace isp::flash {

struct NandGeometry {
  std::uint32_t channels = 8;
  std::uint32_t dies_per_channel = 4;
  std::uint32_t planes_per_die = 2;
  Bytes page_bytes = Bytes{16 * 1024};
  std::uint32_t pages_per_block = 256;
  std::uint32_t blocks_per_die = 64;  // small default; sized up per config

  [[nodiscard]] std::uint64_t total_dies() const {
    return static_cast<std::uint64_t>(channels) * dies_per_channel;
  }
  [[nodiscard]] std::uint64_t total_blocks() const {
    return total_dies() * blocks_per_die;
  }
  [[nodiscard]] std::uint64_t total_pages() const {
    return total_blocks() * pages_per_block;
  }
  [[nodiscard]] Bytes capacity() const {
    return Bytes{total_pages() * page_bytes.count()};
  }
};

struct NandTiming {
  Seconds page_read = Seconds{58e-6};     // tR
  Seconds page_program = Seconds{600e-6}; // tPROG
  Seconds block_erase = Seconds{3e-3};    // tBERS
  BytesPerSecond channel_bus = gb_per_s(1.2);
};

/// Steady-state sequential read bandwidth of the whole array: the minimum of
/// the channel-bus ceiling and the die-read ceiling.
[[nodiscard]] BytesPerSecond effective_read_bandwidth(const NandGeometry& g,
                                                      const NandTiming& t);

/// Steady-state sequential program bandwidth (same construction with tPROG
/// and plane parallelism).
[[nodiscard]] BytesPerSecond effective_write_bandwidth(const NandGeometry& g,
                                                       const NandTiming& t);

}  // namespace isp::flash
