#include "flash/flash_array.hpp"

#include <utility>

#include "common/error.hpp"

namespace isp::flash {

FlashArray::FlashArray(NandGeometry geometry, NandTiming timing)
    : geometry_(geometry),
      timing_(timing),
      read_bw_(effective_read_bandwidth(geometry, timing)),
      write_bw_(effective_write_bandwidth(geometry, timing)) {}

Seconds FlashArray::read_seconds(Bytes bytes) const {
  if (bytes.count() == 0) return Seconds::zero();
  // Startup: the first page must complete a full tR before any data flows.
  return timing_.page_read + bytes / read_bw_;
}

Seconds FlashArray::write_seconds(Bytes bytes) const {
  if (bytes.count() == 0) return Seconds::zero();
  return timing_.page_program + bytes / write_bw_;
}

SimTime FlashArray::read_finish(SimTime t0, Bytes bytes) const {
  return availability_.finish_time(t0, read_seconds(bytes));
}

SimTime FlashArray::write_finish(SimTime t0, Bytes bytes) const {
  return availability_.finish_time(t0, write_seconds(bytes));
}

FlashIo FlashArray::read_io(SimTime t0, Bytes bytes) {
  FlashIo io;
  io.done = read_finish(t0, bytes);
  if (injector_ != nullptr) {
    const auto op =
        injector_->attempt(fault::Site::FlashReadEcc, t0, timing_.page_read,
                           injector_->config().ecc_recovery);
    io.done += op.penalty;
    io.fault_penalty = op.penalty;
    io.retries = op.faults;
    if (op.exhausted) {
      io.status = isp::Status{StatusCode::DataError, op.faults};
    }
  }
  return io;
}

FlashIo FlashArray::write_io(SimTime t0, Bytes bytes) {
  FlashIo io;
  io.done = write_finish(t0, bytes);
  if (injector_ != nullptr) {
    const auto op =
        injector_->attempt(fault::Site::FlashProgram, t0, timing_.page_program,
                           injector_->config().block_retire);
    io.done += op.penalty;
    io.fault_penalty = op.penalty;
    io.retries = op.faults;
    if (op.exhausted) {
      io.status = isp::Status{StatusCode::DataError, op.faults};
    }
  }
  return io;
}

void FlashArray::set_availability(sim::AvailabilitySchedule schedule) {
  availability_ = std::move(schedule);
}

void FlashArray::reset_stats() {
  bytes_read_ = Bytes{0};
  bytes_written_ = Bytes{0};
}

}  // namespace isp::flash
