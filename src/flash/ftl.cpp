#include "flash/ftl.hpp"

#include <algorithm>
#include <limits>

#include "common/error.hpp"

namespace isp::flash {

Ftl::Ftl(FtlConfig config) : config_(config) {
  const auto& g = config_.geometry;
  ISP_CHECK(g.total_blocks() >= 4, "geometry too small for an FTL");
  ISP_CHECK(config_.overprovision > 0.0 && config_.overprovision < 1.0,
            "overprovision fraction must be in (0,1)");
  ISP_CHECK(config_.gc_low_watermark >= 1 &&
                config_.gc_high_watermark > config_.gc_low_watermark,
            "bad GC watermarks");

  const auto physical_pages = g.total_pages();
  logical_pages_ = static_cast<std::uint64_t>(
      static_cast<double>(physical_pages) * (1.0 - config_.overprovision));
  // Feasibility: fully-compacted logical data plus the two append blocks
  // plus the GC high watermark must fit, or steady-state GC cannot converge
  // and the FTL eventually starves.
  const auto logical_blocks =
      (logical_pages_ + g.pages_per_block - 1) / g.pages_per_block;
  ISP_CHECK(logical_blocks + 2 + config_.gc_high_watermark <=
                g.total_blocks(),
            "overprovision too small for the GC watermarks: "
                << logical_blocks << " logical blocks + 2 active + "
                << config_.gc_high_watermark << " watermark > "
                << g.total_blocks() << " total");
  l2p_.assign(logical_pages_, std::nullopt);
  p2l_.assign(physical_pages, std::nullopt);
  blocks_.assign(g.total_blocks(), Block{});
  free_count_ = static_cast<std::uint32_t>(g.total_blocks());

  active_block_ = allocate_free_block();
  gc_active_block_ = allocate_free_block();
}

Ppn Ftl::block_first_page(std::uint64_t block) const {
  return block * config_.geometry.pages_per_block;
}

std::uint64_t Ftl::page_block(Ppn ppn) const {
  return ppn / config_.geometry.pages_per_block;
}

std::uint64_t Ftl::allocate_free_block() {
  ISP_CHECK(free_count_ > 0, "FTL out of free blocks (GC starved)");
  for (std::uint64_t b = 0; b < blocks_.size(); ++b) {
    if (blocks_[b].is_free) {
      blocks_[b].is_free = false;
      blocks_[b].next_free_page = 0;
      blocks_[b].valid = 0;
      --free_count_;
      return b;
    }
  }
  throw Error("free_count_ positive but no free block found");
}

Ppn Ftl::append_to_active(bool for_gc) {
  std::uint64_t& active = for_gc ? gc_active_block_ : active_block_;
  if (blocks_[active].next_free_page == config_.geometry.pages_per_block) {
    active = allocate_free_block();
  }
  Block& blk = blocks_[active];
  const Ppn ppn = block_first_page(active) + blk.next_free_page;
  ++blk.next_free_page;
  return ppn;
}

void Ftl::write(Lpn lpn) {
  ISP_CHECK(lpn < logical_pages_, "lpn out of range: " << lpn);
  // Invalidate the previous location, if any.
  if (const auto old = l2p_[lpn]) {
    p2l_[*old] = std::nullopt;
    Block& blk = blocks_[page_block(*old)];
    ISP_DCHECK(blk.valid > 0, "valid-count underflow");
    --blk.valid;
  }
  const Ppn ppn = append_to_active(/*for_gc=*/false);
  l2p_[lpn] = ppn;
  p2l_[ppn] = lpn;
  ++blocks_[page_block(ppn)].valid;
  ++stats_.host_writes;

  if (free_count_ <= config_.gc_low_watermark) garbage_collect();
}

std::optional<Ppn> Ftl::translate(Lpn lpn) const {
  ISP_CHECK(lpn < logical_pages_, "lpn out of range: " << lpn);
  return l2p_[lpn];
}

void Ftl::trim(Lpn lpn) {
  ISP_CHECK(lpn < logical_pages_, "lpn out of range: " << lpn);
  if (const auto old = l2p_[lpn]) {
    p2l_[*old] = std::nullopt;
    Block& blk = blocks_[page_block(*old)];
    ISP_DCHECK(blk.valid > 0, "valid-count underflow");
    --blk.valid;
    l2p_[lpn] = std::nullopt;
  }
}

void Ftl::garbage_collect() {
  ++stats_.gc_invocations;
  const auto pages_per_block = config_.geometry.pages_per_block;
  while (free_count_ < config_.gc_high_watermark) {
    // Greedy victim: the full, non-active block with the fewest valid pages.
    std::uint64_t victim = blocks_.size();
    std::uint32_t best_valid = std::numeric_limits<std::uint32_t>::max();
    for (std::uint64_t b = 0; b < blocks_.size(); ++b) {
      if (blocks_[b].is_free || b == active_block_ || b == gc_active_block_)
        continue;
      if (blocks_[b].next_free_page != pages_per_block) continue;
      if (blocks_[b].valid < best_valid) {
        best_valid = blocks_[b].valid;
        victim = b;
      }
    }
    if (victim == blocks_.size()) return;  // nothing reclaimable yet
    // A fully-valid victim yields no space: relocating it consumes exactly
    // what erasing frees.  Fresh-write (no-overwrite) workloads hit this
    // until the first invalidation; GC simply stands down until then.
    if (best_valid == pages_per_block) return;

    // Relocate valid pages, then erase.
    const Ppn first = block_first_page(victim);
    for (std::uint32_t p = 0; p < pages_per_block; ++p) {
      const Ppn src = first + p;
      if (const auto lpn = p2l_[src]) {
        const Ppn dst = append_to_active(/*for_gc=*/true);
        p2l_[src] = std::nullopt;
        --blocks_[victim].valid;
        l2p_[*lpn] = dst;
        p2l_[dst] = *lpn;
        ++blocks_[page_block(dst)].valid;
        ++stats_.gc_writes;
      }
    }
    ISP_DCHECK(blocks_[victim].valid == 0, "victim not fully invalidated");
    blocks_[victim] = Block{};
    ++free_count_;
    ++stats_.erases;
  }
}

double Ftl::gc_pressure() const {
  const double host = static_cast<double>(stats_.host_writes);
  const double gc = static_cast<double>(stats_.gc_writes);
  if (host + gc == 0.0) return 0.0;
  return gc / (host + gc);
}

void Ftl::check_invariants() const {
  const auto pages_per_block = config_.geometry.pages_per_block;

  // l2p / p2l are mutually consistent bijections on their valid domain.
  std::uint64_t mapped = 0;
  for (Lpn lpn = 0; lpn < logical_pages_; ++lpn) {
    if (const auto ppn = l2p_[lpn]) {
      ISP_CHECK(*ppn < p2l_.size(), "ppn out of range");
      ISP_CHECK(p2l_[*ppn].has_value() && *p2l_[*ppn] == lpn,
                "reverse map disagrees for lpn " << lpn);
      ++mapped;
    }
  }
  std::uint64_t reverse_mapped = 0;
  for (Ppn ppn = 0; ppn < p2l_.size(); ++ppn) {
    if (p2l_[ppn].has_value()) ++reverse_mapped;
  }
  ISP_CHECK(mapped == reverse_mapped, "map cardinality mismatch");

  // Per-block valid counts match the reverse map; free blocks hold nothing.
  std::uint32_t free_seen = 0;
  for (std::uint64_t b = 0; b < blocks_.size(); ++b) {
    std::uint32_t valid = 0;
    for (std::uint32_t p = 0; p < pages_per_block; ++p) {
      if (p2l_[block_first_page(b) + p].has_value()) ++valid;
    }
    ISP_CHECK(valid == blocks_[b].valid,
              "block " << b << " valid-count mismatch");
    if (blocks_[b].is_free) {
      ISP_CHECK(valid == 0, "free block contains valid pages");
      ISP_CHECK(blocks_[b].next_free_page == 0, "free block partially written");
      ++free_seen;
    }
    ISP_CHECK(blocks_[b].next_free_page <= pages_per_block,
              "append pointer past block end");
  }
  ISP_CHECK(free_seen == free_count_, "free-count bookkeeping mismatch");
}

}  // namespace isp::flash
