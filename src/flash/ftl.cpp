#include "flash/ftl.hpp"

#include <algorithm>
#include <limits>

#include "common/error.hpp"
#include "obs/metrics.hpp"

namespace isp::flash {

void FtlStats::record_metrics(obs::MetricsRegistry& registry) const {
  registry.counter("ftl.host_writes").add(host_writes);
  registry.counter("ftl.gc_writes").add(gc_writes);
  registry.counter("ftl.meta_writes").add(meta_writes);
  registry.counter("ftl.erases").add(erases);
  registry.counter("ftl.gc_invocations").add(gc_invocations);
  registry.counter("ftl.checkpoint_folds").add(checkpoint_folds);
  registry.counter("ftl.blocks_retired").add(blocks_retired);
  registry.counter("ftl.recoveries").add(recoveries);
  registry.gauge("ftl.free_pages").set(static_cast<double>(free_pages));
  registry.gauge("ftl.wa").set(write_amplification());
  if (host_writes > 0) {
    registry
        .histogram("ftl.write_amplification",
                   obs::HistogramOptions{.min_value = 1.0,
                                         .growth = 1.05,
                                         .buckets = 96})
        .record(write_amplification());
  }
}

Ftl::Ftl(FtlConfig config) : config_(config) {
  const auto& g = config_.geometry;
  ISP_CHECK(g.total_blocks() >= 4, "geometry too small for an FTL");
  ISP_CHECK(config_.overprovision > 0.0 && config_.overprovision < 1.0,
            "overprovision fraction must be in (0,1)");
  ISP_CHECK(config_.gc_low_watermark >= 1 &&
                config_.gc_high_watermark > config_.gc_low_watermark,
            "bad GC watermarks");
  if (config_.journal.enabled) {
    ISP_CHECK(config_.journal.entry_bytes > 0 &&
                  config_.journal.checkpoint_entry_bytes > 0,
              "journal entries need a size");
    ISP_CHECK(config_.journal.checkpoint_interval_pages >= 1,
              "checkpoint interval must be at least one journal page");
    ISP_CHECK(journal_entries_per_page() >= 1,
              "journal entry larger than a flash page");
  }

  const auto physical_pages = g.total_pages();
  logical_pages_ = static_cast<std::uint64_t>(
      static_cast<double>(physical_pages) * (1.0 - config_.overprovision));
  // Feasibility: fully-compacted logical data plus the two append blocks
  // plus the GC high watermark must fit, or steady-state GC cannot converge
  // and the FTL eventually starves.
  const auto logical_blocks =
      (logical_pages_ + g.pages_per_block - 1) / g.pages_per_block;
  ISP_CHECK(logical_blocks + 2 + config_.gc_high_watermark <=
                g.total_blocks(),
            "overprovision too small for the GC watermarks: "
                << logical_blocks << " logical blocks + 2 active + "
                << config_.gc_high_watermark << " watermark > "
                << g.total_blocks() << " total");
  l2p_.assign(logical_pages_, kNoPage);
  p2l_.assign(physical_pages, kNoPage);
  blocks_.assign(g.total_blocks(), Block{});
  retired_.assign(g.total_blocks(), 0);
  free_count_ = static_cast<std::uint32_t>(g.total_blocks());
  bits_resize(free_bits_, g.total_blocks());
  for (std::uint64_t b = 0; b < g.total_blocks(); ++b) bit_set(free_bits_, b);
  bits_resize(full_bits_, g.total_blocks());
  bits_resize(valid_bits_, physical_pages);
  bits_resize(dirty_bits_, g.total_blocks());
  block_max_seq_.assign(g.total_blocks(), 0);
  block_programmed_.assign(g.total_blocks(), 0);
  if (config_.journal.enabled) {
    media_.assign(physical_pages, std::nullopt);
    checkpoint_.assign(logical_pages_, kNoPage);
    // The buffers cycle at fixed sizes: one page of entries in the open
    // journal page, at most checkpoint_interval_pages of durable entries
    // before a fold clears them.  Reserve once instead of regrowing on the
    // hot write path.
    journal_buf_.reserve(journal_entries_per_page());
    journal_.reserve(static_cast<std::size_t>(journal_entries_per_page()) *
                     config_.journal.checkpoint_interval_pages);
  }

  active_block_ = allocate_free_block();
  gc_active_block_ = allocate_free_block();
  stats_.free_pages =
      static_cast<std::uint64_t>(g.total_blocks()) * g.pages_per_block;
}

Ppn Ftl::block_first_page(std::uint64_t block) const {
  return block * config_.geometry.pages_per_block;
}

std::uint64_t Ftl::page_block(Ppn ppn) const {
  return ppn / config_.geometry.pages_per_block;
}

std::uint32_t Ftl::journal_entries_per_page() const {
  return static_cast<std::uint32_t>(config_.geometry.page_bytes.count() /
                                    config_.journal.entry_bytes);
}

std::uint64_t Ftl::allocate_free_block() {
  ISP_CHECK(free_count_ > 0, "FTL out of free blocks (GC starved)");
  // Lowest-index free block via a ctz word walk over the free-block bitset:
  // the same choice the old linear struct scan made, in O(blocks/64).
  const std::uint64_t b = bits_find_first(free_bits_, 0, blocks_.size());
  if (b == blocks_.size()) {
    throw Error("free_count_ positive but no free block found");
  }
  blocks_[b].is_free = false;
  blocks_[b].next_free_page = 0;
  blocks_[b].valid = 0;
  bit_clear(free_bits_, b);
  --free_count_;
  return b;
}

Ppn Ftl::append_to_active(bool for_gc) {
  std::uint64_t& active = for_gc ? gc_active_block_ : active_block_;
  if (blocks_[active].next_free_page == config_.geometry.pages_per_block) {
    active = allocate_free_block();
  }
  Block& blk = blocks_[active];
  const Ppn ppn = block_first_page(active) + blk.next_free_page;
  ++blk.next_free_page;
  block_programmed_[active] = blk.next_free_page;
  mark_dirty(active);
  if (blk.next_free_page == config_.geometry.pages_per_block) {
    bit_set(full_bits_, active);
  }
  ISP_DCHECK(stats_.free_pages > 0, "free-page gauge underflow");
  --stats_.free_pages;
  return ppn;
}

void Ftl::journal_append(Lpn lpn, Ppn ppn, std::uint64_t seq) {
  if (!config_.journal.enabled) return;
  journal_buf_.push_back(JournalEntry{lpn, ppn, seq});
  flush_journal_page_if_full();
}

void Ftl::flush_journal_page_if_full() {
  if (journal_buf_.size() < journal_entries_per_page()) return;
  // The open journal page filled: program it.  Its entries become durable
  // and the write is charged as real metadata traffic.
  journal_.insert(journal_.end(), journal_buf_.begin(), journal_buf_.end());
  last_durable_seq_ = journal_buf_.back().seq;
  journal_buf_.clear();
  ++stats_.meta_writes;
  ++journal_pages_since_fold_;
  ++meta_pages_live_;
  if (journal_pages_since_fold_ >= config_.journal.checkpoint_interval_pages) {
    fold_checkpoint();
  }
}

void Ftl::fold_checkpoint() {
  // Snapshot the whole map; the old checkpoint + journal region is then
  // recycled (erased) and a fresh journal starts empty.
  checkpoint_ = l2p_;
  checkpoint_seq_ = seq_;
  const auto page = config_.geometry.page_bytes.count();
  checkpoint_pages_ =
      (mapped_count_ * config_.journal.checkpoint_entry_bytes + page - 1) /
      page;
  if (checkpoint_pages_ == 0) checkpoint_pages_ = 1;  // map header page
  stats_.meta_writes += checkpoint_pages_;
  ++stats_.checkpoint_folds;
  const auto ppb = config_.geometry.pages_per_block;
  stats_.erases += (meta_pages_live_ + ppb - 1) / ppb;
  meta_pages_live_ = checkpoint_pages_;
  journal_.clear();
  journal_buf_.clear();
  journal_pages_since_fold_ = 0;
  last_durable_seq_ = checkpoint_seq_;
  // The checkpoint now covers everything: the dirty extent (the scope of
  // incremental remount verification) restarts empty.
  bits_clear_all(dirty_bits_);
}

void Ftl::install_mapping(Lpn lpn, Ppn ppn, bool for_gc) {
  l2p_[lpn] = ppn;
  p2l_[ppn] = lpn;
  bit_set(valid_bits_, ppn);
  ++blocks_[page_block(ppn)].valid;
  const std::uint64_t seq = ++seq_;
  if (config_.journal.enabled) {
    media_[ppn] = Oob{lpn, seq};
    block_max_seq_[page_block(ppn)] = seq;
    journal_append(lpn, ppn, seq);
  }
  (void)for_gc;
}

void Ftl::write(Lpn lpn) {
  ISP_CHECK(mounted_, "FTL not mounted (crashed; call recover() first)");
  ISP_CHECK(lpn < logical_pages_, "lpn out of range: " << lpn);
  // Invalidate the previous location, if any.  No journal entry is needed
  // for the invalidation itself: validity is derived from the newest
  // mapping during recovery.
  if (const Ppn old = l2p_[lpn]; old != kNoPage) {
    p2l_[old] = kNoPage;
    bit_clear(valid_bits_, old);
    Block& blk = blocks_[page_block(old)];
    ISP_DCHECK(blk.valid > 0, "valid-count underflow");
    --blk.valid;
  } else {
    ++mapped_count_;
  }
  const Ppn ppn = append_to_active(/*for_gc=*/false);
  install_mapping(lpn, ppn, /*for_gc=*/false);
  ++stats_.host_writes;

  if (free_count_ <= config_.gc_low_watermark) garbage_collect();
}

void Ftl::write_span(Lpn first, std::uint64_t count) {
  ISP_CHECK(mounted_, "FTL not mounted (crashed; call recover() first)");
  ISP_CHECK(first <= logical_pages_ && count <= logical_pages_ - first,
            "span out of range: [" << first << ", +" << count << ")");
  const auto pages_per_block = config_.geometry.pages_per_block;
  const bool journal = config_.journal.enabled;
  Lpn lpn = first;
  std::uint64_t left = count;
  while (left > 0) {
    // Page-by-page regimes: at or below the GC low watermark the scalar
    // path re-invokes the collector after every write (stand-downs included
    // — they still count as gc_invocations), and a full active block means
    // the next write allocates.  write() reproduces both exactly.
    if (free_count_ <= config_.gc_low_watermark ||
        blocks_[active_block_].next_free_page == pages_per_block) {
      write(lpn);
      ++lpn;
      --left;
      continue;
    }
    // Bulk regime: free_count_ cannot change inside the run (no allocation,
    // and the journal page program / fold lands exactly at the run end), so
    // the per-page watermark and block-full checks hoist out.
    Block& blk = blocks_[active_block_];
    std::uint64_t run =
        std::min<std::uint64_t>(left, pages_per_block - blk.next_free_page);
    if (journal) {
      run = std::min<std::uint64_t>(
          run, journal_entries_per_page() - journal_buf_.size());
    }
    const Ppn start = block_first_page(active_block_) + blk.next_free_page;
    // The freshly-programmed pages form one contiguous PPN run: their valid
    // bits go in with whole-word masks and the journal tail is sized once.
    // An old mapping invalidated below can never land inside
    // [start, start + run) — those pages were unprogrammed until now.
    bits_set_range(valid_bits_, start, start + run);
    std::size_t jbase = 0;
    if (journal) {
      jbase = journal_buf_.size();
      journal_buf_.resize(jbase + run);
    }
    const Lpn lpn0 = lpn;
    for (std::uint64_t i = 0; i < run; ++i, ++lpn) {
      if (const Ppn old = l2p_[lpn]; old != kNoPage) {
        p2l_[old] = kNoPage;
        bit_clear(valid_bits_, old);
        Block& ob = blocks_[page_block(old)];
        ISP_DCHECK(ob.valid > 0, "valid-count underflow");
        --ob.valid;
      } else {
        ++mapped_count_;
      }
      l2p_[lpn] = start + i;
      p2l_[start + i] = lpn;
    }
    if (journal) {
      // Second pass: lpn, ppn and seq all advance by one per page, so the
      // OOB stamps and journal tail are straight sequential fills.
      for (std::uint64_t i = 0; i < run; ++i) {
        const std::uint64_t seq = seq_ + i + 1;
        media_[start + i] = Oob{lpn0 + i, seq};
        journal_buf_[jbase + i] = JournalEntry{lpn0 + i, start + i, seq};
      }
    }
    seq_ += run;
    blk.next_free_page += static_cast<std::uint32_t>(run);
    blk.valid += static_cast<std::uint32_t>(run);
    stats_.host_writes += run;
    ISP_DCHECK(stats_.free_pages >= run, "free-page gauge underflow");
    stats_.free_pages -= run;
    block_programmed_[active_block_] = blk.next_free_page;
    if (journal) block_max_seq_[active_block_] = seq_;
    mark_dirty(active_block_);
    if (blk.next_free_page == pages_per_block) {
      bit_set(full_bits_, active_block_);
    }
    if (journal) flush_journal_page_if_full();
    left -= run;
  }
}

std::optional<Ppn> Ftl::translate(Lpn lpn) const {
  ISP_CHECK(mounted_, "FTL not mounted (crashed; call recover() first)");
  ISP_CHECK(lpn < logical_pages_, "lpn out of range: " << lpn);
  const Ppn ppn = l2p_[lpn];
  if (ppn == kNoPage) return std::nullopt;
  return ppn;
}

void Ftl::trim_one(Lpn lpn) {
  if (const Ppn old = l2p_[lpn]; old != kNoPage) {
    p2l_[old] = kNoPage;
    bit_clear(valid_bits_, old);
    Block& blk = blocks_[page_block(old)];
    ISP_DCHECK(blk.valid > 0, "valid-count underflow");
    --blk.valid;
    l2p_[lpn] = kNoPage;
    --mapped_count_;
    journal_append(lpn, kTrimMark, ++seq_);
  }
}

void Ftl::trim(Lpn lpn) {
  ISP_CHECK(mounted_, "FTL not mounted (crashed; call recover() first)");
  ISP_CHECK(lpn < logical_pages_, "lpn out of range: " << lpn);
  trim_one(lpn);
}

void Ftl::trim_span(Lpn first, std::uint64_t count) {
  ISP_CHECK(mounted_, "FTL not mounted (crashed; call recover() first)");
  ISP_CHECK(first <= logical_pages_ && count <= logical_pages_ - first,
            "span out of range: [" << first << ", +" << count << ")");
  for (std::uint64_t i = 0; i < count; ++i) trim_one(first + i);
}

std::uint64_t Ftl::read_span(Lpn first, std::uint64_t count,
                             std::vector<Ppn>* out) const {
  ISP_CHECK(mounted_, "FTL not mounted (crashed; call recover() first)");
  ISP_CHECK(first <= logical_pages_ && count <= logical_pages_ - first,
            "span out of range: [" << first << ", +" << count << ")");
  std::uint64_t mapped = 0;
  for (std::uint64_t i = 0; i < count; ++i) {
    if (const Ppn ppn = l2p_[first + i]; ppn != kNoPage) {
      ++mapped;
      if (out != nullptr) out->push_back(ppn);
    }
  }
  return mapped;
}

void Ftl::relocate_block(std::uint64_t block) {
  // Ascending valid-bit walk: the same page visit order (and therefore the
  // same sequence-number assignment) as the old 0..pages_per_block loop.
  const Ppn first = block_first_page(block);
  bits_for_each(
      valid_bits_, first, first + config_.geometry.pages_per_block,
      [&](std::uint64_t src) {
        const Lpn lpn = p2l_[src];
        ISP_DCHECK(lpn != kNoPage, "valid bit set on unmapped page");
        const Ppn dst = append_to_active(/*for_gc=*/true);
        p2l_[src] = kNoPage;
        bit_clear(valid_bits_, src);
        --blocks_[block].valid;
        install_mapping(lpn, dst, /*for_gc=*/true);
        ++stats_.gc_writes;
      });
  ISP_DCHECK(blocks_[block].valid == 0, "block not fully relocated");
}

void Ftl::erase_block_media(std::uint64_t block) {
  if (!media_.empty()) {
    const Ppn first = block_first_page(block);
    for (std::uint32_t p = 0; p < config_.geometry.pages_per_block; ++p) {
      media_[first + p] = std::nullopt;
    }
  }
  block_max_seq_[block] = 0;
  block_programmed_[block] = 0;
  mark_dirty(block);
}

void Ftl::retire_block(std::uint64_t block) {
  ISP_CHECK(mounted_, "FTL not mounted (crashed; call recover() first)");
  ISP_CHECK(block < blocks_.size(), "block out of range: " << block);
  if (retired_[block]) return;
  // Feasibility after losing one more block, mirroring the constructor.
  const auto& g = config_.geometry;
  const auto logical_blocks =
      (logical_pages_ + g.pages_per_block - 1) / g.pages_per_block;
  ISP_CHECK(logical_blocks + 2 + config_.gc_high_watermark + retired_count_ +
                    1 <=
                g.total_blocks(),
            "cannot retire block " << block
                                   << ": too few healthy blocks would remain");

  // The append points must not sit on a dying block.
  const bool had_data = blocks_[block].next_free_page > 0;
  if (block == active_block_ || block == gc_active_block_) {
    std::uint64_t replacement = allocate_free_block();
    (block == active_block_ ? active_block_ : gc_active_block_) = replacement;
  }
  // Relocate whatever is still valid, exactly like a GC victim.
  relocate_block(block);
  if (blocks_[block].is_free) {
    bit_clear(free_bits_, block);
    --free_count_;
  } else if (had_data) {
    ++stats_.erases;  // decommission erase of a programmed block
  }
  // The retired block's unwritten remainder leaves the writable pool.
  stats_.free_pages -= g.pages_per_block - blocks_[block].next_free_page;
  erase_block_media(block);
  blocks_[block] = Block{};
  blocks_[block].is_free = false;
  blocks_[block].next_free_page = g.pages_per_block;  // never appendable
  bit_clear(full_bits_, block);  // never a GC candidate again
  retired_[block] = 1;
  ++retired_count_;
  ++stats_.blocks_retired;
  if (config_.journal.enabled) ++stats_.meta_writes;  // bad-block table entry

  // Retirement can eat into the free pool; let GC restore the watermark.
  if (free_count_ <= config_.gc_low_watermark) garbage_collect();
}

void Ftl::garbage_collect() {
  ++stats_.gc_invocations;
  const auto pages_per_block = config_.geometry.pages_per_block;
  while (free_count_ < config_.gc_high_watermark) {
    // Greedy victim via the full-block bitset (full, non-free, non-retired
    // by construction): the first strict minimum in ascending block order —
    // the old O(blocks) struct scan's choice, in O(popcount).
    std::uint64_t victim = blocks_.size();
    std::uint32_t best_valid = std::numeric_limits<std::uint32_t>::max();
    bits_for_each(full_bits_, 0, blocks_.size(), [&](std::uint64_t b) {
      if (b == active_block_ || b == gc_active_block_) return;
      if (blocks_[b].valid < best_valid) {
        best_valid = blocks_[b].valid;
        victim = b;
      }
    });
    if (victim == blocks_.size()) return;  // nothing reclaimable yet
    // A fully-valid victim yields no space: relocating it consumes exactly
    // what erasing frees.  Fresh-write (no-overwrite) workloads hit this
    // until the first invalidation; GC simply stands down until then.
    if (best_valid == pages_per_block) return;

    // Relocate valid pages, then erase.
    relocate_block(victim);
    erase_block_media(victim);
    blocks_[victim] = Block{};
    bit_clear(full_bits_, victim);
    bit_set(free_bits_, victim);
    ++free_count_;
    ++stats_.erases;
    stats_.free_pages += pages_per_block;  // the erase frees the whole block
  }
}

FtlCrash Ftl::power_loss() {
  ISP_CHECK(config_.journal.enabled,
            "power_loss() requires journal mode (FtlJournalConfig::enabled)");
  ISP_CHECK(mounted_, "device already crashed");
  FtlCrash crash;
  crash.lost_tail_updates = journal_buf_.size();
  for (const auto& e : journal_buf_) {
    if (e.ppn == kTrimMark) ++crash.lost_trims;
  }
  // Everything volatile is gone.  The durable state — media OOB, programmed
  // journal pages, the checkpoint, and the bad-block table — survives.
  journal_buf_.clear();
  l2p_.assign(logical_pages_, kNoPage);
  p2l_.assign(media_.size(), kNoPage);
  for (auto& b : blocks_) b = Block{};
  bits_clear_all(free_bits_);
  bits_clear_all(full_bits_);
  bits_clear_all(valid_bits_);
  mapped_count_ = 0;
  free_count_ = 0;
  mounted_ = false;
  // The durable per-block summaries (block_max_seq_, block_programmed_) and
  // the dirty extent survive: they are the block headers remount reads.
  return crash;
}

FtlRecovery Ftl::recover() {
  ISP_CHECK(config_.journal.enabled, "recover() requires journal mode");
  ISP_CHECK(!mounted_, "recover() on a mounted FTL");
  FtlRecovery rec;
  const auto pages_per_block = config_.geometry.pages_per_block;

  // 1. Candidate map from the checkpoint, each entry stamped with the fold
  //    sequence (everything in the checkpoint is at least that old).
  //    recover_scratch_ keeps its capacity across remounts, so power-cycle
  //    sweeps pay the logical_pages-sized allocation only once.
  recover_scratch_.assign(logical_pages_, std::nullopt);
  auto& m = recover_scratch_;
  for (Lpn lpn = 0; lpn < logical_pages_; ++lpn) {
    if (checkpoint_[lpn] != kNoPage) {
      m[lpn] = {checkpoint_[lpn], checkpoint_seq_};
    }
  }
  rec.checkpoint_pages_read = checkpoint_pages_;

  // 2. Replay the durable journal in order.
  for (const auto& e : journal_) {
    if (e.ppn == kTrimMark) {
      m[e.lpn] = std::nullopt;
    } else {
      m[e.lpn] = {e.ppn, e.seq};
    }
  }
  rec.journal_entries_replayed = journal_.size();
  rec.journal_pages_read =
      (journal_.size() + journal_entries_per_page() - 1) /
      journal_entries_per_page();

  // 3. OOB scan: only blocks holding pages programmed after the last
  //    durable journal page need reading.  The durable block header's max
  //    program sequence answers "any page newer than the horizon?" in O(1)
  //    per block (max > horizon iff some page's seq is — it is cleared on
  //    erase), so the candidate set is found without touching page OOB.
  //    The scan itself rescues the journal's volatile tail: every data-page
  //    program stamped its lpn+seq on the media.
  for (std::uint64_t b = 0; b < blocks_.size(); ++b) {
    if (block_max_seq_[b] <= last_durable_seq_) continue;
    const Ppn first = block_first_page(b);
    ++rec.blocks_scanned;
    rec.pages_scanned += pages_per_block;
    for (std::uint32_t p = 0; p < pages_per_block; ++p) {
      const Ppn ppn = first + p;
      const auto& oob = media_[ppn];
      if (!oob || oob->seq <= last_durable_seq_) continue;
      if (!m[oob->lpn] || oob->seq > m[oob->lpn]->second) {
        m[oob->lpn] = {ppn, oob->seq};
        ++rec.tail_updates_rescued;
      }
    }
  }

  // 4. Confirm every candidate against the media: a mapping whose physical
  //    page was erased (its relocation entry sat in the lost tail) is
  //    stale — the OOB scan already supplied the newer location.
  for (Lpn lpn = 0; lpn < logical_pages_; ++lpn) {
    if (!m[lpn]) continue;
    const Ppn ppn = m[lpn]->first;
    if (!media_[ppn] || media_[ppn]->lpn != lpn) {
      m[lpn] = std::nullopt;
      ++rec.stale_mappings_dropped;
    }
  }

  // 5. Rebuild the volatile state: forward/reverse map, per-block append
  //    pointers, valid counts, and the free pool.  The append pointer is
  //    the durable programmed-prefix header — identical to the old per-page
  //    media scan because programs land strictly prefix-ordered.
  for (std::uint64_t b = 0; b < blocks_.size(); ++b) {
    Block nb;
    if (retired_[b]) {
      nb.is_free = false;
      nb.next_free_page = pages_per_block;
      blocks_[b] = nb;
      continue;
    }
    nb.next_free_page = block_programmed_[b];
    nb.is_free = (nb.next_free_page == 0);
    blocks_[b] = nb;
  }
  mapped_count_ = 0;
  for (Lpn lpn = 0; lpn < logical_pages_; ++lpn) {
    if (!m[lpn]) continue;
    const Ppn ppn = m[lpn]->first;
    l2p_[lpn] = ppn;
    p2l_[ppn] = lpn;
    bit_set(valid_bits_, ppn);
    ++blocks_[page_block(ppn)].valid;
    ++mapped_count_;
  }
  rec.mappings_recovered = mapped_count_;
  free_count_ = 0;
  for (std::uint64_t b = 0; b < blocks_.size(); ++b) {
    if (blocks_[b].is_free) {
      bit_set(free_bits_, b);
      ++free_count_;
    } else if (!retired_[b] &&
               blocks_[b].next_free_page == pages_per_block) {
      bit_set(full_bits_, b);
    }
  }

  // 6. Re-open the partially written blocks as the append points so they
  //    are not stranded (GC only reclaims full blocks).  Normal operation
  //    leaves at most two partial blocks (host + GC append); if recovery
  //    somehow finds more, compact the extras away.
  std::vector<std::uint64_t> partial;
  for (std::uint64_t b = 0; b < blocks_.size(); ++b) {
    if (blocks_[b].is_free || retired_[b]) continue;
    if (blocks_[b].next_free_page < pages_per_block) partial.push_back(b);
  }
  mounted_ = true;
  if (partial.size() >= 1) {
    active_block_ = partial[0];
  } else {
    active_block_ = allocate_free_block();
  }
  if (partial.size() >= 2) {
    gc_active_block_ = partial[1];
  } else {
    gc_active_block_ = allocate_free_block();
  }
  for (std::size_t i = 2; i < partial.size(); ++i) {
    const std::uint64_t b = partial[i];
    relocate_block(b);
    erase_block_media(b);
    blocks_[b] = Block{};
    bit_set(free_bits_, b);
    ++free_count_;
    ++stats_.erases;
  }

  // Rebuild the free-page gauge from the recovered block states.
  stats_.free_pages = 0;
  for (std::uint64_t b = 0; b < blocks_.size(); ++b) {
    if (retired_[b]) continue;
    stats_.free_pages += pages_per_block - blocks_[b].next_free_page;
  }

  ++stats_.recoveries;
  // The remount contract: every invariant holds before the first IO.  The
  // default check is incremental (O(blocks) summaries + the dirty extent);
  // the exhaustive sweep stays behind the config toggle, and the property
  // suite proves the two agree.
  if (config_.exhaustive_remount_verify) {
    check_invariants();
  } else {
    check_invariants_incremental();
  }
  return rec;
}

double Ftl::gc_pressure() const {
  const double host = static_cast<double>(stats_.host_writes);
  const double internal =
      static_cast<double>(stats_.gc_writes + stats_.meta_writes);
  if (host + internal == 0.0) return 0.0;
  return internal / (host + internal);
}

void Ftl::check_invariants() const {
  ISP_CHECK(mounted_, "invariants undefined on an unmounted FTL");
  const auto pages_per_block = config_.geometry.pages_per_block;

  // l2p / p2l are mutually consistent bijections on their valid domain.
  std::uint64_t mapped = 0;
  for (Lpn lpn = 0; lpn < logical_pages_; ++lpn) {
    if (const Ppn ppn = l2p_[lpn]; ppn != kNoPage) {
      ISP_CHECK(ppn < p2l_.size(), "ppn out of range");
      ISP_CHECK(p2l_[ppn] == lpn, "reverse map disagrees for lpn " << lpn);
      ++mapped;
    }
  }
  std::uint64_t reverse_mapped = 0;
  for (Ppn ppn = 0; ppn < p2l_.size(); ++ppn) {
    ISP_CHECK(bit_test(valid_bits_, ppn) == (p2l_[ppn] != kNoPage),
              "valid-page bitmap drift at ppn " << ppn);
    if (p2l_[ppn] != kNoPage) ++reverse_mapped;
  }
  ISP_CHECK(mapped == reverse_mapped, "map cardinality mismatch");
  ISP_CHECK(mapped == mapped_count_, "mapped-count bookkeeping mismatch");

  // Per-block valid counts match the reverse map; free blocks hold nothing;
  // retired blocks are out of service entirely.  The bit indexes and the
  // durable block headers must agree with the struct state they summarise.
  std::uint32_t free_seen = 0;
  std::uint32_t retired_seen = 0;
  for (std::uint64_t b = 0; b < blocks_.size(); ++b) {
    std::uint32_t valid = 0;
    std::uint64_t max_seq = 0;
    std::uint32_t programmed = 0;
    for (std::uint32_t p = 0; p < pages_per_block; ++p) {
      if (p2l_[block_first_page(b) + p] != kNoPage) ++valid;
      if (!media_.empty()) {
        if (const auto& oob = media_[block_first_page(b) + p]) {
          max_seq = std::max(max_seq, oob->seq);
          programmed = p + 1;
        }
      }
    }
    ISP_CHECK(valid == blocks_[b].valid,
              "block " << b << " valid-count mismatch");
    ISP_CHECK(bit_test(free_bits_, b) == blocks_[b].is_free,
              "free-block bitset drift at block " << b);
    ISP_CHECK(bit_test(full_bits_, b) ==
                  (!blocks_[b].is_free && !retired_[b] &&
                   blocks_[b].next_free_page == pages_per_block),
              "full-block bitset drift at block " << b);
    if (!media_.empty()) {
      ISP_CHECK(block_max_seq_[b] == max_seq,
                "block " << b << " max-seq header drift");
      if (!retired_[b]) {
        ISP_CHECK(block_programmed_[b] == programmed,
                  "block " << b << " programmed-prefix header drift");
      }
    }
    if (retired_[b]) {
      ISP_CHECK(!blocks_[b].is_free, "retired block in the free pool");
      ISP_CHECK(valid == 0, "retired block holds valid pages");
      ++retired_seen;
      continue;
    }
    if (blocks_[b].is_free) {
      ISP_CHECK(valid == 0, "free block contains valid pages");
      ISP_CHECK(blocks_[b].next_free_page == 0, "free block partially written");
      ++free_seen;
    }
    ISP_CHECK(blocks_[b].next_free_page <= pages_per_block,
              "append pointer past block end");
  }
  ISP_CHECK(free_seen == free_count_, "free-count bookkeeping mismatch");
  ISP_CHECK(retired_seen == retired_count_,
            "retired-count bookkeeping mismatch");
  // Free + in-use + retired partition the array.
  ISP_CHECK(free_seen + retired_seen <= blocks_.size(),
            "block partition overflow");
  // The exported free-page gauge equals the recomputed truth.
  std::uint64_t free_pages = 0;
  for (std::uint64_t b = 0; b < blocks_.size(); ++b) {
    if (retired_[b]) continue;
    free_pages += pages_per_block - blocks_[b].next_free_page;
  }
  ISP_CHECK(free_pages == stats_.free_pages,
            "free-page gauge drifted: " << stats_.free_pages << " != "
                                        << free_pages);
}

void Ftl::check_invariants_incremental() const {
  ISP_CHECK(mounted_, "invariants undefined on an unmounted FTL");
  const auto pages_per_block = config_.geometry.pages_per_block;

  // O(blocks) summary pass: per-block valid counts against the valid-page
  // bitmap (a popcount each), the free/full bit indexes against the block
  // structs, the block partition, and the exported gauges.
  std::uint64_t mapped = 0;
  std::uint32_t free_seen = 0;
  std::uint32_t retired_seen = 0;
  std::uint64_t free_pages = 0;
  for (std::uint64_t b = 0; b < blocks_.size(); ++b) {
    const Ppn first = block_first_page(b);
    const auto valid = static_cast<std::uint32_t>(
        bits_count(valid_bits_, first, first + pages_per_block));
    ISP_CHECK(valid == blocks_[b].valid,
              "block " << b << " valid-count mismatch");
    mapped += valid;
    ISP_CHECK(blocks_[b].next_free_page <= pages_per_block,
              "append pointer past block end");
    ISP_CHECK(bit_test(free_bits_, b) == blocks_[b].is_free,
              "free-block bitset drift at block " << b);
    ISP_CHECK(bit_test(full_bits_, b) ==
                  (!blocks_[b].is_free && !retired_[b] &&
                   blocks_[b].next_free_page == pages_per_block),
              "full-block bitset drift at block " << b);
    if (retired_[b]) {
      ISP_CHECK(!blocks_[b].is_free, "retired block in the free pool");
      ISP_CHECK(valid == 0, "retired block holds valid pages");
      ++retired_seen;
      continue;
    }
    if (blocks_[b].is_free) {
      ISP_CHECK(valid == 0, "free block contains valid pages");
      ISP_CHECK(blocks_[b].next_free_page == 0, "free block partially written");
      ++free_seen;
    }
    free_pages += pages_per_block - blocks_[b].next_free_page;
  }
  ISP_CHECK(mapped == mapped_count_, "mapped-count bookkeeping mismatch");
  ISP_CHECK(free_seen == free_count_, "free-count bookkeeping mismatch");
  ISP_CHECK(retired_seen == retired_count_,
            "retired-count bookkeeping mismatch");
  ISP_CHECK(free_seen + retired_seen <= blocks_.size(),
            "block partition overflow");
  ISP_CHECK(free_pages == stats_.free_pages,
            "free-page gauge drifted: " << stats_.free_pages << " != "
                                        << free_pages);

  // Deep per-page checks only on the dirty extent: blocks touched since the
  // last checkpoint fold.  The clean extent is covered by the summary pass
  // above and, when configured, by the exhaustive sweep.
  bits_for_each(dirty_bits_, 0, blocks_.size(), [&](std::uint64_t b) {
    const Ppn first = block_first_page(b);
    for (std::uint32_t p = 0; p < pages_per_block; ++p) {
      const Ppn ppn = first + p;
      ISP_CHECK(bit_test(valid_bits_, ppn) == (p2l_[ppn] != kNoPage),
                "valid-page bitmap drift at ppn " << ppn);
      if (const Lpn lpn = p2l_[ppn]; lpn != kNoPage) {
        ISP_CHECK(l2p_[lpn] == ppn, "reverse map disagrees for lpn " << lpn);
      }
      if (!media_.empty() && !retired_[b]) {
        ISP_CHECK(media_[ppn].has_value() == (p < block_programmed_[b]),
                  "block " << b << " programmed pages are not a prefix");
      }
    }
  });
}

}  // namespace isp::flash
