#include "flash/ftl.hpp"

#include <algorithm>
#include <limits>

#include "common/error.hpp"
#include "obs/metrics.hpp"

namespace isp::flash {

void FtlStats::record_metrics(obs::MetricsRegistry& registry) const {
  registry.counter("ftl.host_writes").add(host_writes);
  registry.counter("ftl.gc_writes").add(gc_writes);
  registry.counter("ftl.meta_writes").add(meta_writes);
  registry.counter("ftl.erases").add(erases);
  registry.counter("ftl.gc_invocations").add(gc_invocations);
  registry.counter("ftl.checkpoint_folds").add(checkpoint_folds);
  registry.counter("ftl.blocks_retired").add(blocks_retired);
  registry.counter("ftl.recoveries").add(recoveries);
  registry.gauge("ftl.free_pages").set(static_cast<double>(free_pages));
  registry.gauge("ftl.wa").set(write_amplification());
  if (host_writes > 0) {
    registry
        .histogram("ftl.write_amplification",
                   obs::HistogramOptions{.min_value = 1.0,
                                         .growth = 1.05,
                                         .buckets = 96})
        .record(write_amplification());
  }
}

Ftl::Ftl(FtlConfig config) : config_(config) {
  const auto& g = config_.geometry;
  ISP_CHECK(g.total_blocks() >= 4, "geometry too small for an FTL");
  ISP_CHECK(config_.overprovision > 0.0 && config_.overprovision < 1.0,
            "overprovision fraction must be in (0,1)");
  ISP_CHECK(config_.gc_low_watermark >= 1 &&
                config_.gc_high_watermark > config_.gc_low_watermark,
            "bad GC watermarks");
  if (config_.journal.enabled) {
    ISP_CHECK(config_.journal.entry_bytes > 0 &&
                  config_.journal.checkpoint_entry_bytes > 0,
              "journal entries need a size");
    ISP_CHECK(config_.journal.checkpoint_interval_pages >= 1,
              "checkpoint interval must be at least one journal page");
    ISP_CHECK(journal_entries_per_page() >= 1,
              "journal entry larger than a flash page");
  }

  const auto physical_pages = g.total_pages();
  logical_pages_ = static_cast<std::uint64_t>(
      static_cast<double>(physical_pages) * (1.0 - config_.overprovision));
  // Feasibility: fully-compacted logical data plus the two append blocks
  // plus the GC high watermark must fit, or steady-state GC cannot converge
  // and the FTL eventually starves.
  const auto logical_blocks =
      (logical_pages_ + g.pages_per_block - 1) / g.pages_per_block;
  ISP_CHECK(logical_blocks + 2 + config_.gc_high_watermark <=
                g.total_blocks(),
            "overprovision too small for the GC watermarks: "
                << logical_blocks << " logical blocks + 2 active + "
                << config_.gc_high_watermark << " watermark > "
                << g.total_blocks() << " total");
  l2p_.assign(logical_pages_, std::nullopt);
  p2l_.assign(physical_pages, std::nullopt);
  blocks_.assign(g.total_blocks(), Block{});
  retired_.assign(g.total_blocks(), 0);
  free_count_ = static_cast<std::uint32_t>(g.total_blocks());
  if (config_.journal.enabled) {
    media_.assign(physical_pages, std::nullopt);
    checkpoint_.assign(logical_pages_, std::nullopt);
    // The buffers cycle at fixed sizes: one page of entries in the open
    // journal page, at most checkpoint_interval_pages of durable entries
    // before a fold clears them.  Reserve once instead of regrowing on the
    // hot write path.
    journal_buf_.reserve(journal_entries_per_page());
    journal_.reserve(static_cast<std::size_t>(journal_entries_per_page()) *
                     config_.journal.checkpoint_interval_pages);
  }

  active_block_ = allocate_free_block();
  gc_active_block_ = allocate_free_block();
  stats_.free_pages =
      static_cast<std::uint64_t>(g.total_blocks()) * g.pages_per_block;
}

Ppn Ftl::block_first_page(std::uint64_t block) const {
  return block * config_.geometry.pages_per_block;
}

std::uint64_t Ftl::page_block(Ppn ppn) const {
  return ppn / config_.geometry.pages_per_block;
}

std::uint32_t Ftl::journal_entries_per_page() const {
  return static_cast<std::uint32_t>(config_.geometry.page_bytes.count() /
                                    config_.journal.entry_bytes);
}

std::uint64_t Ftl::allocate_free_block() {
  ISP_CHECK(free_count_ > 0, "FTL out of free blocks (GC starved)");
  // Invariant: no block below free_scan_hint_ is free (every site that frees
  // a block lowers the hint), so starting the scan there still yields the
  // lowest-index free block — same choice, without re-walking the occupied
  // prefix on every allocation.
  for (std::uint64_t b = free_scan_hint_; b < blocks_.size(); ++b) {
    if (blocks_[b].is_free) {
      blocks_[b].is_free = false;
      blocks_[b].next_free_page = 0;
      blocks_[b].valid = 0;
      --free_count_;
      free_scan_hint_ = b + 1;
      return b;
    }
  }
  throw Error("free_count_ positive but no free block found");
}

Ppn Ftl::append_to_active(bool for_gc) {
  std::uint64_t& active = for_gc ? gc_active_block_ : active_block_;
  if (blocks_[active].next_free_page == config_.geometry.pages_per_block) {
    active = allocate_free_block();
  }
  Block& blk = blocks_[active];
  const Ppn ppn = block_first_page(active) + blk.next_free_page;
  ++blk.next_free_page;
  ISP_DCHECK(stats_.free_pages > 0, "free-page gauge underflow");
  --stats_.free_pages;
  return ppn;
}

void Ftl::journal_append(Lpn lpn, Ppn ppn, std::uint64_t seq) {
  if (!config_.journal.enabled) return;
  journal_buf_.push_back(JournalEntry{lpn, ppn, seq});
  if (journal_buf_.size() < journal_entries_per_page()) return;
  // The open journal page filled: program it.  Its entries become durable
  // and the write is charged as real metadata traffic.
  journal_.insert(journal_.end(), journal_buf_.begin(), journal_buf_.end());
  last_durable_seq_ = journal_buf_.back().seq;
  journal_buf_.clear();
  ++stats_.meta_writes;
  ++journal_pages_since_fold_;
  ++meta_pages_live_;
  if (journal_pages_since_fold_ >= config_.journal.checkpoint_interval_pages) {
    fold_checkpoint();
  }
}

void Ftl::fold_checkpoint() {
  // Snapshot the whole map; the old checkpoint + journal region is then
  // recycled (erased) and a fresh journal starts empty.
  checkpoint_ = l2p_;
  checkpoint_seq_ = seq_;
  const auto page = config_.geometry.page_bytes.count();
  checkpoint_pages_ =
      (mapped_count_ * config_.journal.checkpoint_entry_bytes + page - 1) /
      page;
  if (checkpoint_pages_ == 0) checkpoint_pages_ = 1;  // map header page
  stats_.meta_writes += checkpoint_pages_;
  ++stats_.checkpoint_folds;
  const auto ppb = config_.geometry.pages_per_block;
  stats_.erases += (meta_pages_live_ + ppb - 1) / ppb;
  meta_pages_live_ = checkpoint_pages_;
  journal_.clear();
  journal_buf_.clear();
  journal_pages_since_fold_ = 0;
  last_durable_seq_ = checkpoint_seq_;
}

void Ftl::install_mapping(Lpn lpn, Ppn ppn, bool for_gc) {
  l2p_[lpn] = ppn;
  p2l_[ppn] = lpn;
  ++blocks_[page_block(ppn)].valid;
  const std::uint64_t seq = ++seq_;
  if (config_.journal.enabled) {
    media_[ppn] = Oob{lpn, seq};
    journal_append(lpn, ppn, seq);
  }
  (void)for_gc;
}

void Ftl::write(Lpn lpn) {
  ISP_CHECK(mounted_, "FTL not mounted (crashed; call recover() first)");
  ISP_CHECK(lpn < logical_pages_, "lpn out of range: " << lpn);
  // Invalidate the previous location, if any.  No journal entry is needed
  // for the invalidation itself: validity is derived from the newest
  // mapping during recovery.
  if (const auto old = l2p_[lpn]) {
    p2l_[*old] = std::nullopt;
    Block& blk = blocks_[page_block(*old)];
    ISP_DCHECK(blk.valid > 0, "valid-count underflow");
    --blk.valid;
  } else {
    ++mapped_count_;
  }
  const Ppn ppn = append_to_active(/*for_gc=*/false);
  install_mapping(lpn, ppn, /*for_gc=*/false);
  ++stats_.host_writes;

  if (free_count_ <= config_.gc_low_watermark) garbage_collect();
}

std::optional<Ppn> Ftl::translate(Lpn lpn) const {
  ISP_CHECK(mounted_, "FTL not mounted (crashed; call recover() first)");
  ISP_CHECK(lpn < logical_pages_, "lpn out of range: " << lpn);
  return l2p_[lpn];
}

void Ftl::trim(Lpn lpn) {
  ISP_CHECK(mounted_, "FTL not mounted (crashed; call recover() first)");
  ISP_CHECK(lpn < logical_pages_, "lpn out of range: " << lpn);
  if (const auto old = l2p_[lpn]) {
    p2l_[*old] = std::nullopt;
    Block& blk = blocks_[page_block(*old)];
    ISP_DCHECK(blk.valid > 0, "valid-count underflow");
    --blk.valid;
    l2p_[lpn] = std::nullopt;
    --mapped_count_;
    journal_append(lpn, kTrimMark, ++seq_);
  }
}

void Ftl::retire_block(std::uint64_t block) {
  ISP_CHECK(mounted_, "FTL not mounted (crashed; call recover() first)");
  ISP_CHECK(block < blocks_.size(), "block out of range: " << block);
  if (retired_[block]) return;
  // Feasibility after losing one more block, mirroring the constructor.
  const auto& g = config_.geometry;
  const auto logical_blocks =
      (logical_pages_ + g.pages_per_block - 1) / g.pages_per_block;
  ISP_CHECK(logical_blocks + 2 + config_.gc_high_watermark + retired_count_ +
                    1 <=
                g.total_blocks(),
            "cannot retire block " << block
                                   << ": too few healthy blocks would remain");

  // The append points must not sit on a dying block.
  const bool had_data = blocks_[block].next_free_page > 0;
  if (block == active_block_ || block == gc_active_block_) {
    std::uint64_t replacement = allocate_free_block();
    (block == active_block_ ? active_block_ : gc_active_block_) = replacement;
  }
  // Relocate whatever is still valid, exactly like a GC victim.
  const Ppn first = block_first_page(block);
  for (std::uint32_t p = 0; p < g.pages_per_block; ++p) {
    const Ppn src = first + p;
    if (const auto lpn = p2l_[src]) {
      const Ppn dst = append_to_active(/*for_gc=*/true);
      p2l_[src] = std::nullopt;
      --blocks_[block].valid;
      install_mapping(*lpn, dst, /*for_gc=*/true);
      ++stats_.gc_writes;
    }
  }
  ISP_DCHECK(blocks_[block].valid == 0, "retired block not fully relocated");
  if (blocks_[block].is_free) {
    --free_count_;
  } else if (had_data) {
    ++stats_.erases;  // decommission erase of a programmed block
  }
  // The retired block's unwritten remainder leaves the writable pool.
  stats_.free_pages -= g.pages_per_block - blocks_[block].next_free_page;
  if (!media_.empty()) {
    for (std::uint32_t p = 0; p < g.pages_per_block; ++p) {
      media_[first + p] = std::nullopt;
    }
  }
  blocks_[block] = Block{};
  blocks_[block].is_free = false;
  blocks_[block].next_free_page = g.pages_per_block;  // never appendable
  retired_[block] = 1;
  ++retired_count_;
  ++stats_.blocks_retired;
  if (config_.journal.enabled) ++stats_.meta_writes;  // bad-block table entry

  // Retirement can eat into the free pool; let GC restore the watermark.
  if (free_count_ <= config_.gc_low_watermark) garbage_collect();
}

void Ftl::garbage_collect() {
  ++stats_.gc_invocations;
  const auto pages_per_block = config_.geometry.pages_per_block;
  while (free_count_ < config_.gc_high_watermark) {
    // Greedy victim: the full, non-active block with the fewest valid pages.
    std::uint64_t victim = blocks_.size();
    std::uint32_t best_valid = std::numeric_limits<std::uint32_t>::max();
    for (std::uint64_t b = 0; b < blocks_.size(); ++b) {
      if (blocks_[b].is_free || retired_[b] || b == active_block_ ||
          b == gc_active_block_)
        continue;
      if (blocks_[b].next_free_page != pages_per_block) continue;
      if (blocks_[b].valid < best_valid) {
        best_valid = blocks_[b].valid;
        victim = b;
      }
    }
    if (victim == blocks_.size()) return;  // nothing reclaimable yet
    // A fully-valid victim yields no space: relocating it consumes exactly
    // what erasing frees.  Fresh-write (no-overwrite) workloads hit this
    // until the first invalidation; GC simply stands down until then.
    if (best_valid == pages_per_block) return;

    // Relocate valid pages, then erase.
    const Ppn first = block_first_page(victim);
    for (std::uint32_t p = 0; p < pages_per_block; ++p) {
      const Ppn src = first + p;
      if (const auto lpn = p2l_[src]) {
        const Ppn dst = append_to_active(/*for_gc=*/true);
        p2l_[src] = std::nullopt;
        --blocks_[victim].valid;
        install_mapping(*lpn, dst, /*for_gc=*/true);
        ++stats_.gc_writes;
      }
    }
    ISP_DCHECK(blocks_[victim].valid == 0, "victim not fully invalidated");
    if (!media_.empty()) {
      for (std::uint32_t p = 0; p < pages_per_block; ++p) {
        media_[first + p] = std::nullopt;
      }
    }
    blocks_[victim] = Block{};
    ++free_count_;
    if (victim < free_scan_hint_) free_scan_hint_ = victim;
    ++stats_.erases;
    stats_.free_pages += pages_per_block;  // the erase frees the whole block
  }
}

FtlCrash Ftl::power_loss() {
  ISP_CHECK(config_.journal.enabled,
            "power_loss() requires journal mode (FtlJournalConfig::enabled)");
  ISP_CHECK(mounted_, "device already crashed");
  FtlCrash crash;
  crash.lost_tail_updates = journal_buf_.size();
  for (const auto& e : journal_buf_) {
    if (e.ppn == kTrimMark) ++crash.lost_trims;
  }
  // Everything volatile is gone.  The durable state — media OOB, programmed
  // journal pages, the checkpoint, and the bad-block table — survives.
  journal_buf_.clear();
  l2p_.assign(logical_pages_, std::nullopt);
  p2l_.assign(media_.size(), std::nullopt);
  for (auto& b : blocks_) b = Block{};
  mapped_count_ = 0;
  free_count_ = 0;
  free_scan_hint_ = 0;
  mounted_ = false;
  return crash;
}

FtlRecovery Ftl::recover() {
  ISP_CHECK(config_.journal.enabled, "recover() requires journal mode");
  ISP_CHECK(!mounted_, "recover() on a mounted FTL");
  FtlRecovery rec;
  const auto pages_per_block = config_.geometry.pages_per_block;

  // 1. Candidate map from the checkpoint, each entry stamped with the fold
  //    sequence (everything in the checkpoint is at least that old).
  //    recover_scratch_ keeps its capacity across remounts, so power-cycle
  //    sweeps pay the logical_pages-sized allocation only once.
  recover_scratch_.assign(logical_pages_, std::nullopt);
  auto& m = recover_scratch_;
  for (Lpn lpn = 0; lpn < logical_pages_; ++lpn) {
    if (checkpoint_[lpn]) m[lpn] = {*checkpoint_[lpn], checkpoint_seq_};
  }
  rec.checkpoint_pages_read = checkpoint_pages_;

  // 2. Replay the durable journal in order.
  for (const auto& e : journal_) {
    if (e.ppn == kTrimMark) {
      m[e.lpn] = std::nullopt;
    } else {
      m[e.lpn] = {e.ppn, e.seq};
    }
  }
  rec.journal_entries_replayed = journal_.size();
  rec.journal_pages_read =
      (journal_.size() + journal_entries_per_page() - 1) /
      journal_entries_per_page();

  // 3. OOB scan: only blocks holding pages programmed after the last
  //    durable journal page need reading (their block headers carry the
  //    program sequence, so the set is known without a full-device scan).
  //    This is what rescues the journal's volatile tail: every data-page
  //    program stamped its lpn+seq on the media.
  for (std::uint64_t b = 0; b < blocks_.size(); ++b) {
    const Ppn first = block_first_page(b);
    bool has_new = false;
    for (std::uint32_t p = 0; p < pages_per_block; ++p) {
      const auto& oob = media_[first + p];
      if (oob && oob->seq > last_durable_seq_) {
        has_new = true;
        break;
      }
    }
    if (!has_new) continue;
    ++rec.blocks_scanned;
    rec.pages_scanned += pages_per_block;
    for (std::uint32_t p = 0; p < pages_per_block; ++p) {
      const Ppn ppn = first + p;
      const auto& oob = media_[ppn];
      if (!oob || oob->seq <= last_durable_seq_) continue;
      if (!m[oob->lpn] || oob->seq > m[oob->lpn]->second) {
        m[oob->lpn] = {ppn, oob->seq};
        ++rec.tail_updates_rescued;
      }
    }
  }

  // 4. Confirm every candidate against the media: a mapping whose physical
  //    page was erased (its relocation entry sat in the lost tail) is
  //    stale — the OOB scan already supplied the newer location.
  for (Lpn lpn = 0; lpn < logical_pages_; ++lpn) {
    if (!m[lpn]) continue;
    const Ppn ppn = m[lpn]->first;
    if (!media_[ppn] || media_[ppn]->lpn != lpn) {
      m[lpn] = std::nullopt;
      ++rec.stale_mappings_dropped;
    }
  }

  // 5. Rebuild the volatile state: forward/reverse map, per-block append
  //    pointers (programmed pages are a prefix of each block), valid
  //    counts, and the free pool.
  for (std::uint64_t b = 0; b < blocks_.size(); ++b) {
    Block nb;
    if (retired_[b]) {
      nb.is_free = false;
      nb.next_free_page = pages_per_block;
      blocks_[b] = nb;
      continue;
    }
    const Ppn first = block_first_page(b);
    std::uint32_t programmed = 0;
    for (std::uint32_t p = 0; p < pages_per_block; ++p) {
      if (media_[first + p]) programmed = p + 1;
    }
    nb.next_free_page = programmed;
    nb.is_free = (programmed == 0);
    blocks_[b] = nb;
  }
  free_scan_hint_ = 0;  // the free pool was just rebuilt from scratch
  mapped_count_ = 0;
  for (Lpn lpn = 0; lpn < logical_pages_; ++lpn) {
    if (!m[lpn]) continue;
    const Ppn ppn = m[lpn]->first;
    l2p_[lpn] = ppn;
    p2l_[ppn] = lpn;
    ++blocks_[page_block(ppn)].valid;
    ++mapped_count_;
  }
  rec.mappings_recovered = mapped_count_;
  free_count_ = 0;
  for (std::uint64_t b = 0; b < blocks_.size(); ++b) {
    if (blocks_[b].is_free) ++free_count_;
  }

  // 6. Re-open the partially written blocks as the append points so they
  //    are not stranded (GC only reclaims full blocks).  Normal operation
  //    leaves at most two partial blocks (host + GC append); if recovery
  //    somehow finds more, compact the extras away.
  std::vector<std::uint64_t> partial;
  for (std::uint64_t b = 0; b < blocks_.size(); ++b) {
    if (blocks_[b].is_free || retired_[b]) continue;
    if (blocks_[b].next_free_page < pages_per_block) partial.push_back(b);
  }
  mounted_ = true;
  if (partial.size() >= 1) {
    active_block_ = partial[0];
  } else {
    active_block_ = allocate_free_block();
  }
  if (partial.size() >= 2) {
    gc_active_block_ = partial[1];
  } else {
    gc_active_block_ = allocate_free_block();
  }
  for (std::size_t i = 2; i < partial.size(); ++i) {
    const std::uint64_t b = partial[i];
    const Ppn first = block_first_page(b);
    for (std::uint32_t p = 0; p < pages_per_block; ++p) {
      const Ppn src = first + p;
      if (const auto lpn = p2l_[src]) {
        const Ppn dst = append_to_active(/*for_gc=*/true);
        p2l_[src] = std::nullopt;
        --blocks_[b].valid;
        install_mapping(*lpn, dst, /*for_gc=*/true);
        ++stats_.gc_writes;
      }
      media_[src] = std::nullopt;
    }
    blocks_[b] = Block{};
    ++free_count_;
    if (b < free_scan_hint_) free_scan_hint_ = b;
    ++stats_.erases;
  }

  // Rebuild the free-page gauge from the recovered block states.
  stats_.free_pages = 0;
  for (std::uint64_t b = 0; b < blocks_.size(); ++b) {
    if (retired_[b]) continue;
    stats_.free_pages += pages_per_block - blocks_[b].next_free_page;
  }

  ++stats_.recoveries;
  // The remount contract: every invariant holds before the first IO.
  check_invariants();
  return rec;
}

double Ftl::gc_pressure() const {
  const double host = static_cast<double>(stats_.host_writes);
  const double internal =
      static_cast<double>(stats_.gc_writes + stats_.meta_writes);
  if (host + internal == 0.0) return 0.0;
  return internal / (host + internal);
}

void Ftl::check_invariants() const {
  ISP_CHECK(mounted_, "invariants undefined on an unmounted FTL");
  const auto pages_per_block = config_.geometry.pages_per_block;

  // l2p / p2l are mutually consistent bijections on their valid domain.
  std::uint64_t mapped = 0;
  for (Lpn lpn = 0; lpn < logical_pages_; ++lpn) {
    if (const auto ppn = l2p_[lpn]) {
      ISP_CHECK(*ppn < p2l_.size(), "ppn out of range");
      ISP_CHECK(p2l_[*ppn].has_value() && *p2l_[*ppn] == lpn,
                "reverse map disagrees for lpn " << lpn);
      ++mapped;
    }
  }
  std::uint64_t reverse_mapped = 0;
  for (Ppn ppn = 0; ppn < p2l_.size(); ++ppn) {
    if (p2l_[ppn].has_value()) ++reverse_mapped;
  }
  ISP_CHECK(mapped == reverse_mapped, "map cardinality mismatch");
  ISP_CHECK(mapped == mapped_count_, "mapped-count bookkeeping mismatch");

  // Per-block valid counts match the reverse map; free blocks hold nothing;
  // retired blocks are out of service entirely.
  std::uint32_t free_seen = 0;
  std::uint32_t retired_seen = 0;
  for (std::uint64_t b = 0; b < blocks_.size(); ++b) {
    std::uint32_t valid = 0;
    for (std::uint32_t p = 0; p < pages_per_block; ++p) {
      if (p2l_[block_first_page(b) + p].has_value()) ++valid;
    }
    ISP_CHECK(valid == blocks_[b].valid,
              "block " << b << " valid-count mismatch");
    if (retired_[b]) {
      ISP_CHECK(!blocks_[b].is_free, "retired block in the free pool");
      ISP_CHECK(valid == 0, "retired block holds valid pages");
      ++retired_seen;
      continue;
    }
    if (blocks_[b].is_free) {
      ISP_CHECK(valid == 0, "free block contains valid pages");
      ISP_CHECK(blocks_[b].next_free_page == 0, "free block partially written");
      ++free_seen;
    }
    ISP_CHECK(blocks_[b].next_free_page <= pages_per_block,
              "append pointer past block end");
  }
  ISP_CHECK(free_seen == free_count_, "free-count bookkeeping mismatch");
  ISP_CHECK(retired_seen == retired_count_,
            "retired-count bookkeeping mismatch");
  // Free + in-use + retired partition the array.
  ISP_CHECK(free_seen + retired_seen <= blocks_.size(),
            "block partition overflow");
  // The exported free-page gauge equals the recomputed truth.
  std::uint64_t free_pages = 0;
  for (std::uint64_t b = 0; b < blocks_.size(); ++b) {
    if (retired_[b]) continue;
    free_pages += pages_per_block - blocks_[b].next_free_page;
  }
  ISP_CHECK(free_pages == stats_.free_pages,
            "free-page gauge drifted: " << stats_.free_pages << " != "
                                        << free_pages);
}

}  // namespace isp::flash
