// The flash array behind the CSD: analytic bulk-transfer timing plus an
// availability hook for storage-management contention.
//
// Bulk reads of multi-gigabyte inputs are charged analytically (startup of
// one page read, then the effective array bandwidth); simulating millions of
// page events per experiment would add nothing but runtime.  The per-page
// event path lives in the FTL/NVMe layers where command-level behaviour is
// under test.
#pragma once

#include "common/status.hpp"
#include "common/units.hpp"
#include "fault/fault.hpp"
#include "flash/nand.hpp"
#include "sim/availability.hpp"

namespace isp::flash {

/// Outcome of a fault-aware bulk IO: completion time including any retry /
/// recovery penalty, plus the typed status the device would surface.
struct FlashIo {
  SimTime done;
  isp::Status status;         // non-Ok only after retries were exhausted
  std::uint32_t retries = 0;  // faulted attempts the operation absorbed
  Seconds fault_penalty;      // virtual time added by fault handling
};

class FlashArray {
 public:
  FlashArray() : FlashArray(NandGeometry{}, NandTiming{}) {}
  FlashArray(NandGeometry geometry, NandTiming timing);

  [[nodiscard]] const NandGeometry& geometry() const { return geometry_; }
  [[nodiscard]] const NandTiming& timing() const { return timing_; }

  /// Effective internal read bandwidth (the paper's measured 9 GB/s).
  [[nodiscard]] BytesPerSecond read_bandwidth() const { return read_bw_; }
  [[nodiscard]] BytesPerSecond write_bandwidth() const { return write_bw_; }

  /// Service time of a bulk sequential read/write with the array fully
  /// available.
  [[nodiscard]] Seconds read_seconds(Bytes bytes) const;
  [[nodiscard]] Seconds write_seconds(Bytes bytes) const;

  /// Completion time under the availability schedule (GC or co-tenant
  /// traffic steals a fraction of array bandwidth).
  [[nodiscard]] SimTime read_finish(SimTime t0, Bytes bytes) const;
  [[nodiscard]] SimTime write_finish(SimTime t0, Bytes bytes) const;

  /// Attach a fault injector (nullptr detaches; not owned).  Only the
  /// fault-aware read_io/write_io paths consult it — the analytic
  /// read_finish/write_finish stay untouched so fault-free timing is
  /// bit-for-bit unchanged.
  void set_injector(fault::Injector* injector) { injector_ = injector; }
  [[nodiscard]] fault::Injector* injector() const { return injector_; }

  /// Fault-aware bulk IO: read_finish/write_finish timing plus injection at
  /// the FlashReadEcc / FlashProgram sites.  Each faulted attempt re-reads
  /// (re-programs) a page and backs off; exhausted retries escalate to
  /// RAID/parity reconstruction (reads) or block retirement (programs) and
  /// surface a typed non-Ok Status — the operation still completes in
  /// bounded virtual time, it never hangs.
  FlashIo read_io(SimTime t0, Bytes bytes);
  FlashIo write_io(SimTime t0, Bytes bytes);

  void set_availability(sim::AvailabilitySchedule schedule);
  [[nodiscard]] const sim::AvailabilitySchedule& availability() const {
    return availability_;
  }

  [[nodiscard]] Bytes bytes_read() const { return bytes_read_; }
  [[nodiscard]] Bytes bytes_written() const { return bytes_written_; }
  void note_read(Bytes b) { bytes_read_ += b; }
  void note_write(Bytes b) { bytes_written_ += b; }
  void reset_stats();

 private:
  NandGeometry geometry_;
  NandTiming timing_;
  BytesPerSecond read_bw_;
  BytesPerSecond write_bw_;
  sim::AvailabilitySchedule availability_;
  Bytes bytes_read_;
  Bytes bytes_written_;
  fault::Injector* injector_ = nullptr;
};

}  // namespace isp::flash
