// The flash array behind the CSD: analytic bulk-transfer timing plus an
// availability hook for storage-management contention.
//
// Bulk reads of multi-gigabyte inputs are charged analytically (startup of
// one page read, then the effective array bandwidth); simulating millions of
// page events per experiment would add nothing but runtime.  The per-page
// event path lives in the FTL/NVMe layers where command-level behaviour is
// under test.
#pragma once

#include "common/units.hpp"
#include "flash/nand.hpp"
#include "sim/availability.hpp"

namespace isp::flash {

class FlashArray {
 public:
  FlashArray() : FlashArray(NandGeometry{}, NandTiming{}) {}
  FlashArray(NandGeometry geometry, NandTiming timing);

  [[nodiscard]] const NandGeometry& geometry() const { return geometry_; }
  [[nodiscard]] const NandTiming& timing() const { return timing_; }

  /// Effective internal read bandwidth (the paper's measured 9 GB/s).
  [[nodiscard]] BytesPerSecond read_bandwidth() const { return read_bw_; }
  [[nodiscard]] BytesPerSecond write_bandwidth() const { return write_bw_; }

  /// Service time of a bulk sequential read/write with the array fully
  /// available.
  [[nodiscard]] Seconds read_seconds(Bytes bytes) const;
  [[nodiscard]] Seconds write_seconds(Bytes bytes) const;

  /// Completion time under the availability schedule (GC or co-tenant
  /// traffic steals a fraction of array bandwidth).
  [[nodiscard]] SimTime read_finish(SimTime t0, Bytes bytes) const;
  [[nodiscard]] SimTime write_finish(SimTime t0, Bytes bytes) const;

  void set_availability(sim::AvailabilitySchedule schedule);
  [[nodiscard]] const sim::AvailabilitySchedule& availability() const {
    return availability_;
  }

  [[nodiscard]] Bytes bytes_read() const { return bytes_read_; }
  [[nodiscard]] Bytes bytes_written() const { return bytes_written_; }
  void note_read(Bytes b) { bytes_read_ += b; }
  void note_write(Bytes b) { bytes_written_ += b; }
  void reset_stats();

 private:
  NandGeometry geometry_;
  NandTiming timing_;
  BytesPerSecond read_bw_;
  BytesPerSecond write_bw_;
  sim::AvailabilitySchedule availability_;
  Bytes bytes_read_;
  Bytes bytes_written_;
};

}  // namespace isp::flash
