#include "flash/backend.hpp"

#include "common/error.hpp"

namespace isp::flash {

const char* to_string(BackendKind kind) {
  switch (kind) {
    case BackendKind::Ftl:
      return "ftl";
    case BackendKind::Zns:
      return "zns";
  }
  ISP_CHECK(false,
            "unknown storage backend kind: " << static_cast<unsigned>(kind));
  return "?";
}

}  // namespace isp::flash
