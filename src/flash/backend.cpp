#include "flash/backend.hpp"

#include "common/error.hpp"

namespace isp::flash {

void StorageBackend::write_span(Lpn first, std::uint64_t count) {
  for (std::uint64_t i = 0; i < count; ++i) write(first + i);
}

void StorageBackend::trim_span(Lpn first, std::uint64_t count) {
  for (std::uint64_t i = 0; i < count; ++i) trim(first + i);
}

std::uint64_t StorageBackend::read_span(Lpn first, std::uint64_t count,
                                        std::vector<Ppn>* out) const {
  std::uint64_t mapped = 0;
  for (std::uint64_t i = 0; i < count; ++i) {
    if (const auto ppn = translate(first + i)) {
      ++mapped;
      if (out != nullptr) out->push_back(*ppn);
    }
  }
  return mapped;
}

const char* to_string(BackendKind kind) {
  switch (kind) {
    case BackendKind::Ftl:
      return "ftl";
    case BackendKind::Zns:
      return "zns";
  }
  ISP_CHECK(false,
            "unknown storage backend kind: " << static_cast<unsigned>(kind));
  return "?";
}

}  // namespace isp::flash
