// The pluggable storage-backend seam.
//
// The paper's Eq.1 economics price device-side contention from "storage
// management workloads" (§II-B(3)); until now the only model of that
// contention was the page-mapped FTL in flash/ftl.*.  ZCSD (Lukken et al.)
// shows that computational storage over Zoned Namespaces changes exactly
// this term: writes become append-only within zones, the device runs no
// background GC of its own, and reclaim is an explicit host-coordinated
// copy-forward + zone_reset.  StorageBackend is the interface both models
// implement so every layer above — the NVMe controller, the CSD device, the
// execution engine, the crash-recovery sweep and the serving fleet — is
// written once against the seam and a device picks its backend by
// configuration (`CsdConfig::backend`).
//
// The crash/recovery contract is shared: both backends journal durable
// metadata into reserved flash, stamp every data-page program with
// (lpn, seq) in the page's out-of-band area, and remount after power_loss()
// by replaying checkpoint + journal and OOB-scanning only the region written
// since the last durable record.  StorageCrash / StorageRecovery are the
// common currency of that ladder (aliased as FtlCrash / FtlRecovery for the
// pre-seam call sites).
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "common/units.hpp"

namespace isp::obs {
class MetricsRegistry;
}

namespace isp::flash {

using Lpn = std::uint64_t;  // logical page number
using Ppn = std::uint64_t;  // physical page number

/// Which storage-management model a device runs.
enum class BackendKind : std::uint8_t {
  Ftl = 0,  // page-mapped FTL, greedy device-side GC
  Zns = 1,  // zoned namespace, append-only zones, host-coordinated reclaim
};

[[nodiscard]] const char* to_string(BackendKind kind);

/// Durable-metadata knobs, shared by both backends.  Disabled by default so
/// a bare backend behaves (and costs) exactly as before; CsdDevice enables
/// it for the whole device.
struct JournalConfig {
  bool enabled = false;
  /// One durable update record in the journal (lpn + ppn/mark + sequence).
  std::uint32_t entry_bytes = 16;
  /// One map slot in a checkpoint page.
  std::uint32_t checkpoint_entry_bytes = 8;
  /// Fold the journal into a fresh checkpoint after this many journal pages.
  std::uint32_t checkpoint_interval_pages = 64;
};

/// What a power cut destroys: the buffered journal tail that was never
/// programmed.  Updates recoverable from data-page OOB metadata are still
/// rescued at remount; buffered trims are genuinely lost (the recovered map
/// may resurrect them).
struct StorageCrash {
  std::uint64_t lost_tail_updates = 0;
  std::uint64_t lost_trims = 0;
};

/// Cost and outcome of one remount.  Media reads are reported as counts so
/// the caller can convert with its NandTiming (backends are untimed).
struct StorageRecovery {
  std::uint64_t checkpoint_pages_read = 0;
  std::uint64_t journal_pages_read = 0;
  std::uint64_t journal_entries_replayed = 0;
  /// OOB scan of the region written after the last durable record: FTL
  /// blocks or ZNS zones.
  std::uint64_t blocks_scanned = 0;
  std::uint64_t pages_scanned = 0;
  std::uint64_t mappings_recovered = 0;    // live map entries after remount
  std::uint64_t tail_updates_rescued = 0;  // recovered from OOB, not journal
  std::uint64_t stale_mappings_dropped = 0;

  [[nodiscard]] std::uint64_t media_reads() const {
    return checkpoint_pages_read + journal_pages_read + pages_scanned;
  }
};

/// Backend-agnostic write/reclaim accounting, in pages.  The engine samples
/// these around the storage traffic it drives to charge reclaim as real
/// device work and to report per-run write amplification; the serving layer
/// folds them into per-lane reclaim pressure for Equation 1.
struct StorageCounters {
  std::uint64_t host_pages = 0;     // host-issued data-page programs
  std::uint64_t reclaim_pages = 0;  // GC relocations / ZNS copy-forward
  std::uint64_t meta_pages = 0;     // journal + checkpoint page programs
  std::uint64_t resets = 0;         // block erases / zone resets
  std::uint64_t reclaim_events = 0; // GC invocations / reclaim passes
  std::uint64_t recoveries = 0;     // successful remounts after power loss

  [[nodiscard]] double write_amplification() const {
    if (host_pages == 0) return 1.0;
    return static_cast<double>(host_pages + reclaim_pages + meta_pages) /
           static_cast<double>(host_pages);
  }
  /// Fraction of write bandwidth spent on background storage management.
  [[nodiscard]] double reclaim_pressure() const {
    const std::uint64_t internal = reclaim_pages + meta_pages;
    if (host_pages + internal == 0) return 0.0;
    return static_cast<double>(internal) /
           static_cast<double>(host_pages + internal);
  }
};

/// The storage-management model of one device.  Implementations are untimed
/// bookkeeping machines (the caller charges NandTiming for the traffic they
/// report) and fully deterministic: the same call sequence produces the same
/// state, stats and recovery outcome bit for bit.
class StorageBackend {
 public:
  virtual ~StorageBackend() = default;

  [[nodiscard]] virtual BackendKind kind() const = 0;

  /// Number of logical pages exposed.
  [[nodiscard]] virtual std::uint64_t logical_pages() const = 0;

  /// Write one logical page (out of place / append-only).  May trigger the
  /// backend's reclaim machinery (GC or zone reclaim).
  virtual void write(Lpn lpn) = 0;

  /// Physical location of a logical page, if it has ever been written.
  [[nodiscard]] virtual std::optional<Ppn> translate(Lpn lpn) const = 0;

  /// Trim: drop the mapping, invalidating the physical page.
  virtual void trim(Lpn lpn) = 0;

  // ---- Span (extent) operations ----------------------------------------
  // Batched forms of write/trim/translate over a contiguous LPN extent
  // [first, first + count).  The contract is exact equivalence: state,
  // stats, journal contents and recovery outcome are bit-for-bit what the
  // scalar loop `for (i) op(first + i)` would produce — a backend override
  // is an algorithmic fast path (hoisted checks, run-at-a-time bookkeeping,
  // bitmap walks), never a semantic change.  The defaults are the scalar
  // loops, so a backend that doesn't override still honours the contract.

  /// Write `count` pages starting at `first` (each out of place, in
  /// ascending LPN order, with the same reclaim triggers as write()).
  virtual void write_span(Lpn first, std::uint64_t count);

  /// Trim `count` pages starting at `first`, in ascending LPN order.
  virtual void trim_span(Lpn first, std::uint64_t count);

  /// Translate the extent: returns how many pages are mapped and, when
  /// `out` is non-null, appends each mapped page's Ppn in LPN order.
  virtual std::uint64_t read_span(Lpn first, std::uint64_t count,
                                  std::vector<Ppn>* out) const;

  [[nodiscard]] virtual bool journaling() const = 0;
  [[nodiscard]] virtual bool mounted() const = 0;

  /// Power cut: all volatile state is gone.  Requires journal mode.  Every
  /// call except recover() and the const accessors is invalid until the
  /// remount completes.
  virtual StorageCrash power_loss() = 0;

  /// Remount after power_loss(): replay checkpoint + journal, OOB-scan the
  /// region written since the last durable record, rebuild volatile state,
  /// and re-verify every invariant.
  virtual StorageRecovery recover() = 0;

  /// Fraction of array bandwidth background storage management has consumed
  /// over the run so far (reclaim + metadata relative to all write traffic).
  [[nodiscard]] virtual double gc_pressure() const = 0;

  /// Cumulative write amplification (>= 1.0).
  [[nodiscard]] virtual double write_amplification() const = 0;

  /// Backend-agnostic page accounting snapshot.
  [[nodiscard]] virtual StorageCounters counters() const = 0;

  /// Fold the backend's stats into a metrics registry under its own prefix
  /// ("ftl.*" / "zns.*").  Pure bookkeeping: charges no virtual time.
  virtual void record_metrics(obs::MetricsRegistry& registry) const = 0;

  /// Validate every structural invariant; throws isp::Error on violation.
  virtual void check_invariants() const = 0;
};

}  // namespace isp::flash
