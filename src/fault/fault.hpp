// Deterministic fault injection across the device stack.
//
// Real CSDs fail in ways the happy-path substrate never exercised: NVMe
// commands time out, NAND reads return uncorrectable ECC errors, programs
// fail transiently, DMA transfers stall, CSE cores crash mid-chunk, and
// status updates get lost on the way to the host.  FaultPlan turns each of
// those *named sites* into a seed-deterministic Bernoulli process: the n-th
// opportunity at a site either passes or faults as a pure function of
// (seed, site, n), so a given seed replays the exact same fault schedule
// regardless of wall-clock, thread timing, or unrelated code changes.
//
// Recovery is layered on top by Injector::attempt(): bounded retry with
// exponential backoff in *virtual* time, then a site-specific escalation
// (typed isp::Status error, ECC/RAID reconstruction penalty, link reset, or
// migration back to the host — the degradation ladder in
// docs/fault-model.md).  With every site at rate 0 the plan is inert: no
// RNG draws, no added virtual time, bit-for-bit identical runs.
#pragma once

#include <array>
#include <cstdint>
#include <string_view>
#include <vector>

#include "common/status.hpp"
#include "common/units.hpp"

namespace isp::fault {

/// Named injection sites, one per device-stack layer.
enum class Site : std::uint8_t {
  NvmeCommand = 0,  // command timeout/abort in the NVMe controller
  FlashReadEcc,     // page read returns an ECC error
  FlashProgram,     // transient program/erase failure
  DmaTransfer,      // DMA transfer stall on the host link
  CseCrash,         // CSE core crash mid-chunk
  StatusLoss,       // status update lost before the monitor sees it
  PowerLoss,        // whole-device power cut at an event boundary
  DeviceFailure,    // permanent whole-device death (fleet-level, serve/)
  kCount
};

inline constexpr std::size_t kSiteCount = static_cast<std::size_t>(Site::kCount);

[[nodiscard]] std::string_view to_string(Site site);

/// Bounded retry with exponential backoff (in virtual time).
struct RetryPolicy {
  /// Total tries for one operation, including the first.
  std::uint32_t max_attempts = 4;
  Seconds initial_backoff = Seconds{10e-6};
  double backoff_multiplier = 2.0;

  /// Backoff slept before retry `retry` (1-based): initial * mult^(retry-1).
  [[nodiscard]] Seconds backoff_before(std::uint32_t retry) const;
};

struct SiteConfig {
  /// Bernoulli fault probability per opportunity, in [0, 1].
  double rate = 0.0;
  /// Opportunities at this site that never fault — lets tests place the
  /// first fault at an exact chunk/command/page deterministically.
  std::uint64_t skip_first = 0;
  /// Cap on faults this site may fire over a run (0 = unlimited).  With
  /// rate 1, skip_first k and max_faults 1 the site fires exactly once, at
  /// the (k+1)-th opportunity — the crash-point sweep's one knob.
  std::uint64_t max_faults = 0;
};

struct FaultConfig {
  std::uint64_t seed = 0;
  std::array<SiteConfig, kSiteCount> sites{};
  RetryPolicy retry;
  /// Host-visible timeout before the controller requeues a lost command.
  Seconds nvme_command_timeout = Seconds{50e-6};
  /// Core restart cost after a CSE crash (firmware re-dispatch).
  Seconds cse_restart = Seconds{200e-6};
  /// Escalation when an uncorrectable read exhausts retries: device-side
  /// RAID/parity reconstruction of the page.
  Seconds ecc_recovery = Seconds{2e-3};
  /// Escalation when a program/erase keeps failing: retire the block and
  /// re-program into a fresh one.
  Seconds block_retire = Seconds{5e-3};
  /// Escalation when the DMA engine exhausts retries: reset the link.
  Seconds link_reset = Seconds{1e-3};
  /// Whole-device power cycle after a PowerLoss: controller reset plus
  /// firmware reboot, before the FTL remount (journal/checkpoint replay)
  /// adds its media-read cost on top.
  Seconds power_cycle = Seconds{10e-3};

  void set_rate(Site site, double rate);
  /// Set every *point-fault* site to `rate`.  PowerLoss and DeviceFailure
  /// are deliberately excluded: PowerLoss is a whole-device event with its
  /// own recovery machinery, and DeviceFailure is a fleet-level permanent
  /// death (its rate is a per-virtual-second hazard the serving loop turns
  /// into a first-arrival instant, not a per-opportunity Bernoulli).  Both
  /// are enabled explicitly via set_rate(site, r).
  void set_rate_all(double rate);
  [[nodiscard]] double rate(Site site) const;
  /// True if any site can fire (a rate above zero).
  [[nodiscard]] bool enabled() const;
};

/// Seed-deterministic fault schedule: fires(site) is a pure function of
/// (seed, site, per-site opportunity counter).
class FaultPlan {
 public:
  FaultPlan() = default;
  explicit FaultPlan(FaultConfig config);

  [[nodiscard]] bool enabled() const { return enabled_; }
  [[nodiscard]] const FaultConfig& config() const { return config_; }

  /// Consume the next opportunity at `site`; true if it faults.
  bool fires(Site site);

  /// Opportunities consumed so far at `site`.
  [[nodiscard]] std::uint64_t opportunities(Site site) const {
    return counters_[static_cast<std::size_t>(site)];
  }

 private:
  FaultConfig config_;
  bool enabled_ = false;
  std::array<std::uint64_t, kSiteCount> counters_{};
  std::array<std::uint64_t, kSiteCount> fired_{};    // faults fired per site
  std::array<std::uint64_t, kSiteCount> streams_{};  // per-site hash stream
};

/// One fault-handling episode at a site (an operation's worth of retries).
struct FaultRecord {
  Site site = Site::NvmeCommand;
  SimTime time;                 // virtual time the operation started
  std::uint32_t faults = 0;     // injected faults observed by this operation
  bool exhausted = false;       // retries ran out; escalation applied
  Seconds penalty;              // virtual time added by retries + escalation
};

/// Aggregate counters for the ExecutionReport / trace export.
struct FaultSummary {
  std::array<std::uint64_t, kSiteCount> injected{};
  std::array<std::uint64_t, kSiteCount> recovered{};  // ops healed by retry
  std::array<std::uint64_t, kSiteCount> exhausted{};  // ops that escalated
  Seconds penalty;              // total virtual time added by fault handling
  std::uint32_t degradations = 0;  // migrations forced by device faults

  [[nodiscard]] std::uint64_t total_injected() const;
  [[nodiscard]] std::uint64_t total_exhausted() const;
};

/// Outcome of one bounded-retry operation.
struct OpResult {
  std::uint32_t faults = 0;  // faulted attempts (0 = clean first try)
  Seconds penalty;           // retry costs + backoff + any escalation
  bool exhausted = false;    // every attempt faulted; escalation applied
};

/// FaultPlan + RetryPolicy + bookkeeping: the one handle device components
/// take.  A null/absent injector (or an all-zero config) costs nothing.
class Injector {
 public:
  Injector() = default;
  explicit Injector(FaultConfig config) : plan_(config) {}

  [[nodiscard]] bool enabled() const { return plan_.enabled(); }
  [[nodiscard]] const FaultConfig& config() const { return plan_.config(); }

  /// Run one operation at `site` under the retry policy.  Each faulted
  /// attempt charges `retry_cost` plus the exponential backoff; if every
  /// attempt faults, `escalation_cost` is charged on top and the result is
  /// marked exhausted.  Deterministic in (config.seed, site, call order).
  OpResult attempt(Site site, SimTime now, Seconds retry_cost,
                   Seconds escalation_cost = Seconds::zero());

  /// Single un-retried opportunity (status-update loss, per-try command
  /// drop): true if this event is lost.  Records the injection.
  bool lost(Site site, SimTime now);

  /// Raw deterministic draw with no bookkeeping, for callers that run their
  /// own recovery machinery event-by-event (the NVMe controller's
  /// timeout/requeue path) and record the episode via note_outcome() once
  /// its outcome is known.
  [[nodiscard]] bool draw(Site site) {
    return plan_.enabled() && plan_.fires(site);
  }

  /// Record an op outcome decided by the caller (the NVMe controller walks
  /// its timeout/requeue machinery event-by-event rather than through
  /// attempt(), but the books must match).
  void note_outcome(Site site, SimTime now, std::uint32_t faults,
                    Seconds penalty, bool exhausted);

  /// A device fault forced the runtime to pull work back to the host.
  void note_degradation() { ++summary_.degradations; }

  [[nodiscard]] const FaultSummary& summary() const { return summary_; }
  [[nodiscard]] const std::vector<FaultRecord>& records() const {
    return records_;
  }
  [[nodiscard]] const FaultPlan& plan() const { return plan_; }

 private:
  /// Bound on the per-run record log; counters keep counting past it.
  static constexpr std::size_t kMaxRecords = 4096;

  FaultPlan plan_;
  FaultSummary summary_;
  std::vector<FaultRecord> records_;
};

}  // namespace isp::fault
