#include "fault/fault.hpp"

#include <cmath>

#include "common/error.hpp"
#include "common/rng.hpp"

namespace isp::fault {

std::string_view to_string(Site site) {
  switch (site) {
    case Site::NvmeCommand:
      return "nvme-command";
    case Site::FlashReadEcc:
      return "flash-read-ecc";
    case Site::FlashProgram:
      return "flash-program";
    case Site::DmaTransfer:
      return "dma-transfer";
    case Site::CseCrash:
      return "cse-crash";
    case Site::StatusLoss:
      return "status-loss";
    case Site::PowerLoss:
      return "power-loss";
    case Site::DeviceFailure:
      return "device-failure";
    case Site::kCount:
      break;
  }
  return "?";
}

Seconds RetryPolicy::backoff_before(std::uint32_t retry) const {
  ISP_DCHECK(retry >= 1, "backoff is defined for retries, not the first try");
  return initial_backoff *
         std::pow(backoff_multiplier, static_cast<double>(retry - 1));
}

void FaultConfig::set_rate(Site site, double r) {
  ISP_CHECK(r >= 0.0 && r <= 1.0, "fault rate must be in [0, 1]");
  sites[static_cast<std::size_t>(site)].rate = r;
}

void FaultConfig::set_rate_all(double r) {
  for (std::size_t s = 0; s < kSiteCount; ++s) {
    const auto site = static_cast<Site>(s);
    if (site == Site::PowerLoss || site == Site::DeviceFailure) continue;
    set_rate(site, r);
  }
}

double FaultConfig::rate(Site site) const {
  return sites[static_cast<std::size_t>(site)].rate;
}

bool FaultConfig::enabled() const {
  for (const auto& site : sites) {
    if (site.rate > 0.0) return true;
  }
  return false;
}

FaultPlan::FaultPlan(FaultConfig config) : config_(config) {
  ISP_CHECK(config_.retry.max_attempts >= 1,
            "retry policy needs at least one attempt");
  enabled_ = config_.enabled();
  // One independent hash stream per site: the schedule at a site does not
  // shift when another site consumes opportunities.
  for (std::size_t s = 0; s < kSiteCount; ++s) {
    streams_[s] = splitmix64(config_.seed ^ (0xA24BAED4963EE407ULL * (s + 1)));
  }
}

bool FaultPlan::fires(Site site) {
  const auto s = static_cast<std::size_t>(site);
  const std::uint64_t n = counters_[s]++;
  const SiteConfig& sc = config_.sites[s];
  if (sc.rate <= 0.0) return false;
  if (n < sc.skip_first) return false;
  if (sc.max_faults > 0 && fired_[s] >= sc.max_faults) return false;
  if (hash_unit(streams_[s] ^ splitmix64(n)) >= sc.rate) return false;
  ++fired_[s];
  return true;
}

std::uint64_t FaultSummary::total_injected() const {
  std::uint64_t total = 0;
  for (const auto n : injected) total += n;
  return total;
}

std::uint64_t FaultSummary::total_exhausted() const {
  std::uint64_t total = 0;
  for (const auto n : exhausted) total += n;
  return total;
}

OpResult Injector::attempt(Site site, SimTime now, Seconds retry_cost,
                           Seconds escalation_cost) {
  OpResult result;
  if (!plan_.enabled() || plan_.config().rate(site) <= 0.0) return result;

  const RetryPolicy& policy = plan_.config().retry;
  for (std::uint32_t try_no = 0; try_no < policy.max_attempts; ++try_no) {
    if (!plan_.fires(site)) break;  // this try succeeds
    ++result.faults;
    // The failed try costs its site-specific price, and the issuer backs
    // off (exponentially, in virtual time) before the next one.
    result.penalty += retry_cost + policy.backoff_before(result.faults);
    if (try_no + 1 == policy.max_attempts) {
      result.exhausted = true;
      result.penalty += escalation_cost;
    }
  }
  note_outcome(site, now, result.faults, result.penalty, result.exhausted);
  return result;
}

bool Injector::lost(Site site, SimTime now) {
  if (!plan_.enabled()) return false;
  if (!plan_.fires(site)) return false;
  note_outcome(site, now, 1, Seconds::zero(), false);
  return true;
}

void Injector::note_outcome(Site site, SimTime now, std::uint32_t faults,
                            Seconds penalty, bool exhausted) {
  if (faults == 0) return;
  const auto s = static_cast<std::size_t>(site);
  summary_.injected[s] += faults;
  if (exhausted) {
    ++summary_.exhausted[s];
  } else {
    ++summary_.recovered[s];
  }
  summary_.penalty += penalty;
  if (records_.size() < kMaxRecords) {
    records_.push_back(FaultRecord{site, now, faults, exhausted, penalty});
  }
}

}  // namespace isp::fault
