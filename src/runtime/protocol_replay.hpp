// Protocol replay: validate the analytic engine's CSD control-plane charges
// against the event-driven NVMe substrate.
//
// The execution engine charges each CSD group invocation analytically (call
// overhead, status-update costs).  This replayer takes a finished report and
// drives the same sequence through the *real* protocol machinery — SQ entry,
// doorbell, controller fetch, firmware chunk loop, status posts, CQ
// completion — on the event simulator, and reports both the protocol-level
// statistics and the total control-plane time.  A test asserts the replayed
// totals bracket the engine's analytic charges; the benches use it to show
// the control plane is microseconds against seconds of data plane.
#pragma once

#include "runtime/report.hpp"
#include "system/model.hpp"

namespace isp::runtime {

struct ProtocolReplayResult {
  std::uint32_t calls_submitted = 0;
  std::uint64_t status_updates = 0;
  std::uint64_t completions = 0;
  Seconds protocol_time;   // doorbell → final completion, compute excluded
  Seconds execute_time;    // CSE execution time replayed
};

/// Replay the CSD groups of `report` through the system's queue pairs,
/// controller and a firmware instance.  Uses each group's recorded compute
/// time as the firmware's service time.
[[nodiscard]] ProtocolReplayResult replay_csd_protocol(
    system::SystemModel& system, const ExecutionReport& report);

}  // namespace isp::runtime
