#include "runtime/protocol_replay.hpp"

#include <map>
#include <vector>

#include "common/error.hpp"
#include "csd/firmware.hpp"

namespace isp::runtime {

ProtocolReplayResult replay_csd_protocol(system::SystemModel& system,
                                         const ExecutionReport& report) {
  ProtocolReplayResult result;

  // Reconstruct the CSD groups: contiguous runs of CSD-placed lines, each
  // with its total compute time.
  struct Group {
    std::uint32_t first_line;
    Seconds compute;
  };
  std::vector<Group> groups;
  bool in_group = false;
  for (const auto& line : report.lines) {
    if (line.placement == ir::Placement::Csd) {
      if (!in_group) {
        groups.push_back(Group{line.index, Seconds::zero()});
        in_group = true;
      }
      groups.back().compute += line.compute;
    } else {
      in_group = false;
    }
  }
  if (groups.empty()) return result;

  auto& simulator = system.simulator();
  auto& device = system.csd_device();
  auto& qp = device.io_queue();
  auto& controller = device.controller();

  // Service times per function id, consumed by both the controller hook and
  // the firmware.
  std::map<std::uint32_t, Seconds> service;
  for (std::size_t g = 0; g < groups.size(); ++g) {
    service[static_cast<std::uint32_t>(g + 1)] = groups[g].compute;
    result.execute_time += groups[g].compute;
  }

  csd::Firmware firmware(simulator, device.cse(), device.call_queue(),
                         device.status_queue());
  std::uint64_t completed_functions = 0;
  SimTime last_completion = simulator.now();
  firmware.start(
      [&](const nvme::CallEntry& entry) {
        const auto it = service.find(entry.function_id);
        ISP_CHECK(it != service.end(), "unknown function id in replay");
        return it->second;
      },
      [&](const nvme::CallEntry&) {
        ++completed_functions;
        last_completion = simulator.now();
      });

  // The host side: submit one CsdExec per group.  The controller's exec hook
  // enqueues the call for the firmware and charges no controller time (the
  // firmware owns execution).
  controller.set_exec_hook([&](const nvme::SubmissionEntry& entry) {
    device.call_queue().submit(nvme::CallEntry{
        .function_id = static_cast<std::uint32_t>(entry.arg_address),
        .first_line = static_cast<std::uint32_t>(entry.lba),
        .arg_block = entry.arg_address});
    return Seconds::zero();
  });

  const SimTime start = simulator.now();
  for (std::size_t g = 0; g < groups.size(); ++g) {
    const bool pushed = qp.sq().push(nvme::SubmissionEntry{
        .opcode = nvme::Opcode::CsdExec,
        .command_id = static_cast<std::uint16_t>(g + 1),
        .lba = groups[g].first_line,
        .arg_address = g + 1});
    ISP_CHECK(pushed, "submission queue overflow during replay");
    ++result.calls_submitted;
  }
  controller.ring_doorbell(qp);
  // The firmware's poll loop reschedules itself while running, so the event
  // queue never drains on its own: step the clock in bounded slices until
  // every function completed (or a generous deadline trips).
  const SimTime deadline =
      start + result.execute_time * 4.0 + Seconds{1.0};
  while (completed_functions < groups.size() && simulator.now() < deadline) {
    simulator.run_until(simulator.now() + Seconds{0.01});
  }
  firmware.stop();
  simulator.run_until(simulator.now() + Seconds{1e-3});

  ISP_CHECK(completed_functions == groups.size(),
            "firmware completed " << completed_functions << " of "
                                  << groups.size() << " functions");

  while (qp.cq().pop()) ++result.completions;
  while (device.status_queue().poll()) ++result.status_updates;
  const Seconds total = last_completion - start;
  result.protocol_time =
      total - result.execute_time;  // control-plane residue
  if (result.protocol_time < Seconds::zero()) {
    result.protocol_time = Seconds::zero();
  }
  return result;
}

}  // namespace isp::runtime
