#include "runtime/trace.hpp"

#include <fstream>
#include <iomanip>
#include <sstream>

#include "common/error.hpp"

namespace isp::runtime {

namespace {

/// One complete ("X") event. Times in microseconds per the trace format.
void emit(std::ostringstream& os, bool& first, const std::string& name,
          const char* track, double start_s, double duration_s) {
  if (duration_s <= 0.0) return;
  if (!first) os << ",";
  first = false;
  os << "{\"name\":\"" << name << "\",\"ph\":\"X\",\"pid\":1,\"tid\":\""
     << track << "\",\"ts\":" << start_s * 1e6
     << ",\"dur\":" << duration_s * 1e6 << "}";
}

}  // namespace

std::string to_chrome_trace(const ExecutionReport& report) {
  std::ostringstream os;
  os << std::setprecision(12) << "[";
  bool first = true;

  if (report.compile_overhead.value() > 0.0) {
    emit(os, first, "codegen (Cython)", "host", 0.0,
         report.compile_overhead.value());
  }

  for (const auto& line : report.lines) {
    const char* track =
        line.placement == ir::Placement::Csd ? "cse" : "host";
    double cursor = line.start.seconds();
    emit(os, first, line.name + " [access]", track, cursor,
         line.access.value());
    cursor += line.access.value();
    emit(os, first, line.name + " [xfer]", "link", cursor,
         line.transfer_in.value());
    cursor += line.transfer_in.value();
    emit(os, first, line.name + " [marshal]", track, cursor,
         line.marshal.value());
    cursor += line.marshal.value();
    emit(os, first, line.name, track, cursor, line.compute.value());
  }

  // Fault-handling episodes as instant events on their own track, so a
  // faulted run shows *where* the retries and escalations landed.
  for (const auto& f : report.fault_records) {
    if (!first) os << ",";
    first = false;
    os << "{\"name\":\"fault:" << fault::to_string(f.site)
       << (f.exhausted ? " (exhausted)" : "")
       << "\",\"ph\":\"i\",\"s\":\"t\",\"pid\":1,\"tid\":\"faults\",\"ts\":"
       << f.time.seconds() * 1e6 << ",\"args\":{\"faults\":" << f.faults
       << ",\"penalty_us\":" << f.penalty.value() * 1e6 << "}}";
  }
  os << "]";
  return os.str();
}

void write_chrome_trace(const ExecutionReport& report,
                        const std::string& path) {
  std::ofstream out(path);
  ISP_CHECK(out.good(), "cannot open trace file '" << path << "'");
  out << to_chrome_trace(report);
  ISP_CHECK(out.good(), "failed writing trace file '" << path << "'");
}

}  // namespace isp::runtime
