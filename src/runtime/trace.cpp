#include "runtime/trace.hpp"

#include <cstdio>
#include <string>

#include "common/error.hpp"
#include "obs/timeline.hpp"

namespace isp::runtime {

namespace {

std::string num(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6f", v);
  return buf;
}

std::string num(std::uint64_t v) {
  return std::to_string(v);
}

}  // namespace

obs::Timeline to_trace_timeline(const ExecutionReport& report) {
  obs::Timeline timeline;

  if (report.compile_overhead.value() > 0.0) {
    timeline.complete("host", "codegen (Cython)", 0.0,
                      report.compile_overhead.value());
  }

  for (const auto& line : report.lines) {
    const char* track =
        line.placement == ir::Placement::Csd ? "cse" : "host";
    double cursor = line.start.seconds();
    timeline.complete(track, line.name + " [access]", cursor,
                      line.access.value());
    cursor += line.access.value();
    timeline.complete("link", line.name + " [xfer]", cursor,
                      line.transfer_in.value());
    cursor += line.transfer_in.value();
    timeline.complete(track, line.name + " [marshal]", cursor,
                      line.marshal.value());
    cursor += line.marshal.value();
    timeline.complete(track, line.name, cursor, line.compute.value());
  }

  // Fault-handling episodes as instant events on their own track, so a
  // faulted run shows *where* the retries and escalations landed.
  for (const auto& f : report.fault_records) {
    timeline.instant(
        "faults",
        "fault:" + std::string(fault::to_string(f.site)) +
            (f.exhausted ? " (exhausted)" : ""),
        f.time.seconds(),
        {{"faults", num(static_cast<std::uint64_t>(f.faults))},
         {"penalty_us", num(f.penalty.value() * 1e6)}});
  }
  return timeline;
}

std::string to_chrome_trace(const ExecutionReport& report) {
  return to_trace_timeline(report).to_json();
}

void write_chrome_trace(const ExecutionReport& report,
                        const std::string& path) {
  to_trace_timeline(report).write(path);
}

}  // namespace isp::runtime
