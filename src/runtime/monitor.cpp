#include "runtime/monitor.hpp"

#include "common/error.hpp"

namespace isp::runtime {

Monitor::Monitor(MonitorConfig config, double estimated_rate)
    : config_(config), estimated_rate_(estimated_rate) {
  ISP_CHECK(estimated_rate_ > 0.0, "estimated instruction rate must be > 0");
}

void Monitor::begin_line(double estimated_rate_for_line) {
  if (estimated_rate_for_line > 0.0) {
    estimated_rate_ = estimated_rate_for_line;
  }
  // Rates differ across lines by design; only an intra-line decline is a
  // contention signal.
  decreasing_streak_ = 0;
  observed_rate_ = 0.0;
  has_window_ = false;
}

bool Monitor::observe(SimTime now, double instructions_cumulative) {
  if (!has_window_) {
    prev_time_ = now;
    prev_instructions_ = instructions_cumulative;
    has_window_ = true;
    return anomaly_;
  }
  const double dt = (now - prev_time_).value();
  if (dt < config_.min_window.value()) return anomaly_;
  const double di = instructions_cumulative - prev_instructions_;
  prev_time_ = now;
  prev_instructions_ = instructions_cumulative;
  if (dt <= 0.0) return anomaly_;

  const double rate = di / dt;
  // Condition (1): decreasing trend.
  if (observed_rate_ > 0.0 &&
      rate < observed_rate_ * (1.0 - config_.decrease_tolerance)) {
    ++decreasing_streak_;
  } else {
    decreasing_streak_ = 0;
  }
  prev_rate_ = observed_rate_;
  observed_rate_ = rate;

  // Condition (2): significantly below the estimate.
  const bool below =
      rate < estimated_rate_ * config_.below_estimate_fraction;
  anomaly_ = below || decreasing_streak_ >= config_.decreasing_windows;
  return anomaly_;
}

MigrationAdvice Monitor::advise(double instructions_remaining,
                                Seconds host_time_remaining,
                                Seconds data_movement,
                                Seconds regeneration) const {
  MigrationAdvice advice;
  const double rate = observed_rate_ > 0.0 ? observed_rate_ : estimated_rate_;
  advice.remaining_on_csd = Seconds{instructions_remaining / rate};
  advice.cost_of_migration =
      regeneration + data_movement + host_time_remaining;
  advice.migrate = anomaly_ &&
                   advice.remaining_on_csd > advice.cost_of_migration;
  return advice;
}

}  // namespace isp::runtime
