// Execution reports: everything a run can tell you afterwards.
//
// The benches reproduce the paper's figures from these records: end-to-end
// latency (Figures 2, 4, 5), per-line placements (the "identical region set"
// claim in §V), link traffic by purpose, migration counts and overheads, and
// status-update volume.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/units.hpp"
#include "fault/fault.hpp"
#include "flash/backend.hpp"
#include "interconnect/dma.hpp"
#include "ir/plan.hpp"

namespace isp::runtime {

struct LineRecord {
  std::uint32_t index = 0;
  std::string name;
  ir::Placement placement = ir::Placement::Host;  // where it actually ran
  SimTime start;
  SimTime end;
  Seconds compute;       // pure compute (after mode multiplier, contention)
  Seconds access;        // stored-data read time
  Seconds transfer_in;   // inter-line input movement over the link
  Seconds marshal;       // language-runtime boundary copies
  Seconds overhead;      // dispatch + call + instrumentation
  Bytes in_bytes;        // virtual input volume
  Bytes out_bytes;       // virtual output volume
  Bytes storage_bytes;   // stored data consumed
  double observed_rate = 0.0;  // instructions/s over the line (CSD lines)
  std::uint32_t faults = 0;    // injected faults attributed to this line
  Seconds fault_penalty;       // virtual time the line lost to fault handling
};

/// What the storage backend did while the engine drove it (dataset mount +
/// result write-back).  Deltas over the run, not device lifetime totals, so
/// memoised and repeated runs report identical activity.  `reclaim_time` is
/// the device-side stall the run was charged for backend-internal traffic
/// (GC relocations / ZNS copy-forward, metadata programs, erases) — only
/// non-zero when EngineOptions::drive_storage is on.
struct StorageActivity {
  bool driven = false;  // did the engine drive a backend this run?
  flash::BackendKind backend = flash::BackendKind::Ftl;
  std::uint64_t host_pages = 0;
  std::uint64_t reclaim_pages = 0;
  std::uint64_t meta_pages = 0;
  std::uint64_t resets = 0;
  std::uint64_t reclaim_events = 0;
  double write_amplification = 1.0;  // over this run's host pages
  Seconds reclaim_time;

  [[nodiscard]] double run_write_amplification() const {
    if (host_pages == 0) return 1.0;
    return static_cast<double>(host_pages + reclaim_pages + meta_pages) /
           static_cast<double>(host_pages);
  }
};

struct ExecutionReport {
  std::string program;
  Seconds total;            // end-to-end latency, including compile overhead
  Seconds compile_overhead; // code generation (Cython) latency
  std::vector<LineRecord> lines;

  std::uint32_t migrations = 0;
  Seconds migration_overhead;   // regeneration + live-state movement
  std::uint64_t status_updates = 0;
  std::uint32_t csd_calls = 0;  // call-queue invocations

  /// Whole-device power cycles survived during the run, and the virtual
  /// time they cost end to end: downtime + FTL remount (journal/checkpoint
  /// replay, OOB scan) + re-staging lost device-DRAM state.
  std::uint32_t power_losses = 0;
  Seconds recovery_overhead;

  interconnect::DmaStats dma;

  /// Storage-backend traffic this run generated (all zeros when the engine
  /// did not drive a backend).
  StorageActivity storage;

  /// Aggregate fault-injection outcome (all zeros on fault-free runs) and
  /// the per-episode log behind it (bounded; feeds the trace export).
  fault::FaultSummary faults;
  std::vector<fault::FaultRecord> fault_records;

  [[nodiscard]] Seconds compute_total() const;
  [[nodiscard]] Seconds access_total() const;
  [[nodiscard]] std::size_t lines_on_csd() const;

  /// Human-readable per-line timeline (for examples and debugging).
  [[nodiscard]] std::string to_string() const;

  /// Machine-readable export for downstream tooling (plotting, CI trend
  /// tracking).  Self-contained JSON object; no external dependencies.
  [[nodiscard]] std::string to_json() const;
};

}  // namespace isp::runtime
