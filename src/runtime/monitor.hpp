// Runtime monitoring and the migration decision (§III-D).
//
// The CSD's patched status-update code posts a progress record at the end of
// every chunk of every CSD line.  The monitor compares the observed
// instruction rate against the rate the sampling phase predicted and flags
// the two anomaly conditions the paper names:
//   (1) the instruction rate is decreasing, or
//   (2) the rate is significantly below the estimate.
// On an anomaly it re-estimates the remaining CSD time from the *measured*
// rate and compares against the full cost of moving the remaining work to
// the host (host compute + data movement + code regeneration).  Migration is
// recommended when the re-estimate loses.
#pragma once

#include <cstdint>
#include <vector>

#include "common/units.hpp"
#include "ir/plan.hpp"

namespace isp::runtime {

struct MonitorConfig {
  /// "Significantly below": observed rate under this fraction of estimate.
  double below_estimate_fraction = 0.8;
  /// Consecutive decreasing-rate observations that count as a trend.
  std::uint32_t decreasing_windows = 3;
  /// Minimum relative drop for a window to count as "decreasing" (noise
  /// floor so jitter does not trigger the trend detector).
  double decrease_tolerance = 0.05;
  /// Status updates closer together than this carry no rate signal (tiny
  /// lines finish in microseconds); such windows are skipped.
  Seconds min_window = Seconds{1e-3};
};

struct MigrationAdvice {
  bool migrate = false;
  Seconds remaining_on_csd;   // re-estimated from the measured rate
  Seconds cost_of_migration;  // regen + data movement + host compute
};

class Monitor {
 public:
  /// `estimated_rate` is the fallback instructions/second projection for CSD
  /// execution (total estimated instructions / total estimated device time);
  /// begin_line() replaces it with the current line's own projection, since
  /// lines legitimately run at different rates (parallelism, memory
  /// behaviour) and only a shortfall against the line's *own* estimate
  /// indicates contention.
  Monitor(MonitorConfig config, double estimated_rate);

  /// A new line starts on the CSD: reset the trend window and compare
  /// against this line's estimated rate (pass <= 0 to keep the previous).
  void begin_line(double estimated_rate_for_line);

  /// Feed one status update: cumulative instructions retired on the CSD and
  /// the device timestamp.  Returns true if an anomaly is active.
  bool observe(SimTime now, double instructions_cumulative);

  /// Price the migration decision given the remaining work.
  /// `instructions_remaining` covers the rest of the current line plus every
  /// later CSD line; the cost terms come from the plan estimates.
  [[nodiscard]] MigrationAdvice advise(double instructions_remaining,
                                       Seconds host_time_remaining,
                                       Seconds data_movement,
                                       Seconds regeneration) const;

  [[nodiscard]] double observed_rate() const { return observed_rate_; }
  [[nodiscard]] double estimated_rate() const { return estimated_rate_; }
  [[nodiscard]] bool anomaly() const { return anomaly_; }

  /// Device-initiated path (§III-D case 1): the CSD signalled through the
  /// command pages that it must serve high-priority work; the host reacts
  /// immediately rather than waiting for the rate detectors.
  void raise_high_priority() { anomaly_ = true; }

  /// A status update was dropped before the monitor saw it (fault
  /// injection, Site::StatusLoss).  Cumulative instruction counts make the
  /// stream self-healing — the next update covers the gap — so the monitor
  /// only counts the loss for the report.
  void note_lost_update() { ++lost_updates_; }
  [[nodiscard]] std::uint64_t lost_updates() const { return lost_updates_; }

 private:
  MonitorConfig config_;
  double estimated_rate_;
  double observed_rate_ = 0.0;
  double prev_rate_ = 0.0;
  std::uint32_t decreasing_streak_ = 0;
  bool anomaly_ = false;
  SimTime prev_time_;
  double prev_instructions_ = 0.0;
  bool has_window_ = false;
  std::uint64_t lost_updates_ = 0;
};

}  // namespace isp::runtime
