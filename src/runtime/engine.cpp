#include "runtime/engine.hpp"

#include <algorithm>
#include <set>
#include <utility>

#include "common/error.hpp"
#include "common/log.hpp"
#include "obs/metrics.hpp"

namespace isp::runtime {

namespace {

/// Fold a finished run into the observability registry.  Pure bookkeeping
/// after report assembly: nothing here touches virtual time, so an
/// instrumented run's report is bit-for-bit identical to an uninstrumented
/// one (asserted by serve_test and bench/obs_overhead).
void record_run_metrics(obs::MetricsRegistry& m, const ExecutionReport& report,
                        std::uint64_t monitor_lost_updates,
                        const flash::StorageBackend& storage) {
  m.counter("engine.runs").add();
  for (const auto& line : report.lines) {
    m.counter(line.placement == ir::Placement::Csd ? "engine.lines.csd"
                                                   : "engine.lines.host")
        .add();
    m.histogram("engine.line_compute_s").record(line.compute);
  }
  m.counter("engine.migrations").add(report.migrations);
  m.counter("engine.csd_calls").add(report.csd_calls);
  m.counter("engine.status_updates").add(report.status_updates);
  m.counter("engine.power_losses").add(report.power_losses);
  m.counter("monitor.lost_updates").add(monitor_lost_updates);
  m.histogram("engine.total_s").record(report.total);
  if (report.migrations > 0) {
    m.histogram("engine.migration_overhead_s")
        .record(report.migration_overhead);
  }
  if (report.power_losses > 0) {
    m.histogram("engine.recovery_overhead_s").record(report.recovery_overhead);
  }
  for (std::size_t s = 0; s < fault::kSiteCount; ++s) {
    if (report.faults.injected[s] == 0 && report.faults.recovered[s] == 0 &&
        report.faults.exhausted[s] == 0) {
      continue;
    }
    const auto site = std::string(
        fault::to_string(static_cast<fault::Site>(s)));
    m.counter("fault.injected." + site).add(report.faults.injected[s]);
    m.counter("fault.recovered." + site).add(report.faults.recovered[s]);
    m.counter("fault.exhausted." + site).add(report.faults.exhausted[s]);
  }
  m.counter("fault.degradations").add(report.faults.degradations);
  if (report.faults.penalty.value() > 0.0) {
    m.histogram("fault.penalty_s").record(report.faults.penalty);
  }
  if (report.storage.driven && report.storage.reclaim_time.value() > 0.0) {
    m.histogram("engine.reclaim_stall_s").record(report.storage.reclaim_time);
  }
  // Backend stats only when the run actually drove the backend: an idle
  // backend is pristine state, and recording its (kind-specific) zero
  // counters would make a persist-free run's metric schema depend on
  // whether the device happens to be FTL or ZNS.
  if (report.storage.driven) storage.record_metrics(m);
}

using interconnect::TransferKind;

mem::Location side_memory(ir::Placement placement) {
  return placement == ir::Placement::Csd ? mem::Location::DeviceDram
                                         : mem::Location::HostDram;
}

/// Objects produced by some line and never consumed afterwards: the
/// program's results, which must end up in host memory.
std::set<std::string> final_outputs(const ir::Program& program) {
  std::set<std::string> produced;
  for (const auto& line : program.lines()) {
    for (const auto& out : line.outputs) produced.insert(out);
  }
  for (const auto& line : program.lines()) {
    for (const auto& in : line.inputs) produced.erase(in);
  }
  return produced;
}

}  // namespace

ExecutionReport Engine::run(const ir::Program& program, const ir::Plan& plan,
                            const codegen::LoweredProgram& lowered,
                            const EngineOptions& options,
                            ir::ObjectStore* external_store) {
  ISP_CHECK(plan.placement.size() == program.line_count(),
            "plan does not match program");
  ISP_CHECK(lowered.lines.size() == program.line_count(),
            "lowered program does not match program");
  const bool have_estimates =
      plan.estimate.size() == program.line_count();
  ISP_CHECK(options.run_kernels || have_estimates,
            "timing-only replay requires plan estimates for output sizes");

  system_->reset_stats();
  auto& host = system_->host_cpu();
  auto& csd = system_->csd_device();
  auto& link = system_->link();
  auto& dma = system_->dma();
  auto& flash = csd.flash_array();

  ir::ObjectStore local_store;
  if (external_store == nullptr) {
    local_store = program.make_store();
    external_store = &local_store;
  }
  ir::ObjectStore& store = *external_store;

  // Names of storage-backed datasets: re-readable from flash on migration.
  std::set<std::string> dataset_names;
  for (const auto& d : program.datasets()) {
    if (d.object.starts_on_storage()) dataset_names.insert(d.object.name);
  }

  ExecutionReport report;
  report.program = program.name();
  report.lines.reserve(program.line_count());

  // Local availability schedules: the engine owns the timeline of this run,
  // and the copies keep the schedules' query cursors private to it (the
  // cursor cache makes a schedule non-thread-safe to share; see
  // sim/availability.hpp and the run_batch contract in exec/pool.hpp).
  sim::AvailabilitySchedule cse_schedule = options.cse_availability;
  const sim::AvailabilitySchedule host_schedule = options.host_availability;
  bool contention_fired = false;

  // Progress for the contention trigger: chunks over all planned CSD lines.
  std::uint64_t csd_chunks_total = 0;
  for (std::size_t i = 0; i < program.line_count(); ++i) {
    if (plan.placement[i] == ir::Placement::Csd) {
      csd_chunks_total += program.lines()[i].chunks;
    }
  }
  std::uint64_t csd_chunks_done = 0;

  // Monitoring needs a predicted instruction rate from the sampling phase.
  std::optional<Monitor> monitor;
  if (options.monitoring && have_estimates && plan.any_on_csd()) {
    double est_instr = 0.0;
    double est_time = 0.0;
    for (std::size_t i = 0; i < program.line_count(); ++i) {
      if (plan.placement[i] == ir::Placement::Csd) {
        est_instr += plan.estimate[i].instructions;
        est_time += plan.estimate[i].ct_device.value();
      }
    }
    if (est_instr > 0.0 && est_time > 0.0) {
      monitor.emplace(options.monitor, est_instr / est_time);
    }
  }
  double csd_instructions_cum = 0.0;

  SimTime t = SimTime::zero();

  // Code generation happens before execution starts (§III-C(d)).
  t += lowered.compile_latency;
  report.compile_overhead = lowered.compile_latency;

  // Distribute the generated CSD binary into device memory.
  bool code_distributed = lowered.csd_code_image.count() == 0;

  bool migrated = false;        // all remaining CSD lines forced to host
  bool migrate_pending = false; // decided; takes effect at end of line

  const auto bar_penalty = system_->config().bar_access_penalty;

  // Fault injection: one deterministic plan per run, wired into the DMA
  // engine and applied inline at the flash/CSE/status sites below.  With
  // every site at rate zero nothing is created or attached, so fault-free
  // runs take exactly the seed code paths (bit-for-bit identical timing).
  std::optional<fault::Injector> injector_storage;
  fault::Injector* injector = nullptr;
  if (options.fault.enabled()) {
    injector_storage.emplace(options.fault);
    injector = &*injector_storage;
  }
  dma.set_injector(injector);
  struct DmaInjectorGuard {
    interconnect::DmaEngine* dma;
    ~DmaInjectorGuard() { dma->set_injector(nullptr); }
  } dma_guard{&dma};
  const fault::FaultConfig& fcfg = options.fault;

  // Flash IO with injection at the FlashReadEcc / FlashProgram sites: each
  // faulted attempt re-reads (re-programs) a page and backs off; exhausted
  // retries escalate to RAID reconstruction / block retirement.  Either way
  // the data survives — faults here cost time, never correctness.
  auto faulted_flash_read = [&](SimTime t0, Bytes bytes, LineRecord* rec) {
    SimTime done = flash.read_finish(t0, bytes);
    if (injector != nullptr) {
      const auto op =
          injector->attempt(fault::Site::FlashReadEcc, t0,
                            flash.timing().page_read, fcfg.ecc_recovery);
      done += op.penalty;
      if (rec != nullptr) {
        rec->faults += op.faults;
        rec->fault_penalty += op.penalty;
      }
    }
    return done;
  };
  auto faulted_flash_write = [&](SimTime t0, Bytes bytes, LineRecord* rec) {
    SimTime done = flash.write_finish(t0, bytes);
    if (injector != nullptr) {
      const auto op =
          injector->attempt(fault::Site::FlashProgram, t0,
                            flash.timing().page_program, fcfg.block_retire);
      done += op.penalty;
      if (rec != nullptr) {
        rec->faults += op.faults;
        rec->fault_penalty += op.penalty;
      }
    }
    return done;
  };

  // ---- Storage backend -------------------------------------------------
  // Armed when the PowerLoss site has a rate (crashes need durable metadata
  // to recover from) or when options.drive_storage asks for it explicitly:
  // the engine then drives the device's storage backend for real (datasets
  // mounted as logical writes, result write-back through the mapping
  // machinery), and every line start / CSD chunk boundary becomes a crash
  // opportunity when armed.  With both off none of this executes and the
  // run is bit-for-bit identical to the fault-free engine, backend stats
  // included.
  const bool power_loss_on =
      injector != nullptr && fcfg.rate(fault::Site::PowerLoss) > 0.0 &&
      csd.storage().journaling();
  const bool storage_on = power_loss_on || options.drive_storage;
  flash::StorageBackend* backend = storage_on ? &csd.storage() : nullptr;
  const flash::StorageCounters storage_base =
      backend != nullptr ? backend->counters() : flash::StorageCounters{};
  std::uint64_t wb_cursor = 0;
  // Write-back traffic walks the logical space with a wrapping cursor, so
  // it is naturally extent-shaped: whole contiguous runs go through the
  // backend's span fast path (bit-for-bit the scalar loop by the
  // StorageBackend contract; options.span_io = false keeps the scalar loop
  // for differential testing).
  auto backend_write_pages = [&](std::uint64_t pages) {
    const std::uint64_t logical = backend->logical_pages();
    if (options.span_io) {
      while (pages > 0) {
        const flash::Lpn first = wb_cursor % logical;
        const std::uint64_t run =
            std::min<std::uint64_t>(pages, logical - first);
        backend->write_span(first, run);
        wb_cursor += run;
        pages -= run;
      }
    } else {
      for (std::uint64_t p = 0; p < pages; ++p) {
        backend->write(wb_cursor % logical);
        ++wb_cursor;
      }
    }
  };
  if (backend != nullptr && backend->mounted()) {
    // Mount the program's storage datasets: their pages become live
    // mappings, charged as host writes (journal/checkpoint or zone-append
    // traffic shows up in the backend stats and write amplification exactly
    // like data does).
    const auto page = flash.geometry().page_bytes.count();
    for (const auto& name : dataset_names) {
      const auto& obj = store.at(name);
      const std::uint64_t pages =
          (obj.virtual_bytes.count() + page - 1) / page;
      backend_write_pages(pages);
    }
  }
  // In drive_storage mode the backend-internal traffic a write-back
  // triggers (reclaim copies, metadata programs, erases) stalls the device
  // for real.  Serial NAND conversion, matching the remount-time model.
  auto reclaim_stall = [&](const flash::StorageCounters& before) {
    const auto after = backend->counters();
    const std::uint64_t internal =
        (after.reclaim_pages - before.reclaim_pages) +
        (after.meta_pages - before.meta_pages);
    const std::uint64_t resets = after.resets - before.resets;
    return flash.timing().page_program * static_cast<double>(internal) +
           flash.timing().block_erase * static_cast<double>(resets);
  };
  // One whole-device power cycle: NVMe reset (in-flight commands abort and
  // requeue), CSE/firmware state cleared, FTL crash + remount.  Device DRAM
  // does not survive, so the code image must be redistributed and device-
  // resident objects fall back to their host-side shadows (shared mutable
  // memory keeps the host copy canonical) — consumers re-transfer, they
  // never recompute.
  auto apply_power_loss = [&](SimTime& tt, LineRecord* rec) {
    const auto outcome = csd.power_cycle();
    const Seconds downtime = fcfg.power_cycle + outcome.remount_time;
    injector->note_outcome(fault::Site::PowerLoss, tt, 1, downtime, false);
    ++report.power_losses;
    if (rec != nullptr) {
      rec->faults += 1;
      rec->fault_penalty += downtime;
    }
    tt += downtime;
    code_distributed = lowered.csd_code_image.count() == 0;
    // Device DRAM contents are gone: re-home every device-resident object.
    for (const auto& ln : program.lines()) {
      for (const auto& out : ln.outputs) {
        if (!store.contains(out)) continue;
        auto& obj = store.at(out);
        if (obj.location == mem::Location::DeviceDram) {
          obj.location = mem::Location::HostDram;
          obj.bar_remote = false;
        }
      }
    }
    for (const auto& name : dataset_names) {
      auto& obj = store.at(name);
      if (obj.location == mem::Location::DeviceDram) {
        // Storage-backed data needs no shadow: it re-reads from flash.
        obj.location = mem::Location::Storage;
      }
    }
    return outcome;
  };

  for (std::size_t i = 0; i < program.line_count(); ++i) {
    const auto& line = program.lines()[i];
    const auto& low = lowered.lines[i];
    // Mutable: a mid-line migration re-homes the rest of the line.
    ir::Placement placement = migrated ? ir::Placement::Host : low.placement;
    mem::Location local = side_memory(placement);

    LineRecord rec;
    rec.index = static_cast<std::uint32_t>(i);
    rec.name = line.name;
    rec.placement = placement;
    rec.start = t;

    // Every line start is a crash opportunity (host lines included: the
    // whole device power-cycles and the next storage access waits for it).
    if (power_loss_on && injector->draw(fault::Site::PowerLoss)) {
      const SimTime crash_start = t;
      apply_power_loss(t, &rec);
      report.recovery_overhead += t - crash_start;
    }

    // ---- 1. Input residency -------------------------------------------
    Bytes in_bytes{0};
    for (const auto& name : line.inputs) {
      auto& obj = store.at(name);
      in_bytes += obj.virtual_bytes;
      if (obj.location == mem::Location::Storage) {
        rec.storage_bytes += obj.virtual_bytes;
        if (placement == ir::Placement::Csd) {
          const SimTime done = faulted_flash_read(t, obj.virtual_bytes, &rec);
          flash.note_read(obj.virtual_bytes);
          rec.access += done - t;
          t = done;
        } else {
          // Host read streams through the device: NAND and link pipeline;
          // the slower stage bounds completion.
          const SimTime via_flash =
              faulted_flash_read(t, obj.virtual_bytes, &rec);
          const SimTime via_link =
              dma.transfer(t, obj.virtual_bytes, TransferKind::RawInput);
          flash.note_read(obj.virtual_bytes);
          const SimTime done = std::max(via_flash, via_link);
          rec.access += done - t;
          t = done;
        }
        obj.location = local;  // cached copy near the consumer
      } else if (obj.location != local) {
        const bool to_host = (local == mem::Location::HostDram);
        const auto kind =
            obj.bar_remote ? TransferKind::MigrationState
            : (to_host ? TransferKind::ProcessedOutput
                       : TransferKind::Intermediate);
        Seconds base = link.transfer_seconds(obj.virtual_bytes);
        if (obj.bar_remote) base = base * bar_penalty;
        SimTime done = link.availability().finish_time(t, base);
        // Stats only when fault-free; under injection the DMA path may
        // stall past the analytic bound, and the slower estimate wins.
        const SimTime via_dma = dma.transfer(t, obj.virtual_bytes, kind);
        if (injector != nullptr) done = std::max(done, via_dma);
        rec.transfer_in += done - t;
        t = done;
        obj.location = local;
        obj.bar_remote = false;
      }
    }
    rec.in_bytes = in_bytes;

    // ---- 2. Control ----------------------------------------------------
    if (placement == ir::Placement::Csd) {
      if (!code_distributed) {
        const SimTime done =
            dma.transfer(t, lowered.csd_code_image, TransferKind::CodeImage);
        rec.overhead += done - t;
        t = done;
        code_distributed = true;
      }
      if (low.enters_csd_group && !migrated) {
        // Enqueue on the call queue; the CSE fetches when free.
        ++report.csd_calls;
        csd.call_queue().submit(nvme::CallEntry{
            .function_id = report.csd_calls,
            .first_line = static_cast<std::uint32_t>(i),
            .arg_block = 0});
        (void)csd.call_queue().fetch();  // firmware picks it up immediately
        const Seconds call = csd.call_overhead();
        rec.overhead += call;
        t += call;
      }
    }
    const Seconds dispatch = options.overhead.dispatch_overhead(lowered.mode);
    rec.overhead += dispatch;
    t += dispatch;

    // ---- 3. Marshalling --------------------------------------------------
    if (low.marshalling) {
      const Seconds marshal = in_bytes / options.overhead.marshal_bandwidth;
      rec.marshal += marshal;
      t += marshal;
    }

    // ---- 4. Compute ------------------------------------------------------
    const double n_elems = line.elems_for(in_bytes);
    const Seconds work_single =
        host.work_seconds(line.cost.cycles_for(n_elems)) *
        options.overhead.compute_multiplier(lowered.mode);
    const double instructions = line.cost.instructions_for(n_elems);

    bool aborted_mid_line = false;  // migration broke this line's CSD run
    double line_frac_left = 0.0;    // fraction of the line the host resumes
    if (placement == ir::Placement::Host) {
      const Seconds wall = host.compute_seconds(work_single, line.host_threads);
      const SimTime done = host_schedule.finish_time(t, wall);
      ISP_CHECK(done < SimTime::infinity(),
                "host availability starves line '" << line.name << "'");
      rec.compute += done - t;
      t = done;
    } else {
      if (monitor && have_estimates &&
          plan.estimate[i].ct_device.value() > 0.0) {
        monitor->begin_line(plan.estimate[i].instructions /
                            plan.estimate[i].ct_device.value());
      }
      // In-order CSE cores stall once the working set outgrows the device
      // caches; stalls stretch time without retiring instructions.
      auto& cse = csd.cse();
      const Seconds wall_full =
          cse.compute_seconds(work_single, line.csd_threads) *
          line.cost.csd_stall_factor(n_elems);
      const Seconds chunk_wall = wall_full / static_cast<double>(line.chunks);
      const double chunk_instr =
          instructions / static_cast<double>(line.chunks);
      const double chunk_cycles =
          chunk_wall.value() * cse.config().clock.value();
      const bool post_status = low.status_updates && options.monitoring;
      const SimTime compute_start = t;
      std::uint32_t crashes_this_line = 0;
      std::uint32_t c = 0;
      while (c < line.chunks) {
        // Every chunk boundary is a crash opportunity.  The device power-
        // cycles; the engine restarts the offloaded function from its last
        // completed chunk when the status stream recorded progress, or from
        // the top of the line otherwise — and if crashes keep coming, the
        // degradation ladder's last rung pulls the line back to the host.
        if (power_loss_on && crashes_this_line < fcfg.retry.max_attempts &&
            injector->draw(fault::Site::PowerLoss)) {
          ++crashes_this_line;
          const SimTime crash_start = t;
          apply_power_loss(t, &rec);
          if (crashes_this_line >= fcfg.retry.max_attempts &&
              options.migration) {
            // The device keeps browning out: stop re-offloading this line.
            injector->note_degradation();
            aborted_mid_line = true;
            line_frac_left = static_cast<double>(line.chunks - c) /
                             static_cast<double>(line.chunks);
            report.recovery_overhead += t - crash_start;
            break;
          }
          if (!post_status) c = 0;  // no durable progress record: from the top
          // Re-stage what the restarted function needs: the code image and
          // the unprocessed tail of this line's inputs (datasets re-read
          // from flash, intermediates re-transferred from the host shadow),
          // then re-invoke through the call queue.
          if (!code_distributed) {
            const SimTime done = dma.transfer(t, lowered.csd_code_image,
                                              TransferKind::CodeImage);
            rec.overhead += done - t;
            t = done;
            code_distributed = true;
          }
          const double frac = static_cast<double>(line.chunks - c) /
                              static_cast<double>(line.chunks);
          for (const auto& name : line.inputs) {
            auto& obj = store.at(name);
            if (obj.location == mem::Location::DeviceDram) continue;
            const Bytes tail{static_cast<std::uint64_t>(
                obj.virtual_bytes.as_double() * frac)};
            if (obj.location == mem::Location::Storage ||
                dataset_names.count(name) > 0) {
              const SimTime done = faulted_flash_read(t, tail, &rec);
              flash.note_read(tail);
              rec.access += done - t;
              t = done;
            } else {
              const SimTime done =
                  dma.transfer(t, tail, TransferKind::Intermediate);
              rec.transfer_in += done - t;
              t = done;
            }
            obj.location = mem::Location::DeviceDram;
            obj.bar_remote = false;
          }
          const Seconds call = csd.call_overhead();
          rec.overhead += call;
          t += call;
          report.recovery_overhead += t - crash_start;
        }
        if (injector != nullptr) {
          // CSE core crash mid-chunk: a crashed core restarts (core reset
          // plus the chunk's lost progress, half a chunk on average) under
          // the bounded retry policy.  Exhausted retries mean the core will
          // not hold this line — abandon the CSD run at this chunk boundary
          // and fall through to the migration machinery below, which pulls
          // the unprocessed fraction back to the host (degradation ladder,
          // final rung: a fully-faulted device degrades to no-ISP).
          const auto op = injector->attempt(
              fault::Site::CseCrash, t, fcfg.cse_restart + chunk_wall * 0.5);
          if (op.faults > 0) {
            rec.faults += op.faults;
            rec.fault_penalty += op.penalty;
            t += op.penalty;
          }
          if (op.exhausted && options.migration) {
            injector->note_degradation();
            aborted_mid_line = true;
            line_frac_left = static_cast<double>(line.chunks - c) /
                             static_cast<double>(line.chunks);
            break;
          }
        }
        const SimTime done = cse_schedule.finish_time(t, chunk_wall);
        ISP_CHECK(done < SimTime::infinity(),
                  "CSE availability starves line '" << line.name << "'");
        t = done;
        csd_instructions_cum += chunk_instr;
        cse.retire(chunk_instr, chunk_cycles);
        ++csd_chunks_done;

        // Patched status-update code (§III-C(b)) — ActivePy instrumentation,
        // absent from conventional static frameworks (monitoring off).
        bool update_lost = false;
        if (post_status) {
          update_lost = injector != nullptr &&
                        injector->lost(fault::Site::StatusLoss, t);
          if (update_lost) {
            // Dropped on its way to the host.  The post cost was already
            // paid, and cumulative instruction counts make the stream
            // self-healing: the next update covers the gap.
            rec.faults += 1;
            if (monitor) monitor->note_lost_update();
          } else {
            csd.status_queue().post(nvme::StatusEntry{
                .line = static_cast<std::uint32_t>(i),
                .chunk = c,
                .chunks_total = line.chunks,
                .instructions_retired = csd_instructions_cum,
                .timestamp = t,
                .high_priority_request = false});
            ++report.status_updates;
          }
          constexpr auto kStatusCost = Seconds{2e-7};
          rec.overhead += kStatusCost;
          t += kStatusCost;
        }

        // Contention trigger (Figure 5 methodology).
        if (options.contention.enabled && !contention_fired &&
            csd_chunks_total > 0 &&
            static_cast<double>(csd_chunks_done) /
                    static_cast<double>(csd_chunks_total) >=
                options.contention.at_csd_progress) {
          contention_fired = true;
          cse_schedule.add_step(t, options.contention.availability);
          if (monitor && options.contention.availability <= 0.15) {
            // The device itself raises a high-priority request when it is
            // about to be starved (§III-D case 1).
            monitor->raise_high_priority();
          }
        }

        // Feed the monitor and evaluate migration.  Two options exist at a
        // status update: abort the current line at this chunk boundary and
        // re-run it from scratch on the host (lines are pure single-entry-
        // single-exit regions, so partial work is simply discarded), or —
        // when the line just finished — migrate between lines.
        if (monitor && low.status_updates && !update_lost) {
          const bool anomaly = monitor->observe(t, csd_instructions_cum);
          if (anomaly && options.migration && !migrated && !migrate_pending) {
            // Work strictly after this line, common to both options.
            double instr_rem = 0.0;
            Seconds host_rem;
            Seconds movement;
            for (std::size_t j = i + 1; j < program.line_count(); ++j) {
              if (plan.placement[j] != ir::Placement::Csd) continue;
              instr_rem += plan.estimate[j].instructions;
              host_rem += plan.estimate[j].ct_host;
              movement += plan.estimate[j].storage_in /
                          system_->storage_to_host_bandwidth();
            }
            movement +=
                options.migration_state_bytes / link.effective_bandwidth();

            const std::uint32_t chunks_left = line.chunks - (c + 1);
            if (chunks_left > 0) {
              // Break option: stop this line at the chunk boundary and let
              // the host resume the remaining fraction — per-chunk progress
              // and the line's operands live in shared mutable memory
              // (§III-C(c)), so only the unprocessed tail moves.
              const double f = static_cast<double>(chunks_left) /
                               static_cast<double>(line.chunks);
              instr_rem += plan.estimate[i].instructions * f;
              host_rem += plan.estimate[i].ct_host * f;
              movement += ((plan.estimate[i].storage_in +
                            plan.estimate[i].d_in) /
                           link.effective_bandwidth()) *
                          f;
            } else if (i + 1 < program.line_count() &&
                       plan.placement[i + 1] == ir::Placement::Csd) {
              movement += plan.estimate[i + 1].d_in /
                          link.effective_bandwidth();
            }

            if (instr_rem > 0.0) {
              const auto advice =
                  monitor->advise(instr_rem, host_rem, movement,
                                  options.overhead.compile_latency);
              if (advice.migrate) {
                migrate_pending = true;
                if (chunks_left > 0) {
                  aborted_mid_line = true;
                  line_frac_left = static_cast<double>(chunks_left) /
                                   static_cast<double>(line.chunks);
                }
                ISP_LOG_DEBUG("migration decided during line '"
                              << line.name << "' (csd remaining "
                              << advice.remaining_on_csd.value()
                              << " s vs migration cost "
                              << advice.cost_of_migration.value() << " s)");
              }
            }
          }
        }
        if (aborted_mid_line) break;
        ++c;
      }
      const Seconds elapsed = t - compute_start;
      rec.compute += elapsed;
      if (elapsed.value() > 0.0) {
        rec.observed_rate = instructions / elapsed.value();
      }

      if (aborted_mid_line) {
        // §III-D: break the CSD code at the Python-line breakpoint.  Live
        // state — per-chunk progress and the line's operands — is in shared
        // mutable memory, so the host resumes the unprocessed fraction after
        // the runtime regenerates host machine code and moves the live data.
        migrated = true;
        migrate_pending = false;
        ++report.migrations;
        const SimTime migration_start = t;
        t += options.overhead.compile_latency;  // regenerate host binary
        t = dma.transfer(t, options.migration_state_bytes,
                         TransferKind::MigrationState);
        // Earlier device-resident products are now remote live data.
        for (std::size_t j = 0; j < i; ++j) {
          for (const auto& out : program.lines()[j].outputs) {
            auto& obj = store.at(out);
            if (obj.location == mem::Location::DeviceDram) {
              obj.bar_remote = true;
            }
          }
        }
        // The unprocessed tail of this line's inputs reaches the host:
        // storage-resident data is simply re-read over NVMe, while live
        // intermediates come through the BAR window at a penalty.
        for (const auto& name : line.inputs) {
          auto& obj = store.at(name);
          if (obj.location != mem::Location::DeviceDram) continue;
          const Bytes tail{static_cast<std::uint64_t>(
              obj.virtual_bytes.as_double() * line_frac_left)};
          if (dataset_names.count(name) > 0) {
            const SimTime via_flash = faulted_flash_read(t, tail, &rec);
            const SimTime via_link =
                dma.transfer(t, tail, TransferKind::RawInput);
            flash.note_read(tail);
            const SimTime done = std::max(via_flash, via_link);
            rec.access += done - t;
            t = done;
          } else {
            const Seconds base = link.transfer_seconds(tail) * bar_penalty;
            SimTime done = link.availability().finish_time(t, base);
            const SimTime via_dma =
                dma.transfer(t, tail, TransferKind::MigrationState);
            if (injector != nullptr) done = std::max(done, via_dma);
            rec.transfer_in += done - t;
            t = done;
          }
          obj.location = mem::Location::HostDram;
          obj.bar_remote = false;
        }
        report.migration_overhead += t - migration_start;
        ISP_LOG_INFO("broke '" << line.name
                               << "' on the CSD; host resumes the remaining "
                               << line_frac_left * 100.0 << "%");

        // Resume the remaining fraction of the line on the host.
        placement = ir::Placement::Host;
        local = side_memory(placement);
        rec.placement = placement;
        const Seconds wall =
            host.compute_seconds(work_single * line_frac_left,
                                 line.host_threads);
        const SimTime done = host_schedule.finish_time(t, wall);
        rec.compute += done - t;
        t = done;
      }
    }

    // ---- 5. Kernel + outputs ---------------------------------------------
    if (options.run_kernels && line.kernel) {
      ir::KernelCtx ctx(store, line.inputs, line.outputs,
                        program.virtual_scale());
      line.kernel(ctx);
      for (const auto& name : line.outputs) {
        auto& obj = store.at(name);
        obj.sync_virtual_size(program.virtual_scale());
        obj.location = local;
        rec.out_bytes += obj.virtual_bytes;
      }
    } else {
      for (const auto& name : line.outputs) {
        mem::DataObject obj;
        obj.name = name;
        obj.location = local;
        // Timing-only replay: output volumes come from the estimates.
        obj.virtual_bytes = plan.estimate[i].d_out;
        rec.out_bytes += obj.virtual_bytes;
        store.emplace(std::move(obj));
      }
    }

    // Marshalling of produced outputs back through the language boundary.
    if (low.marshalling && rec.out_bytes.count() > 0) {
      const Seconds marshal =
          rec.out_bytes / options.overhead.marshal_bandwidth;
      rec.marshal += marshal;
      t += marshal;
    }

    // Result write-back: outputs persisted to flash.  A CSD line programs
    // the NAND directly; a host line's results cross the link first (the
    // two stages pipeline, so the slower bounds completion).
    if (line.writes_storage && rec.out_bytes.count() > 0) {
      if (placement == ir::Placement::Csd) {
        const SimTime done = faulted_flash_write(t, rec.out_bytes, &rec);
        flash.note_write(rec.out_bytes);
        rec.access += done - t;
        t = done;
      } else {
        const SimTime via_link =
            dma.transfer(t, rec.out_bytes, TransferKind::Intermediate);
        const SimTime via_flash = faulted_flash_write(t, rec.out_bytes, &rec);
        flash.note_write(rec.out_bytes);
        const SimTime done = std::max(via_link, via_flash);
        rec.access += done - t;
        t = done;
      }
      if (backend != nullptr && backend->mounted()) {
        // Persisted pages go through the backend's mapping machinery: FTL
        // journal updates or ZNS zone appends, either of which can trigger
        // reclaim.  In drive_storage mode that internal traffic stalls the
        // device here, at the write-back that caused it.
        const auto page = flash.geometry().page_bytes.count();
        const std::uint64_t pages = (rec.out_bytes.count() + page - 1) / page;
        const auto before = backend->counters();
        backend_write_pages(pages);
        if (options.drive_storage) {
          const Seconds stall = reclaim_stall(before);
          if (stall.value() > 0.0) {
            rec.access += stall;
            report.storage.reclaim_time += stall;
            t += stall;
          }
        }
      }
    }

    // ---- Migration at the line boundary (§III-D) --------------------------
    if (migrate_pending && !migrated) {
      bool csd_work_remains = false;
      for (std::size_t j = i + 1; j < program.line_count(); ++j) {
        if (plan.placement[j] == ir::Placement::Csd) {
          csd_work_remains = true;
          break;
        }
      }
      if (csd_work_remains) {
        migrated = true;
        ++report.migrations;
        const SimTime migration_start = t;
        // Regenerate host machine code for the remaining lines.
        t += options.overhead.compile_latency;
        // Save live variables through the shared memory abstraction.
        const SimTime done = dma.transfer(t, options.migration_state_bytes,
                                          TransferKind::MigrationState);
        t = done;
        // Objects the CSD produced stay in device DRAM; the host reaches
        // them through the BAR at a penalty when it consumes them.
        for (std::size_t j = 0; j <= i; ++j) {
          for (const auto& out : program.lines()[j].outputs) {
            auto& obj = store.at(out);
            if (obj.location == mem::Location::DeviceDram) {
              obj.bar_remote = true;
            }
          }
        }
        report.migration_overhead += t - migration_start;
        ISP_LOG_INFO("migrated remaining lines to host after '" << line.name
                                                                << "'");
      }
      migrate_pending = false;
    }

    rec.end = t;
    report.lines.push_back(std::move(rec));
  }

  // Program results must reach host memory.
  for (const auto& name : final_outputs(program)) {
    if (!store.contains(name)) continue;
    auto& obj = store.at(name);
    if (obj.location == mem::Location::DeviceDram) {
      Seconds base = link.transfer_seconds(obj.virtual_bytes);
      if (obj.bar_remote) base = base * bar_penalty;
      SimTime done = link.availability().finish_time(t, base);
      const SimTime via_dma =
          dma.transfer(t, obj.virtual_bytes, TransferKind::ProcessedOutput);
      if (injector != nullptr) done = std::max(done, via_dma);
      t = done;
      obj.location = mem::Location::HostDram;
      obj.bar_remote = false;
    }
  }

  report.total = t - SimTime::zero();
  report.dma = dma.stats();
  if (injector != nullptr) {
    report.faults = injector->summary();
    report.fault_records = injector->records();
  }
  if (backend != nullptr) {
    // Per-run deltas: what THIS run pushed through the backend, so memoised
    // replays of the same dispatch report identical activity regardless of
    // device history.
    const auto after = backend->counters();
    report.storage.driven = true;
    report.storage.backend = backend->kind();
    report.storage.host_pages = after.host_pages - storage_base.host_pages;
    report.storage.reclaim_pages =
        after.reclaim_pages - storage_base.reclaim_pages;
    report.storage.meta_pages = after.meta_pages - storage_base.meta_pages;
    report.storage.resets = after.resets - storage_base.resets;
    report.storage.reclaim_events =
        after.reclaim_events - storage_base.reclaim_events;
    report.storage.write_amplification =
        report.storage.run_write_amplification();
  }
  if (options.metrics != nullptr) {
    record_run_metrics(*options.metrics, report,
                       monitor ? monitor->lost_updates() : 0, csd.storage());
  }
  return report;
}

ExecutionReport run_program(system::SystemModel& system,
                            const ir::Program& program, const ir::Plan& plan,
                            codegen::ExecMode mode,
                            const EngineOptions& options,
                            ir::ObjectStore* store) {
  const auto lowered = codegen::lower(program, plan, system.address_space(),
                                      mode, {}, options.overhead);
  Engine engine(system);
  return engine.run(program, plan, lowered, options, store);
}

}  // namespace isp::runtime
