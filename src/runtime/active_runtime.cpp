#include "runtime/active_runtime.hpp"

#include <utility>

#include "common/log.hpp"

namespace isp::runtime {

RunResult ActiveRuntime::run(const ir::Program& program,
                             const RunConfig& config) {
  program.validate();
  RunResult result;

  // Plan reuse: a later dynamic instance of the same program skips the
  // sampling phase and executes under the cached decisions.
  if (config.reuse_plan != nullptr) {
    ISP_CHECK(config.reuse_plan->placement.size() == program.line_count(),
              "cached plan does not match program");
    result.plan = *config.reuse_plan;
    result.report = run_program(*system_, program, result.plan, config.mode,
                                config.engine);
    return result;
  }

  // Phase 1: sampling (§III-A).
  profile::Sampler sampler(*system_, config.sampler);
  result.samples = sampler.run(program);
  result.sampling_overhead = result.samples.overhead;

  // Phase 2: estimate device cost factor and extrapolate per-line metrics.
  const auto factor =
      config.factor_source == DeviceFactorSource::PerformanceCounters
          ? plan::device_factor_from_counters(*system_)
          : plan::device_factor_from_calibration(*system_);
  result.device_factor = factor.c;

  auto estimates = plan::build_estimates(program, result.samples, factor,
                                         *system_, &result.diagnostics);

  // Phase 3: Algorithm-1 assignment.
  auto assignment =
      plan::assign_csd(program, std::move(estimates), *system_);
  result.plan = assignment.plan;
  result.projected_host = assignment.projected_host;
  result.projected_csd = assignment.projected;
  ISP_LOG_INFO("plan for " << program.name() << ": "
                           << result.plan.csd_line_count() << "/"
                           << program.line_count()
                           << " lines on CSD (projected "
                           << assignment.projected.value() << " s vs host "
                           << assignment.projected_host.value() << " s)");

  // Phase 4: code generation and execution with monitoring/migration.
  result.report = run_program(*system_, program, result.plan, config.mode,
                              config.engine);
  return result;
}

}  // namespace isp::runtime
