// Chrome-trace export: turn an ExecutionReport into a chrome://tracing /
// Perfetto-compatible JSON timeline.
//
// Rows: the host CPU, the CSE, and the host link; each line becomes a
// duration event on the unit that ran it, with access/transfer/compute split
// into sub-slices.  Drop the output into chrome://tracing (or
// ui.perfetto.dev) to see exactly where a run spent its time and where the
// migration broke a line.
#pragma once

#include <string>

#include "obs/timeline.hpp"
#include "runtime/report.hpp"

namespace isp::runtime {

/// Build the run's span timeline (rows: host, cse, link, faults).  The
/// fleet exporter in src/serve composes whole-fleet timelines through the
/// same obs::Timeline emitter.
[[nodiscard]] obs::Timeline to_trace_timeline(const ExecutionReport& report);

/// Serialise a report as a Chrome trace (JSON array of events).
[[nodiscard]] std::string to_chrome_trace(const ExecutionReport& report);

/// Write the trace to a file; throws isp::Error on IO failure.
void write_chrome_trace(const ExecutionReport& report,
                        const std::string& path);

}  // namespace isp::runtime
