// The execution engine: runs a lowered program on a SystemModel under
// virtual time, producing an ExecutionReport.
//
// This is the one timing path in the repository — the sampling-phase
// profiler, the exhaustive programmer-directed oracle, the static C
// baselines and full ActiveCpp runs all execute here, differing only in
// options.  The walk is sequential (lines are data-dependent, as in the
// paper's single-entry-single-exit regions); concurrency with device-side
// contention is expressed through availability schedules.
//
// Per line the engine charges, in order:
//   1. input residency: stored data at the placement-side bandwidth, then
//      inter-side intermediates over the host link (BAR penalty for objects
//      a migration left behind);
//   2. control: call-queue invocation when entering a CSD group, interpreter
//      dispatch, code-image distribution before the first CSD call;
//   3. language-runtime marshalling copies (mode-dependent);
//   4. compute, in chunks, through the CSE availability schedule; each CSD
//      chunk posts a status update and feeds the monitor;
//   5. the real kernel (functional output), then output bookkeeping.
// Migration takes effect at the end of the current line, exactly as §III-D
// prescribes.
#pragma once

#include <optional>

#include "codegen/lowering.hpp"
#include "fault/fault.hpp"
#include "ir/plan.hpp"
#include "ir/program.hpp"
#include "runtime/monitor.hpp"
#include "runtime/report.hpp"
#include "sim/availability.hpp"
#include "system/model.hpp"

namespace isp::obs {
class MetricsRegistry;
}

namespace isp::runtime {

/// Stress the CSE after the ISP task reaches a progress fraction — the
/// methodology of Figure 5 ("right after each application's ISP tasks make
/// 50% of their progress").
struct ContentionTrigger {
  bool enabled = false;
  double at_csd_progress = 0.5;  // fraction of planned CSD work completed
  double availability = 1.0;     // CSE fraction left afterwards
};

struct EngineOptions {
  codegen::RuntimeOverheadModel overhead;
  /// Execute the real kernels (functional results). Off for timing-only
  /// replays, which then require plan estimates for output sizes.
  bool run_kernels = true;
  /// Post status updates and run the monitor on CSD lines.
  bool monitoring = true;
  /// Act on the monitor's advice (off = "ActivePy w/o migration").
  bool migration = true;
  /// Initial CSE availability (Figure 2's x-axis).
  sim::AvailabilitySchedule cse_availability;
  /// Host CPU availability: contention from other applications on the host
  /// side (§II-B(3) names both directions of resource contention).
  sim::AvailabilitySchedule host_availability;
  ContentionTrigger contention;
  MonitorConfig monitor;
  /// Live-variable block saved on migration (locals; shared-memory objects
  /// are accounted separately by residency).
  Bytes migration_state_bytes = Bytes{256 * 1024};
  /// Deterministic fault injection across the device stack.  With every
  /// site at rate zero (the default) no injector is created and the engine
  /// takes exactly the fault-free code paths — timing is bit-for-bit
  /// identical to a build without the fault layer.
  fault::FaultConfig fault;
  /// Drive the device's storage backend even without PowerLoss armed:
  /// datasets mount as live mappings, persisted outputs go through
  /// write()/zone-append bookkeeping, and the backend-internal traffic the
  /// run triggers (FTL GC relocations / ZNS copy-forward, metadata
  /// programs, erases) is charged to virtual time as a device-side reclaim
  /// stall — the §II-B(3) contention made explicit per run.  Off by
  /// default: the fault-free timing path is bit-for-bit unchanged.
  bool drive_storage = false;
  /// Issue the storage traffic the engine drives as extent (span) calls on
  /// the backend instead of page-at-a-time writes.  The backends' span
  /// paths are contractually bit-for-bit equivalent to the scalar loops
  /// (state, stats, journal, recovery), so this changes wall-clock only —
  /// reports, digests and metrics are identical either way.  On by
  /// default; off pins the scalar loops for differential testing.
  bool span_io = true;
  /// Observability sink (optional).  When set, the engine folds per-line
  /// placements, migrations, monitor/status-update traffic, fault-site
  /// counters, and the device FTL's GC/journal/write-amplification stats
  /// into the registry at the end of the run under "engine.*", "monitor.*",
  /// "fault.*" and "ftl.*".  Recording charges no virtual time: the
  /// ExecutionReport is bit-for-bit identical with or without a sink.
  obs::MetricsRegistry* metrics = nullptr;
};

class Engine {
 public:
  explicit Engine(system::SystemModel& system) : system_(&system) {}

  /// Run `program` under `plan`/`lowered`.  A fresh ObjectStore is created
  /// from the program datasets unless `store` is provided (the sampler
  /// passes sampled stores).
  ExecutionReport run(const ir::Program& program, const ir::Plan& plan,
                      const codegen::LoweredProgram& lowered,
                      const EngineOptions& options,
                      ir::ObjectStore* store = nullptr);

 private:
  system::SystemModel* system_;
};

/// Convenience wrapper: lower with `mode` and run.
ExecutionReport run_program(system::SystemModel& system,
                            const ir::Program& program, const ir::Plan& plan,
                            codegen::ExecMode mode,
                            const EngineOptions& options,
                            ir::ObjectStore* store = nullptr);

}  // namespace isp::runtime
