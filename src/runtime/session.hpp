// Session: a long-lived ActiveCpp runtime serving repeated executions.
//
// The paper defines a *task* as "a program's dynamic instance of a code
// region" — the same program runs again and again over its data.  A Session
// amortises the sampling phase across those instances: the first run of a
// program samples, fits and plans; later runs of the same program reuse the
// cached plan and go straight to execution.  The runtime monitor still
// guards every run — and if a run had to migrate, the cached plan evidently
// went stale (contention regime changed, dataset changed), so the session
// drops it and the next instance re-samples.  That is the paper's
// "periodically monitors ... and dynamically adjusts" loop, made concrete.
#pragma once

#include <map>
#include <string>

#include "runtime/active_runtime.hpp"

namespace isp::runtime {

struct SessionStats {
  std::uint64_t runs = 0;
  std::uint64_t sampled_runs = 0;   // paid the sampling phase
  std::uint64_t cached_runs = 0;    // reused a plan
  std::uint64_t invalidations = 0;  // plans dropped after migrations
  std::uint64_t migrations = 0;
  Seconds total_time;               // end-to-end across all runs
  Seconds sampling_time;            // cumulative sampling overhead
};

class Session {
 public:
  explicit Session(system::SystemModel& system, RunConfig defaults = {})
      : runtime_(system), defaults_(std::move(defaults)) {}

  /// Execute one dynamic instance of `program`, reusing its cached plan if
  /// one exists.  Per-run engine options (contention, availability) come
  /// from `overrides` when given, else the session defaults.
  RunResult run(const ir::Program& program,
                const EngineOptions* overrides = nullptr);

  /// Drop the cached plan for a program (e.g. the dataset was replaced).
  void invalidate(const std::string& program_name);

  [[nodiscard]] bool has_plan(const std::string& program_name) const {
    return plans_.count(program_name) > 0;
  }
  [[nodiscard]] const SessionStats& stats() const { return stats_; }

 private:
  ActiveRuntime runtime_;
  RunConfig defaults_;
  std::map<std::string, ir::Plan> plans_;
  SessionStats stats_;
};

}  // namespace isp::runtime
