#include "runtime/session.hpp"

namespace isp::runtime {

RunResult Session::run(const ir::Program& program,
                       const EngineOptions* overrides) {
  RunConfig config = defaults_;
  if (overrides != nullptr) config.engine = *overrides;

  const auto cached = plans_.find(program.name());
  const bool reuse = cached != plans_.end();
  if (reuse) config.reuse_plan = &cached->second;

  auto result = runtime_.run(program, config);

  ++stats_.runs;
  stats_.total_time += result.end_to_end();
  stats_.sampling_time += result.sampling_overhead;
  stats_.migrations += result.report.migrations;
  if (reuse) {
    ++stats_.cached_runs;
  } else {
    ++stats_.sampled_runs;
    plans_[program.name()] = result.plan;
  }

  // A migration means the cached decisions no longer fit the regime; the
  // next instance re-samples rather than repeating the mistake.
  if (result.report.migrations > 0) {
    if (plans_.erase(program.name()) > 0) ++stats_.invalidations;
  }
  return result;
}

void Session::invalidate(const std::string& program_name) {
  if (plans_.erase(program_name) > 0) ++stats_.invalidations;
}

}  // namespace isp::runtime
