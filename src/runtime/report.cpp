#include "runtime/report.hpp"

#include <iomanip>
#include <sstream>

namespace isp::runtime {

Seconds ExecutionReport::compute_total() const {
  Seconds total;
  for (const auto& l : lines) total += l.compute;
  return total;
}

Seconds ExecutionReport::access_total() const {
  Seconds total;
  for (const auto& l : lines) total += l.access;
  return total;
}

std::size_t ExecutionReport::lines_on_csd() const {
  std::size_t n = 0;
  for (const auto& l : lines) n += (l.placement == ir::Placement::Csd) ? 1 : 0;
  return n;
}

std::string ExecutionReport::to_json() const {
  std::ostringstream os;
  os << std::setprecision(12);
  os << "{\"program\":\"" << program << "\","
     << "\"total_s\":" << total.value() << ","
     << "\"compile_overhead_s\":" << compile_overhead.value() << ","
     << "\"migrations\":" << migrations << ","
     << "\"migration_overhead_s\":" << migration_overhead.value() << ","
     << "\"status_updates\":" << status_updates << ","
     << "\"csd_calls\":" << csd_calls << ","
     << "\"power_losses\":" << power_losses << ","
     << "\"recovery_overhead_s\":" << recovery_overhead.value()
     << ",\"lines\":[";
  for (std::size_t i = 0; i < lines.size(); ++i) {
    const auto& l = lines[i];
    if (i > 0) os << ",";
    os << "{\"index\":" << l.index << ",\"name\":\"" << l.name << "\","
       << "\"placement\":\"" << ir::to_string(l.placement) << "\","
       << "\"start_s\":" << l.start.seconds() << ","
       << "\"end_s\":" << l.end.seconds() << ","
       << "\"compute_s\":" << l.compute.value() << ","
       << "\"access_s\":" << l.access.value() << ","
       << "\"transfer_in_s\":" << l.transfer_in.value() << ","
       << "\"marshal_s\":" << l.marshal.value() << ","
       << "\"in_bytes\":" << l.in_bytes.count() << ","
       << "\"out_bytes\":" << l.out_bytes.count() << ","
       << "\"storage_bytes\":" << l.storage_bytes.count() << ","
       << "\"faults\":" << l.faults << ","
       << "\"fault_penalty_s\":" << l.fault_penalty.value() << "}";
  }
  os << "],\"faults\":{"
     << "\"injected\":" << faults.total_injected() << ","
     << "\"exhausted\":" << faults.total_exhausted() << ","
     << "\"degradations\":" << faults.degradations << ","
     << "\"penalty_s\":" << faults.penalty.value() << ",\"by_site\":{";
  for (std::size_t s = 0; s < fault::kSiteCount; ++s) {
    if (s > 0) os << ",";
    os << "\"" << fault::to_string(static_cast<fault::Site>(s))
       << "\":{\"injected\":" << faults.injected[s]
       << ",\"recovered\":" << faults.recovered[s]
       << ",\"exhausted\":" << faults.exhausted[s] << "}";
  }
  os << "}},\"dma\":{";
  bool first = true;
  for (std::size_t k = 0; k < dma.bytes.size(); ++k) {
    if (!first) os << ",";
    first = false;
    os << "\"" << interconnect::to_string(
                      static_cast<interconnect::TransferKind>(k))
       << "_bytes\":" << dma.bytes[k].count();
  }
  os << "}";
  if (storage.driven) {
    os << ",\"storage\":{"
       << "\"backend\":\"" << flash::to_string(storage.backend) << "\","
       << "\"host_pages\":" << storage.host_pages << ","
       << "\"reclaim_pages\":" << storage.reclaim_pages << ","
       << "\"meta_pages\":" << storage.meta_pages << ","
       << "\"resets\":" << storage.resets << ","
       << "\"reclaim_events\":" << storage.reclaim_events << ","
       << "\"write_amplification\":" << storage.run_write_amplification()
       << ","
       << "\"reclaim_time_s\":" << storage.reclaim_time.value() << "}";
  }
  os << "}";
  return os.str();
}

std::string ExecutionReport::to_string() const {
  std::ostringstream os;
  os << "program " << program << ": " << std::fixed << std::setprecision(3)
     << total.value() << " s end-to-end, " << migrations << " migration(s), "
     << status_updates << " status update(s)\n";
  if (faults.total_injected() > 0) {
    os << "  faults: " << faults.total_injected() << " injected, "
       << faults.total_exhausted() << " exhausted, " << faults.degradations
       << " degradation(s), " << std::setprecision(4)
       << faults.penalty.value() << " s penalty\n";
  }
  if (power_losses > 0) {
    os << "  power losses: " << power_losses << " survived, "
       << std::setprecision(4) << recovery_overhead.value()
       << " s recovery overhead\n";
  }
  if (storage.driven) {
    os << "  storage [" << flash::to_string(storage.backend)
       << "]: " << storage.host_pages << " host page(s), "
       << storage.reclaim_pages << " reclaimed, " << storage.meta_pages
       << " meta, WA " << std::setprecision(3)
       << storage.run_write_amplification() << ", reclaim stall "
       << std::setprecision(4) << storage.reclaim_time.value() << " s\n";
  }
  for (const auto& l : lines) {
    os << "  [" << std::setw(2) << l.index << "] " << std::left
       << std::setw(28) << l.name << std::right << " on " << std::setw(4)
       << ir::to_string(l.placement) << "  " << std::setprecision(4)
       << std::setw(9) << (l.end - l.start).value() << " s"
       << "  (compute " << l.compute.value() << ", access "
       << l.access.value() << ", xfer " << l.transfer_in.value() << ")\n";
  }
  return os.str();
}

}  // namespace isp::runtime
