// ActiveRuntime: the full ActivePy pipeline (Figure 3).
//
//   sample → fit/extrapolate → Algorithm-1 assignment → code generation →
//   execution with monitoring and dynamic migration.
//
// The programmer hands over an unannotated Program; everything else —
// including whether the CSD is used at all — is the runtime's decision.
#pragma once

#include "codegen/exec_mode.hpp"
#include "ir/plan.hpp"
#include "ir/program.hpp"
#include "plan/assignment.hpp"
#include "plan/device_factor.hpp"
#include "plan/estimates.hpp"
#include "profile/sampler.hpp"
#include "runtime/engine.hpp"
#include "system/model.hpp"

namespace isp::runtime {

enum class DeviceFactorSource {
  PerformanceCounters,  // query the CSD's counters (§III-A option 1)
  CalibrationKernel,    // run a sample program on both units (option 2)
};

struct RunConfig {
  profile::SamplerConfig sampler;
  codegen::ExecMode mode = codegen::ExecMode::CompiledNoCopy;
  DeviceFactorSource factor_source = DeviceFactorSource::PerformanceCounters;
  EngineOptions engine;  // availability, contention, monitoring, migration
  /// Reuse the plan (and estimates) of a previous run of the same program:
  /// later dynamic instances skip the sampling phase entirely and go
  /// straight to execution — the runtime monitor still guards the stale
  /// decisions at run time.  Must carry estimates (plan.estimate non-empty)
  /// for monitoring to work.
  const ir::Plan* reuse_plan = nullptr;
};

struct RunResult {
  ExecutionReport report;        // the raw-input execution
  ir::Plan plan;                 // what Algorithm 1 decided
  profile::SampleSet samples;    // sampling-phase statistics
  plan::EstimateDiagnostics diagnostics;
  Seconds sampling_overhead;     // virtual time spent on sample runs
  Seconds projected_host;        // planner's T_host
  Seconds projected_csd;         // planner's T_csd
  double device_factor = 1.0;

  /// Complete end-to-end latency as the paper reports it: sampling +
  /// code generation + execution.
  [[nodiscard]] Seconds end_to_end() const {
    return sampling_overhead + report.total;
  }
};

class ActiveRuntime {
 public:
  explicit ActiveRuntime(system::SystemModel& system) : system_(&system) {}

  [[nodiscard]] RunResult run(const ir::Program& program,
                              const RunConfig& config = {});

 private:
  system::SystemModel* system_;
};

}  // namespace isp::runtime
