#include "ir/complexity.hpp"

#include <cmath>

namespace isp::ir {

std::string_view to_string(ComplexityClass c) {
  switch (c) {
    case ComplexityClass::O1:
      return "O(1)";
    case ComplexityClass::ON:
      return "O(n)";
    case ComplexityClass::ONLogN:
      return "O(n log n)";
    case ComplexityClass::ON2:
      return "O(n^2)";
    case ComplexityClass::ON3:
      return "O(n^3)";
    case ComplexityClass::kCount:
      break;
  }
  return "?";
}

double basis(ComplexityClass c, double n) {
  if (n < 1.0) n = 1.0;
  switch (c) {
    case ComplexityClass::O1:
      return 1.0;
    case ComplexityClass::ON:
      return n;
    case ComplexityClass::ONLogN:
      return n * std::log2(n + 1.0);
    case ComplexityClass::ON2:
      return n * n;
    case ComplexityClass::ON3:
      return n * n * n;
    case ComplexityClass::kCount:
      break;
  }
  return 0.0;
}

}  // namespace isp::ir
