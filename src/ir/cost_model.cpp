#include "ir/cost_model.hpp"

#include <cmath>

#include "common/error.hpp"
#include "common/rng.hpp"

namespace isp::ir {

Cycles CostModel::cycles_for(double n_elems) const {
  ISP_CHECK(n_elems >= 0.0, "negative element count");
  const double n = n_elems < 1.0 ? 1.0 : n_elems;
  double work = cycles_per_elem * std::pow(n, exponent);
  if (log_power != 0.0) work *= std::pow(std::log2(n + 1.0), log_power);
  double total = base_cycles + work;
  if (jitter > 0.0) {
    // Deterministic per-(size, line) perturbation in [1-j, 1+j].
    const auto key =
        splitmix64(jitter_seed ^ static_cast<std::uint64_t>(n_elems));
    total *= 1.0 + jitter * (2.0 * hash_unit(key) - 1.0);
  }
  return Cycles{total};
}

}  // namespace isp::ir
