// Per-line analytic compute cost: the machine model of the reproduction.
//
// The paper measures a line's execution time with a line profiler; we have a
// virtual machine instead of a physical one, so each line carries the law
// that *generates* its compute time:
//
//   cycles(n) = (c0 + c1 · n^p · log2(n)^q) · jitter(n)
//
// where n is the element count derived from the line's input volume.  The
// jitter term is a deterministic, seed-keyed multiplicative perturbation —
// it makes the sampling-phase measurements noisy the way real measurements
// are, so the curve fitter earns its keep (and mispredicts where the paper
// says it mispredicts).
#pragma once

#include <cstdint>

#include "common/units.hpp"

namespace isp::ir {

struct CostModel {
  double base_cycles = 2000.0;    // c0: per-invocation overhead
  double cycles_per_elem = 4.0;   // c1
  double exponent = 1.0;          // p
  double log_power = 0.0;         // q
  double jitter = 0.02;           // relative amplitude of the perturbation
  std::uint64_t jitter_seed = 0;  // keyed per line by the program builder

  /// Instructions executed per cycle on the host, used to convert cycle
  /// estimates into the instruction counts the IPC monitor compares against.
  double host_ipc = 1.6;

  /// Memory-stall knee on the CSE (§II-B(3), "the change of input datasets
  /// itself"): once the per-line working set exceeds the device's
  /// cache-friendly regime, every element costs extra *stall* cycles on the
  /// in-order CSE cores.  Stalls burn time without retiring instructions, so
  /// the observed instruction rate drops below the sampling-phase estimate —
  /// exactly the anomaly §III-D's monitor is built to catch.  0 disables.
  double csd_stall_knee_elems = 0.0;
  double csd_stall_multiplier = 1.0;

  /// Work in cycles for n input elements (single thread, host ISA).
  [[nodiscard]] Cycles cycles_for(double n_elems) const;

  /// Extra time multiplier CSE execution suffers at this input size.
  [[nodiscard]] double csd_stall_factor(double n_elems) const {
    if (csd_stall_knee_elems <= 0.0 || n_elems <= csd_stall_knee_elems) {
      return 1.0;
    }
    return csd_stall_multiplier;
  }

  /// Retired-instruction estimate for the same work.
  [[nodiscard]] double instructions_for(double n_elems) const {
    return cycles_for(n_elems).value() * host_ipc;
  }
};

}  // namespace isp::ir
