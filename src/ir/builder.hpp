// ProgramBuilder: the fluent authoring surface for ActiveCpp programs.
//
// The raw ir::Program API is deliberately minimal; this builder is what a
// downstream user writes against.  It provides named-parameter line
// construction, dataset helpers with generator callbacks, and validation at
// build() — so an ill-formed program fails at construction with a sharp
// message rather than deep inside the pipeline.
//
//   auto program =
//       ir::ProgramBuilder("wordcount", /*virtual_scale=*/128.0)
//           .storage_dataset("corpus", gigabytes(4.0), sizeof(char),
//                            [](mem::Buffer& b, std::size_t bytes) { ... })
//           .line("hits = grep(corpus)")
//               .reads("corpus")
//               .writes("hits")
//               .elem_bytes(1)
//               .cycles_per_elem(3.0)
//               .csd_threads(6)
//               .kernel([](ir::KernelCtx& ctx) { ... })
//               .done()
//           .build();
#pragma once

#include <functional>
#include <string>
#include <utility>

#include "ir/program.hpp"

namespace isp::ir {

class ProgramBuilder;

/// Fluent configuration of one line; finish with done().
class LineBuilder {
 public:
  LineBuilder& reads(std::string name) {
    line_.inputs.push_back(std::move(name));
    return *this;
  }
  LineBuilder& writes(std::string name) {
    line_.outputs.push_back(std::move(name));
    return *this;
  }
  LineBuilder& elem_bytes(double bytes) {
    line_.elem_bytes = bytes;
    return *this;
  }
  LineBuilder& cycles_per_elem(double cycles) {
    line_.cost.cycles_per_elem = cycles;
    return *this;
  }
  LineBuilder& base_cycles(double cycles) {
    line_.cost.base_cycles = cycles;
    return *this;
  }
  LineBuilder& complexity(double exponent, double log_power = 0.0) {
    line_.cost.exponent = exponent;
    line_.cost.log_power = log_power;
    return *this;
  }
  LineBuilder& host_threads(std::uint32_t threads) {
    line_.host_threads = threads;
    return *this;
  }
  LineBuilder& csd_threads(std::uint32_t threads) {
    line_.csd_threads = threads;
    return *this;
  }
  LineBuilder& chunks(std::uint32_t count) {
    line_.chunks = count;
    return *this;
  }
  LineBuilder& persists_output() {
    line_.writes_storage = true;
    return *this;
  }
  LineBuilder& stall_knee(double elems, double multiplier) {
    line_.cost.csd_stall_knee_elems = elems;
    line_.cost.csd_stall_multiplier = multiplier;
    return *this;
  }
  LineBuilder& kernel(Kernel k) {
    line_.kernel = std::move(k);
    return *this;
  }

  /// Commit the line and return to the program builder.
  ProgramBuilder& done();

 private:
  friend class ProgramBuilder;
  LineBuilder(ProgramBuilder& parent, std::string name) : parent_(&parent) {
    line_.name = std::move(name);
  }
  ProgramBuilder* parent_;
  CodeRegion line_;
};

class ProgramBuilder {
 public:
  /// `fill(buffer, physical_bytes)` materialises the scaled payload.
  using Fill = std::function<void(mem::Buffer&, std::size_t)>;

  ProgramBuilder(std::string name, double virtual_scale)
      : program_(std::move(name), virtual_scale) {}

  /// A flash-resident input of `virtual_bytes`; the physical payload is
  /// virtual/scale bytes, rounded to whole elements, filled by `fill`.
  ProgramBuilder& storage_dataset(const std::string& name,
                                  Bytes virtual_bytes,
                                  std::uint32_t elem_bytes, const Fill& fill);

  /// A memory-resident input (e.g. a trained model) the sampler keeps whole.
  ProgramBuilder& memory_dataset(const std::string& name, Bytes virtual_bytes,
                                 std::uint32_t elem_bytes, const Fill& fill);

  /// Start a new line; chain setters and finish with done().
  LineBuilder line(std::string name) {
    return LineBuilder(*this, std::move(name));
  }

  /// Validate and return the program (by value; the builder is spent).
  [[nodiscard]] Program build();

 private:
  friend class LineBuilder;
  Program program_;
};

}  // namespace isp::ir
