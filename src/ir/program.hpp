// Program representation: an ordered list of "lines".
//
// ActivePy's unit of analysis, placement and migration is one line of the
// interpreted program — a single-entry-single-exit code region (§III-B).  A
// CodeRegion here carries everything the runtime needs about a line:
//   * dataflow (named inputs/outputs against an ObjectStore),
//   * a real C++ kernel computing the physical payload,
//   * the analytic compute-cost law standing in for the physical machine,
//   * placement-relevant structure (parallelism on each side, progress
//     granularity for status updates).
//
// A Program is immutable during execution; every run owns its own
// ObjectStore so the exhaustive oracle can replay thousands of placements.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "ir/cost_model.hpp"
#include "mem/data_object.hpp"

namespace isp::ir {

/// Live values during one run, keyed by object name.
class ObjectStore {
 public:
  mem::DataObject& at(const std::string& name);
  const mem::DataObject& at(const std::string& name) const;
  mem::DataObject& emplace(mem::DataObject object);
  [[nodiscard]] bool contains(const std::string& name) const;
  [[nodiscard]] std::size_t size() const { return objects_.size(); }

 private:
  std::map<std::string, mem::DataObject> objects_;
};

/// Kernel execution context: typed access to the line's operands.
class KernelCtx {
 public:
  KernelCtx(ObjectStore& store, const std::vector<std::string>& inputs,
            const std::vector<std::string>& outputs, double virtual_scale)
      : store_(&store),
        inputs_(&inputs),
        outputs_(&outputs),
        virtual_scale_(virtual_scale) {}

  [[nodiscard]] const mem::DataObject& input(std::size_t i) const;
  [[nodiscard]] mem::DataObject& output(std::size_t i);
  [[nodiscard]] std::size_t input_count() const { return inputs_->size(); }
  [[nodiscard]] std::size_t output_count() const { return outputs_->size(); }
  /// Virtual bytes per physical byte (for kernels sizing virtual outputs).
  [[nodiscard]] double virtual_scale() const { return virtual_scale_; }

 private:
  ObjectStore* store_;
  const std::vector<std::string>* inputs_;
  const std::vector<std::string>* outputs_;
  double virtual_scale_;
};

using Kernel = std::function<void(KernelCtx&)>;

/// One line of the program: a single-entry-single-exit code region.
struct CodeRegion {
  std::string name;  // the "source line" as shown in reports
  std::vector<std::string> inputs;
  std::vector<std::string> outputs;
  CostModel cost;
  /// Bytes per element of the dominant input, converting input volume into
  /// the n of the cost law.
  double elem_bytes = 1.0;
  /// Threads the reference C implementation uses on the host (reference
  /// kernels are typically single-threaded loops).
  std::uint32_t host_threads = 1;
  /// CSE cores the generated firmware spreads this line across.
  std::uint32_t csd_threads = 8;
  /// Progress chunks per line: each chunk ends with a patched status update.
  std::uint32_t chunks = 16;
  /// Outputs are persisted to flash (result write-back): the engine charges
  /// the NAND program path on the CSD, or link + NAND when running on the
  /// host.
  bool writes_storage = false;
  Kernel kernel;  // may be empty for timing-only modelling

  [[nodiscard]] double elems_for(Bytes input_virtual) const {
    return input_virtual.as_double() / elem_bytes;
  }
};

/// An initial value of the program (usually a referenced file on storage).
struct Dataset {
  mem::DataObject object;
  std::uint32_t elem_bytes = 1;
  /// Optional custom sampler for the sampling phase; the default takes the
  /// leading `fraction` of elements (the paper's heuristic subset).
  std::function<mem::DataObject(const mem::DataObject& full, double fraction)>
      sampler;
};

class Program {
 public:
  Program(std::string name, double virtual_scale);

  [[nodiscard]] const std::string& name() const { return name_; }
  /// Virtual bytes represented by one physical byte (e.g. 1024 when the
  /// physical payload is a 2^-10 scale model of the Table-I dataset).
  [[nodiscard]] double virtual_scale() const { return virtual_scale_; }

  CodeRegion& add_line(CodeRegion line);
  Dataset& add_dataset(Dataset dataset);

  [[nodiscard]] const std::vector<CodeRegion>& lines() const { return lines_; }
  /// Mutable access for experiment harnesses that perturb cost models (e.g.
  /// injecting the §II-B(3) input-change dynamic into a stock workload).
  [[nodiscard]] CodeRegion& line_mut(std::size_t i);
  [[nodiscard]] const std::vector<Dataset>& datasets() const {
    return datasets_;
  }
  [[nodiscard]] std::size_t line_count() const { return lines_.size(); }

  /// Raw input volume: the Table-I "data size" of the program.
  [[nodiscard]] Bytes total_storage_bytes() const;

  /// Fresh store populated with (copies of) the initial datasets.
  [[nodiscard]] ObjectStore make_store() const;

  /// Store populated with sampled datasets scaled by `fraction` (§III-A).
  [[nodiscard]] ObjectStore make_sampled_store(double fraction) const;

  /// Structural checks: inputs resolve to a dataset or an earlier line's
  /// output, no output name is produced twice, line names unique.
  void validate() const;

 private:
  std::string name_;
  double virtual_scale_;
  std::vector<CodeRegion> lines_;
  std::vector<Dataset> datasets_;
};

/// Default sampler: keep the first ceil(fraction * n_elems) elements.
[[nodiscard]] mem::DataObject prefix_sample(const mem::DataObject& full,
                                            double fraction,
                                            std::uint32_t elem_bytes);

}  // namespace isp::ir
