// Placement plans: the output of Algorithm 1 (or of a programmer's manual
// partitioning) and the per-line estimates that justify it.
//
// A Plan is consumed by the execution engine; the estimates ride along so
// the runtime monitor can compare observed progress against what the
// sampling phase predicted (§III-D) and price a migration.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/units.hpp"

namespace isp::ir {

enum class Placement : std::uint8_t { Host = 0, Csd = 1 };

[[nodiscard]] inline std::string_view to_string(Placement p) {
  return p == Placement::Host ? "host" : "csd";
}

/// Per-line predictions at raw input size, produced from the sampling phase
/// fits (§III-A terminology: CT_i,host / CT_i,device / D_in_i / D_out_i).
struct LineEstimate {
  Seconds ct_host;          // compute wall time on the host
  Seconds ct_device;        // compute wall time on the CSD (= host × C)
  Bytes storage_in;         // stored data the line reads
  Bytes d_in;               // inter-line input volume (from the predecessor)
  Bytes d_out;              // inter-line output volume
  double instructions = 0;  // retired-instruction estimate for IPC monitoring
};

struct Plan {
  std::vector<Placement> placement;   // one per program line
  std::vector<LineEstimate> estimate; // empty when no sampling ran

  [[nodiscard]] std::size_t size() const { return placement.size(); }
  [[nodiscard]] bool any_on_csd() const {
    for (const auto p : placement) {
      if (p == Placement::Csd) return true;
    }
    return false;
  }
  [[nodiscard]] std::size_t csd_line_count() const {
    std::size_t n = 0;
    for (const auto p : placement) n += (p == Placement::Csd) ? 1 : 0;
    return n;
  }

  static Plan host_only(std::size_t lines) {
    return Plan{.placement = std::vector<Placement>(lines, Placement::Host),
                .estimate = {}};
  }
};

}  // namespace isp::ir
