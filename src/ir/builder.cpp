#include "ir/builder.hpp"

#include "common/error.hpp"

namespace isp::ir {

ProgramBuilder& LineBuilder::done() {
  ISP_CHECK(!line_.outputs.empty(),
            "line '" << line_.name << "' produces nothing");
  parent_->program_.add_line(std::move(line_));
  return *parent_;
}

ProgramBuilder& ProgramBuilder::storage_dataset(const std::string& name,
                                                Bytes virtual_bytes,
                                                std::uint32_t elem_bytes,
                                                const Fill& fill) {
  ISP_CHECK(fill != nullptr, "dataset '" << name << "' needs a fill");
  ISP_CHECK(elem_bytes > 0, "dataset '" << name << "' elem_bytes must be >0");
  Dataset d;
  d.object.name = name;
  d.object.location = mem::Location::Storage;
  d.object.virtual_bytes = virtual_bytes;
  const auto phys = static_cast<std::size_t>(
      virtual_bytes.as_double() / program_.virtual_scale());
  const std::size_t elems = phys / elem_bytes;
  const std::size_t bytes = (elems > 0 ? elems : 1) * elem_bytes;
  d.object.physical.resize_elems<std::byte>(bytes);
  fill(d.object.physical, bytes);
  ISP_CHECK(d.object.physical.size_bytes() == bytes,
            "fill for '" << name << "' resized the buffer to "
                         << d.object.physical.size_bytes() << ", expected "
                         << bytes);
  d.elem_bytes = elem_bytes;
  program_.add_dataset(std::move(d));
  return *this;
}

ProgramBuilder& ProgramBuilder::memory_dataset(const std::string& name,
                                               Bytes virtual_bytes,
                                               std::uint32_t elem_bytes,
                                               const Fill& fill) {
  ISP_CHECK(fill != nullptr, "dataset '" << name << "' needs a fill");
  Dataset d;
  d.object.name = name;
  d.object.location = mem::Location::HostDram;
  d.object.virtual_bytes = virtual_bytes;
  const auto phys = static_cast<std::size_t>(
      virtual_bytes.as_double() / program_.virtual_scale());
  const std::size_t elems = phys / elem_bytes;
  const std::size_t bytes = (elems > 0 ? elems : 1) * elem_bytes;
  d.object.physical.resize_elems<std::byte>(bytes);
  fill(d.object.physical, bytes);
  d.elem_bytes = elem_bytes;
  // Models and other memory-resident inputs are not scaled down by the
  // sampling phase (truncating a model would corrupt it).
  d.sampler = [](const mem::DataObject& whole, double) { return whole; };
  program_.add_dataset(std::move(d));
  return *this;
}

Program ProgramBuilder::build() {
  program_.validate();
  return std::move(program_);
}

}  // namespace isp::ir
