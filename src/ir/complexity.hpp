// The five complexity classes ActivePy fits against (§III-A): O(1), O(n),
// O(n log n), O(n²), O(n³).  These are the *fitting basis*; generating cost
// models (ir/cost_model.hpp) may use arbitrary power laws, which is exactly
// how the reproduction gets honest extrapolation error (e.g. matrix multiply
// is Θ(N^1.5) in input bytes and has no exact representative in the basis).
#pragma once

#include <array>
#include <string_view>

namespace isp::ir {

enum class ComplexityClass : int { O1 = 0, ON, ONLogN, ON2, ON3, kCount };

inline constexpr std::array<ComplexityClass, 5> kAllComplexityClasses{
    ComplexityClass::O1, ComplexityClass::ON, ComplexityClass::ONLogN,
    ComplexityClass::ON2, ComplexityClass::ON3};

[[nodiscard]] std::string_view to_string(ComplexityClass c);

/// Basis function g(n) for the class; g is scaled so g(1) is finite and the
/// least-squares system stays well conditioned.
[[nodiscard]] double basis(ComplexityClass c, double n);

}  // namespace isp::ir
