#include "ir/program.hpp"

#include <algorithm>
#include <cstring>
#include <set>
#include <utility>

#include "common/error.hpp"

namespace isp::ir {

mem::DataObject& ObjectStore::at(const std::string& name) {
  const auto it = objects_.find(name);
  ISP_CHECK(it != objects_.end(), "unknown object '" << name << "'");
  return it->second;
}

const mem::DataObject& ObjectStore::at(const std::string& name) const {
  const auto it = objects_.find(name);
  ISP_CHECK(it != objects_.end(), "unknown object '" << name << "'");
  return it->second;
}

mem::DataObject& ObjectStore::emplace(mem::DataObject object) {
  const auto name = object.name;
  auto [it, inserted] = objects_.insert_or_assign(name, std::move(object));
  return it->second;
}

bool ObjectStore::contains(const std::string& name) const {
  return objects_.find(name) != objects_.end();
}

const mem::DataObject& KernelCtx::input(std::size_t i) const {
  ISP_CHECK(i < inputs_->size(), "input index out of range");
  return store_->at((*inputs_)[i]);
}

mem::DataObject& KernelCtx::output(std::size_t i) {
  ISP_CHECK(i < outputs_->size(), "output index out of range");
  const auto& name = (*outputs_)[i];
  if (!store_->contains(name)) {
    mem::DataObject fresh;
    fresh.name = name;
    store_->emplace(std::move(fresh));
  }
  return store_->at(name);
}

Program::Program(std::string name, double virtual_scale)
    : name_(std::move(name)), virtual_scale_(virtual_scale) {
  ISP_CHECK(virtual_scale_ >= 1.0, "virtual scale must be >= 1");
}

CodeRegion& Program::add_line(CodeRegion line) {
  ISP_CHECK(!line.name.empty(), "line needs a name");
  ISP_CHECK(line.elem_bytes > 0.0, "elem_bytes must be positive");
  ISP_CHECK(line.chunks >= 1, "line needs at least one progress chunk");
  // Key the jitter stream by position so every line perturbs independently.
  if (line.cost.jitter_seed == 0) {
    line.cost.jitter_seed = splitmix64(lines_.size() + 1);
  }
  lines_.push_back(std::move(line));
  return lines_.back();
}

CodeRegion& Program::line_mut(std::size_t i) {
  ISP_CHECK(i < lines_.size(), "line index out of range");
  return lines_[i];
}

Dataset& Program::add_dataset(Dataset dataset) {
  ISP_CHECK(!dataset.object.name.empty(), "dataset object needs a name");
  ISP_CHECK(dataset.elem_bytes > 0, "dataset elem_bytes must be positive");
  datasets_.push_back(std::move(dataset));
  return datasets_.back();
}

Bytes Program::total_storage_bytes() const {
  Bytes total{0};
  for (const auto& d : datasets_) {
    if (d.object.starts_on_storage()) total += d.object.virtual_bytes;
  }
  return total;
}

ObjectStore Program::make_store() const {
  ObjectStore store;
  for (const auto& d : datasets_) store.emplace(d.object);
  return store;
}

ObjectStore Program::make_sampled_store(double fraction) const {
  ISP_CHECK(fraction > 0.0 && fraction <= 1.0,
            "sample fraction out of (0,1]: " << fraction);
  ObjectStore store;
  for (const auto& d : datasets_) {
    if (d.sampler) {
      store.emplace(d.sampler(d.object, fraction));
    } else {
      store.emplace(prefix_sample(d.object, fraction, d.elem_bytes));
    }
  }
  return store;
}

void Program::validate() const {
  std::set<std::string> known;
  for (const auto& d : datasets_) {
    const auto [it, inserted] = known.insert(d.object.name);
    ISP_CHECK(inserted, "duplicate dataset '" << d.object.name << "'");
  }
  std::set<std::string> line_names;
  for (const auto& line : lines_) {
    const auto [it, inserted] = line_names.insert(line.name);
    ISP_CHECK(inserted, "duplicate line name '" << line.name << "'");
    for (const auto& in : line.inputs) {
      ISP_CHECK(known.count(in) == 1, "line '" << line.name << "' consumes '"
                                               << in
                                               << "' before it is produced");
    }
    for (const auto& out : line.outputs) {
      const bool fresh = known.insert(out).second;
      ISP_CHECK(fresh, "object '" << out << "' produced twice (line '"
                                  << line.name << "')");
    }
  }
}

mem::DataObject prefix_sample(const mem::DataObject& full, double fraction,
                              std::uint32_t elem_bytes) {
  ISP_CHECK(elem_bytes > 0, "elem_bytes must be positive");
  mem::DataObject out;
  out.name = full.name;
  out.location = full.location;
  out.virtual_bytes = scale(full.virtual_bytes, fraction);

  const std::size_t total_elems = full.physical.size_bytes() / elem_bytes;
  std::size_t keep = static_cast<std::size_t>(
      static_cast<double>(total_elems) * fraction + 0.5);
  keep = std::max<std::size_t>(keep, std::min<std::size_t>(total_elems, 1));

  out.physical.resize_elems<std::byte>(keep * elem_bytes);
  if (keep > 0 && !full.physical.empty()) {
    auto dst = out.physical.as<std::byte>();
    auto src = full.physical.as<std::byte>();
    std::memcpy(dst.data(), src.data(), keep * elem_bytes);
  }
  return out;
}

}  // namespace isp::ir
