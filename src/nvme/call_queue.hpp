// ActivePy's CSD function-call queue and status/response queue (§III-C(b)).
//
// The call queue lives in CSD memory mapped into the host's address space;
// the host enqueues {function, argument block} records and the CSE fetches
// one whenever it is free.  The status queue carries the per-line progress
// records that the patched status-update code emits — the raw feed of the
// runtime monitor — plus the high-priority-request flag the device raises
// when it needs the host to take work back.
#pragma once

#include <cstdint>

#include "common/units.hpp"
#include "nvme/queue.hpp"

namespace isp::nvme {

struct CallEntry {
  std::uint32_t function_id = 0;  // index into the generated CSD binary
  std::uint32_t first_line = 0;   // program line the function starts at
  std::uint64_t arg_block = 0;    // device address of the argument block
};

struct StatusEntry {
  std::uint32_t line = 0;          // program line being executed
  std::uint32_t chunk = 0;         // progress within the line
  std::uint32_t chunks_total = 0;
  double instructions_retired = 0; // for IPC computation
  SimTime timestamp;               // device-side virtual time of the update
  bool high_priority_request = false;  // device asks host to offload back
};

class CallQueue {
 public:
  explicit CallQueue(std::uint32_t depth) : ring_(depth) {}

  bool submit(const CallEntry& e) { return ring_.push(e); }
  std::optional<CallEntry> fetch() { return ring_.pop(); }
  [[nodiscard]] bool empty() const { return ring_.empty(); }
  [[nodiscard]] std::uint32_t depth() const { return ring_.capacity(); }

 private:
  Ring<CallEntry> ring_;
};

class StatusQueue {
 public:
  explicit StatusQueue(std::uint32_t depth) : ring_(depth) {}

  /// Device side.  A full ring drops the oldest record: status updates are
  /// advisory and the monitor only needs fresh ones.
  void post(const StatusEntry& e) {
    if (!ring_.push(e)) {
      (void)ring_.pop();
      [[maybe_unused]] const bool ok = ring_.push(e);
      ISP_DCHECK(ok, "status ring push failed after eviction");
      ++dropped_;
    }
    ++posted_;
  }

  /// Host side.
  std::optional<StatusEntry> poll() { return ring_.pop(); }

  [[nodiscard]] std::uint64_t posted() const { return posted_; }
  [[nodiscard]] std::uint64_t dropped() const { return dropped_; }

 private:
  Ring<StatusEntry> ring_;
  std::uint64_t posted_ = 0;
  std::uint64_t dropped_ = 0;
};

}  // namespace isp::nvme
