// NVMe-style submission/completion rings.
//
// ActivePy's host↔CSD control plane deliberately mimics NVMe queue pairs
// (§III-C(b)): a call queue in device-visible memory, doorbells, and a
// completion/response queue used both for results and for the per-line
// status updates that feed the migration monitor.  The ring here follows
// NVMe semantics: capacity-1 usable slots, full when the advancing tail
// would meet the head, consumer owns the head.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "common/error.hpp"

namespace isp::nvme {

enum class Opcode : std::uint8_t {
  Read = 0x02,
  Write = 0x01,
  CsdExec = 0x80,    // vendor-specific: launch a generated CSD function
  CsdAbort = 0x81,   // vendor-specific: break at next line boundary
};

struct SubmissionEntry {
  Opcode opcode = Opcode::Read;
  std::uint16_t command_id = 0;
  std::uint64_t lba = 0;          // logical page for IO commands
  std::uint32_t length_pages = 0; // IO length
  std::uint64_t arg_address = 0;  // BAR address of the argument block (CsdExec)
};

enum class Status : std::uint8_t { Success = 0, Aborted = 1, Error = 2 };

struct CompletionEntry {
  std::uint16_t command_id = 0;
  Status status = Status::Success;
};

/// Fixed-capacity ring with NVMe full/empty semantics.
template <typename Entry>
class Ring {
 public:
  explicit Ring(std::uint32_t capacity) : slots_(capacity) {
    ISP_CHECK(capacity >= 2, "ring needs at least 2 slots");
  }

  [[nodiscard]] std::uint32_t capacity() const {
    return static_cast<std::uint32_t>(slots_.size());
  }
  [[nodiscard]] bool empty() const { return head_ == tail_; }
  [[nodiscard]] bool full() const { return next(tail_) == head_; }
  [[nodiscard]] std::uint32_t size() const {
    return (tail_ + capacity() - head_) % capacity();
  }

  /// Producer side; returns false if the ring is full.
  bool push(const Entry& e) {
    if (full()) return false;
    slots_[tail_] = e;
    tail_ = next(tail_);
    return true;
  }

  /// Consumer side; empty -> nullopt.
  std::optional<Entry> pop() {
    if (empty()) return std::nullopt;
    Entry e = slots_[head_];
    head_ = next(head_);
    return e;
  }

  [[nodiscard]] std::uint32_t head() const { return head_; }
  [[nodiscard]] std::uint32_t tail() const { return tail_; }

 private:
  [[nodiscard]] std::uint32_t next(std::uint32_t i) const {
    return (i + 1) % capacity();
  }

  std::vector<Entry> slots_;
  std::uint32_t head_ = 0;
  std::uint32_t tail_ = 0;
};

/// A bound SQ/CQ pair.
class QueuePair {
 public:
  QueuePair(std::uint16_t id, std::uint32_t depth)
      : id_(id), sq_(depth), cq_(depth) {}

  [[nodiscard]] std::uint16_t id() const { return id_; }
  [[nodiscard]] Ring<SubmissionEntry>& sq() { return sq_; }
  [[nodiscard]] Ring<CompletionEntry>& cq() { return cq_; }

 private:
  std::uint16_t id_;
  Ring<SubmissionEntry> sq_;
  Ring<CompletionEntry> cq_;
};

}  // namespace isp::nvme
