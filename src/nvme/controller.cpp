#include "nvme/controller.hpp"

#include <algorithm>
#include <utility>

#include "common/error.hpp"

namespace isp::nvme {

Controller::Controller(sim::Simulator& simulator, flash::FlashArray& array,
                       flash::StorageBackend* storage, ControllerConfig config)
    : simulator_(&simulator), array_(&array), storage_(storage), config_(config) {}

void Controller::ring_doorbell(QueuePair& qp) {
  if (std::find(queues_.begin(), queues_.end(), &qp) == queues_.end()) {
    queues_.push_back(&qp);
  }
  if (busy_) return;  // already draining; the loop will pick new entries up
  busy_ = true;
  const auto epoch = epoch_;
  simulator_->schedule(config_.doorbell_to_fetch, [this, epoch] {
    if (epoch != epoch_) return;  // reset while the fetch was in flight
    process_next();
  });
}

QueuePair* Controller::select_queue() {
  for (std::size_t step = 0; step < queues_.size(); ++step) {
    const std::size_t idx = (rr_cursor_ + step) % queues_.size();
    if (!queues_[idx]->sq().empty()) {
      rr_cursor_ = (idx + 1) % queues_.size();
      return queues_[idx];
    }
  }
  return nullptr;
}

void Controller::process_next() {
  QueuePair* qp = select_queue();
  if (qp == nullptr) {
    busy_ = false;
    return;
  }
  const auto entry = qp->sq().pop();
  ISP_DCHECK(entry.has_value(), "selected queue drained concurrently");
  inflight_[AttemptKey{qp->id(), entry->command_id}] = {qp, *entry};

  if (injector_ != nullptr &&
      injector_->draw(fault::Site::NvmeCommand)) {
    handle_timeout(*qp, *entry);
    return;
  }
  if (!attempts_.empty()) {
    // A previously timed-out command made it through on this attempt.
    attempts_.erase(AttemptKey{qp->id(), entry->command_id});
  }

  const Bytes page = array_->geometry().page_bytes;
  const Bytes io_bytes{static_cast<std::uint64_t>(entry->length_pages) *
                       page.count()};
  SimTime done = simulator_->now();
  Status status = Status::Success;

  switch (entry->opcode) {
    case Opcode::Read: {
      if (storage_ != nullptr) {
        // Validate the mapping exists; timing itself is bulk-analytic.
        for (std::uint32_t i = 0; i < entry->length_pages; ++i) {
          if (!storage_->translate(entry->lba + i).has_value()) {
            status = Status::Error;
            break;
          }
        }
      }
      if (status == Status::Success) {
        array_->note_read(io_bytes);
        // Fault-aware path: an uncorrectable read (ECC retries exhausted,
        // reconstruction failed) surfaces to the host as a command error.
        const auto io = array_->read_io(simulator_->now(), io_bytes);
        done = io.done;
        if (!io.status.is_ok()) status = Status::Error;
      }
      break;
    }
    case Opcode::Write: {
      if (storage_ != nullptr) {
        for (std::uint32_t i = 0; i < entry->length_pages; ++i) {
          storage_->write(entry->lba + i);
        }
      }
      array_->note_write(io_bytes);
      const auto io = array_->write_io(simulator_->now(), io_bytes);
      done = io.done;
      if (!io.status.is_ok()) status = Status::Error;
      break;
    }
    case Opcode::CsdExec: {
      ISP_CHECK(exec_hook_ != nullptr,
                "CsdExec submitted but no execution hook installed");
      const Seconds service = exec_hook_(*entry);
      done = simulator_->now() + service;
      break;
    }
    case Opcode::CsdAbort: {
      // The abort takes effect at the next line boundary; acknowledging it
      // costs only the completion post.
      break;
    }
  }

  const auto command_id = entry->command_id;
  const auto epoch = epoch_;
  simulator_->schedule_at(done + config_.completion_post,
                          [this, qp, command_id, status, epoch] {
                            if (epoch != epoch_) return;  // aborted by reset
                            // Counted at completion, not at fetch: an attempt
                            // cut down by a power cycle completes as Aborted
                            // and is requeued — only the attempt that posts
                            // its completion was processed.
                            ++commands_processed_;
                            complete(*qp, command_id, status);
                            process_next();
                          });
}

void Controller::handle_timeout(QueuePair& qp, const SubmissionEntry& entry) {
  // The fetched command is lost inside the device, so no completion is
  // posted for this attempt — posting one and then re-executing the command
  // is exactly the dangling-CQ-entry bug this path exists to prevent (the
  // host would see two completions for one command id; regression-tested in
  // tests/nvme_test.cpp).  Recovery is host-visible: the command timeout
  // elapses, the host backs off exponentially and requeues the command at
  // the SQ tail.  Attempts are bounded by the retry policy; the exhausted
  // case completes exactly once with Status::Error instead of hanging.
  const fault::FaultConfig& fc = injector_->config();
  const AttemptKey key{qp.id(), entry.command_id};
  const std::uint32_t faulted = ++attempts_[key];
  const bool exhausted = faulted >= fc.retry.max_attempts;
  const Seconds wait =
      fc.nvme_command_timeout + fc.retry.backoff_before(faulted);
  injector_->note_outcome(fault::Site::NvmeCommand, simulator_->now(),
                          /*faults=*/1, wait, exhausted);

  QueuePair* qpp = &qp;
  const auto epoch = epoch_;
  if (exhausted) {
    attempts_.erase(key);
    ++commands_failed_;
    const auto command_id = entry.command_id;
    simulator_->schedule(wait, [this, qpp, command_id, epoch] {
      if (epoch != epoch_) return;  // aborted by reset
      complete(*qpp, command_id, Status::Error);
      process_next();
    });
    return;
  }
  const SubmissionEntry retry = entry;
  simulator_->schedule(wait, [this, qpp, retry, epoch] {
    if (epoch != epoch_) return;  // aborted by reset
    if (qpp->sq().push(retry)) {
      // Back in the host SQ: no longer in flight inside the device.
      inflight_.erase(AttemptKey{qpp->id(), retry.command_id});
    } else {
      // The host refilled the SQ while we backed off; the command cannot be
      // requeued, so fail it in a typed way rather than drop it silently.
      attempts_.erase(AttemptKey{qpp->id(), retry.command_id});
      ++commands_failed_;
      complete(*qpp, retry.command_id, Status::Error);
    }
    process_next();
  });
}

void Controller::complete(QueuePair& qp, std::uint16_t command_id,
                          Status status) {
  inflight_.erase(AttemptKey{qp.id(), command_id});
  const bool posted = qp.cq().push(CompletionEntry{command_id, status});
  ISP_CHECK(posted, "completion queue overflow on qp " << qp.id());
}

std::uint64_t Controller::power_cycle() {
  // Invalidate everything scheduled: pending fetches, completion posts and
  // timeout/requeue lambdas all carry the old epoch and will no-op.
  ++epoch_;
  busy_ = false;
  attempts_.clear();
  const auto inflight = std::move(inflight_);
  inflight_.clear();
  std::uint64_t requeued = 0;
  for (const auto& [key, cmd] : inflight) {
    QueuePair* qp = cmd.first;
    // Exactly one completion per submission: the aborted attempt posts its
    // reset status here, and the host's requeue is a fresh submission that
    // will earn its own completion when the restarted controller serves it.
    const bool posted = qp->cq().push(
        CompletionEntry{cmd.second.command_id, Status::Aborted});
    ISP_CHECK(posted, "completion queue overflow on reset, qp " << qp->id());
    if (qp->sq().push(cmd.second)) {
      ++requeued;
    } else {
      ++commands_failed_;  // host SQ refilled meanwhile; surfaced as Aborted
    }
  }
  commands_requeued_ += requeued;
  return requeued;
}

void Controller::restart() {
  if (busy_) return;
  bool pending = false;
  for (QueuePair* qp : queues_) {
    if (!qp->sq().empty()) {
      pending = true;
      break;
    }
  }
  if (!pending) return;
  busy_ = true;
  const auto epoch = epoch_;
  simulator_->schedule(config_.doorbell_to_fetch, [this, epoch] {
    if (epoch != epoch_) return;
    process_next();
  });
}

}  // namespace isp::nvme
