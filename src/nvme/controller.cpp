#include "nvme/controller.hpp"

#include <algorithm>
#include <utility>

#include "common/error.hpp"

namespace isp::nvme {

Controller::Controller(sim::Simulator& simulator, flash::FlashArray& array,
                       flash::Ftl* ftl, ControllerConfig config)
    : simulator_(&simulator), array_(&array), ftl_(ftl), config_(config) {}

void Controller::ring_doorbell(QueuePair& qp) {
  if (std::find(queues_.begin(), queues_.end(), &qp) == queues_.end()) {
    queues_.push_back(&qp);
  }
  if (busy_) return;  // already draining; the loop will pick new entries up
  busy_ = true;
  simulator_->schedule(config_.doorbell_to_fetch, [this] { process_next(); });
}

QueuePair* Controller::select_queue() {
  for (std::size_t step = 0; step < queues_.size(); ++step) {
    const std::size_t idx = (rr_cursor_ + step) % queues_.size();
    if (!queues_[idx]->sq().empty()) {
      rr_cursor_ = (idx + 1) % queues_.size();
      return queues_[idx];
    }
  }
  return nullptr;
}

void Controller::process_next() {
  QueuePair* qp = select_queue();
  if (qp == nullptr) {
    busy_ = false;
    return;
  }
  const auto entry = qp->sq().pop();
  ISP_DCHECK(entry.has_value(), "selected queue drained concurrently");
  ++commands_processed_;

  const Bytes page = array_->geometry().page_bytes;
  const Bytes io_bytes{static_cast<std::uint64_t>(entry->length_pages) *
                       page.count()};
  SimTime done = simulator_->now();
  Status status = Status::Success;

  switch (entry->opcode) {
    case Opcode::Read: {
      if (ftl_ != nullptr) {
        // Validate the mapping exists; timing itself is bulk-analytic.
        for (std::uint32_t i = 0; i < entry->length_pages; ++i) {
          if (!ftl_->translate(entry->lba + i).has_value()) {
            status = Status::Error;
            break;
          }
        }
      }
      if (status == Status::Success) {
        array_->note_read(io_bytes);
        done = array_->read_finish(simulator_->now(), io_bytes);
      }
      break;
    }
    case Opcode::Write: {
      if (ftl_ != nullptr) {
        for (std::uint32_t i = 0; i < entry->length_pages; ++i) {
          ftl_->write(entry->lba + i);
        }
      }
      array_->note_write(io_bytes);
      done = array_->write_finish(simulator_->now(), io_bytes);
      break;
    }
    case Opcode::CsdExec: {
      ISP_CHECK(exec_hook_ != nullptr,
                "CsdExec submitted but no execution hook installed");
      const Seconds service = exec_hook_(*entry);
      done = simulator_->now() + service;
      break;
    }
    case Opcode::CsdAbort: {
      // The abort takes effect at the next line boundary; acknowledging it
      // costs only the completion post.
      break;
    }
  }

  const auto command_id = entry->command_id;
  simulator_->schedule_at(done + config_.completion_post,
                          [this, qp, command_id, status] {
                            complete(*qp, command_id, status);
                            process_next();
                          });
}

void Controller::complete(QueuePair& qp, std::uint16_t command_id,
                          Status status) {
  const bool posted = qp.cq().push(CompletionEntry{command_id, status});
  ISP_CHECK(posted, "completion queue overflow on qp " << qp.id());
}

}  // namespace isp::nvme
