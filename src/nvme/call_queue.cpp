#include "nvme/call_queue.hpp"

namespace isp::nvme {
template class Ring<CallEntry>;
template class Ring<StatusEntry>;
}  // namespace isp::nvme
