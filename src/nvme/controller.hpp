// Event-driven NVMe controller front-end with round-robin arbitration.
//
// Doorbell writes wake the controller; after a fetch latency it serves the
// registered submission queues one command at a time in round-robin order
// (NVMe's default arbitration), dispatching IO to the flash array (through
// the FTL for writes) and posting completions to the owning queue pair.  The
// CSD's firmware reuses the same front-end for the vendor-specific
// CsdExec/CsdAbort commands via a hook.
#pragma once

#include <functional>
#include <map>
#include <utility>
#include <vector>

#include "fault/fault.hpp"
#include "flash/backend.hpp"
#include "flash/flash_array.hpp"
#include "nvme/queue.hpp"
#include "sim/simulator.hpp"

namespace isp::nvme {

struct ControllerConfig {
  Seconds doorbell_to_fetch = Seconds{2e-6};
  Seconds completion_post = Seconds{1e-6};
};

class Controller {
 public:
  /// `exec_hook`, if set, handles CsdExec commands and returns the service
  /// time the execution engine charged for the call.
  using ExecHook = std::function<Seconds(const SubmissionEntry&)>;

  Controller(sim::Simulator& simulator, flash::FlashArray& array,
             flash::StorageBackend* storage, ControllerConfig config = {});

  /// Host writes the SQ tail doorbell: register the queue pair (first time)
  /// and start (or continue) processing.
  void ring_doorbell(QueuePair& qp);

  void set_exec_hook(ExecHook hook) { exec_hook_ = std::move(hook); }

  /// Attach a fault injector (nullptr detaches; not owned).  Fetched
  /// commands then pass through the NvmeCommand site: a faulted command is
  /// lost inside the device, recovered by a host-visible timeout + requeue
  /// at the SQ tail, and — after the retry policy is exhausted — completed
  /// with Status::Error.  Exactly one completion is posted per command
  /// regardless of how many attempts it took (no dangling CQ entries).
  void set_injector(fault::Injector* injector) { injector_ = injector; }

  /// Whole-device power cut (reset): every pending controller event is
  /// invalidated (epoch gate, so stale lambdas fire as no-ops), and every
  /// in-flight command — fetched but not yet completed — completes exactly
  /// once with Status::Aborted and is requeued by the host at its SQ tail,
  /// reusing the exactly-one-completion machinery of the timeout path.
  /// Queue contents survive: SQ/CQ rings live in host memory.  Returns the
  /// number of commands requeued.  The controller stays quiescent until
  /// restart().
  std::uint64_t power_cycle();

  /// Re-arm the fetch loop after a power cycle (the host re-rings the
  /// doorbells once the device reports ready).  No-op if nothing is queued.
  void restart();

  [[nodiscard]] std::uint64_t commands_processed() const {
    return commands_processed_;
  }
  /// Commands that exhausted their retries and completed with Error.
  [[nodiscard]] std::uint64_t commands_failed() const {
    return commands_failed_;
  }
  /// Commands aborted by a power cycle and requeued by the host.
  [[nodiscard]] std::uint64_t commands_requeued() const {
    return commands_requeued_;
  }
  [[nodiscard]] std::size_t queues_registered() const {
    return queues_.size();
  }

 private:
  /// (queue pair id, command id): retries are tracked per command so
  /// interleaved commands from different queues back off independently.
  using AttemptKey = std::pair<std::uint16_t, std::uint16_t>;

  /// Next queue with work, in round-robin order from the cursor; nullptr if
  /// every SQ is empty.
  QueuePair* select_queue();
  void process_next();
  void handle_timeout(QueuePair& qp, const SubmissionEntry& entry);
  void complete(QueuePair& qp, std::uint16_t command_id, Status status);

  sim::Simulator* simulator_;
  flash::FlashArray* array_;
  flash::StorageBackend* storage_;
  ControllerConfig config_;
  ExecHook exec_hook_;
  std::vector<QueuePair*> queues_;
  std::size_t rr_cursor_ = 0;
  bool busy_ = false;
  std::uint64_t commands_processed_ = 0;
  std::uint64_t commands_failed_ = 0;
  std::uint64_t commands_requeued_ = 0;
  /// Bumped by power_cycle(); scheduled lambdas capture the value at
  /// schedule time and fire as no-ops if the device was reset meanwhile.
  std::uint64_t epoch_ = 0;
  fault::Injector* injector_ = nullptr;
  std::map<AttemptKey, std::uint32_t> attempts_;
  /// Commands fetched from an SQ whose completion has not been posted yet;
  /// a power cycle aborts + requeues exactly these.
  std::map<AttemptKey, std::pair<QueuePair*, SubmissionEntry>> inflight_;
};

}  // namespace isp::nvme
