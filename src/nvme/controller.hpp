// Event-driven NVMe controller front-end with round-robin arbitration.
//
// Doorbell writes wake the controller; after a fetch latency it serves the
// registered submission queues one command at a time in round-robin order
// (NVMe's default arbitration), dispatching IO to the flash array (through
// the FTL for writes) and posting completions to the owning queue pair.  The
// CSD's firmware reuses the same front-end for the vendor-specific
// CsdExec/CsdAbort commands via a hook.
#pragma once

#include <functional>
#include <vector>

#include "flash/flash_array.hpp"
#include "flash/ftl.hpp"
#include "nvme/queue.hpp"
#include "sim/simulator.hpp"

namespace isp::nvme {

struct ControllerConfig {
  Seconds doorbell_to_fetch = Seconds{2e-6};
  Seconds completion_post = Seconds{1e-6};
};

class Controller {
 public:
  /// `exec_hook`, if set, handles CsdExec commands and returns the service
  /// time the execution engine charged for the call.
  using ExecHook = std::function<Seconds(const SubmissionEntry&)>;

  Controller(sim::Simulator& simulator, flash::FlashArray& array,
             flash::Ftl* ftl, ControllerConfig config = {});

  /// Host writes the SQ tail doorbell: register the queue pair (first time)
  /// and start (or continue) processing.
  void ring_doorbell(QueuePair& qp);

  void set_exec_hook(ExecHook hook) { exec_hook_ = std::move(hook); }

  [[nodiscard]] std::uint64_t commands_processed() const {
    return commands_processed_;
  }
  [[nodiscard]] std::size_t queues_registered() const {
    return queues_.size();
  }

 private:
  /// Next queue with work, in round-robin order from the cursor; nullptr if
  /// every SQ is empty.
  QueuePair* select_queue();
  void process_next();
  void complete(QueuePair& qp, std::uint16_t command_id, Status status);

  sim::Simulator* simulator_;
  flash::FlashArray* array_;
  flash::Ftl* ftl_;
  ControllerConfig config_;
  ExecHook exec_hook_;
  std::vector<QueuePair*> queues_;
  std::size_t rr_cursor_ = 0;
  bool busy_ = false;
  std::uint64_t commands_processed_ = 0;
};

}  // namespace isp::nvme
