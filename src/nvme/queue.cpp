#include "nvme/queue.hpp"

// Header-only templates; this TU anchors the library and instantiates the
// rings used across the project to keep compile times predictable.
namespace isp::nvme {
template class Ring<SubmissionEntry>;
template class Ring<CompletionEntry>;
}  // namespace isp::nvme
