#include "profile/sampler.hpp"

#include "common/error.hpp"
#include "runtime/engine.hpp"

namespace isp::profile {

SampleSet Sampler::run(const ir::Program& program) {
  ISP_CHECK(!config_.fractions.empty(), "sampler needs scaling factors");
  program.validate();

  SampleSet set;
  const auto plan = ir::Plan::host_only(program.line_count());

  for (const double fraction : config_.fractions) {
    auto store = program.make_sampled_store(fraction);

    runtime::EngineOptions options;
    options.run_kernels = true;
    options.monitoring = false;
    options.migration = false;
    // Cython compilation is charged once, on the raw run; the sampling
    // phase interprets through the already-initialised runtime.
    options.overhead.compile_latency = Seconds::zero();

    auto report = runtime::run_program(*system_, program, plan, config_.mode,
                                       options, &store);

    // Element counts per line, from what each line actually consumed.
    std::vector<double> n_elems;
    n_elems.reserve(report.lines.size());
    for (std::size_t i = 0; i < report.lines.size(); ++i) {
      n_elems.push_back(
          program.lines()[i].elems_for(report.lines[i].in_bytes));
    }
    accumulate(set, fraction, report, n_elems);
  }
  return set;
}

}  // namespace isp::profile
