#include "profile/line_profiler.hpp"

#include "common/error.hpp"

namespace isp::profile {

void accumulate(SampleSet& set, double fraction,
                const runtime::ExecutionReport& report,
                const std::vector<double>& n_elems_per_line) {
  ISP_CHECK(n_elems_per_line.size() == report.lines.size(),
            "element counts do not match report");
  if (set.lines.empty()) set.lines.resize(report.lines.size());
  ISP_CHECK(set.lines.size() == report.lines.size(),
            "sample runs saw different line counts");

  for (std::size_t i = 0; i < report.lines.size(); ++i) {
    const auto& rec = report.lines[i];
    SamplePoint p;
    p.fraction = fraction;
    p.n_elems = n_elems_per_line[i];
    p.in_bytes = rec.in_bytes;
    p.out_bytes = rec.out_bytes;
    p.storage_bytes = rec.storage_bytes;
    p.compute = rec.compute;
    p.access = rec.access;
    set.lines[i].points.push_back(p);
  }
  set.overhead += report.total;
}

}  // namespace isp::profile
