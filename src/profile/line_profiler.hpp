// Line-profiler records: what the sampling phase measures (§III-A).
//
// The paper instruments the interpreted program with a line profiler: for
// every line and every sample input it records execution time, input size
// and output size, with stored-data access time separated from compute time
// (access scales linearly with data; compute need not).  These records are
// the only inputs the fitter and planner see — the planner never peeks at
// the generating cost models.
#pragma once

#include <vector>

#include "common/units.hpp"
#include "runtime/report.hpp"

namespace isp::profile {

struct SamplePoint {
  double fraction = 0.0;   // scaling factor F of this sample run
  double n_elems = 0.0;    // line input volume in elements
  Bytes in_bytes;          // total virtual input volume
  Bytes out_bytes;         // virtual output volume the line produced
  Bytes storage_bytes;     // stored data consumed
  Seconds compute;         // measured compute wall time (host)
  Seconds access;          // measured data-access time (separated)
};

struct LineSamples {
  std::vector<SamplePoint> points;  // one per scaling factor
};

struct SampleSet {
  std::vector<LineSamples> lines;   // indexed by program line
  Seconds overhead;                 // total virtual time spent sampling
};

/// Fold one sample run's execution report into the set.
void accumulate(SampleSet& set, double fraction,
                const runtime::ExecutionReport& report,
                const std::vector<double>& n_elems_per_line);

}  // namespace isp::profile
