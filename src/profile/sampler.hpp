// The sampling phase (§III-A).
//
// ActivePy heuristically selects subsets of the referenced files to build
// sample inputs at four scaling factors — tiny 2^-10, small 2^-9, medium
// 2^-8, large 2^-7 — runs the program on each, and records per-line metrics
// through the line profiler.  Sample runs execute on the host only (device
// time is later derived from the host prediction and the constant factor C),
// with the same compiled runtime the raw run will use, so the compute
// multiplier cancels out of placement decisions.
//
// Sample outputs are not meaningful program results and are discarded; the
// phase exists purely to collect statistics — hence the engine runs with
// monitoring off and the sampled stores are thrown away.
#pragma once

#include <vector>

#include "codegen/exec_mode.hpp"
#include "ir/program.hpp"
#include "profile/line_profiler.hpp"
#include "system/model.hpp"

namespace isp::profile {

struct SamplerConfig {
  /// The paper's four scaling factors.
  std::vector<double> fractions = {1.0 / 1024, 1.0 / 512, 1.0 / 256,
                                   1.0 / 128};
  /// Runtime mode of the sample runs.
  codegen::ExecMode mode = codegen::ExecMode::CompiledNoCopy;
};

class Sampler {
 public:
  Sampler(system::SystemModel& system, SamplerConfig config = {})
      : system_(&system), config_(std::move(config)) {}

  /// Run the sampling phase and return the collected statistics.
  [[nodiscard]] SampleSet run(const ir::Program& program);

 private:
  system::SystemModel* system_;
  SamplerConfig config_;
};

}  // namespace isp::profile
