// Host system interconnect model (PCIe / NVMe link).
//
// Transfers pay a fixed per-transfer latency, a per-chunk protocol overhead
// (PCIe TLP framing / NVMe command handling), and a bandwidth term.  The
// paper's platform exposes 5 GB/s of NVMe bandwidth between the CSD and the
// host (half the 9 GB/s internal NAND bandwidth) — this asymmetry is the
// entire economic basis of Equation 1.
#pragma once

#include <cstdint>

#include "common/units.hpp"
#include "sim/availability.hpp"

namespace isp::interconnect {

struct LinkConfig {
  BytesPerSecond bandwidth = gb_per_s(5.0);  // paper §IV-A: NVMe, 5 GB/s
  Seconds base_latency = Seconds{10e-6};     // command round-trip
  Bytes max_payload = Bytes{128 * 1024};     // DMA chunk size
  Seconds per_chunk_overhead = Seconds{1e-6};
};

/// A full-duplex point-to-point link with optional time-varying availability
/// (to model bandwidth contention from co-running tenants).
class Link {
 public:
  explicit Link(LinkConfig config);

  [[nodiscard]] const LinkConfig& config() const { return config_; }

  /// Pure service time of `bytes` with the link fully available.
  [[nodiscard]] Seconds transfer_seconds(Bytes bytes) const;

  /// Completion time of a transfer started at `t0` under the availability
  /// schedule (bandwidth scales with the available fraction).
  [[nodiscard]] SimTime transfer_finish(SimTime t0, Bytes bytes) const;

  /// Effective bandwidth for a large transfer (amortising overheads away).
  [[nodiscard]] BytesPerSecond effective_bandwidth() const {
    return config_.bandwidth;
  }

  void set_availability(sim::AvailabilitySchedule schedule);
  [[nodiscard]] const sim::AvailabilitySchedule& availability() const {
    return availability_;
  }

  /// Cumulative bytes moved (both directions), for reports.
  [[nodiscard]] Bytes bytes_moved() const { return bytes_moved_; }
  void note_bytes_moved(Bytes b) { bytes_moved_ += b; }
  void reset_stats() { bytes_moved_ = Bytes{0}; }

 private:
  LinkConfig config_;
  sim::AvailabilitySchedule availability_;
  Bytes bytes_moved_;
};

}  // namespace isp::interconnect
