#include "interconnect/link.hpp"

#include <cmath>
#include <utility>

#include "common/error.hpp"

namespace isp::interconnect {

Link::Link(LinkConfig config) : config_(config) {
  ISP_CHECK(config_.bandwidth.value() > 0.0, "link bandwidth must be positive");
  ISP_CHECK(config_.max_payload.count() > 0, "max payload must be positive");
}

Seconds Link::transfer_seconds(Bytes bytes) const {
  if (bytes.count() == 0) return Seconds::zero();
  const auto chunks = static_cast<double>(
      (bytes.count() + config_.max_payload.count() - 1) /
      config_.max_payload.count());
  return config_.base_latency + config_.per_chunk_overhead * chunks +
         bytes / config_.bandwidth;
}

SimTime Link::transfer_finish(SimTime t0, Bytes bytes) const {
  return availability_.finish_time(t0, transfer_seconds(bytes));
}

void Link::set_availability(sim::AvailabilitySchedule schedule) {
  availability_ = std::move(schedule);
}

}  // namespace isp::interconnect
