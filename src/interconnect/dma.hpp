// DMA engine: scatter/gather transfers over a Link, with statistics.
//
// ActivePy moves three kinds of payloads over the host link: raw input that a
// host-placed line must fetch from the device, processed output a CSD-placed
// line ships back, and live migration state.  The DMA engine tags each
// transfer so the execution report can break link traffic down by purpose.
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <string_view>

#include "fault/fault.hpp"
#include "interconnect/link.hpp"

namespace isp::interconnect {

enum class TransferKind : std::uint8_t {
  RawInput = 0,     // storage/device -> host raw data
  ProcessedOutput,  // CSD result -> host
  Intermediate,     // producer/consumer on opposite sides
  MigrationState,   // live variables + dirty shared objects
  CodeImage,        // generated CSD binary emitted into device memory
  kCount
};

[[nodiscard]] std::string_view to_string(TransferKind kind);

struct DmaStats {
  std::array<Bytes, static_cast<std::size_t>(TransferKind::kCount)> bytes{};
  std::array<std::uint64_t, static_cast<std::size_t>(TransferKind::kCount)>
      transfers{};

  [[nodiscard]] Bytes total_bytes() const;
};

/// Scatter/gather DMA over one link.
class DmaEngine {
 public:
  explicit DmaEngine(Link& link) : link_(&link) {}

  /// Completion time of one transfer starting at t0; records stats.
  SimTime transfer(SimTime t0, Bytes bytes, TransferKind kind);

  /// Scatter/gather: one latency hit, chunk overheads per segment.
  SimTime transfer_sg(SimTime t0, std::span<const Bytes> segments,
                      TransferKind kind);

  /// Span issue: `chunks` equal-sized transfers dispatched back-to-back as
  /// one command.  Total cost is identical to the sequential loop — the
  /// byte and per-transfer stats match it exactly, and the service time is
  /// the sum of the per-chunk times, spent against the availability
  /// schedule in a single pass — but the engine is entered once, so a fault
  /// injector sees one DmaTransfer attempt for the whole span instead of
  /// one per chunk.
  SimTime transfer_span(SimTime t0, Bytes chunk, std::uint64_t chunks,
                        TransferKind kind);

  [[nodiscard]] const DmaStats& stats() const { return stats_; }
  void reset_stats() { stats_ = DmaStats{}; }

  /// Attach a fault injector (nullptr detaches; not owned).  Transfers then
  /// pass through the DmaTransfer site: a stalled transfer re-arms after the
  /// link's command round-trip plus backoff; exhausted retries cost a full
  /// link reset.  Without an injector, timing is bit-for-bit unchanged.
  void set_injector(fault::Injector* injector) { injector_ = injector; }
  [[nodiscard]] fault::Injector* injector() const { return injector_; }

 private:
  Link* link_;
  DmaStats stats_;
  fault::Injector* injector_ = nullptr;
};

}  // namespace isp::interconnect
