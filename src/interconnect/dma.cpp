#include "interconnect/dma.hpp"

#include "common/error.hpp"

namespace isp::interconnect {

std::string_view to_string(TransferKind kind) {
  switch (kind) {
    case TransferKind::RawInput:
      return "raw-input";
    case TransferKind::ProcessedOutput:
      return "processed-output";
    case TransferKind::Intermediate:
      return "intermediate";
    case TransferKind::MigrationState:
      return "migration-state";
    case TransferKind::CodeImage:
      return "code-image";
    case TransferKind::kCount:
      break;
  }
  return "?";
}

Bytes DmaStats::total_bytes() const {
  Bytes total{0};
  for (const auto b : bytes) total += b;
  return total;
}

SimTime DmaEngine::transfer(SimTime t0, Bytes bytes, TransferKind kind) {
  const auto idx = static_cast<std::size_t>(kind);
  ISP_DCHECK(idx < stats_.bytes.size(), "bad transfer kind");
  stats_.bytes[idx] += bytes;
  stats_.transfers[idx] += 1;
  link_->note_bytes_moved(bytes);
  SimTime done = link_->transfer_finish(t0, bytes);
  if (injector_ != nullptr) {
    const auto op =
        injector_->attempt(fault::Site::DmaTransfer, t0,
                           link_->config().base_latency,
                           injector_->config().link_reset);
    done += op.penalty;
  }
  return done;
}

SimTime DmaEngine::transfer_span(SimTime t0, Bytes chunk, std::uint64_t chunks,
                                 TransferKind kind) {
  if (chunks == 0) return t0;
  const auto idx = static_cast<std::size_t>(kind);
  ISP_DCHECK(idx < stats_.bytes.size(), "bad transfer kind");
  const Bytes total = chunk * chunks;
  stats_.bytes[idx] += total;
  stats_.transfers[idx] += chunks;
  link_->note_bytes_moved(total);
  const Seconds span_service =
      link_->transfer_seconds(chunk) * static_cast<double>(chunks);
  SimTime done = link_->availability().finish_time(t0, span_service);
  if (injector_ != nullptr) {
    const auto op =
        injector_->attempt(fault::Site::DmaTransfer, t0,
                           link_->config().base_latency,
                           injector_->config().link_reset);
    done += op.penalty;
  }
  return done;
}

SimTime DmaEngine::transfer_sg(SimTime t0, std::span<const Bytes> segments,
                               TransferKind kind) {
  Bytes total{0};
  for (const auto seg : segments) total += seg;
  // One aggregated transfer: the link model already charges per-chunk
  // overhead proportional to size, which dominates segment count for the
  // large payloads ActivePy moves.
  return transfer(t0, total, kind);
}

}  // namespace isp::interconnect
