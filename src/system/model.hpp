// SystemModel: one assembled heterogeneous computer (Figure 1) — host CPU,
// host link, and a CSD — sharing a unified address space and one virtual
// clock.  Everything above this layer (profiler, planner, engine) takes a
// SystemModel and never constructs hardware itself.
#pragma once

#include <memory>

#include "csd/device.hpp"
#include "host/cpu.hpp"
#include "interconnect/dma.hpp"
#include "interconnect/link.hpp"
#include "mem/address_space.hpp"
#include "sim/simulator.hpp"
#include "system/config.hpp"

namespace isp::system {

class SystemModel {
 public:
  explicit SystemModel(SystemConfig config = SystemConfig::paper_platform());

  [[nodiscard]] const SystemConfig& config() const { return config_; }
  [[nodiscard]] sim::Simulator& simulator() { return simulator_; }
  [[nodiscard]] host::HostCpu& host_cpu() { return host_; }
  [[nodiscard]] const host::HostCpu& host_cpu() const { return host_; }
  [[nodiscard]] csd::CsdDevice& csd_device() { return *csd_; }
  [[nodiscard]] const csd::CsdDevice& csd_device() const { return *csd_; }
  [[nodiscard]] interconnect::Link& link() { return link_; }
  [[nodiscard]] const interconnect::Link& link() const { return link_; }
  [[nodiscard]] interconnect::DmaEngine& dma() { return dma_; }
  [[nodiscard]] mem::AddressSpace& address_space() { return address_space_; }

  /// Effective bandwidth of a host-side read of stored data: NAND bandwidth
  /// capped by the host link (data crosses both).
  [[nodiscard]] BytesPerSecond storage_to_host_bandwidth() const;

  /// Internal bandwidth a CSD-resident task reads stored data at.
  [[nodiscard]] BytesPerSecond storage_to_csd_bandwidth() const;

  /// Reset all statistics (between benchmark repetitions).
  void reset_stats();

 private:
  SystemConfig config_;
  sim::Simulator simulator_;
  host::HostCpu host_;
  interconnect::Link link_;
  interconnect::DmaEngine dma_;
  std::unique_ptr<csd::CsdDevice> csd_;
  mem::AddressSpace address_space_;
};

}  // namespace isp::system
