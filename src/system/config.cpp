#include "system/config.hpp"

namespace isp::system {

SystemConfig SystemConfig::paper_platform() {
  SystemConfig config;
  // Host: octa-core Ryzen 7 3700X @ 3.6 GHz.
  config.host.clock = ghz(3.6);
  config.host.cores = 8;
  // CSD: 8 ARM Cortex-A72 cores; NAND geometry calibrated to the measured
  // 9 GB/s internal bandwidth; NVMe link at 5 GB/s.
  config.csd.cse.cores = 8;
  config.csd.cse.clock = ghz(1.5);
  config.csd.cse.ipc_vs_host = 0.5;
  config.csd.cse.host_clock = config.host.clock;
  config.link.bandwidth = gb_per_s(5.0);
  return config;
}

SystemConfig SystemConfig::paper_platform_nvmeof() {
  SystemConfig config = paper_platform();
  config.attachment = AttachmentKind::NvmeOF;
  // Fabric hop: higher per-command latency on the same 5 GB/s of bandwidth.
  config.link.base_latency = Seconds{30e-6};
  config.csd.controller.doorbell_to_fetch = Seconds{8e-6};
  // One-sided RDMA reads of device memory beat uncached PCIe BAR loads.
  config.bar_access_penalty = 2.0;
  return config;
}

}  // namespace isp::system
