#include "system/model.hpp"

#include <algorithm>

namespace isp::system {

SystemModel::SystemModel(SystemConfig config)
    : config_(config),
      host_(config.host),
      link_(config.link),
      dma_(link_),
      csd_(std::make_unique<csd::CsdDevice>(simulator_, config.csd)),
      address_space_(mem::AddressSpace::standard_layout(
          config.host_dram, config.csd.device_dram)) {}

BytesPerSecond SystemModel::storage_to_host_bandwidth() const {
  return BytesPerSecond{std::min(link_.effective_bandwidth().value(),
                                 csd_->flash_array().read_bandwidth().value())};
}

BytesPerSecond SystemModel::storage_to_csd_bandwidth() const {
  return csd_->flash_array().read_bandwidth();
}

void SystemModel::reset_stats() {
  link_.reset_stats();
  dma_.reset_stats();
  csd_->flash_array().reset_stats();
  csd_->cse().reset_counters();
}

}  // namespace isp::system
