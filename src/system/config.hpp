// SystemConfig: the single source of every calibration constant (§IV-A of
// the paper; also DESIGN.md §4).
#pragma once

#include "csd/device.hpp"
#include "host/cpu.hpp"
#include "interconnect/link.hpp"

namespace isp::system {

/// How the CSD attaches to the host (§III-C(a)): direct PCIe with BAR-mapped
/// device memory, or NVMe-over-Fabrics where the RDMA NIC maps the device's
/// internal memory into the host address space.
enum class AttachmentKind { PciE, NvmeOF };

struct SystemConfig {
  host::HostCpuConfig host;
  csd::CsdConfig csd;
  interconnect::LinkConfig link;  // NVMe host link: 5 GB/s (paper §IV-A)
  Bytes host_dram = 32_GiB;
  AttachmentKind attachment = AttachmentKind::PciE;

  /// Host loads/stores into BAR-mapped device memory after a migration pay
  /// this slowdown relative to local DRAM (uncached PCIe reads) — source of
  /// the paper's residual ~8% post-migration overhead.
  double bar_access_penalty = 4.0;

  /// Defaults reproduce the paper's platform.
  static SystemConfig paper_platform();

  /// The same platform attached over NVMe-oF/RDMA (the paper's Mellanox
  /// InfiniBand path): higher command latency, but one-sided RDMA makes
  /// remote live-data access cheaper than uncached BAR loads.
  static SystemConfig paper_platform_nvmeof();
};

}  // namespace isp::system
