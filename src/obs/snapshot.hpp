// Periodic virtual-time snapshots: a deterministic counter time series.
//
// A SnapshotSeries is a small columnar table — fixed column names, one row
// of unsigned counters per virtual-time instant — built by walking a
// finished run's outcome records at t = k·interval (plus a final row at the
// makespan).  Everything is derived from virtual-time quantities, so the
// series is byte-identical across runs and `--jobs` values, and invariants
// ("admitted == completed + in_flight + queued at every instant") hold at
// *every* row, not just at the end of the run.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/units.hpp"

namespace isp::obs {

class SnapshotSeries {
 public:
  SnapshotSeries() = default;
  explicit SnapshotSeries(std::vector<std::string> columns)
      : columns_(std::move(columns)) {}

  [[nodiscard]] const std::vector<std::string>& columns() const {
    return columns_;
  }
  [[nodiscard]] std::size_t rows() const { return times_.size(); }
  [[nodiscard]] bool empty() const { return times_.empty(); }

  /// Append one snapshot; `values` must match columns() in length.
  void push(SimTime t, std::vector<std::uint64_t> values);

  [[nodiscard]] SimTime time(std::size_t row) const { return times_[row]; }
  [[nodiscard]] const std::vector<std::uint64_t>& row(std::size_t r) const {
    return rows_[r];
  }
  /// Value by (row, column name); throws isp::Error on an unknown column.
  [[nodiscard]] std::uint64_t value(std::size_t row,
                                    const std::string& column) const;

  /// FNV-1a over columns, times and every value.
  [[nodiscard]] std::uint64_t digest() const;

  /// {"columns": [...], "snapshots": [{"t_s": ..., "values": [...]}, ...],
  /// "digest": "0x..."} — deterministic formatting.
  [[nodiscard]] std::string to_json() const;

 private:
  std::vector<std::string> columns_;
  std::vector<SimTime> times_;
  std::vector<std::vector<std::uint64_t>> rows_;
};

}  // namespace isp::obs
