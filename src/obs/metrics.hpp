// Deterministic metrics: named counters, gauges and log-bucketed latency
// histograms behind one registry.
//
// The serving layer's partitioning decisions (and every SLO argument built
// on top of them) are only as good as the runtime measurements feeding them
// — §III of the paper makes continuous monitoring a first-class input to
// Equation 1.  This registry is the fleet-wide collection point: every
// subsystem (engine, monitor, FTL, fault injector, admission control)
// reports through it, and the whole structure is *deterministic* — metric
// names iterate in sorted order, merge() is associative, and digest() is an
// FNV-1a fold over every name and value, so two runs (or a `--jobs 1` and a
// `--jobs 8` run whose registries are merged in submission order) must agree
// byte for byte.
//
// Instrumentation never charges virtual time: recording into a registry is
// bookkeeping only, and a run with a registry attached is bit-for-bit
// identical (same report digest) to the same run without one.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/digest.hpp"
#include "common/units.hpp"

namespace isp::obs {

// ---- FNV-1a (the repository's digest convention, PR 2) -------------------
//
// The implementation now lives in common/digest.hpp, shared with the
// recovery sweep and the serving layer; the obs call sites keep their
// unqualified names.

using isp::double_bits;
using isp::fnv1a;
using isp::kFnvOffset;
using isp::kFnvPrime;

// ---- Scalar metrics ------------------------------------------------------

/// A monotonically increasing count.  merge() adds.
struct Counter {
  std::uint64_t value = 0;

  void add(std::uint64_t delta = 1) { value += delta; }
};

/// A last-known level.  merge() keeps the maximum — the only combining rule
/// that is associative and commutative without a timestamp, and the one that
/// matters for capacity questions ("how deep did the queue get?").
struct Gauge {
  double value = 0.0;
  bool set_ever = false;

  void set(double v) {
    value = set_ever ? std::max(value, v) : v;
    set_ever = true;
  }
};

// ---- Log-bucketed histogram ----------------------------------------------

/// Bucket layout: geometric, fixed at construction.  Bucket 0 holds
/// [0, min_value]; bucket i holds (min_value·g^(i-1), min_value·g^i]; one
/// overflow bucket catches everything beyond bucket_count regular buckets.
/// With growth factor g every percentile read off the bucket edges is within
/// a relative error of (g − 1) of the exact order statistic (tested against
/// an exact sort in obs_test).
struct HistogramOptions {
  double min_value = 1e-9;   // upper edge of bucket 0
  double growth = 1.25;      // geometric bucket growth factor, > 1
  std::uint32_t buckets = 128;  // regular buckets (plus 1 overflow)
};

class Histogram {
 public:
  Histogram() : Histogram(HistogramOptions{}) {}
  explicit Histogram(HistogramOptions options);

  /// Record one observation.  Negative values clamp into bucket 0 (they can
  /// only arise from floating-point cancellation upstream) but still count.
  void record(double v);
  void record(Seconds s) { record(s.value()); }

  [[nodiscard]] std::uint64_t count() const { return count_; }
  [[nodiscard]] double sum() const { return sum_; }
  [[nodiscard]] double min() const { return count_ ? min_ : 0.0; }
  [[nodiscard]] double max() const { return count_ ? max_ : 0.0; }
  [[nodiscard]] double mean() const {
    return count_ ? sum_ / static_cast<double>(count_) : 0.0;
  }

  /// Nearest-rank percentile (q in [0, 1]) read off the bucket edges: the
  /// geometric midpoint of the bucket holding the ceil(q·count)-th
  /// observation, clamped to the observed [min, max].  Relative error vs the
  /// exact order statistic is bounded by (growth − 1); exact for bucket 0
  /// and the overflow bucket (clamped to min/max).  Returns 0 when empty.
  [[nodiscard]] double percentile(double q) const;

  /// Fold `other` in: element-wise bucket adds, count/sum adds, min/max
  /// combines.  Associative and commutative on every integer field; sums
  /// combine in floating point.  Bucket layouts must match (ISP_CHECK).
  void merge(const Histogram& other);

  [[nodiscard]] const HistogramOptions& options() const { return options_; }
  [[nodiscard]] const std::vector<std::uint64_t>& buckets() const {
    return buckets_;
  }
  /// Inclusive upper edge of bucket i (infinity for the overflow bucket).
  [[nodiscard]] double bucket_upper_edge(std::size_t i) const;
  /// Index of the bucket a value lands in.
  [[nodiscard]] std::size_t bucket_index(double v) const;

  [[nodiscard]] std::uint64_t digest(std::uint64_t h = kFnvOffset) const;

 private:
  HistogramOptions options_;
  double log_growth_ = 0.0;  // precomputed 1 / ln(growth)
  std::vector<std::uint64_t> buckets_;  // buckets + 1 overflow
  std::uint64_t count_ = 0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Exact nearest-rank percentile over an already-sorted sample: the
/// ceil(q·n)-th smallest value (clamped to the ends).  Shared by the serving
/// report (which previously hand-rolled this taking the vector *by value* —
/// a full copy per call) and the histogram cross-check tests.
[[nodiscard]] double percentile_sorted(const std::vector<double>& sorted,
                                       double q);

// ---- Registry ------------------------------------------------------------

/// Named metrics behind sorted maps: iteration order — and therefore
/// to_json() and digest() — depends only on the names and values, never on
/// insertion order or thread scheduling.
class MetricsRegistry {
 public:
  /// Find-or-create.  A histogram's bucket layout is fixed by the options of
  /// the first call; later calls ignore their options argument.
  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  Histogram& histogram(const std::string& name,
                       HistogramOptions options = {});

  [[nodiscard]] const Counter* find_counter(const std::string& name) const;
  [[nodiscard]] const Gauge* find_gauge(const std::string& name) const;
  [[nodiscard]] const Histogram* find_histogram(const std::string& name) const;

  [[nodiscard]] std::uint64_t counter_value(const std::string& name) const;

  [[nodiscard]] bool empty() const {
    return counters_.empty() && gauges_.empty() && histograms_.empty();
  }
  [[nodiscard]] std::size_t size() const {
    return counters_.size() + gauges_.size() + histograms_.size();
  }

  /// Fold `other` in (counters add, gauges max, histograms merge).
  /// Associative, so per-job registries folded in submission order equal one
  /// registry fed serially.
  void merge(const MetricsRegistry& other);

  /// FNV-1a over every name and value, in sorted-name order.
  [[nodiscard]] std::uint64_t digest() const;

  /// Deterministic JSON object: {"counters": {...}, "gauges": {...},
  /// "histograms": {...}, "digest": "0x..."} with sorted keys and fixed
  /// numeric formatting — byte-identical for equal contents.
  [[nodiscard]] std::string to_json() const;

  [[nodiscard]] const std::map<std::string, Counter>& counters() const {
    return counters_;
  }
  [[nodiscard]] const std::map<std::string, Gauge>& gauges() const {
    return gauges_;
  }
  [[nodiscard]] const std::map<std::string, Histogram>& histograms() const {
    return histograms_;
  }

 private:
  std::map<std::string, Counter> counters_;
  std::map<std::string, Gauge> gauges_;
  std::map<std::string, Histogram> histograms_;
};

}  // namespace isp::obs
