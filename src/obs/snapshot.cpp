#include "obs/snapshot.hpp"

#include <cstdio>

#include "common/error.hpp"
#include "obs/metrics.hpp"

namespace isp::obs {

void SnapshotSeries::push(SimTime t, std::vector<std::uint64_t> values) {
  ISP_CHECK(values.size() == columns_.size(),
            "snapshot row has " << values.size() << " values for "
                                << columns_.size() << " columns");
  ISP_CHECK(times_.empty() || times_.back() <= t,
            "snapshot times must be non-decreasing");
  times_.push_back(t);
  rows_.push_back(std::move(values));
}

std::uint64_t SnapshotSeries::value(std::size_t row,
                                    const std::string& column) const {
  for (std::size_t c = 0; c < columns_.size(); ++c) {
    if (columns_[c] == column) return rows_[row][c];
  }
  ISP_CHECK(false, "unknown snapshot column '" << column << "'");
  return 0;  // unreachable
}

std::uint64_t SnapshotSeries::digest() const {
  std::uint64_t h = kFnvOffset;
  for (const auto& c : columns_) h = fnv1a(h, c);
  for (std::size_t r = 0; r < rows(); ++r) {
    h = fnv1a(h, double_bits(times_[r].seconds()));
    for (const auto v : rows_[r]) h = fnv1a(h, v);
  }
  return h;
}

std::string SnapshotSeries::to_json() const {
  std::string out;
  out.reserve(256 + 64 * rows());
  char buf[128];
  const auto add = [&](const char* fmt, auto... args) {
    std::snprintf(buf, sizeof(buf), fmt, args...);
    out += buf;
  };
  out += "{\n  \"columns\": [";
  for (std::size_t c = 0; c < columns_.size(); ++c) {
    add("%s\"%s\"", c == 0 ? "" : ", ", columns_[c].c_str());
  }
  out += "],\n  \"snapshots\": [";
  for (std::size_t r = 0; r < rows(); ++r) {
    add("%s\n    {\"t_s\": %.6f, \"values\": [", r == 0 ? "" : ",",
        times_[r].seconds());
    for (std::size_t c = 0; c < rows_[r].size(); ++c) {
      add("%s%llu", c == 0 ? "" : ", ",
          static_cast<unsigned long long>(rows_[r][c]));
    }
    out += "]}";
  }
  out += rows() == 0 ? "],\n" : "\n  ],\n";
  add("  \"digest\": \"0x%016llx\"\n}\n",
      static_cast<unsigned long long>(digest()));
  return out;
}

}  // namespace isp::obs
