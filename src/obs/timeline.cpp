#include "obs/timeline.hpp"

#include <cstdio>
#include <fstream>

#include "common/error.hpp"
#include "obs/metrics.hpp"

namespace isp::obs {

namespace {

void append_escaped(std::string& out, const std::string& s) {
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default: out += c;
    }
  }
}

void append_number(std::string& out, double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6f", v);
  out += buf;
}

}  // namespace

void Timeline::complete(
    std::string track, std::string name, double start_s, double duration_s,
    std::vector<std::pair<std::string, std::string>> args) {
  if (duration_s <= 0.0) return;
  TraceEvent e;
  e.kind = TraceEvent::Kind::Complete;
  e.track = std::move(track);
  e.name = std::move(name);
  e.ts_us = start_s * 1e6;
  e.dur_us = duration_s * 1e6;
  e.args = std::move(args);
  events_.push_back(std::move(e));
}

void Timeline::instant(
    std::string track, std::string name, double ts_s,
    std::vector<std::pair<std::string, std::string>> args) {
  TraceEvent e;
  e.kind = TraceEvent::Kind::Instant;
  e.track = std::move(track);
  e.name = std::move(name);
  e.ts_us = ts_s * 1e6;
  e.args = std::move(args);
  events_.push_back(std::move(e));
}

std::string Timeline::to_json() const {
  std::string out;
  out.reserve(64 + 160 * events_.size());
  out += "[";
  bool first = true;
  for (const auto& e : events_) {
    if (!first) out += ",";
    first = false;
    out += "\n{\"name\":\"";
    append_escaped(out, e.name);
    out += "\",\"ph\":\"";
    out += e.kind == TraceEvent::Kind::Complete ? "X" : "i";
    out += "\"";
    if (e.kind == TraceEvent::Kind::Instant) out += ",\"s\":\"t\"";
    out += ",\"pid\":1,\"tid\":\"";
    append_escaped(out, e.track);
    out += "\",\"ts\":";
    append_number(out, e.ts_us);
    if (e.kind == TraceEvent::Kind::Complete) {
      out += ",\"dur\":";
      append_number(out, e.dur_us);
    }
    if (!e.args.empty()) {
      out += ",\"args\":{";
      bool first_arg = true;
      for (const auto& [key, value] : e.args) {
        if (!first_arg) out += ",";
        first_arg = false;
        out += "\"";
        append_escaped(out, key);
        out += "\":";
        out += value;
      }
      out += "}";
    }
    out += "}";
  }
  out += "\n]";
  return out;
}

std::uint64_t Timeline::digest() const {
  return fnv1a(kFnvOffset, to_json());
}

void Timeline::write(const std::string& path) const {
  std::ofstream out(path);
  ISP_CHECK(out.good(), "cannot open trace file '" << path << "'");
  out << to_json();
  ISP_CHECK(out.good(), "failed writing trace file '" << path << "'");
}

}  // namespace isp::obs
