// Deterministic span timelines in the Chrome-trace / Perfetto JSON format.
//
// One emitter for every trace the repository produces: the single-run
// exporter (runtime::to_chrome_trace) and the whole-fleet serving timeline
// (serve::to_fleet_trace) both build a Timeline and serialise through
// to_json().  Events are kept in insertion order — the caller walks its data
// deterministically, so the serialised trace is byte-identical across runs
// and `--jobs` values; digest() is the FNV-1a fold over the serialised
// bytes, the one word a determinism test needs to compare.
//
// Format: a JSON array of trace events (the "JSON Array Format" Perfetto and
// chrome://tracing both load).  Complete spans use ph "X" with microsecond
// ts/dur; instant events use ph "i" with scope "t"(hread).  Tracks map to
// tid strings under one pid, which both UIs render as named rows.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "common/units.hpp"

namespace isp::obs {

/// One trace event.  `args` pairs are (key, already-rendered JSON value) —
/// pass "3" or "\"csd\"" — kept in insertion order.
struct TraceEvent {
  enum class Kind : std::uint8_t { Complete, Instant };
  Kind kind = Kind::Complete;
  std::string track;  // rendered as the tid row label
  std::string name;
  double ts_us = 0.0;
  double dur_us = 0.0;  // Complete events only
  std::vector<std::pair<std::string, std::string>> args;
};

class Timeline {
 public:
  /// Add a complete ("X") span; silently dropped when duration <= 0 (a
  /// zero-length slice renders as nothing but still widens the row).
  void complete(std::string track, std::string name, double start_s,
                double duration_s,
                std::vector<std::pair<std::string, std::string>> args = {});

  /// Add an instant ("i") event.
  void instant(std::string track, std::string name, double ts_s,
               std::vector<std::pair<std::string, std::string>> args = {});

  [[nodiscard]] const std::vector<TraceEvent>& events() const {
    return events_;
  }
  [[nodiscard]] std::size_t size() const { return events_.size(); }
  [[nodiscard]] bool empty() const { return events_.empty(); }

  /// Serialise as a Chrome-trace JSON array.  Deterministic: fixed numeric
  /// formatting, events in insertion order.
  [[nodiscard]] std::string to_json() const;

  /// FNV-1a over the serialised JSON.
  [[nodiscard]] std::uint64_t digest() const;

  /// Write to_json() to `path`; throws isp::Error on IO failure.
  void write(const std::string& path) const;

 private:
  std::vector<TraceEvent> events_;
};

}  // namespace isp::obs
