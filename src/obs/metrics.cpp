#include "obs/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <limits>

#include "common/error.hpp"

namespace isp::obs {

// ---- Histogram -----------------------------------------------------------

Histogram::Histogram(HistogramOptions options) : options_(options) {
  ISP_CHECK(options_.min_value > 0.0, "histogram min_value must be positive");
  ISP_CHECK(options_.growth > 1.0, "histogram growth must exceed 1");
  ISP_CHECK(options_.buckets >= 1, "histogram needs at least one bucket");
  log_growth_ = 1.0 / std::log(options_.growth);
  buckets_.assign(options_.buckets + 1, 0);  // + overflow
}

double Histogram::bucket_upper_edge(std::size_t i) const {
  if (i >= options_.buckets) {
    return std::numeric_limits<double>::infinity();
  }
  return options_.min_value *
         std::pow(options_.growth, static_cast<double>(i));
}

std::size_t Histogram::bucket_index(double v) const {
  if (v <= options_.min_value) return 0;
  // Bucket i covers (min·g^(i-1), min·g^i]; the log gives the right
  // neighbourhood and the two nudges make the boundary decision agree with
  // bucket_upper_edge() exactly, immune to libm rounding.
  double k = std::ceil(std::log(v / options_.min_value) * log_growth_);
  auto i = static_cast<std::size_t>(std::max(1.0, k));
  while (i > 0 && bucket_upper_edge(i - 1) >= v) --i;
  while (bucket_upper_edge(i) < v) ++i;
  return std::min<std::size_t>(i, options_.buckets);
}

void Histogram::record(double v) {
  const std::size_t i = v < 0.0 ? 0 : bucket_index(v);
  buckets_[i] += 1;
  if (count_ == 0) {
    min_ = max_ = v;
  } else {
    min_ = std::min(min_, v);
    max_ = std::max(max_, v);
  }
  count_ += 1;
  sum_ += v;
}

double Histogram::percentile(double q) const {
  if (count_ == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  auto rank = static_cast<std::uint64_t>(
      std::ceil(q * static_cast<double>(count_)));
  rank = std::clamp<std::uint64_t>(rank, 1, count_);
  std::uint64_t seen = 0;
  std::size_t b = 0;
  for (; b < buckets_.size(); ++b) {
    seen += buckets_[b];
    if (seen >= rank) break;
  }
  double estimate;
  if (b == 0) {
    estimate = options_.min_value * 0.5;
  } else if (b >= options_.buckets) {
    estimate = max_;  // overflow bucket: the observed max is the best bound
  } else {
    // Geometric midpoint of (edge(b-1), edge(b)]: relative error <= g - 1.
    estimate = bucket_upper_edge(b - 1) * std::sqrt(options_.growth);
  }
  return std::clamp(estimate, min_, max_);
}

void Histogram::merge(const Histogram& other) {
  ISP_CHECK(options_.min_value == other.options_.min_value &&
                options_.growth == other.options_.growth &&
                options_.buckets == other.options_.buckets,
            "merging histograms with different bucket layouts");
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    buckets_[i] += other.buckets_[i];
  }
  if (other.count_ > 0) {
    if (count_ == 0) {
      min_ = other.min_;
      max_ = other.max_;
    } else {
      min_ = std::min(min_, other.min_);
      max_ = std::max(max_, other.max_);
    }
  }
  count_ += other.count_;
  sum_ += other.sum_;
}

std::uint64_t Histogram::digest(std::uint64_t h) const {
  h = fnv1a(h, count_);
  h = fnv1a(h, double_bits(sum_));
  h = fnv1a(h, double_bits(min()));
  h = fnv1a(h, double_bits(max()));
  for (const auto c : buckets_) h = fnv1a(h, c);
  return h;
}

double percentile_sorted(const std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 0.0;
  const auto n = sorted.size();
  const auto rank =
      static_cast<std::size_t>(std::ceil(q * static_cast<double>(n)));
  return sorted[std::min(n - 1, rank == 0 ? 0 : rank - 1)];
}

// ---- Registry ------------------------------------------------------------

Counter& MetricsRegistry::counter(const std::string& name) {
  return counters_[name];
}

Gauge& MetricsRegistry::gauge(const std::string& name) {
  return gauges_[name];
}

Histogram& MetricsRegistry::histogram(const std::string& name,
                                      HistogramOptions options) {
  const auto it = histograms_.find(name);
  if (it != histograms_.end()) return it->second;
  return histograms_.emplace(name, Histogram(options)).first->second;
}

const Counter* MetricsRegistry::find_counter(const std::string& name) const {
  const auto it = counters_.find(name);
  return it == counters_.end() ? nullptr : &it->second;
}

const Gauge* MetricsRegistry::find_gauge(const std::string& name) const {
  const auto it = gauges_.find(name);
  return it == gauges_.end() ? nullptr : &it->second;
}

const Histogram* MetricsRegistry::find_histogram(
    const std::string& name) const {
  const auto it = histograms_.find(name);
  return it == histograms_.end() ? nullptr : &it->second;
}

std::uint64_t MetricsRegistry::counter_value(const std::string& name) const {
  const Counter* c = find_counter(name);
  return c ? c->value : 0;
}

void MetricsRegistry::merge(const MetricsRegistry& other) {
  for (const auto& [name, c] : other.counters_) {
    counters_[name].value += c.value;
  }
  for (const auto& [name, g] : other.gauges_) {
    if (g.set_ever) gauges_[name].set(g.value);
  }
  for (const auto& [name, h] : other.histograms_) {
    histogram(name, h.options()).merge(h);
  }
}

std::uint64_t MetricsRegistry::digest() const {
  std::uint64_t h = kFnvOffset;
  for (const auto& [name, c] : counters_) {
    h = fnv1a(h, name);
    h = fnv1a(h, c.value);
  }
  for (const auto& [name, g] : gauges_) {
    h = fnv1a(h, name);
    h = fnv1a(h, double_bits(g.set_ever ? g.value : 0.0));
  }
  for (const auto& [name, hist] : histograms_) {
    h = fnv1a(h, name);
    h = hist.digest(h);
  }
  return h;
}

std::string MetricsRegistry::to_json() const {
  std::string out;
  out.reserve(1024 + 128 * size());
  char buf[256];
  const auto add = [&](const char* fmt, auto... args) {
    std::snprintf(buf, sizeof(buf), fmt, args...);
    out += buf;
  };
  out += "{\n  \"counters\": {";
  bool first = true;
  for (const auto& [name, c] : counters_) {
    add("%s\n    \"%s\": %llu", first ? "" : ",", name.c_str(),
        static_cast<unsigned long long>(c.value));
    first = false;
  }
  out += first ? "},\n" : "\n  },\n";
  out += "  \"gauges\": {";
  first = true;
  for (const auto& [name, g] : gauges_) {
    add("%s\n    \"%s\": %.9g", first ? "" : ",", name.c_str(),
        g.set_ever ? g.value : 0.0);
    first = false;
  }
  out += first ? "},\n" : "\n  },\n";
  out += "  \"histograms\": {";
  first = true;
  for (const auto& [name, h] : histograms_) {
    add("%s\n    \"%s\": {\"count\": %llu, \"sum\": %.9g, \"min\": %.9g, "
        "\"max\": %.9g, \"mean\": %.9g, \"p50\": %.9g, \"p90\": %.9g, "
        "\"p99\": %.9g, \"buckets\": [",
        first ? "" : ",", name.c_str(),
        static_cast<unsigned long long>(h.count()), h.sum(), h.min(),
        h.max(), h.mean(), h.percentile(0.50), h.percentile(0.90),
        h.percentile(0.99));
    first = false;
    bool first_bucket = true;
    for (std::size_t i = 0; i < h.buckets().size(); ++i) {
      if (h.buckets()[i] == 0) continue;  // sparse: non-empty buckets only
      add("%s[%zu, %llu]", first_bucket ? "" : ", ", i,
          static_cast<unsigned long long>(h.buckets()[i]));
      first_bucket = false;
    }
    out += "]}";
  }
  out += first ? "},\n" : "\n  },\n";
  add("  \"digest\": \"0x%016llx\"\n}\n",
      static_cast<unsigned long long>(digest()));
  return out;
}

}  // namespace isp::obs
