#include "baseline/work_sharing.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "plan/oracle.hpp"

namespace isp::baseline {

double WorkSharingResult::mean_csd_fraction() const {
  if (lines.empty()) return 0.0;
  double sum = 0.0;
  for (const auto& l : lines) sum += l.csd_fraction;
  return sum / static_cast<double>(lines.size());
}

namespace {

struct SideRates {
  // Seconds per unit fraction of the line on each side.
  double host = 0.0;
  double csd = 0.0;
  double merge = 0.0;  // per unit fraction on the CSD
};

/// Minimise max(host·(1-f), csd·f) + merge·f over f ∈ [0, 1].
double best_fraction(const SideRates& rates) {
  // The balanced point equalises the two sides; the merge term then favours
  // slightly less than balance.  The objective is piecewise-linear convex,
  // so checking the balance point and the endpoints suffices, with a small
  // bias search around balance for the merge term.
  const double denom = rates.host + rates.csd;
  double best_f = 0.0;
  double best_t = rates.host;  // f = 0
  auto consider = [&](double f) {
    f = std::clamp(f, 0.0, 1.0);
    const double t =
        std::max(rates.host * (1.0 - f), rates.csd * f) + rates.merge * f;
    if (t < best_t) {
      best_t = t;
      best_f = f;
    }
  };
  if (denom > 0.0) {
    const double balance = rates.host / denom;
    consider(balance);
    // The merge term can pull the optimum below balance; probe the kink of
    // max(...) plus the merge-adjusted stationary candidates.
    consider(balance * 0.9);
    consider(balance * 0.75);
  }
  consider(1.0);
  return best_f;
}

}  // namespace

WorkSharingResult run_work_sharing(system::SystemModel& system,
                                   const ir::Program& program,
                                   double availability) {
  ISP_CHECK(availability > 0.0 && availability <= 1.0,
            "availability out of (0,1]");
  // True per-line volumes and compute times from a functional reference run.
  const auto truth = plan::measure_true_estimates(system, program);

  const double link = system.link().effective_bandwidth().value();
  const double nand = system.storage_to_csd_bandwidth().value();
  const double host_storage = system.storage_to_host_bandwidth().value();

  WorkSharingResult result;
  for (std::size_t i = 0; i < program.line_count(); ++i) {
    const auto& est = truth[i];

    SideRates rates;
    // Host side: its share of stored data crosses the link; inter-line
    // inputs are already host-resident in this model.
    rates.host = est.ct_host.value() +
                 est.storage_in.as_double() / host_storage;
    // CSD side: internal read plus the slower compute, derated by the
    // availability the co-tenants leave.
    rates.csd = est.ct_device.value() / availability +
                est.storage_in.as_double() / nand;
    // Device-produced results merge back over the link.
    rates.merge = est.d_out.as_double() / link;
    // Inter-line input produced on the host must reach the CSD share.
    rates.csd += est.d_in.as_double() / link;

    WorkSharingLine line;
    line.name = program.lines()[i].name;
    line.csd_fraction = best_fraction(rates);
    line.host_side = Seconds{rates.host * (1.0 - line.csd_fraction)};
    line.csd_side = Seconds{rates.csd * line.csd_fraction};
    line.merge = Seconds{rates.merge * line.csd_fraction};
    line.total =
        Seconds{std::max(line.host_side.value(), line.csd_side.value())} +
        line.merge;
    result.total += line.total;
    result.lines.push_back(std::move(line));
  }
  return result;
}

}  // namespace isp::baseline
