#include "baseline/baselines.hpp"

namespace isp::baseline {

runtime::ExecutionReport run_host_only(system::SystemModel& system,
                                       const ir::Program& program,
                                       codegen::ExecMode mode) {
  runtime::EngineOptions options;
  options.monitoring = false;
  options.migration = false;
  const auto plan = ir::Plan::host_only(program.line_count());
  return runtime::run_program(system, program, plan, mode, options);
}

plan::OracleResult programmer_directed_plan(system::SystemModel& system,
                                            const ir::Program& program) {
  plan::OracleOptions options;
  options.engine.cse_availability = sim::AvailabilitySchedule::constant(1.0);
  return plan::exhaustive_oracle(system, program, options);
}

runtime::ExecutionReport run_static_isp(
    system::SystemModel& system, const ir::Program& program,
    const ir::Plan& plan, const sim::AvailabilitySchedule& availability,
    const runtime::ContentionTrigger& contention) {
  runtime::EngineOptions options;
  options.monitoring = false;
  options.migration = false;
  options.cse_availability = availability;
  options.contention = contention;
  return runtime::run_program(system, program, plan,
                              codegen::ExecMode::NativeC, options);
}

}  // namespace isp::baseline
