// The paper's comparison points (§V):
//   * the no-ISP C baseline every speedup is normalised to;
//   * the unoptimised interpreted baseline (stock Python, +41%);
//   * the Cython-compiled baseline (+20%);
//   * the static programmer-directed C ISP configuration: the exhaustive
//     oracle's plan frozen at 100% CSD availability, executed without any
//     monitoring or migration capability (conventional frameworks "have
//     almost zero capability in dynamically adjusting workloads", §I).
#pragma once

#include "codegen/exec_mode.hpp"
#include "ir/plan.hpp"
#include "ir/program.hpp"
#include "plan/oracle.hpp"
#include "runtime/engine.hpp"
#include "system/model.hpp"

namespace isp::baseline {

/// Host-only run in the given language mode (NativeC = the C baseline).
[[nodiscard]] runtime::ExecutionReport run_host_only(
    system::SystemModel& system, const ir::Program& program,
    codegen::ExecMode mode = codegen::ExecMode::NativeC);

/// The optimal programmer-directed plan, found the way the paper's authors
/// found it: exhaustively, with the CSD fully dedicated.
[[nodiscard]] plan::OracleResult programmer_directed_plan(
    system::SystemModel& system, const ir::Program& program);

/// Execute a frozen static ISP plan (no monitoring, no migration) under the
/// given CSE availability and optional mid-run contention — the setup of
/// Figures 2 and 5's "w/o migration" bars.
[[nodiscard]] runtime::ExecutionReport run_static_isp(
    system::SystemModel& system, const ir::Program& program,
    const ir::Plan& plan, const sim::AvailabilitySchedule& availability,
    const runtime::ContentionTrigger& contention = {});

}  // namespace isp::baseline
