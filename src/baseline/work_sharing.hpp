// Summarizer-style work sharing (Koo et al., MICRO'17 — the paper's
// reference comparator [13]).
//
// Where ActivePy places each whole line on one side, Summarizer *splits* a
// region's input between the host and the CSD so both finish together, and
// re-tunes the split per batch.  The model here captures that policy
// analytically, per line:
//
//   host side:  (1-f)·(raw/BW_link  + work/host_rate)
//   CSD side:       f·(raw/BW_nand + work/(csd_rate·availability))
//   merge:          f·output/BW_link   (device results ship back)
//
// choosing f ∈ [0,1] to minimise max(host, csd) + merge.  Three properties
// fall out, all visible in the bench:
//   * concurrency — both units run simultaneously (the max(·,·)), which the
//     paper's sequential whole-line execution model deliberately forgoes;
//     this is why the splitter's absolute speedups exceed the whole-line
//     numbers and why they are not directly comparable;
//   * the converse insight — strip the concurrency (t = H·(1-f) + C·f +
//     merge·f) and the objective is linear in f, so the optimum is always an
//     endpoint: fractional splitting degenerates to whole-line placement.
//     That is precisely the regime ActivePy operates in, and the reason its
//     unit of placement is the whole line;
//   * graceful degradation — as the CSE is taken away, f → 0 and the system
//     approaches host-only instead of collapsing like a static all-or-
//     nothing plan off Figure 2's cliff.
#pragma once

#include <vector>

#include "ir/program.hpp"
#include "sim/availability.hpp"
#include "system/model.hpp"

namespace isp::baseline {

struct WorkSharingLine {
  std::string name;
  double csd_fraction = 0.0;  // the f the per-line tuner picked
  Seconds host_side;
  Seconds csd_side;
  Seconds merge;
  Seconds total;  // max(host, csd) + merge
};

struct WorkSharingResult {
  Seconds total;
  std::vector<WorkSharingLine> lines;

  [[nodiscard]] double mean_csd_fraction() const;
};

/// Evaluate the work-sharing policy on `program` with the CSE at a constant
/// `availability`.  Per-line volumes come from one functional reference run
/// (the Summarizer authors tuned against measured batches, not estimates).
[[nodiscard]] WorkSharingResult run_work_sharing(
    system::SystemModel& system, const ir::Program& program,
    double availability = 1.0);

}  // namespace isp::baseline
