#include "serve/observe.hpp"

#include <algorithm>
#include <cstdio>
#include <string>

#include "common/error.hpp"

namespace isp::serve {

namespace {

std::string num(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6f", v);
  return buf;
}

std::string lane_name(std::int32_t lane, std::size_t fleet_size) {
  const auto l = static_cast<std::size_t>(lane);
  if (l < fleet_size) return "csd" + std::to_string(l);
  return "host" + std::to_string(l - fleet_size);
}

/// Strip one trailing newline so components embed cleanly.
std::string chomp(std::string s) {
  if (!s.empty() && s.back() == '\n') s.pop_back();
  return s;
}

}  // namespace

obs::Timeline to_fleet_timeline(const ServeReport& report) {
  obs::Timeline timeline;

  for (const auto& o : report.outcomes) {
    const std::string job = "job" + std::to_string(o.id);
    if (o.rejected) {
      timeline.instant("admission", job + " rejected", o.arrival.seconds(),
                       {{"tenant", std::to_string(o.tenant)}});
      continue;
    }
    if (o.deadline_rejected) {
      timeline.instant("admission", job + " deadline-rejected",
                       o.arrival.seconds(),
                       {{"tenant", std::to_string(o.tenant)}});
      continue;
    }
    const std::string queue_track =
        "tenant" + std::to_string(o.tenant) + " queue";

    // Per-attempt history: each attempt killed by a device death shows as
    // its own queue wait plus a [lost] span on the dying lane.  A job with
    // no lost attempts reduces exactly to the pre-failure-domain shape (one
    // wait, one placement, one service span) — obs_test pins that schema.
    SimTime wait_from = o.arrival;
    for (std::size_t a = 0; a < o.lost_attempts.size(); ++a) {
      const auto& lost = o.lost_attempts[a];
      const std::string lost_lane =
          lane_name(static_cast<std::int32_t>(lost.lane), report.fleet_size);
      timeline.complete(queue_track, job + " [queue-wait]",
                        wait_from.seconds(), (lost.start - wait_from).value());
      timeline.complete(lost_lane, job + " [lost]", lost.start.seconds(),
                        (lost.end - lost.start).value(),
                        {{"tenant", std::to_string(o.tenant)},
                         {"attempt", std::to_string(a)}});
      wait_from = lost.end;
    }
    if (!o.completed()) {
      // Deadline expired in queue, or the retry budget ran dry: close the
      // final wait gap (if any) and mark the terminal instant.
      if (o.resolved > wait_from) {
        timeline.complete(queue_track, job + " [queue-wait]",
                          wait_from.seconds(),
                          (o.resolved - wait_from).value());
      }
      timeline.instant(
          queue_track,
          job + (o.deadline_missed ? " deadline-missed" : " retry-exhausted"),
          o.resolved.seconds(),
          {{"tenant", std::to_string(o.tenant)},
           {"retries", std::to_string(o.retries)}});
      continue;
    }
    timeline.complete(queue_track, job + " [queue-wait]",
                      wait_from.seconds(), (o.start - wait_from).value());

    const std::string lane = lane_name(o.lane, report.fleet_size);
    timeline.instant(lane, job + " [placement]", o.start.seconds(),
                     {{"eq1_profit_s", num(o.eq1_profit.value())},
                      {"on_host", o.on_host ? "true" : "false"},
                      {"class", std::to_string(o.job_class)}});

    // Outer job span with exec / migration / recovery sub-slices nested
    // inside it (sub-slice durations partition the measured service time;
    // obs_test asserts the sum).
    timeline.complete(
        lane, job, o.start.seconds(), o.service.value(),
        {{"tenant", std::to_string(o.tenant)},
         {"class", std::to_string(o.job_class)},
         {"migrations", std::to_string(o.migrations)},
         {"power_losses", std::to_string(o.power_losses)},
         {"faults", std::to_string(o.faults)}});
    const double overheads =
        o.migration_overhead.value() + o.recovery_overhead.value();
    const double exec = std::max(0.0, o.service.value() - overheads);
    double cursor = o.start.seconds();
    timeline.complete(lane, job + " [exec]", cursor, exec);
    cursor += exec;
    timeline.complete(lane, job + " [migration]", cursor,
                      o.migration_overhead.value());
    cursor += o.migration_overhead.value();
    timeline.complete(lane, job + " [recovery]", cursor,
                      o.recovery_overhead.value());

    // Backend reclaim stall absorbed inside the job's service, on its own
    // track so the lane's exec/migration/recovery partition is untouched
    // (persist-free jobs emit nothing here — the clean-run schema holds).
    if (o.reclaim_time.value() > 0.0) {
      timeline.complete(
          "storage", job + " [reclaim]", o.start.seconds(),
          o.reclaim_time.value(),
          {{"lane", "\"" + lane + "\""},
           {"internal_pages", std::to_string(o.storage_internal_pages)}});
    }

    for (const auto& f : o.fault_events) {
      timeline.instant("faults",
                       "fault:" + std::string(fault::to_string(f.site)) +
                           (f.exhausted ? " (exhausted)" : ""),
                       f.time.seconds(),
                       {{"job", std::to_string(o.id)},
                        {"penalty_us", num(f.penalty.value() * 1e6)}});
    }
  }

  // Failure-domain instants: permanent device deaths and breaker state
  // transitions, one per lane, in lane order.  A healthy run emits none of
  // these, so the clean-run event schema is untouched.
  for (std::size_t lane = 0;
       lane < report.fleet_size && lane < report.lanes.size(); ++lane) {
    const auto& ls = report.lanes[lane];
    if (ls.died_at == SimTime::infinity()) continue;
    timeline.instant(lane_name(static_cast<std::int32_t>(lane),
                               report.fleet_size),
                     "device-failure", ls.died_at.seconds(),
                     {{"lost_jobs", std::to_string(ls.lost_jobs)}});
  }
  for (std::size_t lane = 0; lane < report.breaker_transitions.size();
       ++lane) {
    for (const auto& tr : report.breaker_transitions[lane]) {
      timeline.instant(
          lane_name(static_cast<std::int32_t>(lane), report.fleet_size),
          "breaker " + std::string(to_string(tr.from)) + "->" +
              std::string(to_string(tr.to)),
          tr.time.seconds(), {{"score", num(tr.score)}});
    }
  }
  return timeline;
}

std::string to_fleet_trace(const ServeReport& report) {
  return to_fleet_timeline(report).to_json();
}

obs::SnapshotSeries build_snapshots(const ServeReport& report,
                                    const ObsOptions& options) {
  ISP_CHECK(options.snapshot_interval.value() > 0.0,
            "snapshot interval must be positive");
  ISP_CHECK(options.max_snapshots >= 1, "need at least one snapshot");
  // `rejected` counts both Overloaded and DeadlineExceeded admission
  // rejections (the typed split lives in the metrics registry).
  obs::SnapshotSeries series(std::vector<std::string>{
      "offered", "admitted", "rejected", "completed", "in_flight", "queued",
      "retried", "deadline_missed", "retry_exhausted", "breaker_open_lanes"});
  if (report.outcomes.empty()) return series;

  // The series must reach past the last arrival even when nothing completes
  // after it (all-rejected tails), so every offered job shows up in the
  // final row.
  SimTime end = report.makespan;
  for (const auto& o : report.outcomes) end = std::max(end, o.arrival);

  Seconds interval = options.snapshot_interval;
  const double spans = end.seconds() / interval.value();
  if (spans > static_cast<double>(options.max_snapshots)) {
    interval = Seconds{end.seconds() /
                       static_cast<double>(options.max_snapshots)};
  }

  const auto snap_at = [&](SimTime t) {
    std::uint64_t offered = 0, admitted = 0, rejected = 0;
    std::uint64_t completed = 0, in_flight = 0, queued = 0;
    std::uint64_t retried = 0, deadline_missed = 0, retry_exhausted = 0;
    for (const auto& o : report.outcomes) {
      if (o.arrival > t) continue;
      ++offered;
      if (o.rejected || o.deadline_rejected) {
        ++rejected;
        continue;
      }
      ++admitted;
      // Re-enqueues that have happened by t: requeue i fires at the end of
      // lost attempt i (only the first `retries` losses re-enqueued — an
      // exhausted job's final loss did not).
      for (std::uint32_t a = 0; a < o.retries; ++a) {
        if (o.lost_attempts[a].end <= t) ++retried;
      }
      if (o.resolved <= t) {
        // Terminal by t.
        if (o.deadline_missed) {
          ++deadline_missed;
        } else if (o.retry_exhausted) {
          ++retry_exhausted;
        } else {
          ++completed;
        }
        continue;
      }
      // Still active at t: the job is either inside one of its attempt
      // spans (in flight) or inside one of its wait gaps (queued).  The
      // two are computed independently — spans and gaps must tile
      // [arrival, resolved) exactly, which the check below enforces.
      bool in_flight_at = false, queued_at = false;
      SimTime gap_from = o.arrival;
      for (const auto& a : o.lost_attempts) {
        if (a.start <= t && t < a.end) in_flight_at = true;
        if (gap_from <= t && t < a.start) queued_at = true;
        gap_from = a.end;
      }
      if (o.completed() && o.lane >= 0 && o.start <= t &&
          t < o.start + o.service) {
        in_flight_at = true;
      }
      const SimTime final_wait_to = o.completed() ? o.start : o.resolved;
      if (gap_from <= t && t < final_wait_to) queued_at = true;
      ISP_CHECK(in_flight_at != queued_at,
                "job " << o.id << " is neither in flight nor queued at t="
                       << t.seconds() << "s — its attempt spans leak");
      if (in_flight_at) {
        ++in_flight;
      } else {
        ++queued;
      }
    }
    // Conservation at every row: admitted work is always somewhere.
    ISP_CHECK(admitted == completed + deadline_missed + retry_exhausted +
                              in_flight + queued,
              "snapshot row at t=" << t.seconds() << "s leaks jobs: "
                                   << admitted << " admitted vs "
                                   << completed << "+" << deadline_missed
                                   << "+" << retry_exhausted << "+"
                                   << in_flight << "+" << queued);
    ISP_CHECK(offered == admitted + rejected,
              "snapshot row at t=" << t.seconds() << "s loses offers");
    std::uint64_t breaker_open = 0;
    for (const auto& transitions : report.breaker_transitions) {
      BreakerState state = BreakerState::Closed;
      for (const auto& tr : transitions) {
        if (tr.time > t) break;
        state = tr.to;
      }
      if (state == BreakerState::Open) ++breaker_open;
    }
    series.push(t, {offered, admitted, rejected, completed, in_flight,
                    queued, retried, deadline_missed, retry_exhausted,
                    breaker_open});
  };

  for (SimTime t = SimTime::zero() + interval; t < end; t += interval) {
    snap_at(t);
  }
  snap_at(end);
  return series;
}

std::string metrics_json(const ServeReport& report) {
  std::string out;
  out += "{\n\"metrics\": ";
  out += chomp(report.metrics.to_json());
  out += ",\n\"snapshots\": ";
  out += chomp(report.snapshots.to_json());
  out += "\n}\n";
  return out;
}

}  // namespace isp::serve
