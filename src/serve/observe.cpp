#include "serve/observe.hpp"

#include <algorithm>
#include <cstdio>
#include <string>

#include "common/error.hpp"

namespace isp::serve {

namespace {

std::string num(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6f", v);
  return buf;
}

std::string lane_name(std::int32_t lane, std::size_t fleet_size) {
  const auto l = static_cast<std::size_t>(lane);
  if (l < fleet_size) return "csd" + std::to_string(l);
  return "host" + std::to_string(l - fleet_size);
}

/// Strip one trailing newline so components embed cleanly.
std::string chomp(std::string s) {
  if (!s.empty() && s.back() == '\n') s.pop_back();
  return s;
}

}  // namespace

obs::Timeline to_fleet_timeline(const ServeReport& report) {
  obs::Timeline timeline;

  for (const auto& o : report.outcomes) {
    const std::string job = "job" + std::to_string(o.id);
    if (o.rejected) {
      timeline.instant("admission", job + " rejected", o.arrival.seconds(),
                       {{"tenant", std::to_string(o.tenant)}});
      continue;
    }
    const std::string queue_track =
        "tenant" + std::to_string(o.tenant) + " queue";
    timeline.complete(queue_track, job + " [queue-wait]",
                      o.arrival.seconds(), o.queue_wait.value());

    const std::string lane = lane_name(o.lane, report.fleet_size);
    timeline.instant(lane, job + " [placement]", o.start.seconds(),
                     {{"eq1_profit_s", num(o.eq1_profit.value())},
                      {"on_host", o.on_host ? "true" : "false"},
                      {"class", std::to_string(o.job_class)}});

    // Outer job span with exec / migration / recovery sub-slices nested
    // inside it (sub-slice durations partition the measured service time;
    // obs_test asserts the sum).
    timeline.complete(
        lane, job, o.start.seconds(), o.service.value(),
        {{"tenant", std::to_string(o.tenant)},
         {"class", std::to_string(o.job_class)},
         {"migrations", std::to_string(o.migrations)},
         {"power_losses", std::to_string(o.power_losses)},
         {"faults", std::to_string(o.faults)}});
    const double overheads =
        o.migration_overhead.value() + o.recovery_overhead.value();
    const double exec = std::max(0.0, o.service.value() - overheads);
    double cursor = o.start.seconds();
    timeline.complete(lane, job + " [exec]", cursor, exec);
    cursor += exec;
    timeline.complete(lane, job + " [migration]", cursor,
                      o.migration_overhead.value());
    cursor += o.migration_overhead.value();
    timeline.complete(lane, job + " [recovery]", cursor,
                      o.recovery_overhead.value());

    for (const auto& f : o.fault_events) {
      timeline.instant("faults",
                       "fault:" + std::string(fault::to_string(f.site)) +
                           (f.exhausted ? " (exhausted)" : ""),
                       f.time.seconds(),
                       {{"job", std::to_string(o.id)},
                        {"penalty_us", num(f.penalty.value() * 1e6)}});
    }
  }
  return timeline;
}

std::string to_fleet_trace(const ServeReport& report) {
  return to_fleet_timeline(report).to_json();
}

obs::SnapshotSeries build_snapshots(const ServeReport& report,
                                    const ObsOptions& options) {
  ISP_CHECK(options.snapshot_interval.value() > 0.0,
            "snapshot interval must be positive");
  ISP_CHECK(options.max_snapshots >= 1, "need at least one snapshot");
  obs::SnapshotSeries series(std::vector<std::string>{
      "offered", "admitted", "rejected", "completed", "in_flight", "queued"});
  if (report.outcomes.empty()) return series;

  // The series must reach past the last arrival even when nothing completes
  // after it (all-rejected tails), so every offered job shows up in the
  // final row.
  SimTime end = report.makespan;
  for (const auto& o : report.outcomes) end = std::max(end, o.arrival);

  Seconds interval = options.snapshot_interval;
  const double spans = end.seconds() / interval.value();
  if (spans > static_cast<double>(options.max_snapshots)) {
    interval = Seconds{end.seconds() /
                       static_cast<double>(options.max_snapshots)};
  }

  const auto snap_at = [&](SimTime t) {
    std::uint64_t offered = 0, admitted = 0, rejected = 0;
    std::uint64_t completed = 0, in_flight = 0, queued = 0;
    for (const auto& o : report.outcomes) {
      if (o.arrival > t) continue;
      ++offered;
      if (o.rejected) {
        ++rejected;
        continue;
      }
      ++admitted;
      if (o.lane >= 0 && o.start <= t) {
        if (o.start + o.service <= t) {
          ++completed;
        } else {
          ++in_flight;
        }
      } else {
        ++queued;
      }
    }
    series.push(t, {offered, admitted, rejected, completed, in_flight,
                    queued});
  };

  for (SimTime t = SimTime::zero() + interval; t < end; t += interval) {
    snap_at(t);
  }
  snap_at(end);
  return series;
}

std::string metrics_json(const ServeReport& report) {
  std::string out;
  out += "{\n\"metrics\": ";
  out += chomp(report.metrics.to_json());
  out += ",\n\"snapshots\": ";
  out += chomp(report.snapshots.to_json());
  out += "\n}\n";
  return out;
}

}  // namespace isp::serve
