#include "serve/breaker.hpp"

#include <cmath>

#include "common/error.hpp"

namespace isp::serve {

std::string_view to_string(BreakerState state) {
  switch (state) {
    case BreakerState::Closed:
      return "closed";
    case BreakerState::Open:
      return "open";
    case BreakerState::HalfOpen:
      return "half-open";
  }
  return "?";
}

CircuitBreaker::CircuitBreaker(BreakerConfig config) : config_(config) {
  ISP_CHECK(config_.threshold > 0.0, "breaker threshold must be positive");
  ISP_CHECK(config_.decay_tau.value() > 0.0,
            "breaker decay tau must be positive");
  ISP_CHECK(config_.cooldown.value() > 0.0,
            "breaker cooldown must be positive");
  ISP_CHECK(config_.cooldown_multiplier >= 1.0,
            "breaker cooldown multiplier must be at least 1");
  current_cooldown_ = config_.cooldown;
}

double CircuitBreaker::score(SimTime now) const {
  if (now <= last_) return score_;
  return score_ *
         std::exp(-(now - last_).value() / config_.decay_tau.value());
}

SimTime CircuitBreaker::ready_at() const {
  if (!config_.enabled || state_ != BreakerState::Open) {
    return SimTime::zero();
  }
  return reopen_at_;
}

void CircuitBreaker::begin_probe(SimTime start) {
  ISP_CHECK(state_ == BreakerState::Open, "probe needs an Open breaker");
  ISP_CHECK(start >= reopen_at_, "probe dispatched inside the cooldown");
  decay_to(start);
  probe_in_flight_ = true;
  transition(BreakerState::HalfOpen, start);
}

void CircuitBreaker::abort_probe() {
  ISP_CHECK(state_ == BreakerState::HalfOpen && probe_in_flight_,
            "no probe to abort");
  probe_in_flight_ = false;
}

void CircuitBreaker::record_outcome(SimTime now, double severity) {
  if (!config_.enabled) return;
  ISP_CHECK(severity >= 0.0, "negative breaker severity");
  decay_to(now);
  score_ += severity;
  if (state_ == BreakerState::Closed && score_ >= config_.threshold) {
    reopen_at_ = now + current_cooldown_;
    transition(BreakerState::Open, now);
  }
}

void CircuitBreaker::probe_result(SimTime now, bool success) {
  ISP_CHECK(state_ == BreakerState::HalfOpen && probe_in_flight_,
            "no probe in flight to resolve");
  probe_in_flight_ = false;
  decay_to(now);
  if (success) {
    score_ = 0.0;
    current_cooldown_ = config_.cooldown;
    transition(BreakerState::Closed, now);
  } else {
    current_cooldown_ = current_cooldown_ * config_.cooldown_multiplier;
    reopen_at_ = now + current_cooldown_;
    transition(BreakerState::Open, now);
  }
}

void CircuitBreaker::decay_to(SimTime now) {
  // Same-wave queries may arrive a hair out of order (per-job ready times
  // are not monotone across tenants); treat a non-advancing clock as the
  // same instant rather than growing the score back.
  if (now <= last_) return;
  score_ *=
      std::exp(-(now - last_).value() / config_.decay_tau.value());
  last_ = now;
}

void CircuitBreaker::transition(BreakerState to, SimTime at) {
  transitions_.push_back(
      BreakerTransition{.from = state_, .to = to, .time = at, .score = score_});
  state_ = to;
}

}  // namespace isp::serve
