#include "serve/memo.hpp"

#include "common/digest.hpp"
#include "common/error.hpp"

namespace isp::serve {

bool SimKey::operator==(const SimKey& other) const {
  return job_class == other.job_class && on_host == other.on_host &&
         backend == other.backend &&
         link_share_bits == other.link_share_bits &&
         faulted == other.faulted && fault_seed == other.fault_seed &&
         power_loss_armed == other.power_loss_armed &&
         power_loss_after == other.power_loss_after &&
         schedule == other.schedule;
}

std::uint64_t SimKey::digest() const {
  std::uint64_t h = kFnvOffset;
  h = fnv1a(h, job_class);
  h = fnv1a(h, backend);
  h = fnv1a(h, static_cast<std::uint64_t>(on_host ? 1 : 0) |
                   (faulted ? 2 : 0) | (power_loss_armed ? 4 : 0));
  h = fnv1a(h, link_share_bits);
  h = fnv1a(h, fault_seed);
  h = fnv1a(h, power_loss_after);
  return schedule.digest(h);
}

SimMemoCache::SimMemoCache(std::size_t capacity) : capacity_(capacity) {
  ISP_CHECK(capacity_ >= 1, "memo cache needs capacity for one entry");
}

const SimResult* SimMemoCache::find(const SimKey& key) const {
  const auto bucket = buckets_.find(key.digest());
  if (bucket == buckets_.end()) return nullptr;
  for (const auto& entry : bucket->second) {
    // Digest-verified: the full key must match, not just its hash.
    if (entry.key == key) return &entry.value;
  }
  return nullptr;
}

void SimMemoCache::insert(const SimKey& key, const SimResult& value) {
  ISP_CHECK(find(key) == nullptr, "memo cache double insert");
  while (live_ >= capacity_) {
    const auto [digest, seq] = fifo_.front();
    fifo_.pop_front();
    auto bucket = buckets_.find(digest);
    ISP_CHECK(bucket != buckets_.end(), "memo cache FIFO lost its bucket");
    auto& entries = bucket->second;
    bool erased = false;
    for (std::size_t i = 0; i < entries.size(); ++i) {
      if (entries[i].seq == seq) {
        entries.erase(entries.begin() + static_cast<std::ptrdiff_t>(i));
        erased = true;
        break;
      }
    }
    ISP_CHECK(erased, "memo cache FIFO lost its entry");
    if (entries.empty()) buckets_.erase(bucket);
    --live_;
    ++evictions_;
  }
  const std::uint64_t digest = key.digest();
  buckets_[digest].push_back(Entry{key, value, next_seq_});
  fifo_.emplace_back(digest, next_seq_);
  ++next_seq_;
  ++live_;
}

}  // namespace isp::serve
