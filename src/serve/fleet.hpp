// A fleet of simulated CSDs (plus host fallback lanes) for the serving
// layer.
//
// One ActiveCpp run owns one SystemModel; a *server* multiplexes many
// concurrent jobs over N devices, each with its own CSE availability
// schedule (co-tenant load, GC) and a share of the host's link capacity.
// The Fleet tracks, per lane, when the lane next goes idle in fleet virtual
// time and what it has served so far; it never runs simulations itself —
// the server dispatches jobs, runs each job's engine simulation through
// exec::run_batch, and reports the measured service time back via occupy().
//
// Lanes [0, devices) are CSDs; lanes [devices, devices + host_lanes) are
// host fallback slots for jobs Equation 1 prices off the device path.
#pragma once

#include <cstdint>
#include <set>
#include <utility>
#include <vector>

#include "common/units.hpp"
#include "flash/backend.hpp"
#include "sim/availability.hpp"
#include "system/config.hpp"

namespace isp::serve {

/// One CSD in the fleet: its time-varying CSE capacity, the static share of
/// host-link bandwidth its slot is provisioned with, and which
/// storage-management backend (FTL or ZNS) the device runs.
struct DeviceConfig {
  sim::AvailabilitySchedule cse_availability;  // in fleet virtual time
  double link_share = 1.0;                     // provisioned share, (0, 1]
  flash::BackendKind backend = flash::BackendKind::Ftl;
};

/// Fleet-level backend composition (`--backend ftl|zns|mixed`).  Mixed
/// alternates by device index (even lanes FTL, odd lanes ZNS), so any fleet
/// of two or more devices exercises both reclaim models side by side.
enum class BackendMix { Ftl, Zns, Mixed };

[[nodiscard]] const char* to_string(BackendMix mix);

struct FleetConfig {
  std::vector<DeviceConfig> devices;
  std::size_t host_lanes = 1;
  /// How many device links the host root complex can serve at full rate
  /// simultaneously; with more devices busy, each busy device's share
  /// degrades as fan_out / busy_count (capped at its provisioned share).
  std::size_t link_fan_out = 2;
  /// Hardware constants every device (and the host lanes) is built from.
  system::SystemConfig system = system::SystemConfig::paper_platform();

  /// A mildly heterogeneous fleet: device k runs at constant CSE
  /// availability 1.0 − skew·(k mod 4) — deterministic, no RNG — so
  /// placement has real differences to price.  `skew` must leave the
  /// slowest device with positive availability (skew in [0, 1/3)).
  /// `mix` assigns each device's storage backend (Mixed alternates by
  /// index: even FTL, odd ZNS).
  static FleetConfig make(std::size_t devices, std::size_t host_lanes = 1,
                          double skew = 0.05,
                          BackendMix mix = BackendMix::Ftl);
};

/// Per-lane serving statistics, aggregated over measured engine runs.
struct LaneStats {
  std::uint64_t jobs = 0;
  Seconds busy;                     // sum of measured service times
  std::uint32_t migrations = 0;     // jobs' runtime migrations (CSD lanes)
  std::uint32_t power_losses = 0;   // power cycles survived on this lane
  std::uint64_t faults = 0;         // injected faults across this lane's jobs
  std::uint64_t lost_jobs = 0;      // in-flight jobs lost to device death
  SimTime died_at = SimTime::infinity();  // infinity while the lane lives
  // Storage-backend activity folded from completed storage-driven jobs
  // (zero unless a job class persists its outputs).  internal = reclaim
  // copies + metadata programs; resets are block-granular erases.
  std::uint64_t storage_host_pages = 0;
  std::uint64_t storage_internal_pages = 0;
  std::uint64_t storage_resets = 0;
  Seconds reclaim_time;  // device-side reclaim stall absorbed by this lane

  /// Observed write amplification over everything this lane persisted so
  /// far (1.0 before any storage-driven job lands).
  [[nodiscard]] double storage_write_amplification() const {
    if (storage_host_pages == 0) return 1.0;
    return static_cast<double>(storage_host_pages + storage_internal_pages) /
           static_cast<double>(storage_host_pages);
  }
};

class Fleet {
 public:
  explicit Fleet(FleetConfig config);

  [[nodiscard]] const FleetConfig& config() const { return config_; }
  [[nodiscard]] std::size_t device_count() const {
    return config_.devices.size();
  }
  [[nodiscard]] std::size_t lane_count() const {
    return config_.devices.size() + config_.host_lanes;
  }
  [[nodiscard]] bool is_host_lane(std::size_t lane) const {
    return lane >= config_.devices.size();
  }
  [[nodiscard]] const DeviceConfig& device(std::size_t lane) const;

  /// When the lane last becomes idle (fleet virtual time).
  [[nodiscard]] SimTime busy_until(std::size_t lane) const {
    return busy_until_[lane];
  }

  /// Devices (not host lanes) still busy strictly after `t` — O(log n) off
  /// the sorted busy index (PR 7).  Dead lanes count through their clamped
  /// busy_until, exactly like the reference scan.
  [[nodiscard]] std::size_t busy_devices_after(SimTime t) const;

  /// The pre-index O(devices) reference scan, kept for the legacy
  /// (`plan_cache` off) decision path and the index property tests.
  [[nodiscard]] std::size_t busy_devices_after_scan(SimTime t) const;

  /// Link share a device gets when `busy_devices` devices (including
  /// itself) are drawing on the host link: provisioned share capped by
  /// fan_out / busy_devices.
  [[nodiscard]] double contended_link_share(std::size_t lane,
                                            std::size_t busy_devices) const;

  /// Record a dispatched job: the lane is busy over [start, start+service).
  /// `start` must be at or after the lane's current busy_until.
  void occupy(std::size_t lane, SimTime start, Seconds service);

  /// Fold a finished job's fault/migration counters into the lane's stats.
  void note_outcome(std::size_t lane, std::uint32_t migrations,
                    std::uint32_t power_losses, std::uint64_t faults);

  /// Fold a finished storage-driven job's backend activity into the lane's
  /// stats (serial fold phase only, adjacent to occupy() so the epoch bump
  /// covers the change for cached bids).
  void note_storage(std::size_t lane, std::uint64_t host_pages,
                    std::uint64_t internal_pages, std::uint64_t resets,
                    Seconds reclaim_time);

  /// True while the lane has not suffered a permanent device failure.
  /// Host lanes never die.
  [[nodiscard]] bool alive(std::size_t lane) const {
    return stats_[lane].died_at == SimTime::infinity();
  }

  /// Kill a CSD lane permanently at fleet virtual time `at`.  Idempotent:
  /// a second kill of the same device keeps the first death instant.
  void mark_dead(std::size_t lane, SimTime at);

  /// Count an in-flight job lost to the lane's death (work already folded
  /// into busy/occupancy up to the truncation point stays counted).
  void note_lost(std::size_t lane);

  [[nodiscard]] const LaneStats& stats(std::size_t lane) const {
    return stats_[lane];
  }

  // ---- Incremental lane-state index (PR 7) -------------------------------
  //
  // The serving loop's decision phase needs three queries per job —
  // "earliest instant any lane could start", "next lane to free up", and
  // "devices busy after t" — that were all O(lanes) scans.  The index keeps
  // a busy-ordered set of the *schedulable* lanes (living, not yet doomed
  // by a registered kill) plus a sorted vector of every device lane's
  // busy_until, updated on occupy / mark_dead / gate changes, so each query
  // is O(log lanes).  Epochs version the state for the Eq.1 bid cache: a
  // lane's cached bid is valid only while its lane epoch (own busy / death
  // / breaker gate) and the fleet epoch (any device's busy or death — the
  // link-contention input) both still match.

  /// Register the lane's scheduled death (min-folds with earlier calls).
  /// serve() registers the full kill schedule before the first wave; a lane
  /// whose busy_until reaches its kill time leaves the schedulable set for
  /// good (busy_until only grows, so it can never start another job).
  void set_kill_at(std::size_t lane, SimTime at);
  [[nodiscard]] SimTime kill_at(std::size_t lane) const {
    return kill_at_[lane];
  }

  /// Mirror of the lane's breaker delayed-start gate (ready_at()); devices
  /// only.  No-op when unchanged, so a quiet breaker never invalidates
  /// cached bids.
  void set_gate(std::size_t lane, SimTime at);
  [[nodiscard]] SimTime gate(std::size_t lane) const { return gate_[lane]; }

  /// Bumped whenever this lane's busy_until, death or gate changes.
  [[nodiscard]] std::uint64_t lane_epoch(std::size_t lane) const {
    return epoch_[lane];
  }
  /// Bumped whenever any *device* lane's busy_until or death changes (the
  /// shared link-contention input every device bid reads).
  [[nodiscard]] std::uint64_t fleet_epoch() const { return fleet_epoch_; }

  /// The earliest instant any schedulable lane could start a job arriving
  /// at `arrival` (gate- and kill-aware; infinity when no lane qualifies).
  /// Equivalent to the legacy scan over all lanes, but walks the
  /// busy-ordered set and stops as soon as no later lane can improve the
  /// bound.
  [[nodiscard]] SimTime earliest_feasible_start(SimTime arrival) const;

  /// The earliest busy_until over schedulable, unclaimed lanes — the next
  /// wave decision instant.  Infinity when every such lane is claimed.
  [[nodiscard]] SimTime next_free(const std::vector<bool>& claimed) const;

 private:
  /// Re-seat `lane` in the index after its busy_until moved from
  /// `old_busy`, and bump the epochs.
  void reindex(std::size_t lane, SimTime old_busy);

  FleetConfig config_;
  std::vector<SimTime> busy_until_;
  std::vector<LaneStats> stats_;
  /// Schedulable lanes (living, undoomed) ordered by (busy_until, lane).
  std::set<std::pair<SimTime, std::size_t>> ready_order_;
  /// Every device lane's busy_until (dead lanes clamped), ascending.
  std::vector<SimTime> device_busy_sorted_;
  std::vector<SimTime> gate_;     // breaker ready_at mirror; host lanes 0
  std::vector<SimTime> kill_at_;  // scheduled death; infinity = never
  std::vector<std::uint64_t> epoch_;
  std::uint64_t fleet_epoch_ = 0;
};

}  // namespace isp::serve
