// Per-lane health circuit breaker for the serving loop.
//
// A CSD lane that keeps injecting faults or forcing migrations is alive but
// not worth dispatching to: every job it burns re-enters the queue with one
// less retry in its budget.  The breaker turns the lane's recent trouble
// into an exponentially-decayed score and gates placement on it:
//
//   Closed   — healthy.  Completed jobs fold their severity (exhausted
//              fault episodes, migrations, power cycles) into the score;
//              when the decayed score crosses `threshold` the breaker
//              Opens at that instant.
//   Open     — the lane accepts nothing until `cooldown` of virtual time
//              has passed (ready_at()).  The first job placed at or after
//              that instant is the *probe* and moves the breaker to
//              HalfOpen.
//   HalfOpen — exactly one probe job is in flight.  A clean probe
//              (severity 0) re-Closes the breaker and resets the score and
//              cooldown; a troubled probe re-Opens it with the cooldown
//              doubled (capped growth via cooldown_multiplier), so a lane
//              that stays flaky is probed geometrically less often.
//
// Everything is pure virtual-time bookkeeping driven serially by the
// serving loop's decision/fold phases, so transitions are deterministic and
// byte-identical across `--jobs` values.  Every transition is recorded for
// the `serve.breaker.*` metrics and the fleet timeline.
#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

#include "common/units.hpp"

namespace isp::serve {

enum class BreakerState : std::uint8_t { Closed, Open, HalfOpen };

[[nodiscard]] std::string_view to_string(BreakerState state);

struct BreakerConfig {
  /// A disabled breaker never opens and charges nothing.
  bool enabled = true;
  /// Decayed severity score that trips Closed -> Open.
  double threshold = 12.0;
  /// Exponential decay time constant of the score (virtual seconds).
  Seconds decay_tau{2.0};
  /// Virtual time an Open breaker waits before allowing the probe job.
  Seconds cooldown{1.0};
  /// Probe failure multiplies the next cooldown by this factor.
  double cooldown_multiplier = 2.0;
};

/// One recorded state transition (virtual time, score at the instant).
struct BreakerTransition {
  BreakerState from = BreakerState::Closed;
  BreakerState to = BreakerState::Closed;
  SimTime time;
  double score = 0.0;
};

class CircuitBreaker {
 public:
  CircuitBreaker() = default;
  explicit CircuitBreaker(BreakerConfig config);

  [[nodiscard]] const BreakerConfig& config() const { return config_; }
  [[nodiscard]] BreakerState state() const { return state_; }
  [[nodiscard]] bool probe_in_flight() const { return probe_in_flight_; }

  /// The decayed score as seen from `now` (no mutation).
  [[nodiscard]] double score(SimTime now) const;

  /// Earliest instant the lane may accept a job: zero while Closed (or
  /// disabled), the end of the cooldown while Open.
  [[nodiscard]] SimTime ready_at() const;

  /// The dispatch starting at `start` (>= ready_at()) is the probe:
  /// Open -> HalfOpen, one job in flight.
  void begin_probe(SimTime start);

  /// The probe was lost to a device death; the lane is gone, clear the
  /// in-flight flag without a transition.
  void abort_probe();

  /// Fold a finished non-probe job's severity into the score; may trip
  /// Closed -> Open at `now`.
  void record_outcome(SimTime now, double severity);

  /// Resolve the HalfOpen probe: success re-Closes (score and cooldown
  /// reset), failure re-Opens with the cooldown multiplied.
  void probe_result(SimTime now, bool success);

  [[nodiscard]] const std::vector<BreakerTransition>& transitions() const {
    return transitions_;
  }

 private:
  void decay_to(SimTime now);
  void transition(BreakerState to, SimTime at);

  BreakerConfig config_;
  BreakerState state_ = BreakerState::Closed;
  double score_ = 0.0;
  SimTime last_;                     // score is decayed as of this instant
  SimTime reopen_at_;                // Open only: cooldown end
  Seconds current_cooldown_ = config_.cooldown;
  bool probe_in_flight_ = false;
  std::vector<BreakerTransition> transitions_;
};

}  // namespace isp::serve
