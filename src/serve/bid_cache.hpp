// Per-(job class, device lane) Equation-1 bid cache for the serving hot
// path (PR 7).
//
// Every wave decision re-prices each candidate device lane for the picked
// job: an AvailabilitySchedule::finish_time integral, the busy-device count
// behind the contended link share, and plan::net_profit_under_contention.
// Between decisions most lanes haven't changed at all, so the whole bid is
// a pure function of
//
//   (job class, lane state epoch, fleet epoch, candidate start)
//
// where the epochs come from Fleet's incremental index: the lane epoch
// covers the lane's own busy_until / death / breaker gate, and the fleet
// epoch covers every device's busy_until (the shared link-contention
// input).  A slot whose epochs and start still match is a *core* hit —
// finish_time, the contended share, the projected completion and the
// effective availability are reused bit for bit.  The Equation-1 profit
// additionally depends on the job's arrival (queue wait) and the host-side
// wait, so it revalidates on those two and is otherwise recombined from the
// cached core — the same arithmetic net_profit_under_contention would run,
// on identical inputs, so cached and fresh bids are indistinguishable
// (serve_test asserts byte-identical reports with the cache on or off).
//
// Invalidation is purely by comparison: nothing is evicted, a stale slot is
// simply overwritten on the next miss.  The cache is O(classes × lanes)
// memory and lives for one serve() call.
#pragma once

#include <cstdint>
#include <vector>

#include "common/units.hpp"

namespace isp::serve {

/// One memoized device-lane bid.  `core_valid` gates the placement terms;
/// `profit_valid` additionally gates the Equation-1 profit (which also
/// depends on the job's arrival and the host-side wait).
struct CachedBid {
  std::uint64_t lane_epoch = 0;
  std::uint64_t fleet_epoch = 0;
  bool core_valid = false;
  bool starved = false;  // schedule starves the work: finish_time infinite
  SimTime start;
  SimTime compute_done;
  SimTime done;
  double share = 1.0;
  double avail_eff = 1.0;
  bool profit_valid = false;
  SimTime arrival;
  Seconds host_wait;
  Seconds profit;
};

class BidCache {
 public:
  BidCache(std::size_t classes, std::size_t device_lanes)
      : device_lanes_(device_lanes), slots_(classes * device_lanes) {}

  [[nodiscard]] CachedBid& slot(std::size_t job_class, std::size_t lane) {
    return slots_[job_class * device_lanes_ + lane];
  }

  std::uint64_t hits = 0;    // core hits (placement terms reused)
  std::uint64_t misses = 0;  // full recomputes (slot overwritten)

 private:
  std::size_t device_lanes_;
  std::vector<CachedBid> slots_;
};

}  // namespace isp::serve
