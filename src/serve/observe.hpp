// Fleet-wide observability exports: the serving-trace timeline and the
// metrics/snapshot JSON bundle.
//
// to_fleet_trace() extends the single-run Chrome-trace exporter
// (runtime::to_chrome_trace) to a whole serving run: one Perfetto row per
// Fleet lane with one span per served job — sub-sliced into exec /
// migration / recovery — one row per tenant queue showing each job's
// queue wait, placement marks at every dispatch, and the jobs' fault
// episodes as instant events.  Everything is derived from the finished
// ServeReport's virtual-time records, so the trace is byte-identical
// across runs and `--jobs` values (asserted in obs_test/serve_test).
#pragma once

#include <string>

#include "obs/snapshot.hpp"
#include "obs/timeline.hpp"
#include "serve/server.hpp"

namespace isp::serve {

/// Build the whole-fleet span timeline.  Rows: "csd<k>" / "host<k>" lanes,
/// "tenant<t> queue" wait rows, and a "faults" row of instant events.
[[nodiscard]] obs::Timeline to_fleet_timeline(const ServeReport& report);

/// to_fleet_timeline() serialised as Chrome-trace JSON.
[[nodiscard]] std::string to_fleet_trace(const ServeReport& report);

/// Derive the periodic virtual-time snapshot series from the outcome
/// records: rows at t = k·interval plus a final row at the makespan, each
/// counting offered / admitted / rejected / completed / in_flight / queued
/// as of t.  At every row `admitted == completed + in_flight + queued` and
/// `offered == admitted + rejected` (property-tested in serve_test).
[[nodiscard]] obs::SnapshotSeries build_snapshots(const ServeReport& report,
                                                  const ObsOptions& options);

/// The metrics registry and snapshot series as one JSON document (the
/// `--metrics-out` payload): {"metrics": ..., "snapshots": ...}.
[[nodiscard]] std::string metrics_json(const ServeReport& report);

}  // namespace isp::serve
