#include "serve/admission.hpp"

#include <utility>

#include "common/error.hpp"

namespace isp::serve {

AdmissionController::AdmissionController(std::vector<TenantConfig> tenants) {
  ISP_CHECK(!tenants.empty(), "admission needs at least one tenant");
  tenants_.reserve(tenants.size());
  for (auto& t : tenants) {
    ISP_CHECK(t.weight > 0.0, "tenant weight must be positive: " << t.weight);
    ISP_CHECK(t.queue_depth >= 1, "tenant queue depth must be at least 1");
    ISP_CHECK(t.slo.value() > 0.0, "tenant SLO must be positive: "
                                       << t.slo.value() << "s");
    tenants_.push_back(TenantState{.config = t, .queue = {}, .stats = {}});
  }
}

Status AdmissionController::offer(const QueuedJob& job,
                                  SimTime earliest_start) {
  ISP_CHECK(job.tenant < tenants_.size(), "unknown tenant " << job.tenant);
  auto& t = tenants_[job.tenant];
  t.stats.offered += 1;
  if (t.queue.size() >= t.config.queue_depth) {
    t.stats.rejected += 1;
    return Status{StatusCode::Overloaded};
  }
  QueuedJob admitted = job;
  admitted.ready = job.arrival;
  if (t.config.slo < Seconds::infinity()) {
    admitted.deadline = job.arrival + t.config.slo;
    // Boundary-equal starts are fine; only a start strictly past the
    // deadline is infeasible at admission time.
    if (earliest_start > admitted.deadline) {
      t.stats.deadline_rejected += 1;
      return Status{StatusCode::DeadlineExceeded};
    }
  }
  t.stats.admitted += 1;
  t.queue.push_back(admitted);
  return Status::ok();
}

bool AdmissionController::any_queued() const {
  for (const auto& t : tenants_) {
    if (!t.queue.empty()) return true;
  }
  return false;
}

std::size_t AdmissionController::queued(std::uint32_t tenant) const {
  ISP_CHECK(tenant < tenants_.size(), "unknown tenant " << tenant);
  return tenants_[tenant].queue.size();
}

std::optional<QueuedJob> AdmissionController::pick() {
  // Smallest virtual finish tag (dispatched + 1) / weight among non-empty
  // queues; the index tie-break keeps the order fully deterministic.
  std::size_t best = tenants_.size();
  double best_tag = 0.0;
  for (std::size_t i = 0; i < tenants_.size(); ++i) {
    const auto& t = tenants_[i];
    if (t.queue.empty()) continue;
    const double tag = static_cast<double>(t.stats.dispatched + 1) /
                       t.config.weight;
    if (best == tenants_.size() || tag < best_tag) {
      best = i;
      best_tag = tag;
    }
  }
  if (best == tenants_.size()) return std::nullopt;
  auto& t = tenants_[best];
  QueuedJob job = t.queue.front();
  t.queue.pop_front();
  t.stats.dispatched += 1;
  return job;
}

void AdmissionController::note_completed(std::uint32_t tenant) {
  ISP_CHECK(tenant < tenants_.size(), "unknown tenant " << tenant);
  tenants_[tenant].stats.completed += 1;
}

void AdmissionController::requeue_front(const QueuedJob& job) {
  ISP_CHECK(job.tenant < tenants_.size(), "unknown tenant " << job.tenant);
  ISP_CHECK(job.attempt >= 1, "a requeued job must have advanced its attempt");
  auto& t = tenants_[job.tenant];
  t.queue.push_front(job);
  t.stats.retried += 1;
}

void AdmissionController::return_front(const QueuedJob& job) {
  ISP_CHECK(job.tenant < tenants_.size(), "unknown tenant " << job.tenant);
  auto& t = tenants_[job.tenant];
  ISP_CHECK(t.stats.dispatched >= 1, "returning a job never dispatched");
  t.queue.push_front(job);
  t.stats.dispatched -= 1;
}

void AdmissionController::note_deadline_missed(std::uint32_t tenant) {
  ISP_CHECK(tenant < tenants_.size(), "unknown tenant " << tenant);
  auto& t = tenants_[tenant];
  ISP_CHECK(t.stats.dispatched >= 1, "missed deadline without a pick");
  t.stats.dispatched -= 1;
  t.stats.deadline_missed += 1;
}

void AdmissionController::note_retry_exhausted(std::uint32_t tenant,
                                               bool was_placed) {
  ISP_CHECK(tenant < tenants_.size(), "unknown tenant " << tenant);
  auto& t = tenants_[tenant];
  if (!was_placed) {
    ISP_CHECK(t.stats.dispatched >= 1, "exhausted a job never dispatched");
    t.stats.dispatched -= 1;
  }
  t.stats.retry_exhausted += 1;
}

const TenantStats& AdmissionController::stats(std::uint32_t tenant) const {
  ISP_CHECK(tenant < tenants_.size(), "unknown tenant " << tenant);
  return tenants_[tenant].stats;
}

const TenantConfig& AdmissionController::tenant(std::uint32_t tenant) const {
  ISP_CHECK(tenant < tenants_.size(), "unknown tenant " << tenant);
  return tenants_[tenant].config;
}

}  // namespace isp::serve
