#include "serve/admission.hpp"

#include <utility>

#include "common/error.hpp"

namespace isp::serve {

AdmissionController::AdmissionController(std::vector<TenantConfig> tenants) {
  ISP_CHECK(!tenants.empty(), "admission needs at least one tenant");
  tenants_.reserve(tenants.size());
  for (auto& t : tenants) {
    ISP_CHECK(t.weight > 0.0, "tenant weight must be positive: " << t.weight);
    ISP_CHECK(t.queue_depth >= 1, "tenant queue depth must be at least 1");
    tenants_.push_back(TenantState{.config = t, .queue = {}, .stats = {}});
  }
}

Status AdmissionController::offer(const QueuedJob& job) {
  ISP_CHECK(job.tenant < tenants_.size(), "unknown tenant " << job.tenant);
  auto& t = tenants_[job.tenant];
  t.stats.offered += 1;
  if (t.queue.size() >= t.config.queue_depth) {
    t.stats.rejected += 1;
    return Status{StatusCode::Overloaded};
  }
  t.stats.admitted += 1;
  t.queue.push_back(job);
  return Status::ok();
}

bool AdmissionController::any_queued() const {
  for (const auto& t : tenants_) {
    if (!t.queue.empty()) return true;
  }
  return false;
}

std::size_t AdmissionController::queued(std::uint32_t tenant) const {
  ISP_CHECK(tenant < tenants_.size(), "unknown tenant " << tenant);
  return tenants_[tenant].queue.size();
}

std::optional<QueuedJob> AdmissionController::pick() {
  // Smallest virtual finish tag (dispatched + 1) / weight among non-empty
  // queues; the index tie-break keeps the order fully deterministic.
  std::size_t best = tenants_.size();
  double best_tag = 0.0;
  for (std::size_t i = 0; i < tenants_.size(); ++i) {
    const auto& t = tenants_[i];
    if (t.queue.empty()) continue;
    const double tag = static_cast<double>(t.stats.dispatched + 1) /
                       t.config.weight;
    if (best == tenants_.size() || tag < best_tag) {
      best = i;
      best_tag = tag;
    }
  }
  if (best == tenants_.size()) return std::nullopt;
  auto& t = tenants_[best];
  QueuedJob job = t.queue.front();
  t.queue.pop_front();
  t.stats.dispatched += 1;
  return job;
}

void AdmissionController::note_completed(std::uint32_t tenant) {
  ISP_CHECK(tenant < tenants_.size(), "unknown tenant " << tenant);
  tenants_[tenant].stats.completed += 1;
}

const TenantStats& AdmissionController::stats(std::uint32_t tenant) const {
  ISP_CHECK(tenant < tenants_.size(), "unknown tenant " << tenant);
  return tenants_[tenant].stats;
}

const TenantConfig& AdmissionController::tenant(std::uint32_t tenant) const {
  ISP_CHECK(tenant < tenants_.size(), "unknown tenant " << tenant);
  return tenants_[tenant].config;
}

}  // namespace isp::serve
