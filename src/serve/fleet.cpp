#include "serve/fleet.hpp"

#include <utility>

#include "common/error.hpp"

namespace isp::serve {

FleetConfig FleetConfig::make(std::size_t devices, std::size_t host_lanes,
                              double skew) {
  ISP_CHECK(devices >= 1, "a fleet needs at least one device");
  ISP_CHECK(skew >= 0.0 && skew * 3.0 < 1.0,
            "fleet skew must leave the slowest device usable: " << skew);
  FleetConfig config;
  config.host_lanes = host_lanes;
  config.devices.reserve(devices);
  for (std::size_t k = 0; k < devices; ++k) {
    DeviceConfig d;
    d.cse_availability =
        sim::AvailabilitySchedule::constant(1.0 - skew * static_cast<double>(k % 4));
    config.devices.push_back(std::move(d));
  }
  return config;
}

Fleet::Fleet(FleetConfig config) : config_(std::move(config)) {
  ISP_CHECK(!config_.devices.empty(), "a fleet needs at least one device");
  ISP_CHECK(config_.link_fan_out >= 1, "link fan-out must be at least 1");
  for (const auto& d : config_.devices) {
    ISP_CHECK(d.link_share > 0.0 && d.link_share <= 1.0,
              "device link share out of (0,1]: " << d.link_share);
  }
  busy_until_.assign(lane_count(), SimTime::zero());
  stats_.assign(lane_count(), LaneStats{});
}

const DeviceConfig& Fleet::device(std::size_t lane) const {
  ISP_CHECK(lane < config_.devices.size(), "lane " << lane << " is not a CSD");
  return config_.devices[lane];
}

std::size_t Fleet::busy_devices_after(SimTime t) const {
  std::size_t n = 0;
  for (std::size_t lane = 0; lane < config_.devices.size(); ++lane) {
    if (busy_until_[lane] > t) ++n;
  }
  return n;
}

double Fleet::contended_link_share(std::size_t lane,
                                   std::size_t busy_devices) const {
  const double provisioned = device(lane).link_share;
  if (busy_devices <= config_.link_fan_out) return provisioned;
  const double contended = static_cast<double>(config_.link_fan_out) /
                           static_cast<double>(busy_devices);
  return provisioned < contended ? provisioned : contended;
}

void Fleet::occupy(std::size_t lane, SimTime start, Seconds service) {
  ISP_CHECK(lane < lane_count(), "lane out of range: " << lane);
  ISP_CHECK(alive(lane), "lane " << lane << " dispatched after its death");
  ISP_CHECK(start >= busy_until_[lane],
            "lane " << lane << " dispatched into its own past");
  ISP_CHECK(service.value() >= 0.0, "negative service time");
  busy_until_[lane] = start + service;
  stats_[lane].jobs += 1;
  stats_[lane].busy += service;
}

void Fleet::note_outcome(std::size_t lane, std::uint32_t migrations,
                         std::uint32_t power_losses, std::uint64_t faults) {
  ISP_CHECK(lane < lane_count(), "lane out of range: " << lane);
  stats_[lane].migrations += migrations;
  stats_[lane].power_losses += power_losses;
  stats_[lane].faults += faults;
}

void Fleet::mark_dead(std::size_t lane, SimTime at) {
  ISP_CHECK(lane < config_.devices.size(),
            "only CSD lanes die; lane " << lane << " is a host lane");
  if (!alive(lane)) return;  // first kill wins
  stats_[lane].died_at = at;
  // The lane serves nothing past its death; clamp so busy_devices_after
  // never counts a corpse as drawing on the host link.
  if (busy_until_[lane] > at) busy_until_[lane] = at;
}

void Fleet::note_lost(std::size_t lane) {
  ISP_CHECK(lane < config_.devices.size(), "host lanes lose nothing");
  ISP_CHECK(!alive(lane), "lost a job on a living lane");
  stats_[lane].lost_jobs += 1;
}

}  // namespace isp::serve
